// Package pocolo is a library reproduction of "Pocolo: Power Optimized
// Colocation in Power Constrained Environments" (IISWC 2020): a two-level
// resource manager for private clusters that are power-provisioned for a
// primary latency-critical application but harvest spare resources — and
// spare watts — for best-effort co-runners.
//
// The package is organized around three ideas from the paper:
//
//   - A Cobb-Douglas *indirect utility* model fitted per application
//     relates performance to direct resources (cores, LLC ways) under a
//     linear power budget. Its closed forms give the least-power
//     allocation for a load target and the per-watt preference vector
//     that ranks resources (Model).
//   - A server manager keeps the primary at ≥10% p99 slack on the
//     least-power allocation, hands all spare resources to the co-runner,
//     and power-caps the co-runner (DVFS first, duty-cycling second)
//     every 100 ms.
//   - A cluster manager estimates each (best-effort, server) pairing's
//     throughput from the fitted models and solves the placement with an
//     LP/Hungarian solver to maximize total cluster throughput.
//
// The hardware substrate (Xeon E5-2650 with RAPL power metering, CAT way
// partitioning, per-core DVFS) and the eight applications of the paper's
// evaluation are simulated; see DESIGN.md for the substitution table.
//
// Quick start:
//
//	sys, err := pocolo.NewSystem(42)
//	placement, predicted, err := sys.Place()
//	result, err := sys.Run(pocolo.POColo)
package pocolo

import (
	"errors"
	"io"
	"time"

	"pocolo/internal/budget"
	"pocolo/internal/cluster"
	"pocolo/internal/experiments"
	"pocolo/internal/machine"
	"pocolo/internal/online"
	"pocolo/internal/profiler"
	"pocolo/internal/servermgr"
	"pocolo/internal/sim"
	"pocolo/internal/tco"
	"pocolo/internal/timeshare"
	"pocolo/internal/trace"
	"pocolo/internal/utility"
	"pocolo/internal/workload"
)

// Re-exported core types. The implementation lives in internal packages;
// these aliases are the supported public surface.
type (
	// MachineConfig describes a server platform (Table I).
	MachineConfig = machine.Config
	// Alloc is a resource grant: cores, LLC ways, frequency, duty cycle.
	Alloc = machine.Alloc
	// Server exposes the allocation knobs of one simulated machine.
	Server = machine.Server
	// Spec is a ground-truth application model.
	Spec = workload.Spec
	// Catalog holds the calibrated applications for a platform.
	Catalog = workload.Catalog
	// Trace drives a latency-critical application's offered load.
	Trace = workload.Trace
	// Host is one simulated server bound to its tenants and power meter.
	Host = sim.Host
	// LCPolicy selects the server manager's allocation strategy.
	LCPolicy = servermgr.LCPolicy
	// Model is a fitted Cobb-Douglas indirect utility model.
	Model = utility.Model
	// Sample is one profiling observation used for fitting.
	Sample = utility.Sample
	// Matrix is the cluster manager's BE×LC performance matrix.
	Matrix = cluster.Matrix
	// Result summarizes a cluster policy run.
	Result = cluster.Result
	// PairResult is one cell of the exhaustive placement study.
	PairResult = cluster.PairResult
	// HostMetrics summarizes one simulated server's run.
	HostMetrics = sim.Metrics
	// ManagerConfig assembles a server-level manager.
	ManagerConfig = servermgr.Config
	// Manager is the per-server two-loop controller.
	Manager = servermgr.Manager
	// Suite regenerates the paper's tables and figures.
	Suite = experiments.Suite
	// TCOParams holds the Hamilton cost-model constants.
	TCOParams = tco.Params
	// TCOInput is one policy's measured operating point for TCO analysis.
	TCOInput = tco.Input
	// TCOBreakdown is an amortized monthly cost split.
	TCOBreakdown = tco.Breakdown
	// BatchJob is a finite best-effort job for time-shared execution.
	BatchJob = timeshare.Job
	// BatchCompletion records one finished best-effort job.
	BatchCompletion = timeshare.Completion
	// BatchPolicy is a time-sharing discipline (FCFS, SJF, RR).
	BatchPolicy = timeshare.Policy
	// BudgetPolicy selects how a cluster power budget is divided.
	BudgetPolicy = budget.Policy
	// BudgetConfig puts a cluster run under a flat or hierarchical power
	// budget; see cluster.BudgetConfig and internal/budget/tree.
	BudgetConfig = cluster.BudgetConfig
	// BudgetResult carries the installed shares and rebalance counters of
	// a budgeted cluster run.
	BudgetResult = cluster.BudgetResult
	// ShardSettings configures pod sharding of the assignment problem.
	ShardSettings = cluster.ShardSettings
	// FleetConfig scales the catalog to a synthetic hyperscale fleet.
	FleetConfig = cluster.FleetConfig
	// HyperscaleConfig drives a sharded fleet through churn rounds.
	HyperscaleConfig = cluster.HyperscaleConfig
	// HyperscaleResult summarizes a hyperscale scenario run.
	HyperscaleResult = cluster.HyperscaleResult
	// HyperscaleRound reports one churn round of a hyperscale run.
	HyperscaleRound = cluster.HyperscaleRound
	// DeltaStats counts delta-driven matrix work (computed vs memo-reused
	// cells).
	DeltaStats = cluster.DeltaStats
)

// ParseBudgetFlags assembles a BudgetConfig from the budget CLI flags
// shared by pocolo-sim and pocolo-experiments; nil when no budget was
// requested. A tree spec starting with '@' is read from the named file.
var ParseBudgetFlags = cluster.ParseBudgetFlags

// Cluster budget division policies.
const (
	// EqualSplit gives every server the same share of the cluster budget.
	EqualSplit = budget.EqualSplit
	// DemandProportional follows each server's smoothed power draw.
	DemandProportional = budget.DemandProportional
)

// Time-sharing disciplines for RunBatch (the paper's Section V-G
// extension).
const (
	// FCFS runs jobs to completion in submission order.
	FCFS = timeshare.FCFS
	// SJF runs jobs to completion in ascending size order.
	SJF = timeshare.SJF
	// RR cycles a fixed quantum over all incomplete jobs.
	RR = timeshare.RR
)

// HamiltonTCO returns the paper's TCO constants: 100k servers at $1450,
// $9/W power infrastructure, 7¢/kWh, PUE 1.1.
func HamiltonTCO() TCOParams { return tco.Hamilton() }

// Load trace constructors.

// DiurnalTrace models a day/night load swing between low and high (as
// fractions of peak) over one period.
func DiurnalTrace(low, high float64, period time.Duration) (Trace, error) {
	return workload.NewDiurnalTrace(low, high, period)
}

// ConstantTrace holds one load level forever.
func ConstantTrace(level float64) (Trace, error) {
	return workload.NewConstantTrace(level)
}

// StepTrace switches from before to after at time at, over a span.
func StepTrace(before, after float64, at, span time.Duration) (Trace, error) {
	return workload.NewStepTrace(before, after, at, span)
}

// UniformSweepTrace holds each of the paper's nine load levels (10%–90%)
// for dwell.
func UniformSweepTrace(dwell time.Duration) Trace {
	return workload.UniformSweep(dwell)
}

// TwoPeakTrace models a double-humped daily load (morning and evening
// peaks with a midday sag).
func TwoPeakTrace(low, mid, high float64, period time.Duration) (Trace, error) {
	return workload.NewTwoPeakTrace(low, mid, high, period)
}

// FlashCrowdTrace holds a baseline load with one sudden spike.
func FlashCrowdTrace(base, spike float64, at, spikeDur, span time.Duration) (Trace, error) {
	return workload.NewFlashCrowdTrace(base, spike, at, spikeDur, span)
}

// NoisyTrace perturbs an inner trace with seeded multiplicative jitter,
// re-sampled per interval.
func NoisyTrace(inner Trace, relStd float64, interval time.Duration, seed int64) (Trace, error) {
	return workload.NewNoisyTrace(inner, relStd, interval, seed)
}

// ReplayTraceCSV parses a two-column "seconds,load-fraction" CSV stream
// into a replayable trace with linear interpolation.
func ReplayTraceCSV(name string, r io.Reader) (Trace, error) {
	return workload.ParseCSVTrace(name, r)
}

// Cluster policies (the paper's Section V-D ablation).
const (
	// Random places co-runners randomly and manages servers power-unaware.
	Random = cluster.Random
	// POM keeps random placement but manages servers power-optimized.
	POM = cluster.POM
	// POColo adds utility-guided placement — the full system.
	POColo = cluster.POColo
)

// Server management policies.
const (
	// PowerUnaware walks the indifference curve without power preference.
	PowerUnaware = servermgr.PowerUnaware
	// PowerOptimized picks least-power feasible allocations.
	PowerOptimized = servermgr.PowerOptimized
)

// XeonE52650 returns the paper's experimental platform (Table I).
func XeonE52650() MachineConfig { return machine.XeonE52650() }

// DefaultWorkloads returns the eight applications of the paper's
// evaluation, calibrated for the given platform.
func DefaultWorkloads(cfg MachineConfig) (*Catalog, error) {
	return workload.Defaults(cfg)
}

// LoadCatalog reads a JSON application catalog (see ExportCatalog for the
// schema) and calibrates it against the platform — the hook for pointing
// Pocolo's simulation at a custom application mix.
func LoadCatalog(r io.Reader, cfg MachineConfig) (*Catalog, error) {
	return workload.LoadCatalog(r, cfg)
}

// ExportCatalog writes a catalog's calibration inputs as JSON so it can be
// saved, edited, and reloaded with LoadCatalog.
func ExportCatalog(w io.Writer, cat *Catalog) error {
	return workload.ExportCatalog(w, cat)
}

// FitModel fits the Cobb-Douglas indirect utility model to profiling
// samples over the named resources.
func FitModel(app string, resources []string, samples []Sample) (*Model, error) {
	return utility.Fit(app, resources, samples)
}

// Profile sweeps an application across the platform's allocation grid and
// fits its utility model (performance metric: max load at ≥10% p99 slack
// for latency-critical apps, saturated throughput for best-effort apps).
func Profile(spec *Spec, cfg MachineConfig, seed int64) (*Model, error) {
	return profiler.ProfileAndFit(profiler.Config{Spec: spec, Machine: cfg, Seed: seed})
}

// SaveModels writes a set of fitted models as JSON — the "historical
// knowledge" form the paper says applications can provide their parameters
// in. Profile once, ship the file to every manager.
func SaveModels(w io.Writer, models map[string]*Model) error {
	return utility.SaveModels(w, models)
}

// LoadModels reads a model set written by SaveModels, validating every
// entry.
func LoadModels(r io.Reader) (map[string]*Model, error) {
	return utility.LoadModels(r)
}

// NewSystemFromModels builds a System from previously fitted models
// instead of re-profiling. The models must cover all eight applications of
// the catalog.
func NewSystemFromModels(cfg MachineConfig, models map[string]*Model, seed int64) (*System, error) {
	cat, err := workload.Defaults(cfg)
	if err != nil {
		return nil, err
	}
	for _, spec := range append(cat.LC(), cat.BE()...) {
		m, ok := models[spec.Name]
		if !ok {
			return nil, errors.New("pocolo: models missing " + spec.Name)
		}
		if err := m.Validate(); err != nil {
			return nil, err
		}
	}
	return &System{
		Machine: cfg,
		Catalog: cat,
		Models:  models,
		Seed:    seed,
		Dwell:   5 * time.Second,
	}, nil
}

// System bundles the full experimental setup: platform, calibrated
// workloads, and fitted models for all eight applications.
type System struct {
	Machine MachineConfig
	Catalog *Catalog
	Models  map[string]*Model
	Seed    int64
	// Dwell is the simulated time per load level in cluster runs
	// (default 5s).
	Dwell time.Duration
	// Parallel bounds the worker pool cluster runs fan their independent
	// hosts, trials, and load levels through (0 = GOMAXPROCS, 1 =
	// sequential). Results are identical at every setting.
	Parallel int
	// Invariants runs every cluster simulation under the invariant harness
	// (internal/invariant): cross-layer invariants are checked on every
	// tick and any violation fails the run. Checking does not change
	// results, only adds per-tick assertions.
	Invariants bool
	// PlannerOff forces every server manager through the exact per-tick
	// grid search instead of the precomputed allocation planner. Results
	// are bit-identical either way; the planner is only faster.
	PlannerOff bool
	// Trace, when non-nil, collects decision-trace events (control
	// decisions, capper actions, placements, solves, tick-phase spans)
	// from every simulation the system runs; see internal/trace. Traced
	// runs bypass the process-wide sweep memo so the timeline is always
	// complete.
	Trace *trace.Set
	// Budget, when non-nil, puts every cluster run under a power budget —
	// flat (TotalW + Policy) or hierarchical (a budget-tree spec whose
	// leaves name the LC servers). Budgeted runs step all hosts on one
	// shared engine and bypass the sweep memo.
	Budget *BudgetConfig
}

// NewSystem profiles and fits every application on the Table I platform.
func NewSystem(seed int64) (*System, error) {
	return NewSystemOn(machine.XeonE52650(), seed)
}

// NewSystemOn builds a System for an arbitrary platform configuration.
func NewSystemOn(cfg MachineConfig, seed int64) (*System, error) {
	cat, err := workload.Defaults(cfg)
	if err != nil {
		return nil, err
	}
	models, err := profiler.FitAll(cfg, append(cat.LC(), cat.BE()...), seed)
	if err != nil {
		return nil, err
	}
	return &System{
		Machine: cfg,
		Catalog: cat,
		Models:  models,
		Seed:    seed,
		Dwell:   5 * time.Second,
	}, nil
}

func (s *System) clusterConfig() cluster.Config {
	return cluster.Config{
		Machine:  s.Machine,
		LC:       s.Catalog.LC(),
		BE:       s.Catalog.BE(),
		Models:   s.Models,
		Dwell:      s.Dwell,
		Seed:       s.Seed,
		Parallel:   s.Parallel,
		Invariants: s.Invariants,
		PlannerOff: s.PlannerOff,
		Trace:      s.Trace,
		Budget:     s.Budget,
	}
}

// Matrix builds the BE×LC performance matrix from the fitted models.
func (s *System) Matrix() (*Matrix, error) {
	return cluster.BuildMatrix(cluster.MatrixConfig{
		Machine:  s.Machine,
		LC:       s.Catalog.LC(),
		BE:       s.Catalog.BE(),
		Models:   s.Models,
		Parallel: s.Parallel,
	})
}

// Place computes the POColo placement (LP solver over the performance
// matrix), returning the BE→LC assignment and its predicted total value.
func (s *System) Place() (map[string]string, float64, error) {
	return cluster.Place(s.clusterConfig())
}

// Run evaluates the cluster under one of the paper's policies across the
// uniform 10–90% load sweep.
func (s *System) Run(policy cluster.Policy) (Result, error) {
	return cluster.Run(s.clusterConfig(), policy)
}

// RunPlacement evaluates an explicit placement with the given server
// management policy.
func (s *System) RunPlacement(placement map[string]string, mgmt servermgr.LCPolicy) (Result, error) {
	return cluster.RunPlacement(s.clusterConfig(), placement, mgmt)
}

// RunHyperscale scales the system's catalog to a synthetic fleet of
// cfg.Fleet.Hosts servers and drives it through churn rounds on the
// sharded incremental assignment path (see cluster.RunHyperscale).
// Unset fleet fields default from the system: machine, catalog classes,
// models, seed, and worker pool. With tracing enabled on the system the
// run records per-pod solve summaries and rebalance migrations under the
// "hyperscale" timeline.
func (s *System) RunHyperscale(cfg HyperscaleConfig) (HyperscaleResult, error) {
	if cfg.Fleet.Machine == (MachineConfig{}) {
		cfg.Fleet.Machine = s.Machine
	}
	if cfg.Fleet.LCClasses == nil {
		cfg.Fleet.LCClasses = s.Catalog.LC()
	}
	if cfg.Fleet.BEClasses == nil {
		cfg.Fleet.BEClasses = s.Catalog.BE()
	}
	if cfg.Fleet.Models == nil {
		cfg.Fleet.Models = s.Models
	}
	if cfg.Fleet.Seed == 0 {
		cfg.Fleet.Seed = s.Seed
	}
	if cfg.Fleet.Parallel == 0 {
		cfg.Fleet.Parallel = s.Parallel
	}
	if cfg.Trace == nil && s.Trace != nil {
		cfg.Trace = s.Trace.Tracer("hyperscale")
	}
	return cluster.RunHyperscale(cfg)
}

// RunReplicated evaluates a datacenter-scale variant: each LC cluster runs
// `replicas` servers and each BE application submits `replicas` instances;
// the placement is solved exactly with the Hungarian method and the whole
// fleet is simulated. Host names take the form "<lc>#<i>".
func (s *System) RunReplicated(replicas int, mgmt LCPolicy) (Result, error) {
	return cluster.RunReplicated(s.clusterConfig(), replicas, mgmt)
}

// RunPair evaluates a single (latency-critical, best-effort) pairing
// across the load sweep — the building block of the paper's exhaustive
// placement comparison.
func (s *System) RunPair(lcName, beName string) (PairResult, error) {
	lc, err := s.Catalog.ByName(lcName)
	if err != nil {
		return PairResult{}, err
	}
	be, err := s.Catalog.ByName(beName)
	if err != nil {
		return PairResult{}, err
	}
	return cluster.RunPair(s.clusterConfig(), lc, be)
}

// SimulateServer runs one managed server for dur: lcName as the primary
// driven by trace, beName (optional, "" for none) harvesting the spare
// resources, with the given management policy and the 100 ms power capper
// active against the primary's provisioned capacity. It returns the host
// (whose telemetry series remain readable) and the run metrics.
func (s *System) SimulateServer(lcName, beName string, trace Trace, mgmt LCPolicy, dur time.Duration) (*Host, HostMetrics, error) {
	lc, err := s.Catalog.ByName(lcName)
	if err != nil {
		return nil, HostMetrics{}, err
	}
	var be *Spec
	if beName != "" {
		if be, err = s.Catalog.ByName(beName); err != nil {
			return nil, HostMetrics{}, err
		}
	}
	model, err := s.Model(lcName)
	if err != nil {
		return nil, HostMetrics{}, err
	}
	host, err := sim.NewHost(sim.HostConfig{
		Name:    lcName,
		Machine: s.Machine,
		LC:      lc,
		BE:      be,
		Trace:   trace,
		Seed:    s.Seed,
	})
	if err != nil {
		return nil, HostMetrics{}, err
	}
	engine, err := sim.NewEngine(100 * time.Millisecond)
	if err != nil {
		return nil, HostMetrics{}, err
	}
	if err := engine.AddHost(host); err != nil {
		return nil, HostMetrics{}, err
	}
	mgr, err := servermgr.New(servermgr.Config{Host: host, Model: model, Policy: mgmt, Seed: s.Seed})
	if err != nil {
		return nil, HostMetrics{}, err
	}
	if err := mgr.Attach(engine); err != nil {
		return nil, HostMetrics{}, err
	}
	if err := engine.Run(dur); err != nil {
		return nil, HostMetrics{}, err
	}
	return host, host.Metrics(), nil
}

// BatchResult summarizes a time-shared best-effort batch run.
type BatchResult struct {
	// Done reports whether every job completed within the simulated span.
	Done bool
	// Completions lists the finished jobs in completion order.
	Completions []BatchCompletion
	// Makespan is the time to the last completion (zero unless Done).
	Makespan time.Duration
	// MeanFlowTime is the average completion time of finished jobs.
	MeanFlowTime time.Duration
	// Progress maps each job to its completed operations.
	Progress map[string]float64
	// Host carries the server-level metrics of the run.
	Host HostMetrics
}

// RunBatch simulates one managed, power-capped server running lcName under
// trace while time-sharing the given finite best-effort jobs with the
// chosen discipline (the paper's Section V-G extension). Each job's App
// must be a distinct application from the catalog. The simulation stops at
// maxSim even if jobs remain.
func (s *System) RunBatch(lcName string, trace Trace, policy BatchPolicy, quantum time.Duration, jobs []BatchJob, maxSim time.Duration) (BatchResult, error) {
	lc, err := s.Catalog.ByName(lcName)
	if err != nil {
		return BatchResult{}, err
	}
	model, err := s.Model(lcName)
	if err != nil {
		return BatchResult{}, err
	}
	var bes []*Spec
	for _, j := range jobs {
		spec, err := s.Catalog.ByName(j.App)
		if err != nil {
			return BatchResult{}, err
		}
		bes = append(bes, spec)
	}
	if len(bes) == 0 {
		return BatchResult{}, errors.New("pocolo: batch needs at least one job")
	}
	host, err := sim.NewHost(sim.HostConfig{
		Name:    lcName,
		Machine: s.Machine,
		LC:      lc,
		BE:      bes[0],
		ExtraBE: bes[1:],
		Trace:   trace,
		Seed:    s.Seed,
	})
	if err != nil {
		return BatchResult{}, err
	}
	engine, err := sim.NewEngine(100 * time.Millisecond)
	if err != nil {
		return BatchResult{}, err
	}
	if err := engine.AddHost(host); err != nil {
		return BatchResult{}, err
	}
	mgr, err := servermgr.New(servermgr.Config{
		Host: host, Model: model, Policy: servermgr.PowerOptimized, Seed: s.Seed,
	})
	if err != nil {
		return BatchResult{}, err
	}
	if err := mgr.Attach(engine); err != nil {
		return BatchResult{}, err
	}
	sched, err := timeshare.New(timeshare.Config{
		Host: host, Manager: mgr, Policy: policy, Quantum: quantum, Jobs: jobs,
	})
	if err != nil {
		return BatchResult{}, err
	}
	if err := sched.Attach(engine); err != nil {
		return BatchResult{}, err
	}
	if maxSim <= 0 {
		return BatchResult{}, errors.New("pocolo: batch needs a positive simulation budget")
	}
	step := time.Second
	for elapsed := time.Duration(0); elapsed < maxSim && !sched.Done(); elapsed += step {
		if err := engine.Run(step); err != nil {
			return BatchResult{}, err
		}
	}
	return BatchResult{
		Done:         sched.Done(),
		Completions:  sched.Completions(),
		Makespan:     sched.Makespan(),
		MeanFlowTime: sched.MeanFlowTime(),
		Progress:     sched.Progress(),
		Host:         host.Metrics(),
	}, nil
}

// AdaptiveResult summarizes an online-adaptation run.
type AdaptiveResult struct {
	// Host carries the server metrics of the run.
	Host HostMetrics
	// Observations and Refits count the adapter's activity.
	Observations int
	Refits       int
	// FinalPreference is the managed model's cores-vs-ways preference at
	// the end of the run.
	FinalPreference []float64
}

// SimulateAdaptiveServer runs lcName under trace managed with a model
// borrowed from another application (borrowedFrom) — a cold start with
// "historical knowledge" from the wrong workload — while the online
// adapter collects runtime telemetry, refits the Cobb-Douglas model, and
// swaps it into the manager (Section IV-A's "sampled online during
// execution" path).
func (s *System) SimulateAdaptiveServer(lcName, borrowedFrom string, trace Trace, dur time.Duration) (AdaptiveResult, error) {
	lc, err := s.Catalog.ByName(lcName)
	if err != nil {
		return AdaptiveResult{}, err
	}
	borrowed, err := s.Model(borrowedFrom)
	if err != nil {
		return AdaptiveResult{}, err
	}
	clone := *borrowed
	clone.Alpha = append([]float64(nil), borrowed.Alpha...)
	clone.P = append([]float64(nil), borrowed.P...)
	clone.App = lcName
	host, err := sim.NewHost(sim.HostConfig{
		Name: lcName, Machine: s.Machine, LC: lc, Trace: trace, Seed: s.Seed,
	})
	if err != nil {
		return AdaptiveResult{}, err
	}
	engine, err := sim.NewEngine(100 * time.Millisecond)
	if err != nil {
		return AdaptiveResult{}, err
	}
	if err := engine.AddHost(host); err != nil {
		return AdaptiveResult{}, err
	}
	mgr, err := servermgr.New(servermgr.Config{Host: host, Model: &clone, Policy: servermgr.PowerOptimized, Seed: s.Seed})
	if err != nil {
		return AdaptiveResult{}, err
	}
	if err := mgr.Attach(engine); err != nil {
		return AdaptiveResult{}, err
	}
	adapter, err := online.NewAdapter(online.AdapterConfig{Host: host, Manager: mgr})
	if err != nil {
		return AdaptiveResult{}, err
	}
	if err := adapter.Attach(engine); err != nil {
		return AdaptiveResult{}, err
	}
	if err := engine.Run(dur); err != nil {
		return AdaptiveResult{}, err
	}
	obs, _, refits, _ := adapter.Stats()
	return AdaptiveResult{
		Host:            host.Metrics(),
		Observations:    obs,
		Refits:          refits,
		FinalPreference: mgr.Model().Preference(),
	}, nil
}

// BudgetedResult summarizes a cluster run under an aggregate power budget.
type BudgetedResult struct {
	// BudgetW is the enforced aggregate budget.
	BudgetW float64
	// Hosts holds per-server metrics keyed by LC app name.
	Hosts map[string]HostMetrics
	// Shares holds the final per-server budget division keyed by LC app
	// name.
	Shares map[string]float64
	// TotalBEOps sums the best-effort work completed.
	TotalBEOps float64
	// MeanClusterW is the summed mean power across servers.
	MeanClusterW float64
}

// SimulateBudgetedCluster runs the four LC servers at the given constant
// load fractions (keyed by LC app name) with the given co-runner placement
// (BE name → LC name, nil for the POColo placement), under an aggregate
// power budget of budgetFrac × Σ provisioned capacities divided by the
// chosen policy. This is the Dynamo-style hierarchical capping layer on
// top of Pocolo's per-server managers.
func (s *System) SimulateBudgetedCluster(loads map[string]float64, placement map[string]string, budgetFrac float64, policy BudgetPolicy, dur time.Duration) (BudgetedResult, error) {
	if budgetFrac <= 0 || budgetFrac > 1 {
		return BudgetedResult{}, errors.New("pocolo: budget fraction outside (0, 1]")
	}
	if dur <= 0 {
		return BudgetedResult{}, errors.New("pocolo: duration must be positive")
	}
	if placement == nil {
		var err error
		if placement, _, err = s.Place(); err != nil {
			return BudgetedResult{}, err
		}
	}
	engine, err := sim.NewEngine(100 * time.Millisecond)
	if err != nil {
		return BudgetedResult{}, err
	}
	var hosts []*sim.Host
	var managers []*servermgr.Manager
	var totalProvisioned float64
	for i, lc := range s.Catalog.LC() {
		frac, ok := loads[lc.Name]
		if !ok {
			return BudgetedResult{}, errors.New("pocolo: no load given for " + lc.Name)
		}
		trace, err := workload.NewConstantTrace(frac)
		if err != nil {
			return BudgetedResult{}, err
		}
		var be *Spec
		for beName, lcName := range placement {
			if lcName == lc.Name {
				if be, err = s.Catalog.ByName(beName); err != nil {
					return BudgetedResult{}, err
				}
			}
		}
		host, err := sim.NewHost(sim.HostConfig{
			Name: lc.Name, Machine: s.Machine, LC: lc, BE: be,
			Trace: trace, Seed: s.Seed + int64(i)*577,
		})
		if err != nil {
			return BudgetedResult{}, err
		}
		if err := engine.AddHost(host); err != nil {
			return BudgetedResult{}, err
		}
		model, err := s.Model(lc.Name)
		if err != nil {
			return BudgetedResult{}, err
		}
		mgr, err := servermgr.New(servermgr.Config{Host: host, Model: model, Policy: servermgr.PowerOptimized})
		if err != nil {
			return BudgetedResult{}, err
		}
		if err := mgr.Attach(engine); err != nil {
			return BudgetedResult{}, err
		}
		hosts = append(hosts, host)
		managers = append(managers, mgr)
		totalProvisioned += host.CapW()
	}
	budgetW := budgetFrac * totalProvisioned
	b, err := budget.New(budget.Config{
		TotalW: budgetW, Hosts: hosts, Managers: managers, Policy: policy,
	})
	if err != nil {
		return BudgetedResult{}, err
	}
	if err := b.Attach(engine); err != nil {
		return BudgetedResult{}, err
	}
	if err := engine.Run(dur); err != nil {
		return BudgetedResult{}, err
	}
	res := BudgetedResult{
		BudgetW: budgetW,
		Hosts:   make(map[string]HostMetrics, len(hosts)),
		Shares:  make(map[string]float64, len(hosts)),
	}
	shares := b.Shares()
	for i, h := range hosts {
		m := h.Metrics()
		res.Hosts[h.Name()] = m
		res.Shares[h.Name()] = shares[i]
		res.TotalBEOps += m.BEOps
		res.MeanClusterW += m.MeanPowerW
	}
	return res, nil
}

// Model returns the fitted utility model for an application.
func (s *System) Model(name string) (*Model, error) {
	m, ok := s.Models[name]
	if !ok {
		return nil, errors.New("pocolo: no fitted model for " + name)
	}
	return m, nil
}

// Experiments returns a Suite that regenerates the paper's tables and
// figures with this system's seed.
func (s *System) Experiments() (*Suite, error) {
	suite, err := experiments.NewSuite(s.Seed)
	if err != nil {
		return nil, err
	}
	suite.Dwell = s.Dwell
	suite.Parallel = s.Parallel
	suite.Invariants = s.Invariants
	suite.PlannerOff = s.PlannerOff
	suite.Trace = s.Trace
	return suite, nil
}
