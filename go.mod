module pocolo

go 1.22
