// Placement matrix: build the cluster manager's BE×LC performance matrix
// from the fitted utility models, print it, and compare the placements
// found by the LP solver, the Hungarian method, and exhaustive search —
// then verify the prediction against actual pairing simulations (the
// paper's Fig. 14 methodology).
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"pocolo"
)

func main() {
	log.SetFlags(0)

	sys, err := pocolo.NewSystem(42)
	if err != nil {
		log.Fatal(err)
	}
	sys.Dwell = 3 * time.Second

	mx, err := sys.Matrix()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("estimated BE throughput when co-located (rows: BE, cols: LC):")
	fmt.Printf("%8s", "")
	for _, lc := range mx.LCNames {
		fmt.Printf("%10s", lc)
	}
	fmt.Println()
	for i, be := range mx.BENames {
		fmt.Printf("%8s", be)
		for j := range mx.LCNames {
			fmt.Printf("%10.2f", mx.Value[i][j])
		}
		fmt.Println()
	}

	fmt.Println("\nsolver comparison:")
	for _, method := range []string{"lp", "hungarian", "exhaustive"} {
		placement, total, err := mx.Solve(method)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s total %.2f  %v\n", method, total, sorted(placement))
	}

	// Validate the model's prediction with actual pairing simulations.
	placement, _, err := sys.Place()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsimulated verification of the chosen pairings:")
	bes := make([]string, 0, len(placement))
	for be := range placement {
		bes = append(bes, be)
	}
	sort.Strings(bes)
	for _, be := range bes {
		pr, err := sys.RunPair(placement[be], be)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-6s on %-8s mean total server throughput %.3f (normalized)\n",
			be, placement[be], pr.Mean)
	}
}

func sorted(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, 0, len(m))
	for _, k := range keys {
		out = append(out, k+"→"+m[k])
	}
	return out
}
