// Diurnal colocation: one xapian server rides a day/night load swing with
// graph harvesting the spare resources. The server manager resizes the
// primary's allocation as load moves and the power capper throttles graph
// whenever the 154 W provisioned capacity is threatened — the scenario of
// the paper's Fig. 1, but with Pocolo's management keeping the server
// inside its budget.
package main

import (
	"fmt"
	"log"
	"time"

	"pocolo"
)

func main() {
	log.SetFlags(0)

	sys, err := pocolo.NewSystem(7)
	if err != nil {
		log.Fatal(err)
	}

	// One simulated "day" compressed into 8 minutes: load swings between
	// 10% (night) and 90% (peak).
	day := 8 * time.Minute
	trace, err := pocolo.DiurnalTrace(0.1, 0.9, day)
	if err != nil {
		log.Fatal(err)
	}

	host, metrics, err := sys.SimulateServer("xapian", "graph", trace, pocolo.PowerOptimized, day)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("time    load     power      p99       BE thr")
	powerPts := host.PowerSeries().Points()
	loadPts := host.LoadSeries().Points()
	p99Pts := host.P99Series().Points()
	bePts := host.BEThroughputSeries().Points()
	lc, err := sys.Catalog.ByName("xapian")
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < len(powerPts); i += 300 { // one row per simulated 30 s
		at := powerPts[i].Time.Sub(powerPts[0].Time)
		fmt.Printf("%5s  %4.0f%%  %6.1f W  %6.2f ms  %6.1f ops/s\n",
			at.Truncate(time.Second),
			loadPts[i].Value/lc.PeakLoad*100,
			powerPts[i].Value,
			p99Pts[i].Value,
			bePts[i].Value)
	}

	fmt.Println()
	fmt.Printf("provisioned capacity: %.0f W\n", metrics.ProvisionedCapW)
	fmt.Printf("peak power drawn:     %.1f W\n", metrics.PeakPowerW)
	fmt.Printf("time above capacity:  %.2f%%\n", metrics.CapOverFrac*100)
	fmt.Printf("SLO violations:       %.2f%% of the day\n", metrics.SLOViolFrac*100)
	fmt.Printf("best-effort work:     %.0f ops over the day (mean %.1f ops/s)\n",
		metrics.BEOps, metrics.BEMeanThr)
}
