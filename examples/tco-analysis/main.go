// TCO analysis: run the three cluster policies, feed the measured power
// and throughput into the Hamilton datacenter cost model, and print the
// amortized monthly bill for a 100k-server fleet delivering constant
// throughput — the paper's Fig. 15 methodology, including the
// Random(NoCap) variant that provisions every server for the worst case.
package main

import (
	"fmt"
	"log"
	"time"

	"pocolo"
)

func main() {
	log.SetFlags(0)

	sys, err := pocolo.NewSystem(42)
	if err != nil {
		log.Fatal(err)
	}
	sys.Dwell = 3 * time.Second

	random, err := sys.Run(pocolo.Random)
	if err != nil {
		log.Fatal(err)
	}
	pom, err := sys.Run(pocolo.POM)
	if err != nil {
		log.Fatal(err)
	}
	pocoloRes, err := sys.Run(pocolo.POColo)
	if err != nil {
		log.Fatal(err)
	}

	// Aggregate per-server throughput (LC goodput + BE work, normalized)
	// and mean power for each policy.
	aggregate := func(r pocolo.Result) (thr, meanW, provW float64) {
		n := 0.0
		for _, lc := range sys.Catalog.LC() {
			m, ok := r.Hosts[lc.Name]
			if !ok {
				continue
			}
			thr += m.LCOps/(lc.PeakLoad*m.DurationSec) + m.BEMeanThr/100
			meanW += m.MeanPowerW
			provW += lc.ProvisionedPowerW
			n++
		}
		return thr / n, meanW / n, provW / n
	}
	rThr, rW, prov := aggregate(random)
	pThr, pW, _ := aggregate(pom)
	cThr, cW, _ := aggregate(pocoloRes)

	params := pocolo.HamiltonTCO()
	breakdowns, err := params.Compare([]pocolo.TCOInput{
		{Name: "random-nocap", ProvisionedWPerServer: 185, MeanPowerWPerServer: rW, RelativeThroughput: rThr / cThr},
		{Name: "random", ProvisionedWPerServer: prov, MeanPowerWPerServer: rW, RelativeThroughput: rThr / cThr},
		{Name: "pom", ProvisionedWPerServer: prov, MeanPowerWPerServer: pW, RelativeThroughput: pThr / cThr},
		{Name: "pocolo", ProvisionedWPerServer: prov, MeanPowerWPerServer: cW, RelativeThroughput: 1},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("amortized monthly TCO, %d-server fleet at constant throughput:\n\n", params.Servers)
	fmt.Printf("%-14s %10s %12s %12s %12s %12s\n", "policy", "servers", "server $M", "infra $M", "energy $M", "total $M")
	var pocoloTotal float64
	for _, b := range breakdowns {
		fmt.Printf("%-14s %10.0f %12.2f %12.2f %12.2f %12.2f\n",
			b.Name, b.Servers, b.ServerMonthlyUSD/1e6, b.PowerInfraMonthlyUSD/1e6,
			b.EnergyMonthlyUSD/1e6, b.TotalMonthlyUSD/1e6)
		if b.Name == "pocolo" {
			pocoloTotal = b.TotalMonthlyUSD
		}
	}
	fmt.Println()
	for _, b := range breakdowns {
		if b.Name == "pocolo" {
			continue
		}
		fmt.Printf("pocolo saves %5.1f%% vs %s\n", (1-pocoloTotal/b.TotalMonthlyUSD)*100, b.Name)
	}
}
