// Quickstart: build the full Pocolo system, inspect the fitted utility
// models, compute the power-optimized placement, and simulate the cluster
// under it — the shortest path through the public API.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"pocolo"
)

func main() {
	log.SetFlags(0)

	// 1. Profile and fit all eight applications on the Table I platform.
	sys, err := pocolo.NewSystem(42)
	if err != nil {
		log.Fatal(err)
	}
	sys.Dwell = 3 * time.Second

	fmt.Println("fitted indirect-utility preferences (cores : ways):")
	names := make([]string, 0, len(sys.Models))
	for name := range sys.Models {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pref := sys.Models[name].Preference()
		fmt.Printf("  %-8s %.2f : %.2f\n", name, pref[0], pref[1])
	}

	// 2. Place best-effort apps on latency-critical servers: complementary
	// preferences pair up (graph with sphinx, lstm with img-dnn, ...).
	placement, predicted, err := sys.Place()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPOColo placement (predicted total %.1f):\n", predicted)
	bes := make([]string, 0, len(placement))
	for be := range placement {
		bes = append(bes, be)
	}
	sort.Strings(bes)
	for _, be := range bes {
		fmt.Printf("  %-6s -> %s\n", be, placement[be])
	}

	// 3. Simulate the placed cluster across the 10–90% load sweep with
	// power-optimized server management and the 100 ms power capper.
	res, err := sys.RunPlacement(placement, pocolo.PowerOptimized)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncluster results:\n")
	fmt.Printf("  best-effort throughput (normalized): %.3f\n", res.BENormThroughput)
	fmt.Printf("  mean power utilization:              %.1f%%\n", res.MeanPowerUtil*100)
	fmt.Printf("  worst SLO violation fraction:        %.2f%%\n", res.SLOViolFrac*100)
}
