// Cluster budget: the datacenter grants this 4-server cluster only 85% of
// its summed provisioned power. A Dynamo-style budgeter divides the
// aggregate budget across the servers — equally, or following each
// server's demand — and each server's Pocolo manager enforces its share.
// With skewed loads, demand-proportional division routes watts to the
// servers whose tenants can spend them.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"pocolo"
)

func main() {
	log.SetFlags(0)

	sys, err := pocolo.NewSystem(42)
	if err != nil {
		log.Fatal(err)
	}

	// Skewed operating points: img-dnn near peak, sphinx nearly idle.
	loads := map[string]float64{
		"img-dnn": 0.8,
		"sphinx":  0.1,
		"xapian":  0.6,
		"tpcc":    0.3,
	}

	for _, policy := range []pocolo.BudgetPolicy{pocolo.EqualSplit, pocolo.DemandProportional} {
		res, err := sys.SimulateBudgetedCluster(loads, nil, 0.85, policy, time.Minute)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (aggregate budget %.0f W):\n", policy, res.BudgetW)
		names := make([]string, 0, len(res.Hosts))
		for n := range res.Hosts {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			m := res.Hosts[n]
			fmt.Printf("  %-8s load %3.0f%%  share %5.1f W  drew %5.1f W  BE %6.1f ops/s  SLO viol %.1f%%\n",
				n, loads[n]*100, res.Shares[n], m.MeanPowerW, m.BEMeanThr, m.SLOViolFrac*100)
		}
		fmt.Printf("  total best-effort work: %.0f ops; cluster draw %.0f W\n\n",
			res.TotalBEOps, res.MeanClusterW)
	}
}
