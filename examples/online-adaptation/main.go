// Online adaptation: a xapian server is cold-started with img-dnn's fitted
// model — plausible "historical knowledge" from a neighbouring cluster,
// but wrong for this workload. The online adapter inverts the live
// (load, p99) telemetry back into the profiler's performance metric,
// refits the Cobb-Douglas model on a sliding window, and swaps it into the
// manager. Within two load sweeps the model converges to xapian's true
// preferences and the wasted power is recovered.
package main

import (
	"fmt"
	"log"
	"time"

	"pocolo"
)

func main() {
	log.SetFlags(0)

	sys, err := pocolo.NewSystem(42)
	if err != nil {
		log.Fatal(err)
	}
	trace := pocolo.UniformSweepTrace(5 * time.Second)
	const dur = 90 * time.Second

	// Reference: managed with xapian's own profiled model.
	_, profiled, err := sys.SimulateServer("xapian", "", trace, pocolo.PowerOptimized, dur)
	if err != nil {
		log.Fatal(err)
	}

	// Adaptive: cold-started from img-dnn's model, refit online.
	adaptive, err := sys.SimulateAdaptiveServer("xapian", "img-dnn", trace, dur)
	if err != nil {
		log.Fatal(err)
	}

	truth := sys.Models["xapian"].Preference()
	borrowed := sys.Models["img-dnn"].Preference()

	fmt.Println("cores-vs-ways preference (performance per watt):")
	fmt.Printf("  xapian ground truth:     %.2f : %.2f\n", truth[0], truth[1])
	fmt.Printf("  borrowed (img-dnn):      %.2f : %.2f\n", borrowed[0], borrowed[1])
	fmt.Printf("  after online refitting:  %.2f : %.2f  (%d observations, %d refits)\n",
		adaptive.FinalPreference[0], adaptive.FinalPreference[1],
		adaptive.Observations, adaptive.Refits)

	fmt.Println("\npower and latency over two load sweeps:")
	fmt.Printf("  profiled model:  %.1f W mean, SLO violations %.2f%%\n",
		profiled.MeanPowerW, profiled.SLOViolFrac*100)
	fmt.Printf("  adaptive start:  %.1f W mean, SLO violations %.2f%%\n",
		adaptive.Host.MeanPowerW, adaptive.Host.SLOViolFrac*100)
}
