// Batch jobs: four finite best-effort jobs time-share a xapian server's
// spare resources under each of the FCFS, SJF, and RR disciplines — the
// multi-co-runner extension the paper sketches in Section V-G. SJF should
// win on mean flow time; makespans should be comparable.
package main

import (
	"fmt"
	"log"
	"time"

	"pocolo"
)

func main() {
	log.SetFlags(0)

	sys, err := pocolo.NewSystem(42)
	if err != nil {
		log.Fatal(err)
	}
	trace, err := pocolo.ConstantTrace(0.3)
	if err != nil {
		log.Fatal(err)
	}

	// One long job submitted first, three shorter ones behind it — the
	// classic convoy that separates FCFS from SJF.
	jobs := []pocolo.BatchJob{
		{App: "lstm", SizeOps: 2000},
		{App: "rnn", SizeOps: 600},
		{App: "graph", SizeOps: 400},
		{App: "pbzip", SizeOps: 500},
	}

	for _, policy := range []pocolo.BatchPolicy{pocolo.FCFS, pocolo.SJF, pocolo.RR} {
		res, err := sys.RunBatch("xapian", trace, policy, 5*time.Second, jobs, 10*time.Minute)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4s  done=%-5v  makespan=%-8s  mean flow time=%-8s\n",
			policy, res.Done, res.Makespan.Truncate(100*time.Millisecond), res.MeanFlowTime.Truncate(100*time.Millisecond))
		for _, c := range res.Completions {
			fmt.Printf("      %-6s finished at %s (%.0f ops)\n", c.App, c.At.Truncate(100*time.Millisecond), c.SizeOps)
		}
		fmt.Printf("      server: power util %.0f%%, SLO violations %.1f%%\n\n",
			res.Host.PowerUtil*100, res.Host.SLOViolFrac*100)
	}
}
