// Three resources: the paper's formulation covers k direct resources plus
// power, even though the prototype manages two (cores and LLC ways). This
// example exercises the general k-resource machinery through the public
// API with a third direct resource — memory bandwidth — showing that the
// fitting, the preference vector, the budget-constrained demand, and the
// least-power allocation all generalize without any 2-resource assumptions.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"pocolo"
)

func main() {
	log.SetFlags(0)

	// Ground truth for a synthetic analytics workload over three direct
	// resources: perf = 12 · cores^0.5 · ways^0.3 · membw^0.2, with power
	// 4 W/core, 1.2 W/way, 2.5 W per bandwidth unit over an 8 W static
	// floor.
	truthAlpha := []float64{0.5, 0.3, 0.2}
	truthPower := []float64{4.0, 1.2, 2.5}
	const truthScale, truthStatic = 12.0, 8.0
	perf := func(r []float64) float64 {
		v := truthScale
		for j, a := range truthAlpha {
			v *= math.Pow(r[j], a)
		}
		return v
	}
	powerW := func(r []float64) float64 {
		v := truthStatic
		for j, p := range truthPower {
			v += r[j] * p
		}
		return v
	}

	// Profile: sweep a 3-D allocation grid with measurement noise.
	rng := rand.New(rand.NewSource(7))
	var samples []pocolo.Sample
	for c := 1.0; c <= 12; c += 2 {
		for w := 2.0; w <= 20; w += 4 {
			for b := 1.0; b <= 8; b += 2 {
				r := []float64{c, w, b}
				samples = append(samples, pocolo.Sample{
					Alloc: r,
					Perf:  perf(r) * (1 + rng.NormFloat64()*0.03),
					Power: powerW(r) * (1 + rng.NormFloat64()*0.02),
				})
			}
		}
	}
	resources := []string{"cores", "llc-ways", "membw-units"}
	model, err := pocolo.FitModel("analytics-3d", resources, samples)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("fitted 3-resource model (R² perf %.3f, power %.3f):\n", model.PerfR2, model.PowerR2)
	for j, name := range resources {
		fmt.Printf("  %-12s α=%.3f (truth %.2f)   p=%.2f W/unit (truth %.2f)\n",
			name, model.Alpha[j], truthAlpha[j], model.P[j], truthPower[j])
	}

	pref := model.Preference()
	fmt.Printf("\nindirect preference (α/p, performance per watt):\n")
	for j, name := range resources {
		fmt.Printf("  %-12s %.2f\n", name, pref[j])
	}

	// Budget-constrained demand: what should the app buy with 60 W of
	// dynamic power if the machine offers 12 cores, 20 ways, 8 bw units?
	demand, err := model.DemandCapped(60, []float64{12, 20, 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noptimal demand under a 60 W budget: %.1f cores, %.1f ways, %.1f bw units (%.1f W, perf %.1f)\n",
		demand[0], demand[1], demand[2], model.DynamicPower(demand), model.Perf(demand))

	// Least-power allocation for a performance target, respecting the
	// machine box.
	target := 0.6 * perf([]float64{12, 20, 8})
	alloc, err := model.MinPowerAllocBox(target, []float64{12, 20, 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("least-power allocation for perf %.0f: %.1f cores, %.1f ways, %.1f bw units (%.1f W)\n",
		target, alloc[0], alloc[1], alloc[2], model.DynamicPower(alloc))

	// The integer knob search also generalizes to three dimensions.
	intAlloc, err := model.IntegerMinPowerAlloc(target, []int{12, 20, 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("integer least-power allocation:     %d cores, %d ways, %d bw units\n",
		intAlloc[0], intAlloc[1], intAlloc[2])
}
