package experiments

import (
	"strings"
	"testing"
	"time"

	"pocolo/internal/telemetry"
)

func TestTableString(t *testing.T) {
	tbl := Table{
		Title:   "Demo",
		Caption: "a caption",
		Header:  []string{"name", "value"},
		Rows: [][]string{
			{"short", "1"},
			{"a-much-longer-name", "22"},
		},
	}
	out := tbl.String()
	if !strings.Contains(out, "== Demo ==") {
		t.Errorf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "a caption") {
		t.Errorf("missing caption:\n%s", out)
	}
	// Columns align to the widest cell.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	header := lines[2]
	if !strings.HasPrefix(header, "name") {
		t.Errorf("header = %q", header)
	}
	if len(lines) != 6 { // title, caption, header, separator, 2 rows
		t.Errorf("lines = %d:\n%s", len(lines), out)
	}
	// All data lines share the same width up to trailing spaces.
	w := len(strings.TrimRight(lines[3], " "))
	for _, l := range lines[3:] {
		if len(strings.TrimRight(l, " ")) > w+4 {
			t.Errorf("misaligned line %q", l)
		}
	}
}

func TestTableMarkdown(t *testing.T) {
	tbl := Table{
		Title:  "MD",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}},
	}
	md := tbl.Markdown()
	for _, want := range []string{"### MD", "| a | b |", "| --- | --- |", "| 1 | 2 |"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestFormatHelpers(t *testing.T) {
	if f1(1.26) != "1.3" || f2(1.234) != "1.23" || f3(1.2345) != "1.234" {
		t.Error("float formatting broken")
	}
	if pct(0.123) != "12.3%" {
		t.Errorf("pct = %q", pct(0.123))
	}
}

func TestSteadyStateMean(t *testing.T) {
	s := telemetry.NewSeries("x")
	if got := steadyStateMean(s, time.Second); got != 0 {
		t.Errorf("empty series = %v", got)
	}
	start := time.Unix(0, 0)
	// Warmup spike then steady value.
	if err := s.Append(start, 1000); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		if err := s.Append(start.Add(time.Duration(i)*time.Second), 100); err != nil {
			t.Fatal(err)
		}
	}
	if got := steadyStateMean(s, 5*time.Second); got != 100 {
		t.Errorf("steady mean = %v, want 100 (spike excluded)", got)
	}
	// Warmup longer than the series: fall back to the last value.
	if got := steadyStateMean(s, time.Hour); got != 100 {
		t.Errorf("all-warmup fallback = %v", got)
	}
}
