package experiments

import (
	"fmt"
	"time"

	"pocolo/internal/machine"
	"pocolo/internal/online"
	"pocolo/internal/servermgr"
	"pocolo/internal/sim"
	"pocolo/internal/sim/des"
	"pocolo/internal/workload"
)

// OnlineRow is one configuration of the online-adaptation study.
type OnlineRow struct {
	Config      string
	MeanPowerW  float64
	SLOViolFrac float64
	EnergyKWh   float64
	Refits      int
	PrefCores   float64 // model's cores preference at the end of the run
}

// AblationOnlineResult studies runtime model adaptation (Section IV-A's
// "sampled online during execution" path).
type AblationOnlineResult struct {
	Rows []OnlineRow
	// TruthPrefCores is the ground-truth cores preference of the live app.
	TruthPrefCores float64
}

// AblationOnline runs a xapian server three ways across two load sweeps:
// with its properly profiled model, with a borrowed img-dnn model (a
// conservatively wrong cold start), and with the borrowed model plus the
// online refitting adapter. Adaptation should recover most of the power
// the wrong model wastes while keeping violations transient.
func (s *Suite) AblationOnline() (AblationOnlineResult, error) {
	const dur = 90 * time.Second
	lc, err := s.spec("xapian")
	if err != nil {
		return AblationOnlineResult{}, err
	}
	rightModel, err := s.model("xapian")
	if err != nil {
		return AblationOnlineResult{}, err
	}
	wrongBase, err := s.model("img-dnn")
	if err != nil {
		return AblationOnlineResult{}, err
	}

	run := func(name string, borrowed, adapt bool) (OnlineRow, error) {
		host, err := sim.NewHost(sim.HostConfig{
			Name: name, Machine: s.Machine, LC: lc,
			Trace: workload.UniformSweep(5 * time.Second), Seed: s.Seed,
		})
		if err != nil {
			return OnlineRow{}, err
		}
		model := rightModel
		if borrowed {
			clone := *wrongBase
			clone.Alpha = append([]float64(nil), wrongBase.Alpha...)
			clone.P = append([]float64(nil), wrongBase.P...)
			clone.App = "xapian"
			model = &clone
		}
		mgr, err := servermgr.New(servermgr.Config{Host: host, Model: model, Policy: servermgr.PowerOptimized})
		if err != nil {
			return OnlineRow{}, err
		}
		engine, err := sim.NewEngine(100 * time.Millisecond)
		if err != nil {
			return OnlineRow{}, err
		}
		if err := engine.AddHost(host); err != nil {
			return OnlineRow{}, err
		}
		if err := mgr.Attach(engine); err != nil {
			return OnlineRow{}, err
		}
		var adapter *online.Adapter
		if adapt {
			adapter, err = online.NewAdapter(online.AdapterConfig{Host: host, Manager: mgr})
			if err != nil {
				return OnlineRow{}, err
			}
			if err := adapter.Attach(engine); err != nil {
				return OnlineRow{}, err
			}
		}
		if err := engine.Run(dur); err != nil {
			return OnlineRow{}, err
		}
		m := host.Metrics()
		row := OnlineRow{
			Config:      name,
			MeanPowerW:  m.MeanPowerW,
			SLOViolFrac: m.SLOViolFrac,
			EnergyKWh:   m.EnergyKWh,
			PrefCores:   mgr.Model().Preference()[0],
		}
		if adapter != nil {
			_, _, row.Refits, _ = adapter.Stats()
		}
		return row, nil
	}

	var res AblationOnlineResult
	res.TruthPrefCores, _ = lc.PreferenceTruth()
	for _, c := range []struct {
		name     string
		borrowed bool
		adapt    bool
	}{
		{"profiled model", false, false},
		{"borrowed model (img-dnn)", true, false},
		{"borrowed + online refit", true, true},
	} {
		row, err := run(c.name, c.borrowed, c.adapt)
		if err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders the result.
func (r AblationOnlineResult) Table() Table {
	t := Table{
		Title:   "Ablation: online model adaptation (xapian, two load sweeps)",
		Caption: fmt.Sprintf("Ground-truth cores preference %.2f. The borrowed model over-allocates; the adapter recovers the wasted power.", r.TruthPrefCores),
		Header:  []string{"configuration", "mean power (W)", "SLO violations", "energy (kWh)", "refits", "final cores pref"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Config, f1(row.MeanPowerW), pct(row.SLOViolFrac),
			fmt.Sprintf("%.4f", row.EnergyKWh), fmt.Sprint(row.Refits), f2(row.PrefCores),
		})
	}
	return t
}

// DESRow is one utilization point of the fluid-vs-DES comparison.
type DESRow struct {
	Rho      float64
	FluidP99 float64
	DESP99   float64
	// FluidGrowth and DESGrowth normalize each tail to its value at the
	// lowest utilization, removing the scale difference between the two
	// models (the fluid law's latency floor is calibrated to the
	// application's SLO; the exponential-service queue's scale is its
	// service time).
	FluidGrowth float64
	DESGrowth   float64
}

// ValidationDESResult cross-validates the fluid latency law against the
// request-level discrete-event queue.
type ValidationDESResult struct {
	App   string
	Alloc machine.Alloc
	Rows  []DESRow
}

// ValidationDES drives a Poisson request stream through a k-server queue
// sized from a xapian allocation and compares the measured p99 against the
// fluid model's analytic tail at matched utilizations. The two are
// different queueing laws, so no exact match is expected — the validation
// is that both tails grow together and stay within a small factor through
// the operating range the controller uses.
func (s *Suite) ValidationDES() (ValidationDESResult, error) {
	spec, err := s.spec("xapian")
	if err != nil {
		return ValidationDESResult{}, err
	}
	alloc := machine.Alloc{Cores: 6, Ways: 10, FreqGHz: s.Machine.MaxFreqGHz, Duty: 1}
	res := ValidationDESResult{App: "xapian", Alloc: alloc}
	var fluidBase, desBase float64
	for i, rho := range []float64{0.3, 0.5, 0.7, 0.85, 0.97} {
		load := rho * spec.Capacity(alloc)
		fluid := spec.P99(alloc, load)
		out, err := des.Run(des.FromAlloc(spec, alloc, load, 3*time.Minute, s.Seed))
		if err != nil {
			return res, err
		}
		measured := out.Hist.Percentile(99)
		if i == 0 {
			fluidBase, desBase = fluid, measured
		}
		res.Rows = append(res.Rows, DESRow{
			Rho: rho, FluidP99: fluid, DESP99: measured,
			FluidGrowth: fluid / fluidBase, DESGrowth: measured / desBase,
		})
	}
	return res, nil
}

// Table renders the result.
func (r ValidationDESResult) Table() Table {
	t := Table{
		Title:   fmt.Sprintf("Validation: fluid latency law vs discrete-event queue (%s on %v)", r.App, r.Alloc),
		Caption: "Absolute scales differ by design (the fluid law's floor is SLO-calibrated, the queue's is service-time-based); the normalized growth with utilization must track.",
		Header:  []string{"utilization ρ", "fluid p99 (ms)", "M/M/k p99 (ms)", "fluid growth", "M/M/k growth"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{f2(row.Rho), f3(row.FluidP99), f3(row.DESP99), f2(row.FluidGrowth), f2(row.DESGrowth)})
	}
	return t
}
