package experiments

import (
	"fmt"
	"math"
	"sort"
	"time"

	"pocolo/internal/cluster"
	"pocolo/internal/parallel"
	"pocolo/internal/profiler"
	"pocolo/internal/servermgr"
	"pocolo/internal/sim"
	"pocolo/internal/timeshare"
	"pocolo/internal/utility"
	"pocolo/internal/workload"
)

// The ablation experiments probe the design choices DESIGN.md calls out:
// the placement solver, the latency slack guard, the power capper's knob
// order, whole-range vs myopic placement, profiling cost, and the
// multi-co-runner sharing disciplines.

// SolverRow is one placement solver's outcome on the performance matrix.
type SolverRow struct {
	Solver    string
	Value     float64
	WallTime  time.Duration
	Placement map[string]string
}

// AblationSolversResult compares the placement solvers.
type AblationSolversResult struct {
	Rows []SolverRow
}

// AblationSolvers builds the performance matrix once and solves it with
// every solver, timing each. LP, Hungarian and exhaustive must agree on
// the optimum; random is the baseline's expected quality.
func (s *Suite) AblationSolvers() (AblationSolversResult, error) {
	mx, err := cluster.BuildMatrix(cluster.MatrixConfig{
		Machine: s.Machine, LC: s.Catalog.LC(), BE: s.Catalog.BE(), Models: s.Models,
	})
	if err != nil {
		return AblationSolversResult{}, err
	}
	var res AblationSolversResult
	for _, method := range []string{"lp", "hungarian", "exhaustive"} {
		start := time.Now()
		placement, value, err := mx.Solve(method)
		if err != nil {
			return AblationSolversResult{}, err
		}
		res.Rows = append(res.Rows, SolverRow{
			Solver: method, Value: value, WallTime: time.Since(start), Placement: placement,
		})
	}
	// Random placement: expected value over many draws.
	start := time.Now()
	trials := 200
	sum := 0.0
	for i := 0; i < trials; i++ {
		placement := cluster.PlaceRandom(s.Catalog.LC(), s.Catalog.BE(), s.Seed+int64(i))
		for bi, be := range mx.BENames {
			for li, lc := range mx.LCNames {
				if placement[be] == lc {
					sum += mx.Value[bi][li]
				}
			}
		}
	}
	res.Rows = append(res.Rows, SolverRow{
		Solver: "random(mean)", Value: sum / float64(trials), WallTime: time.Since(start) / time.Duration(trials),
	})
	return res, nil
}

// Table renders the result.
func (r AblationSolversResult) Table() Table {
	t := Table{
		Title:   "Ablation: placement solver choice",
		Caption: "LP/Hungarian/exhaustive must find the same optimum; random shows what naive placement forfeits.",
		Header:  []string{"solver", "matrix value", "wall time"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{row.Solver, f2(row.Value), row.WallTime.String()})
	}
	return t
}

// SlackRow is one slack setting's cluster outcome.
type SlackRow struct {
	TargetSlack float64
	BEThrNorm   float64
	SLOViolFrac float64
	PowerUtil   float64
}

// AblationSlackResult sweeps the latency slack guard.
type AblationSlackResult struct {
	Rows []SlackRow
}

// AblationSlack re-runs the POColo cluster with tighter and looser slack
// guards than the paper's 10%: tighter guards trade best-effort throughput
// for latency safety.
func (s *Suite) AblationSlack() (AblationSlackResult, error) {
	var res AblationSlackResult
	placement, _, err := cluster.Place(s.clusterConfig())
	if err != nil {
		return res, err
	}
	slacks := []float64{0.05, 0.10, 0.20}
	rows := make([]SlackRow, len(slacks))
	err = parallel.ForEach(len(slacks), s.Parallel, func(i int) error {
		cfg := s.clusterConfig()
		cfg.TargetSlack = slacks[i]
		run, err := cluster.RunPlacement(cfg, placement, servermgr.PowerOptimized)
		if err != nil {
			return err
		}
		rows[i] = SlackRow{
			TargetSlack: slacks[i],
			BEThrNorm:   run.BENormThroughput,
			SLOViolFrac: run.SLOViolFrac,
			PowerUtil:   run.MeanPowerUtil,
		}
		return nil
	})
	if err != nil {
		return res, err
	}
	res.Rows = rows
	return res, nil
}

// Table renders the result.
func (r AblationSlackResult) Table() Table {
	t := Table{
		Title:   "Ablation: latency slack guard",
		Caption: "POColo placement, power-optimized management; the paper's guard is 10%.",
		Header:  []string{"slack guard", "BE throughput (norm)", "worst SLO violations", "power util"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{pct(row.TargetSlack), f3(row.BEThrNorm), pct(row.SLOViolFrac), pct(row.PowerUtil)})
	}
	return t
}

// KnobOrderRow is one capper configuration's outcome.
type KnobOrderRow struct {
	Order       string
	BEThr       float64
	CapOverFrac float64
	EnergyKWh   float64
}

// AblationKnobOrderResult compares the capper's knob orders.
type AblationKnobOrderResult struct {
	Rows []KnobOrderRow
}

// AblationKnobOrder runs the power-hungriest pairing (graph on an off-peak
// xapian server) with the paper's frequency-first capper and the reversed
// duty-first order. The cube-law argument for frequency-first only covers
// the power that actually scales with frequency (the core component);
// for co-runners whose draw is dominated by frequency-insensitive cache
// and memory activity — graph here — duty-cycling can shed the same watts
// for less throughput, a nuance the paper's fixed order leaves on the
// table.
func (s *Suite) AblationKnobOrder() (AblationKnobOrderResult, error) {
	var res AblationKnobOrderResult
	orders := []bool{false, true}
	rows := make([]KnobOrderRow, len(orders))
	err := parallel.ForEach(len(orders), s.Parallel, func(oi int) error {
		dutyFirst := orders[oi]
		trace, err := workload.NewConstantTrace(0.1)
		if err != nil {
			return err
		}
		lc, err := s.spec("xapian")
		if err != nil {
			return err
		}
		be, err := s.spec("graph")
		if err != nil {
			return err
		}
		host, err := sim.NewHost(sim.HostConfig{
			Name: "knob", Machine: s.Machine, LC: lc, BE: be, Trace: trace, Seed: s.Seed,
		})
		if err != nil {
			return err
		}
		model, err := s.model("xapian")
		if err != nil {
			return err
		}
		mgr, err := servermgr.New(servermgr.Config{
			Host: host, Model: model, Policy: servermgr.PowerOptimized, DutyFirst: dutyFirst,
		})
		if err != nil {
			return err
		}
		engine, err := sim.NewEngine(100 * time.Millisecond)
		if err != nil {
			return err
		}
		if err := engine.AddHost(host); err != nil {
			return err
		}
		if err := mgr.Attach(engine); err != nil {
			return err
		}
		if err := engine.Run(60 * time.Second); err != nil {
			return err
		}
		m := host.Metrics()
		order := "freq→duty (paper)"
		if dutyFirst {
			order = "duty→freq"
		}
		rows[oi] = KnobOrderRow{
			Order: order, BEThr: m.BEMeanThr, CapOverFrac: m.CapOverFrac, EnergyKWh: m.EnergyKWh,
		}
		return nil
	})
	if err != nil {
		return res, err
	}
	res.Rows = rows
	return res, nil
}

// Table renders the result.
func (r AblationKnobOrderResult) Table() Table {
	t := Table{
		Title:   "Ablation: power capper knob order (graph on xapian @ 10% load)",
		Caption: "Both orders must hold the cap; which keeps more throughput depends on how much of the co-runner's power scales with frequency.",
		Header:  []string{"order", "BE throughput", "over-cap time", "energy (kWh)"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{row.Order, f1(row.BEThr), pct(row.CapOverFrac), fmt.Sprintf("%.4f", row.EnergyKWh)})
	}
	return t
}

// MyopicRow contrasts placement quality for one matrix variant.
type MyopicRow struct {
	Variant   string
	Placement map[string]string
	BEThrNorm float64
}

// AblationMyopicResult reproduces the paper's "whole load range, not one
// operating point" argument at the placement level.
type AblationMyopicResult struct {
	Rows []MyopicRow
}

// AblationMyopic builds the performance matrix once from the full 10–90%
// load range and once myopically from a single 50% operating point, then
// simulates both placements. The Fig. 4 lesson predicts the whole-range
// matrix places at least as well.
func (s *Suite) AblationMyopic() (AblationMyopicResult, error) {
	var res AblationMyopicResult
	variants := []struct {
		name  string
		loads []float64
	}{
		{"whole range (10–90%)", nil},
		{"myopic (50% only)", []float64{0.5}},
		{"myopic (10% only)", []float64{0.1}},
	}
	rows := make([]MyopicRow, len(variants))
	err := parallel.ForEach(len(variants), s.Parallel, func(i int) error {
		v := variants[i]
		mx, err := cluster.BuildMatrix(cluster.MatrixConfig{
			Machine: s.Machine, LC: s.Catalog.LC(), BE: s.Catalog.BE(), Models: s.Models, Loads: v.loads,
		})
		if err != nil {
			return err
		}
		placement, _, err := mx.Solve("lp")
		if err != nil {
			return err
		}
		run, err := cluster.RunPlacement(s.clusterConfig(), placement, servermgr.PowerOptimized)
		if err != nil {
			return err
		}
		rows[i] = MyopicRow{
			Variant: v.name, Placement: placement, BEThrNorm: run.BENormThroughput,
		}
		return nil
	})
	if err != nil {
		return res, err
	}
	res.Rows = rows
	return res, nil
}

// Table renders the result.
func (r AblationMyopicResult) Table() Table {
	t := Table{
		Title:   "Ablation: whole-load-range vs myopic placement",
		Caption: "Achieved BE throughput when the matrix is estimated from the full load range vs a single operating point.",
		Header:  []string{"matrix variant", "placement", "achieved BE throughput (norm)"},
	}
	for _, row := range r.Rows {
		var placements []string
		for _, be := range sortedKeys(row.Placement) {
			placements = append(placements, fmt.Sprintf("%s→%s", be, row.Placement[be]))
		}
		t.Rows = append(t.Rows, []string{row.Variant, fmt.Sprint(placements), f3(row.BEThrNorm)})
	}
	return t
}

// ProfilingRow is one profiling budget's fitted-model quality.
type ProfilingRow struct {
	Stride      string
	Samples     int
	MeanPerfR2  float64
	MaxPrefErr  float64 // worst |fitted − ground truth| cores preference
	SamePlace   bool    // placement agrees with the full-grid placement
	PlaceString string
}

// AblationProfilingResult sweeps the profiling grid stride.
type AblationProfilingResult struct {
	Rows []ProfilingRow
}

// AblationProfiling refits every model from progressively sparser
// profiling grids and checks how far the preference vectors drift and
// whether the placement decision survives — the knob that sets profiling
// cost in a real deployment.
func (s *Suite) AblationProfiling() (AblationProfilingResult, error) {
	var res AblationProfilingResult
	fullPlacement, _, err := cluster.Place(s.clusterConfig())
	if err != nil {
		return res, err
	}
	for _, stride := range []struct{ c, w int }{{1, 1}, {2, 2}, {3, 4}, {4, 5}} {
		mm := make(map[string]*utility.Model)
		var worstPref float64
		var sumR2 float64
		var samples int
		all := append(s.Catalog.LC(), s.Catalog.BE()...)
		for i, spec := range all {
			m, err := profiler.ProfileAndFit(profiler.Config{
				Spec: spec, Machine: s.Machine, CoreStep: stride.c, WayStep: stride.w,
				Seed: s.Seed + int64(i)*101,
			})
			if err != nil {
				return res, fmt.Errorf("stride %dx%d: %s: %w", stride.c, stride.w, spec.Name, err)
			}
			mm[spec.Name] = m
			sumR2 += m.PerfR2
			samples = m.N
			truth, _ := spec.PreferenceTruth()
			if d := math.Abs(m.Preference()[0] - truth); d > worstPref {
				worstPref = d
			}
		}
		mx, err := cluster.BuildMatrix(cluster.MatrixConfig{
			Machine: s.Machine, LC: s.Catalog.LC(), BE: s.Catalog.BE(), Models: mm,
		})
		if err != nil {
			return res, err
		}
		placement, _, err := mx.Solve("lp")
		if err != nil {
			return res, err
		}
		same := len(placement) == len(fullPlacement)
		for be, lc := range fullPlacement {
			if placement[be] != lc {
				same = false
			}
		}
		var ps []string
		for _, be := range sortedKeys(placement) {
			ps = append(ps, fmt.Sprintf("%s→%s", be, placement[be]))
		}
		res.Rows = append(res.Rows, ProfilingRow{
			Stride:      fmt.Sprintf("%d×%d", stride.c, stride.w),
			Samples:     samples,
			MeanPerfR2:  sumR2 / float64(len(all)),
			MaxPrefErr:  worstPref,
			SamePlace:   same,
			PlaceString: fmt.Sprint(ps),
		})
	}
	return res, nil
}

// Table renders the result.
func (r AblationProfilingResult) Table() Table {
	t := Table{
		Title:   "Ablation: profiling grid stride (profiling cost)",
		Caption: "Sparser grids fit from fewer samples; the placement should survive moderate sparsity.",
		Header:  []string{"stride", "samples/app", "mean perf R²", "worst preference error", "placement unchanged"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Stride, fmt.Sprint(row.Samples), f3(row.MeanPerfR2), f3(row.MaxPrefErr), fmt.Sprint(row.SamePlace),
		})
	}
	return t
}

// SharingRow is one sharing discipline's outcome for two co-runners.
type SharingRow struct {
	Discipline string
	TotalBEOps float64
	PerApp     map[string]float64
	CapOver    float64
}

// AblationSharingResult compares single-app, spatial, and temporal sharing
// of the spare resources (the Section V-G extension).
type AblationSharingResult struct {
	Rows []SharingRow
}

// AblationSharing gives a sphinx server two co-runners (graph and lstm)
// and compares: graph alone, spatial sharing (model-guided split), and
// temporal sharing (RR time-slicing) over the same 60 simulated seconds.
func (s *Suite) AblationSharing() (AblationSharingResult, error) {
	const dur = 60 * time.Second
	lc, err := s.spec("sphinx")
	if err != nil {
		return AblationSharingResult{}, err
	}
	lcModel, err := s.model("sphinx")
	if err != nil {
		return AblationSharingResult{}, err
	}
	graph, err := s.spec("graph")
	if err != nil {
		return AblationSharingResult{}, err
	}
	lstm, err := s.spec("lstm")
	if err != nil {
		return AblationSharingResult{}, err
	}

	build := func(extra []*workload.Spec, beModels bool) (*sim.Host, *servermgr.Manager, *sim.Engine, error) {
		trace, err := workload.NewConstantTrace(0.3)
		if err != nil {
			return nil, nil, nil, err
		}
		host, err := sim.NewHost(sim.HostConfig{
			Name: "sharing", Machine: s.Machine, LC: lc, BE: graph, ExtraBE: extra, Trace: trace, Seed: s.Seed,
		})
		if err != nil {
			return nil, nil, nil, err
		}
		cfg := servermgr.Config{Host: host, Model: lcModel, Policy: servermgr.PowerOptimized}
		if beModels {
			cfg.BEModels = s.Models
		}
		mgr, err := servermgr.New(cfg)
		if err != nil {
			return nil, nil, nil, err
		}
		engine, err := sim.NewEngine(100 * time.Millisecond)
		if err != nil {
			return nil, nil, nil, err
		}
		if err := engine.AddHost(host); err != nil {
			return nil, nil, nil, err
		}
		if err := mgr.Attach(engine); err != nil {
			return nil, nil, nil, err
		}
		return host, mgr, engine, nil
	}

	var res AblationSharingResult

	// Single co-runner (the paper's main configuration).
	host, _, engine, err := build(nil, false)
	if err != nil {
		return res, err
	}
	if err := engine.Run(dur); err != nil {
		return res, err
	}
	m := host.Metrics()
	res.Rows = append(res.Rows, SharingRow{
		Discipline: "single (graph only)", TotalBEOps: m.BEOps, PerApp: m.BEOpsBy, CapOver: m.CapOverFrac,
	})

	// Spatial sharing: graph + lstm split the spare via their models.
	host, _, engine, err = build([]*workload.Spec{lstm}, true)
	if err != nil {
		return res, err
	}
	if err := engine.Run(dur); err != nil {
		return res, err
	}
	m = host.Metrics()
	res.Rows = append(res.Rows, SharingRow{
		Discipline: "spatial (graph + lstm)", TotalBEOps: m.BEOps, PerApp: m.BEOpsBy, CapOver: m.CapOverFrac,
	})

	// Temporal sharing: RR over two equal jobs sized so neither finishes.
	host, mgr, engine, err := build([]*workload.Spec{lstm}, false)
	if err != nil {
		return res, err
	}
	sched, err := timeshare.New(timeshare.Config{
		Host: host, Manager: mgr, Policy: timeshare.RR, Quantum: 5 * time.Second,
		Jobs: []timeshare.Job{{App: "graph", SizeOps: 1e9}, {App: "lstm", SizeOps: 1e9}},
	})
	if err != nil {
		return res, err
	}
	if err := sched.Attach(engine); err != nil {
		return res, err
	}
	if err := engine.Run(dur); err != nil {
		return res, err
	}
	m = host.Metrics()
	res.Rows = append(res.Rows, SharingRow{
		Discipline: "temporal (RR, 5s quanta)", TotalBEOps: m.BEOps, PerApp: m.BEOpsBy, CapOver: m.CapOverFrac,
	})
	return res, nil
}

// Table renders the result.
func (r AblationSharingResult) Table() Table {
	t := Table{
		Title:   "Ablation: multi-co-runner sharing disciplines (sphinx @ 30% load, 60s)",
		Caption: "Spatial sharing splits resources by the fitted models; temporal sharing time-slices.",
		Header:  []string{"discipline", "total BE ops", "per-app ops", "over-cap time"},
	}
	for _, row := range r.Rows {
		var per []string
		for _, app := range sortedFloatKeys(row.PerApp) {
			per = append(per, fmt.Sprintf("%s=%.0f", app, row.PerApp[app]))
		}
		t.Rows = append(t.Rows, []string{row.Discipline, f1(row.TotalBEOps), fmt.Sprint(per), pct(row.CapOver)})
	}
	return t
}

func sortedFloatKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
