package experiments

import (
	"fmt"
	"strings"
)

// Table is a renderable experiment result: a title, a caption tying it to
// the paper artifact, a header row, and data rows.
type Table struct {
	Title   string
	Caption string
	Header  []string
	Rows    [][]string
}

// String renders the table as aligned plain text.
func (t Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	if t.Caption != "" {
		fmt.Fprintf(&b, "%s\n", t.Caption)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavored markdown (used to generate
// EXPERIMENTS.md).
func (t Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s\n\n", t.Title)
	if t.Caption != "" {
		fmt.Fprintf(&b, "%s\n\n", t.Caption)
	}
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}

func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
