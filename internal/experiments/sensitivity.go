package experiments

import (
	"fmt"
	"time"

	"pocolo/internal/cluster"
	"pocolo/internal/parallel"
	"pocolo/internal/stats"
)

// SeedRow is one random seed's headline numbers.
type SeedRow struct {
	Seed              int64
	ImprovementPOM    float64
	ImprovementPOColo float64
}

// SeedSensitivityResult repeats the Fig. 12 headline across independent
// seeds (fresh profiling noise, placement draws, and simulation noise per
// seed) and summarizes the spread — the error bars the paper's single-run
// bar charts omit.
type SeedSensitivityResult struct {
	Rows []SeedRow
	// POMMin/Mean/Max and POColoMin/Mean/Max summarize the improvements.
	POMMin, POMMean, POMMax          float64
	POColoMin, POColoMean, POColoMax float64
}

// SeedSensitivity reruns the full pipeline (profile → fit → place →
// simulate all three policies) under the given seeds (default 3 seeds
// derived from the suite's).
func (s *Suite) SeedSensitivity(seeds ...int64) (SeedSensitivityResult, error) {
	if len(seeds) == 0 {
		seeds = []int64{s.Seed, s.Seed + 1000, s.Seed + 2000}
	}
	var res SeedSensitivityResult
	// Each replica is a fully independent pipeline (its own profiling
	// noise, models, placements, and simulations), so the replicas fan out
	// through the worker pool; rows land at their seed's index.
	rows := make([]SeedRow, len(seeds))
	err := parallel.ForEach(len(seeds), s.Parallel, func(i int) error {
		seed := seeds[i]
		sub, err := NewSuite(seed)
		if err != nil {
			return err
		}
		sub.Dwell = minDuration(s.Dwell, 3*time.Second)
		sub.Parallel = s.Parallel
		if err := sub.prefetchPolicies(cluster.Random, cluster.POM, cluster.POColo); err != nil {
			return err
		}
		random, err := sub.policyRun(cluster.Random)
		if err != nil {
			return err
		}
		pom, err := sub.policyRun(cluster.POM)
		if err != nil {
			return err
		}
		pocolo, err := sub.policyRun(cluster.POColo)
		if err != nil {
			return err
		}
		row := SeedRow{Seed: seed}
		if random.BENormThroughput > 0 {
			row.ImprovementPOM = pom.BENormThroughput/random.BENormThroughput - 1
			row.ImprovementPOColo = pocolo.BENormThroughput/random.BENormThroughput - 1
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return res, err
	}
	res.Rows = rows
	var poms, pocolos []float64
	for _, row := range rows {
		poms = append(poms, row.ImprovementPOM)
		pocolos = append(pocolos, row.ImprovementPOColo)
	}
	res.POMMin, res.POMMean, res.POMMax = stats.Min(poms), stats.Mean(poms), stats.Max(poms)
	res.POColoMin, res.POColoMean, res.POColoMax = stats.Min(pocolos), stats.Mean(pocolos), stats.Max(pocolos)
	return res, nil
}

func minDuration(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}

// Table renders the result.
func (r SeedSensitivityResult) Table() Table {
	t := Table{
		Title: "Sensitivity: Fig. 12 headline across independent seeds",
		Caption: "POM " + pct(r.POMMean) + " [" + pct(r.POMMin) + ", " + pct(r.POMMax) + "], " +
			"POColo " + pct(r.POColoMean) + " [" + pct(r.POColoMin) + ", " + pct(r.POColoMax) + "] over Random. Paper: +8% / +18%.",
		Header: []string{"seed", "POM improvement", "POColo improvement"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{fmt.Sprint(row.Seed), pct(row.ImprovementPOM), pct(row.ImprovementPOColo)})
	}
	return t
}
