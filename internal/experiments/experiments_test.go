package experiments

import (
	"strings"
	"sync"
	"testing"
	"time"
)

var (
	suiteOnce sync.Once
	suiteVal  *Suite
	suiteErr  error
)

// sharedSuite builds the (deterministic) suite once for the whole package;
// the cluster policy runs are memoized inside it, so the evaluation tests
// share their simulations exactly like the paper's figures share runs.
func sharedSuite(t *testing.T) *Suite {
	t.Helper()
	suiteOnce.Do(func() {
		suiteVal, suiteErr = NewSuite(42)
		if suiteErr == nil {
			suiteVal.Dwell = 3 * time.Second
		}
	})
	if suiteErr != nil {
		t.Fatal(suiteErr)
	}
	return suiteVal
}

func TestTableI(t *testing.T) {
	s := sharedSuite(t)
	r := s.TableI()
	if len(r.Rows) != 7 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	tbl := r.Table()
	if !strings.Contains(tbl.String(), "Xeon") {
		t.Error("table should name the processor")
	}
	if !strings.Contains(tbl.Markdown(), "| Property |") {
		t.Error("markdown rendering broken")
	}
}

func TestTableIIMatchesCalibration(t *testing.T) {
	s := sharedSuite(t)
	r, err := s.TableII()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		// Measured peak power within 2% of the Table II target.
		if rel := (row.MeasuredPowerW - row.SpecPeakPowerW) / row.SpecPeakPowerW; rel > 0.02 || rel < -0.02 {
			t.Errorf("%s: measured %0.1f W vs spec %0.1f W", row.App, row.MeasuredPowerW, row.SpecPeakPowerW)
		}
		// Goodput at peak within 2% of the peak load.
		if rel := (row.MeasuredGoodput - row.PeakLoad) / row.PeakLoad; rel > 0.02 || rel < -0.02 {
			t.Errorf("%s: goodput %0.1f vs peak %0.1f", row.App, row.MeasuredGoodput, row.PeakLoad)
		}
	}
	if len(r.Table().Rows) != 4 {
		t.Error("table rendering broken")
	}
}

func TestFig1NaiveColocationOvershoots(t *testing.T) {
	s := sharedSuite(t)
	r, err := s.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if r.OverCapFrac < 0.2 {
		t.Errorf("naive colocation over cap only %s of the cycle; the motivation needs sustained overshoot", pct(r.OverCapFrac))
	}
	if r.PeakPowerW <= r.CapW {
		t.Errorf("peak %0.1f W never exceeded the %0.1f W capacity", r.PeakPowerW, r.CapW)
	}
	if len(r.Series) < 10 {
		t.Errorf("series too short: %d", len(r.Series))
	}
	if len(r.Table().Rows) != len(r.Series) {
		t.Error("table rendering broken")
	}
}

func TestFig2AllCorunnersOvershoot(t *testing.T) {
	s := sharedSuite(t)
	r, err := s.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	byName := map[string]Fig2Row{}
	for _, row := range r.Rows {
		byName[row.BE] = row
		if row.OvershootFrac <= 0 {
			t.Errorf("%s: no overshoot (%s) — Fig. 2's premise requires all co-runners to exceed the cap", row.BE, pct(row.OvershootFrac))
		}
	}
	// Graph is the most power-hungry co-runner.
	for _, other := range []string{"lstm", "rnn", "pbzip"} {
		if byName["graph"].ServerPowerW <= byName[other].ServerPowerW {
			t.Errorf("graph (%0.1f W) should out-draw %s (%0.1f W)", byName["graph"].ServerPowerW, other, byName[other].ServerPowerW)
		}
	}
}

func TestFig3CappedThroughputOrdering(t *testing.T) {
	s := sharedSuite(t)
	r, err := s.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	drops := map[string]float64{}
	unc := map[string]float64{}
	for _, row := range r.Rows {
		drops[row.BE] = row.DropFrac
		unc[row.BE] = row.UncappedThr
	}
	// Paper: similar uncapped throughput across apps; under the cap LSTM
	// and RNN drop only a few percent while graph drops the most.
	for _, a := range []string{"lstm", "rnn", "graph", "pbzip"} {
		for _, b := range []string{"lstm", "rnn", "graph", "pbzip"} {
			if unc[a] > unc[b]*1.15 {
				t.Errorf("uncapped throughput should be similar: %s %.1f vs %s %.1f", a, unc[a], b, unc[b])
			}
		}
	}
	if drops["lstm"] > 0.10 || drops["rnn"] > 0.10 {
		t.Errorf("lstm/rnn drops too large: %s / %s", pct(drops["lstm"]), pct(drops["rnn"]))
	}
	if drops["graph"] < drops["pbzip"] || drops["graph"] < drops["lstm"] {
		t.Errorf("graph should drop the most: %v", drops)
	}
	if drops["graph"] < 0.15 {
		t.Errorf("graph drop %s too small to motivate power-aware placement", pct(drops["graph"]))
	}
}

func TestFig4RNNBeatsLSTMOnXapian(t *testing.T) {
	s := sharedSuite(t)
	r, err := s.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 18 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if r.MeanThr["rnn"] <= r.MeanThr["lstm"] {
		t.Errorf("rnn mean %.1f should beat lstm mean %.1f across the load spectrum", r.MeanThr["rnn"], r.MeanThr["lstm"])
	}
	// Throughput declines as the primary's load rises, for both apps.
	for _, app := range []string{"lstm", "rnn"} {
		var prev float64
		first := true
		for _, row := range r.Rows {
			if row.BE != app {
				continue
			}
			if !first && row.Thr > prev*1.1 {
				t.Errorf("%s: throughput should broadly decline with LC load (%.1f after %.1f)", app, row.Thr, prev)
			}
			prev = row.Thr
			first = false
		}
	}
}

func TestFig5CurvesAreConvexAndPathIsCheapest(t *testing.T) {
	s := sharedSuite(t)
	r, err := s.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Curves) != 4 || len(r.ExpansionPath) != 4 {
		t.Fatalf("curves/path = %d/%d", len(r.Curves), len(r.ExpansionPath))
	}
	for _, c := range r.Curves {
		for i := 1; i < len(c.Points); i++ {
			if c.Points[i].Y >= c.Points[i-1].Y {
				t.Errorf("load %s: indifference curve not downward sloping", pct(c.LoadFrac))
			}
		}
	}
	// Higher load curves lie strictly outside lower ones at equal cores.
	lo, hi := r.Curves[0], r.Curves[len(r.Curves)-1]
	if hi.Points[0].Y <= lo.Points[0].Y {
		t.Error("iso-load curves should nest outward with load")
	}
	// Expansion path moves outward.
	for i := 1; i < len(r.ExpansionPath); i++ {
		if r.ExpansionPath[i].X <= r.ExpansionPath[i-1].X {
			t.Error("expansion path should move outward with load")
		}
	}
}

func TestFig6SparesShrinkWithLoad(t *testing.T) {
	s := sharedSuite(t)
	r, err := s.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Box) != 4 {
		t.Fatalf("box points = %d", len(r.Box))
	}
	for i := 1; i < len(r.Box); i++ {
		if r.Box[i].Secondary.X > r.Box[i-1].Secondary.X+1e-9 {
			t.Error("spare cores should shrink as the primary's load grows")
		}
	}
	// sphinx prefers ways: its least-power allocations hold relatively
	// more of the way budget than of the core budget.
	mid := r.Box[1]
	if mid.Primary.Y/r.TotalWays <= mid.Primary.X/r.TotalCores {
		t.Error("sphinx should hold proportionally more ways than cores")
	}
}

func TestFig8RSquaredInPaperBand(t *testing.T) {
	s := sharedSuite(t)
	r, err := s.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 8 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.PerfR2 < 0.8 || row.PerfR2 > 1.0 {
			t.Errorf("%s: perf R² %0.3f outside the paper's 0.8–1.0 band", row.App, row.PerfR2)
		}
		if row.PowerR2 < 0.8 || row.PowerR2 > 1.0 {
			t.Errorf("%s: power R² %0.3f outside the paper's 0.8–1.0 band", row.App, row.PowerR2)
		}
	}
}

func TestFig9to11PreferenceAnchors(t *testing.T) {
	s := sharedSuite(t)
	r, err := s.Fig9to11()
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]PrefRow{}
	for _, row := range r.Rows {
		rows[row.App] = row
	}
	// Paper anchors (Section V-C): sphinx 0.2:0.8, lstm 0.13:0.87,
	// graph 0.8:0.2 indirect; sphinx direct 0.6:0.4.
	anchors := map[string]float64{"sphinx": 0.20, "lstm": 0.13, "graph": 0.80}
	for app, want := range anchors {
		got := rows[app].IndirectCores
		if got < want-0.08 || got > want+0.08 {
			t.Errorf("%s: indirect cores preference %0.2f, paper %0.2f", app, got, want)
		}
	}
	if d := rows["sphinx"].DirectCores; d < 0.52 || d > 0.68 {
		t.Errorf("sphinx direct cores preference %0.2f, paper 0.6", d)
	}
	// The paper's Fig. 9→11 pivot: without power, sphinx prefers cores;
	// with power, it prefers ways.
	if rows["sphinx"].DirectCores < 0.5 {
		t.Error("sphinx should prefer cores before accounting for power")
	}
	if rows["sphinx"].IndirectCores > 0.5 {
		t.Error("sphinx should prefer ways after accounting for power")
	}
}

func TestFig12PolicyImprovements(t *testing.T) {
	s := sharedSuite(t)
	r, err := s.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 12 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Paper: POM ≈ +8%, POColo ≈ +18% over Random. Require the ordering
	// and a meaningful fraction of the published magnitudes.
	if r.ImprovementPOM < 0.02 {
		t.Errorf("POM improvement %s too small (paper ≈ +8%%)", pct(r.ImprovementPOM))
	}
	if r.ImprovementPOColo < 0.10 {
		t.Errorf("POColo improvement %s too small (paper ≈ +18%%)", pct(r.ImprovementPOColo))
	}
	if r.ImprovementPOColo <= r.ImprovementPOM {
		t.Error("POColo must improve on POM")
	}
}

func TestFig13PowerUtilizationOrdering(t *testing.T) {
	s := sharedSuite(t)
	r, err := s.Fig13()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 12 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Paper: Random ≈96% with frequent capping; POM/POColo lower.
	if r.Mean["random"] < 0.90 {
		t.Errorf("random power utilization %s suspiciously low", pct(r.Mean["random"]))
	}
	if r.Mean["pom"] >= r.Mean["random"] {
		t.Errorf("POM utilization %s should be below Random %s", pct(r.Mean["pom"]), pct(r.Mean["random"]))
	}
	if r.Mean["pocolo"] >= r.Mean["random"] {
		t.Errorf("POColo utilization %s should be below Random %s", pct(r.Mean["pocolo"]), pct(r.Mean["random"]))
	}
}

func TestFig14PlacementMatchesPaper(t *testing.T) {
	s := sharedSuite(t)
	r, err := s.Fig14()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 16 {
		t.Fatalf("cells = %d", len(r.Cells))
	}
	if r.Placement["graph"] != "sphinx" {
		t.Errorf("graph → %s, paper says sphinx", r.Placement["graph"])
	}
	if r.Placement["lstm"] != "img-dnn" {
		t.Errorf("lstm → %s, paper says img-dnn", r.Placement["lstm"])
	}
	rest := map[string]bool{r.Placement["rnn"]: true, r.Placement["pbzip"]: true}
	if !rest["xapian"] || !rest["tpcc"] {
		t.Errorf("rnn/pbzip → %v, paper says xapian+tpcc", rest)
	}
	// POColo's per-server choice should be at or near the measured best:
	// within 10% of the best cell for that server.
	best := map[string]float64{}
	for _, c := range r.Cells {
		if c.MeanNorm > best[c.LC] {
			best[c.LC] = c.MeanNorm
		}
	}
	for _, c := range r.Cells {
		if c.Chosen && c.MeanNorm < best[c.LC]*0.90 {
			t.Errorf("%s: chose %s (%.3f) but best is %.3f", c.LC, c.BE, c.MeanNorm, best[c.LC])
		}
	}
}

func TestFig15TCOOrdering(t *testing.T) {
	s := sharedSuite(t)
	r, err := s.Fig15()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	totals := map[string]float64{}
	for _, row := range r.Rows {
		totals[row.Policy] = row.TotalMonthlyUSD
	}
	// Paper ordering: POColo < POM < Random < Random(NoCap).
	if !(totals["pocolo"] < totals["pom"] && totals["pom"] < totals["random"] && totals["random"] < totals["random-nocap"]) {
		t.Errorf("TCO ordering broken: %v", totals)
	}
	for name, saving := range r.SavingsVs {
		if saving <= 0 {
			t.Errorf("POColo should save vs %s, got %s", name, pct(saving))
		}
	}
}

func TestSuiteErrors(t *testing.T) {
	s := sharedSuite(t)
	if _, err := s.model("nope"); err == nil {
		t.Error("expected error for unknown model")
	}
	if _, err := s.spec("nope"); err == nil {
		t.Error("expected error for unknown spec")
	}
}
