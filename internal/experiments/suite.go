// Package experiments regenerates every table and figure of the paper's
// evaluation (Section V) on the simulated platform. Each experiment is a
// method on Suite returning a typed result that renders as a text table;
// cmd/pocolo-experiments prints them all, and the benchmark harness at the
// repository root exposes one testing.B target per artifact.
package experiments

import (
	"fmt"
	"time"

	"pocolo/internal/cluster"
	"pocolo/internal/machine"
	"pocolo/internal/profiler"
	"pocolo/internal/utility"
	"pocolo/internal/workload"
)

// Suite carries the shared experimental setup: the Table I platform, the
// eight calibrated applications, and their fitted utility models.
type Suite struct {
	Machine machine.Config
	Catalog *workload.Catalog
	Models  map[string]*utility.Model
	Seed    int64
	// Dwell is the simulated time per load level in cluster runs (default
	// 5 s; experiments sweep nine levels).
	Dwell time.Duration

	policyRuns map[cluster.Policy]*cluster.Result
}

// NewSuite profiles and fits all eight applications on the Table I server
// and returns a ready experiment suite.
func NewSuite(seed int64) (*Suite, error) {
	cfg := machine.XeonE52650()
	cat, err := workload.Defaults(cfg)
	if err != nil {
		return nil, err
	}
	models, err := profiler.FitAll(cfg, append(cat.LC(), cat.BE()...), seed)
	if err != nil {
		return nil, err
	}
	return &Suite{
		Machine:    cfg,
		Catalog:    cat,
		Models:     models,
		Seed:       seed,
		Dwell:      5 * time.Second,
		policyRuns: make(map[cluster.Policy]*cluster.Result),
	}, nil
}

// clusterConfig assembles the shared cluster configuration.
func (s *Suite) clusterConfig() cluster.Config {
	return cluster.Config{
		Machine: s.Machine,
		LC:      s.Catalog.LC(),
		BE:      s.Catalog.BE(),
		Models:  s.Models,
		Dwell:   s.Dwell,
		Seed:    s.Seed,
	}
}

// policyRun runs (and memoizes) the cluster evaluation for one policy;
// Figs. 12, 13, and 15 share these runs.
func (s *Suite) policyRun(p cluster.Policy) (*cluster.Result, error) {
	if r, ok := s.policyRuns[p]; ok {
		return r, nil
	}
	r, err := cluster.Run(s.clusterConfig(), p)
	if err != nil {
		return nil, fmt.Errorf("experiments: %v cluster run: %w", p, err)
	}
	s.policyRuns[p] = &r
	return &r, nil
}

func (s *Suite) spec(name string) (*workload.Spec, error) {
	return s.Catalog.ByName(name)
}

func (s *Suite) model(name string) (*utility.Model, error) {
	m, ok := s.Models[name]
	if !ok {
		return nil, fmt.Errorf("experiments: no fitted model for %s", name)
	}
	return m, nil
}
