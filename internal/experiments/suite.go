// Package experiments regenerates every table and figure of the paper's
// evaluation (Section V) on the simulated platform. Each experiment is a
// method on Suite returning a typed result that renders as a text table;
// cmd/pocolo-experiments prints them all, and the benchmark harness at the
// repository root exposes one testing.B target per artifact.
package experiments

import (
	"fmt"
	"sync"
	"time"

	"pocolo/internal/cluster"
	"pocolo/internal/machine"
	"pocolo/internal/parallel"
	"pocolo/internal/profiler"
	"pocolo/internal/trace"
	"pocolo/internal/utility"
	"pocolo/internal/workload"
)

// Suite carries the shared experimental setup: the Table I platform, the
// eight calibrated applications, and their fitted utility models.
type Suite struct {
	Machine machine.Config
	Catalog *workload.Catalog
	Models  map[string]*utility.Model
	Seed    int64
	// Dwell is the simulated time per load level in cluster runs (default
	// 5 s; experiments sweep nine levels).
	Dwell time.Duration
	// Parallel bounds the worker pool every experiment fans its
	// independent simulation units through (0 = GOMAXPROCS, 1 =
	// sequential). Results are identical at every setting.
	Parallel int
	// Invariants runs every underlying cluster simulation with the
	// invariant harness bound to its per-tick observe path; a violation
	// fails the experiment instead of producing a silently wrong table.
	Invariants bool
	// PlannerOff forces every server manager through the exact per-tick
	// grid search instead of the precomputed allocation planner. Results
	// are bit-identical either way.
	PlannerOff bool
	// Trace, when non-nil, collects decision-trace events from every
	// simulation the experiments run (and disables the sweep memo for
	// them, so the timeline is complete).
	Trace *trace.Set
	// Budget, when non-nil, puts every cluster run under a power budget —
	// flat or hierarchical (see cluster.BudgetConfig). Budgeted runs
	// share one engine across all hosts and bypass the sweep memo, so
	// the per-policy memoized results also stay per-budget correct: the
	// policyRuns cache is keyed inside one Suite, which holds one budget.
	Budget *cluster.BudgetConfig

	mu         sync.Mutex
	policyRuns map[cluster.Policy]*cluster.Result
}

// NewSuite profiles and fits all eight applications on the Table I server
// and returns a ready experiment suite.
func NewSuite(seed int64) (*Suite, error) {
	cfg := machine.XeonE52650()
	cat, err := workload.Defaults(cfg)
	if err != nil {
		return nil, err
	}
	models, err := profiler.FitAll(cfg, append(cat.LC(), cat.BE()...), seed)
	if err != nil {
		return nil, err
	}
	return &Suite{
		Machine:    cfg,
		Catalog:    cat,
		Models:     models,
		Seed:       seed,
		Dwell:      5 * time.Second,
		policyRuns: make(map[cluster.Policy]*cluster.Result),
	}, nil
}

// clusterConfig assembles the shared cluster configuration.
func (s *Suite) clusterConfig() cluster.Config {
	return cluster.Config{
		Machine:  s.Machine,
		LC:       s.Catalog.LC(),
		BE:       s.Catalog.BE(),
		Models:   s.Models,
		Dwell:      s.Dwell,
		Seed:       s.Seed,
		Parallel:   s.Parallel,
		Invariants: s.Invariants,
		PlannerOff: s.PlannerOff,
		Trace:      s.Trace,
		Budget:     s.Budget,
	}
}

// policyRun runs (and memoizes) the cluster evaluation for one policy;
// Figs. 12, 13, and 15 share these runs. Safe for concurrent use: the
// figure methods prefetch all three policies through the worker pool.
func (s *Suite) policyRun(p cluster.Policy) (*cluster.Result, error) {
	s.mu.Lock()
	if r, ok := s.policyRuns[p]; ok {
		s.mu.Unlock()
		return r, nil
	}
	s.mu.Unlock()
	r, err := cluster.Run(s.clusterConfig(), p)
	if err != nil {
		return nil, fmt.Errorf("experiments: %v cluster run: %w", p, err)
	}
	s.mu.Lock()
	s.policyRuns[p] = &r
	s.mu.Unlock()
	return &r, nil
}

// prefetchPolicies fans the (independent) policy cluster runs through the
// worker pool so a figure needing several pays the wall-clock of the
// slowest, not the sum. Memoized runs are skipped.
func (s *Suite) prefetchPolicies(ps ...cluster.Policy) error {
	return parallel.ForEach(len(ps), s.Parallel, func(i int) error {
		_, err := s.policyRun(ps[i])
		return err
	})
}

func (s *Suite) spec(name string) (*workload.Spec, error) {
	return s.Catalog.ByName(name)
}

func (s *Suite) model(name string) (*utility.Model, error) {
	m, ok := s.Models[name]
	if !ok {
		return nil, fmt.Errorf("experiments: no fitted model for %s", name)
	}
	return m, nil
}
