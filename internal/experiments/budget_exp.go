package experiments

import (
	"time"

	"pocolo/internal/budget"
	"pocolo/internal/servermgr"
	"pocolo/internal/sim"
	"pocolo/internal/workload"
)

// BudgetRow is one budget-division policy's cluster outcome.
type BudgetRow struct {
	Policy        string
	TotalBEOps    float64
	MeanClusterW  float64
	BudgetW       float64
	WorstSLOViol  float64
	OverBudgetPct float64
}

// AblationBudgetResult studies cluster-level power budgeting — the
// hierarchical capping layer (Dynamo-style, cited in Section VI) above
// Pocolo's per-server managers.
type AblationBudgetResult struct {
	Rows []BudgetRow
}

// AblationBudget runs the POColo-placed cluster under an aggregate power
// budget of 85% of the summed provisioned capacities, with servers held at
// deliberately skewed loads (10%–80%), and compares dividing the budget
// equally against following demand. The demand-proportional division
// should route watts to the servers whose tenants can spend them.
func (s *Suite) AblationBudget() (AblationBudgetResult, error) {
	const dur = 60 * time.Second
	placement := map[string]string{"graph": "sphinx", "lstm": "img-dnn", "pbzip": "xapian", "rnn": "tpcc"}
	loads := map[string]float64{"img-dnn": 0.8, "sphinx": 0.1, "xapian": 0.6, "tpcc": 0.3}

	var res AblationBudgetResult
	for _, policy := range []budget.Policy{budget.EqualSplit, budget.DemandProportional} {
		engine, err := sim.NewEngine(100 * time.Millisecond)
		if err != nil {
			return res, err
		}
		var hosts []*sim.Host
		var managers []*servermgr.Manager
		var totalProvisioned float64
		for _, lc := range s.Catalog.LC() {
			trace, err := workload.NewConstantTrace(loads[lc.Name])
			if err != nil {
				return res, err
			}
			var be *workload.Spec
			for beName, lcName := range placement {
				if lcName == lc.Name {
					if be, err = s.spec(beName); err != nil {
						return res, err
					}
				}
			}
			host, err := sim.NewHost(sim.HostConfig{
				Name: lc.Name, Machine: s.Machine, LC: lc, BE: be, Trace: trace, Seed: s.Seed,
			})
			if err != nil {
				return res, err
			}
			if err := engine.AddHost(host); err != nil {
				return res, err
			}
			model, err := s.model(lc.Name)
			if err != nil {
				return res, err
			}
			mgr, err := servermgr.New(servermgr.Config{Host: host, Model: model, Policy: servermgr.PowerOptimized})
			if err != nil {
				return res, err
			}
			if err := mgr.Attach(engine); err != nil {
				return res, err
			}
			hosts = append(hosts, host)
			managers = append(managers, mgr)
			totalProvisioned += host.CapW()
		}
		budgetW := 0.85 * totalProvisioned
		b, err := budget.New(budget.Config{
			TotalW: budgetW, Hosts: hosts, Managers: managers,
			Policy: policy, Period: 2 * time.Second,
		})
		if err != nil {
			return res, err
		}
		if err := b.Attach(engine); err != nil {
			return res, err
		}
		if err := engine.Run(dur); err != nil {
			return res, err
		}
		row := BudgetRow{Policy: policy.String(), BudgetW: budgetW}
		overSamples, samples := 0, 0
		for _, h := range hosts {
			m := h.Metrics()
			row.TotalBEOps += m.BEOps
			row.MeanClusterW += m.MeanPowerW
			if m.SLOViolFrac > row.WorstSLOViol {
				row.WorstSLOViol = m.SLOViolFrac
			}
		}
		// Budget compliance from the recorded power series.
		series := make([][]float64, len(hosts))
		for i, h := range hosts {
			series[i] = h.PowerSeries().Values()
		}
		for tick := 0; tick < len(series[0]); tick++ {
			sum := 0.0
			for i := range hosts {
				sum += series[i][tick]
			}
			samples++
			if sum > budgetW*1.02 {
				overSamples++
			}
		}
		if samples > 0 {
			row.OverBudgetPct = float64(overSamples) / float64(samples)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders the result.
func (r AblationBudgetResult) Table() Table {
	t := Table{
		Title:   "Ablation: cluster-level power budgeting (85% aggregate budget, skewed loads)",
		Caption: "Dividing a datacenter budget by demand routes watts to servers whose tenants can spend them.",
		Header:  []string{"division", "total BE ops", "mean cluster power (W)", "budget (W)", "over budget", "worst SLO viol"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Policy, f1(row.TotalBEOps), f1(row.MeanClusterW), f1(row.BudgetW),
			pct(row.OverBudgetPct), pct(row.WorstSLOViol),
		})
	}
	return t
}
