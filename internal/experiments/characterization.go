package experiments

import (
	"fmt"

	"pocolo/internal/utility"
)

// Fig5Curve is one iso-load indifference curve of the primary application.
type Fig5Curve struct {
	LoadFrac float64
	Points   []utility.CurvePoint
}

// Fig5Result reproduces Fig. 5: sphinx's indifference curves and the
// least-power expansion path through them.
type Fig5Result struct {
	App           string
	Curves        []Fig5Curve
	ExpansionPath []utility.CurvePoint
	// PathLoads labels each expansion-path point with its load fraction.
	PathLoads []float64
}

// Fig5 computes iso-load curves at 20%–80% of sphinx's peak plus the
// least-power allocation per load (the dotted line the server manager
// walks).
func (s *Suite) Fig5() (Fig5Result, error) {
	model, err := s.model("sphinx")
	if err != nil {
		return Fig5Result{}, err
	}
	spec, err := s.spec("sphinx")
	if err != nil {
		return Fig5Result{}, err
	}
	res := Fig5Result{App: "sphinx"}
	var targets []float64
	for _, frac := range []float64{0.2, 0.4, 0.6, 0.8} {
		target := frac * spec.PeakLoad
		pts, err := model.IndifferenceCurve(target, 1, float64(s.Machine.Cores), 12)
		if err != nil {
			return Fig5Result{}, err
		}
		res.Curves = append(res.Curves, Fig5Curve{LoadFrac: frac, Points: pts})
		targets = append(targets, target)
		res.PathLoads = append(res.PathLoads, frac)
	}
	res.ExpansionPath, err = model.ExpansionPath(targets)
	if err != nil {
		return Fig5Result{}, err
	}
	return res, nil
}

// Table renders the result.
func (r Fig5Result) Table() Table {
	t := Table{
		Title:   fmt.Sprintf("Fig. 5: Indifference curves and least-power path for %s", r.App),
		Caption: "Each iso-load row lists (cores, ways) pairs giving the same performance; the path rows are the least-power allocation per load.",
		Header:  []string{"kind", "load", "cores", "ways"},
	}
	for _, c := range r.Curves {
		for _, p := range c.Points {
			t.Rows = append(t.Rows, []string{"iso-load", pct(c.LoadFrac), f2(p.X), f2(p.Y)})
		}
	}
	for i, p := range r.ExpansionPath {
		t.Rows = append(t.Rows, []string{"min-power", pct(r.PathLoads[i]), f2(p.X), f2(p.Y)})
	}
	return t
}

// Fig6Result reproduces Fig. 6: the Edgeworth box between the primary's
// least-power allocations and the spare left for the secondary.
type Fig6Result struct {
	App        string
	TotalCores float64
	TotalWays  float64
	Box        []utility.BoxPoint
	LoadFracs  []float64
}

// Fig6 computes the Edgeworth-box geometry for sphinx across its load
// range.
func (s *Suite) Fig6() (Fig6Result, error) {
	model, err := s.model("sphinx")
	if err != nil {
		return Fig6Result{}, err
	}
	spec, err := s.spec("sphinx")
	if err != nil {
		return Fig6Result{}, err
	}
	res := Fig6Result{
		App:        "sphinx",
		TotalCores: float64(s.Machine.Cores),
		TotalWays:  float64(s.Machine.LLCWays),
	}
	var targets []float64
	for _, frac := range []float64{0.2, 0.4, 0.6, 0.8} {
		targets = append(targets, frac*spec.PeakLoad)
		res.LoadFracs = append(res.LoadFracs, frac)
	}
	res.Box, err = utility.EdgeworthBox(model, targets, res.TotalCores, res.TotalWays)
	if err != nil {
		return Fig6Result{}, err
	}
	return res, nil
}

// Table renders the result.
func (r Fig6Result) Table() Table {
	t := Table{
		Title:   fmt.Sprintf("Fig. 6: Edgeworth box — %s primary vs best-effort spare", r.App),
		Caption: fmt.Sprintf("Box totals: %.0f cores × %.0f ways. Primary rows use the lower-left origin, spare rows the upper-right.", r.TotalCores, r.TotalWays),
		Header:  []string{"load", "primary cores", "primary ways", "spare cores", "spare ways"},
	}
	for i, b := range r.Box {
		t.Rows = append(t.Rows, []string{
			pct(r.LoadFracs[i]), f2(b.Primary.X), f2(b.Primary.Y), f2(b.Secondary.X), f2(b.Secondary.Y),
		})
	}
	return t
}

// Fig8Row is one application's goodness of fit.
type Fig8Row struct {
	App     string
	Class   string
	PerfR2  float64
	PowerR2 float64
	Samples int
}

// Fig8Result reproduces Fig. 8 (a and b).
type Fig8Result struct {
	Rows []Fig8Row
}

// Fig8 reports the coefficient of determination of the fitted performance
// and power models for every application.
func (s *Suite) Fig8() (Fig8Result, error) {
	var res Fig8Result
	for _, spec := range append(s.Catalog.LC(), s.Catalog.BE()...) {
		m, err := s.model(spec.Name)
		if err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, Fig8Row{
			App:     spec.Name,
			Class:   spec.Class.String(),
			PerfR2:  m.PerfR2,
			PowerR2: m.PowerR2,
			Samples: m.N,
		})
	}
	return res, nil
}

// Table renders the result.
func (r Fig8Result) Table() Table {
	t := Table{
		Title:   "Fig. 8: Goodness of fit (R²) of the Cobb-Douglas indirect utility model",
		Caption: "The paper reports 0.8–0.95 for performance and 0.8–0.98 for power.",
		Header:  []string{"app", "class", "R² performance", "R² power", "samples"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{row.App, row.Class, f3(row.PerfR2), f3(row.PowerR2), fmt.Sprint(row.Samples)})
	}
	return t
}

// PrefRow is one application's fitted preference decomposition.
type PrefRow struct {
	App string
	// DirectCores/DirectWays: α-only preferences (Fig. 9).
	DirectCores, DirectWays float64
	// PowerCores/PowerWays: power-coefficient shares (Fig. 10).
	PowerCores, PowerWays float64
	// IndirectCores/IndirectWays: (α/p)-normalized preferences (Fig. 11).
	IndirectCores, IndirectWays float64
}

// Fig9to11Result reproduces Figs. 9, 10, and 11 as one parameter table.
type Fig9to11Result struct {
	Rows []PrefRow
}

// Fig9to11 decomposes every fitted model into the paper's three bar
// charts: direct utility (α), power needs (p), and indirect utility (α/p).
func (s *Suite) Fig9to11() (Fig9to11Result, error) {
	var res Fig9to11Result
	for _, spec := range append(s.Catalog.LC(), s.Catalog.BE()...) {
		m, err := s.model(spec.Name)
		if err != nil {
			return res, err
		}
		direct := m.DirectPreference()
		indirect := m.Preference()
		pSum := m.P[0] + m.P[1]
		res.Rows = append(res.Rows, PrefRow{
			App:           spec.Name,
			DirectCores:   direct[0],
			DirectWays:    direct[1],
			PowerCores:    m.P[0] / pSum,
			PowerWays:     m.P[1] / pSum,
			IndirectCores: indirect[0],
			IndirectWays:  indirect[1],
		})
	}
	return res, nil
}

// Table renders the result.
func (r Fig9to11Result) Table() Table {
	t := Table{
		Title:   "Figs. 9–11: Direct utility (α), power needs (p), and indirect utility (α/p) preferences",
		Caption: "Shares normalized to sum to 1 per pair. Paper anchors: sphinx indirect 0.2:0.8, lstm 0.13:0.87, graph 0.8:0.2.",
		Header:  []string{"app", "α cores", "α ways", "p cores", "p ways", "α/p cores", "α/p ways"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.App,
			f2(row.DirectCores), f2(row.DirectWays),
			f2(row.PowerCores), f2(row.PowerWays),
			f2(row.IndirectCores), f2(row.IndirectWays),
		})
	}
	return t
}
