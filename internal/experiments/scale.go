package experiments

import (
	"fmt"
	"time"

	"pocolo/internal/assign"
	"pocolo/internal/cluster"
)

// ScaleRow is one cluster-size point of the solver scaling study.
type ScaleRow struct {
	Servers       int
	LPTime        time.Duration
	HungarianTime time.Duration
	Optimal       float64
	RandomMean    float64
	// RandomLossFrac is the expected fraction of the optimum a random
	// placement forfeits at this scale.
	RandomLossFrac float64
}

// AblationScaleResult studies placement at cluster sizes beyond the
// paper's 4-server testbed.
type AblationScaleResult struct {
	Rows []ScaleRow
}

// AblationScale replicates the four LC clusters and the four BE candidates
// r times each (a datacenter hosts many servers per primary application,
// Section II-A) and measures the exact solvers' cost and the random
// baseline's expected loss as the assignment grows from 4×4 to 32×32.
func (s *Suite) AblationScale() (AblationScaleResult, error) {
	base, err := cluster.BuildMatrix(cluster.MatrixConfig{
		Machine: s.Machine, LC: s.Catalog.LC(), BE: s.Catalog.BE(), Models: s.Models,
	})
	if err != nil {
		return AblationScaleResult{}, err
	}
	var res AblationScaleResult
	for _, replicas := range []int{1, 2, 4, 8} {
		n := len(base.BENames) * replicas
		value := make([][]float64, n)
		for i := 0; i < n; i++ {
			value[i] = make([]float64, n)
			for j := 0; j < n; j++ {
				value[i][j] = base.Value[i%len(base.BENames)][j%len(base.LCNames)]
			}
		}
		start := time.Now()
		_, lpVal, err := assign.LP(value)
		if err != nil {
			return res, err
		}
		lpTime := time.Since(start)
		start = time.Now()
		_, huVal, err := assign.Hungarian(value)
		if err != nil {
			return res, err
		}
		huTime := time.Since(start)
		if diff := lpVal - huVal; diff > 1e-6 || diff < -1e-6 {
			return res, fmt.Errorf("experiments: solver disagreement at n=%d: lp %v vs hungarian %v", n, lpVal, huVal)
		}
		// Expected random value: each worker's mean over tasks (valid in
		// expectation for a uniform random permutation).
		randomMean := 0.0
		for i := 0; i < n; i++ {
			rowSum := 0.0
			for j := 0; j < n; j++ {
				rowSum += value[i][j]
			}
			randomMean += rowSum / float64(n)
		}
		res.Rows = append(res.Rows, ScaleRow{
			Servers:        n,
			LPTime:         lpTime,
			HungarianTime:  huTime,
			Optimal:        huVal,
			RandomMean:     randomMean,
			RandomLossFrac: 1 - randomMean/huVal,
		})
	}
	return res, nil
}

// Table renders the result.
func (r AblationScaleResult) Table() Table {
	t := Table{
		Title:   "Ablation: placement at cluster scale (replicated 4×4 matrix)",
		Caption: "Exact solvers stay cheap far beyond the paper's 4-server testbed; random placement's expected loss persists at scale.",
		Header:  []string{"servers", "Hungarian time", "LP time", "optimal value", "random mean", "random loss"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(row.Servers), row.HungarianTime.String(), row.LPTime.String(),
			f1(row.Optimal), f1(row.RandomMean), pct(row.RandomLossFrac),
		})
	}
	return t
}
