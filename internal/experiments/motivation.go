package experiments

import (
	"fmt"
	"time"

	"pocolo/internal/cluster"
	"pocolo/internal/servermgr"
	"pocolo/internal/sim"
	"pocolo/internal/telemetry"
	"pocolo/internal/workload"
)

// uncappedW stands in for "no power constraint": a capacity no workload
// can reach, so the capper never engages.
const uncappedW = 100000

// runManagedHost simulates one server hosting lcName (plus beName unless
// empty) under the trace and management policy for the duration, returning
// the host for series access and its metrics.
func (s *Suite) runManagedHost(lcName, beName string, trace workload.Trace, capW float64, policy servermgr.LCPolicy, dur time.Duration, seed int64) (*sim.Host, sim.Metrics, error) {
	lc, err := s.spec(lcName)
	if err != nil {
		return nil, sim.Metrics{}, err
	}
	var be *workload.Spec
	if beName != "" {
		if be, err = s.spec(beName); err != nil {
			return nil, sim.Metrics{}, err
		}
	}
	host, err := sim.NewHost(sim.HostConfig{
		Name:    fmt.Sprintf("%s+%s", lcName, beName),
		Machine: s.Machine,
		LC:      lc,
		BE:      be,
		Trace:   trace,
		CapW:    capW,
		Seed:    seed,
	})
	if err != nil {
		return nil, sim.Metrics{}, err
	}
	model, err := s.model(lcName)
	if err != nil {
		return nil, sim.Metrics{}, err
	}
	engine, err := sim.NewEngine(100 * time.Millisecond)
	if err != nil {
		return nil, sim.Metrics{}, err
	}
	if err := engine.AddHost(host); err != nil {
		return nil, sim.Metrics{}, err
	}
	mgr, err := servermgr.New(servermgr.Config{Host: host, Model: model, Policy: policy, Seed: seed})
	if err != nil {
		return nil, sim.Metrics{}, err
	}
	if err := mgr.Attach(engine); err != nil {
		return nil, sim.Metrics{}, err
	}
	if err := engine.Run(dur); err != nil {
		return nil, sim.Metrics{}, err
	}
	return host, host.Metrics(), nil
}

// TableIResult reproduces Table I (server configuration).
type TableIResult struct {
	Rows [][2]string
}

// TableI lists the simulated platform's configuration.
func (s *Suite) TableI() TableIResult {
	c := s.Machine
	return TableIResult{Rows: [][2]string{
		{"Processor", c.Name},
		{"Cores", fmt.Sprintf("%d cores", c.Cores)},
		{"Frequency", fmt.Sprintf("%.1f GHz to %.1f GHz", c.MinFreqGHz, c.MaxFreqGHz)},
		{"LLC capacity", fmt.Sprintf("%.0fM, %d ways", c.LLCMB, c.LLCWays)},
		{"Memory", fmt.Sprintf("%dGB DDR4", c.MemoryGB)},
		{"Storage", fmt.Sprintf("%dGB SSD", c.StorageGB)},
		{"Power", fmt.Sprintf("Idle:%.0f W, Active:%.0f W", c.IdlePowerW, c.ActivePowerW)},
	}}
}

// Table renders the result.
func (r TableIResult) Table() Table {
	t := Table{
		Title:   "Table I: Server configuration",
		Caption: "Simulated platform (internal/machine.XeonE52650).",
		Header:  []string{"Property", "Configuration"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{row[0], row[1]})
	}
	return t
}

// TableIIRow is one latency-critical application's measured server-level
// characteristics.
type TableIIRow struct {
	App              string
	Domain           string
	P95Ms, P99Ms     float64
	PeakLoad         float64
	SpecPeakPowerW   float64
	MeasuredPowerW   float64 // mean server power at peak load, full machine
	MeasuredP95Ms    float64
	MeasuredP99Ms    float64
	MeasuredGoodput  float64
	SLOViolFracAtMax float64
}

// TableIIResult reproduces Table II.
type TableIIResult struct {
	Rows []TableIIRow
}

// TableII runs each LC application at its peak load on the full machine
// (no manager interference: the host grants the primary everything by
// default) and reports the measured characteristics next to the
// calibration targets.
func (s *Suite) TableII() (TableIIResult, error) {
	var res TableIIResult
	for i, lc := range s.Catalog.LC() {
		trace, err := workload.NewConstantTrace(1.0)
		if err != nil {
			return res, err
		}
		host, err := sim.NewHost(sim.HostConfig{
			Name:    lc.Name,
			Machine: s.Machine,
			LC:      lc,
			Trace:   trace,
			Seed:    s.Seed + int64(i),
		})
		if err != nil {
			return res, err
		}
		engine, err := sim.NewEngine(100 * time.Millisecond)
		if err != nil {
			return res, err
		}
		if err := engine.AddHost(host); err != nil {
			return res, err
		}
		if err := engine.Run(30 * time.Second); err != nil {
			return res, err
		}
		m := host.Metrics()
		res.Rows = append(res.Rows, TableIIRow{
			App:              lc.Name,
			Domain:           lc.Domain,
			P95Ms:            lc.SLO.P95Ms,
			P99Ms:            lc.SLO.P99Ms,
			PeakLoad:         lc.PeakLoad,
			SpecPeakPowerW:   lc.ProvisionedPowerW,
			MeasuredPowerW:   m.MeanPowerW,
			MeasuredP95Ms:    host.ObservedP95(),
			MeasuredP99Ms:    host.ObservedP99(),
			MeasuredGoodput:  m.LCOps / m.DurationSec,
			SLOViolFracAtMax: m.SLOViolFrac,
		})
	}
	return res, nil
}

// Table renders the result.
func (r TableIIResult) Table() Table {
	t := Table{
		Title:   "Table II: Latency-critical applications, server-level characteristics",
		Caption: "Measured at peak load on the full machine; power includes the 50 W idle floor.",
		Header:  []string{"app", "domain", "p95 SLO (ms)", "p99 SLO (ms)", "measured p95/p99 (ms)", "peak load (req/s)", "provisioned (W)", "measured power (W)", "measured goodput (req/s)"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.App, row.Domain, f2(row.P95Ms), f2(row.P99Ms),
			f2(row.MeasuredP95Ms) + "/" + f2(row.MeasuredP99Ms), f1(row.PeakLoad),
			f1(row.SpecPeakPowerW), f1(row.MeasuredPowerW), f1(row.MeasuredGoodput),
		})
	}
	return t
}

// Fig1Point is one sampled instant of the motivation time series.
type Fig1Point struct {
	AtSec    float64
	LoadFrac float64
	PowerW   float64
}

// Fig1Result reproduces Fig. 1: naive colocation under a diurnal primary
// load overshoots the provisioned power capacity during off-peak hours.
type Fig1Result struct {
	CapW          float64
	Series        []Fig1Point
	PeakPowerW    float64
	OverCapFrac   float64
	OffPeakOverW  float64 // worst overshoot observed during the trough
	SoloPeakW     float64 // power of the primary alone at its peak load
	BECorunner    string
	LCApplication string
}

// Fig1 simulates a xapian server with a graph co-runner admitted naively
// (no power capping) across one diurnal cycle.
func (s *Suite) Fig1() (Fig1Result, error) {
	trace, err := workload.NewDiurnalTrace(0.1, 0.9, 4*time.Minute)
	if err != nil {
		return Fig1Result{}, err
	}
	host, m, err := s.runManagedHost("xapian", "graph", trace, uncappedW, servermgr.PowerUnaware, 4*time.Minute, s.Seed)
	if err != nil {
		return Fig1Result{}, err
	}
	lc, err := s.spec("xapian")
	if err != nil {
		return Fig1Result{}, err
	}
	res := Fig1Result{
		CapW:          lc.ProvisionedPowerW,
		PeakPowerW:    m.PeakPowerW,
		LCApplication: "xapian",
		BECorunner:    "graph",
		SoloPeakW:     lc.ProvisionedPowerW,
	}
	pts := host.PowerSeries().Points()
	loads := host.LoadSeries().Points()
	over := 0
	for i := 0; i < len(pts); i++ {
		if pts[i].Value > res.CapW {
			over++
			if pts[i].Value-res.CapW > res.OffPeakOverW {
				res.OffPeakOverW = pts[i].Value - res.CapW
			}
		}
		if i%100 == 0 { // sample every 10 s for the rendered series
			res.Series = append(res.Series, Fig1Point{
				AtSec:    pts[i].Time.Sub(pts[0].Time).Seconds(),
				LoadFrac: loads[i].Value / lc.PeakLoad,
				PowerW:   pts[i].Value,
			})
		}
	}
	if len(pts) > 0 {
		res.OverCapFrac = float64(over) / float64(len(pts))
	}
	return res, nil
}

// Table renders the result.
func (r Fig1Result) Table() Table {
	t := Table{
		Title: "Fig. 1: Naive colocation overshoots provisioned power under diurnal load",
		Caption: fmt.Sprintf("%s + %s, no power capping; provisioned capacity %.0f W; over cap %s of the cycle, worst overshoot +%.1f W.",
			r.LCApplication, r.BECorunner, r.CapW, pct(r.OverCapFrac), r.OffPeakOverW),
		Header: []string{"t (s)", "LC load (% peak)", "server power (W)", "over cap?"},
	}
	for _, p := range r.Series {
		over := ""
		if p.PowerW > r.CapW {
			over = "OVER"
		}
		t.Rows = append(t.Rows, []string{f1(p.AtSec), pct(p.LoadFrac), f1(p.PowerW), over})
	}
	return t
}

// Fig2Row is one best-effort application's uncapped colocated power draw.
type Fig2Row struct {
	BE            string
	ServerPowerW  float64
	CapW          float64
	OvershootFrac float64 // (power − cap)/cap
}

// Fig2Result reproduces Fig. 2.
type Fig2Result struct {
	Rows []Fig2Row
}

// Fig2 runs xapian at 10% load with each best-effort application on the
// spare resources, power capping disabled, and reports the server draw
// against the provisioned capacity.
func (s *Suite) Fig2() (Fig2Result, error) {
	lc, err := s.spec("xapian")
	if err != nil {
		return Fig2Result{}, err
	}
	var res Fig2Result
	for i, be := range s.Catalog.BE() {
		trace, err := workload.NewConstantTrace(0.1)
		if err != nil {
			return Fig2Result{}, err
		}
		host, _, err := s.runManagedHost("xapian", be.Name, trace, uncappedW, servermgr.PowerOptimized, 30*time.Second, s.Seed+int64(i)*13)
		if err != nil {
			return Fig2Result{}, err
		}
		steady := steadyStateMean(host.PowerSeries(), 5*time.Second)
		res.Rows = append(res.Rows, Fig2Row{
			BE:            be.Name,
			ServerPowerW:  steady,
			CapW:          lc.ProvisionedPowerW,
			OvershootFrac: (steady - lc.ProvisionedPowerW) / lc.ProvisionedPowerW,
		})
	}
	return res, nil
}

// steadyStateMean averages a series after discarding the warmup prefix, so
// single-operating-point measurements are not diluted by the cold-start
// transient.
func steadyStateMean(series *telemetry.Series, warmup time.Duration) float64 {
	pts := series.Points()
	if len(pts) == 0 {
		return 0
	}
	cut := pts[0].Time.Add(warmup)
	sum, n := 0.0, 0
	for _, p := range pts {
		if p.Time.Before(cut) {
			continue
		}
		sum += p.Value
		n++
	}
	if n == 0 {
		return pts[len(pts)-1].Value
	}
	return sum / float64(n)
}

// Table renders the result.
func (r Fig2Result) Table() Table {
	t := Table{
		Title:   "Fig. 2: Server power exceeds provisioned capacity when co-running with xapian @ 10% load",
		Caption: "Power capping disabled; every co-runner pushes the server past its right-sized capacity.",
		Header:  []string{"co-runner", "server power (W)", "provisioned (W)", "overshoot"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{row.BE, f1(row.ServerPowerW), f1(row.CapW), pct(row.OvershootFrac)})
	}
	return t
}

// Fig3Row compares one BE application's throughput with and without the
// power constraint.
type Fig3Row struct {
	BE          string
	UncappedThr float64
	CappedThr   float64
	DropFrac    float64
}

// Fig3Result reproduces Fig. 3.
type Fig3Result struct {
	Rows []Fig3Row
}

// Fig3 measures each BE application's throughput alongside xapian at 10%
// load, first without any power constraint and then under the provisioned
// capacity with the power capper active.
func (s *Suite) Fig3() (Fig3Result, error) {
	var res Fig3Result
	for i, be := range s.Catalog.BE() {
		trace, err := workload.NewConstantTrace(0.1)
		if err != nil {
			return Fig3Result{}, err
		}
		_, unc, err := s.runManagedHost("xapian", be.Name, trace, uncappedW, servermgr.PowerOptimized, 30*time.Second, s.Seed+int64(i)*17)
		if err != nil {
			return Fig3Result{}, err
		}
		_, cap, err := s.runManagedHost("xapian", be.Name, trace, 0, servermgr.PowerOptimized, 30*time.Second, s.Seed+int64(i)*17)
		if err != nil {
			return Fig3Result{}, err
		}
		row := Fig3Row{BE: be.Name, UncappedThr: unc.BEMeanThr, CappedThr: cap.BEMeanThr}
		if unc.BEMeanThr > 0 {
			row.DropFrac = 1 - cap.BEMeanThr/unc.BEMeanThr
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders the result.
func (r Fig3Result) Table() Table {
	t := Table{
		Title:   "Fig. 3: BE throughput with and without the power constraint (xapian @ 10% load)",
		Caption: "Same server resources; only the power budget differs. Throughput in normalized ops/s.",
		Header:  []string{"app", "uncapped thr", "capped thr", "drop"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{row.BE, f1(row.UncappedThr), f1(row.CappedThr), pct(row.DropFrac)})
	}
	return t
}

// Fig4Row is one (application, load) throughput measurement.
type Fig4Row struct {
	BE       string
	LoadFrac float64
	Thr      float64
}

// Fig4Result reproduces Fig. 4: RNN vs LSTM across the whole xapian load
// spectrum.
type Fig4Result struct {
	Rows []Fig4Row
	// MeanThr aggregates per application across loads.
	MeanThr map[string]float64
}

// Fig4 sweeps xapian's load from 10% to 90% with LSTM and RNN as
// co-runners under the provisioned power cap.
func (s *Suite) Fig4() (Fig4Result, error) {
	res := Fig4Result{MeanThr: make(map[string]float64)}
	for _, beName := range []string{"lstm", "rnn"} {
		sum := 0.0
		for li, load := range cluster.DefaultLoadRange() {
			trace, err := workload.NewConstantTrace(load)
			if err != nil {
				return res, err
			}
			_, m, err := s.runManagedHost("xapian", beName, trace, 0, servermgr.PowerOptimized, 20*time.Second, s.Seed+int64(li)*7)
			if err != nil {
				return res, err
			}
			res.Rows = append(res.Rows, Fig4Row{BE: beName, LoadFrac: load, Thr: m.BEMeanThr})
			sum += m.BEMeanThr
		}
		res.MeanThr[beName] = sum / float64(len(cluster.DefaultLoadRange()))
	}
	return res, nil
}

// Table renders the result.
func (r Fig4Result) Table() Table {
	t := Table{
		Title: "Fig. 4: LSTM vs RNN across the xapian load spectrum (power capped)",
		Caption: fmt.Sprintf("Mean throughput: lstm %.1f, rnn %.1f — the whole load range, not one operating point, decides the better co-runner.",
			r.MeanThr["lstm"], r.MeanThr["rnn"]),
		Header: []string{"app", "xapian load", "BE throughput"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{row.BE, pct(row.LoadFrac), f1(row.Thr)})
	}
	return t
}
