package experiments

import (
	"math"
	"testing"
)

func TestAblationSolvers(t *testing.T) {
	s := sharedSuite(t)
	r, err := s.AblationSolvers()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	byName := map[string]SolverRow{}
	for _, row := range r.Rows {
		byName[row.Solver] = row
	}
	// Exact solvers agree; random is strictly worse in expectation.
	opt := byName["exhaustive"].Value
	if math.Abs(byName["lp"].Value-opt) > 1e-6 || math.Abs(byName["hungarian"].Value-opt) > 1e-6 {
		t.Errorf("exact solvers disagree: %v", byName)
	}
	if byName["random(mean)"].Value >= opt {
		t.Errorf("random mean %v should be below optimum %v", byName["random(mean)"].Value, opt)
	}
	if len(r.Table().Rows) != 4 {
		t.Error("table rendering broken")
	}
}

func TestAblationSlack(t *testing.T) {
	s := sharedSuite(t)
	r, err := s.AblationSlack()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// A looser guard (20%) reserves more resources for the primary, so
	// best-effort throughput must not increase versus the 5% guard.
	if r.Rows[2].BEThrNorm > r.Rows[0].BEThrNorm*1.02 {
		t.Errorf("20%% guard throughput %v should not beat 5%% guard %v",
			r.Rows[2].BEThrNorm, r.Rows[0].BEThrNorm)
	}
	// Every setting keeps the cluster functional.
	for _, row := range r.Rows {
		if row.BEThrNorm <= 0 {
			t.Errorf("slack %v: no BE throughput", row.TargetSlack)
		}
		if row.SLOViolFrac > 0.20 {
			t.Errorf("slack %v: violations %v", row.TargetSlack, row.SLOViolFrac)
		}
	}
}

func TestAblationKnobOrder(t *testing.T) {
	s := sharedSuite(t)
	r, err := s.AblationKnobOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.CapOverFrac > 0.10 {
			t.Errorf("%s: failed to hold the cap (%v over)", row.Order, row.CapOverFrac)
		}
		if row.BEThr <= 0 {
			t.Errorf("%s: no throughput", row.Order)
		}
	}
	// Both orders are viable; which wins depends on how much of the
	// co-runner's power scales with frequency. For graph (way-dominated
	// power) the orders must land within 25% of each other — a larger gap
	// would indicate a broken capper rather than a knob-order effect.
	lo, hi := r.Rows[0].BEThr, r.Rows[1].BEThr
	if lo > hi {
		lo, hi = hi, lo
	}
	if lo < hi*0.75 {
		t.Errorf("knob orders diverge too far: %v vs %v", r.Rows[0].BEThr, r.Rows[1].BEThr)
	}
}

func TestAblationMyopic(t *testing.T) {
	s := sharedSuite(t)
	r, err := s.AblationMyopic()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	whole := r.Rows[0]
	for _, row := range r.Rows[1:] {
		if row.BEThrNorm > whole.BEThrNorm*1.03 {
			t.Errorf("myopic %q (%v) should not beat the whole-range matrix (%v)",
				row.Variant, row.BEThrNorm, whole.BEThrNorm)
		}
	}
}

func TestAblationProfiling(t *testing.T) {
	s := sharedSuite(t)
	r, err := s.AblationProfiling()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// The dense grid reproduces the suite's placement, and sample counts
	// fall with stride.
	if !r.Rows[0].SamePlace {
		t.Error("full-grid refit should reproduce the placement")
	}
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].Samples >= r.Rows[i-1].Samples {
			t.Errorf("samples should fall with stride: %v", r.Rows)
		}
	}
	// Even the sparsest grid keeps preference error moderate.
	if r.Rows[len(r.Rows)-1].MaxPrefErr > 0.15 {
		t.Errorf("sparse-grid preference error %v too large", r.Rows[len(r.Rows)-1].MaxPrefErr)
	}
}

func TestAblationSharing(t *testing.T) {
	s := sharedSuite(t)
	r, err := s.AblationSharing()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.TotalBEOps <= 0 {
			t.Errorf("%s: no work done", row.Discipline)
		}
		if row.CapOver > 0.10 {
			t.Errorf("%s: over cap %v", row.Discipline, row.CapOver)
		}
	}
	// Spatial and temporal sharing must both make the second app progress.
	spatial := r.Rows[1]
	if spatial.PerApp["lstm"] <= 0 || spatial.PerApp["graph"] <= 0 {
		t.Errorf("spatial sharing starved an app: %v", spatial.PerApp)
	}
	temporal := r.Rows[2]
	if temporal.PerApp["lstm"] <= 0 || temporal.PerApp["graph"] <= 0 {
		t.Errorf("temporal sharing starved an app: %v", temporal.PerApp)
	}
}

func TestAblationOnline(t *testing.T) {
	s := sharedSuite(t)
	r, err := s.AblationOnline()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	profiled, borrowed, adapted := r.Rows[0], r.Rows[1], r.Rows[2]
	// The borrowed model wastes power versus the profiled one; adaptation
	// recovers part of the gap.
	if borrowed.MeanPowerW <= profiled.MeanPowerW {
		t.Errorf("borrowed model should over-draw: %.1f vs %.1f", borrowed.MeanPowerW, profiled.MeanPowerW)
	}
	if adapted.MeanPowerW >= borrowed.MeanPowerW {
		t.Errorf("adaptation should save power: %.1f vs %.1f", adapted.MeanPowerW, borrowed.MeanPowerW)
	}
	if adapted.Refits == 0 {
		t.Error("adapter never refit")
	}
	if adapted.SLOViolFrac > 0.08 {
		t.Errorf("adapted violations %v too high", adapted.SLOViolFrac)
	}
	// The adapted preference lands closer to truth than the borrowed one.
	if abs(adapted.PrefCores-r.TruthPrefCores) >= abs(borrowed.PrefCores-r.TruthPrefCores) {
		t.Errorf("adaptation did not improve the preference: %v vs %v (truth %v)",
			adapted.PrefCores, borrowed.PrefCores, r.TruthPrefCores)
	}
	if len(r.Table().Rows) != 3 {
		t.Error("table rendering broken")
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestValidationDES(t *testing.T) {
	s := sharedSuite(t)
	r, err := s.ValidationDES()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	prevFluid, prevDES := 0.0, 0.0
	for _, row := range r.Rows {
		if row.FluidP99 <= prevFluid || row.DESP99 <= prevDES {
			t.Errorf("ρ=%v: tails must grow with utilization", row.Rho)
		}
		prevFluid, prevDES = row.FluidP99, row.DESP99
	}
	// Growth tracking: the two models' normalized tails stay within a
	// factor of 3 of each other across the operating range.
	for _, row := range r.Rows {
		ratio := row.FluidGrowth / row.DESGrowth
		if ratio < 1.0/3 || ratio > 3 {
			t.Errorf("ρ=%v: growth diverges: fluid ×%.2f vs DES ×%.2f", row.Rho, row.FluidGrowth, row.DESGrowth)
		}
	}
	// Near saturation both tails must have blown up substantially.
	last := r.Rows[len(r.Rows)-1]
	if last.FluidGrowth < 3 || last.DESGrowth < 3 {
		t.Errorf("tails should blow up near saturation: fluid ×%.2f, DES ×%.2f", last.FluidGrowth, last.DESGrowth)
	}
}

func TestAblationScale(t *testing.T) {
	s := sharedSuite(t)
	r, err := s.AblationScale()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if r.Rows[0].Servers != 4 || r.Rows[3].Servers != 32 {
		t.Errorf("scales = %v..%v", r.Rows[0].Servers, r.Rows[3].Servers)
	}
	for i, row := range r.Rows {
		if row.Optimal <= row.RandomMean {
			t.Errorf("n=%d: optimum %v not above random mean %v", row.Servers, row.Optimal, row.RandomMean)
		}
		if row.RandomLossFrac <= 0 || row.RandomLossFrac > 0.5 {
			t.Errorf("n=%d: random loss %v implausible", row.Servers, row.RandomLossFrac)
		}
		// The optimum scales linearly with replication (block-constant
		// matrix): each replica adds the base optimum.
		if i > 0 {
			wantRatio := float64(row.Servers) / float64(r.Rows[0].Servers)
			gotRatio := row.Optimal / r.Rows[0].Optimal
			if gotRatio < wantRatio*0.999 || gotRatio > wantRatio*1.001 {
				t.Errorf("n=%d: optimum ratio %v, want %v", row.Servers, gotRatio, wantRatio)
			}
		}
	}
	if len(r.Table().Rows) != 4 {
		t.Error("table rendering broken")
	}
}

func TestAblationBudget(t *testing.T) {
	s := sharedSuite(t)
	r, err := s.AblationBudget()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	equal, prop := r.Rows[0], r.Rows[1]
	// Demand-proportional division must not lose to the static split and
	// both must hold the aggregate budget and protect the primaries.
	if prop.TotalBEOps < equal.TotalBEOps*0.98 {
		t.Errorf("demand-proportional (%v ops) lost to equal split (%v ops)", prop.TotalBEOps, equal.TotalBEOps)
	}
	for _, row := range r.Rows {
		if row.OverBudgetPct > 0.10 {
			t.Errorf("%s: over budget %v of the time", row.Policy, row.OverBudgetPct)
		}
		if row.WorstSLOViol > 0.10 {
			t.Errorf("%s: SLO violations %v", row.Policy, row.WorstSLOViol)
		}
		if row.MeanClusterW > row.BudgetW*1.02 {
			t.Errorf("%s: mean cluster power %v above budget %v", row.Policy, row.MeanClusterW, row.BudgetW)
		}
	}
	if len(r.Table().Rows) != 2 {
		t.Error("table rendering broken")
	}
}

func TestSeedSensitivity(t *testing.T) {
	s := sharedSuite(t)
	r, err := s.SeedSensitivity(42, 1042)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Every seed reproduces the ordering; the mean improvements land in
	// the paper's neighborhood.
	for _, row := range r.Rows {
		if row.ImprovementPOColo <= row.ImprovementPOM {
			t.Errorf("seed %d: POColo (%v) should beat POM (%v)", row.Seed, row.ImprovementPOColo, row.ImprovementPOM)
		}
		if row.ImprovementPOM < 0.01 {
			t.Errorf("seed %d: POM improvement %v too small", row.Seed, row.ImprovementPOM)
		}
	}
	if r.POColoMean < 0.10 {
		t.Errorf("mean POColo improvement %v too small (paper +18%%)", r.POColoMean)
	}
	if r.POMMin > r.POMMean || r.POMMean > r.POMMax {
		t.Errorf("POM summary out of order: %v/%v/%v", r.POMMin, r.POMMean, r.POMMax)
	}
	if len(r.Table().Rows) != 2 {
		t.Error("table rendering broken")
	}
}
