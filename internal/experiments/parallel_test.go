package experiments

import (
	"reflect"
	"testing"
	"time"

	"pocolo/internal/cluster"
)

// TestExperimentsParallelMatchesSequential: whole figures regenerated
// through the worker pool must equal their sequential regeneration, with
// the cluster memo off so every simulation actually runs in both modes.
func TestExperimentsParallelMatchesSequential(t *testing.T) {
	prev := cluster.SetMemo(false)
	defer func() { cluster.SetMemo(prev); cluster.ResetMemo() }()

	build := func(par int) *Suite {
		s, err := NewSuite(42)
		if err != nil {
			t.Fatal(err)
		}
		s.Dwell = 2 * time.Second
		s.Parallel = par
		return s
	}
	seq, par := build(1), build(4)

	seqFig14, err := seq.Fig14()
	if err != nil {
		t.Fatal(err)
	}
	parFig14, err := par.Fig14()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seqFig14, parFig14) {
		t.Errorf("Fig14 diverges:\nsequential %+v\nparallel   %+v", seqFig14, parFig14)
	}

	seqFig12, err := seq.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	parFig12, err := par.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seqFig12, parFig12) {
		t.Errorf("Fig12 diverges:\nsequential %+v\nparallel   %+v", seqFig12, parFig12)
	}
}
