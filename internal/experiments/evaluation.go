package experiments

import (
	"fmt"
	"sort"

	"pocolo/internal/cluster"
	"pocolo/internal/parallel"
	"pocolo/internal/tco"
)

// Fig12Row is one (policy, LC server) best-effort throughput measurement.
type Fig12Row struct {
	Policy string
	LC     string
	// BEThrNorm is the co-runner's mean throughput normalized to its
	// standalone full-machine peak.
	BEThrNorm float64
}

// Fig12Result reproduces Fig. 12.
type Fig12Result struct {
	Rows []Fig12Row
	// Mean per policy across servers.
	Mean map[string]float64
	// ImprovementPOM and ImprovementPOColo are the relative gains over the
	// Random baseline (paper: ≈8% and ≈18%).
	ImprovementPOM    float64
	ImprovementPOColo float64
}

// Fig12 measures best-effort throughput under the three policies across
// the four-server cluster with the uniform 10–90% load distribution.
func (s *Suite) Fig12() (Fig12Result, error) {
	res := Fig12Result{Mean: make(map[string]float64)}
	if err := s.prefetchPolicies(cluster.Random, cluster.POM, cluster.POColo); err != nil {
		return res, err
	}
	for _, p := range []cluster.Policy{cluster.Random, cluster.POM, cluster.POColo} {
		run, err := s.policyRun(p)
		if err != nil {
			return res, err
		}
		for _, lcName := range cluster.SortedNames(run.Hosts) {
			m := run.Hosts[lcName]
			res.Rows = append(res.Rows, Fig12Row{
				Policy:    p.String(),
				LC:        lcName,
				BEThrNorm: m.BEMeanThr / 100, // BE peaks are calibrated to 100 ops/s
			})
		}
		res.Mean[p.String()] = run.BENormThroughput
	}
	base := res.Mean[cluster.Random.String()]
	if base > 0 {
		res.ImprovementPOM = res.Mean[cluster.POM.String()]/base - 1
		res.ImprovementPOColo = res.Mean[cluster.POColo.String()]/base - 1
	}
	return res, nil
}

// Table renders the result.
func (r Fig12Result) Table() Table {
	t := Table{
		Title: "Fig. 12: Best-effort throughput under Random / POM / POColo",
		Caption: fmt.Sprintf("Normalized to each BE app's standalone peak; uniform 10–90%% LC load. Mean: random %.3f, pom %.3f (%+.1f%%), pocolo %.3f (%+.1f%%). Paper: +8%% (POM), +18%% (POColo).",
			r.Mean["random"], r.Mean["pom"], r.ImprovementPOM*100, r.Mean["pocolo"], r.ImprovementPOColo*100),
		Header: []string{"policy", "LC server", "BE throughput (norm)"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{row.Policy, row.LC, f3(row.BEThrNorm)})
	}
	return t
}

// Fig13Row is one (policy, LC server) power-utilization measurement.
type Fig13Row struct {
	Policy    string
	LC        string
	PowerUtil float64
	CapEvents int
}

// Fig13Result reproduces Fig. 13.
type Fig13Result struct {
	Rows []Fig13Row
	Mean map[string]float64
}

// Fig13 reports each server's mean power draw normalized to its
// provisioned capacity under the three policies (shares Fig. 12's runs).
func (s *Suite) Fig13() (Fig13Result, error) {
	res := Fig13Result{Mean: make(map[string]float64)}
	if err := s.prefetchPolicies(cluster.Random, cluster.POM, cluster.POColo); err != nil {
		return res, err
	}
	for _, p := range []cluster.Policy{cluster.Random, cluster.POM, cluster.POColo} {
		run, err := s.policyRun(p)
		if err != nil {
			return res, err
		}
		for _, lcName := range cluster.SortedNames(run.Hosts) {
			m := run.Hosts[lcName]
			res.Rows = append(res.Rows, Fig13Row{
				Policy:    p.String(),
				LC:        lcName,
				PowerUtil: m.PowerUtil,
				CapEvents: m.CapEvents,
			})
		}
		res.Mean[p.String()] = run.MeanPowerUtil
	}
	return res, nil
}

// Table renders the result.
func (r Fig13Result) Table() Table {
	t := Table{
		Title: "Fig. 13: Server power draw normalized to provisioned capacity (lower is better)",
		Caption: fmt.Sprintf("Mean utilization: random %s, pom %s, pocolo %s. Paper: ≈96%% (Random) vs ≈88%% (POM/POColo).",
			pct(r.Mean["random"]), pct(r.Mean["pom"]), pct(r.Mean["pocolo"])),
		Header: []string{"policy", "LC server", "power / cap", "cap excursions"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{row.Policy, row.LC, pct(row.PowerUtil), fmt.Sprint(row.CapEvents)})
	}
	return t
}

// Fig14Cell is one (LC, BE) pairing's mean total server throughput.
type Fig14Cell struct {
	LC, BE   string
	MeanNorm float64
	Chosen   bool // true if POColo's placement picked this pairing
}

// Fig14Result reproduces Fig. 14: POColo's choice against the exhaustive
// 4×4 placement study.
type Fig14Result struct {
	Cells     []Fig14Cell
	Placement map[string]string
	// BestBEPerLC maps each LC server to the BE app with the highest
	// measured mean total throughput.
	BestBEPerLC map[string]string
}

// Fig14 simulates all sixteen (LC, BE) pairings across the load sweep and
// marks POColo's chosen placement.
func (s *Suite) Fig14() (Fig14Result, error) {
	cfg := s.clusterConfig()
	placement, _, err := cluster.Place(cfg)
	if err != nil {
		return Fig14Result{}, err
	}
	res := Fig14Result{Placement: placement, BestBEPerLC: make(map[string]string)}
	// All sixteen (LC, BE) sweeps are independent: fan them through the
	// worker pool, then reduce in the fixed row-major order.
	lcs, bes := s.Catalog.LC(), s.Catalog.BE()
	pairs := make([]cluster.PairResult, len(lcs)*len(bes))
	err = parallel.ForEach(len(pairs), s.Parallel, func(i int) error {
		pr, err := cluster.RunPair(cfg, lcs[i/len(bes)], bes[i%len(bes)])
		if err != nil {
			return err
		}
		pairs[i] = pr
		return nil
	})
	if err != nil {
		return Fig14Result{}, err
	}
	best := make(map[string]float64)
	for i, pr := range pairs {
		lc, be := lcs[i/len(bes)], bes[i%len(bes)]
		cell := Fig14Cell{
			LC:       lc.Name,
			BE:       be.Name,
			MeanNorm: pr.Mean,
			Chosen:   placement[be.Name] == lc.Name,
		}
		res.Cells = append(res.Cells, cell)
		if pr.Mean > best[lc.Name] {
			best[lc.Name] = pr.Mean
			res.BestBEPerLC[lc.Name] = be.Name
		}
	}
	return res, nil
}

// Table renders the result.
func (r Fig14Result) Table() Table {
	var placements []string
	for _, be := range sortedKeys(r.Placement) {
		placements = append(placements, fmt.Sprintf("%s→%s", be, r.Placement[be]))
	}
	t := Table{
		Title:   "Fig. 14: Total server throughput for all placement combinations",
		Caption: fmt.Sprintf("Mean of (LC goodput + BE throughput), both normalized, over 10–90%% load. POColo placement: %v.", placements),
		Header:  []string{"LC server", "co-runner", "mean total (norm)", "POColo choice"},
	}
	for _, c := range r.Cells {
		chosen := ""
		if c.Chosen {
			chosen = "✔"
		}
		t.Rows = append(t.Rows, []string{c.LC, c.BE, f3(c.MeanNorm), chosen})
	}
	return t
}

// Fig15Row is one policy's amortized monthly TCO.
type Fig15Row struct {
	Policy string
	tco.Breakdown
}

// Fig15Result reproduces Fig. 15.
type Fig15Result struct {
	Rows []Fig15Row
	// SavingsVs maps a comparison policy to POColo's relative TCO saving
	// over it (paper: 12% vs Random(NoCap), 16% vs Random, 8% vs POM).
	SavingsVs map[string]float64
}

// Fig15 feeds the measured cluster results into the Hamilton TCO model.
// Policies are normalized to deliver constant aggregate throughput; the
// Random(NoCap) variant provisions every server for the worst-case 185 W
// instead of right-sizing.
func (s *Suite) Fig15() (Fig15Result, error) {
	if err := s.prefetchPolicies(cluster.Random, cluster.POM, cluster.POColo); err != nil {
		return Fig15Result{}, err
	}
	random, err := s.policyRun(cluster.Random)
	if err != nil {
		return Fig15Result{}, err
	}
	pom, err := s.policyRun(cluster.POM)
	if err != nil {
		return Fig15Result{}, err
	}
	pocolo, err := s.policyRun(cluster.POColo)
	if err != nil {
		return Fig15Result{}, err
	}

	// Per-server aggregate throughput (LC goodput + BE ops, normalized) and
	// mean power per policy.
	aggregate := func(r *cluster.Result) (thr, meanW, provW float64) {
		n := 0.0
		for _, lc := range s.Catalog.LC() {
			m, ok := r.Hosts[lc.Name]
			if !ok {
				continue
			}
			thr += m.LCOps/(lc.PeakLoad*m.DurationSec) + m.BEMeanThr/100
			meanW += m.MeanPowerW
			provW += lc.ProvisionedPowerW
			n++
		}
		return thr / n, meanW / n, provW / n
	}
	rThr, rW, rProv := aggregate(random)
	pThr, pW, _ := aggregate(pom)
	cThr, cW, _ := aggregate(pocolo)

	const noCapProvW = 185 // max provisioned power across the LC apps
	params := tco.Hamilton()
	ins := []tco.Input{
		{Name: "random-nocap", ProvisionedWPerServer: noCapProvW, MeanPowerWPerServer: rW, RelativeThroughput: rThr / cThr},
		{Name: "random", ProvisionedWPerServer: rProv, MeanPowerWPerServer: rW, RelativeThroughput: rThr / cThr},
		{Name: "pom", ProvisionedWPerServer: rProv, MeanPowerWPerServer: pW, RelativeThroughput: pThr / cThr},
		{Name: "pocolo", ProvisionedWPerServer: rProv, MeanPowerWPerServer: cW, RelativeThroughput: 1},
	}
	breakdowns, err := params.Compare(ins)
	if err != nil {
		return Fig15Result{}, err
	}
	res := Fig15Result{SavingsVs: make(map[string]float64)}
	var pocoloTotal float64
	for _, b := range breakdowns {
		res.Rows = append(res.Rows, Fig15Row{Policy: b.Name, Breakdown: b})
		if b.Name == "pocolo" {
			pocoloTotal = b.TotalMonthlyUSD
		}
	}
	for _, b := range breakdowns {
		if b.Name != "pocolo" {
			res.SavingsVs[b.Name] = 1 - pocoloTotal/b.TotalMonthlyUSD
		}
	}
	return res, nil
}

// Table renders the result.
func (r Fig15Result) Table() Table {
	t := Table{
		Title: "Fig. 15: Amortized monthly datacenter TCO (constant delivered throughput)",
		Caption: fmt.Sprintf("Hamilton model: 100k servers, $1450/server, $9/W, 7¢/kWh, PUE 1.1. POColo saves %s vs Random(NoCap), %s vs Random, %s vs POM (paper: 12%%, 16%%, 8%%).",
			pct(r.SavingsVs["random-nocap"]), pct(r.SavingsVs["random"]), pct(r.SavingsVs["pom"])),
		Header: []string{"policy", "servers", "server $M/mo", "power infra $M/mo", "energy $M/mo", "total $M/mo"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Policy,
			fmt.Sprintf("%.0f", row.Servers),
			f2(row.ServerMonthlyUSD / 1e6),
			f2(row.PowerInfraMonthlyUSD / 1e6),
			f2(row.EnergyMonthlyUSD / 1e6),
			f2(row.TotalMonthlyUSD / 1e6),
		})
	}
	return t
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
