package online

import (
	"math"
	"testing"
	"time"

	"pocolo/internal/machine"
	"pocolo/internal/profiler"
	"pocolo/internal/servermgr"
	"pocolo/internal/sim"
	"pocolo/internal/workload"
)

func TestNewCollectorValidation(t *testing.T) {
	if _, err := NewCollector("", []string{"c"}, 10); err == nil {
		t.Error("expected error for empty app")
	}
	if _, err := NewCollector("x", nil, 10); err == nil {
		t.Error("expected error for no resources")
	}
	if _, err := NewCollector("x", []string{"c", "w"}, 2); err == nil {
		t.Error("expected error for tiny window")
	}
}

func TestCollectorObserveAndRing(t *testing.T) {
	c, err := NewCollector("x", []string{"c", "w"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Rejections.
	if err := c.Observe([]float64{1}, 10, 5); err == nil {
		t.Error("expected dimension error")
	}
	if err := c.Observe([]float64{1, 2}, 0, 5); err == nil {
		t.Error("expected error for zero perf")
	}
	if err := c.Observe([]float64{0, 2}, 10, 5); err == nil {
		t.Error("expected error for zero alloc")
	}
	if err := c.Observe([]float64{1, 2}, 10, -1); err == nil {
		t.Error("expected error for negative power")
	}
	if err := c.Observe([]float64{1, 2}, math.NaN(), 5); err == nil {
		t.Error("expected error for NaN perf")
	}
	// Ring keeps the last `window` observations.
	for i := 0; i < 20; i++ {
		if err := c.Observe([]float64{float64(i%4 + 1), 2}, float64(i+1), 5); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 8 {
		t.Errorf("Len = %d, want 8", c.Len())
	}
	if c.DistinctAllocs() != 4 {
		t.Errorf("DistinctAllocs = %d, want 4", c.DistinctAllocs())
	}
}

func TestCollectorRefitRecoversModel(t *testing.T) {
	c, err := NewCollector("synth", []string{"c", "w"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Not enough diversity yet.
	for i := 0; i < 10; i++ {
		if err := c.Observe([]float64{2, 4}, 100, 20); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Refit(); err == nil {
		t.Error("expected diversity error")
	}
	// Feed a clean Cobb-Douglas surface.
	for cc := 1.0; cc <= 8; cc++ {
		for w := 2.0; w <= 16; w += 2 {
			perf := 50 * math.Pow(cc, 0.6) * math.Pow(w, 0.4)
			pw := 5 + 3*cc + 1.5*w
			if err := c.Observe([]float64{cc, w}, perf, pw); err != nil {
				t.Fatal(err)
			}
		}
	}
	m, err := c.Refit()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Alpha[0]-0.6) > 0.05 || math.Abs(m.Alpha[1]-0.4) > 0.05 {
		t.Errorf("refit α = %v", m.Alpha)
	}
	if math.Abs(m.P[0]-3) > 0.3 || math.Abs(m.P[1]-1.5) > 0.3 {
		t.Errorf("refit p = %v", m.P)
	}
}

func TestEstimateLCPerfInvertsLatencyLaw(t *testing.T) {
	// Property: for any allocation and moderate load, feeding the model's
	// own p99 back through the inversion recovers MaxLoadWithSlack.
	cat := workload.MustDefaults()
	spec, err := cat.ByName("xapian")
	if err != nil {
		t.Fatal(err)
	}
	for _, alloc := range []machine.Alloc{
		{Cores: 2, Ways: 4, FreqGHz: 2.2, Duty: 1},
		{Cores: 6, Ways: 10, FreqGHz: 2.2, Duty: 1},
		{Cores: 12, Ways: 20, FreqGHz: 2.2, Duty: 1},
	} {
		for _, frac := range []float64{0.3, 0.6, 0.8} {
			load := frac * spec.MaxLoadSLO(alloc)
			p99 := spec.P99(alloc, load)
			got, ok := EstimateLCPerf(load, p99, spec.SLO.P99Ms, 0.10)
			if !ok {
				t.Fatalf("alloc %v frac %v: estimate rejected", alloc, frac)
			}
			want := spec.MaxLoadWithSlack(alloc, 0.10)
			if math.Abs(got-want)/want > 0.01 {
				t.Errorf("alloc %v frac %v: estimated %v, want %v", alloc, frac, got, want)
			}
		}
	}
}

func TestEstimateLCPerfRejectsUselessSignals(t *testing.T) {
	cases := []struct {
		name           string
		load, p99, slo float64
	}{
		{"zero load", 0, 5, 10},
		{"zero p99", 100, 0, 10},
		{"latency floor", 100, 3.0, 10}, // p99 ≈ 0.3·SLO carries no queueing signal
		{"saturated", 100, 100, 10},     // 10× SLO sentinel
	}
	for _, c := range cases {
		if _, ok := EstimateLCPerf(c.load, c.p99, c.slo, 0.1); ok {
			t.Errorf("%s: expected rejection", c.name)
		}
	}
}

// rigAdapter builds a xapian host deliberately managed with an img-dnn
// model (badly wrong), optionally with the online adapter attached.
func rigAdapter(t *testing.T, adapt bool) (*sim.Host, *servermgr.Manager, *Adapter, *sim.Engine) {
	t.Helper()
	cfg := machine.XeonE52650()
	cat := workload.MustDefaults()
	lc, err := cat.ByName("xapian")
	if err != nil {
		t.Fatal(err)
	}
	host, err := sim.NewHost(sim.HostConfig{
		Name:    "adaptive",
		Machine: cfg,
		LC:      lc,
		Trace:   workload.UniformSweep(5 * time.Second),
		Seed:    13,
	})
	if err != nil {
		t.Fatal(err)
	}
	wrong, err := profiler.ProfileAndFit(profiler.Config{
		Spec: mustBy(t, cat, "img-dnn"), Machine: cfg, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	wrong.App = "xapian" // borrowed parameters, as a cold-started manager would have
	mgr, err := servermgr.New(servermgr.Config{Host: host, Model: wrong, Policy: servermgr.PowerOptimized})
	if err != nil {
		t.Fatal(err)
	}
	engine, err := sim.NewEngine(100 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := engine.AddHost(host); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Attach(engine); err != nil {
		t.Fatal(err)
	}
	var adapter *Adapter
	if adapt {
		adapter, err = NewAdapter(AdapterConfig{Host: host, Manager: mgr})
		if err != nil {
			t.Fatal(err)
		}
		if err := adapter.Attach(engine); err != nil {
			t.Fatal(err)
		}
	}
	return host, mgr, adapter, engine
}

func mustBy(t *testing.T, cat *workload.Catalog, name string) *workload.Spec {
	t.Helper()
	s, err := cat.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAdapterValidation(t *testing.T) {
	host, mgr, _, _ := rigAdapter(t, false)
	if _, err := NewAdapter(AdapterConfig{Manager: mgr}); err == nil {
		t.Error("expected error for nil host")
	}
	if _, err := NewAdapter(AdapterConfig{Host: host}); err == nil {
		t.Error("expected error for nil manager")
	}
	if _, err := NewAdapter(AdapterConfig{Host: host, Manager: mgr, ObservePeriod: -time.Second}); err == nil {
		t.Error("expected error for negative period")
	}
	if _, err := NewAdapter(AdapterConfig{Host: host, Manager: mgr, SlackGuard: 0.9}); err == nil {
		t.Error("expected error for absurd slack")
	}
	a, err := NewAdapter(AdapterConfig{Host: host, Manager: mgr})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Attach(nil); err == nil {
		t.Error("expected error attaching to nil engine")
	}
}

func TestAdapterConvergesToTruth(t *testing.T) {
	// Run two sweeps of the load range; the adapter should have refit the
	// manager's model toward xapian's true parameters.
	host, mgr, adapter, engine := rigAdapter(t, true)
	if err := engine.Run(90 * time.Second); err != nil {
		t.Fatal(err)
	}
	obs, _, refits, _ := adapter.Stats()
	if obs < 30 {
		t.Fatalf("only %d observations ingested", obs)
	}
	if refits == 0 {
		t.Fatal("adapter never refit the model")
	}
	cat := workload.MustDefaults()
	spec := mustBy(t, cat, "xapian")
	truthC, _ := spec.PreferenceTruth()
	gotC := mgr.Model().Preference()[0]
	// Observations gathered by a power-optimizing controller are
	// correlated (they lie near the expansion path), so the online power
	// fit cannot fully separate the per-resource coefficients — the
	// preference only needs to move TOWARD the truth from the borrowed
	// img-dnn value (0.7).
	borrowedC := 0.70
	if math.Abs(gotC-truthC) >= math.Abs(borrowedC-truthC) {
		t.Errorf("refit preference %v did not improve on borrowed %v (truth %v)", gotC, borrowedC, truthC)
	}
	// The refit model predicts capacity far better than the borrowed one:
	// compare predicted max load on the full machine (the conservative
	// margin biases the prediction slightly low on purpose).
	full := machine.XeonE52650().Full()
	want := spec.MaxLoadWithSlack(full, 0.10)
	got := mgr.Model().Perf([]float64{12, 20})
	if rel := math.Abs(got-want) / want; rel > 0.25 {
		t.Errorf("refit full-machine prediction off by %.0f%% (got %v, want %v)", rel*100, got, want)
	}
	_ = host
}

func TestAdapterImprovesOnWrongModel(t *testing.T) {
	// Same wrong-model start, with and without adaptation. The borrowed
	// img-dnn model is conservatively wrong: it under-predicts xapian's
	// capacity everywhere, so the unadapted manager over-allocates and
	// burns power. Adaptation recovers that power at the cost of a few
	// transient violations around the sweep's load discontinuities (the
	// refit model sizes allocations tightly). Assert the trade: real power
	// savings, bounded violations.
	hostOff, _, _, engOff := rigAdapter(t, false)
	if err := engOff.Run(90 * time.Second); err != nil {
		t.Fatal(err)
	}
	hostOn, _, _, engOn := rigAdapter(t, true)
	if err := engOn.Run(90 * time.Second); err != nil {
		t.Fatal(err)
	}
	off := hostOff.Metrics()
	on := hostOn.Metrics()
	if on.MeanPowerW >= off.MeanPowerW {
		t.Errorf("adaptation should save power: %.1f W vs %.1f W unadapted", on.MeanPowerW, off.MeanPowerW)
	}
	if on.SLOViolFrac > 0.08 {
		t.Errorf("adaptation violations %.2f%% exceed the acceptable transient budget", on.SLOViolFrac*100)
	}
	// The time-weighted mean slack includes the deep negative sentinels of
	// the wrap transients, so it sits below the 10% guard; it must at
	// least stay positive (healthy in steady state).
	if on.MeanSlack < 0 {
		t.Errorf("adapted mean slack %.2f negative", on.MeanSlack)
	}
}
