// Package online implements runtime model adaptation: the paper notes that
// applications "either provide their fitted parameters using historical
// knowledge or they are sampled online during execution" (Section IV-A).
// A Collector accumulates (allocation, performance, power) observations
// from live telemetry, and an Adapter periodically refits the Cobb-Douglas
// indirect utility model and swaps it into the server manager — so a
// manager that starts from a stale or borrowed model converges to the
// application actually running.
//
// The performance observation for a latency-critical application is
// recovered from live telemetry by inverting the tail-latency law: given
// the offered load and the observed p99, the utilization, capacity, and
// hence the max load at the slack guard follow in closed form — the same
// metric the offline profiler measures. Power observations come from the
// per-application power meter.
package online

import (
	"errors"
	"fmt"
	"math"
	"time"

	"pocolo/internal/servermgr"
	"pocolo/internal/sim"
	"pocolo/internal/utility"
	"pocolo/internal/workload"
)

// Collector accumulates runtime observations for one application in a
// bounded ring and refits its utility model on demand.
type Collector struct {
	app       string
	resources []string
	capacity  int
	samples   []utility.Sample
	next      int
}

// NewCollector creates a collector keeping at most window samples.
func NewCollector(app string, resources []string, window int) (*Collector, error) {
	if app == "" {
		return nil, errors.New("online: collector needs an app name")
	}
	if len(resources) == 0 {
		return nil, errors.New("online: collector needs resource names")
	}
	if window < len(resources)+2 {
		return nil, fmt.Errorf("online: window %d too small to ever fit %d resources", window, len(resources))
	}
	return &Collector{
		app:       app,
		resources: append([]string(nil), resources...),
		capacity:  window,
		samples:   make([]utility.Sample, 0, window),
	}, nil
}

// Observe appends one runtime observation. Non-positive performance or
// allocation entries are rejected (the log-space fit cannot use them).
func (c *Collector) Observe(alloc []float64, perf, powerW float64) error {
	if len(alloc) != len(c.resources) {
		return fmt.Errorf("online: observation has %d resources, want %d", len(alloc), len(c.resources))
	}
	if perf <= 0 || powerW < 0 || math.IsNaN(perf) || math.IsNaN(powerW) {
		return fmt.Errorf("online: unusable observation perf=%v power=%v", perf, powerW)
	}
	for _, r := range alloc {
		if r <= 0 {
			return fmt.Errorf("online: unusable allocation %v", alloc)
		}
	}
	s := utility.Sample{Alloc: append([]float64(nil), alloc...), Perf: perf, Power: powerW}
	if len(c.samples) < c.capacity {
		c.samples = append(c.samples, s)
	} else {
		c.samples[c.next] = s
	}
	c.next = (c.next + 1) % c.capacity
	return nil
}

// Len returns the number of stored observations.
func (c *Collector) Len() int { return len(c.samples) }

// ResourceRange returns the smallest and largest observed value of
// resource j, or (0, 0) with no observations.
func (c *Collector) ResourceRange(j int) (lo, hi float64) {
	if len(c.samples) == 0 || j < 0 || j >= len(c.resources) {
		return 0, 0
	}
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, s := range c.samples {
		if s.Alloc[j] < lo {
			lo = s.Alloc[j]
		}
		if s.Alloc[j] > hi {
			hi = s.Alloc[j]
		}
	}
	return lo, hi
}

// DistinctAllocs counts the distinct allocation vectors observed — the
// diversity the regression needs.
func (c *Collector) DistinctAllocs() int {
	seen := make(map[string]bool, len(c.samples))
	for _, s := range c.samples {
		key := fmt.Sprint(s.Alloc)
		seen[key] = true
	}
	return len(seen)
}

// MinDiversity is the number of distinct allocations required before a
// refit is attempted; fewer points leave the regression ill-conditioned.
const MinDiversity = 6

// MinSpread is the required max/min ratio per resource across the
// observations. A model fitted from a narrow band of allocations
// extrapolates wildly outside it; demanding 2× coverage on every resource
// keeps the controller's operating range inside the fitted region.
const MinSpread = 2.0

// Refit fits a fresh Cobb-Douglas model from the stored observations. It
// fails when the data lacks diversity or range coverage, or when the
// fitted model is degenerate.
func (c *Collector) Refit() (*utility.Model, error) {
	if c.DistinctAllocs() < MinDiversity {
		return nil, fmt.Errorf("online: only %d distinct allocations observed, need %d", c.DistinctAllocs(), MinDiversity)
	}
	for j, name := range c.resources {
		lo, hi := c.ResourceRange(j)
		if hi < lo*MinSpread {
			return nil, fmt.Errorf("online: %s observations span only [%v, %v]; refusing to extrapolate", name, lo, hi)
		}
	}
	m, err := utility.Fit(c.app, c.resources, c.samples)
	if err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// EstimateLCPerf inverts the latency law to recover the profiler's
// performance metric (max load at the slack guard) from one live
// observation of (offered load, p99) for the given SLO. It returns false
// when the observation carries no usable signal: the queue is so lightly
// loaded that the p99 sits at the latency floor, or so overloaded that
// the estimate would be extrapolation.
func EstimateLCPerf(load, p99, sloP99, slackGuard float64) (float64, bool) {
	if load <= 0 || p99 <= 0 || sloP99 <= 0 {
		return 0, false
	}
	l0 := 0.3 * sloP99
	b := (sloP99 - l0) * (1 - workload.SLOUtilization) / workload.SLOUtilization
	if p99 <= l0*1.02 || p99 >= sloP99*3 {
		return 0, false
	}
	x := (p99 - l0) / b // ρ/(1−ρ)
	rho := x / (1 + x)
	if rho <= 0.03 || rho >= 0.995 {
		return 0, false
	}
	capacity := load / rho
	// Max load at the slack guard, mirroring Spec.MaxLoadWithSlack.
	target := 1 - slackGuard
	xg := (target - 0.3) / ((1 - 0.3) * (1 - workload.SLOUtilization) / workload.SLOUtilization)
	rhoGuard := xg / (1 + xg)
	return rhoGuard * capacity, true
}

// AdapterConfig assembles an online adaptation loop for one host.
type AdapterConfig struct {
	// Host is the managed server; required.
	Host *sim.Host
	// Manager is the host's server manager whose model gets refreshed;
	// required.
	Manager *servermgr.Manager
	// ObservePeriod is how often a telemetry observation is ingested
	// (default 1 s, the control period).
	ObservePeriod time.Duration
	// RefitPeriod is how often a refit is attempted (default 10 s).
	RefitPeriod time.Duration
	// Window bounds the observation ring (default 240).
	Window int
	// SlackGuard mirrors the manager's slack target (default 0.10) so the
	// recovered performance metric matches the profiler's.
	SlackGuard float64
}

// Adapter wires a Collector to a host's telemetry and its manager.
type Adapter struct {
	host       *sim.Host
	mgr        *servermgr.Manager
	collector  *Collector
	obsPeriod  time.Duration
	refit      time.Duration
	slackGuard float64

	observations int
	rejected     int
	refits       int
	refitErrs    int
}

// NewAdapter validates the configuration and builds the adapter.
func NewAdapter(cfg AdapterConfig) (*Adapter, error) {
	if cfg.Host == nil {
		return nil, errors.New("online: nil host")
	}
	if cfg.Manager == nil {
		return nil, errors.New("online: nil manager")
	}
	if cfg.ObservePeriod == 0 {
		cfg.ObservePeriod = time.Second
	}
	if cfg.RefitPeriod == 0 {
		cfg.RefitPeriod = 10 * time.Second
	}
	if cfg.ObservePeriod <= 0 || cfg.RefitPeriod <= 0 {
		return nil, errors.New("online: periods must be positive")
	}
	if cfg.Window == 0 {
		cfg.Window = 240
	}
	if cfg.SlackGuard == 0 {
		cfg.SlackGuard = 0.10
	}
	if cfg.SlackGuard < 0 || cfg.SlackGuard >= 0.7 {
		return nil, fmt.Errorf("online: slack guard %v outside [0, 0.7)", cfg.SlackGuard)
	}
	collector, err := NewCollector(cfg.Host.LC().Name, []string{"cores", "llc-ways"}, cfg.Window)
	if err != nil {
		return nil, err
	}
	return &Adapter{
		host:       cfg.Host,
		mgr:        cfg.Manager,
		collector:  collector,
		obsPeriod:  cfg.ObservePeriod,
		refit:      cfg.RefitPeriod,
		slackGuard: cfg.SlackGuard,
	}, nil
}

// Attach registers the observation and refit loops on the engine.
func (a *Adapter) Attach(e *sim.Engine) error {
	if e == nil {
		return errors.New("online: nil engine")
	}
	if err := e.Every(a.obsPeriod, a.ObserveTick); err != nil {
		return err
	}
	return e.Every(a.refit, a.RefitTick)
}

// ObserveTick ingests one telemetry observation.
func (a *Adapter) ObserveTick(time.Time) {
	lc := a.host.LC()
	alloc, err := a.host.Server().Alloc(lc.Name)
	if err != nil || alloc.Cores == 0 || alloc.Ways == 0 {
		a.rejected++
		return
	}
	perf, ok := EstimateLCPerf(a.host.OfferedLoad(), a.host.ObservedP99(), lc.SLO.P99Ms, a.slackGuard)
	if !ok {
		a.rejected++
		return
	}
	powerW, err := a.host.AppPowerW(lc.Name)
	if err != nil {
		a.rejected++
		return
	}
	// Normalize the power observation to the saturated draw the profiler
	// measures: at runtime utilization u the meter reads u·(Σ rⱼ pⱼ);
	// dividing by u recovers the allocation's marginal cost.
	maxLoad, ok := EstimateLCPerf(a.host.OfferedLoad(), a.host.ObservedP99(), lc.SLO.P99Ms, 0)
	if !ok || maxLoad <= 0 {
		a.rejected++
		return
	}
	util := a.host.OfferedLoad() / maxLoad
	if util <= 0.05 || util > 1.05 {
		a.rejected++
		return
	}
	if util > 1 {
		util = 1
	}
	if err := a.collector.Observe([]float64{float64(alloc.Cores), float64(alloc.Ways)}, perf, powerW/util); err != nil {
		a.rejected++
		return
	}
	a.observations++
}

// ConservativeMargin shrinks the adapted model's performance scale before
// it drives allocation decisions: under-predicting capacity makes the
// controller over-allocate slightly (safe), the same one-sided bias the
// paper's 10% slack guard encodes.
const ConservativeMargin = 0.95

// BlendWeight is the weight of a fresh refit against the model currently
// in use. Online observations cluster along the controller's own
// trajectory, so a raw refit identifies the surface only near that ray and
// extrapolates badly off it; shrinking each refit halfway toward the prior
// keeps the exponents anchored to a full-surface shape while repeated
// refits converge the scale and preferences toward the live application.
const BlendWeight = 0.5

// blend interpolates two models: exponents and power coefficients
// linearly, the multiplicative scale geometrically.
func blend(prior, fresh *utility.Model, w float64) *utility.Model {
	out := &utility.Model{
		App:       fresh.App,
		Resources: append([]string(nil), fresh.Resources...),
		Alpha0:    math.Exp((1-w)*math.Log(prior.Alpha0) + w*math.Log(fresh.Alpha0)),
		Alpha:     make([]float64, len(fresh.Alpha)),
		PStatic:   (1-w)*prior.PStatic + w*fresh.PStatic,
		P:         make([]float64, len(fresh.P)),
		PerfR2:    fresh.PerfR2,
		PowerR2:   fresh.PowerR2,
		N:         fresh.N,
	}
	for j := range out.Alpha {
		out.Alpha[j] = (1-w)*prior.Alpha[j] + w*fresh.Alpha[j]
		out.P[j] = (1-w)*prior.P[j] + w*fresh.P[j]
	}
	return out
}

// CoverageFrac is the fraction of the machine each resource's observations
// must reach before a refit model may drive allocation: a Cobb-Douglas fit
// from small allocations overestimates large ones (it cannot see the
// contention that sets in near machine scale), so the adapter waits until
// the controller has actually operated near the top of the range.
const CoverageFrac = 0.6

// RefitTick attempts a refit and swaps the manager's model on success.
func (a *Adapter) RefitTick(time.Time) {
	cfg := a.host.Machine()
	if _, hiC := a.collector.ResourceRange(0); hiC < CoverageFrac*float64(cfg.Cores) {
		a.refitErrs++
		return
	}
	if _, hiW := a.collector.ResourceRange(1); hiW < CoverageFrac*float64(cfg.LLCWays) {
		a.refitErrs++
		return
	}
	fresh, err := a.collector.Refit()
	if err != nil {
		a.refitErrs++
		return
	}
	// Blend toward the model in use, undoing the previous margin first so
	// repeated blending does not compound it.
	prior := *a.mgr.Model()
	prior.Alpha = append([]float64(nil), prior.Alpha...)
	prior.P = append([]float64(nil), prior.P...)
	if a.refits > 0 {
		prior.Alpha0 /= ConservativeMargin
	}
	model := blend(&prior, fresh, BlendWeight)
	model.Alpha0 *= ConservativeMargin
	if err := a.mgr.SetModel(model); err != nil {
		a.refitErrs++
		return
	}
	a.refits++
}

// Collector exposes the underlying observation store.
func (a *Adapter) Collector() *Collector { return a.collector }

// Stats reports the adapter's activity: ingested and rejected
// observations, successful refits, and refit failures.
func (a *Adapter) Stats() (observations, rejected, refits, refitErrs int) {
	return a.observations, a.rejected, a.refits, a.refitErrs
}
