package power

import (
	"math"
	"testing"
	"time"
)

func TestNewMeterValidation(t *testing.T) {
	src := func() float64 { return 100 }
	if _, err := NewMeter(nil, time.Second, 0.01, 1); err == nil {
		t.Error("expected error for nil source")
	}
	if _, err := NewMeter(src, 0, 0.01, 1); err == nil {
		t.Error("expected error for zero period")
	}
	if _, err := NewMeter(src, time.Second, -0.1, 1); err == nil {
		t.Error("expected error for negative noise")
	}
	if _, err := NewMeter(src, time.Second, 0.9, 1); err == nil {
		t.Error("expected error for absurd noise")
	}
	m, err := NewMeter(src, 100*time.Millisecond, 0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Period() != 100*time.Millisecond {
		t.Errorf("Period = %v", m.Period())
	}
}

func TestMeterSamplingRate(t *testing.T) {
	calls := 0
	src := func() float64 { calls++; return 100 }
	m, err := NewMeter(src, 100*time.Millisecond, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Unix(0, 0)
	r1 := m.Sample(start)
	// Within the period, the cached reading is returned and the source is
	// not re-read.
	r2 := m.Sample(start.Add(50 * time.Millisecond))
	if calls != 1 {
		t.Errorf("source read %d times, want 1", calls)
	}
	if r1 != r2 {
		t.Error("sub-period sample should return the cached reading")
	}
	r3 := m.Sample(start.Add(150 * time.Millisecond))
	if calls != 2 {
		t.Errorf("source read %d times, want 2", calls)
	}
	if r3.Time != start.Add(150*time.Millisecond) {
		t.Errorf("reading time = %v", r3.Time)
	}
}

func TestMeterNoiseIsUnbiasedAndBounded(t *testing.T) {
	src := func() float64 { return 150 }
	m, err := NewMeter(src, time.Millisecond, 0.02, 42)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(0, 0)
	sum := 0.0
	n := 2000
	for i := 0; i < n; i++ {
		now = now.Add(time.Millisecond)
		r := m.Sample(now)
		if r.Watts < 0 {
			t.Fatal("negative power reading")
		}
		sum += r.Watts
	}
	mean := sum / float64(n)
	if math.Abs(mean-150) > 1 {
		t.Errorf("noisy mean = %v, want ≈150", mean)
	}
}

func TestMeterZeroNoiseIsExact(t *testing.T) {
	src := func() float64 { return 123.4 }
	m, _ := NewMeter(src, time.Millisecond, 0, 7)
	if got := m.Sample(time.Unix(1, 0)).Watts; got != 123.4 {
		t.Errorf("Sample = %v, want exact 123.4", got)
	}
}

func TestEnergyCounter(t *testing.T) {
	var e EnergyCounter
	start := time.Unix(0, 0)
	e.Observe(start, 100)
	if e.Joules() != 0 {
		t.Error("first observation should not accrue energy")
	}
	e.Observe(start.Add(10*time.Second), 100) // 100 W held for 10 s
	if got := e.Joules(); math.Abs(got-1000) > 1e-9 {
		t.Errorf("Joules = %v, want 1000", got)
	}
	e.Observe(start.Add(20*time.Second), 50) // 50 W held for 10 s
	if got := e.Joules(); math.Abs(got-1500) > 1e-9 {
		t.Errorf("Joules = %v, want 1500", got)
	}
	// 3.6 MJ = 1 kWh.
	e2 := EnergyCounter{}
	e2.Observe(start, 1000)
	e2.Observe(start.Add(time.Hour), 1000)
	if got := e2.KWh(); math.Abs(got-1) > 1e-9 {
		t.Errorf("KWh = %v, want 1", got)
	}
	// Time going backwards is ignored rather than producing negative
	// energy.
	e.Observe(start.Add(15*time.Second), 100)
	if e.Joules() < 1500 {
		t.Error("backwards time should not reduce energy")
	}
}

func TestCapTrackerValidation(t *testing.T) {
	if _, err := NewCapTracker(0); err == nil {
		t.Error("expected error for zero cap")
	}
	if _, err := NewCapTracker(-10); err == nil {
		t.Error("expected error for negative cap")
	}
	c, err := NewCapTracker(150)
	if err != nil {
		t.Fatal(err)
	}
	if c.Cap() != 150 {
		t.Errorf("Cap = %v", c.Cap())
	}
}

func TestCapTrackerStats(t *testing.T) {
	c, err := NewCapTracker(100)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Unix(0, 0)
	// 10 s under the cap, 10 s over (one excursion), 10 s under, 10 s over
	// (second excursion).
	series := []struct {
		at    time.Duration
		watts float64
	}{
		{0, 90},
		{10 * time.Second, 120},
		{20 * time.Second, 80},
		{30 * time.Second, 110},
		{40 * time.Second, 95},
	}
	for _, p := range series {
		c.Observe(start.Add(p.at), p.watts)
	}
	s := c.Stats()
	if s.Events != 2 {
		t.Errorf("Events = %d, want 2", s.Events)
	}
	if math.Abs(s.OverFrac-0.5) > 1e-9 {
		t.Errorf("OverFrac = %v, want 0.5", s.OverFrac)
	}
	if math.Abs(s.MeanW-99) > 1e-9 {
		t.Errorf("MeanW = %v, want 99", s.MeanW)
	}
	if s.PeakW != 120 {
		t.Errorf("PeakW = %v, want 120", s.PeakW)
	}
	if math.Abs(s.Utilization-0.99) > 1e-9 {
		t.Errorf("Utilization = %v, want 0.99", s.Utilization)
	}
}

func TestCapTrackerContinuousExcursionIsOneEvent(t *testing.T) {
	c, _ := NewCapTracker(100)
	start := time.Unix(0, 0)
	for i := 0; i < 10; i++ {
		c.Observe(start.Add(time.Duration(i)*time.Second), 150)
	}
	if got := c.Stats().Events; got != 1 {
		t.Errorf("Events = %d, want 1 (continuous excursion)", got)
	}
	if got := c.Stats().OverFrac; math.Abs(got-1) > 1e-9 {
		t.Errorf("OverFrac = %v, want 1", got)
	}
}

func TestCapTrackerEmpty(t *testing.T) {
	c, _ := NewCapTracker(100)
	s := c.Stats()
	if s.MeanW != 0 || s.OverFrac != 0 || s.Events != 0 || s.PeakW != 0 {
		t.Errorf("empty tracker stats = %+v", s)
	}
}
