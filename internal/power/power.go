// Package power provides the power-telemetry substrate: a RAPL-like
// sampled power meter with measurement noise, an energy integrator, and a
// power-cap tracker. The paper's prototype reads Intel socket/DRAM power
// meters every 100 ms and throttles the best-effort application whenever
// the draw exceeds the provisioned capacity (Section IV-C); this package is
// the simulated equivalent of that measurement path.
package power

import (
	"errors"
	"math/rand"
	"sync"
	"time"
)

// Source produces the instantaneous true power draw in watts. The
// simulation engine implements it by summing the idle floor and each
// tenant's dynamic power.
type Source func() float64

// Reading is one meter sample.
type Reading struct {
	Time  time.Time
	Watts float64
}

// Meter samples a Source the way RAPL energy counters are read on the
// paper's testbed: at a fixed period, with a small relative measurement
// error. Meter is safe for concurrent use.
type Meter struct {
	src      Source
	noiseRel float64 // relative std-dev of measurement error
	period   time.Duration

	mu   sync.Mutex
	rng  *rand.Rand
	last Reading
}

// NewMeter builds a meter over src sampling every period, with Gaussian
// relative measurement noise of the given standard deviation (0.01 = 1%).
// seed makes the noise stream reproducible.
func NewMeter(src Source, period time.Duration, noiseRel float64, seed int64) (*Meter, error) {
	if src == nil {
		return nil, errors.New("power: nil source")
	}
	if period <= 0 {
		return nil, errors.New("power: sampling period must be positive")
	}
	if noiseRel < 0 || noiseRel > 0.5 {
		return nil, errors.New("power: noise std-dev outside [0, 0.5]")
	}
	return &Meter{
		src:      src,
		noiseRel: noiseRel,
		period:   period,
		rng:      rand.New(rand.NewSource(seed)),
	}, nil
}

// Period returns the sampling period.
func (m *Meter) Period() time.Duration { return m.period }

// Sample reads the source at the given simulated time and returns a noisy
// reading. Samples requested faster than the meter period return the
// previous reading, mimicking a hardware counter that updates at a fixed
// rate.
func (m *Meter) Sample(now time.Time) Reading {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.last.Time.IsZero() && now.Sub(m.last.Time) < m.period {
		return m.last
	}
	truth := m.src()
	noisy := truth * (1 + m.rng.NormFloat64()*m.noiseRel)
	if noisy < 0 {
		noisy = 0
	}
	m.last = Reading{Time: now, Watts: noisy}
	return m.last
}

// EnergyCounter integrates power over simulated time.
type EnergyCounter struct {
	mu     sync.Mutex
	joules float64
	lastT  time.Time
	seen   bool
}

// Observe accrues energy assuming the given power held since the previous
// observation. The first observation only anchors the clock.
func (e *EnergyCounter) Observe(now time.Time, watts float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.seen {
		dt := now.Sub(e.lastT).Seconds()
		if dt > 0 {
			e.joules += watts * dt
		}
	}
	e.lastT = now
	e.seen = true
}

// Joules returns the accumulated energy.
func (e *EnergyCounter) Joules() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.joules
}

// KWh returns the accumulated energy in kilowatt-hours.
func (e *EnergyCounter) KWh() float64 {
	return e.Joules() / 3.6e6
}

// CapTracker accumulates statistics about power-cap compliance: how much
// of the observation time the draw exceeded the cap and the number of
// excursions (the paper reports "frequent power capping" under the Random
// baseline).
type CapTracker struct {
	capW float64

	mu        sync.Mutex
	lastT     time.Time
	lastOver  bool
	seen      bool
	totalDur  time.Duration
	overDur   time.Duration
	events    int
	sumW      float64
	sumWCount int
	peakW     float64
}

// NewCapTracker creates a tracker for the given power capacity.
func NewCapTracker(capW float64) (*CapTracker, error) {
	if capW <= 0 {
		return nil, errors.New("power: cap must be positive")
	}
	return &CapTracker{capW: capW}, nil
}

// Cap returns the tracked capacity in watts.
func (c *CapTracker) Cap() float64 { return c.capW }

// Observe records the draw at the given time. Observations must be
// time-ordered.
func (c *CapTracker) Observe(now time.Time, watts float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	over := watts > c.capW
	if c.seen {
		dt := now.Sub(c.lastT)
		if dt > 0 {
			c.totalDur += dt
			if c.lastOver {
				c.overDur += dt
			}
		}
	}
	if over && (!c.seen || !c.lastOver) {
		c.events++
	}
	c.lastT = now
	c.lastOver = over
	c.seen = true
	c.sumW += watts
	c.sumWCount++
	if watts > c.peakW {
		c.peakW = watts
	}
}

// Stats summarizes cap compliance.
type Stats struct {
	CapW        float64
	MeanW       float64
	PeakW       float64
	Utilization float64 // mean draw / cap
	OverFrac    float64 // fraction of observed time above the cap
	Events      int     // number of distinct excursions above the cap
}

// Stats returns the accumulated compliance statistics.
func (c *CapTracker) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Stats{CapW: c.capW, PeakW: c.peakW, Events: c.events}
	if c.sumWCount > 0 {
		s.MeanW = c.sumW / float64(c.sumWCount)
		s.Utilization = s.MeanW / c.capW
	}
	if c.totalDur > 0 {
		s.OverFrac = float64(c.overDur) / float64(c.totalDur)
	}
	return s
}
