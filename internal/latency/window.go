package latency

import (
	"errors"
	"time"
)

// Window is a sliding-window latency recorder built from a ring of
// fixed-duration histogram slots. Pocolo's server manager reads the p99 of
// the last second of primary-application latencies once per control tick;
// Window provides that view without unbounded memory.
type Window struct {
	slotDur   time.Duration
	slots     []*Histogram
	slotStart []time.Time
	cur       int
	started   bool
}

// NewWindow creates a sliding window covering `slots` consecutive intervals
// of slotDur each (total span = slots × slotDur). Latency values must fit
// the [minMs, maxMs] trackable range.
func NewWindow(slots int, slotDur time.Duration, minMs, maxMs float64) (*Window, error) {
	if slots < 1 {
		return nil, errors.New("latency: window needs at least one slot")
	}
	if slotDur <= 0 {
		return nil, errors.New("latency: slot duration must be positive")
	}
	w := &Window{
		slotDur:   slotDur,
		slots:     make([]*Histogram, slots),
		slotStart: make([]time.Time, slots),
	}
	for i := range w.slots {
		h, err := NewHistogram(minMs, maxMs, 0.01)
		if err != nil {
			return nil, err
		}
		w.slots[i] = h
	}
	return w, nil
}

// advance rotates the ring until the current slot covers now.
func (w *Window) advance(now time.Time) {
	if !w.started {
		w.started = true
		w.slotStart[w.cur] = now
		return
	}
	for now.Sub(w.slotStart[w.cur]) >= w.slotDur {
		next := (w.cur + 1) % len(w.slots)
		w.slots[next].Reset()
		w.slotStart[next] = w.slotStart[w.cur].Add(w.slotDur)
		w.cur = next
		// If now is far in the future, fast-forward the start instead of
		// rotating through a huge number of empty slots.
		if now.Sub(w.slotStart[w.cur]) >= time.Duration(len(w.slots))*w.slotDur {
			for i := range w.slots {
				w.slots[i].Reset()
			}
			w.slotStart[w.cur] = now
			return
		}
	}
}

// Record adds an observation at the given simulated timestamp. Timestamps
// must be non-decreasing.
func (w *Window) Record(now time.Time, ms float64) error {
	w.advance(now)
	return w.slots[w.cur].Record(ms)
}

// Snapshot merges all live slots and returns the tail statistics for the
// window ending at now.
func (w *Window) Snapshot(now time.Time) (Snapshot, error) {
	w.advance(now)
	merged, err := NewHistogram(w.slots[0].minTrackable, w.slots[0].maxTrackable, w.slots[0].growth-1)
	if err != nil {
		return Snapshot{}, err
	}
	for _, s := range w.slots {
		if err := merged.Merge(s); err != nil {
			return Snapshot{}, err
		}
	}
	return merged.Snapshot(), nil
}

// Count returns the number of observations currently inside the window.
func (w *Window) Count() uint64 {
	var n uint64
	for _, s := range w.slots {
		n += s.Count()
	}
	return n
}
