package latency

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestNewHistogramValidation(t *testing.T) {
	cases := []struct{ min, max, prec float64 }{
		{0, 100, 0.01},
		{-1, 100, 0.01},
		{10, 5, 0.01},
		{1, 100, 0},
		{1, 100, 1.5},
	}
	for _, c := range cases {
		if _, err := NewHistogram(c.min, c.max, c.prec); err == nil {
			t.Errorf("NewHistogram(%v, %v, %v): expected error", c.min, c.max, c.prec)
		}
	}
	if _, err := NewHistogram(0.01, 10000, 0.01); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestMustNewHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MustNewHistogram(0, 0, 0)
}

func TestHistogramBasics(t *testing.T) {
	h := MustNewHistogram(0.01, 10000, 0.005)
	for _, v := range []float64{1, 2, 3, 4, 5} {
		if err := h.Record(v); err != nil {
			t.Fatal(err)
		}
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d", h.Count())
	}
	if got := h.Mean(); math.Abs(got-3) > 1e-9 {
		t.Errorf("Mean = %v, want 3", got)
	}
	if h.Min() != 1 || h.Max() != 5 {
		t.Errorf("Min/Max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramRejectsBadValues(t *testing.T) {
	h := MustNewHistogram(0.01, 100, 0.01)
	if err := h.Record(-1); err == nil {
		t.Error("expected error for negative value")
	}
	if err := h.Record(math.NaN()); err == nil {
		t.Error("expected error for NaN")
	}
	if err := h.RecordN(math.NaN(), 3); err == nil {
		t.Error("expected error for NaN in RecordN")
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := MustNewHistogram(0.01, 100, 0.01)
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Min() != 0 {
		t.Error("empty histogram should report zeros")
	}
	if h.Percentile(99) != 0 {
		t.Error("empty percentile should be 0")
	}
}

func TestHistogramPercentileAccuracy(t *testing.T) {
	// Record a known distribution and check percentile relative error is
	// bounded by the configured precision (plus bucket midpoint effects).
	h := MustNewHistogram(0.01, 100000, 0.005)
	rng := rand.New(rand.NewSource(3))
	var values []float64
	for i := 0; i < 20000; i++ {
		v := math.Exp(rng.NormFloat64()*1.0 + 2) // lognormal, ms
		values = append(values, v)
		if err := h.Record(v); err != nil {
			t.Fatal(err)
		}
	}
	sort.Float64s(values)
	for _, p := range []float64{50, 90, 95, 99, 99.9} {
		idx := int(math.Ceil(p/100*float64(len(values)))) - 1
		exact := values[idx]
		got := h.Percentile(p)
		relErr := math.Abs(got-exact) / exact
		if relErr > 0.02 {
			t.Errorf("p%v: got %v, exact %v, relErr %.4f", p, got, exact, relErr)
		}
	}
}

func TestHistogramPercentileEdges(t *testing.T) {
	h := MustNewHistogram(0.01, 1000, 0.01)
	for i := 1; i <= 100; i++ {
		if err := h.Record(float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := h.Percentile(0); got != 1 {
		t.Errorf("p0 = %v, want 1 (min)", got)
	}
	if got := h.Percentile(100); got != 100 {
		t.Errorf("p100 = %v, want 100 (max)", got)
	}
	if got := h.Percentile(150); got != 100 {
		t.Errorf("p150 = %v, want clamped to max", got)
	}
}

func TestHistogramClampsOutOfRange(t *testing.T) {
	h := MustNewHistogram(1, 100, 0.01)
	if err := h.Record(0.5); err != nil { // below min
		t.Fatal(err)
	}
	if err := h.Record(500); err != nil { // above max
		t.Fatal(err)
	}
	if h.Count() != 2 {
		t.Errorf("Count = %d", h.Count())
	}
	// Exact min/max still visible via the tracked extremes.
	if h.Min() != 0.5 || h.Max() != 500 {
		t.Errorf("Min/Max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramRecordN(t *testing.T) {
	h := MustNewHistogram(0.01, 1000, 0.01)
	if err := h.RecordN(10, 0); err != nil {
		t.Fatal(err)
	}
	if h.Count() != 0 {
		t.Error("RecordN with 0 should be a no-op")
	}
	if err := h.RecordN(10, 1000); err != nil {
		t.Fatal(err)
	}
	if h.Count() != 1000 {
		t.Errorf("Count = %d", h.Count())
	}
	if got := h.Percentile(50); math.Abs(got-10)/10 > 0.02 {
		t.Errorf("p50 = %v, want ≈10", got)
	}
}

func TestHistogramResetAndMerge(t *testing.T) {
	a := MustNewHistogram(0.01, 1000, 0.01)
	b := MustNewHistogram(0.01, 1000, 0.01)
	for i := 0; i < 100; i++ {
		if err := a.Record(1); err != nil {
			t.Fatal(err)
		}
		if err := b.Record(100); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 200 {
		t.Errorf("merged count = %d", a.Count())
	}
	if got := a.Mean(); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("merged mean = %v, want 50.5", got)
	}
	if a.Max() != 100 || a.Min() != 1 {
		t.Errorf("merged extremes = %v/%v", a.Min(), a.Max())
	}
	a.Reset()
	if a.Count() != 0 || a.Mean() != 0 {
		t.Error("reset should clear the histogram")
	}
	// Merging nil is a no-op.
	if err := a.Merge(nil); err != nil {
		t.Fatal(err)
	}
	// Mismatched configuration must error.
	c := MustNewHistogram(0.1, 1000, 0.01)
	if err := a.Merge(c); err == nil {
		t.Error("expected config mismatch error")
	}
}

func TestHistogramSnapshot(t *testing.T) {
	h := MustNewHistogram(0.01, 1000, 0.01)
	for i := 1; i <= 1000; i++ {
		if err := h.Record(float64(i) / 10); err != nil {
			t.Fatal(err)
		}
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Errorf("snapshot count = %d", s.Count)
	}
	if s.P50 > s.P95 || s.P95 > s.P99 || s.P99 > s.Max {
		t.Errorf("snapshot percentiles out of order: %+v", s)
	}
}

func TestWindowValidation(t *testing.T) {
	if _, err := NewWindow(0, time.Second, 0.01, 100); err == nil {
		t.Error("expected error for zero slots")
	}
	if _, err := NewWindow(5, 0, 0.01, 100); err == nil {
		t.Error("expected error for zero duration")
	}
	if _, err := NewWindow(5, time.Second, 0, 100); err == nil {
		t.Error("expected error for bad histogram range")
	}
}

func TestWindowSlidesOutOldData(t *testing.T) {
	w, err := NewWindow(10, 100*time.Millisecond, 0.01, 10000)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Unix(0, 0)
	// Record slow requests in the first 100ms.
	for i := 0; i < 50; i++ {
		if err := w.Record(start.Add(time.Duration(i)*time.Millisecond), 500); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := w.Snapshot(start.Add(90 * time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Count != 50 {
		t.Errorf("count = %d, want 50", snap.Count)
	}
	// After the full window passes, old data must be gone.
	later := start.Add(2 * time.Second)
	for i := 0; i < 10; i++ {
		if err := w.Record(later.Add(time.Duration(i)*time.Millisecond), 1); err != nil {
			t.Fatal(err)
		}
	}
	snap, err = w.Snapshot(later.Add(50 * time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Count != 10 {
		t.Errorf("count after slide = %d, want 10", snap.Count)
	}
	if snap.Max > 2 {
		t.Errorf("stale slow samples leaked into window: max = %v", snap.Max)
	}
}

func TestWindowGradualSlide(t *testing.T) {
	w, err := NewWindow(10, 100*time.Millisecond, 0.01, 10000)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Unix(100, 0)
	// One observation per 100ms slot for 2 seconds: window spans 1s, so
	// about 10 observations should remain at the end.
	ts := start
	for i := 0; i < 20; i++ {
		if err := w.Record(ts, 10); err != nil {
			t.Fatal(err)
		}
		ts = ts.Add(100 * time.Millisecond)
	}
	if c := w.Count(); c != 10 {
		t.Errorf("window count = %d, want 10", c)
	}
}
