// Package latency provides tail-latency instrumentation for the simulated
// cluster: an HDR-style logarithmic-bucket histogram and a sliding-window
// recorder. Pocolo's server manager consumes the p99 latency of the primary
// latency-critical application from a one-second observation window
// (Section IV-C of the paper); this package is that telemetry substrate.
package latency

import (
	"errors"
	"fmt"
	"math"
)

// Histogram is an HDR-style histogram with logarithmically spaced buckets.
// It records values in milliseconds with a configurable dynamic range and a
// bounded relative error per bucket. The zero value is not usable; use
// NewHistogram.
type Histogram struct {
	minTrackable float64 // lowest value with full resolution, ms
	maxTrackable float64 // values above are clamped into the last bucket
	growth       float64 // per-bucket multiplicative growth factor
	logGrowth    float64
	counts       []uint64
	total        uint64
	sum          float64
	maxSeen      float64
	minSeen      float64
}

// NewHistogram creates a histogram covering [minTrackable, maxTrackable]
// milliseconds with the given relative precision (e.g. 0.01 means bucket
// boundaries grow by 1%). Values below minTrackable go into bucket 0;
// values above maxTrackable are clamped.
func NewHistogram(minTrackable, maxTrackable, precision float64) (*Histogram, error) {
	if minTrackable <= 0 || maxTrackable <= minTrackable {
		return nil, errors.New("latency: invalid trackable range")
	}
	if precision <= 0 || precision > 1 {
		return nil, errors.New("latency: precision must be in (0, 1]")
	}
	growth := 1 + precision
	n := int(math.Ceil(math.Log(maxTrackable/minTrackable)/math.Log(growth))) + 2
	return &Histogram{
		minTrackable: minTrackable,
		maxTrackable: maxTrackable,
		growth:       growth,
		logGrowth:    math.Log(growth),
		counts:       make([]uint64, n),
		minSeen:      math.Inf(1),
		maxSeen:      math.Inf(-1),
	}, nil
}

// MustNewHistogram is NewHistogram but panics on invalid configuration; it
// is intended for package-level defaults with constant arguments.
func MustNewHistogram(minTrackable, maxTrackable, precision float64) *Histogram {
	h, err := NewHistogram(minTrackable, maxTrackable, precision)
	if err != nil {
		panic(err)
	}
	return h
}

func (h *Histogram) bucketIndex(v float64) int {
	if v <= h.minTrackable {
		return 0
	}
	if v >= h.maxTrackable {
		return len(h.counts) - 1
	}
	idx := int(math.Log(v/h.minTrackable)/h.logGrowth) + 1
	if idx >= len(h.counts) {
		idx = len(h.counts) - 1
	}
	return idx
}

// bucketValue returns a representative value (geometric midpoint) for a
// bucket index.
func (h *Histogram) bucketValue(idx int) float64 {
	if idx <= 0 {
		return h.minTrackable
	}
	lo := h.minTrackable * math.Pow(h.growth, float64(idx-1))
	return lo * math.Sqrt(h.growth)
}

// Record adds a single latency observation in milliseconds. Negative and
// NaN values are rejected.
func (h *Histogram) Record(ms float64) error {
	if math.IsNaN(ms) || ms < 0 {
		return fmt.Errorf("latency: cannot record %v", ms)
	}
	h.counts[h.bucketIndex(ms)]++
	h.total++
	h.sum += ms
	if ms > h.maxSeen {
		h.maxSeen = ms
	}
	if ms < h.minSeen {
		h.minSeen = ms
	}
	return nil
}

// RecordN adds n identical observations.
func (h *Histogram) RecordN(ms float64, n uint64) error {
	if math.IsNaN(ms) || ms < 0 {
		return fmt.Errorf("latency: cannot record %v", ms)
	}
	if n == 0 {
		return nil
	}
	h.counts[h.bucketIndex(ms)] += n
	h.total += n
	h.sum += ms * float64(n)
	if ms > h.maxSeen {
		h.maxSeen = ms
	}
	if ms < h.minSeen {
		h.minSeen = ms
	}
	return nil
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.total }

// Mean returns the exact mean of recorded observations (tracked outside the
// buckets, so it has no quantization error).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Max returns the largest recorded value, or 0 if empty.
func (h *Histogram) Max() float64 {
	if h.total == 0 {
		return 0
	}
	return h.maxSeen
}

// Min returns the smallest recorded value, or 0 if empty.
func (h *Histogram) Min() float64 {
	if h.total == 0 {
		return 0
	}
	return h.minSeen
}

// Percentile returns the latency at the given percentile (0–100]. For an
// empty histogram it returns 0.
func (h *Histogram) Percentile(p float64) float64 {
	if h.total == 0 {
		return 0
	}
	if p <= 0 {
		return h.minSeen
	}
	if p >= 100 {
		return h.maxSeen
	}
	target := uint64(math.Ceil(p / 100 * float64(h.total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for idx, c := range h.counts {
		cum += c
		if cum >= target {
			v := h.bucketValue(idx)
			// Clamp the representative value to the observed extremes so
			// quantization never reports beyond the real data range.
			if v > h.maxSeen {
				v = h.maxSeen
			}
			if v < h.minSeen {
				v = h.minSeen
			}
			return v
		}
	}
	return h.maxSeen
}

// Reset clears all recorded observations, keeping the configuration.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total = 0
	h.sum = 0
	h.maxSeen = math.Inf(-1)
	h.minSeen = math.Inf(1)
}

// Merge adds all observations from other into h. Both histograms must have
// identical configuration.
func (h *Histogram) Merge(other *Histogram) error {
	if other == nil {
		return nil
	}
	if h.minTrackable != other.minTrackable || h.maxTrackable != other.maxTrackable || h.growth != other.growth {
		return errors.New("latency: cannot merge histograms with different configurations")
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	h.sum += other.sum
	if other.total > 0 {
		if other.maxSeen > h.maxSeen {
			h.maxSeen = other.maxSeen
		}
		if other.minSeen < h.minSeen {
			h.minSeen = other.minSeen
		}
	}
	return nil
}

// Snapshot summarizes the histogram.
type Snapshot struct {
	Count uint64
	Mean  float64
	P50   float64
	P95   float64
	P99   float64
	Max   float64
}

// Snapshot returns the common tail statistics in one call.
func (h *Histogram) Snapshot() Snapshot {
	return Snapshot{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Percentile(50),
		P95:   h.Percentile(95),
		P99:   h.Percentile(99),
		Max:   h.Max(),
	}
}
