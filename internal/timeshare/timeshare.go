// Package timeshare schedules multiple best-effort jobs onto one server's
// spare resources by time-sharing, the extension the paper sketches in
// Section V-G ("if there are more than one best-effort application, they
// can be scheduled to time-share the server (e.g. first-come first-served,
// shortest job first)"). Jobs are finite amounts of best-effort work; the
// scheduler activates one at a time through the server manager's
// SetActiveBE hook and tracks completions from the host's per-tenant
// operation counters.
package timeshare

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"pocolo/internal/servermgr"
	"pocolo/internal/sim"
)

// Policy selects the time-sharing discipline.
type Policy int

const (
	// FCFS runs jobs to completion in submission order.
	FCFS Policy = iota
	// SJF runs jobs to completion in ascending size order.
	SJF
	// RR cycles a fixed quantum over all incomplete jobs.
	RR
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case FCFS:
		return "fcfs"
	case SJF:
		return "sjf"
	case RR:
		return "rr"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Job is a finite amount of best-effort work: SizeOps operations of the
// named application (which must be registered as a co-runner on the host).
type Job struct {
	App     string
	SizeOps float64
}

// Completion records one finished job.
type Completion struct {
	App string
	// At is the completion time relative to the scheduler's start.
	At time.Duration
	// FlowTime equals At here (all jobs arrive at time zero).
	FlowTime time.Duration
	SizeOps  float64
}

// Config assembles a scheduler.
type Config struct {
	// Host is the simulated server; required.
	Host *sim.Host
	// Manager is the host's server manager (provides SetActiveBE);
	// required.
	Manager *servermgr.Manager
	// Policy selects the discipline (default FCFS).
	Policy Policy
	// Quantum is the RR time slice (default 5 s; ignored otherwise).
	Quantum time.Duration
	// Jobs is the batch to run; all arrive at time zero. Each job's App
	// must be a distinct co-runner registered on the host.
	Jobs []Job
}

// Scheduler drives one batch of best-effort jobs over a host.
type Scheduler struct {
	host    *sim.Host
	mgr     *servermgr.Manager
	policy  Policy
	quantum time.Duration

	order       []int // execution order over jobs (FCFS/SJF)
	jobs        []Job
	done        []float64 // completed ops per job
	lastSeen    []float64 // last observed host counter per job
	finishedAt  []time.Duration
	start       time.Time
	started     bool
	sliceStart  time.Time
	rrIndex     int
	completions []Completion
}

// New validates the configuration and builds a scheduler.
func New(cfg Config) (*Scheduler, error) {
	if cfg.Host == nil {
		return nil, errors.New("timeshare: nil host")
	}
	if cfg.Manager == nil {
		return nil, errors.New("timeshare: nil manager")
	}
	if len(cfg.Jobs) == 0 {
		return nil, errors.New("timeshare: no jobs")
	}
	registered := make(map[string]bool)
	for _, be := range cfg.Host.BEs() {
		registered[be.Name] = true
	}
	seen := make(map[string]bool)
	for _, j := range cfg.Jobs {
		if j.SizeOps <= 0 {
			return nil, fmt.Errorf("timeshare: job %q has non-positive size", j.App)
		}
		if !registered[j.App] {
			return nil, fmt.Errorf("timeshare: job app %q is not a co-runner on host %s", j.App, cfg.Host.Name())
		}
		if seen[j.App] {
			return nil, fmt.Errorf("timeshare: duplicate job app %q", j.App)
		}
		seen[j.App] = true
	}
	quantum := cfg.Quantum
	if quantum == 0 {
		quantum = 5 * time.Second
	}
	if quantum <= 0 {
		return nil, errors.New("timeshare: quantum must be positive")
	}
	s := &Scheduler{
		host:       cfg.Host,
		mgr:        cfg.Manager,
		policy:     cfg.Policy,
		quantum:    quantum,
		jobs:       append([]Job(nil), cfg.Jobs...),
		done:       make([]float64, len(cfg.Jobs)),
		lastSeen:   make([]float64, len(cfg.Jobs)),
		finishedAt: make([]time.Duration, len(cfg.Jobs)),
	}
	s.order = make([]int, len(s.jobs))
	for i := range s.order {
		s.order[i] = i
	}
	if cfg.Policy == SJF {
		sort.SliceStable(s.order, func(a, b int) bool {
			return s.jobs[s.order[a]].SizeOps < s.jobs[s.order[b]].SizeOps
		})
	}
	return s, nil
}

// Attach registers the scheduler's tick on the engine and activates the
// first job.
func (s *Scheduler) Attach(e *sim.Engine) error {
	if e == nil {
		return errors.New("timeshare: nil engine")
	}
	s.start = e.Now()
	s.sliceStart = e.Now()
	s.started = true
	if err := s.activateNext(e.Now()); err != nil {
		return err
	}
	return e.Every(100*time.Millisecond, s.Tick)
}

// runnable returns the indices of incomplete jobs in policy order.
func (s *Scheduler) runnable() []int {
	var out []int
	for _, idx := range s.order {
		if s.finishedAt[idx] == 0 {
			out = append(out, idx)
		}
	}
	return out
}

// activateNext points the manager's spare resources at the job that should
// run now.
func (s *Scheduler) activateNext(now time.Time) error {
	run := s.runnable()
	if len(run) == 0 {
		return nil
	}
	var pick int
	switch s.policy {
	case RR:
		pick = run[s.rrIndex%len(run)]
	default:
		pick = run[0]
	}
	s.sliceStart = now
	return s.mgr.SetActiveBE(s.jobs[pick].App)
}

// Tick ingests progress, records completions, and rotates jobs.
func (s *Scheduler) Tick(now time.Time) {
	if !s.started || s.Done() {
		return
	}
	metrics := s.host.Metrics()
	rotated := false
	for i, j := range s.jobs {
		if s.finishedAt[i] != 0 {
			continue
		}
		total := metrics.BEOpsBy[j.App]
		delta := total - s.lastSeen[i]
		s.lastSeen[i] = total
		if delta > 0 {
			s.done[i] += delta
		}
		if s.done[i] >= j.SizeOps {
			at := now.Sub(s.start)
			s.finishedAt[i] = at
			s.completions = append(s.completions, Completion{
				App: j.App, At: at, FlowTime: at, SizeOps: j.SizeOps,
			})
			rotated = true
		}
	}
	if s.Done() {
		return
	}
	if s.policy == RR && now.Sub(s.sliceStart) >= s.quantum {
		s.rrIndex++
		rotated = true
	}
	if rotated {
		_ = s.activateNext(now)
	}
}

// Done reports whether every job has completed.
func (s *Scheduler) Done() bool {
	for _, f := range s.finishedAt {
		if f == 0 {
			return false
		}
	}
	return true
}

// Completions returns the finished jobs in completion order.
func (s *Scheduler) Completions() []Completion {
	return append([]Completion(nil), s.completions...)
}

// Makespan returns the time from start to the last completion (zero until
// Done).
func (s *Scheduler) Makespan() time.Duration {
	if !s.Done() {
		return 0
	}
	var last time.Duration
	for _, f := range s.finishedAt {
		if f > last {
			last = f
		}
	}
	return last
}

// MeanFlowTime returns the average completion time across finished jobs
// (the metric SJF optimizes).
func (s *Scheduler) MeanFlowTime() time.Duration {
	if len(s.completions) == 0 {
		return 0
	}
	var sum time.Duration
	for _, c := range s.completions {
		sum += c.FlowTime
	}
	return sum / time.Duration(len(s.completions))
}

// Progress returns completed ops per job app.
func (s *Scheduler) Progress() map[string]float64 {
	out := make(map[string]float64, len(s.jobs))
	for i, j := range s.jobs {
		out[j.App] = s.done[i]
	}
	return out
}
