package timeshare

import (
	"testing"
	"time"

	"pocolo/internal/machine"
	"pocolo/internal/profiler"
	"pocolo/internal/servermgr"
	"pocolo/internal/sim"
	"pocolo/internal/workload"
)

// rig builds a xapian host with all four BE apps registered, a
// power-optimized manager, and an engine.
func rig(t *testing.T, level float64) (*sim.Host, *servermgr.Manager, *sim.Engine) {
	t.Helper()
	cat := workload.MustDefaults()
	lc, err := cat.ByName("xapian")
	if err != nil {
		t.Fatal(err)
	}
	bes := cat.BE()
	host, err := sim.NewHost(sim.HostConfig{
		Name:    "ts",
		Machine: machine.XeonE52650(),
		LC:      lc,
		BE:      bes[0],
		ExtraBE: bes[1:],
		Trace:   mustConst(t, level),
		Seed:    11,
	})
	if err != nil {
		t.Fatal(err)
	}
	model, err := profiler.ProfileAndFit(profiler.Config{Spec: lc, Machine: machine.XeonE52650(), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := servermgr.New(servermgr.Config{Host: host, Model: model, Policy: servermgr.PowerOptimized})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sim.NewEngine(100 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.AddHost(host); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Attach(eng); err != nil {
		t.Fatal(err)
	}
	return host, mgr, eng
}

func mustConst(t *testing.T, level float64) workload.Trace {
	t.Helper()
	tr, err := workload.NewConstantTrace(level)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func batch(sizes map[string]float64) []Job {
	// Stable order: lstm, rnn, graph, pbzip (catalog order).
	var jobs []Job
	for _, app := range []string{"lstm", "rnn", "graph", "pbzip"} {
		if s, ok := sizes[app]; ok {
			jobs = append(jobs, Job{App: app, SizeOps: s})
		}
	}
	return jobs
}

func TestNewValidation(t *testing.T) {
	host, mgr, _ := rig(t, 0.2)
	good := batch(map[string]float64{"lstm": 100, "rnn": 100})
	if _, err := New(Config{Manager: mgr, Jobs: good}); err == nil {
		t.Error("expected error for nil host")
	}
	if _, err := New(Config{Host: host, Jobs: good}); err == nil {
		t.Error("expected error for nil manager")
	}
	if _, err := New(Config{Host: host, Manager: mgr}); err == nil {
		t.Error("expected error for no jobs")
	}
	if _, err := New(Config{Host: host, Manager: mgr, Jobs: []Job{{App: "lstm", SizeOps: 0}}}); err == nil {
		t.Error("expected error for zero size")
	}
	if _, err := New(Config{Host: host, Manager: mgr, Jobs: []Job{{App: "ghost", SizeOps: 1}}}); err == nil {
		t.Error("expected error for unregistered app")
	}
	if _, err := New(Config{Host: host, Manager: mgr, Jobs: []Job{{App: "lstm", SizeOps: 1}, {App: "lstm", SizeOps: 2}}}); err == nil {
		t.Error("expected error for duplicate app")
	}
	if _, err := New(Config{Host: host, Manager: mgr, Jobs: good, Quantum: -time.Second}); err == nil {
		t.Error("expected error for negative quantum")
	}
	s, err := New(Config{Host: host, Manager: mgr, Jobs: good})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Attach(nil); err == nil {
		t.Error("expected error attaching to nil engine")
	}
}

func TestPolicyStrings(t *testing.T) {
	if FCFS.String() != "fcfs" || SJF.String() != "sjf" || RR.String() != "rr" || Policy(9).String() == "" {
		t.Error("policy strings broken")
	}
}

// runBatch executes a batch to completion (bounded by maxSim).
func runBatch(t *testing.T, policy Policy, sizes map[string]float64, level float64, maxSim time.Duration) *Scheduler {
	t.Helper()
	host, mgr, eng := rig(t, level)
	_ = host
	s, err := New(Config{Host: host, Manager: mgr, Policy: policy, Jobs: batch(sizes), Quantum: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Attach(eng); err != nil {
		t.Fatal(err)
	}
	for elapsed := time.Duration(0); elapsed < maxSim && !s.Done(); elapsed += 5 * time.Second {
		if err := eng.Run(5 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Done() {
		t.Fatalf("%v: batch did not complete within %v (progress %v)", policy, maxSim, s.Progress())
	}
	return s
}

func TestFCFSRunsInSubmissionOrder(t *testing.T) {
	sizes := map[string]float64{"lstm": 300, "rnn": 150, "graph": 100}
	s := runBatch(t, FCFS, sizes, 0.2, 2*time.Minute)
	comps := s.Completions()
	if len(comps) != 3 {
		t.Fatalf("completions = %d", len(comps))
	}
	// Submission order is lstm, rnn, graph regardless of size.
	if comps[0].App != "lstm" || comps[1].App != "rnn" || comps[2].App != "graph" {
		t.Errorf("FCFS order broken: %v", comps)
	}
	if s.Makespan() <= 0 || s.MeanFlowTime() <= 0 {
		t.Error("metrics should be positive after completion")
	}
}

func TestSJFRunsShortestFirst(t *testing.T) {
	sizes := map[string]float64{"lstm": 300, "rnn": 150, "graph": 100}
	s := runBatch(t, SJF, sizes, 0.2, 2*time.Minute)
	comps := s.Completions()
	if comps[0].App != "graph" {
		t.Errorf("SJF should finish the smallest job first, got %v", comps[0].App)
	}
	if comps[len(comps)-1].App != "lstm" {
		t.Errorf("SJF should finish the largest job last, got %v", comps[len(comps)-1].App)
	}
}

func TestSJFBeatsFCFSOnMeanFlowTime(t *testing.T) {
	// Classic scheduling result: with a long job submitted first, SJF's
	// mean flow time beats FCFS's; makespans are comparable.
	sizes := map[string]float64{"lstm": 500, "rnn": 100, "graph": 80}
	fcfs := runBatch(t, FCFS, sizes, 0.2, 3*time.Minute)
	sjf := runBatch(t, SJF, sizes, 0.2, 3*time.Minute)
	if sjf.MeanFlowTime() >= fcfs.MeanFlowTime() {
		t.Errorf("SJF mean flow %v should beat FCFS %v", sjf.MeanFlowTime(), fcfs.MeanFlowTime())
	}
	ratio := float64(sjf.Makespan()) / float64(fcfs.Makespan())
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("makespans should be comparable: sjf %v vs fcfs %v", sjf.Makespan(), fcfs.Makespan())
	}
}

func TestRRInterleaves(t *testing.T) {
	sizes := map[string]float64{"rnn": 300, "pbzip": 300}
	host, mgr, eng := rig(t, 0.2)
	s, err := New(Config{Host: host, Manager: mgr, Policy: RR, Jobs: batch(sizes), Quantum: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Attach(eng); err != nil {
		t.Fatal(err)
	}
	// After 3 quanta both jobs must have progressed (RR interleaves),
	// unlike FCFS where the second would still be at zero.
	if err := eng.Run(6 * time.Second); err != nil {
		t.Fatal(err)
	}
	prog := s.Progress()
	if prog["rnn"] <= 0 || prog["pbzip"] <= 0 {
		t.Errorf("RR should interleave both jobs: %v", prog)
	}
	// Run to completion.
	for i := 0; i < 40 && !s.Done(); i++ {
		if err := eng.Run(5 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Done() {
		t.Fatalf("RR batch did not finish: %v", s.Progress())
	}
	if len(s.Completions()) != 2 {
		t.Errorf("completions = %v", s.Completions())
	}
}

func TestMetricsBeforeCompletion(t *testing.T) {
	host, mgr, eng := rig(t, 0.2)
	s, err := New(Config{Host: host, Manager: mgr, Jobs: batch(map[string]float64{"lstm": 1e7})})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Attach(eng); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if s.Done() {
		t.Error("absurdly large job cannot be done")
	}
	if s.Makespan() != 0 {
		t.Error("makespan should be zero before completion")
	}
	if s.MeanFlowTime() != 0 {
		t.Error("mean flow time should be zero with no completions")
	}
	if s.Progress()["lstm"] <= 0 {
		t.Error("progress should accrue")
	}
}
