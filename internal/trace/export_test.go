package trace

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// fullTrace builds one event of every kind on a deterministic timeline.
func fullTrace() []Event {
	tr := New("host-a", 32)
	sp := tr.StartSpan("control_tick")
	tr.ObserveSlack(0.07)
	tr.ControlDecision(at(1), sampleControl(1))
	sp.End(at(1))
	tr.CapAction(at(2), CapAction{PowerW: 121.5, CapW: 110, Action: ActionThrottleFreq, BEFreqGHz: 1.8, BEDuty: 1})
	tr.CapAction(at(3), CapAction{PowerW: 95, CapW: 110, Action: ActionRestoreFreq, BEFreqGHz: 2.0, BEDuty: 1})
	tr.Placement(at(4), Placement{BE: "x264", Node: "agent-1", Reason: "solve"})
	tr.Migration(at(5), Placement{BE: "x264", Node: "agent-2", From: "agent-1", Reason: "agent-1 dead"})
	tr.Degradation(at(6), "no live agents")
	tr.SolveSummary(at(7), SolveSummary{Method: "hungarian", Rows: 2, Cols: 3, Total: 1.75})
	tr.SolveSummary(at(7), SolveSummary{
		Method: "incremental", Rows: 4, Cols: 8, Total: 3.5,
		Pod: "pod-2", CellsComputed: 6, CellsReused: 26,
	})
	tr.BudgetShift(at(8), BudgetChange{Node: "host-a", FromW: 0, ToW: 118.4, Reason: "rebalance"})
	tr.BudgetCut(at(9), BudgetChange{Node: "dc", FromW: 540, ToW: 378, Reason: "brownout"})
	tr.Heartbeat(at(10), HeartbeatSummary{Frames: 12, Fulls: 2, Deltas: 9, Stale: 1, Resyncs: 2, Rejects: 1, Bytes: 640})
	return tr.Events()
}

func TestJSONLRoundTrip(t *testing.T) {
	events := fullTrace()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events, true); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(events, parsed) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", parsed, events)
	}
}

func TestCanonicalFormStripsWallClock(t *testing.T) {
	events := fullTrace()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events, false); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if strings.Contains(text, "wall_ns") || strings.Contains(text, "dur_ns") {
		t.Fatalf("canonical form leaked wall-clock fields:\n%s", text)
	}
	parsed, err := ParseJSONL(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripWall(events), parsed) {
		t.Fatal("canonical round trip lost deterministic fields")
	}
	// Canonical export is a pure function of the deterministic fields:
	// re-exporting the parse reproduces the bytes.
	var again bytes.Buffer
	if err := WriteJSONL(&again, parsed, false); err != nil {
		t.Fatal(err)
	}
	if again.String() != text {
		t.Fatal("canonical export not reproducible")
	}
}

func TestEventJSONIsStdlibCompatible(t *testing.T) {
	events := fullTrace()
	b, err := json.Marshal(events)
	if err != nil {
		t.Fatal(err)
	}
	var back []Event
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(events, back) {
		t.Fatal("json.Marshal/Unmarshal round trip mismatch")
	}
}

func TestParseJSONLRejectsMalformed(t *testing.T) {
	cases := []string{
		`{"seq":1,"t_ns":0,"kind":"volcano"}`,
		`{"seq":1,"t_ns":0 "kind":"control"}`,
		`not json at all`,
	}
	for _, c := range cases {
		if _, err := ParseJSONL(strings.NewReader(c)); err == nil {
			t.Fatalf("ParseJSONL accepted %q", c)
		}
	}
	events, err := ParseJSONL(strings.NewReader("\n\n"))
	if err != nil || len(events) != 0 {
		t.Fatalf("blank lines: events=%v err=%v", events, err)
	}
}

func TestValidateAcceptsRealTrace(t *testing.T) {
	if err := Validate(fullTrace()); err != nil {
		t.Fatal(err)
	}
	// A merged multi-host timeline interleaves hosts; still valid.
	s := NewSet(16)
	for _, h := range []string{"a", "b"} {
		tr := s.Tracer(h)
		for i := 1; i <= 3; i++ {
			tr.ControlDecision(at(int64(i)), sampleControl(i))
		}
	}
	if err := Validate(s.Events()); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsViolations(t *testing.T) {
	base := func() Event {
		return Event{Seq: 1, TNS: 0, Kind: KindControl, Host: "h", Control: sampleControl(1)}
	}
	cases := map[string]func() []Event{
		"zero seq": func() []Event {
			ev := base()
			ev.Seq = 0
			return []Event{ev}
		},
		"seq not increasing": func() []Event {
			a, b := base(), base()
			b.TNS = 1
			return []Event{a, b}
		},
		"time reversal": func() []Event {
			a, b := base(), base()
			a.TNS = 5
			b.Seq, b.TNS = 2, 4
			return []Event{a, b}
		},
		"unknown path": func() []Event {
			ev := base()
			ev.Control.Path = "psychic"
			return []Event{ev}
		},
		"unknown action": func() []Event {
			ev := base()
			ev.Kind = KindCap
			ev.Cap = CapAction{CapW: 100, Action: "unplug"}
			return []Event{ev}
		},
		"zero cap": func() []Event {
			ev := base()
			ev.Kind = KindCap
			ev.Cap = CapAction{Action: ActionThrottleFreq}
			return []Event{ev}
		},
		"empty placement": func() []Event {
			ev := base()
			ev.Kind = KindPlacement
			ev.Control = ControlDecision{}
			return []Event{ev}
		},
		"self migration": func() []Event {
			ev := base()
			ev.Kind = KindMigration
			ev.Place = Placement{BE: "x", Node: "a", From: "a"}
			return []Event{ev}
		},
		"empty degradation reason": func() []Event {
			ev := base()
			ev.Kind = KindDegradation
			return []Event{ev}
		},
		"empty solve method": func() []Event {
			ev := base()
			ev.Kind = KindSolve
			ev.Solve = SolveSummary{Rows: 1, Cols: 1}
			return []Event{ev}
		},
		"negative solve cell counter": func() []Event {
			ev := base()
			ev.Kind = KindSolve
			ev.Solve = SolveSummary{Method: "sharded", Rows: 1, Cols: 1, CellsComputed: -1}
			return []Event{ev}
		},
		"negative span": func() []Event {
			ev := base()
			ev.Kind = KindSpan
			ev.Span = SpanInfo{Name: "solve", DurNS: -1}
			return []Event{ev}
		},
		"zero budget target": func() []Event {
			ev := base()
			ev.Kind = KindBudgetCut
			ev.Budget = BudgetChange{Node: "dc", FromW: 540, ToW: 0, Reason: "brownout"}
			return []Event{ev}
		},
		"negative heartbeat counter": func() []Event {
			ev := base()
			ev.Kind = KindHeartbeat
			ev.Heartbeat = HeartbeatSummary{Frames: 3, Deltas: -1}
			return []Event{ev}
		},
		"heartbeat applies exceed frames": func() []Event {
			ev := base()
			ev.Kind = KindHeartbeat
			ev.Heartbeat = HeartbeatSummary{Frames: 2, Fulls: 1, Deltas: 2}
			return []Event{ev}
		},
		"unknown kind": func() []Event {
			ev := base()
			ev.Kind = Kind(99)
			return []Event{ev}
		},
	}
	for name, mk := range cases {
		if err := Validate(mk()); err == nil {
			t.Errorf("Validate accepted %s", name)
		}
	}
}

func TestChromeExportValidates(t *testing.T) {
	events := fullTrace()
	// Add a second host so multiple tracks exist.
	tr := New("host-b", 8)
	sp := tr.StartSpan("cap_tick")
	sp.End(at(2))
	tr.ControlDecision(at(9), sampleControl(2))
	events = append(events, tr.Events()...)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("export failed its own validation: %v\n%s", err, buf.String())
	}
	var records []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &records); err != nil {
		t.Fatalf("export is not a JSON array: %v", err)
	}
	// 2 thread_name metadata records + all events.
	if want := 2 + len(events); len(records) != want {
		t.Fatalf("chrome records = %d, want %d", len(records), want)
	}
	phases := map[string]int{}
	for _, r := range records {
		phases[r["ph"].(string)]++
	}
	if phases["M"] != 2 || phases["X"] != 2 || phases["i"] != len(events)-2 {
		t.Fatalf("phase mix = %v", phases)
	}
}

func TestValidateChromeTraceRejects(t *testing.T) {
	cases := map[string]string{
		"not array":     `{"name":"x"}`,
		"empty name":    `[{"ph":"i","ts":1,"pid":1,"tid":1}]`,
		"unknown phase": `[{"name":"x","ph":"Z","ts":1,"pid":1,"tid":1}]`,
		"missing ts":    `[{"name":"x","ph":"i","pid":1,"tid":1}]`,
		"negative ts":   `[{"name":"x","ph":"i","ts":-1,"pid":1,"tid":1}]`,
		"ts regression": `[{"name":"a","ph":"i","ts":5,"pid":1,"tid":1},{"name":"b","ph":"i","ts":4,"pid":1,"tid":1}]`,
	}
	for name, payload := range cases {
		if err := ValidateChromeTrace(strings.NewReader(payload)); err == nil {
			t.Errorf("ValidateChromeTrace accepted %s", name)
		}
	}
	// Distinct tracks keep independent clocks.
	ok := `[{"name":"a","ph":"i","ts":5,"pid":1,"tid":1},{"name":"b","ph":"i","ts":4,"pid":1,"tid":2}]`
	if err := ValidateChromeTrace(strings.NewReader(ok)); err != nil {
		t.Fatalf("independent tracks rejected: %v", err)
	}
}

func TestSortEventsCanonicalOrder(t *testing.T) {
	events := []Event{
		{Seq: 2, TNS: 10, Host: "b"},
		{Seq: 1, TNS: 10, Host: "a"},
		{Seq: 1, TNS: 5, Host: "b"},
		{Seq: 1, TNS: 10, Host: "b"},
	}
	SortEvents(events)
	want := []Event{
		{Seq: 1, TNS: 5, Host: "b"},
		{Seq: 1, TNS: 10, Host: "a"},
		{Seq: 1, TNS: 10, Host: "b"},
		{Seq: 2, TNS: 10, Host: "b"},
	}
	if !reflect.DeepEqual(events, want) {
		t.Fatalf("sorted = %+v", events)
	}
}
