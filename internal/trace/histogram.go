package trace

import (
	"sort"
	"sync"
)

// Histogram is a fixed-bucket histogram in the Prometheus style: each
// bucket counts observations ≤ its upper bound, plus an implicit +Inf
// bucket, a running sum, and a total count. Observe is mutex-protected
// and allocation-free; all methods are no-ops on a nil receiver so a
// disabled tracer costs nothing.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // strictly increasing upper bounds
	counts []uint64  // len(bounds)+1; last is the +Inf bucket
	sum    float64
	count  uint64
}

// NewHistogram builds a histogram over the given upper bounds, which are
// sorted and deduplicated.
func NewHistogram(bounds ...float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	uniq := bs[:0]
	for i, b := range bs {
		if i == 0 || b != bs[i-1] {
			uniq = append(uniq, b)
		}
	}
	return &Histogram{bounds: uniq, counts: make([]uint64, len(uniq)+1)}
}

// DurationBuckets is the default bucket ladder for phase durations in
// seconds: 1µs … 100ms, roughly ×3 per step. Control ticks on simulated
// hosts land in the low microseconds; real solves in the milliseconds.
func DurationBuckets() []float64 {
	return []float64{1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1}
}

// SlackBuckets is the default bucket ladder for relative p99 slack.
// Negative slack is an SLO violation; the target region is ~[0, 0.2].
func SlackBuckets() []float64 {
	return []float64{-0.5, -0.25, -0.1, -0.05, 0, 0.05, 0.1, 0.15, 0.2, 0.3, 0.5}
}

// Observe records one sample. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// HistogramSnapshot is a point-in-time copy of a histogram. Counts are
// per-bucket (not cumulative); Cumulative converts for the Prometheus
// exposition.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"` // len(Bounds)+1, last is +Inf
	Sum    float64   `json:"sum"`
	Count  uint64    `json:"count"`
}

// Snapshot copies the histogram state. A nil histogram snapshots empty.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]uint64(nil), h.counts...),
		Sum:    h.sum,
		Count:  h.count,
	}
}

// Cumulative returns the Prometheus-style cumulative bucket counts: the
// i-th entry counts observations ≤ Bounds[i], and the final entry (the
// +Inf bucket) equals Count.
func (s HistogramSnapshot) Cumulative() []uint64 {
	out := make([]uint64, len(s.Counts))
	var run uint64
	for i, c := range s.Counts {
		run += c
		out[i] = run
	}
	return out
}

// Merge adds the other snapshot's samples into s and returns the result.
// A side with no samples contributes nothing (the sampled side's bounds
// win); two sampled snapshots with mismatched bounds cannot be merged
// and the receiver is returned unchanged with ok=false.
func (s HistogramSnapshot) Merge(other HistogramSnapshot) (HistogramSnapshot, bool) {
	if other.Count == 0 {
		return s, true
	}
	if s.Count == 0 {
		return other, true
	}
	if len(s.Bounds) != len(other.Bounds) {
		return s, false
	}
	for i := range s.Bounds {
		if s.Bounds[i] != other.Bounds[i] {
			return s, false
		}
	}
	out := HistogramSnapshot{
		Bounds: append([]float64(nil), s.Bounds...),
		Counts: append([]uint64(nil), s.Counts...),
		Sum:    s.Sum + other.Sum,
		Count:  s.Count + other.Count,
	}
	for i := range other.Counts {
		out.Counts[i] += other.Counts[i]
	}
	return out, true
}
