// Package trace is the decision-tracing subsystem: a low-overhead,
// ring-buffered structured event log plus span timing, threaded through
// every decision site of the two control loops and the cluster layer.
// Where the Prometheus exposition answers "what is the state now", the
// trace answers "why did the controller do that at t=42s" — every control
// tick, capper intervention, placement, migration, degradation, and solve
// is recorded as a typed event on a per-host timeline that exports to
// JSONL and to the Chrome trace-event format (loadable in Perfetto or
// chrome://tracing).
//
// The tracer is allocation-conscious: the ring is preallocated, recording
// copies a flat Event value under a mutex, and every method is a no-op on
// a nil *Tracer, so the disabled path costs a nil check and zero
// allocations. Simulated timestamps (t_ns) are deterministic for seeded
// runs; wall-clock fields (wall_ns, span dur_ns) are the only
// nondeterministic content and the canonical JSONL form omits them, which
// is what the deterministic-replay tests compare.
package trace

import (
	"fmt"
	"strconv"
)

// Kind enumerates the typed event payloads.
type Kind uint8

const (
	// KindControl is one server-manager control-loop decision (1 s loop).
	KindControl Kind = iota + 1
	// KindCap is one power-capper intervention (100 ms loop): a DVFS or
	// duty knob movement, or an over-cap tick with both knobs exhausted.
	KindCap
	// KindPlacement is one best-effort app placed on a node.
	KindPlacement
	// KindMigration is a placed best-effort app moving between nodes.
	KindMigration
	// KindDegradation is a controller falling back to its last-known-good
	// placement.
	KindDegradation
	// KindSolve summarizes one assignment solve over the BE×LC matrix.
	KindSolve
	// KindSpan is a timed phase (control_tick, cap_tick, build_matrix,
	// solve); its duration is wall-clock and therefore nondeterministic.
	KindSpan
	// KindBudgetShift is a hierarchical budget reallocator moving one
	// node's (usually a host's) power allocation.
	KindBudgetShift
	// KindBudgetCut is a runtime budget mutation on a tree node — a
	// brownout cutting the DC budget, or its later restore.
	KindBudgetCut
	// KindHeartbeat summarizes one round of streamed delta-heartbeat
	// ingest: how many frames arrived since the previous round, how they
	// decoded (full resyncs vs deltas vs stale duplicates), and how many
	// acks demanded a resync. Batched per round rather than per frame so
	// a 10k-agent round costs one ring slot, and so seeded streaming
	// campaigns stay byte-identical on replay.
	KindHeartbeat
)

var kindNames = [...]string{
	KindControl:     "control",
	KindCap:         "cap",
	KindPlacement:   "placement",
	KindMigration:   "migration",
	KindDegradation: "degradation",
	KindSolve:       "solve",
	KindSpan:        "span",
	KindBudgetShift: "budget-shift",
	KindBudgetCut:   "budget-cut",
	KindHeartbeat:   "heartbeat",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind is the inverse of Kind.String.
func ParseKind(s string) (Kind, error) {
	for k, name := range kindNames {
		if name == s {
			return Kind(k), nil
		}
	}
	return 0, fmt.Errorf("trace: unknown event kind %q", s)
}

// Allocation-search paths a control decision can be served by.
const (
	// PathPlannerHit is a precomputed-plan lookup landing in a cold cell.
	PathPlannerHit = "planner-hit"
	// PathPlannerWarm is a warm-start reuse of the previous tick's cell.
	PathPlannerWarm = "planner-warm"
	// PathExact is the exact per-tick grid search (planner off or plan
	// construction failed).
	PathExact = "exact"
	// PathFullMachine means no feasible allocation met the target and the
	// primary was granted the whole machine.
	PathFullMachine = "full-machine"
	// PathColdStart means no load was observed yet and the primary holds
	// the full machine until the first real observation.
	PathColdStart = "cold-start"
)

// Capper actions a CapAction event can carry.
const (
	// ActionThrottleFreq stepped the best-effort DVFS down.
	ActionThrottleFreq = "throttle-freq"
	// ActionThrottleDuty cut the best-effort duty cycle.
	ActionThrottleDuty = "throttle-duty"
	// ActionRestoreFreq stepped the best-effort DVFS back up.
	ActionRestoreFreq = "restore-freq"
	// ActionRestoreDuty grew the best-effort duty cycle back.
	ActionRestoreDuty = "restore-duty"
	// ActionExhausted means power is over the cap but both knobs are at
	// their floors — physics, not a controller bug.
	ActionExhausted = "exhausted"
)

// ControlDecision is the payload of one 1 s control-loop decision.
type ControlDecision struct {
	// Tick is the control tick index (1-based).
	Tick int
	// Load and Target are the observed offered load and the headroom-
	// inflated model target the allocation was sized for.
	Load   float64
	Target float64
	// SlackIn is the relative p99 slack observed entering the tick.
	SlackIn float64
	// Boost is the feedback integrator after this tick's correction.
	Boost int
	// Cores and Ways are the installed LC allocation (after boost).
	Cores int
	Ways  int
	// FreqGHz is the LC DVFS setting installed by the tick.
	FreqGHz float64
	// Path says how the allocation search was served (Path* constants).
	Path string
	// Feasible reports whether any allocation met the target.
	Feasible bool
}

// CapAction is the payload of one 100 ms capper intervention.
type CapAction struct {
	// PowerW is the power-meter reading the capper acted on.
	PowerW float64
	// CapW is the budget being enforced.
	CapW float64
	// Action says which knob moved (Action* constants).
	Action string
	// BEFreqGHz and BEDuty are the best-effort throttle state after the
	// action.
	BEFreqGHz float64
	BEDuty    float64
}

// Placement is the payload of placement, migration, and degradation
// events.
type Placement struct {
	// BE is the best-effort app (empty for degradation).
	BE string
	// Node is the destination (agent or LC server name).
	Node string
	// From is the origin node of a migration.
	From string
	// Reason carries the degradation reason (or context for placements).
	Reason string
}

// SolveSummary is the payload of one assignment solve.
type SolveSummary struct {
	// Method is the solver ("lp", "hungarian", "exhaustive",
	// "incremental", "sharded").
	Method string
	// Rows and Cols are the matrix dimensions (BE × LC).
	Rows int
	Cols int
	// Total is the solver's predicted total value.
	Total float64
	// Pod names the shard the solve belongs to; empty for whole-cluster
	// solves.
	Pod string
	// CellsComputed and CellsReused count delta-driven matrix
	// construction work for the solve: cells evaluated fresh vs. served
	// from the fingerprint memo. Both zero when construction was not
	// delta-driven.
	CellsComputed int
	CellsReused   int
	// BatchDirty, BatchRounds, and BatchAugments count batch re-solve
	// work since the previous summary: dirty lines handed to
	// ResolveBatch, auction bidding rounds, and multi-source augmenting
	// passes. All zero when every repair took the sequential per-line
	// path.
	BatchDirty    int
	BatchRounds   int
	BatchAugments int
}

// BudgetChange is the payload of budget-shift and budget-cut events: one
// node of the power-budget hierarchy moving from FromW to ToW watts. For
// shifts the node is the host whose installed cap moved; for cuts it is
// the tree node whose budget was mutated.
type BudgetChange struct {
	// Node names the budget-tree node (or host) that changed.
	Node string
	// FromW and ToW are the watts before and after the change. FromW is 0
	// for the first allocation a host receives.
	FromW float64
	ToW   float64
	// Reason carries the mutation context ("rebalance", "brownout", ...).
	Reason string
}

// HeartbeatSummary is the payload of one heartbeat-ingest round summary.
// Frames counts every frame offered to the decoder since the previous
// summary; Fulls, Deltas, and Stale partition the frames that decoded
// (full resync applies, incremental delta applies, and ignored
// duplicates); Resyncs counts acks that demanded a full-frame resync;
// Rejects counts frames the codec refused outright. Bytes is the total
// encoded frame volume.
type HeartbeatSummary struct {
	Frames  int
	Fulls   int
	Deltas  int
	Stale   int
	Resyncs int
	Rejects int
	Bytes   int64
}

// SpanInfo is the payload of a timed phase.
type SpanInfo struct {
	// Name is the phase ("control_tick", "cap_tick", "build_matrix",
	// "solve").
	Name string
	// DurNS is the wall-clock phase duration in nanoseconds. It is the
	// one nondeterministic payload field; the canonical JSONL form omits
	// it.
	DurNS int64
}

// Event is one structured trace record. The payload fields are a union:
// only the struct selected by Kind is meaningful. Events are flat values
// so recording one is a copy into a preallocated ring slot, never an
// allocation.
type Event struct {
	// Seq is the per-tracer sequence number (1-based, strictly
	// increasing) — the since-cursor for /v1/trace pagination.
	Seq uint64
	// TNS is the event time in nanoseconds since the Unix epoch. Engine-
	// driven events use simulated time (the engine epoch is Unix(0,0), so
	// TNS is elapsed simulated nanoseconds); controller events use the
	// controller's clock.
	TNS int64
	// WallNS is the wall-clock record time; nondeterministic, omitted
	// from the canonical JSONL form.
	WallNS int64
	// Kind selects the payload.
	Kind Kind
	// Host is the timeline the event belongs to (tracer identity).
	Host string

	Control   ControlDecision
	Cap       CapAction
	Place     Placement
	Solve     SolveSummary
	Span      SpanInfo
	Budget    BudgetChange
	Heartbeat HeartbeatSummary
}

// appendJSON appends the event's JSON object. includeWall selects the
// full wire form (wall_ns and span dur_ns present); the canonical form
// omits both so seeded runs are byte-identical.
func (e *Event) appendJSON(b []byte, includeWall bool) []byte {
	b = append(b, `{"seq":`...)
	b = strconv.AppendUint(b, e.Seq, 10)
	b = append(b, `,"t_ns":`...)
	b = strconv.AppendInt(b, e.TNS, 10)
	if includeWall && e.WallNS != 0 {
		b = append(b, `,"wall_ns":`...)
		b = strconv.AppendInt(b, e.WallNS, 10)
	}
	b = append(b, `,"kind":`...)
	b = strconv.AppendQuote(b, e.Kind.String())
	if e.Host != "" {
		b = append(b, `,"host":`...)
		b = strconv.AppendQuote(b, e.Host)
	}
	switch e.Kind {
	case KindControl:
		c := &e.Control
		b = appendIntField(b, "tick", int64(c.Tick))
		b = appendFloatField(b, "load", c.Load)
		b = appendFloatField(b, "target", c.Target)
		b = appendFloatField(b, "slack_in", c.SlackIn)
		b = appendIntField(b, "boost", int64(c.Boost))
		b = appendIntField(b, "cores", int64(c.Cores))
		b = appendIntField(b, "ways", int64(c.Ways))
		b = appendFloatField(b, "freq_ghz", c.FreqGHz)
		b = appendStringField(b, "path", c.Path)
		b = append(b, `,"feasible":`...)
		b = strconv.AppendBool(b, c.Feasible)
	case KindCap:
		c := &e.Cap
		b = appendFloatField(b, "power_w", c.PowerW)
		b = appendFloatField(b, "cap_w", c.CapW)
		b = appendStringField(b, "action", c.Action)
		b = appendFloatField(b, "be_freq_ghz", c.BEFreqGHz)
		b = appendFloatField(b, "be_duty", c.BEDuty)
	case KindPlacement, KindMigration, KindDegradation:
		p := &e.Place
		b = appendStringField(b, "be", p.BE)
		b = appendStringField(b, "node", p.Node)
		b = appendStringField(b, "from", p.From)
		b = appendStringField(b, "reason", p.Reason)
	case KindSolve:
		s := &e.Solve
		b = appendStringField(b, "method", s.Method)
		b = appendIntField(b, "rows", int64(s.Rows))
		b = appendIntField(b, "cols", int64(s.Cols))
		b = appendFloatField(b, "total", s.Total)
		// Pod and cell counters are emitted only when set, keeping the
		// canonical form of pre-sharding events byte-identical.
		if s.Pod != "" {
			b = appendStringField(b, "pod", s.Pod)
		}
		if s.CellsComputed != 0 || s.CellsReused != 0 {
			b = appendIntField(b, "cells_computed", int64(s.CellsComputed))
			b = appendIntField(b, "cells_reused", int64(s.CellsReused))
		}
		if s.BatchDirty != 0 || s.BatchRounds != 0 || s.BatchAugments != 0 {
			b = appendIntField(b, "batch_dirty", int64(s.BatchDirty))
			b = appendIntField(b, "batch_rounds", int64(s.BatchRounds))
			b = appendIntField(b, "batch_augments", int64(s.BatchAugments))
		}
	case KindSpan:
		b = appendStringField(b, "name", e.Span.Name)
		if includeWall {
			b = appendIntField(b, "dur_ns", e.Span.DurNS)
		}
	case KindBudgetShift, KindBudgetCut:
		c := &e.Budget
		b = appendStringField(b, "node", c.Node)
		b = appendFloatField(b, "from_w", c.FromW)
		b = appendFloatField(b, "to_w", c.ToW)
		b = appendStringField(b, "reason", c.Reason)
	case KindHeartbeat:
		h := &e.Heartbeat
		b = appendIntField(b, "frames", int64(h.Frames))
		b = appendIntField(b, "fulls", int64(h.Fulls))
		b = appendIntField(b, "deltas", int64(h.Deltas))
		b = appendIntField(b, "stale", int64(h.Stale))
		b = appendIntField(b, "resyncs", int64(h.Resyncs))
		b = appendIntField(b, "rejects", int64(h.Rejects))
		b = appendIntField(b, "bytes", h.Bytes)
	}
	return append(b, '}')
}

func appendIntField(b []byte, key string, v int64) []byte {
	b = append(b, ',', '"')
	b = append(b, key...)
	b = append(b, '"', ':')
	return strconv.AppendInt(b, v, 10)
}

func appendFloatField(b []byte, key string, v float64) []byte {
	b = append(b, ',', '"')
	b = append(b, key...)
	b = append(b, '"', ':')
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

func appendStringField(b []byte, key, v string) []byte {
	b = append(b, ',', '"')
	b = append(b, key...)
	b = append(b, '"', ':')
	return strconv.AppendQuote(b, v)
}

// MarshalJSON implements json.Marshaler with the full wire form (wall
// clock included) — the form /v1/trace serves.
func (e Event) MarshalJSON() ([]byte, error) {
	return e.appendJSON(nil, true), nil
}

// eventJSON is the flat decode target: the union of every kind's fields.
type eventJSON struct {
	Seq    uint64 `json:"seq"`
	TNS    int64  `json:"t_ns"`
	WallNS int64  `json:"wall_ns"`
	Kind   string `json:"kind"`
	Host   string `json:"host"`

	Tick     int     `json:"tick"`
	Load     float64 `json:"load"`
	Target   float64 `json:"target"`
	SlackIn  float64 `json:"slack_in"`
	Boost    int     `json:"boost"`
	Cores    int     `json:"cores"`
	Ways     int     `json:"ways"`
	FreqGHz  float64 `json:"freq_ghz"`
	Path     string  `json:"path"`
	Feasible bool    `json:"feasible"`

	PowerW    float64 `json:"power_w"`
	CapW      float64 `json:"cap_w"`
	Action    string  `json:"action"`
	BEFreqGHz float64 `json:"be_freq_ghz"`
	BEDuty    float64 `json:"be_duty"`

	BE     string `json:"be"`
	Node   string `json:"node"`
	From   string `json:"from"`
	Reason string `json:"reason"`

	Method        string  `json:"method"`
	Rows          int     `json:"rows"`
	Cols          int     `json:"cols"`
	Total         float64 `json:"total"`
	Pod           string  `json:"pod"`
	CellsComputed int     `json:"cells_computed"`
	CellsReused   int     `json:"cells_reused"`
	BatchDirty    int     `json:"batch_dirty"`
	BatchRounds   int     `json:"batch_rounds"`
	BatchAugments int     `json:"batch_augments"`

	Name  string `json:"name"`
	DurNS int64  `json:"dur_ns"`

	FromW float64 `json:"from_w"`
	ToW   float64 `json:"to_w"`

	Frames  int   `json:"frames"`
	Fulls   int   `json:"fulls"`
	Deltas  int   `json:"deltas"`
	Stale   int   `json:"stale"`
	Resyncs int   `json:"resyncs"`
	Rejects int   `json:"rejects"`
	Bytes   int64 `json:"bytes"`
}

// event converts the flat decode form back to a typed Event.
func (j *eventJSON) event() (Event, error) {
	kind, err := ParseKind(j.Kind)
	if err != nil {
		return Event{}, err
	}
	ev := Event{Seq: j.Seq, TNS: j.TNS, WallNS: j.WallNS, Kind: kind, Host: j.Host}
	switch kind {
	case KindControl:
		ev.Control = ControlDecision{
			Tick: j.Tick, Load: j.Load, Target: j.Target, SlackIn: j.SlackIn,
			Boost: j.Boost, Cores: j.Cores, Ways: j.Ways, FreqGHz: j.FreqGHz,
			Path: j.Path, Feasible: j.Feasible,
		}
	case KindCap:
		ev.Cap = CapAction{
			PowerW: j.PowerW, CapW: j.CapW, Action: j.Action,
			BEFreqGHz: j.BEFreqGHz, BEDuty: j.BEDuty,
		}
	case KindPlacement, KindMigration, KindDegradation:
		ev.Place = Placement{BE: j.BE, Node: j.Node, From: j.From, Reason: j.Reason}
	case KindSolve:
		ev.Solve = SolveSummary{
			Method: j.Method, Rows: j.Rows, Cols: j.Cols, Total: j.Total,
			Pod: j.Pod, CellsComputed: j.CellsComputed, CellsReused: j.CellsReused,
			BatchDirty: j.BatchDirty, BatchRounds: j.BatchRounds, BatchAugments: j.BatchAugments,
		}
	case KindSpan:
		ev.Span = SpanInfo{Name: j.Name, DurNS: j.DurNS}
	case KindBudgetShift, KindBudgetCut:
		ev.Budget = BudgetChange{Node: j.Node, FromW: j.FromW, ToW: j.ToW, Reason: j.Reason}
	case KindHeartbeat:
		ev.Heartbeat = HeartbeatSummary{
			Frames: j.Frames, Fulls: j.Fulls, Deltas: j.Deltas, Stale: j.Stale,
			Resyncs: j.Resyncs, Rejects: j.Rejects, Bytes: j.Bytes,
		}
	}
	return ev, nil
}
