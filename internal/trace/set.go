package trace

import "sync"

// Set is a family of per-host tracers sharing one capacity. Parallel
// cluster sweeps hand each simulated host its own child tracer (so hosts
// never contend on one ring and per-host event order is independent of
// goroutine scheduling), then merge the rings into one deterministic
// timeline with Events. All methods are no-ops on a nil receiver.
type Set struct {
	capacity int

	mu       sync.Mutex
	children map[string]*Tracer
}

// NewSet builds a tracer set whose children each hold capacity events
// (<= 0 selects DefaultEvents).
func NewSet(capacity int) *Set {
	if capacity <= 0 {
		capacity = DefaultEvents
	}
	return &Set{capacity: capacity, children: make(map[string]*Tracer)}
}

// Tracer returns the child tracer for key, creating it on first use.
// The key becomes the Host label on the child's events, so callers must
// pick keys unique across the run (e.g. "trial3/memcached"). Returns nil
// on a nil set.
func (s *Set) Tracer(key string) *Tracer {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.children[key]
	if t == nil {
		t = New(key, s.capacity)
		// Set traces are deterministic simulation artifacts: exports use
		// the canonical wall-free form (skip the per-event clock read) and
		// fine-grained 10 Hz spans would dominate sweep cost while timing
		// only the simulator's own compute (skip those too — decision
		// events are unaffected).
		t.noWall = true
		t.coarse = true
		s.children[key] = t
	}
	return t
}

// Events merges every child's retained events into one timeline sorted
// by (time, host, sequence). The result is deterministic for seeded runs
// regardless of how many goroutines produced the events.
func (s *Set) Events() []Event {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	children := make([]*Tracer, 0, len(s.children))
	for _, t := range s.children {
		children = append(children, t)
	}
	s.mu.Unlock()
	var out []Event
	for _, t := range children {
		out = append(out, t.Events()...)
	}
	SortEvents(out)
	return out
}

// Dropped sums ring overwrites across all children.
func (s *Set) Dropped() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	children := make([]*Tracer, 0, len(s.children))
	for _, t := range s.children {
		children = append(children, t)
	}
	s.mu.Unlock()
	var total uint64
	for _, t := range children {
		total += t.Dropped()
	}
	return total
}

// SpanDurations merges every child's phase-duration histograms by phase
// name. Children always share the DurationBuckets ladder, so merges
// cannot fail; a child with foreign bounds (possible only via direct
// Histogram construction) is skipped.
func (s *Set) SpanDurations() map[string]HistogramSnapshot {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	children := make([]*Tracer, 0, len(s.children))
	for _, t := range s.children {
		children = append(children, t)
	}
	s.mu.Unlock()
	out := make(map[string]HistogramSnapshot)
	for _, t := range children {
		for name, snap := range t.SpanDurations() {
			if merged, ok := out[name].Merge(snap); ok {
				out[name] = merged
			}
		}
	}
	return out
}

// SlackDistribution merges every child's slack histogram.
func (s *Set) SlackDistribution() HistogramSnapshot {
	if s == nil {
		return HistogramSnapshot{}
	}
	s.mu.Lock()
	children := make([]*Tracer, 0, len(s.children))
	for _, t := range s.children {
		children = append(children, t)
	}
	s.mu.Unlock()
	var out HistogramSnapshot
	for _, t := range children {
		if merged, ok := out.Merge(t.SlackDistribution()); ok {
			out = merged
		}
	}
	return out
}
