package trace

import (
	"sort"
	"sync"
	"time"
)

// DefaultEvents is the default ring capacity. At one control decision,
// one span, and a handful of cap actions per simulated second, 4096
// events retain on the order of 20 minutes of decisions per host.
const DefaultEvents = 4096

// Tracer records structured events into a bounded ring and feeds
// phase-duration and slack histograms. The ring grows geometrically up
// to its capacity rather than being preallocated — an Event is ~300
// bytes, and runs that fan out into many short-lived child tracers (one
// per host per trial) would otherwise pay megabytes of zeroed ring per
// child. All methods are safe for concurrent use and are no-ops on a nil
// receiver: code under test holds a possibly-nil *Tracer and calls it
// unconditionally, paying only a nil check when tracing is disabled.
type Tracer struct {
	host string

	// noWall skips the wall-clock stamp on every record. Set children run
	// inside deterministic simulations whose exports always use the
	// canonical (wall-free) form, so the per-event time.Now() would be
	// pure overhead there; standalone tracers on live agents keep it.
	noWall bool
	// coarse drops the fine-grained (per-cap-tick, 10 Hz) spans, keeping
	// only the 1 Hz-and-slower phases. Batch simulations sweep hundreds of
	// host-seconds per wall millisecond, so a 10 Hz span per simulated
	// host dominates tracing cost there while timing nothing but the
	// simulator's own compute; live agents keep every span. Decision
	// events (CapAction etc.) are never dropped.
	coarse bool

	mu       sync.Mutex
	ring     []Event
	capacity int
	head, n  int
	seq      uint64
	dropped  uint64
	spanDur  map[string]*Histogram
	slack    *Histogram
}

// ringSeed is the initial ring allocation; the ring doubles from here up
// to the tracer's capacity as events arrive.
const ringSeed = 64

// New builds a tracer whose events carry the given host label.
// capacity <= 0 selects DefaultEvents.
func New(host string, capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultEvents
	}
	seed := ringSeed
	if seed > capacity {
		seed = capacity
	}
	return &Tracer{
		host:     host,
		ring:     make([]Event, seed),
		capacity: capacity,
		spanDur:  make(map[string]*Histogram),
		slack:    NewHistogram(SlackBuckets()...),
	}
}

// Host returns the tracer's host label ("" for nil).
func (t *Tracer) Host() string {
	if t == nil {
		return ""
	}
	return t.host
}

// record stamps and stores one event. The ring overwrites the oldest
// event when full; Dropped counts the overwrites.
func (t *Tracer) record(now time.Time, ev Event) {
	if t == nil {
		return
	}
	ev.TNS = now.UnixNano()
	if !t.noWall {
		ev.WallNS = time.Now().UnixNano()
	}
	ev.Host = t.host
	t.mu.Lock()
	t.seq++
	ev.Seq = t.seq
	if t.n == len(t.ring) && len(t.ring) < t.capacity {
		// Double up to capacity. The ring has never wrapped while it is
		// below capacity (head stays 0 until the first overwrite), so the
		// retained events copy over in place.
		grown := 2 * len(t.ring)
		if grown > t.capacity {
			grown = t.capacity
		}
		next := make([]Event, grown)
		copy(next, t.ring)
		t.ring = next
	}
	if t.n < len(t.ring) {
		t.ring[(t.head+t.n)%len(t.ring)] = ev
		t.n++
	} else {
		t.ring[t.head] = ev
		t.head = (t.head + 1) % len(t.ring)
		t.dropped++
	}
	t.mu.Unlock()
}

// ControlDecision records one control-loop decision.
func (t *Tracer) ControlDecision(now time.Time, d ControlDecision) {
	if t == nil {
		return
	}
	t.record(now, Event{Kind: KindControl, Control: d})
}

// CapAction records one capper intervention.
func (t *Tracer) CapAction(now time.Time, a CapAction) {
	if t == nil {
		return
	}
	t.record(now, Event{Kind: KindCap, Cap: a})
}

// Placement records a best-effort app landing on a node.
func (t *Tracer) Placement(now time.Time, p Placement) {
	if t == nil {
		return
	}
	t.record(now, Event{Kind: KindPlacement, Place: p})
}

// Migration records a best-effort app moving between nodes.
func (t *Tracer) Migration(now time.Time, p Placement) {
	if t == nil {
		return
	}
	t.record(now, Event{Kind: KindMigration, Place: p})
}

// Degradation records a fallback to the last-known-good placement.
func (t *Tracer) Degradation(now time.Time, reason string) {
	if t == nil {
		return
	}
	t.record(now, Event{Kind: KindDegradation, Place: Placement{Reason: reason}})
}

// SolveSummary records one assignment solve.
func (t *Tracer) SolveSummary(now time.Time, s SolveSummary) {
	if t == nil {
		return
	}
	t.record(now, Event{Kind: KindSolve, Solve: s})
}

// BudgetShift records a budget reallocator moving one node's power
// allocation.
func (t *Tracer) BudgetShift(now time.Time, c BudgetChange) {
	if t == nil {
		return
	}
	t.record(now, Event{Kind: KindBudgetShift, Budget: c})
}

// BudgetCut records a runtime budget mutation on a tree node.
func (t *Tracer) BudgetCut(now time.Time, c BudgetChange) {
	if t == nil {
		return
	}
	t.record(now, Event{Kind: KindBudgetCut, Budget: c})
}

// Heartbeat records one round's batched heartbeat-ingest summary.
func (t *Tracer) Heartbeat(now time.Time, h HeartbeatSummary) {
	if t == nil {
		return
	}
	t.record(now, Event{Kind: KindHeartbeat, Heartbeat: h})
}

// ObserveSlack feeds the LC slack distribution histogram.
func (t *Tracer) ObserveSlack(v float64) {
	if t == nil {
		return
	}
	t.slack.Observe(v)
}

// Span is an in-flight timed phase. The zero Span (from a nil tracer) is
// valid and End on it is a no-op, so callers never branch.
type Span struct {
	t     *Tracer
	name  string
	start time.Time
}

// StartSpan begins timing a phase. On a nil tracer it returns the zero
// Span without reading the clock.
func (t *Tracer) StartSpan(name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, start: time.Now()}
}

// StartFineSpan begins timing a fine-grained (sub-second cadence) phase
// such as the 10 Hz capper tick. On a coarse tracer (a Set child) it
// returns the zero Span without reading the clock, so batch simulations
// skip the per-tick timing cost; live tracers treat it as StartSpan.
func (t *Tracer) StartFineSpan(name string) Span {
	if t == nil || t.coarse {
		return Span{}
	}
	return Span{t: t, name: name, start: time.Now()}
}

// End stops the span, records a span event at the given (simulated or
// controller) time, and feeds the phase-duration histogram.
func (s Span) End(now time.Time) {
	if s.t == nil {
		return
	}
	d := time.Since(s.start)
	s.t.ObserveSpanSeconds(s.name, d.Seconds())
	s.t.record(now, Event{Kind: KindSpan, Span: SpanInfo{Name: s.name, DurNS: int64(d)}})
}

// ObserveSpanSeconds feeds the named phase-duration histogram directly.
// Span.End uses it; tests use it to produce deterministic histograms.
func (t *Tracer) ObserveSpanSeconds(name string, seconds float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	h := t.spanDur[name]
	if h == nil {
		h = NewHistogram(DurationBuckets()...)
		t.spanDur[name] = h
	}
	t.mu.Unlock()
	h.Observe(seconds)
}

// Events returns a copy of the retained events, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, t.n)
	for i := 0; i < t.n; i++ {
		out[i] = t.ring[(t.head+i)%len(t.ring)]
	}
	return out
}

// EventsSince returns up to limit retained events with Seq > since,
// oldest first, plus the cursor to pass as the next since. limit <= 0
// means no limit. This is the /v1/trace pagination primitive: next only
// advances past events actually returned, so a client polling with the
// returned cursor never misses a retained event.
func (t *Tracer) EventsSince(since uint64, limit int) (events []Event, next uint64) {
	if t == nil {
		return nil, since
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	next = since
	for i := 0; i < t.n; i++ {
		ev := t.ring[(t.head+i)%len(t.ring)]
		if ev.Seq <= since {
			continue
		}
		if limit > 0 && len(events) >= limit {
			break
		}
		events = append(events, ev)
		next = ev.Seq
	}
	return events, next
}

// Len returns the number of retained events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Dropped returns how many events were overwritten by ring wraparound.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// SpanDurations snapshots every phase-duration histogram by phase name.
func (t *Tracer) SpanDurations() map[string]HistogramSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	hs := make(map[string]*Histogram, len(t.spanDur))
	for name, h := range t.spanDur {
		hs[name] = h
	}
	t.mu.Unlock()
	out := make(map[string]HistogramSnapshot, len(hs))
	for name, h := range hs {
		out[name] = h.Snapshot()
	}
	return out
}

// SlackDistribution snapshots the LC slack histogram.
func (t *Tracer) SlackDistribution() HistogramSnapshot {
	if t == nil {
		return HistogramSnapshot{}
	}
	return t.slack.Snapshot()
}

// SortEvents orders events by (time, host, sequence) — the canonical
// cluster-timeline order. Per-host order is preserved because sequence
// numbers increase with time within one tracer, so merging the per-host
// rings of a parallel run yields a deterministic timeline.
func SortEvents(events []Event) {
	sort.Slice(events, func(i, j int) bool {
		a, b := &events[i], &events[j]
		if a.TNS != b.TNS {
			return a.TNS < b.TNS
		}
		if a.Host != b.Host {
			return a.Host < b.Host
		}
		return a.Seq < b.Seq
	})
}
