package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
)

// WriteJSONL writes one event per line. includeWall selects the full
// wire form; with includeWall=false the output is the canonical form
// (no wall_ns, no span dur_ns) that is byte-identical across seeded
// runs — the deterministic-replay contract.
func WriteJSONL(w io.Writer, events []Event, includeWall bool) error {
	bw := bufio.NewWriter(w)
	var buf []byte
	for i := range events {
		buf = events[i].appendJSON(buf[:0], includeWall)
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseJSONL reads a JSONL trace back into events. Blank lines are
// skipped; any malformed line is an error carrying its line number.
func ParseJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var events []Event
	line := 0
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var j eventJSON
		if err := json.Unmarshal(text, &j); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		ev, err := j.event()
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return events, nil
}

// UnmarshalJSON implements json.Unmarshaler (used by /v1/trace clients).
func (e *Event) UnmarshalJSON(b []byte) error {
	var j eventJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	ev, err := j.event()
	if err != nil {
		return err
	}
	*e = ev
	return nil
}

var validPaths = map[string]bool{
	PathPlannerHit: true, PathPlannerWarm: true, PathExact: true,
	PathFullMachine: true, PathColdStart: true,
}

var validActions = map[string]bool{
	ActionThrottleFreq: true, ActionThrottleDuty: true,
	ActionRestoreFreq: true, ActionRestoreDuty: true, ActionExhausted: true,
}

// Validate checks a trace against the event schema: per-host sequence
// numbers strictly increase, per-host times never go backwards, and each
// kind's payload is well-formed (known path/action vocabulary, non-empty
// identifiers, sane ranges). It accepts events in any global order —
// merged timelines interleave hosts — and returns the first violation.
func Validate(events []Event) error {
	lastSeq := make(map[string]uint64)
	lastTNS := make(map[string]int64)
	for i := range events {
		ev := &events[i]
		if ev.Seq == 0 {
			return fmt.Errorf("trace: event %d (host %q): zero seq", i, ev.Host)
		}
		if prev, ok := lastSeq[ev.Host]; ok && ev.Seq <= prev {
			return fmt.Errorf("trace: event %d (host %q): seq %d not above %d", i, ev.Host, ev.Seq, prev)
		}
		lastSeq[ev.Host] = ev.Seq
		if prev, ok := lastTNS[ev.Host]; ok && ev.TNS < prev {
			return fmt.Errorf("trace: event %d (host %q): t_ns %d before %d", i, ev.Host, ev.TNS, prev)
		}
		lastTNS[ev.Host] = ev.TNS
		if err := validatePayload(ev); err != nil {
			return fmt.Errorf("trace: event %d (host %q, seq %d): %w", i, ev.Host, ev.Seq, err)
		}
	}
	return nil
}

func validatePayload(ev *Event) error {
	switch ev.Kind {
	case KindControl:
		c := &ev.Control
		if !validPaths[c.Path] {
			return fmt.Errorf("control: unknown path %q", c.Path)
		}
		if c.Tick <= 0 {
			return fmt.Errorf("control: tick %d not positive", c.Tick)
		}
		if c.Cores < 0 || c.Ways < 0 {
			return fmt.Errorf("control: negative allocation %d cores / %d ways", c.Cores, c.Ways)
		}
		if c.FreqGHz < 0 {
			return fmt.Errorf("control: negative frequency %g", c.FreqGHz)
		}
	case KindCap:
		c := &ev.Cap
		if !validActions[c.Action] {
			return fmt.Errorf("cap: unknown action %q", c.Action)
		}
		if c.CapW <= 0 {
			return fmt.Errorf("cap: cap %g W not positive", c.CapW)
		}
		if c.BEDuty < 0 || c.BEDuty > 1 {
			return fmt.Errorf("cap: duty %g outside [0,1]", c.BEDuty)
		}
	case KindPlacement:
		if ev.Place.BE == "" || ev.Place.Node == "" {
			return fmt.Errorf("placement: empty be %q or node %q", ev.Place.BE, ev.Place.Node)
		}
	case KindMigration:
		p := &ev.Place
		if p.BE == "" || p.Node == "" || p.From == "" {
			return fmt.Errorf("migration: empty be %q, node %q, or from %q", p.BE, p.Node, p.From)
		}
		if p.From == p.Node {
			return fmt.Errorf("migration: %q moved to itself (%q)", p.BE, p.Node)
		}
	case KindDegradation:
		if ev.Place.Reason == "" {
			return fmt.Errorf("degradation: empty reason")
		}
	case KindSolve:
		s := &ev.Solve
		if s.Method == "" {
			return fmt.Errorf("solve: empty method")
		}
		if s.Rows <= 0 || s.Cols <= 0 {
			return fmt.Errorf("solve: non-positive dimensions %dx%d", s.Rows, s.Cols)
		}
		if s.CellsComputed < 0 || s.CellsReused < 0 {
			return fmt.Errorf("solve: negative cell counters %d/%d", s.CellsComputed, s.CellsReused)
		}
		if s.BatchDirty < 0 || s.BatchRounds < 0 || s.BatchAugments < 0 {
			return fmt.Errorf("solve: negative batch counters %d/%d/%d",
				s.BatchDirty, s.BatchRounds, s.BatchAugments)
		}
	case KindSpan:
		if ev.Span.Name == "" {
			return fmt.Errorf("span: empty name")
		}
		if ev.Span.DurNS < 0 {
			return fmt.Errorf("span: negative duration %d ns", ev.Span.DurNS)
		}
	case KindBudgetShift, KindBudgetCut:
		c := &ev.Budget
		if c.Node == "" {
			return fmt.Errorf("budget: empty node")
		}
		for _, v := range []struct {
			name string
			val  float64
		}{{"from_w", c.FromW}, {"to_w", c.ToW}} {
			if math.IsNaN(v.val) || math.IsInf(v.val, 0) || v.val < 0 {
				return fmt.Errorf("budget: %s %g outside physical domain", v.name, v.val)
			}
		}
		if c.ToW <= 0 {
			return fmt.Errorf("budget: to_w %g not positive", c.ToW)
		}
	case KindHeartbeat:
		h := &ev.Heartbeat
		for _, v := range []struct {
			name string
			val  int64
		}{
			{"frames", int64(h.Frames)}, {"fulls", int64(h.Fulls)},
			{"deltas", int64(h.Deltas)}, {"stale", int64(h.Stale)},
			{"resyncs", int64(h.Resyncs)}, {"rejects", int64(h.Rejects)},
			{"bytes", h.Bytes},
		} {
			if v.val < 0 {
				return fmt.Errorf("heartbeat: negative %s %d", v.name, v.val)
			}
		}
		if h.Fulls+h.Deltas+h.Stale > h.Frames {
			return fmt.Errorf("heartbeat: %d fulls + %d deltas + %d stale exceed %d frames",
				h.Fulls, h.Deltas, h.Stale, h.Frames)
		}
	default:
		return fmt.Errorf("unknown kind %d", ev.Kind)
	}
	return nil
}

// WriteChromeTrace writes the events as a Chrome trace-event JSON array
// loadable in Perfetto or chrome://tracing. Each host becomes one thread
// track (a thread_name metadata record plus its events); spans become
// "X" complete events, everything else an "i" instant whose payload
// rides in args. Timestamps are microseconds of (simulated or
// controller) time; events are emitted in canonical sorted order so ts
// is monotone per track.
func WriteChromeTrace(w io.Writer, events []Event) error {
	sorted := append([]Event(nil), events...)
	SortEvents(sorted)

	tids := make(map[string]int)
	var hosts []string
	for i := range sorted {
		if _, ok := tids[sorted[i].Host]; !ok {
			tids[sorted[i].Host] = 0
			hosts = append(hosts, sorted[i].Host)
		}
	}
	// Track IDs follow first-appearance order in the sorted timeline,
	// which is itself deterministic.
	for i, h := range hosts {
		tids[h] = i + 1
	}

	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	first := true
	emit := func(obj map[string]any) error {
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		b, err := json.Marshal(obj)
		if err != nil {
			return err
		}
		_, err = bw.Write(b)
		return err
	}

	for _, h := range hosts {
		name := h
		if name == "" {
			name = "(unnamed)"
		}
		if err := emit(map[string]any{
			"name": "thread_name", "ph": "M", "pid": 1, "tid": tids[h],
			"args": map[string]any{"name": name},
		}); err != nil {
			return err
		}
	}
	for i := range sorted {
		ev := &sorted[i]
		ts := float64(ev.TNS) / 1e3 // ns → µs
		base := map[string]any{
			"pid": 1, "tid": tids[ev.Host], "ts": ts,
			"cat": ev.Kind.String(),
		}
		if ev.Kind == KindSpan {
			base["ph"] = "X"
			base["name"] = ev.Span.Name
			base["dur"] = float64(ev.Span.DurNS) / 1e3
		} else {
			base["ph"] = "i"
			base["s"] = "t"
			base["name"] = chromeEventName(ev)
			base["args"] = chromeArgs(ev)
		}
		if err := emit(base); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]\n"); err != nil {
		return err
	}
	return bw.Flush()
}

func chromeEventName(ev *Event) string {
	switch ev.Kind {
	case KindControl:
		return "control " + ev.Control.Path
	case KindCap:
		return "cap " + ev.Cap.Action
	case KindPlacement:
		return "place " + ev.Place.BE
	case KindMigration:
		return "migrate " + ev.Place.BE
	case KindDegradation:
		return "degraded"
	case KindSolve:
		return "solve " + ev.Solve.Method
	case KindBudgetShift:
		return "budget-shift " + ev.Budget.Node
	case KindBudgetCut:
		return "budget-cut " + ev.Budget.Node
	case KindHeartbeat:
		return "heartbeat ingest"
	}
	return ev.Kind.String()
}

func chromeArgs(ev *Event) map[string]any {
	switch ev.Kind {
	case KindControl:
		c := &ev.Control
		return map[string]any{
			"tick": c.Tick, "load": c.Load, "target": c.Target,
			"slack_in": c.SlackIn, "boost": c.Boost, "cores": c.Cores,
			"ways": c.Ways, "freq_ghz": c.FreqGHz, "path": c.Path,
			"feasible": c.Feasible,
		}
	case KindCap:
		c := &ev.Cap
		return map[string]any{
			"power_w": c.PowerW, "cap_w": c.CapW, "action": c.Action,
			"be_freq_ghz": c.BEFreqGHz, "be_duty": c.BEDuty,
		}
	case KindPlacement, KindMigration, KindDegradation:
		p := &ev.Place
		return map[string]any{"be": p.BE, "node": p.Node, "from": p.From, "reason": p.Reason}
	case KindSolve:
		s := &ev.Solve
		args := map[string]any{"method": s.Method, "rows": s.Rows, "cols": s.Cols, "total": s.Total}
		if s.Pod != "" {
			args["pod"] = s.Pod
		}
		if s.CellsComputed != 0 || s.CellsReused != 0 {
			args["cells_computed"] = s.CellsComputed
			args["cells_reused"] = s.CellsReused
		}
		if s.BatchDirty != 0 || s.BatchRounds != 0 || s.BatchAugments != 0 {
			args["batch_dirty"] = s.BatchDirty
			args["batch_rounds"] = s.BatchRounds
			args["batch_augments"] = s.BatchAugments
		}
		return args
	case KindBudgetShift, KindBudgetCut:
		c := &ev.Budget
		return map[string]any{"node": c.Node, "from_w": c.FromW, "to_w": c.ToW, "reason": c.Reason}
	case KindHeartbeat:
		h := &ev.Heartbeat
		return map[string]any{
			"frames": h.Frames, "fulls": h.Fulls, "deltas": h.Deltas,
			"stale": h.Stale, "resyncs": h.Resyncs, "rejects": h.Rejects,
			"bytes": h.Bytes,
		}
	}
	return nil
}

// chromeEvent is the subset of the trace-event schema the validator
// checks.
type chromeEvent struct {
	Name string   `json:"name"`
	Ph   string   `json:"ph"`
	TS   *float64 `json:"ts"`
	Dur  float64  `json:"dur"`
	PID  *int     `json:"pid"`
	TID  *int     `json:"tid"`
}

// ValidateChromeTrace smoke-loads a Chrome trace export: the payload
// must be a well-formed JSON array whose records each carry a name and a
// known phase, non-span records carry pid/tid/ts, and ts is monotone
// (non-decreasing) per (pid, tid) track — the properties Perfetto's
// importer relies on.
func ValidateChromeTrace(r io.Reader) error {
	var records []chromeEvent
	dec := json.NewDecoder(r)
	if err := dec.Decode(&records); err != nil {
		return fmt.Errorf("trace: chrome export is not a JSON array: %w", err)
	}
	lastTS := make(map[string]float64)
	for i, rec := range records {
		if rec.Name == "" {
			return fmt.Errorf("trace: chrome record %d: empty name", i)
		}
		switch rec.Ph {
		case "M":
			continue // metadata carries no timestamp
		case "X", "i", "I", "B", "E", "b", "e", "n", "C":
		default:
			return fmt.Errorf("trace: chrome record %d (%q): unknown phase %q", i, rec.Name, rec.Ph)
		}
		if rec.TS == nil || rec.PID == nil || rec.TID == nil {
			return fmt.Errorf("trace: chrome record %d (%q): missing ts/pid/tid", i, rec.Name)
		}
		if *rec.TS < 0 || rec.Dur < 0 {
			return fmt.Errorf("trace: chrome record %d (%q): negative ts or dur", i, rec.Name)
		}
		track := strconv.Itoa(*rec.PID) + "/" + strconv.Itoa(*rec.TID)
		if prev, ok := lastTS[track]; ok && *rec.TS < prev {
			return fmt.Errorf("trace: chrome record %d (%q): ts %g before %g on track %s",
				i, rec.Name, *rec.TS, prev, track)
		}
		lastTS[track] = *rec.TS
	}
	return nil
}
