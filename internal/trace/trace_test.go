package trace

import (
	"reflect"
	"sync"
	"testing"
	"time"
)

func at(sec int64) time.Time { return time.Unix(sec, 0).UTC() }

func sampleControl(tick int) ControlDecision {
	return ControlDecision{
		Tick: tick, Load: 0.42, Target: 0.48, SlackIn: 0.11, Boost: 1,
		Cores: 4, Ways: 6, FreqGHz: 2.2, Path: PathPlannerWarm, Feasible: true,
	}
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	sp := tr.StartSpan("control_tick")
	tr.ControlDecision(at(1), sampleControl(1))
	tr.CapAction(at(1), CapAction{CapW: 100, Action: ActionThrottleFreq})
	tr.Placement(at(1), Placement{BE: "x264", Node: "a"})
	tr.Migration(at(1), Placement{BE: "x264", Node: "b", From: "a"})
	tr.Degradation(at(1), "all agents dead")
	tr.SolveSummary(at(1), SolveSummary{Method: "lp", Rows: 2, Cols: 2})
	tr.ObserveSlack(0.1)
	tr.ObserveSpanSeconds("x", 0.001)
	sp.End(at(1))
	if tr.Events() != nil || tr.Len() != 0 || tr.Dropped() != 0 || tr.Host() != "" {
		t.Fatal("nil tracer leaked state")
	}
	if ev, next := tr.EventsSince(0, 10); ev != nil || next != 0 {
		t.Fatal("nil tracer EventsSince not empty")
	}
	if tr.SpanDurations() != nil || tr.SlackDistribution().Count != 0 {
		t.Fatal("nil tracer histograms not empty")
	}
}

func TestDisabledPathZeroAllocs(t *testing.T) {
	var tr *Tracer
	now := at(5)
	allocs := testing.AllocsPerRun(200, func() {
		sp := tr.StartSpan("control_tick")
		tr.ObserveSlack(0.12)
		tr.ControlDecision(now, sampleControl(1))
		tr.CapAction(now, CapAction{PowerW: 120, CapW: 100, Action: ActionThrottleDuty})
		sp.End(now)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer path allocated %.1f/op, want 0", allocs)
	}
}

func TestRingWraparound(t *testing.T) {
	tr := New("h", 4)
	for i := 1; i <= 10; i++ {
		tr.ControlDecision(at(int64(i)), sampleControl(i))
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", tr.Dropped())
	}
	events := tr.Events()
	if len(events) != 4 {
		t.Fatalf("Events len = %d, want 4", len(events))
	}
	for i, ev := range events {
		wantTick := i + 7 // ticks 7..10 survive
		if ev.Control.Tick != wantTick || ev.Seq != uint64(wantTick) {
			t.Fatalf("event %d: tick %d seq %d, want tick=seq=%d", i, ev.Control.Tick, ev.Seq, wantTick)
		}
		if ev.Host != "h" || ev.Kind != KindControl {
			t.Fatalf("event %d: host %q kind %v", i, ev.Host, ev.Kind)
		}
		if ev.TNS != at(int64(wantTick)).UnixNano() {
			t.Fatalf("event %d: t_ns %d", i, ev.TNS)
		}
	}
}

func TestEventsSincePagination(t *testing.T) {
	tr := New("h", 16)
	for i := 1; i <= 9; i++ {
		tr.ControlDecision(at(int64(i)), sampleControl(i))
	}
	var got []Event
	cursor := uint64(0)
	pages := 0
	for {
		events, next := tr.EventsSince(cursor, 4)
		if len(events) == 0 {
			if next != cursor {
				t.Fatalf("empty page moved cursor %d -> %d", cursor, next)
			}
			break
		}
		got = append(got, events...)
		cursor = next
		pages++
	}
	if pages != 3 || len(got) != 9 {
		t.Fatalf("pages=%d events=%d, want 3 pages / 9 events", pages, len(got))
	}
	for i, ev := range got {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("page event %d has seq %d", i, ev.Seq)
		}
	}
	// After wraparound the cursor skips dropped events without stalling.
	small := New("s", 2)
	for i := 1; i <= 5; i++ {
		small.ControlDecision(at(int64(i)), sampleControl(i))
	}
	events, next := small.EventsSince(1, 0)
	if len(events) != 2 || events[0].Seq != 4 || next != 5 {
		t.Fatalf("post-wrap page = %d events, first seq %d, next %d", len(events), events[0].Seq, next)
	}
}

func TestSpanRecordsEventAndHistogram(t *testing.T) {
	tr := New("h", 8)
	sp := tr.StartSpan("control_tick")
	time.Sleep(time.Millisecond)
	sp.End(at(3))
	events := tr.Events()
	if len(events) != 1 || events[0].Kind != KindSpan {
		t.Fatalf("events = %+v", events)
	}
	if events[0].Span.Name != "control_tick" || events[0].Span.DurNS <= 0 {
		t.Fatalf("span payload = %+v", events[0].Span)
	}
	hists := tr.SpanDurations()
	h, ok := hists["control_tick"]
	if !ok || h.Count != 1 || h.Sum <= 0 {
		t.Fatalf("span histogram = %+v", hists)
	}
}

func TestHistogramBucketsAndMerge(t *testing.T) {
	h := NewHistogram(1, 2, 4)
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if want := []uint64{2, 1, 1, 1}; !reflect.DeepEqual(s.Counts, want) {
		t.Fatalf("counts = %v, want %v", s.Counts, want)
	}
	if s.Count != 5 || s.Sum != 106 {
		t.Fatalf("count=%d sum=%g", s.Count, s.Sum)
	}
	if want := []uint64{2, 3, 4, 5}; !reflect.DeepEqual(s.Cumulative(), want) {
		t.Fatalf("cumulative = %v, want %v", s.Cumulative(), want)
	}
	merged, ok := s.Merge(s)
	if !ok || merged.Count != 10 || merged.Counts[0] != 4 {
		t.Fatalf("merge = %+v ok=%v", merged, ok)
	}
	if _, ok := s.Merge(NewHistogram(1, 2).Snapshot()); !ok {
		t.Fatal("merging an empty snapshot should succeed")
	}
	other := NewHistogram(1, 3, 9)
	other.Observe(2)
	if _, ok := s.Merge(other.Snapshot()); ok {
		t.Fatal("merge across mismatched bounds should fail")
	}
	var nilH *Histogram
	nilH.Observe(1) // must not panic
	if nilH.Snapshot().Count != 0 {
		t.Fatal("nil histogram snapshot not empty")
	}
}

func TestSetMergesDeterministically(t *testing.T) {
	build := func() *Set {
		s := NewSet(32)
		// Interleave appends across children from multiple goroutines;
		// per-child order is what matters.
		var wg sync.WaitGroup
		for _, host := range []string{"b", "a", "c"} {
			wg.Add(1)
			go func(host string) {
				defer wg.Done()
				tr := s.Tracer(host)
				for i := 1; i <= 5; i++ {
					tr.ControlDecision(at(int64(i)), sampleControl(i))
					tr.ObserveSlack(0.1 * float64(i))
					tr.ObserveSpanSeconds("control_tick", 1e-5)
				}
			}(host)
		}
		wg.Wait()
		return s
	}
	a, b := build().Events(), build().Events()
	if !reflect.DeepEqual(stripWall(a), stripWall(b)) {
		t.Fatal("merged set timelines differ across identical runs")
	}
	if len(a) != 15 {
		t.Fatalf("merged %d events, want 15", len(a))
	}
	// Sorted by (t, host, seq): first three events are t=1 on a, b, c.
	if a[0].Host != "a" || a[1].Host != "b" || a[2].Host != "c" {
		t.Fatalf("merge order: %q %q %q", a[0].Host, a[1].Host, a[2].Host)
	}
	s := build()
	if s.SlackDistribution().Count != 15 {
		t.Fatalf("merged slack count = %d", s.SlackDistribution().Count)
	}
	if s.SpanDurations()["control_tick"].Count != 15 {
		t.Fatalf("merged span count = %d", s.SpanDurations()["control_tick"].Count)
	}
	if s.Dropped() != 0 {
		t.Fatalf("dropped = %d", s.Dropped())
	}
	var nilSet *Set
	if nilSet.Tracer("x") != nil || nilSet.Events() != nil || nilSet.Dropped() != 0 {
		t.Fatal("nil set leaked state")
	}
}

func stripWall(events []Event) []Event {
	out := append([]Event(nil), events...)
	for i := range out {
		out[i].WallNS = 0
		if out[i].Kind == KindSpan {
			out[i].Span.DurNS = 0
		}
	}
	return out
}

func TestConcurrentRecordAndRead(t *testing.T) {
	tr := New("h", 64)
	var writers sync.WaitGroup
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 1; i <= 200; i++ {
				sp := tr.StartSpan("cap_tick")
				tr.CapAction(at(int64(i)), CapAction{PowerW: 100, CapW: 90, Action: ActionThrottleFreq, BEDuty: 1})
				sp.End(at(int64(i)))
				tr.ObserveSlack(float64(g))
			}
		}(g)
	}
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			tr.Events()
			tr.EventsSince(0, 8)
			tr.SpanDurations()
			tr.SlackDistribution()
		}
	}()
	writers.Wait()
	close(stop)
	<-readerDone
	if got := tr.SlackDistribution().Count; got != 800 {
		t.Fatalf("slack observations = %d, want 800", got)
	}
	if tr.Len() != 64 {
		t.Fatalf("ring length = %d, want 64", tr.Len())
	}
}

// TestEventsSinceAcrossGrowthAndWrap paginates with a held cursor while
// the ring doubles underneath (growth between pages) and then wraps
// (eviction overtakes the cursor). The pagination contract: no event is
// returned twice, sequences stay strictly ascending, and every event
// still retained when its page is fetched is returned exactly once.
func TestEventsSinceAcrossGrowthAndWrap(t *testing.T) {
	tr := New("h", 256) // ringSeed=64, so the ring doubles at 64 and 128
	total := 0
	record := func(n int) {
		for i := 0; i < n; i++ {
			total++
			tr.ControlDecision(at(int64(total)), sampleControl(total))
		}
	}

	// Page while the ring grows: fetch a page, then record enough events
	// to force a doubling (and finally a wrap) before the next fetch.
	record(60)
	var got []Event
	cursor := uint64(0)
	for _, burst := range []int{30, 70, 104} { // ring: 64 -> 128 -> 256 -> wraps
		events, next := tr.EventsSince(cursor, 25)
		got = append(got, events...)
		cursor = next
		record(burst)
	}
	// Drain whatever is left.
	for {
		events, next := tr.EventsSince(cursor, 25)
		if len(events) == 0 {
			if next != cursor {
				t.Fatalf("empty page moved cursor %d -> %d", cursor, next)
			}
			break
		}
		got = append(got, events...)
		cursor = next
	}
	for i := 1; i < len(got); i++ {
		if got[i].Seq <= got[i-1].Seq {
			t.Fatalf("page events out of order or duplicated: seq %d after %d", got[i].Seq, got[i-1].Seq)
		}
	}
	if cursor != tr.lastSeq() {
		t.Fatalf("drained cursor %d != last seq %d", cursor, tr.lastSeq())
	}

	// Page across a wraparound: a small ring wraps while a stale cursor is
	// held. The next page must resume at the oldest retained event with no
	// duplicates and no stall.
	small := New("s", 4)
	record2 := func(n int) {
		for i := 0; i < n; i++ {
			small.ControlDecision(at(int64(i)), sampleControl(i))
		}
	}
	record2(3)
	events, next := small.EventsSince(0, 2)
	if len(events) != 2 || next != 2 {
		t.Fatalf("pre-wrap page = %d events, next %d", len(events), next)
	}
	record2(9) // seqs 4..12; ring keeps 9..12, cursor 2 is far behind
	events, next = small.EventsSince(next, 0)
	if len(events) != 4 || events[0].Seq != 9 || next != 12 {
		t.Fatalf("post-wrap page = %d events, first seq %d, next %d",
			len(events), events[0].Seq, next)
	}
	if small.Dropped() != 8 {
		t.Fatalf("dropped = %d, want 8", small.Dropped())
	}
}

// lastSeq exposes the newest assigned sequence number for test
// assertions.
func (t *Tracer) lastSeq() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// TestSetChildrenGrowthRace hammers a Set with parallel per-host writers
// whose rings are forced through every geometric doubling (capacity far
// above ringSeed) while concurrent readers page, merge, and snapshot.
// Run under -race this is the regression net for the ring-growth
// reallocation path: a torn ring swap shows up as a data race or as a
// merged timeline with missing or duplicated sequences.
func TestSetChildrenGrowthRace(t *testing.T) {
	const hosts, perHost = 8, 600 // 600 > 64*2*2*2: three doublings per child
	set := NewSet(1024)
	var writers sync.WaitGroup
	for h := 0; h < hosts; h++ {
		writers.Add(1)
		go func(h int) {
			defer writers.Done()
			tr := set.Tracer(hostName(h))
			for i := 1; i <= perHost; i++ {
				tr.ControlDecision(at(int64(i)), sampleControl(i))
			}
		}(h)
	}
	stop := make(chan struct{})
	readers := make(chan struct{})
	go func() {
		defer close(readers)
		cursors := make(map[string]uint64, hosts)
		for {
			select {
			case <-stop:
				return
			default:
			}
			set.Events()
			set.Dropped()
			for h := 0; h < hosts; h++ {
				tr := set.Tracer(hostName(h))
				events, next := tr.EventsSince(cursors[hostName(h)], 64)
				for i := 1; i < len(events); i++ {
					if events[i].Seq <= events[i-1].Seq {
						t.Errorf("host %d page out of order: seq %d after %d", h, events[i].Seq, events[i-1].Seq)
						return
					}
				}
				cursors[hostName(h)] = next
			}
		}
	}()
	writers.Wait()
	close(stop)
	<-readers

	for h := 0; h < hosts; h++ {
		tr := set.Tracer(hostName(h))
		if tr.Len() != perHost {
			t.Fatalf("host %d retained %d events, want %d", h, tr.Len(), perHost)
		}
		events := tr.Events()
		for i, ev := range events {
			if ev.Seq != uint64(i+1) {
				t.Fatalf("host %d event %d has seq %d", h, i, ev.Seq)
			}
		}
	}
	if merged := set.Events(); len(merged) != hosts*perHost {
		t.Fatalf("merged timeline has %d events, want %d", len(merged), hosts*perHost)
	}
}

func hostName(h int) string { return "host-" + string(rune('a'+h)) }
