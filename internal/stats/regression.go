package stats

import (
	"errors"
	"fmt"
	"math"
)

// Regression holds the result of an ordinary least squares fit
// y ≈ β₀ + β₁·x₁ + … + β_k·x_k.
type Regression struct {
	// Coef holds the fitted coefficients; Coef[0] is the intercept β₀ and
	// Coef[j] (j ≥ 1) is the slope for predictor j-1.
	Coef []float64
	// RSquared is the coefficient of determination of the fit on the
	// training samples (1 = perfect fit).
	RSquared float64
	// N is the number of samples used.
	N int
}

// Intercept returns β₀.
func (r Regression) Intercept() float64 { return r.Coef[0] }

// Slope returns the coefficient for predictor j (0-based, excluding the
// intercept).
func (r Regression) Slope(j int) float64 { return r.Coef[j+1] }

// Predict evaluates the fitted linear model at x (length = number of
// predictors).
func (r Regression) Predict(x []float64) float64 {
	y := r.Coef[0]
	for j, xj := range x {
		y += r.Coef[j+1] * xj
	}
	return y
}

// OLS fits y ≈ β₀ + Σ βⱼ·xⱼ by ordinary least squares using the normal
// equations. xs[i] is the predictor vector for sample i; all rows must have
// the same length. It requires at least len(xs[0])+1 samples.
func OLS(xs [][]float64, ys []float64) (Regression, error) {
	n := len(xs)
	if n == 0 {
		return Regression{}, ErrEmpty
	}
	if len(ys) != n {
		return Regression{}, errors.New("stats: xs and ys length mismatch")
	}
	k := len(xs[0])
	if n < k+1 {
		return Regression{}, fmt.Errorf("stats: need at least %d samples for %d predictors, got %d", k+1, k, n)
	}
	// Design matrix with a leading 1s column for the intercept.
	design := make([][]float64, n)
	for i, row := range xs {
		if len(row) != k {
			return Regression{}, errors.New("stats: ragged predictor rows")
		}
		d := make([]float64, k+1)
		d[0] = 1
		copy(d[1:], row)
		design[i] = d
	}
	xtx := MatTMat(design)
	xty := MatTVec(design, ys)
	coef, err := SolveLinear(xtx, xty)
	if err != nil {
		return Regression{}, fmt.Errorf("stats: OLS normal equations: %w", err)
	}
	reg := Regression{Coef: coef, N: n}
	reg.RSquared = rSquared(design, ys, coef)
	return reg, nil
}

// OLSNoIntercept fits y ≈ Σ βⱼ·xⱼ (regression through the origin). The
// returned Regression still stores a Coef[0] intercept slot, fixed at 0, so
// Predict and Slope behave uniformly.
func OLSNoIntercept(xs [][]float64, ys []float64) (Regression, error) {
	n := len(xs)
	if n == 0 {
		return Regression{}, ErrEmpty
	}
	if len(ys) != n {
		return Regression{}, errors.New("stats: xs and ys length mismatch")
	}
	k := len(xs[0])
	if n < k {
		return Regression{}, fmt.Errorf("stats: need at least %d samples for %d predictors, got %d", k, k, n)
	}
	for _, row := range xs {
		if len(row) != k {
			return Regression{}, errors.New("stats: ragged predictor rows")
		}
	}
	xtx := MatTMat(xs)
	xty := MatTVec(xs, ys)
	slopes, err := SolveLinear(xtx, xty)
	if err != nil {
		return Regression{}, fmt.Errorf("stats: OLS normal equations: %w", err)
	}
	coef := make([]float64, k+1)
	copy(coef[1:], slopes)
	design := make([][]float64, n)
	for i, row := range xs {
		d := make([]float64, k+1)
		d[0] = 1 // multiplied by the zero intercept; harmless
		copy(d[1:], row)
		design[i] = d
	}
	reg := Regression{Coef: coef, N: n}
	reg.RSquared = rSquared(design, ys, coef)
	return reg, nil
}

// rSquared computes 1 − SS_res/SS_tot for the model coef on the design
// matrix (which includes the intercept column).
func rSquared(design [][]float64, ys []float64, coef []float64) float64 {
	mean := Mean(ys)
	ssTot, ssRes := 0.0, 0.0
	for i, row := range design {
		pred := 0.0
		for j, c := range coef {
			pred += c * row[j]
		}
		d := ys[i] - mean
		e := ys[i] - pred
		ssTot += d * d
		ssRes += e * e
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	r2 := 1 - ssRes/ssTot
	if math.IsNaN(r2) {
		return 0
	}
	return r2
}
