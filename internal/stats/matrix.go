package stats

import (
	"errors"
	"math"
)

// ErrSingular is returned when a linear system has no unique solution.
var ErrSingular = errors.New("stats: singular matrix")

// SolveLinear solves the square linear system A·x = b using Gaussian
// elimination with partial pivoting. A is given in row-major order and is
// not modified. The dimension is inferred from len(b).
func SolveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(b)
	if n == 0 {
		return nil, ErrEmpty
	}
	if len(a) != n {
		return nil, errors.New("stats: dimension mismatch")
	}
	// Build an augmented working copy.
	m := make([][]float64, n)
	for i := range m {
		if len(a[i]) != n {
			return nil, errors.New("stats: matrix is not square")
		}
		m[i] = make([]float64, n+1)
		copy(m[i], a[i])
		m[i][n] = b[i]
	}
	for col := 0; col < n; col++ {
		// Partial pivot: pick the row with the largest magnitude in col.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-12 {
			return nil, ErrSingular
		}
		m[col], m[pivot] = m[pivot], m[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			f := m[r][col] / m[col][col]
			if f == 0 {
				continue
			}
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := m[i][n]
		for c := i + 1; c < n; c++ {
			sum -= m[i][c] * x[c]
		}
		x[i] = sum / m[i][i]
	}
	return x, nil
}

// MatTVec computes Aᵀ·v for a row-major matrix A (rows×cols) and a vector v
// of length rows; the result has length cols.
func MatTVec(a [][]float64, v []float64) []float64 {
	if len(a) == 0 {
		return nil
	}
	cols := len(a[0])
	out := make([]float64, cols)
	for i, row := range a {
		for j, x := range row {
			out[j] += x * v[i]
		}
	}
	return out
}

// MatTMat computes Aᵀ·A for a row-major matrix A (rows×cols); the result is
// cols×cols.
func MatTMat(a [][]float64) [][]float64 {
	if len(a) == 0 {
		return nil
	}
	cols := len(a[0])
	out := make([][]float64, cols)
	for i := range out {
		out[i] = make([]float64, cols)
	}
	for _, row := range a {
		for i := 0; i < cols; i++ {
			ri := row[i]
			if ri == 0 {
				continue
			}
			for j := 0; j < cols; j++ {
				out[i][j] += ri * row[j]
			}
		}
	}
	return out
}
