// Package stats provides the small numerical substrate Pocolo depends on:
// descriptive statistics, percentile extraction, and ordinary least squares
// multiple regression (used to fit the Cobb-Douglas indirect utility model
// after the log transformation described in Section IV-A of the paper).
//
// Everything is implemented from scratch on top of the standard library so
// the module builds offline.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that require at least one sample.
var ErrEmpty = errors.New("stats: empty sample set")

// Mean returns the arithmetic mean of xs. It returns 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs (division by n, not n-1).
// It returns 0 for slices with fewer than two elements.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the smallest element of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. The input slice is not modified.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of range [0,100]")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Summary holds descriptive statistics for a sample set.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	P50    float64
	P95    float64
	P99    float64
}

// Summarize computes a Summary for xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	p50, _ := Percentile(xs, 50)
	p95, _ := Percentile(xs, 95)
	p99, _ := Percentile(xs, 99)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		Max:    Max(xs),
		P50:    p50,
		P95:    p95,
		P99:    p99,
	}, nil
}

// Clamp limits v to the closed interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
