package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := Variance([]float64{3}); got != 0 {
		t.Errorf("Variance of singleton = %v, want 0", got)
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if got := Min(xs); got != -1 {
		t.Errorf("Min = %v", got)
	}
	if got := Max(xs); got != 7 {
		t.Errorf("Max = %v", got)
	}
	if got := Sum(xs); got != 11 {
		t.Errorf("Sum = %v", got)
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("Min/Max of empty slice should be ±Inf")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	for _, c := range []struct {
		p    float64
		want float64
	}{
		{0, 15},
		{100, 50},
		{50, 35},
		{25, 20},
	} {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatalf("Percentile(%v): %v", c.p, err)
		}
		if !almostEqual(got, c.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if _, err := Percentile(nil, 50); err == nil {
		t.Error("expected error for empty input")
	}
	if _, err := Percentile(xs, 120); err == nil {
		t.Error("expected error for out-of-range percentile")
	}
	// Percentile must not mutate its input.
	orig := []float64{9, 1, 5}
	if _, err := Percentile(orig, 50); err != nil {
		t.Fatal(err)
	}
	if orig[0] != 9 || orig[1] != 1 || orig[2] != 5 {
		t.Errorf("Percentile mutated input: %v", orig)
	}
}

func TestPercentileMonotonic(t *testing.T) {
	// Property: percentile is monotonically non-decreasing in p.
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			v, err := Percentile(xs, p)
			if err != nil || v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	s, err := Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 10 || !almostEqual(s.Mean, 5.5, 1e-12) || s.Min != 1 || s.Max != 10 {
		t.Errorf("unexpected summary %+v", s)
	}
	if s.P50 < s.Min || s.P99 > s.Max || s.P50 > s.P95 || s.P95 > s.P99 {
		t.Errorf("percentiles out of order: %+v", s)
	}
	if _, err := Summarize(nil); err == nil {
		t.Error("expected error for empty input")
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(5, 0, 3); got != 3 {
		t.Errorf("Clamp high = %v", got)
	}
	if got := Clamp(-2, 0, 3); got != 0 {
		t.Errorf("Clamp low = %v", got)
	}
	if got := Clamp(1.5, 0, 3); got != 1.5 {
		t.Errorf("Clamp mid = %v", got)
	}
}

func TestSolveLinearKnownSystem(t *testing.T) {
	a := [][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	}
	b := []float64{8, -11, -3}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if !almostEqual(x[i], want[i], 1e-9) {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := [][]float64{
		{1, 2},
		{2, 4},
	}
	if _, err := SolveLinear(a, []float64{1, 2}); err == nil {
		t.Error("expected singular matrix error")
	}
}

func TestSolveLinearDimensionErrors(t *testing.T) {
	if _, err := SolveLinear(nil, nil); err == nil {
		t.Error("expected error for empty system")
	}
	if _, err := SolveLinear([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("expected dimension mismatch error")
	}
	if _, err := SolveLinear([][]float64{{1, 2}, {3, 4, 5}}, []float64{1, 2}); err == nil {
		t.Error("expected non-square error")
	}
}

func TestSolveLinearRandomRoundTrip(t *testing.T) {
	// Property: for a random well-conditioned A and x, solving A·(A·x) = b
	// recovers x.
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 50; iter++ {
		n := 1 + rng.Intn(6)
		a := make([][]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = rng.Float64()*4 - 2
			}
			a[i][i] += float64(n) + 1 // diagonal dominance => well-conditioned
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.Float64()*10 - 5
		}
		b := make([]float64, n)
		for i := range b {
			for j := range x {
				b[i] += a[i][j] * x[j]
			}
		}
		got, err := SolveLinear(a, b)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		for i := range x {
			if !almostEqual(got[i], x[i], 1e-6) {
				t.Fatalf("iter %d: x[%d] = %v, want %v", iter, i, got[i], x[i])
			}
		}
	}
}

func TestOLSRecoversExactLinearModel(t *testing.T) {
	// y = 3 + 2x1 - 0.5x2 with no noise must be recovered exactly.
	rng := rand.New(rand.NewSource(42))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 40; i++ {
		x1 := rng.Float64() * 10
		x2 := rng.Float64() * 5
		xs = append(xs, []float64{x1, x2})
		ys = append(ys, 3+2*x1-0.5*x2)
	}
	reg, err := OLS(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(reg.Intercept(), 3, 1e-8) {
		t.Errorf("intercept = %v, want 3", reg.Intercept())
	}
	if !almostEqual(reg.Slope(0), 2, 1e-8) {
		t.Errorf("slope0 = %v, want 2", reg.Slope(0))
	}
	if !almostEqual(reg.Slope(1), -0.5, 1e-8) {
		t.Errorf("slope1 = %v, want -0.5", reg.Slope(1))
	}
	if !almostEqual(reg.RSquared, 1, 1e-9) {
		t.Errorf("R² = %v, want 1", reg.RSquared)
	}
}

func TestOLSWithNoiseHasReasonableR2(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 200; i++ {
		x := rng.Float64() * 10
		xs = append(xs, []float64{x})
		ys = append(ys, 1+4*x+rng.NormFloat64()*0.5)
	}
	reg, err := OLS(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if reg.RSquared < 0.95 {
		t.Errorf("R² = %v, expected > 0.95 for low-noise data", reg.RSquared)
	}
	if !almostEqual(reg.Slope(0), 4, 0.1) {
		t.Errorf("slope = %v, want ≈ 4", reg.Slope(0))
	}
}

func TestOLSErrors(t *testing.T) {
	if _, err := OLS(nil, nil); err == nil {
		t.Error("expected error for empty input")
	}
	if _, err := OLS([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("expected length mismatch error")
	}
	if _, err := OLS([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("expected under-determined error")
	}
	if _, err := OLS([][]float64{{1, 2}, {1}, {3, 4}}, []float64{1, 2, 3}); err == nil {
		t.Error("expected ragged rows error")
	}
}

func TestOLSNoInterceptRecoversModel(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 60; i++ {
		x1 := 1 + rng.Float64()*10
		x2 := 1 + rng.Float64()*10
		xs = append(xs, []float64{x1, x2})
		ys = append(ys, 7*x1+1.5*x2)
	}
	reg, err := OLSNoIntercept(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if reg.Intercept() != 0 {
		t.Errorf("intercept = %v, want 0", reg.Intercept())
	}
	if !almostEqual(reg.Slope(0), 7, 1e-8) || !almostEqual(reg.Slope(1), 1.5, 1e-8) {
		t.Errorf("slopes = %v, %v; want 7, 1.5", reg.Slope(0), reg.Slope(1))
	}
}

func TestOLSNoInterceptErrors(t *testing.T) {
	if _, err := OLSNoIntercept(nil, nil); err == nil {
		t.Error("expected error for empty input")
	}
	if _, err := OLSNoIntercept([][]float64{{1, 2}}, []float64{1, 2}); err == nil {
		t.Error("expected length mismatch error")
	}
	if _, err := OLSNoIntercept([][]float64{{1, 2}, {2}}, []float64{1, 2}); err == nil {
		t.Error("expected ragged rows error")
	}
}

func TestRegressionPredict(t *testing.T) {
	reg := Regression{Coef: []float64{1, 2, 3}}
	if got := reg.Predict([]float64{10, 100}); got != 1+20+300 {
		t.Errorf("Predict = %v", got)
	}
}

func TestMatHelpers(t *testing.T) {
	a := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	ata := MatTMat(a)
	want := [][]float64{{35, 44}, {44, 56}}
	for i := range want {
		for j := range want[i] {
			if !almostEqual(ata[i][j], want[i][j], 1e-12) {
				t.Errorf("AᵀA[%d][%d] = %v, want %v", i, j, ata[i][j], want[i][j])
			}
		}
	}
	atv := MatTVec(a, []float64{1, 1, 1})
	if !almostEqual(atv[0], 9, 1e-12) || !almostEqual(atv[1], 12, 1e-12) {
		t.Errorf("Aᵀv = %v, want [9 12]", atv)
	}
	if MatTMat(nil) != nil || MatTVec(nil, nil) != nil {
		t.Error("empty matrix helpers should return nil")
	}
}
