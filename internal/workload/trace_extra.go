package workload

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"time"
)

// TwoPeakTrace models the double-humped daily load shape common to
// user-facing services (a morning and an evening peak with a midday sag
// and a deep night trough).
type TwoPeakTrace struct {
	Low    float64       // night trough load fraction
	Mid    float64       // midday sag load fraction
	High   float64       // peak load fraction
	Period time.Duration // one day
}

// NewTwoPeakTrace validates and builds a two-peak diurnal trace.
func NewTwoPeakTrace(low, mid, high float64, period time.Duration) (*TwoPeakTrace, error) {
	if !fracOK(low) || !fracOK(mid) || !fracOK(high) || low > mid || mid > high {
		return nil, fmt.Errorf("workload: two-peak levels must satisfy 0 ≤ low ≤ mid ≤ high ≤ 1, got %v/%v/%v", low, mid, high)
	}
	if period <= 0 {
		return nil, errors.New("workload: two-peak period must be positive")
	}
	return &TwoPeakTrace{Low: low, Mid: mid, High: high, Period: period}, nil
}

// LoadFraction implements Trace: peaks at 40% and 80% of the cycle, sag at
// 60%, trough at 10%.
func (tp *TwoPeakTrace) LoadFraction(t time.Duration) float64 {
	frac := math.Mod(t.Seconds()/tp.Period.Seconds(), 1)
	if frac < 0 {
		frac += 1
	}
	// Piecewise-cosine through the anchor points.
	anchors := []struct{ at, level float64 }{
		{0.0, tp.Low},
		{0.10, tp.Low},
		{0.40, tp.High},
		{0.60, tp.Mid},
		{0.80, tp.High},
		{1.0, tp.Low},
	}
	for i := 1; i < len(anchors); i++ {
		if frac <= anchors[i].at {
			lo, hi := anchors[i-1], anchors[i]
			span := hi.at - lo.at
			if span == 0 {
				return hi.level
			}
			// Cosine easing between the two anchor levels.
			u := (frac - lo.at) / span
			w := (1 - math.Cos(math.Pi*u)) / 2
			return lo.level + (hi.level-lo.level)*w
		}
	}
	return tp.Low
}

// Duration implements Trace.
func (tp *TwoPeakTrace) Duration() time.Duration { return tp.Period }

// String implements fmt.Stringer.
func (tp *TwoPeakTrace) String() string {
	return fmt.Sprintf("two-peak[%.0f%%/%.0f%%/%.0f%%/%v]", tp.Low*100, tp.Mid*100, tp.High*100, tp.Period)
}

// FlashCrowdTrace holds a baseline load with one sudden spike — the load
// surprise that forces the server manager to reclaim resources from the
// co-runner in a hurry.
type FlashCrowdTrace struct {
	Base   float64
	Spike  float64
	At     time.Duration
	SpikeD time.Duration
	Span   time.Duration
	RampD  time.Duration // spike onset ramp (0 = instantaneous)
}

// NewFlashCrowdTrace validates and builds a flash-crowd trace.
func NewFlashCrowdTrace(base, spike float64, at, spikeDur, span time.Duration) (*FlashCrowdTrace, error) {
	if !fracOK(base) || !fracOK(spike) {
		return nil, errors.New("workload: flash-crowd levels outside [0, 1]")
	}
	if spike <= base {
		return nil, errors.New("workload: spike must exceed the baseline")
	}
	if at <= 0 || spikeDur <= 0 || at+spikeDur > span {
		return nil, errors.New("workload: flash-crowd timing must satisfy 0 < at, at+dur ≤ span")
	}
	return &FlashCrowdTrace{Base: base, Spike: spike, At: at, SpikeD: spikeDur, Span: span, RampD: 2 * time.Second}, nil
}

// LoadFraction implements Trace.
func (f *FlashCrowdTrace) LoadFraction(t time.Duration) float64 {
	if t < f.At || t >= f.At+f.SpikeD {
		return f.Base
	}
	if f.RampD > 0 && t < f.At+f.RampD {
		u := float64(t-f.At) / float64(f.RampD)
		return f.Base + (f.Spike-f.Base)*u
	}
	return f.Spike
}

// Duration implements Trace.
func (f *FlashCrowdTrace) Duration() time.Duration { return f.Span }

// String implements fmt.Stringer.
func (f *FlashCrowdTrace) String() string {
	return fmt.Sprintf("flash-crowd[%.0f%%→%.0f%% at %v for %v]", f.Base*100, f.Spike*100, f.At, f.SpikeD)
}

// NoisyTrace perturbs an inner trace with seeded multiplicative noise,
// re-sampled per interval, modelling short-term demand jitter on top of a
// macro shape. The perturbation is deterministic for a (seed, interval)
// pair so simulations stay reproducible.
type NoisyTrace struct {
	Inner    Trace
	RelStd   float64
	Interval time.Duration
	seed     int64
}

// NewNoisyTrace wraps inner with relative jitter of standard deviation
// relStd, held constant within each interval.
func NewNoisyTrace(inner Trace, relStd float64, interval time.Duration, seed int64) (*NoisyTrace, error) {
	if inner == nil {
		return nil, errors.New("workload: nil inner trace")
	}
	if relStd < 0 || relStd > 0.5 {
		return nil, errors.New("workload: noise std outside [0, 0.5]")
	}
	if interval <= 0 {
		return nil, errors.New("workload: noise interval must be positive")
	}
	return &NoisyTrace{Inner: inner, RelStd: relStd, Interval: interval, seed: seed}, nil
}

// LoadFraction implements Trace.
func (n *NoisyTrace) LoadFraction(t time.Duration) float64 {
	base := n.Inner.LoadFraction(t)
	if n.RelStd == 0 {
		return base
	}
	slot := int64(t / n.Interval)
	// Derive a per-slot deterministic jitter from the seed and slot index.
	rng := rand.New(rand.NewSource(n.seed ^ (slot * 0x9E3779B9)))
	v := base * (1 + rng.NormFloat64()*n.RelStd)
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Duration implements Trace.
func (n *NoisyTrace) Duration() time.Duration { return n.Inner.Duration() }

// String implements fmt.Stringer.
func (n *NoisyTrace) String() string {
	return fmt.Sprintf("noisy[%v ±%.0f%%/%v]", n.Inner, n.RelStd*100, n.Interval)
}

// ReplayTrace replays recorded (time, load fraction) points with linear
// interpolation, wrapping at the end — the hook for driving simulations
// from production load traces.
type ReplayTrace struct {
	times []time.Duration
	loads []float64
	span  time.Duration
	name  string
}

// NewReplayTrace builds a replay trace from parallel slices of offsets and
// load fractions. Offsets must be strictly increasing and start at or
// after zero; fractions must be in [0, 1].
func NewReplayTrace(name string, offsets []time.Duration, loads []float64) (*ReplayTrace, error) {
	if len(offsets) < 2 {
		return nil, errors.New("workload: replay needs at least two points")
	}
	if len(offsets) != len(loads) {
		return nil, errors.New("workload: replay offsets/loads length mismatch")
	}
	for i, off := range offsets {
		if !fracOK(loads[i]) {
			return nil, fmt.Errorf("workload: replay load %v outside [0, 1]", loads[i])
		}
		if i == 0 {
			if off < 0 {
				return nil, errors.New("workload: replay offsets must start at or after zero")
			}
			continue
		}
		if off <= offsets[i-1] {
			return nil, errors.New("workload: replay offsets must be strictly increasing")
		}
	}
	if name == "" {
		name = "replay"
	}
	return &ReplayTrace{
		times: append([]time.Duration(nil), offsets...),
		loads: append([]float64(nil), loads...),
		span:  offsets[len(offsets)-1],
		name:  name,
	}, nil
}

// ParseCSVTrace reads a two-column CSV of "seconds,load-fraction" rows
// (header row optional) into a ReplayTrace.
func ParseCSVTrace(name string, r io.Reader) (*ReplayTrace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	cr.TrimLeadingSpace = true
	var offsets []time.Duration
	var loads []float64
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("workload: csv trace: %w", err)
		}
		line++
		secs, err1 := strconv.ParseFloat(rec[0], 64)
		frac, err2 := strconv.ParseFloat(rec[1], 64)
		if err1 != nil || err2 != nil {
			if line == 1 {
				continue // tolerate a header row
			}
			return nil, fmt.Errorf("workload: csv trace line %d: non-numeric row %v", line, rec)
		}
		// Reject offsets the duration conversion cannot represent:
		// converting NaN, ±Inf, or an out-of-range float to int64 is
		// implementation-defined in Go and would silently corrupt the
		// trace. Load fractions are range-checked by NewReplayTrace.
		if math.IsNaN(secs) || secs < 0 || secs > float64(math.MaxInt64)/float64(time.Second) {
			return nil, fmt.Errorf("workload: csv trace line %d: offset %v seconds out of range", line, rec[0])
		}
		offsets = append(offsets, time.Duration(secs*float64(time.Second)))
		loads = append(loads, frac)
	}
	return NewReplayTrace(name, offsets, loads)
}

// LoadFraction implements Trace with linear interpolation and wrapping.
func (rt *ReplayTrace) LoadFraction(t time.Duration) float64 {
	if rt.span > 0 {
		t = time.Duration(math.Mod(float64(t), float64(rt.span)))
		if t < 0 {
			t += rt.span
		}
	}
	i := sort.Search(len(rt.times), func(i int) bool { return rt.times[i] >= t })
	if i == 0 {
		return rt.loads[0]
	}
	if i == len(rt.times) {
		return rt.loads[len(rt.loads)-1]
	}
	lo, hi := rt.times[i-1], rt.times[i]
	u := float64(t-lo) / float64(hi-lo)
	return rt.loads[i-1] + (rt.loads[i]-rt.loads[i-1])*u
}

// Duration implements Trace.
func (rt *ReplayTrace) Duration() time.Duration { return rt.span }

// String implements fmt.Stringer.
func (rt *ReplayTrace) String() string {
	return fmt.Sprintf("%s[%d points/%v]", rt.name, len(rt.times), rt.span)
}
