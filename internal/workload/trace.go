package workload

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Trace produces the offered load of a latency-critical application over
// simulated time, as a fraction of its peak load. Implementations must be
// safe for concurrent use.
type Trace interface {
	// LoadFraction returns the offered load at elapsed time t since the
	// start of the simulation, in [0, 1] (fraction of the app's PeakLoad).
	LoadFraction(t time.Duration) float64
	// Duration returns the natural length of the trace (one period for
	// cyclic traces). Simulations may run longer; the trace wraps.
	Duration() time.Duration
	fmt.Stringer
}

// DiurnalTrace models the day/night load swing of a user-facing service:
// a raised sinusoid between Low and High with the given period, as in the
// paper's Fig. 1 motivation.
type DiurnalTrace struct {
	Low    float64       // minimum load fraction (off-peak)
	High   float64       // maximum load fraction (daily peak)
	Period time.Duration // length of one diurnal cycle
	// PeakAt positions the daily peak within the cycle as a fraction of
	// Period (0.5 = mid-cycle).
	PeakAt float64
}

// fracOK reports whether x is a valid load fraction: in [0, 1]. Written
// as a positive check so NaN, which fails every comparison, is rejected
// rather than slipping past a `< 0 || > 1` test.
func fracOK(x float64) bool { return x >= 0 && x <= 1 }

// NewDiurnalTrace validates and builds a diurnal trace.
func NewDiurnalTrace(low, high float64, period time.Duration) (*DiurnalTrace, error) {
	if !fracOK(low) || !fracOK(high) || low > high {
		return nil, fmt.Errorf("workload: diurnal range [%v, %v] invalid", low, high)
	}
	if period <= 0 {
		return nil, errors.New("workload: diurnal period must be positive")
	}
	return &DiurnalTrace{Low: low, High: high, Period: period, PeakAt: 0.5}, nil
}

// LoadFraction implements Trace.
func (d *DiurnalTrace) LoadFraction(t time.Duration) float64 {
	frac := math.Mod(t.Seconds()/d.Period.Seconds(), 1)
	if frac < 0 {
		frac += 1
	}
	// Raised cosine with the peak at PeakAt.
	phase := 2 * math.Pi * (frac - d.PeakAt)
	shape := (1 + math.Cos(phase)) / 2 // 1 at peak, 0 at trough
	return d.Low + (d.High-d.Low)*shape
}

// Duration implements Trace.
func (d *DiurnalTrace) Duration() time.Duration { return d.Period }

// String implements fmt.Stringer.
func (d *DiurnalTrace) String() string {
	return fmt.Sprintf("diurnal[%.0f%%–%.0f%%/%v]", d.Low*100, d.High*100, d.Period)
}

// SweepTrace holds each load level for a fixed dwell time, in order. The
// paper evaluates policies "averaged across the primary load (under a
// uniform load distribution from 10% to 90% in steps of 10%)"; a SweepTrace
// over those nine levels reproduces that distribution exactly.
type SweepTrace struct {
	Levels []float64
	Dwell  time.Duration
}

// NewSweepTrace validates and builds a sweep trace.
func NewSweepTrace(levels []float64, dwell time.Duration) (*SweepTrace, error) {
	if len(levels) == 0 {
		return nil, errors.New("workload: sweep needs at least one level")
	}
	for _, l := range levels {
		if !fracOK(l) {
			return nil, fmt.Errorf("workload: sweep level %v outside [0, 1]", l)
		}
	}
	if dwell <= 0 {
		return nil, errors.New("workload: sweep dwell must be positive")
	}
	return &SweepTrace{Levels: append([]float64(nil), levels...), Dwell: dwell}, nil
}

// UniformSweep returns the paper's canonical 10%–90% sweep in steps of 10%.
func UniformSweep(dwell time.Duration) *SweepTrace {
	levels := make([]float64, 0, 9)
	for l := 0.1; l < 0.95; l += 0.1 {
		levels = append(levels, math.Round(l*10)/10)
	}
	t, err := NewSweepTrace(levels, dwell)
	if err != nil {
		panic(err) // unreachable: constants are valid
	}
	return t
}

// LoadFraction implements Trace.
func (s *SweepTrace) LoadFraction(t time.Duration) float64 {
	idx := int(math.Mod(t.Seconds()/s.Dwell.Seconds(), float64(len(s.Levels))))
	if idx < 0 {
		idx += len(s.Levels)
	}
	return s.Levels[idx]
}

// Duration implements Trace.
func (s *SweepTrace) Duration() time.Duration {
	return time.Duration(len(s.Levels)) * s.Dwell
}

// String implements fmt.Stringer.
func (s *SweepTrace) String() string {
	return fmt.Sprintf("sweep[%d levels × %v]", len(s.Levels), s.Dwell)
}

// ConstantTrace holds one load level forever; useful for single operating
// point experiments such as the paper's Fig. 2/3 (xapian at 10% load).
type ConstantTrace struct {
	Level float64
}

// NewConstantTrace validates and builds a constant trace.
func NewConstantTrace(level float64) (*ConstantTrace, error) {
	if !fracOK(level) {
		return nil, fmt.Errorf("workload: constant level %v outside [0, 1]", level)
	}
	return &ConstantTrace{Level: level}, nil
}

// LoadFraction implements Trace.
func (c *ConstantTrace) LoadFraction(time.Duration) float64 { return c.Level }

// Duration implements Trace.
func (c *ConstantTrace) Duration() time.Duration { return time.Minute }

// String implements fmt.Stringer.
func (c *ConstantTrace) String() string {
	return fmt.Sprintf("constant[%.0f%%]", c.Level*100)
}

// StepTrace switches between two levels at a given time, exercising the
// controller's reaction to sudden load changes (the paper's 50%→80%
// reclamation example in Section II-C).
type StepTrace struct {
	Before, After float64
	At            time.Duration
	Span          time.Duration
}

// NewStepTrace validates and builds a step trace.
func NewStepTrace(before, after float64, at, span time.Duration) (*StepTrace, error) {
	if !fracOK(before) || !fracOK(after) {
		return nil, errors.New("workload: step levels outside [0, 1]")
	}
	if at <= 0 || span <= at {
		return nil, errors.New("workload: step needs 0 < at < span")
	}
	return &StepTrace{Before: before, After: after, At: at, Span: span}, nil
}

// LoadFraction implements Trace.
func (s *StepTrace) LoadFraction(t time.Duration) float64 {
	if t < s.At {
		return s.Before
	}
	return s.After
}

// Duration implements Trace.
func (s *StepTrace) Duration() time.Duration { return s.Span }

// String implements fmt.Stringer.
func (s *StepTrace) String() string {
	return fmt.Sprintf("step[%.0f%%→%.0f%% at %v]", s.Before*100, s.After*100, s.At)
}
