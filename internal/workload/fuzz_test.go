package workload

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"pocolo/internal/machine"
)

// FuzzParseTrace throws arbitrary CSV at ParseCSVTrace. A parse may be
// rejected, but whatever is accepted must be a physically sane trace:
// positive span and load fractions in [0, 1] everywhere — no NaN smuggled
// past the range checks, no offset overflow corrupting the timeline.
func FuzzParseTrace(f *testing.F) {
	f.Add("seconds,load\n0,0.10\n30,0.55\n60,0.90\n")
	f.Add("0,0\n10,1\n")
	f.Add("0,0.5\n1,NaN\n")
	f.Add("NaN,0.5\n1,0.6\n")
	f.Add("1e308,0.5\n2e308,0.6\n")
	f.Add("0,0.5\n-1,0.6\n")
	f.Add("0,-0.1\n1,0.5\n")
	f.Add("junk")
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		tr, err := ParseCSVTrace("fuzz", strings.NewReader(s))
		if err != nil {
			return // rejection is fine; panics and bad accepts are not
		}
		span := tr.Duration()
		if span <= 0 {
			t.Fatalf("accepted trace has non-positive span %v from %q", span, s)
		}
		for _, at := range []time.Duration{0, span / 3, span / 2, span, span * 2} {
			l := tr.LoadFraction(at)
			if !(l >= 0 && l <= 1) {
				t.Fatalf("accepted trace yields load %v at %v from %q", l, at, s)
			}
		}
	})
}

// FuzzParseSpec throws arbitrary JSON at LoadCatalog. Accepted catalogs
// must contain only usable applications: finite positive full-machine
// capacity and finite non-negative power coefficients — the calibration
// must never overflow its way into a silently dead or infinitely hungry
// app.
func FuzzParseSpec(f *testing.F) {
	cfg := machine.XeonE52650()
	var buf bytes.Buffer
	if err := ExportCatalog(&buf, MustDefaults()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{"format":"pocolo-catalog/v1","applications":[{"name":"a","class":"best-effort","alphaCores":0.5,"alphaWays":0.5,"freqExp":0.9,"peakLoad":100,"prefCores":0.5,"prefWays":0.5,"fullDynamicPowerW":80}]}`))
	f.Add([]byte(`{"format":"pocolo-catalog/v1","applications":[{"name":"l","class":"latency-critical","alphaCores":1e308,"alphaWays":1e308,"freqExp":1,"peakLoad":1e308,"prefCores":1e-308,"prefWays":1,"sloP95Ms":5,"sloP99Ms":9,"provisionedPowerW":120}]}`))
	f.Add([]byte(`{"format":"pocolo-catalog/v1","applications":[]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		cat, err := LoadCatalog(bytes.NewReader(data), cfg)
		if err != nil {
			return
		}
		full := cfg.Full()
		for _, s := range append(cat.LC(), cat.BE()...) {
			c := s.Capacity(full)
			if !(c > 0) || math.IsInf(c, 0) {
				t.Fatalf("accepted app %q has full-machine capacity %v", s.Name, c)
			}
			if !(s.PowerPerCoreW >= 0) || math.IsInf(s.PowerPerCoreW, 0) ||
				!(s.PowerPerWayW >= 0) || math.IsInf(s.PowerPerWayW, 0) {
				t.Fatalf("accepted app %q has power coefficients %v/%v W",
					s.Name, s.PowerPerCoreW, s.PowerPerWayW)
			}
		}
	})
}
