// Package workload defines ground-truth application models for the four
// latency-critical (LC) primaries — img-dnn, sphinx, xapian, TPC-C — and
// the four best-effort (BE) secondaries — LSTM, RNN, Graph (PageRank),
// Pbzip — that the paper evaluates (Section V-A, Table II).
//
// The paper runs the real applications on hardware; offline we substitute
// analytic ground-truth models with the same observable surface: given an
// allocation of cores, LLC ways, frequency, and duty cycle, each model
// produces a service capacity, tail latency under load (LC), saturated
// throughput (BE), and dynamic power draw. The models are Cobb-Douglas in
// cores and ways — the family the paper fits — *plus* deliberate deviations
// (resource contention at high allocations, super-linear core power) so the
// fitted model is good but imperfect, matching the paper's reported R² of
// 0.8–0.98 rather than a tautological 1.0.
package workload

import (
	"fmt"
	"math"

	"pocolo/internal/machine"
)

// Class distinguishes latency-critical primaries from best-effort
// secondaries.
type Class int

const (
	// LatencyCritical applications own the cluster: the infrastructure is
	// provisioned for their peak and they have absolute resource priority.
	LatencyCritical Class = iota
	// BestEffort applications harvest spare resources and may be throttled
	// at any time to keep the server inside its power capacity.
	BestEffort
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case LatencyCritical:
		return "latency-critical"
	case BestEffort:
		return "best-effort"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// SLO holds the latency service-level objectives of an LC application
// (Table II), in milliseconds.
type SLO struct {
	P95Ms float64
	P99Ms float64
}

// SLOUtilization is the queue utilization ρ = load/capacity at which the
// p99 latency model exactly meets the SLO; loads above it violate the SLO.
// The latency curves are calibrated around this constant.
const SLOUtilization = 0.85

// Spec is the ground-truth model of one application. Specs are immutable
// after construction; all methods are safe for concurrent use.
type Spec struct {
	Name   string
	Class  Class
	Domain string

	// Cobb-Douglas capacity exponents for cores and LLC ways, plus the
	// frequency sensitivity exponent (performance ∝ (f/fmax)^FreqExp).
	AlphaCores float64
	AlphaWays  float64
	FreqExp    float64

	// Contention coefficients: capacity is multiplied by
	// (1 − EtaCores·(c/Cmax)²)·(1 − EtaWays·(w/Wmax)²), a mild
	// super-Cobb-Douglas penalty that keeps the fitted R² below 1.
	EtaCores float64
	EtaWays  float64

	// Ground-truth marginal dynamic power, watts per core (at max
	// frequency, fully utilized) and per LLC way.
	PowerPerCoreW float64
	PowerPerWayW  float64
	// PowerKappa adds a super-linear core-power term: the per-core power
	// is multiplied by (1 + PowerKappa·c/Cmax), modelling shared uncore
	// activity the linear fit cannot capture exactly.
	PowerKappa float64

	// PeakLoad is the Table II peak: for LC apps, the maximum load
	// (requests/s) sustainable within the SLO on the full machine; for BE
	// apps, the saturated throughput (normalized ops/s) on the full
	// machine.
	PeakLoad float64

	// SLO holds the tail-latency targets (LC apps only).
	SLO SLO

	// ProvisionedPowerW is the right-sized server power capacity for a
	// cluster dedicated to this LC application (Table II "peak server
	// power"); zero for BE apps.
	ProvisionedPowerW float64

	ref    machine.Config // platform the spec was calibrated against
	alpha0 float64        // capacity scale, computed by calibrate
}

// Ref returns the machine configuration the spec was calibrated against.
func (s *Spec) Ref() machine.Config { return s.ref }

// Alpha0 returns the calibrated Cobb-Douglas scale constant.
func (s *Spec) Alpha0() float64 { return s.alpha0 }

// calibrate fixes alpha0 so that the full-machine operating point matches
// PeakLoad: for LC apps the max SLO-compliant load on the full machine is
// PeakLoad; for BE apps the saturated full-machine throughput is PeakLoad.
func (s *Spec) calibrate(cfg machine.Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if !(s.PeakLoad > 0) || math.IsInf(s.PeakLoad, 0) {
		return fmt.Errorf("workload %q: peak load must be positive and finite", s.Name)
	}
	if !(s.AlphaCores > 0) || !(s.AlphaWays > 0) {
		return fmt.Errorf("workload %q: Cobb-Douglas exponents must be positive", s.Name)
	}
	if math.IsNaN(s.PowerPerCoreW) || math.IsInf(s.PowerPerCoreW, 0) || s.PowerPerCoreW < 0 ||
		math.IsNaN(s.PowerPerWayW) || math.IsInf(s.PowerPerWayW, 0) || s.PowerPerWayW < 0 {
		return fmt.Errorf("workload %q: degenerate power model", s.Name)
	}
	s.ref = cfg
	s.alpha0 = 1
	full := cfg.Full()
	raw := s.Capacity(full)
	// The positive-form check rejects NaN too; an infinite raw capacity
	// (overflow from extreme catalog inputs) would otherwise calibrate
	// alpha0 to zero and yield a silently dead application.
	if !(raw > 0) || math.IsInf(raw, 0) {
		return fmt.Errorf("workload %q: degenerate capacity model", s.Name)
	}
	switch s.Class {
	case LatencyCritical:
		// MaxLoadSLO = SLOUtilization × capacity; make it equal PeakLoad.
		s.alpha0 = s.PeakLoad / (SLOUtilization * raw)
	case BestEffort:
		s.alpha0 = s.PeakLoad / raw
	default:
		return fmt.Errorf("workload %q: unknown class %v", s.Name, s.Class)
	}
	if !(s.alpha0 > 0) || math.IsInf(s.alpha0, 0) {
		return fmt.Errorf("workload %q: degenerate capacity scale", s.Name)
	}
	return nil
}

// contention returns the super-Cobb-Douglas capacity penalty at an
// allocation.
func (s *Spec) contention(a machine.Alloc) float64 {
	cFrac := float64(a.Cores) / float64(s.ref.Cores)
	wFrac := float64(a.Ways) / float64(s.ref.LLCWays)
	return (1 - s.EtaCores*cFrac*cFrac) * (1 - s.EtaWays*wFrac*wFrac)
}

// Capacity returns the raw service capacity (requests/s for LC apps,
// normalized ops/s for BE apps) of an allocation. Zero cores or zero ways
// yield zero capacity: every application needs at least one of each to run.
func (s *Spec) Capacity(a machine.Alloc) float64 {
	if a.Cores <= 0 || a.Ways <= 0 {
		return 0
	}
	duty := a.Duty
	if duty <= 0 || duty > 1 {
		duty = 1
	}
	fRel := a.FreqGHz / s.ref.MaxFreqGHz
	if fRel <= 0 {
		return 0
	}
	cd := math.Pow(float64(a.Cores), s.AlphaCores) * math.Pow(float64(a.Ways), s.AlphaWays)
	return s.alpha0 * cd * math.Pow(fRel, s.FreqExp) * s.contention(a) * duty
}

// MaxLoadSLO returns the highest load the LC application can sustain on the
// allocation while meeting its p99 SLO exactly (the paper's "maximum
// achievable application load within the target latency" metric).
func (s *Spec) MaxLoadSLO(a machine.Alloc) float64 {
	return SLOUtilization * s.Capacity(a)
}

// MaxLoadWithSlack returns the highest load sustainable while keeping at
// least the given relative p99 slack (slack 0.1 = p99 ≤ 90% of the SLO).
// The paper profiles and controls against a ≥10% slack guard; this inverts
// the latency law for that target.
func (s *Spec) MaxLoadWithSlack(a machine.Alloc, slack float64) float64 {
	if slack >= 0.7 {
		// The latency floor is 30% of the SLO; more slack than that is
		// unreachable at any load.
		return 0
	}
	if slack < 0 {
		slack = 0
	}
	// Invert L0 + B·ρ/(1−ρ) = (1−slack)·SLO with L0 = 0.3·SLO and B set by
	// the SLOUtilization calibration (see latencyCurve).
	l0 := 0.3
	b := (1 - l0) * (1 - SLOUtilization) / SLOUtilization
	target := 1 - slack
	x := (target - l0) / b // ρ/(1−ρ)
	rho := x / (1 + x)
	return rho * s.Capacity(a)
}

// latencyCurve evaluates L0 + B·ρ/(1−ρ), the open-queueing-flavoured tail
// latency law, calibrated so that latency == slo exactly at ρ ==
// SLOUtilization. Loads at or beyond capacity return +Inf.
func latencyCurve(slo, rho float64) float64 {
	if rho >= 1 {
		return math.Inf(1)
	}
	if rho < 0 {
		rho = 0
	}
	l0 := 0.3 * slo
	// Solve l0 + B·ρs/(1−ρs) = slo for B at ρs = SLOUtilization.
	b := (slo - l0) * (1 - SLOUtilization) / SLOUtilization
	return l0 + b*rho/(1-rho)
}

// P99 returns the ground-truth 99th-percentile latency (ms) of the LC
// application at the given load on the given allocation.
func (s *Spec) P99(a machine.Alloc, load float64) float64 {
	cap := s.Capacity(a)
	if cap <= 0 {
		return math.Inf(1)
	}
	return latencyCurve(s.SLO.P99Ms, load/cap)
}

// P95 returns the ground-truth 95th-percentile latency (ms).
func (s *Spec) P95(a machine.Alloc, load float64) float64 {
	cap := s.Capacity(a)
	if cap <= 0 {
		return math.Inf(1)
	}
	return latencyCurve(s.SLO.P95Ms, load/cap)
}

// MeetsSLO reports whether the allocation sustains the load with at least
// the given relative p99 slack (slack 0.1 = latency ≤ 90% of the SLO).
func (s *Spec) MeetsSLO(a machine.Alloc, load, slack float64) bool {
	return s.P99(a, load) <= s.SLO.P99Ms*(1-slack)
}

// Throughput returns the saturated throughput of a BE application on the
// allocation (equal to Capacity; BE apps are work-conserving and always
// saturate their grant).
func (s *Spec) Throughput(a machine.Alloc) float64 {
	return s.Capacity(a)
}

// freqPowerFactor is the dynamic-power scaling with frequency: a cube-law
// dynamic component over a static floor. At f == fmax it is exactly 1.
func (s *Spec) freqPowerFactor(f float64) float64 {
	fRel := f / s.ref.MaxFreqGHz
	if fRel < 0 {
		fRel = 0
	}
	return 0.3 + 0.7*fRel*fRel*fRel
}

// Power returns the application's dynamic power draw (watts, excluding the
// server's static/idle floor) on the allocation at the given load.
//
// For LC apps utilization scales the draw: u = min(1, load/MaxLoadSLO),
// reaching the Table II peak power exactly at peak load. For BE apps the
// load argument is ignored and utilization is 1 (saturating); pass any
// value.
func (s *Spec) Power(a machine.Alloc, load float64) float64 {
	if a.Cores <= 0 && a.Ways <= 0 {
		return 0
	}
	util := 1.0
	if s.Class == LatencyCritical {
		maxLoad := s.MaxLoadSLO(a)
		if maxLoad <= 0 {
			return 0
		}
		util = load / maxLoad
		if util > 1 {
			util = 1
		}
		if util < 0 {
			util = 0
		}
	}
	duty := a.Duty
	if duty <= 0 || duty > 1 {
		duty = 1
	}
	cFrac := float64(a.Cores) / float64(s.ref.Cores)
	corePart := float64(a.Cores) * s.PowerPerCoreW * (1 + s.PowerKappa*cFrac) * s.freqPowerFactor(a.FreqGHz)
	wayPart := float64(a.Ways) * s.PowerPerWayW
	return duty * util * (corePart + wayPart)
}

// PreferenceTruth returns the ground-truth indirect-utility preference of
// the application for cores vs ways: (αc/pc, αw/pw) normalized to sum to 1.
// This is the quantity the paper's fitted preference vector estimates.
func (s *Spec) PreferenceTruth() (cores, ways float64) {
	rc := s.AlphaCores / s.PowerPerCoreW
	rw := s.AlphaWays / s.PowerPerWayW
	sum := rc + rw
	return rc / sum, rw / sum
}

// DirectPreferenceTruth returns the ground-truth direct-utility preference
// (αc, αw) normalized to sum to 1 — the power-unaware ranking.
func (s *Spec) DirectPreferenceTruth() (cores, ways float64) {
	sum := s.AlphaCores + s.AlphaWays
	return s.AlphaCores / sum, s.AlphaWays / sum
}

// String implements fmt.Stringer.
func (s *Spec) String() string {
	return fmt.Sprintf("%s (%s, %s)", s.Name, s.Class, s.Domain)
}
