package workload

import (
	"math"
	"testing"

	"pocolo/internal/machine"
)

func fullAlloc() machine.Alloc { return machine.XeonE52650().Full() }

func TestDefaultsBuilds(t *testing.T) {
	cat, err := Defaults(machine.XeonE52650())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(cat.LC()); got != 4 {
		t.Errorf("LC count = %d, want 4", got)
	}
	if got := len(cat.BE()); got != 4 {
		t.Errorf("BE count = %d, want 4", got)
	}
	if got := len(cat.Names()); got != 8 {
		t.Errorf("Names count = %d, want 8", got)
	}
	if _, err := cat.ByName("xapian"); err != nil {
		t.Errorf("ByName(xapian): %v", err)
	}
	if _, err := cat.ByName("nope"); err == nil {
		t.Error("ByName(nope): expected error")
	}
	if _, err := Defaults(machine.Config{}); err == nil {
		t.Error("Defaults with invalid config: expected error")
	}
}

func TestLCCalibrationMatchesTableII(t *testing.T) {
	cat := MustDefaults()
	want := map[string]struct {
		peak  float64
		p95   float64
		p99   float64
		power float64
	}{
		"img-dnn": {3500, 10, 20, 133},
		"sphinx":  {10, 1800, 3030, 182},
		"xapian":  {4000, 2.588, 4.020, 154},
		"tpcc":    {8000, 51, 707, 133},
	}
	full := fullAlloc()
	for name, w := range want {
		s, err := cat.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if got := s.MaxLoadSLO(full); math.Abs(got-w.peak)/w.peak > 1e-9 {
			t.Errorf("%s: MaxLoadSLO(full) = %v, want %v", name, got, w.peak)
		}
		if s.SLO.P95Ms != w.p95 || s.SLO.P99Ms != w.p99 {
			t.Errorf("%s: SLO = %+v", name, s.SLO)
		}
		// Power at peak load on the full machine must hit the Table II
		// provisioned power (minus the 50 W idle floor).
		dyn := s.Power(full, w.peak)
		if math.Abs(dyn-(w.power-50)) > 0.5 {
			t.Errorf("%s: peak dynamic power = %v, want %v", name, dyn, w.power-50)
		}
		if s.ProvisionedPowerW != w.power {
			t.Errorf("%s: provisioned power = %v, want %v", name, s.ProvisionedPowerW, w.power)
		}
	}
}

func TestBECalibration(t *testing.T) {
	cat := MustDefaults()
	full := fullAlloc()
	for _, s := range cat.BE() {
		if got := s.Throughput(full); math.Abs(got-s.PeakLoad)/s.PeakLoad > 1e-9 {
			t.Errorf("%s: Throughput(full) = %v, want %v", s.Name, got, s.PeakLoad)
		}
		if s.ProvisionedPowerW != 0 {
			t.Errorf("%s: BE app has provisioned power %v", s.Name, s.ProvisionedPowerW)
		}
	}
}

func TestPreferenceTruthMatchesPaper(t *testing.T) {
	cat := MustDefaults()
	// Section V-C published indirect preference vectors (cores share).
	want := map[string]float64{
		"sphinx":  0.20,
		"lstm":    0.13,
		"graph":   0.80,
		"img-dnn": 0.70,
		"xapian":  0.33,
		"tpcc":    0.40,
		"rnn":     0.55,
		"pbzip":   0.60,
	}
	for name, w := range want {
		s, err := cat.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		c, ways := s.PreferenceTruth()
		if math.Abs(c-w) > 1e-6 {
			t.Errorf("%s: cores preference = %.3f, want %.3f", name, c, w)
		}
		if math.Abs(c+ways-1) > 1e-9 {
			t.Errorf("%s: preferences do not sum to 1", name)
		}
	}
	// Direct (power-unaware) preference for sphinx is 0.6:0.4 per Fig. 9a.
	sphinx, _ := cat.ByName("sphinx")
	dc, dw := sphinx.DirectPreferenceTruth()
	if math.Abs(dc-0.6) > 1e-9 || math.Abs(dw-0.4) > 1e-9 {
		t.Errorf("sphinx direct preference = %.2f:%.2f, want 0.6:0.4", dc, dw)
	}
}

func TestCapacityMonotonicity(t *testing.T) {
	cat := MustDefaults()
	cfg := machine.XeonE52650()
	for _, s := range append(cat.LC(), cat.BE()...) {
		for c := 1; c < cfg.Cores; c++ {
			a := machine.Alloc{Cores: c, Ways: 10, FreqGHz: 2.2, Duty: 1}
			b := a
			b.Cores++
			if s.Capacity(b) <= s.Capacity(a) {
				t.Errorf("%s: capacity not increasing in cores at %d", s.Name, c)
			}
		}
		for w := 1; w < cfg.LLCWays; w++ {
			a := machine.Alloc{Cores: 6, Ways: w, FreqGHz: 2.2, Duty: 1}
			b := a
			b.Ways++
			if s.Capacity(b) <= s.Capacity(a) {
				t.Errorf("%s: capacity not increasing in ways at %d", s.Name, w)
			}
		}
		for f := 1.2; f < 2.15; f += 0.1 {
			a := machine.Alloc{Cores: 6, Ways: 10, FreqGHz: f, Duty: 1}
			b := a
			b.FreqGHz += 0.1
			if s.Capacity(b) <= s.Capacity(a) {
				t.Errorf("%s: capacity not increasing in freq at %.1f", s.Name, f)
			}
		}
	}
}

func TestCapacityEdgeCases(t *testing.T) {
	cat := MustDefaults()
	s, _ := cat.ByName("xapian")
	if got := s.Capacity(machine.Alloc{Cores: 0, Ways: 10, FreqGHz: 2.2, Duty: 1}); got != 0 {
		t.Errorf("capacity with 0 cores = %v", got)
	}
	if got := s.Capacity(machine.Alloc{Cores: 4, Ways: 0, FreqGHz: 2.2, Duty: 1}); got != 0 {
		t.Errorf("capacity with 0 ways = %v", got)
	}
	if got := s.Capacity(machine.Alloc{Cores: 4, Ways: 4, FreqGHz: 0, Duty: 1}); got != 0 {
		t.Errorf("capacity with 0 freq = %v", got)
	}
	// Duty scales capacity linearly.
	a := machine.Alloc{Cores: 4, Ways: 4, FreqGHz: 2.2, Duty: 1}
	half := a
	half.Duty = 0.5
	if math.Abs(s.Capacity(half)-0.5*s.Capacity(a)) > 1e-9 {
		t.Error("duty should scale capacity linearly")
	}
	// Out-of-range duty treated as 1.
	weird := a
	weird.Duty = 0
	if s.Capacity(weird) != s.Capacity(a) {
		t.Error("duty 0 should be treated as unset (1)")
	}
}

func TestLatencyModel(t *testing.T) {
	cat := MustDefaults()
	s, _ := cat.ByName("img-dnn")
	full := fullAlloc()
	// At exactly the SLO max load, p99 equals the SLO.
	peak := s.MaxLoadSLO(full)
	if got := s.P99(full, peak); math.Abs(got-s.SLO.P99Ms) > 1e-6 {
		t.Errorf("p99 at SLO load = %v, want %v", got, s.SLO.P99Ms)
	}
	if got := s.P95(full, peak); math.Abs(got-s.SLO.P95Ms) > 1e-6 {
		t.Errorf("p95 at SLO load = %v, want %v", got, s.SLO.P95Ms)
	}
	// Latency is increasing in load.
	prev := 0.0
	for frac := 0.1; frac <= 0.9; frac += 0.1 {
		got := s.P99(full, frac*peak)
		if got <= prev {
			t.Errorf("p99 not increasing at load %.0f%%", frac*100)
		}
		prev = got
	}
	// At or beyond capacity, latency is infinite.
	if !math.IsInf(s.P99(full, s.Capacity(full)*1.01), 1) {
		t.Error("p99 beyond capacity should be +Inf")
	}
	if !math.IsInf(s.P99(machine.Alloc{}, 100), 1) {
		t.Error("p99 with empty allocation should be +Inf")
	}
	// MeetsSLO: peak load has zero slack, so a 10% slack demand fails.
	if s.MeetsSLO(full, peak, 0.10) {
		t.Error("peak load should not meet SLO with 10% slack")
	}
	if !s.MeetsSLO(full, 0.5*peak, 0.10) {
		t.Error("half load should meet SLO with 10% slack")
	}
}

func TestXapianLowLoadSmallAllocation(t *testing.T) {
	// Paper Section II-C: at 10% load xapian needs only ~1 core and ~2
	// cache ways. Our calibrated model must sustain 10% load with a small
	// allocation.
	cat := MustDefaults()
	s, _ := cat.ByName("xapian")
	small := machine.Alloc{Cores: 1, Ways: 2, FreqGHz: 2.2, Duty: 1}
	load := 0.10 * s.PeakLoad
	if got := s.MaxLoadSLO(small); got < load*0.95 {
		t.Errorf("1c/2w sustains only %.0f req/s, want ≈%.0f", got, load)
	}
	// And the power draw there should be far below the provisioned 154 W.
	dyn := s.Power(small, load)
	if dyn > 30 {
		t.Errorf("small-allocation dynamic power = %v W, too high", dyn)
	}
}

func TestPowerModel(t *testing.T) {
	cat := MustDefaults()
	s, _ := cat.ByName("sphinx")
	full := fullAlloc()
	peak := s.MaxLoadSLO(full)
	// Power monotonic in load up to peak, then flat.
	prev := -1.0
	for frac := 0.0; frac <= 1.0; frac += 0.1 {
		got := s.Power(full, frac*peak)
		if got < prev-1e-9 {
			t.Errorf("power decreasing at load %.0f%%", frac*100)
		}
		prev = got
	}
	if got := s.Power(full, peak*2); math.Abs(got-s.Power(full, peak)) > 1e-9 {
		t.Error("power above peak load should saturate")
	}
	// Power decreases with frequency.
	lowf := full
	lowf.FreqGHz = 1.2
	if s.Power(lowf, peak) >= s.Power(full, peak) {
		t.Error("power should drop at lower frequency")
	}
	// Duty scales power.
	half := full
	half.Duty = 0.5
	if math.Abs(s.Power(half, peak)-0.5*s.Power(full, peak)) > 1e-9 {
		t.Error("duty should scale power linearly")
	}
	// Empty allocation draws nothing.
	if s.Power(machine.Alloc{}, peak) != 0 {
		t.Error("empty allocation should draw 0 W")
	}
	// BE apps ignore the load argument.
	be, _ := cat.ByName("graph")
	if be.Power(full, 0) != be.Power(full, 1e9) {
		t.Error("BE power should not depend on load")
	}
}

func TestBEPowerOvershootsXapianHeadroom(t *testing.T) {
	// The Fig. 2 motivation: with xapian at 10% load on its minimal
	// allocation, every BE app running uncapped on the spare 11 cores and
	// 18 ways pushes the server beyond the provisioned capacity, and graph
	// is the worst offender.
	cat := MustDefaults()
	xapian, _ := cat.ByName("xapian")
	cfg := machine.XeonE52650()
	lcAlloc := machine.Alloc{Cores: 1, Ways: 2, FreqGHz: 2.2, Duty: 1}
	spare := machine.Alloc{Cores: 11, Ways: 18, FreqGHz: 2.2, Duty: 1}
	load := 0.10 * xapian.PeakLoad
	base := cfg.IdlePowerW + xapian.Power(lcAlloc, load)
	var graphTotal, lstmTotal float64
	for _, be := range cat.BE() {
		total := base + be.Power(spare, 0)
		if total <= xapian.ProvisionedPowerW {
			t.Errorf("%s: colocated power %.1f W does not overshoot %v W cap", be.Name, total, xapian.ProvisionedPowerW)
		}
		switch be.Name {
		case "graph":
			graphTotal = total
		case "lstm":
			lstmTotal = total
		}
	}
	if graphTotal <= lstmTotal {
		t.Errorf("graph (%.1f W) should draw more than lstm (%.1f W)", graphTotal, lstmTotal)
	}
}

func TestClassString(t *testing.T) {
	if LatencyCritical.String() != "latency-critical" || BestEffort.String() != "best-effort" {
		t.Error("unexpected Class strings")
	}
	if Class(42).String() == "" {
		t.Error("unknown class should still render")
	}
	cat := MustDefaults()
	s, _ := cat.ByName("lstm")
	if s.String() == "" {
		t.Error("Spec.String should render")
	}
}

func TestCalibrateErrors(t *testing.T) {
	cfg := machine.XeonE52650()
	bad := Spec{Name: "bad", Class: LatencyCritical, AlphaCores: 0.5, AlphaWays: 0.5, PeakLoad: 0}
	if err := bad.calibrate(cfg); err == nil {
		t.Error("expected error for zero peak load")
	}
	bad = Spec{Name: "bad", Class: LatencyCritical, AlphaCores: 0, AlphaWays: 0.5, PeakLoad: 10}
	if err := bad.calibrate(cfg); err == nil {
		t.Error("expected error for zero exponent")
	}
	bad = Spec{Name: "bad", Class: Class(9), AlphaCores: 0.5, AlphaWays: 0.5, PeakLoad: 10}
	if err := bad.calibrate(cfg); err == nil {
		t.Error("expected error for unknown class")
	}
	bad = Spec{Name: "bad", Class: LatencyCritical, AlphaCores: 0.5, AlphaWays: 0.5, PeakLoad: 10}
	if err := bad.calibrate(machine.Config{}); err == nil {
		t.Error("expected error for invalid machine config")
	}
}

func TestMaxLoadWithSlackInvertsLatency(t *testing.T) {
	// Property: loading any allocation to exactly MaxLoadWithSlack(s)
	// produces a p99 of exactly (1−s)·SLO.
	cat := MustDefaults()
	for _, name := range []string{"img-dnn", "sphinx", "xapian", "tpcc"} {
		s, err := cat.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, alloc := range []machine.Alloc{
			{Cores: 2, Ways: 3, FreqGHz: 2.2, Duty: 1},
			{Cores: 6, Ways: 10, FreqGHz: 1.8, Duty: 1},
			{Cores: 12, Ways: 20, FreqGHz: 2.2, Duty: 1},
		} {
			for _, slack := range []float64{0, 0.10, 0.25} {
				load := s.MaxLoadWithSlack(alloc, slack)
				if load <= 0 {
					t.Fatalf("%s: no load sustainable at %v", name, alloc)
				}
				want := (1 - slack) * s.SLO.P99Ms
				if got := s.P99(alloc, load); math.Abs(got-want)/want > 1e-9 {
					t.Errorf("%s %v slack %v: p99 %v, want %v", name, alloc, slack, got, want)
				}
			}
		}
		// Degenerate slack values.
		if got := s.MaxLoadWithSlack(machine.Alloc{Cores: 2, Ways: 2, FreqGHz: 2.2, Duty: 1}, 0.9); got != 0 {
			t.Errorf("%s: slack beyond the latency floor should be unreachable, got %v", name, got)
		}
		neg := s.MaxLoadWithSlack(machine.Alloc{Cores: 2, Ways: 2, FreqGHz: 2.2, Duty: 1}, -1)
		zero := s.MaxLoadWithSlack(machine.Alloc{Cores: 2, Ways: 2, FreqGHz: 2.2, Duty: 1}, 0)
		if math.Abs(neg-zero) > 1e-9 {
			t.Errorf("%s: negative slack should clamp to zero", name)
		}
	}
}

func TestDefaultsCalibrateOnCustomPlatform(t *testing.T) {
	// The catalog calibrates to whatever platform it is given; a larger
	// machine must still hit the Table II peaks at ITS full allocation.
	big := machine.Config{
		Name:         "big-box",
		Cores:        24,
		LLCWays:      32,
		LLCMB:        60,
		MemoryGB:     512,
		StorageGB:    960,
		MinFreqGHz:   1.0,
		MaxFreqGHz:   3.0,
		FreqStepGHz:  0.1,
		IdlePowerW:   70,
		ActivePowerW: 250,
	}
	cat, err := Defaults(big)
	if err != nil {
		t.Fatal(err)
	}
	full := big.Full()
	for _, s := range cat.LC() {
		if got := s.MaxLoadSLO(full); math.Abs(got-s.PeakLoad)/s.PeakLoad > 1e-9 {
			t.Errorf("%s: peak %v on the big box, want %v", s.Name, got, s.PeakLoad)
		}
		// Peak power still matches the Table II target (dynamic part is
		// provisioned − the platform's own idle floor).
		dyn := s.Power(full, s.PeakLoad)
		if want := s.ProvisionedPowerW - big.IdlePowerW; math.Abs(dyn-want) > 0.5 {
			t.Errorf("%s: peak dynamic %v, want %v", s.Name, dyn, want)
		}
	}
	for _, s := range cat.BE() {
		if got := s.Throughput(full); math.Abs(got-s.PeakLoad)/s.PeakLoad > 1e-9 {
			t.Errorf("%s: throughput %v on the big box, want %v", s.Name, got, s.PeakLoad)
		}
	}
	// Preferences are platform-independent by construction.
	xapian, err := cat.ByName("xapian")
	if err != nil {
		t.Fatal(err)
	}
	if c, _ := xapian.PreferenceTruth(); math.Abs(c-0.33) > 1e-6 {
		t.Errorf("xapian preference %v on the big box, want 0.33", c)
	}
}
