package workload

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"pocolo/internal/machine"
)

func TestCatalogExportLoadRoundTrip(t *testing.T) {
	cfg := machine.XeonE52650()
	orig := MustDefaults()
	var buf bytes.Buffer
	if err := ExportCatalog(&buf, orig); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCatalog(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.LC()) != 4 || len(loaded.BE()) != 4 {
		t.Fatalf("loaded %d LC, %d BE", len(loaded.LC()), len(loaded.BE()))
	}
	full := cfg.Full()
	for _, name := range orig.Names() {
		a, err := orig.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.ByName(name)
		if err != nil {
			t.Fatalf("round trip lost %s: %v", name, err)
		}
		// The calibrated behaviour must be identical.
		if math.Abs(a.Capacity(full)-b.Capacity(full))/a.Capacity(full) > 1e-9 {
			t.Errorf("%s: capacity diverged: %v vs %v", name, a.Capacity(full), b.Capacity(full))
		}
		if math.Abs(a.Power(full, a.PeakLoad)-b.Power(full, b.PeakLoad)) > 1e-6 {
			t.Errorf("%s: power diverged", name)
		}
		ac, _ := a.PreferenceTruth()
		bc, _ := b.PreferenceTruth()
		if math.Abs(ac-bc) > 1e-9 {
			t.Errorf("%s: preference diverged: %v vs %v", name, ac, bc)
		}
		if a.Class != b.Class || a.SLO != b.SLO {
			t.Errorf("%s: metadata diverged", name)
		}
	}
}

func TestLoadCatalogCustomApplication(t *testing.T) {
	// A user-defined two-app catalog: a cache-loving search service and a
	// core-hungry batch encoder.
	data := `{
	  "format": "pocolo-catalog/v1",
	  "applications": [
	    {"name": "search", "class": "latency-critical", "domain": "search",
	     "alphaCores": 0.5, "alphaWays": 0.5, "freqExp": 0.9,
	     "etaCores": 0.1, "etaWays": 0.05, "powerKappa": 0.08,
	     "peakLoad": 5000, "sloP95Ms": 5, "sloP99Ms": 9,
	     "provisionedPowerW": 160, "prefCores": 0.3, "prefWays": 0.7},
	    {"name": "encoder", "class": "best-effort", "domain": "media",
	     "alphaCores": 0.8, "alphaWays": 0.2, "freqExp": 0.95,
	     "etaCores": 0.05, "etaWays": 0.05, "powerKappa": 0.08,
	     "peakLoad": 100, "fullDynamicPowerW": 120,
	     "prefCores": 0.75, "prefWays": 0.25}
	  ]
	}`
	cfg := machine.XeonE52650()
	cat, err := LoadCatalog(strings.NewReader(data), cfg)
	if err != nil {
		t.Fatal(err)
	}
	search, err := cat.ByName("search")
	if err != nil {
		t.Fatal(err)
	}
	full := cfg.Full()
	if got := search.MaxLoadSLO(full); math.Abs(got-5000)/5000 > 1e-9 {
		t.Errorf("search peak = %v, want 5000", got)
	}
	if got := search.Power(full, 5000); math.Abs(got-110) > 0.5 { // 160 − 50 idle
		t.Errorf("search peak dynamic power = %v, want 110", got)
	}
	if c, _ := search.PreferenceTruth(); math.Abs(c-0.3) > 1e-9 {
		t.Errorf("search preference = %v, want 0.3", c)
	}
	encoder, err := cat.ByName("encoder")
	if err != nil {
		t.Fatal(err)
	}
	if got := encoder.Throughput(full); math.Abs(got-100)/100 > 1e-9 {
		t.Errorf("encoder throughput = %v, want 100", got)
	}
	if got := encoder.Power(full, 0); math.Abs(got-120) > 0.5 {
		t.Errorf("encoder full dynamic power = %v, want 120", got)
	}
}

func TestLoadCatalogValidation(t *testing.T) {
	cfg := machine.XeonE52650()
	lc := `{"name":"a","class":"latency-critical","alphaCores":0.5,"alphaWays":0.5,"freqExp":0.9,"peakLoad":100,"sloP95Ms":1,"sloP99Ms":2,"provisionedPowerW":150,"prefCores":0.5,"prefWays":0.5}`
	cases := []struct {
		name string
		data string
	}{
		{"garbage", "nope"},
		{"wrong format", `{"format":"x","applications":[]}`},
		{"empty", `{"format":"pocolo-catalog/v1","applications":[]}`},
		{"unknown field", `{"format":"pocolo-catalog/v1","applications":[],"x":1}`},
		{"no name", `{"format":"pocolo-catalog/v1","applications":[{"class":"best-effort"}]}`},
		{"dup name", `{"format":"pocolo-catalog/v1","applications":[` + lc + `,` + lc + `]}`},
		{"bad class", `{"format":"pocolo-catalog/v1","applications":[{"name":"a","class":"middling","alphaCores":0.5,"alphaWays":0.5,"peakLoad":1,"prefCores":0.5,"prefWays":0.5}]}`},
		{"no pref", `{"format":"pocolo-catalog/v1","applications":[{"name":"a","class":"best-effort","alphaCores":0.5,"alphaWays":0.5,"peakLoad":1,"fullDynamicPowerW":50}]}`},
		{"lc no slo", `{"format":"pocolo-catalog/v1","applications":[{"name":"a","class":"latency-critical","alphaCores":0.5,"alphaWays":0.5,"peakLoad":1,"provisionedPowerW":150,"prefCores":0.5,"prefWays":0.5}]}`},
		{"lc power under idle", `{"format":"pocolo-catalog/v1","applications":[{"name":"a","class":"latency-critical","alphaCores":0.5,"alphaWays":0.5,"peakLoad":1,"sloP95Ms":1,"sloP99Ms":2,"provisionedPowerW":40,"prefCores":0.5,"prefWays":0.5}]}`},
		{"be no power", `{"format":"pocolo-catalog/v1","applications":[{"name":"a","class":"best-effort","alphaCores":0.5,"alphaWays":0.5,"peakLoad":1,"prefCores":0.5,"prefWays":0.5}]}`},
		{"zero alpha", `{"format":"pocolo-catalog/v1","applications":[{"name":"a","class":"best-effort","alphaCores":0,"alphaWays":0.5,"peakLoad":1,"fullDynamicPowerW":50,"prefCores":0.5,"prefWays":0.5}]}`},
	}
	for _, c := range cases {
		if _, err := LoadCatalog(strings.NewReader(c.data), cfg); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	// Bad machine config.
	if _, err := LoadCatalog(strings.NewReader(`{}`), machine.Config{}); err == nil {
		t.Error("expected error for invalid machine")
	}
	// Export of an empty catalog.
	var buf bytes.Buffer
	if err := ExportCatalog(&buf, nil); err == nil {
		t.Error("expected error exporting nil catalog")
	}
}
