package workload

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestTwoPeakTrace(t *testing.T) {
	tp, err := NewTwoPeakTrace(0.1, 0.5, 0.9, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if tp.Duration() != 24*time.Hour {
		t.Errorf("Duration = %v", tp.Duration())
	}
	// Trough at cycle start, peaks at 40% and 80%, sag at 60%.
	day := 24 * time.Hour
	at := func(frac float64) float64 {
		return tp.LoadFraction(time.Duration(float64(day) * frac))
	}
	if got := at(0.05); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("trough = %v, want 0.1", got)
	}
	if got := at(0.40); math.Abs(got-0.9) > 1e-9 {
		t.Errorf("first peak = %v, want 0.9", got)
	}
	if got := at(0.60); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("sag = %v, want 0.5", got)
	}
	if got := at(0.80); math.Abs(got-0.9) > 1e-9 {
		t.Errorf("second peak = %v, want 0.9", got)
	}
	// Bounded and periodic.
	for frac := 0.0; frac < 2; frac += 0.01 {
		v := at(frac)
		if v < 0.1-1e-9 || v > 0.9+1e-9 {
			t.Fatalf("frac %v: load %v out of band", frac, v)
		}
	}
	if math.Abs(at(0.25)-at(1.25)) > 1e-9 {
		t.Error("trace not periodic")
	}
	if tp.String() == "" {
		t.Error("String should render")
	}
}

func TestTwoPeakValidation(t *testing.T) {
	cases := []struct{ lo, mid, hi float64 }{
		{-0.1, 0.5, 0.9},
		{0.1, 0.05, 0.9},
		{0.1, 0.95, 0.9},
		{0.1, 0.5, 1.1},
	}
	for _, c := range cases {
		if _, err := NewTwoPeakTrace(c.lo, c.mid, c.hi, time.Hour); err == nil {
			t.Errorf("NewTwoPeakTrace(%v, %v, %v): expected error", c.lo, c.mid, c.hi)
		}
	}
	if _, err := NewTwoPeakTrace(0.1, 0.5, 0.9, 0); err == nil {
		t.Error("expected error for zero period")
	}
}

func TestFlashCrowdTrace(t *testing.T) {
	f, err := NewFlashCrowdTrace(0.2, 0.9, 30*time.Second, 20*time.Second, 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.LoadFraction(10 * time.Second); got != 0.2 {
		t.Errorf("before spike: %v", got)
	}
	// Mid-ramp: between base and spike.
	if got := f.LoadFraction(31 * time.Second); got <= 0.2 || got >= 0.9 {
		t.Errorf("on ramp: %v", got)
	}
	if got := f.LoadFraction(40 * time.Second); got != 0.9 {
		t.Errorf("during spike: %v", got)
	}
	if got := f.LoadFraction(55 * time.Second); got != 0.2 {
		t.Errorf("after spike: %v", got)
	}
	if f.Duration() != 2*time.Minute {
		t.Errorf("Duration = %v", f.Duration())
	}
	if f.String() == "" {
		t.Error("String should render")
	}
}

func TestFlashCrowdValidation(t *testing.T) {
	if _, err := NewFlashCrowdTrace(0.9, 0.2, time.Second, time.Second, time.Minute); err == nil {
		t.Error("expected error when spike below base")
	}
	if _, err := NewFlashCrowdTrace(-0.1, 0.9, time.Second, time.Second, time.Minute); err == nil {
		t.Error("expected error for negative base")
	}
	if _, err := NewFlashCrowdTrace(0.2, 0.9, time.Minute, time.Minute, time.Minute); err == nil {
		t.Error("expected error when spike exceeds span")
	}
}

func TestNoisyTrace(t *testing.T) {
	inner, err := NewConstantTrace(0.5)
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNoisyTrace(inner, 0.1, time.Second, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic per slot.
	a := n.LoadFraction(1500 * time.Millisecond)
	b := n.LoadFraction(1700 * time.Millisecond)
	if a != b {
		t.Error("same slot should give same jitter")
	}
	// Different slots differ (with overwhelming probability).
	c := n.LoadFraction(2500 * time.Millisecond)
	if a == c {
		t.Error("different slots should jitter differently")
	}
	// Bounded and centered.
	sum := 0.0
	count := 0
	for s := 0; s < 2000; s++ {
		v := n.LoadFraction(time.Duration(s) * time.Second)
		if v < 0 || v > 1 {
			t.Fatalf("slot %d: load %v out of [0,1]", s, v)
		}
		sum += v
		count++
	}
	if mean := sum / float64(count); math.Abs(mean-0.5) > 0.02 {
		t.Errorf("noisy mean %v drifted from 0.5", mean)
	}
	if n.Duration() != inner.Duration() {
		t.Error("Duration should defer to inner")
	}
	if n.String() == "" {
		t.Error("String should render")
	}
	// Zero noise passes through exactly.
	zero, err := NewNoisyTrace(inner, 0, time.Second, 7)
	if err != nil {
		t.Fatal(err)
	}
	if zero.LoadFraction(time.Second) != 0.5 {
		t.Error("zero noise should pass through")
	}
}

func TestNoisyTraceValidation(t *testing.T) {
	inner, _ := NewConstantTrace(0.5)
	if _, err := NewNoisyTrace(nil, 0.1, time.Second, 1); err == nil {
		t.Error("expected error for nil inner")
	}
	if _, err := NewNoisyTrace(inner, 0.9, time.Second, 1); err == nil {
		t.Error("expected error for absurd noise")
	}
	if _, err := NewNoisyTrace(inner, 0.1, 0, 1); err == nil {
		t.Error("expected error for zero interval")
	}
}

func TestReplayTrace(t *testing.T) {
	rt, err := NewReplayTrace("prod", []time.Duration{0, 10 * time.Second, 20 * time.Second}, []float64{0.2, 0.8, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if got := rt.LoadFraction(0); got != 0.2 {
		t.Errorf("t=0: %v", got)
	}
	if got := rt.LoadFraction(5 * time.Second); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("t=5s: %v, want interpolated 0.5", got)
	}
	if got := rt.LoadFraction(10 * time.Second); got != 0.8 {
		t.Errorf("t=10s: %v", got)
	}
	if got := rt.LoadFraction(15 * time.Second); math.Abs(got-0.6) > 1e-9 {
		t.Errorf("t=15s: %v, want 0.6", got)
	}
	// Wraps after the span.
	if got := rt.LoadFraction(25 * time.Second); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("t=25s (wrapped to 5s): %v", got)
	}
	if rt.Duration() != 20*time.Second {
		t.Errorf("Duration = %v", rt.Duration())
	}
	if !strings.Contains(rt.String(), "prod") {
		t.Errorf("String = %q", rt.String())
	}
}

func TestReplayValidation(t *testing.T) {
	if _, err := NewReplayTrace("x", []time.Duration{0}, []float64{0.5}); err == nil {
		t.Error("expected error for single point")
	}
	if _, err := NewReplayTrace("x", []time.Duration{0, time.Second}, []float64{0.5}); err == nil {
		t.Error("expected error for length mismatch")
	}
	if _, err := NewReplayTrace("x", []time.Duration{time.Second, time.Second}, []float64{0.5, 0.5}); err == nil {
		t.Error("expected error for non-increasing offsets")
	}
	if _, err := NewReplayTrace("x", []time.Duration{0, time.Second}, []float64{0.5, 1.5}); err == nil {
		t.Error("expected error for out-of-range load")
	}
	if _, err := NewReplayTrace("x", []time.Duration{-time.Second, time.Second}, []float64{0.5, 0.5}); err == nil {
		t.Error("expected error for negative start")
	}
}

func TestParseCSVTrace(t *testing.T) {
	csvData := "seconds,load\n0,0.1\n30,0.5\n60,0.9\n"
	rt, err := ParseCSVTrace("csv", strings.NewReader(csvData))
	if err != nil {
		t.Fatal(err)
	}
	if rt.Duration() != time.Minute {
		t.Errorf("Duration = %v", rt.Duration())
	}
	if got := rt.LoadFraction(45 * time.Second); math.Abs(got-0.7) > 1e-9 {
		t.Errorf("t=45s: %v, want 0.7", got)
	}
	// Headerless CSV also parses.
	rt2, err := ParseCSVTrace("csv", strings.NewReader("0,0.2\n10,0.4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if rt2.LoadFraction(0) != 0.2 {
		t.Error("headerless parse broken")
	}
	// Garbage rows rejected.
	if _, err := ParseCSVTrace("csv", strings.NewReader("0,0.2\nbad,row\n")); err == nil {
		t.Error("expected error for non-numeric data row")
	}
	if _, err := ParseCSVTrace("csv", strings.NewReader("only-header,row\n")); err == nil {
		t.Error("expected error when no data rows remain")
	}
	if _, err := ParseCSVTrace("csv", strings.NewReader("0,0.2,extra\n")); err == nil {
		t.Error("expected error for wrong column count")
	}
}

func TestParseCSVTraceErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		csv  string
	}{
		{"non-numeric seconds", "0,0.2\nten,0.4\n"},
		{"non-numeric load", "0,0.2\n10,high\n"},
		{"non-numeric row past header", "seconds,load\n0,0.2\nbad,row\n"},
		{"wrong column count", "0,0.2\n10,0.4,0.6\n"},
		{"missing load column", "0\n10\n"},
		{"empty input", ""},
		{"header only", "seconds,load\n"},
		{"single data point", "0,0.2\n"},
		{"decreasing seconds", "0,0.2\n20,0.4\n10,0.6\n"},
		{"repeated seconds", "0,0.2\n10,0.4\n10,0.6\n"},
		{"negative start", "-5,0.2\n10,0.4\n"},
		{"load above one", "0,0.2\n10,1.4\n"},
		{"negative load", "0,-0.2\n10,0.4\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseCSVTrace("csv", strings.NewReader(tc.csv)); err == nil {
				t.Errorf("ParseCSVTrace accepted %q", tc.csv)
			}
		})
	}
}

func TestTracesSatisfyInterface(t *testing.T) {
	inner, _ := NewConstantTrace(0.5)
	noisy, _ := NewNoisyTrace(inner, 0.05, time.Second, 1)
	twoPeak, _ := NewTwoPeakTrace(0.1, 0.5, 0.9, time.Hour)
	flash, _ := NewFlashCrowdTrace(0.2, 0.9, time.Second, time.Second, time.Minute)
	replay, _ := NewReplayTrace("r", []time.Duration{0, time.Second}, []float64{0.1, 0.2})
	for _, tr := range []Trace{noisy, twoPeak, flash, replay} {
		if tr.LoadFraction(0) < 0 || tr.LoadFraction(0) > 1 {
			t.Errorf("%v: load out of range", tr)
		}
		if tr.Duration() <= 0 {
			t.Errorf("%v: non-positive duration", tr)
		}
	}
}
