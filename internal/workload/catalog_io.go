package workload

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"pocolo/internal/machine"
)

// A catalog can be defined outside the source tree: the JSON form carries
// the same calibration inputs the built-in Defaults uses (Cobb-Douglas
// shape, contention, latency targets, power targets, and the indirect
// preference vector), and loading calibrates the ground-truth models
// against a platform exactly like the built-in applications. This is how a
// user points Pocolo's simulation at their own application mix.

// catalogFile is the on-disk envelope.
type catalogFile struct {
	Format       string     `json:"format"`
	Applications []specJSON `json:"applications"`
}

// specJSON is the serialized calibration input for one application.
type specJSON struct {
	Name   string `json:"name"`
	Class  string `json:"class"` // "latency-critical" or "best-effort"
	Domain string `json:"domain,omitempty"`

	AlphaCores float64 `json:"alphaCores"`
	AlphaWays  float64 `json:"alphaWays"`
	FreqExp    float64 `json:"freqExp"`
	EtaCores   float64 `json:"etaCores"`
	EtaWays    float64 `json:"etaWays"`
	PowerKappa float64 `json:"powerKappa"`

	PeakLoad float64 `json:"peakLoad"`

	// PrefCores/PrefWays is the target indirect preference vector
	// (normalized; performance per watt shares).
	PrefCores float64 `json:"prefCores"`
	PrefWays  float64 `json:"prefWays"`

	// Latency-critical fields.
	SLOP95Ms          float64 `json:"sloP95Ms,omitempty"`
	SLOP99Ms          float64 `json:"sloP99Ms,omitempty"`
	ProvisionedPowerW float64 `json:"provisionedPowerW,omitempty"`

	// Best-effort field: saturated dynamic power on the full machine.
	FullDynamicPowerW float64 `json:"fullDynamicPowerW,omitempty"`
}

// catalogFormatMarker identifies the envelope and its major revision.
const catalogFormatMarker = "pocolo-catalog/v1"

// LoadCatalog reads a JSON application catalog and calibrates it against
// the platform.
func LoadCatalog(r io.Reader, cfg machine.Config) (*Catalog, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var file catalogFile
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&file); err != nil {
		return nil, fmt.Errorf("workload: decoding catalog: %w", err)
	}
	if file.Format != catalogFormatMarker {
		return nil, fmt.Errorf("workload: unknown catalog format %q (want %q)", file.Format, catalogFormatMarker)
	}
	if len(file.Applications) == 0 {
		return nil, errors.New("workload: catalog has no applications")
	}
	cat := &Catalog{byName: make(map[string]*Spec), ref: cfg}
	for i, sj := range file.Applications {
		if sj.Name == "" {
			return nil, fmt.Errorf("workload: application %d has no name", i)
		}
		if _, dup := cat.byName[sj.Name]; dup {
			return nil, fmt.Errorf("workload: duplicate application %q", sj.Name)
		}
		if sj.PrefCores <= 0 || sj.PrefWays <= 0 {
			return nil, fmt.Errorf("workload: %s: preference shares must be positive", sj.Name)
		}
		base := Spec{
			Name:       sj.Name,
			Domain:     sj.Domain,
			AlphaCores: sj.AlphaCores,
			AlphaWays:  sj.AlphaWays,
			FreqExp:    sj.FreqExp,
			EtaCores:   sj.EtaCores,
			EtaWays:    sj.EtaWays,
			PowerKappa: sj.PowerKappa,
			PeakLoad:   sj.PeakLoad,
		}
		var spec *Spec
		var err error
		switch sj.Class {
		case "latency-critical":
			if sj.SLOP99Ms <= 0 || sj.SLOP95Ms <= 0 {
				return nil, fmt.Errorf("workload: %s: latency-critical apps need positive SLOs", sj.Name)
			}
			if sj.ProvisionedPowerW <= cfg.IdlePowerW {
				return nil, fmt.Errorf("workload: %s: provisioned power %v W does not clear the %v W idle floor", sj.Name, sj.ProvisionedPowerW, cfg.IdlePowerW)
			}
			base.SLO = SLO{P95Ms: sj.SLOP95Ms, P99Ms: sj.SLOP99Ms}
			base.ProvisionedPowerW = sj.ProvisionedPowerW
			spec, err = lcSpec(cfg, base, sj.PrefCores, sj.PrefWays)
		case "best-effort":
			if sj.FullDynamicPowerW <= 0 {
				return nil, fmt.Errorf("workload: %s: best-effort apps need a positive fullDynamicPowerW", sj.Name)
			}
			spec, err = beSpec(cfg, base, sj.PrefCores, sj.PrefWays, sj.FullDynamicPowerW)
		default:
			return nil, fmt.Errorf("workload: %s: unknown class %q", sj.Name, sj.Class)
		}
		if err != nil {
			return nil, fmt.Errorf("workload: %s: %w", sj.Name, err)
		}
		switch spec.Class {
		case LatencyCritical:
			cat.lc = append(cat.lc, spec)
		case BestEffort:
			cat.be = append(cat.be, spec)
		}
		cat.byName[spec.Name] = spec
	}
	return cat, nil
}

// ExportCatalog writes the catalog's calibration inputs as JSON, so a
// built-in or programmatically built catalog can be saved, edited, and
// reloaded.
func ExportCatalog(w io.Writer, cat *Catalog) error {
	if cat == nil || len(cat.byName) == 0 {
		return errors.New("workload: nothing to export")
	}
	cfg := cat.ref
	file := catalogFile{Format: catalogFormatMarker}
	for _, spec := range append(cat.LC(), cat.BE()...) {
		prefC, prefW := spec.PreferenceTruth()
		sj := specJSON{
			Name:       spec.Name,
			Domain:     spec.Domain,
			AlphaCores: spec.AlphaCores,
			AlphaWays:  spec.AlphaWays,
			FreqExp:    spec.FreqExp,
			EtaCores:   spec.EtaCores,
			EtaWays:    spec.EtaWays,
			PowerKappa: spec.PowerKappa,
			PeakLoad:   spec.PeakLoad,
			PrefCores:  prefC,
			PrefWays:   prefW,
		}
		switch spec.Class {
		case LatencyCritical:
			sj.Class = "latency-critical"
			sj.SLOP95Ms = spec.SLO.P95Ms
			sj.SLOP99Ms = spec.SLO.P99Ms
			sj.ProvisionedPowerW = spec.ProvisionedPowerW
		case BestEffort:
			sj.Class = "best-effort"
			// Recover the full-machine dynamic power from the calibrated
			// coefficients (the inverse of powerCoefficients).
			c := float64(cfg.Cores)
			ways := float64(cfg.LLCWays)
			sj.FullDynamicPowerW = spec.PowerPerCoreW*c*(1+spec.PowerKappa) + spec.PowerPerWayW*ways
		default:
			return fmt.Errorf("workload: %s: unknown class %v", spec.Name, spec.Class)
		}
		file.Applications = append(file.Applications, sj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(file)
}
