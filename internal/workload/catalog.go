package workload

import (
	"fmt"
	"sort"

	"pocolo/internal/machine"
)

// Catalog holds the calibrated application specs for one platform.
type Catalog struct {
	lc     []*Spec
	be     []*Spec
	byName map[string]*Spec
	ref    machine.Config
}

// powerCoefficients derives the ground-truth per-core and per-way power
// coefficients from two calibration targets: the total dynamic power the
// application draws on the full machine (Table II peak power minus the
// platform idle floor) and the way-to-core power ratio r = pw/pc implied by
// the paper's published indirect-utility preference vectors.
func powerCoefficients(cfg machine.Config, fullDynamicW, wayToCore, kappa float64) (pc, pw float64) {
	c := float64(cfg.Cores)
	w := float64(cfg.LLCWays)
	pc = fullDynamicW / (c*(1+kappa) + w*wayToCore)
	pw = wayToCore * pc
	return pc, pw
}

// wayToCoreRatio solves pw/pc from a direct-preference pair (αc, αw) and an
// indirect-preference target (prefC, prefW): prefC/prefW = (αc/pc)/(αw/pw).
func wayToCoreRatio(alphaC, alphaW, prefC, prefW float64) float64 {
	return (prefC / prefW) * (alphaW / alphaC)
}

// lcSpec builds one latency-critical spec and calibrates it.
func lcSpec(cfg machine.Config, s Spec, prefC, prefW float64) (*Spec, error) {
	s.Class = LatencyCritical
	r := wayToCoreRatio(s.AlphaCores, s.AlphaWays, prefC, prefW)
	s.PowerPerCoreW, s.PowerPerWayW = powerCoefficients(cfg, s.ProvisionedPowerW-cfg.IdlePowerW, r, s.PowerKappa)
	if err := s.calibrate(cfg); err != nil {
		return nil, err
	}
	return &s, nil
}

// beSpec builds one best-effort spec and calibrates it. fullDynamicW is the
// app's saturated dynamic power on the full machine.
func beSpec(cfg machine.Config, s Spec, prefC, prefW, fullDynamicW float64) (*Spec, error) {
	s.Class = BestEffort
	r := wayToCoreRatio(s.AlphaCores, s.AlphaWays, prefC, prefW)
	s.PowerPerCoreW, s.PowerPerWayW = powerCoefficients(cfg, fullDynamicW, r, s.PowerKappa)
	if err := s.calibrate(cfg); err != nil {
		return nil, err
	}
	return &s, nil
}

// Defaults builds the paper's eight applications calibrated against the
// given platform. Targets:
//
//   - Table II peaks, SLOs, and provisioned powers for the LC apps;
//   - the Section V-C indirect preference vectors (sphinx 0.2:0.8 cores:ways,
//     LSTM 0.13:0.87, Graph 0.8:0.2) plus complementary vectors for the rest
//     so the published Fig. 14 placement (Graph→sphinx, LSTM→img-dnn,
//     RNN/Pbzip→{xapian, TPC-C}) is the optimum;
//   - Fig. 2/3 power behaviour: all BE apps overshoot an off-peak xapian
//     server's capacity, with LSTM/RNN barely power-limited and Graph the
//     most power-hungry.
func Defaults(cfg machine.Config) (*Catalog, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var lcs []*Spec

	imgdnn, err := lcSpec(cfg, Spec{
		Name:              "img-dnn",
		Domain:            "image recognition",
		AlphaCores:        0.50,
		AlphaWays:         0.50,
		FreqExp:           0.90,
		EtaCores:          0.10,
		EtaWays:           0.06,
		PowerKappa:        0.08,
		PeakLoad:          3500,
		SLO:               SLO{P95Ms: 10, P99Ms: 20},
		ProvisionedPowerW: 133,
	}, 0.70, 0.30)
	if err != nil {
		return nil, err
	}
	lcs = append(lcs, imgdnn)

	sphinx, err := lcSpec(cfg, Spec{
		Name:              "sphinx",
		Domain:            "speech recognition",
		AlphaCores:        0.60,
		AlphaWays:         0.40,
		FreqExp:           0.85,
		EtaCores:          0.08,
		EtaWays:           0.10,
		PowerKappa:        0.10,
		PeakLoad:          10,
		SLO:               SLO{P95Ms: 1800, P99Ms: 3030},
		ProvisionedPowerW: 182,
	}, 0.20, 0.80)
	if err != nil {
		return nil, err
	}
	lcs = append(lcs, sphinx)

	xapian, err := lcSpec(cfg, Spec{
		Name:              "xapian",
		Domain:            "web search",
		AlphaCores:        0.55,
		AlphaWays:         0.45,
		FreqExp:           0.90,
		EtaCores:          0.12,
		EtaWays:           0.08,
		PowerKappa:        0.08,
		PeakLoad:          4000,
		SLO:               SLO{P95Ms: 2.588, P99Ms: 4.020},
		ProvisionedPowerW: 154,
	}, 0.33, 0.67)
	if err != nil {
		return nil, err
	}
	lcs = append(lcs, xapian)

	tpcc, err := lcSpec(cfg, Spec{
		Name:              "tpcc",
		Domain:            "persistent database",
		AlphaCores:        0.50,
		AlphaWays:         0.50,
		FreqExp:           0.70,
		EtaCores:          0.15,
		EtaWays:           0.10,
		PowerKappa:        0.06,
		PeakLoad:          8000,
		SLO:               SLO{P95Ms: 51, P99Ms: 707},
		ProvisionedPowerW: 133,
	}, 0.40, 0.60)
	if err != nil {
		return nil, err
	}
	lcs = append(lcs, tpcc)

	var bes []*Spec

	lstm, err := beSpec(cfg, Spec{
		Name:       "lstm",
		Domain:     "deep learning training",
		AlphaCores: 0.32,
		AlphaWays:  0.68,
		FreqExp:    0.75,
		EtaCores:   0.06,
		EtaWays:    0.12,
		PowerKappa: 0.08,
		PeakLoad:   100,
	}, 0.13, 0.87, 109)
	if err != nil {
		return nil, err
	}
	bes = append(bes, lstm)

	rnn, err := beSpec(cfg, Spec{
		Name:       "rnn",
		Domain:     "deep learning training",
		AlphaCores: 0.60,
		AlphaWays:  0.40,
		FreqExp:    0.80,
		EtaCores:   0.08,
		EtaWays:    0.08,
		PowerKappa: 0.08,
		PeakLoad:   100,
	}, 0.55, 0.45, 109)
	if err != nil {
		return nil, err
	}
	bes = append(bes, rnn)

	graph, err := beSpec(cfg, Spec{
		Name:       "graph",
		Domain:     "graph analytics",
		AlphaCores: 0.75,
		AlphaWays:  0.25,
		FreqExp:    0.60,
		EtaCores:   0.14,
		EtaWays:    0.05,
		PowerKappa: 0.12,
		PeakLoad:   100,
	}, 0.80, 0.20, 150)
	if err != nil {
		return nil, err
	}
	bes = append(bes, graph)

	pbzip, err := beSpec(cfg, Spec{
		Name:       "pbzip",
		Domain:     "compression",
		AlphaCores: 0.70,
		AlphaWays:  0.30,
		FreqExp:    0.95,
		EtaCores:   0.05,
		EtaWays:    0.05,
		PowerKappa: 0.08,
		PeakLoad:   100,
	}, 0.60, 0.40, 117)
	if err != nil {
		return nil, err
	}
	bes = append(bes, pbzip)

	cat := &Catalog{lc: lcs, be: bes, byName: make(map[string]*Spec), ref: cfg}
	for _, s := range lcs {
		cat.byName[s.Name] = s
	}
	for _, s := range bes {
		cat.byName[s.Name] = s
	}
	return cat, nil
}

// MustDefaults is Defaults on the Table I platform; it panics on error and
// is intended for tests and examples.
func MustDefaults() *Catalog {
	c, err := Defaults(machine.XeonE52650())
	if err != nil {
		panic(err)
	}
	return c
}

// LC returns the latency-critical specs in stable order
// (img-dnn, sphinx, xapian, tpcc).
func (c *Catalog) LC() []*Spec { return append([]*Spec(nil), c.lc...) }

// BE returns the best-effort specs in stable order
// (lstm, rnn, graph, pbzip).
func (c *Catalog) BE() []*Spec { return append([]*Spec(nil), c.be...) }

// Ref returns the platform configuration the catalog was calibrated for.
func (c *Catalog) Ref() machine.Config { return c.ref }

// ByName looks up a spec by its name.
func (c *Catalog) ByName(name string) (*Spec, error) {
	s, ok := c.byName[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown application %q (have %v)", name, c.Names())
	}
	return s, nil
}

// Names returns all application names in sorted order.
func (c *Catalog) Names() []string {
	names := make([]string, 0, len(c.byName))
	for n := range c.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
