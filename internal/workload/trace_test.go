package workload

import (
	"math"
	"testing"
	"time"
)

func TestDiurnalTrace(t *testing.T) {
	d, err := NewDiurnalTrace(0.1, 0.9, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if d.Duration() != 24*time.Hour {
		t.Errorf("Duration = %v", d.Duration())
	}
	minSeen, maxSeen := 1.0, 0.0
	for h := 0; h < 48; h++ {
		v := d.LoadFraction(time.Duration(h) * time.Hour)
		if v < 0.1-1e-9 || v > 0.9+1e-9 {
			t.Errorf("hour %d: load %v outside [0.1, 0.9]", h, v)
		}
		if v < minSeen {
			minSeen = v
		}
		if v > maxSeen {
			maxSeen = v
		}
	}
	if minSeen > 0.11 || maxSeen < 0.89 {
		t.Errorf("diurnal range not covered: [%v, %v]", minSeen, maxSeen)
	}
	// Peak at PeakAt fraction of the period.
	peak := d.LoadFraction(12 * time.Hour)
	if math.Abs(peak-0.9) > 1e-9 {
		t.Errorf("peak at mid-cycle = %v, want 0.9", peak)
	}
	trough := d.LoadFraction(0)
	if math.Abs(trough-0.1) > 1e-9 {
		t.Errorf("trough at start = %v, want 0.1", trough)
	}
	// Periodicity.
	if math.Abs(d.LoadFraction(3*time.Hour)-d.LoadFraction(27*time.Hour)) > 1e-9 {
		t.Error("trace not periodic")
	}
	if d.String() == "" {
		t.Error("String should render")
	}
}

func TestDiurnalValidation(t *testing.T) {
	cases := []struct {
		low, high float64
		period    time.Duration
	}{
		{-0.1, 0.9, time.Hour},
		{0.1, 1.1, time.Hour},
		{0.9, 0.1, time.Hour},
		{0.1, 0.9, 0},
	}
	for _, c := range cases {
		if _, err := NewDiurnalTrace(c.low, c.high, c.period); err == nil {
			t.Errorf("NewDiurnalTrace(%v, %v, %v): expected error", c.low, c.high, c.period)
		}
	}
}

func TestUniformSweep(t *testing.T) {
	s := UniformSweep(10 * time.Second)
	if len(s.Levels) != 9 {
		t.Fatalf("levels = %v", s.Levels)
	}
	if s.Levels[0] != 0.1 || s.Levels[8] != 0.9 {
		t.Errorf("levels = %v", s.Levels)
	}
	if s.Duration() != 90*time.Second {
		t.Errorf("Duration = %v", s.Duration())
	}
	// First dwell at 10%, second at 20%, wraps after the last.
	if got := s.LoadFraction(0); got != 0.1 {
		t.Errorf("t=0: %v", got)
	}
	if got := s.LoadFraction(15 * time.Second); got != 0.2 {
		t.Errorf("t=15s: %v", got)
	}
	if got := s.LoadFraction(95 * time.Second); got != 0.1 {
		t.Errorf("t=95s (wrapped): %v", got)
	}
	if s.String() == "" {
		t.Error("String should render")
	}
}

func TestSweepValidation(t *testing.T) {
	if _, err := NewSweepTrace(nil, time.Second); err == nil {
		t.Error("expected error for empty levels")
	}
	if _, err := NewSweepTrace([]float64{1.5}, time.Second); err == nil {
		t.Error("expected error for out-of-range level")
	}
	if _, err := NewSweepTrace([]float64{0.5}, 0); err == nil {
		t.Error("expected error for zero dwell")
	}
}

func TestConstantTrace(t *testing.T) {
	c, err := NewConstantTrace(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if c.LoadFraction(0) != 0.1 || c.LoadFraction(time.Hour) != 0.1 {
		t.Error("constant trace should be constant")
	}
	if c.Duration() <= 0 {
		t.Error("Duration should be positive")
	}
	if _, err := NewConstantTrace(-0.1); err == nil {
		t.Error("expected error for negative level")
	}
	if _, err := NewConstantTrace(1.1); err == nil {
		t.Error("expected error for level > 1")
	}
	if c.String() == "" {
		t.Error("String should render")
	}
}

func TestStepTrace(t *testing.T) {
	s, err := NewStepTrace(0.5, 0.8, 30*time.Second, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.LoadFraction(10 * time.Second); got != 0.5 {
		t.Errorf("before step: %v", got)
	}
	if got := s.LoadFraction(45 * time.Second); got != 0.8 {
		t.Errorf("after step: %v", got)
	}
	if s.Duration() != time.Minute {
		t.Errorf("Duration = %v", s.Duration())
	}
	if s.String() == "" {
		t.Error("String should render")
	}
	if _, err := NewStepTrace(-1, 0.5, time.Second, time.Minute); err == nil {
		t.Error("expected error for bad levels")
	}
	if _, err := NewStepTrace(0.5, 0.8, time.Minute, time.Second); err == nil {
		t.Error("expected error for span before step")
	}
}
