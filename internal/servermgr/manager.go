// Package servermgr implements the paper's server-level resource manager
// (Section IV-C). Once per second it sizes the primary latency-critical
// application's allocation for the current load — the power-optimized
// manager (POM) walks the fitted Cobb-Douglas model's least-power
// configurations, while the baseline walks the indifference curve without
// differentiating resources by power, as the Heracles-style feedback
// controller does. Spare resources go to the best-effort co-runner. Every
// 100 ms a power capper compares the power-meter reading against the
// provisioned capacity and throttles the best-effort application — per-core
// DVFS first, CPU duty-cycling second — to keep the server inside its
// budget.
package servermgr

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"pocolo/internal/machine"
	"pocolo/internal/obs"
	"pocolo/internal/sim"
	"pocolo/internal/trace"
	"pocolo/internal/utility"
	"pocolo/internal/workload"
)

// LCPolicy selects how the manager picks the primary application's
// allocation among the feasible (SLO-preserving) configurations.
type LCPolicy int

const (
	// PowerUnaware picks the feasible allocation holding the fewest
	// resources overall, without regard to its power draw — the paper's
	// baseline ("resources are not differentiated by their power use").
	PowerUnaware LCPolicy = iota
	// PowerOptimized picks the feasible allocation drawing the least
	// power under the fitted model — the POM policy.
	PowerOptimized
)

// String implements fmt.Stringer.
func (p LCPolicy) String() string {
	switch p {
	case PowerUnaware:
		return "power-unaware"
	case PowerOptimized:
		return "power-optimized"
	default:
		return fmt.Sprintf("LCPolicy(%d)", int(p))
	}
}

// Config assembles a manager for one host.
type Config struct {
	// Host is the managed server; required.
	Host *sim.Host
	// Model is the fitted utility model of the host's LC application;
	// required (both policies search its feasible set; only POM uses its
	// power coefficients).
	Model *utility.Model
	// Policy selects the LC allocation strategy (default PowerUnaware).
	Policy LCPolicy
	// TargetSlack is the minimum relative p99 slack the controller defends
	// (default 0.10, the paper's guard).
	TargetSlack float64
	// Headroom inflates the model's load target to absorb model error
	// (default 1.05).
	Headroom float64
	// ControlPeriod is the LC allocation loop period (default 1 s).
	ControlPeriod time.Duration
	// CapPeriod is the power-capper period (default 100 ms).
	CapPeriod time.Duration
	// CapGuard is the relative hysteresis band under the cap within which
	// the capper neither throttles nor restores (default 0.03).
	CapGuard float64
	// Seed drives the power-unaware baseline's arbitrary choice among
	// feasible allocations; POM ignores it. Ignored when Rand is set.
	Seed int64
	// Rand, when non-nil, is the random source the manager uses instead of
	// deriving one from Seed. Each manager must get its own *rand.Rand —
	// the source is not locked, so sharing one across concurrently ticking
	// managers would race.
	Rand *rand.Rand
	// BEModels optionally maps co-runner names to their fitted utility
	// models. With two or more co-runners on the host, the manager uses
	// them to split the spare resources spatially (the paper's Section
	// V-G extension); without models the spare is split evenly.
	BEModels map[string]*utility.Model
	// DutyFirst reverses the power capper's knob order: duty-cycling
	// before frequency scaling. The paper's order (frequency first) is the
	// default; the ablation experiments exercise both.
	DutyFirst bool
	// PlannerOff disables the precomputed allocation planner, forcing
	// every control tick through the exact per-tick grid search. Results
	// are bit-identical either way (the planner's equivalence guarantee);
	// the switch exists as an escape hatch and to keep the exact search
	// exercised in tests.
	PlannerOff bool
	// Plans, when non-nil, is the plan cache to resolve the allocation
	// planner from; nil uses the process-wide utility.Plans. Sharing one
	// cache across managers amortizes plan construction across every
	// host/trial evaluating the same (model, caps) pair.
	Plans *utility.PlanCache
	// Tracer, when non-nil, receives one ControlDecision per control tick,
	// one CapAction per capper knob movement, and tick-phase spans. A nil
	// tracer disables tracing at the cost of a nil check per site.
	Tracer *trace.Tracer
	// Obs, when non-nil, receives per-phase tick duration histograms
	// (pocolo_obs_manager_tick_seconds{phase="control"|"cap"}). The
	// histograms merge across managers, giving fleet-wide phase timing.
	Obs *obs.Registry
}

// Manager runs the two control loops for one host.
type Manager struct {
	host  *sim.Host
	model *utility.Model

	policy        LCPolicy
	targetSlack   float64
	headroom      float64
	controlPeriod time.Duration
	capPeriod     time.Duration
	capGuard      float64

	// boost is the feedback integrator: extra resource units granted on
	// top of the model's allocation when observed slack runs low.
	boost int
	// lcFreq is the primary's current DVFS setting (POM trims it when
	// slack is abundant).
	lcFreq float64
	// beFreq/beDuty are the capper's throttle state, applied uniformly to
	// the host's whole best-effort partition.
	beFreq float64
	beDuty float64
	// beModels and dutyFirst configure the multi-co-runner spare split and
	// the capper knob order.
	beModels  map[string]*utility.Model
	dutyFirst bool
	// activeBE, when non-empty, restricts the spare resources to a single
	// co-runner (the temporal-sharing scheduler's hook); the others idle.
	activeBE string
	// beParked, when set, withholds the spare resources from every
	// co-runner — the control plane's eviction state for a server whose
	// best-effort tenant has been migrated elsewhere.
	beParked bool
	// capOverrideW replaces the host's provisioned capacity as the capper's
	// budget when positive — the hook a cluster-level power budgeter uses
	// to assign dynamic per-server budgets.
	capOverrideW float64
	// rng drives the baseline's arbitrary frontier choice.
	rng *rand.Rand

	// lastTarget is the load target the previous control tick sized the
	// allocation for; violations observed at an unchanged target mean the
	// sizing itself is wrong, not merely stale.
	lastTarget float64

	// plan is the precomputed allocation planner for (model, machine caps);
	// nil means the exact per-tick grid search (PlannerOff, or plan
	// construction failed). planCell is the frontier cell the previous
	// lookup landed in (-1 none) — the warm start: when the target stays
	// inside the same quantization cell the answer is reused in O(1).
	plan     *utility.Plan
	plans    *utility.PlanCache
	planCell int
	caps     [2]int

	// Scratch buffers reused across ticks: the grid scans in feasibleAlloc
	// and bestPairSplit run every control period on every host and must not
	// allocate per candidate.
	vecA, vecB [2]float64
	frontier   []utility.GridPoint
	splitA     splitTables
	splitB     splitTables

	// tracer records decisions and tick-phase spans (nil = disabled);
	// lastPath remembers which search path served the latest
	// feasibleAlloc call so ControlTick can stamp it on the decision
	// event.
	tracer   *trace.Tracer
	lastPath string

	// tick-phase duration histograms (nil = disabled, zero cost)
	obsControl *obs.Histogram
	obsCap     *obs.Histogram

	// counters for introspection and tests
	controlTicks int
	capThrottles int
	capRestores  int
	// beThrottles/beRestores count capper interventions that actually
	// moved a knob, unlike capThrottles/capRestores which also count
	// over/under-budget ticks with the knobs already at their limits.
	beThrottles  int
	beRestores   int
	plannerHits  int
	plannerWarm  int
	planFallback int
}

const maxBoost = 4

// DutyFloor is the lowest duty cycle the power capper will impose on the
// best-effort partition. At the floor (and at the platform's minimum
// frequency) the capper has exhausted its knobs; the invariant harness
// treats sustained over-cap power beyond that point as physics, not a
// controller bug.
const DutyFloor = 0.05

const dutyFloor = DutyFloor

// New validates the configuration and builds a manager.
func New(cfg Config) (*Manager, error) {
	if cfg.Host == nil {
		return nil, errors.New("servermgr: nil host")
	}
	if cfg.Model == nil {
		return nil, errors.New("servermgr: nil utility model")
	}
	if err := cfg.Model.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Model.Alpha) != 2 {
		return nil, fmt.Errorf("servermgr: need a 2-resource (cores, ways) model, have %d", len(cfg.Model.Alpha))
	}
	m := &Manager{
		host:          cfg.Host,
		model:         cfg.Model,
		policy:        cfg.Policy,
		targetSlack:   cfg.TargetSlack,
		headroom:      cfg.Headroom,
		controlPeriod: cfg.ControlPeriod,
		capPeriod:     cfg.CapPeriod,
		capGuard:      cfg.CapGuard,
		lcFreq:        cfg.Host.Machine().MaxFreqGHz,
		beFreq:        cfg.Host.Machine().MaxFreqGHz,
		beDuty:        1,
		beModels:      cfg.BEModels,
		dutyFirst:     cfg.DutyFirst,
		rng:           cfg.Rand,
		tracer:        cfg.Tracer,
	}
	if cfg.Obs != nil {
		m.obsControl = cfg.Obs.Histogram("pocolo_obs_manager_tick_seconds",
			"Wall-clock duration of server-manager ticks by phase.",
			obs.Label{Key: "phase", Value: "control"})
		m.obsCap = cfg.Obs.Histogram("pocolo_obs_manager_tick_seconds",
			"Wall-clock duration of server-manager ticks by phase.",
			obs.Label{Key: "phase", Value: "cap"})
	}
	if m.rng == nil {
		m.rng = rand.New(rand.NewSource(cfg.Seed))
	}
	if m.targetSlack == 0 {
		m.targetSlack = 0.10
	}
	if m.targetSlack < 0 || m.targetSlack >= 0.5 {
		return nil, fmt.Errorf("servermgr: target slack %v outside [0, 0.5)", m.targetSlack)
	}
	if m.headroom == 0 {
		m.headroom = 1.05
	}
	if m.headroom < 1 || m.headroom > 2 {
		return nil, fmt.Errorf("servermgr: headroom %v outside [1, 2]", m.headroom)
	}
	if m.controlPeriod == 0 {
		m.controlPeriod = time.Second
	}
	if m.capPeriod == 0 {
		m.capPeriod = 100 * time.Millisecond
	}
	if m.controlPeriod <= 0 || m.capPeriod <= 0 {
		return nil, errors.New("servermgr: control periods must be positive")
	}
	if m.capGuard == 0 {
		m.capGuard = 0.03
	}
	if m.capGuard < 0 || m.capGuard > 0.2 {
		return nil, fmt.Errorf("servermgr: cap guard %v outside [0, 0.2]", m.capGuard)
	}
	mc := cfg.Host.Machine()
	m.caps = [2]int{mc.Cores, mc.LLCWays}
	m.planCell = -1
	if !cfg.PlannerOff {
		m.plans = cfg.Plans
		if m.plans == nil {
			m.plans = utility.Plans
		}
		m.rebindPlan()
	}
	return m, nil
}

// rebindPlan resolves the planner for the current (model, caps) pair from
// the cache. A construction failure (hostile model, oversized grid) leaves
// the plan nil and the manager on the exact search — never an error.
func (m *Manager) rebindPlan() {
	m.plan = nil
	m.planCell = -1
	if m.plans == nil {
		return
	}
	if plan, err := m.plans.Get(m.model, m.caps[:]); err == nil {
		m.plan = plan
	}
}

// Attach registers the manager's control loops on the engine and applies
// an initial allocation.
func (m *Manager) Attach(e *sim.Engine) error {
	if e == nil {
		return errors.New("servermgr: nil engine")
	}
	m.ControlTick(e.Now())
	if err := e.Every(m.controlPeriod, m.ControlTick); err != nil {
		return err
	}
	return e.Every(m.capPeriod, m.CapTick)
}

// feasibleAlloc picks the LC allocation for the load target according to
// the policy. Returns false when no allocation within the machine meets
// the target (the controller then grants the full machine).
func (m *Manager) feasibleAlloc(target float64) (cores, ways int, ok bool) {
	cfg := m.host.Machine()
	switch m.policy {
	case PowerOptimized:
		if m.plan != nil {
			// Planner path: O(1) warm-start re-check of last tick's cell,
			// O(log cells) binary search otherwise. Bit-identical to the
			// exact search below.
			c, w, cell, feasible := m.plan.MinPower2(target, m.planCell)
			if feasible && cell == m.planCell {
				m.plannerWarm++
				m.lastPath = trace.PathPlannerWarm
			} else {
				m.plannerHits++
				m.lastPath = trace.PathPlannerHit
			}
			m.planCell = cell
			return c, w, feasible
		}
		m.planFallback++
		m.lastPath = trace.PathExact
		alloc, err := m.model.IntegerMinPowerAlloc(target, m.caps[:])
		if err != nil {
			return 0, 0, false
		}
		return alloc[0], alloc[1], true
	default:
		// Power-unaware: any point on the feasible frontier of the
		// indifference curve — the paper's baseline does not differentiate
		// resources by their power use, so the choice among minimal
		// feasible allocations is arbitrary (uniformly random here). The
		// planner reproduces the same frontier from its precomputed perf
		// tables, so the RNG draw (and thus the whole run) is unchanged.
		if m.plan != nil {
			m.plannerHits++
			m.lastPath = trace.PathPlannerHit
			m.frontier = m.plan.AppendUnawareFrontier(target, m.frontier[:0])
		} else {
			m.planFallback++
			m.lastPath = trace.PathExact
			frontier := m.frontier[:0]
			for c := 1; c <= cfg.Cores; c++ {
				w := -1
				m.vecA[0] = float64(c)
				for cand := 1; cand <= cfg.LLCWays; cand++ {
					m.vecA[1] = float64(cand)
					if m.model.Perf(m.vecA[:]) >= target {
						w = cand
						break
					}
				}
				if w == -1 {
					continue
				}
				// Drop dominated points: a frontier point must not use both
				// more cores and at least as many ways as a previous one.
				if n := len(frontier); n > 0 && frontier[n-1].W == w {
					continue
				}
				frontier = append(frontier, utility.GridPoint{C: c, W: w})
			}
			m.frontier = frontier
		}
		if len(m.frontier) == 0 {
			return 0, 0, false
		}
		p := m.frontier[m.rng.Intn(len(m.frontier))]
		return p.C, p.W, true
	}
}

// ControlTick runs one iteration of the 1 s LC allocation loop.
func (m *Manager) ControlTick(now time.Time) {
	if m.obsControl != nil {
		start := time.Now()
		defer func() { m.obsControl.ObserveDuration(time.Since(start)) }()
	}
	sp := m.tracer.StartSpan("control_tick")
	m.controlTicks++
	cfg := m.host.Machine()
	load := m.host.OfferedLoad()
	slack := m.host.Slack()
	m.tracer.ObserveSlack(slack)

	// Feedback integrator: starve → boost, comfortable → relax. The model
	// target already encodes the slack guard (profiling measured max load
	// AT the guard), so boost only corrects residual model error. An
	// outright SLO violation jumps the boost to its maximum at once — the
	// paper's manager "quickly changes the allocation configuration" on a
	// significant slack change rather than creeping toward it.
	if m.controlTicks > 1 {
		switch {
		case slack < 0 && sameTarget(load*m.headroom, m.lastTarget):
			// Still violating at the operating point the previous tick
			// already sized for: the model is off here, jump straight to
			// the maximum correction ("quickly changes the allocation
			// configuration"). A violation right after a load change is
			// just staleness — the per-tick resize below handles it.
			m.boost = maxBoost
		case slack < m.targetSlack && m.boost < maxBoost:
			m.boost++
		case slack > m.targetSlack+0.15 && m.boost > 0:
			m.boost--
		}
	}

	target := load * m.headroom
	m.lastTarget = target
	var cores, ways int
	feasible := false
	if target <= 0 {
		// No load observed yet (cold start): keep the primary safe with
		// the full machine until the first real observation arrives.
		cores, ways = cfg.Cores, cfg.LLCWays
		m.lastPath = trace.PathColdStart
	} else if c, w, ok := m.feasibleAlloc(target); ok {
		cores, ways = c, w
		feasible = true
	} else {
		cores, ways = cfg.Cores, cfg.LLCWays
		m.lastPath = trace.PathFullMachine
	}
	cores = clampInt(cores+m.boost, 1, cfg.Cores)
	ways = clampInt(ways+m.boost, 1, cfg.LLCWays)

	// LC frequency: POM trims the clock when slack is abundant and snaps
	// back when it tightens; the baseline always runs at max.
	if m.policy == PowerOptimized && m.controlTicks > 1 {
		switch {
		case slack < m.targetSlack+0.10:
			m.lcFreq = cfg.MaxFreqGHz
		case slack > m.targetSlack+0.30 && m.lcFreq > cfg.MinFreqGHz:
			m.lcFreq = cfg.ClampFreq(m.lcFreq - cfg.FreqStepGHz)
		}
	} else if m.policy != PowerOptimized {
		m.lcFreq = cfg.MaxFreqGHz
	}

	m.apply(cores, ways)
	m.tracer.ControlDecision(now, trace.ControlDecision{
		Tick: m.controlTicks, Load: load, Target: target, SlackIn: slack,
		Boost: m.boost, Cores: cores, Ways: ways, FreqGHz: m.lcFreq,
		Path: m.lastPath, Feasible: feasible,
	})
	sp.End(now)
}

// apply installs the LC allocation and hands every remaining resource to
// the best-effort co-runner(s), preserving the capper's throttle state.
func (m *Manager) apply(lcCores, lcWays int) {
	srv := m.host.Server()
	lc := m.host.LC().Name
	bes := m.host.BEs()
	// Release the co-runners first so the primary's grant can always be
	// satisfied (the primary has absolute priority).
	for _, be := range bes {
		_ = srv.SetCores(be.Name, 0)
		_ = srv.SetWays(be.Name, 0)
	}
	_ = srv.SetAlloc(lc, machine.Alloc{Cores: lcCores, Ways: lcWays, FreqGHz: m.lcFreq, Duty: 1})
	if len(bes) == 0 {
		return
	}
	freeCores, freeWays := srv.Free()
	for name, a := range m.splitSpare(bes, freeCores, freeWays) {
		if a.Cores == 0 && a.Ways == 0 {
			continue
		}
		a.FreqGHz = m.beFreq
		a.Duty = m.beDuty
		_ = srv.SetAlloc(name, a)
	}
}

// splitSpare distributes the spare resources among the co-runners:
// everything to the single co-runner (or the temporal scheduler's active
// one); for two spatially-shared co-runners, the split maximizing the
// model-estimated combined throughput under the power headroom; otherwise
// an even split.
func (m *Manager) splitSpare(bes []*workload.Spec, freeCores, freeWays int) map[string]machine.Alloc {
	out := make(map[string]machine.Alloc, len(bes))
	if m.beParked {
		for _, be := range bes {
			out[be.Name] = machine.Alloc{}
		}
		return out
	}
	if m.activeBE != "" {
		for _, be := range bes {
			if be.Name == m.activeBE {
				out[be.Name] = machine.Alloc{Cores: freeCores, Ways: freeWays}
			} else {
				out[be.Name] = machine.Alloc{}
			}
		}
		return out
	}
	switch len(bes) {
	case 1:
		out[bes[0].Name] = machine.Alloc{Cores: freeCores, Ways: freeWays}
	case 2:
		a, b := m.beModels[bes[0].Name], m.beModels[bes[1].Name]
		if a != nil && b != nil && a.Validate() == nil && b.Validate() == nil {
			c1, w1 := m.bestPairSplit(a, b, freeCores, freeWays)
			out[bes[0].Name] = machine.Alloc{Cores: c1, Ways: w1}
			out[bes[1].Name] = machine.Alloc{Cores: freeCores - c1, Ways: freeWays - w1}
			return out
		}
		fallthrough
	default:
		// Even split, remainder to the earlier co-runners.
		n := len(bes)
		for i, be := range bes {
			c := freeCores / n
			w := freeWays / n
			if i < freeCores%n {
				c++
			}
			if i < freeWays%n {
				w++
			}
			out[be.Name] = machine.Alloc{Cores: c, Ways: w}
		}
	}
	return out
}

// splitTables caches one co-runner model's per-axis terms for the pair
// split: perfC[c] = α₀·c^α₁ and perfW[w] = w^α₂, so Perf((c,w)) =
// perfC[c]·perfW[w] multiplies in exactly Model.Perf's order (left to
// right over resources) and every score is bit-identical to the direct
// call; likewise dynC[c]+dynW[w] sums the dynamic-power terms in
// Model.DynamicPower's order. Filling the tables costs O(cores+ways) Pow
// calls per tick instead of O(cores·ways) in the split loop.
type splitTables struct {
	perfC, perfW, dynC, dynW []float64
}

func (t *splitTables) fill(mod *utility.Model, maxC, maxW int) {
	t.perfC = t.perfC[:0]
	t.perfW = t.perfW[:0]
	t.dynC = t.dynC[:0]
	t.dynW = t.dynW[:0]
	for c := 0; c <= maxC; c++ {
		t.perfC = append(t.perfC, mod.Alpha0*math.Pow(float64(c), mod.Alpha[0]))
		t.dynC = append(t.dynC, float64(c)*mod.P[0])
	}
	for w := 0; w <= maxW; w++ {
		t.perfW = append(t.perfW, math.Pow(float64(w), mod.Alpha[1]))
		t.dynW = append(t.dynW, float64(w)*mod.P[1])
	}
}

// perf mirrors Model.Perf, including its zero on any nonpositive input.
func (t *splitTables) perf(c, w int) float64 {
	if c <= 0 || w <= 0 {
		return 0
	}
	return t.perfC[c] * t.perfW[w]
}

func (t *splitTables) dyn(c, w int) float64 {
	return t.dynC[c] + t.dynW[w]
}

// bestPairSplit enumerates integer splits of the spare resources between
// two modelled co-runners, scoring each by the combined Cobb-Douglas
// throughput scaled down when the pair's estimated dynamic power exceeds
// the headroom (the capper would throttle both uniformly). The Pow terms
// are loop-invariant per axis, so they are hoisted into per-axis tables;
// every score still evaluates bit-identically to the direct model calls.
func (m *Manager) bestPairSplit(a, b *utility.Model, freeCores, freeWays int) (cores, ways int) {
	headroom := m.host.CapW() - m.host.Machine().IdlePowerW - m.model.DynamicPower(m.lcAllocVector())
	m.splitA.fill(a, freeCores, freeWays)
	m.splitB.fill(b, freeCores, freeWays)
	bestScore := -1.0
	for c1 := 0; c1 <= freeCores; c1++ {
		for w1 := 0; w1 <= freeWays; w1++ {
			c2, w2 := freeCores-c1, freeWays-w1
			perf := m.splitA.perf(c1, w1) + m.splitB.perf(c2, w2)
			if headroom > 0 {
				if p := m.splitA.dyn(c1, w1) + m.splitB.dyn(c2, w2); p > headroom {
					perf *= headroom / p
				}
			}
			if perf > bestScore {
				bestScore = perf
				cores, ways = c1, w1
			}
		}
	}
	return cores, ways
}

// lcAllocVector returns the primary's current allocation as a model input
// vector.
func (m *Manager) lcAllocVector() []float64 {
	a, err := m.host.Server().Alloc(m.host.LC().Name)
	if err != nil {
		return []float64{0, 0}
	}
	return []float64{float64(a.Cores), float64(a.Ways)}
}

// SetActiveBE restricts the spare resources to a single co-runner (used by
// the temporal-sharing scheduler); an empty name restores sharing among
// all co-runners. The change takes effect immediately.
func (m *Manager) SetActiveBE(name string) error {
	if name != "" {
		found := false
		for _, be := range m.host.BEs() {
			if be.Name == name {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("servermgr: no co-runner %q on host %s", name, m.host.Name())
		}
	}
	m.activeBE = name
	// Re-apply the current split without waiting for the next control
	// tick: job switches should not waste a whole control period.
	if a, err := m.host.Server().Alloc(m.host.LC().Name); err == nil {
		m.apply(a.Cores, a.Ways)
	}
	return nil
}

// ActiveBE returns the co-runner currently granted the spare resources
// exclusively, or "" when all co-runners share.
func (m *Manager) ActiveBE() string { return m.activeBE }

// SetBEParked withholds (parked) or restores (unparked) the spare
// resources for the host's whole best-effort partition. A cluster
// controller parks a server's co-runners after migrating their work
// elsewhere; the primary keeps its allocation either way. The change takes
// effect immediately.
func (m *Manager) SetBEParked(parked bool) {
	if m.beParked == parked {
		return
	}
	m.beParked = parked
	if a, err := m.host.Server().Alloc(m.host.LC().Name); err == nil {
		m.apply(a.Cores, a.Ways)
	}
}

// BEParked reports whether the best-effort partition is parked.
func (m *Manager) BEParked() bool { return m.beParked }

// CapTick runs one iteration of the 100 ms power capper. The throttle
// state is shared by the host's whole best-effort partition: every
// co-runner is clocked and duty-cycled together.
func (m *Manager) CapTick(now time.Time) {
	bes := m.host.BEs()
	if len(bes) == 0 {
		return
	}
	if m.obsCap != nil {
		start := time.Now()
		defer func() { m.obsCap.ObserveDuration(time.Since(start)) }()
	}
	sp := m.tracer.StartFineSpan("cap_tick")
	cfg := m.host.Machine()
	srv := m.host.Server()
	reading := m.host.MeterReading().Watts
	capW := m.CapW()

	throttleFreq := func() bool {
		if m.beFreq <= cfg.MinFreqGHz {
			return false
		}
		m.beFreq = cfg.ClampFreq(m.beFreq - cfg.FreqStepGHz)
		return true
	}
	// The duty cut is proportional to the excess so a large overshoot
	// converges in a few ticks instead of oscillating around the cap.
	throttleDuty := func() bool {
		if m.beDuty <= dutyFloor {
			return false
		}
		cut := math.Max(0.5, capW*(1-m.capGuard/2)/reading)
		m.beDuty = math.Max(dutyFloor, m.beDuty*cut)
		return true
	}
	// The duty restore targets just inside the guard band so it does not
	// immediately re-trip the throttle.
	restoreDuty := func() bool {
		if m.beDuty >= 1 {
			return false
		}
		grow := math.Min(1.1, capW*(1-m.capGuard/2)/reading)
		m.beDuty = math.Min(1, m.beDuty*grow)
		return true
	}
	restoreFreq := func() bool {
		if m.beFreq >= cfg.MaxFreqGHz {
			return false
		}
		m.beFreq = cfg.ClampFreq(m.beFreq + cfg.FreqStepGHz)
		return true
	}

	switch {
	case reading > capW:
		// Over budget: fine knob first (the paper's order is frequency
		// then duty; DutyFirst flips it for the ablation).
		m.capThrottles++
		action := ""
		if m.dutyFirst {
			if throttleDuty() {
				action = trace.ActionThrottleDuty
			} else if throttleFreq() {
				action = trace.ActionThrottleFreq
			}
		} else if throttleFreq() {
			action = trace.ActionThrottleFreq
		} else if throttleDuty() {
			action = trace.ActionThrottleDuty
		}
		if action != "" {
			m.beThrottles++
		} else {
			// Both knobs at their floors: physics, not a controller bug,
			// but worth a trace record — sustained exhaustion is exactly
			// what a power-budget post-mortem looks for.
			action = trace.ActionExhausted
		}
		m.tracer.CapAction(now, trace.CapAction{
			PowerW: reading, CapW: capW, Action: action,
			BEFreqGHz: m.beFreq, BEDuty: m.beDuty,
		})
	case reading < capW*(1-m.capGuard):
		// Comfortable headroom: restore in reverse order.
		m.capRestores++
		action := ""
		if m.dutyFirst {
			if restoreFreq() {
				action = trace.ActionRestoreFreq
			} else if restoreDuty() {
				action = trace.ActionRestoreDuty
			}
		} else if restoreDuty() {
			action = trace.ActionRestoreDuty
		} else if restoreFreq() {
			action = trace.ActionRestoreFreq
		}
		// Fully restored ticks are the idle steady state; recording them
		// would flood the ring with no information, so only actual knob
		// movements produce events here.
		if action != "" {
			m.beRestores++
			m.tracer.CapAction(now, trace.CapAction{
				PowerW: reading, CapW: capW, Action: action,
				BEFreqGHz: m.beFreq, BEDuty: m.beDuty,
			})
		}
	}
	for _, be := range bes {
		if a, err := srv.Alloc(be.Name); err == nil && (a.Cores > 0 || a.Ways > 0) {
			a.FreqGHz = m.beFreq
			a.Duty = m.beDuty
			_ = srv.SetAlloc(be.Name, a)
		}
	}
	sp.End(now)
}

// CapW returns the power budget the capper currently enforces: the
// cluster budgeter's override when set, the host's provisioned capacity
// otherwise.
func (m *Manager) CapW() float64 {
	if m.capOverrideW > 0 {
		return m.capOverrideW
	}
	return m.host.CapW()
}

// SetCapW overrides the capper's power budget (a cluster-level budgeter
// assigning this server a share of a datacenter budget). The budget must
// clear the platform's idle floor; zero clears the override.
func (m *Manager) SetCapW(w float64) error {
	if w == 0 {
		m.capOverrideW = 0
		return nil
	}
	if w <= m.host.Machine().IdlePowerW {
		return fmt.Errorf("servermgr: budget %v W does not clear the %v W idle floor", w, m.host.Machine().IdlePowerW)
	}
	m.capOverrideW = w
	return nil
}

// SetModel swaps the primary application's utility model — the hook the
// online refitting adapter uses when runtime observations produce a better
// fit than the model the manager started with.
func (m *Manager) SetModel(model *utility.Model) error {
	if model == nil {
		return errors.New("servermgr: nil utility model")
	}
	if err := model.Validate(); err != nil {
		return err
	}
	if len(model.Alpha) != 2 {
		return fmt.Errorf("servermgr: need a 2-resource model, have %d", len(model.Alpha))
	}
	m.model = model
	// The plan is model-specific: re-resolve it (or drop to the exact
	// search if the new model defeats plan construction).
	if m.plans != nil {
		m.rebindPlan()
	}
	return nil
}

// Model returns the manager's current utility model for the primary.
func (m *Manager) Model() *utility.Model { return m.model }

// Policy returns the manager's LC policy.
func (m *Manager) Policy() LCPolicy { return m.policy }

// ControlPeriod returns the LC allocation loop period.
func (m *Manager) ControlPeriod() time.Duration { return m.controlPeriod }

// CapPeriod returns the power-capper period.
func (m *Manager) CapPeriod() time.Duration { return m.capPeriod }

// TargetSlack returns the relative p99 slack guard the manager defends.
func (m *Manager) TargetSlack() float64 { return m.targetSlack }

// BEThrottle reports the capper's current frequency and duty setting for
// the co-runner.
func (m *Manager) BEThrottle() (freqGHz, duty float64) { return m.beFreq, m.beDuty }

// Boost returns the feedback integrator's current value.
func (m *Manager) Boost() int { return m.boost }

// Counters returns the number of control ticks, cap throttle actions and
// cap restore actions so far.
func (m *Manager) Counters() (control, throttles, restores int) {
	return m.controlTicks, m.capThrottles, m.capRestores
}

// KnobCounters returns the number of capper interventions that actually
// moved a best-effort knob (DVFS step or duty change), in each
// direction. Unlike Counters' throttle/restore tallies, ticks where the
// knobs were already at their limits are excluded.
func (m *Manager) KnobCounters() (throttles, restores int) {
	return m.beThrottles, m.beRestores
}

// PlannerCounters reports how the control loop's allocation lookups were
// served: hits (planner table lookup, cold cell), warm (warm start — the
// target stayed in the previous tick's quantization cell), and fallbacks
// (exact grid search: planner off or plan construction failed).
func (m *Manager) PlannerCounters() (hits, warm, fallbacks int) {
	return m.plannerHits, m.plannerWarm, m.planFallback
}

// PlannerEnabled reports whether the manager resolved a precomputed plan
// for its current model.
func (m *Manager) PlannerEnabled() bool { return m.plan != nil }

// sameTarget reports whether two load targets describe the same operating
// point (within 10%).
func sameTarget(a, b float64) bool {
	if b <= 0 {
		return false
	}
	return math.Abs(a-b) <= 0.1*b
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
