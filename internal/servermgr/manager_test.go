package servermgr

import (
	"math/rand"
	"testing"
	"time"

	"pocolo/internal/machine"
	"pocolo/internal/profiler"
	"pocolo/internal/sim"
	"pocolo/internal/utility"
	"pocolo/internal/workload"
)

type bench struct {
	host *sim.Host
	mgr  *Manager
	eng  *sim.Engine
}

func fitted(t *testing.T, name string) *utility.Model {
	t.Helper()
	cat := workload.MustDefaults()
	spec, err := cat.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	m, err := profiler.ProfileAndFit(profiler.Config{Spec: spec, Machine: machine.XeonE52650(), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// newBench builds a host running lcName (with beName co-located unless
// empty) under trace, managed with the given policy.
func newBench(t *testing.T, lcName, beName string, trace workload.Trace, policy LCPolicy) *bench {
	t.Helper()
	cat := workload.MustDefaults()
	lc, err := cat.ByName(lcName)
	if err != nil {
		t.Fatal(err)
	}
	var be *workload.Spec
	if beName != "" {
		be, err = cat.ByName(beName)
		if err != nil {
			t.Fatal(err)
		}
	}
	host, err := sim.NewHost(sim.HostConfig{
		Name:    "bench",
		Machine: machine.XeonE52650(),
		LC:      lc,
		BE:      be,
		Trace:   trace,
		Seed:    21,
	})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := New(Config{Host: host, Model: fitted(t, lcName), Policy: policy})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sim.NewEngine(100 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.AddHost(host); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Attach(eng); err != nil {
		t.Fatal(err)
	}
	return &bench{host: host, mgr: mgr, eng: eng}
}

func constTrace(t *testing.T, level float64) workload.Trace {
	t.Helper()
	tr, err := workload.NewConstantTrace(level)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewValidation(t *testing.T) {
	cat := workload.MustDefaults()
	lc, _ := cat.ByName("xapian")
	host, err := sim.NewHost(sim.HostConfig{
		Name: "v", Machine: machine.XeonE52650(), LC: lc, Trace: constTrace(t, 0.5),
	})
	if err != nil {
		t.Fatal(err)
	}
	model := fitted(t, "xapian")
	cases := []struct {
		name string
		cfg  Config
	}{
		{"nil host", Config{Model: model}},
		{"nil model", Config{Host: host}},
		{"bad slack", Config{Host: host, Model: model, TargetSlack: 0.9}},
		{"bad headroom", Config{Host: host, Model: model, Headroom: 3}},
		{"bad guard", Config{Host: host, Model: model, CapGuard: 0.5}},
		{"negative period", Config{Host: host, Model: model, ControlPeriod: -time.Second}},
	}
	for _, c := range cases {
		if _, err := New(c.cfg); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	mgr, err := New(Config{Host: host, Model: model, Policy: PowerOptimized})
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Attach(nil); err == nil {
		t.Error("expected error attaching to nil engine")
	}
	if mgr.Policy() != PowerOptimized {
		t.Error("Policy accessor broken")
	}
	if PowerUnaware.String() == "" || PowerOptimized.String() == "" || LCPolicy(7).String() == "" {
		t.Error("LCPolicy strings should render")
	}
}

func TestPOMMaintainsSLOAtSteadyLoad(t *testing.T) {
	b := newBench(t, "xapian", "rnn", constTrace(t, 0.5), PowerOptimized)
	if err := b.eng.Run(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	m := b.host.Metrics()
	if m.SLOViolFrac > 0.05 {
		t.Errorf("SLO violated %.1f%% of the time", m.SLOViolFrac*100)
	}
	if m.MeanSlack < 0.05 {
		t.Errorf("mean slack = %v, want ≥ 0.05", m.MeanSlack)
	}
	if m.BEOps == 0 {
		t.Error("BE made no progress")
	}
	// The capper must keep the server essentially inside the cap.
	if m.CapOverFrac > 0.10 {
		t.Errorf("over cap %.1f%% of time", m.CapOverFrac*100)
	}
	control, _, _ := b.mgr.Counters()
	if control < 60 {
		t.Errorf("control ticks = %d", control)
	}
}

func TestBaselineMaintainsSLOToo(t *testing.T) {
	b := newBench(t, "img-dnn", "lstm", constTrace(t, 0.4), PowerUnaware)
	if err := b.eng.Run(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	m := b.host.Metrics()
	if m.SLOViolFrac > 0.05 {
		t.Errorf("SLO violated %.1f%% of the time", m.SLOViolFrac*100)
	}
	if m.BEOps == 0 {
		t.Error("BE made no progress")
	}
}

func TestPOMDrawsLessLCPowerThanBaseline(t *testing.T) {
	// The core POM claim: power-optimized management of the SAME workload
	// uses less energy. Run both policies without a co-runner so the
	// difference is purely the LC allocation choice.
	run := func(policy LCPolicy) sim.Metrics {
		b := newBench(t, "sphinx", "", constTrace(t, 0.5), policy)
		if err := b.eng.Run(90 * time.Second); err != nil {
			t.Fatal(err)
		}
		m := b.host.Metrics()
		if m.SLOViolFrac > 0.05 {
			t.Fatalf("%v: SLO violated %.1f%%", policy, m.SLOViolFrac*100)
		}
		return m
	}
	pom := run(PowerOptimized)
	base := run(PowerUnaware)
	if pom.MeanPowerW >= base.MeanPowerW {
		t.Errorf("POM mean power %.1f W not below baseline %.1f W", pom.MeanPowerW, base.MeanPowerW)
	}
	if pom.EnergyKWh >= base.EnergyKWh {
		t.Errorf("POM energy %.4f kWh not below baseline %.4f kWh", pom.EnergyKWh, base.EnergyKWh)
	}
}

func TestCapperThrottlesHungryBE(t *testing.T) {
	// xapian at 10% load leaves huge spare resources; graph uncapped would
	// blow through the 154 W provisioned capacity (Fig. 2). The capper
	// must throttle it.
	b := newBench(t, "xapian", "graph", constTrace(t, 0.1), PowerOptimized)
	if err := b.eng.Run(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	m := b.host.Metrics()
	if m.CapOverFrac > 0.10 {
		t.Errorf("over cap %.1f%% of time despite capper", m.CapOverFrac*100)
	}
	freq, duty := b.mgr.BEThrottle()
	if freq >= machine.XeonE52650().MaxFreqGHz && duty >= 1 {
		t.Error("capper never engaged for a power-hungry co-runner")
	}
	_, throttles, _ := b.mgr.Counters()
	if throttles == 0 {
		t.Error("no throttle actions recorded")
	}
	// Throughput still flows, just throttled below uncapped.
	if m.BEOps == 0 {
		t.Error("graph starved entirely")
	}
}

func TestCapperRestoresWhenHeadroomReturns(t *testing.T) {
	// Step the LC load down mid-run: headroom opens up and the capper
	// should restore the BE app's clocks.
	step, err := workload.NewStepTrace(0.8, 0.1, 30*time.Second, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	b := newBench(t, "xapian", "rnn", step, PowerOptimized)
	if err := b.eng.Run(90 * time.Second); err != nil {
		t.Fatal(err)
	}
	_, _, restores := b.mgr.Counters()
	if restores == 0 {
		t.Error("capper never restored throughput")
	}
}

func TestControllerSurvivesLoadStep(t *testing.T) {
	// 50% → 80% step (the paper's Section II-C reclamation scenario): the
	// manager must reclaim resources from the BE app and keep violations
	// transient.
	step, err := workload.NewStepTrace(0.5, 0.8, 30*time.Second, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	b := newBench(t, "tpcc", "pbzip", step, PowerOptimized)
	if err := b.eng.Run(120 * time.Second); err != nil {
		t.Fatal(err)
	}
	m := b.host.Metrics()
	// Transient violations right after the step are acceptable; sustained
	// violation is not.
	if m.SLOViolFrac > 0.10 {
		t.Errorf("SLO violated %.1f%% of the time across a load step", m.SLOViolFrac*100)
	}
	// After the step the LC allocation must have grown.
	a, err := b.host.Server().Alloc("tpcc")
	if err != nil {
		t.Fatal(err)
	}
	if a.Cores < 2 {
		t.Errorf("LC allocation %v after 80%% load step looks starved", a)
	}
}

func TestBEReceivesAllSpareResources(t *testing.T) {
	b := newBench(t, "xapian", "lstm", constTrace(t, 0.3), PowerOptimized)
	if err := b.eng.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	srv := b.host.Server()
	lcAlloc, err := srv.Alloc("xapian")
	if err != nil {
		t.Fatal(err)
	}
	beAlloc, err := srv.Alloc("lstm")
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.XeonE52650()
	if lcAlloc.Cores+beAlloc.Cores != cfg.Cores {
		t.Errorf("cores unused: lc=%d be=%d", lcAlloc.Cores, beAlloc.Cores)
	}
	if lcAlloc.Ways+beAlloc.Ways != cfg.LLCWays {
		t.Errorf("ways unused: lc=%d be=%d", lcAlloc.Ways, beAlloc.Ways)
	}
}

func TestBEParkWithholdsAndRestoresSpare(t *testing.T) {
	b := newBench(t, "xapian", "lstm", constTrace(t, 0.3), PowerOptimized)
	if err := b.eng.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	srv := b.host.Server()
	if a, err := srv.Alloc("lstm"); err != nil || a.IsZero() {
		t.Fatalf("precondition: lstm should hold spare resources, got %v, %v", a, err)
	}

	b.mgr.SetBEParked(true)
	if !b.mgr.BEParked() {
		t.Error("BEParked should report true")
	}
	// Parking applies immediately, without waiting for a control tick.
	if a, err := srv.Alloc("lstm"); err != nil || !a.IsZero() {
		t.Errorf("parked lstm should hold nothing, got %v, %v", a, err)
	}
	// And it must stick across subsequent control ticks.
	if err := b.eng.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if a, err := srv.Alloc("lstm"); err != nil || !a.IsZero() {
		t.Errorf("parked lstm regained resources across ticks: %v, %v", a, err)
	}
	if b.host.BEThroughput() != 0 {
		t.Errorf("parked BE throughput = %v, want 0", b.host.BEThroughput())
	}

	b.mgr.SetBEParked(false)
	if a, err := srv.Alloc("lstm"); err != nil || a.IsZero() {
		t.Errorf("unparked lstm should regain the spare immediately, got %v, %v", a, err)
	}
}

func TestInjectedRandReproducesBaseline(t *testing.T) {
	// Two baseline managers sharing a seed — one via Seed, one via an
	// injected *rand.Rand from the same source — must pick the same
	// frontier points.
	run := func(inject bool) (int, int) {
		cat := workload.MustDefaults()
		lc, err := cat.ByName("xapian")
		if err != nil {
			t.Fatal(err)
		}
		host, err := sim.NewHost(sim.HostConfig{
			Name:    "bench",
			Machine: machine.XeonE52650(),
			LC:      lc,
			Trace:   constTrace(t, 0.5),
			Seed:    21,
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{Host: host, Model: fitted(t, "xapian"), Policy: PowerUnaware}
		if inject {
			cfg.Rand = rand.New(rand.NewSource(99))
		} else {
			cfg.Seed = 99
		}
		mgr, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := sim.NewEngine(100 * time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.AddHost(host); err != nil {
			t.Fatal(err)
		}
		if err := mgr.Attach(eng); err != nil {
			t.Fatal(err)
		}
		if err := eng.Run(20 * time.Second); err != nil {
			t.Fatal(err)
		}
		a, err := host.Server().Alloc("xapian")
		if err != nil {
			t.Fatal(err)
		}
		return a.Cores, a.Ways
	}
	c1, w1 := run(false)
	c2, w2 := run(true)
	if c1 != c2 || w1 != w2 {
		t.Errorf("seeded (%d, %d) and injected (%d, %d) runs diverged", c1, w1, c2, w2)
	}
}

func TestBoostEngagesWhenModelUnderestimates(t *testing.T) {
	// Force a pessimistic scenario: a model fitted for img-dnn driving
	// xapian. The feedback loop must compensate via boost (or the full
	// machine fallback) and still protect the SLO reasonably.
	cat := workload.MustDefaults()
	lc, _ := cat.ByName("xapian")
	host, err := sim.NewHost(sim.HostConfig{
		Name: "mismatch", Machine: machine.XeonE52650(), LC: lc,
		Trace: constTrace(t, 0.6), Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	wrongModel := fitted(t, "img-dnn")
	mgr, err := New(Config{Host: host, Model: wrongModel, Policy: PowerOptimized})
	if err != nil {
		t.Fatal(err)
	}
	eng, _ := sim.NewEngine(100 * time.Millisecond)
	if err := eng.AddHost(host); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Attach(eng); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	m := host.Metrics()
	// The mismatch costs some violations early, but feedback must pull the
	// system back: require the final state to be healthy.
	if host.Slack() < 0 {
		t.Errorf("final slack %v still negative after 60s of feedback", host.Slack())
	}
	if m.SLOViolFrac > 0.5 {
		t.Errorf("feedback failed to stabilize: violations %.0f%%", m.SLOViolFrac*100)
	}
}
