package servermgr

import (
	"reflect"
	"testing"
	"time"

	"pocolo/internal/machine"
	"pocolo/internal/sim"
	"pocolo/internal/workload"
)

// runManaged builds one managed host (identical seeds and configuration
// apart from plannerOff) and runs it for dur, returning the final metrics
// and the manager for counter inspection.
func runManaged(t *testing.T, policy LCPolicy, plannerOff bool, dur time.Duration) (sim.Metrics, *Manager) {
	t.Helper()
	cat := workload.MustDefaults()
	lc, err := cat.ByName("sphinx")
	if err != nil {
		t.Fatal(err)
	}
	be, err := cat.ByName("pbzip")
	if err != nil {
		t.Fatal(err)
	}
	host, err := sim.NewHost(sim.HostConfig{
		Name:    "golden",
		Machine: machine.XeonE52650(),
		LC:      lc,
		BE:      be,
		Trace:   workload.UniformSweep(2 * time.Second),
		Seed:    21,
	})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := New(Config{
		Host:       host,
		Model:      fitted(t, "sphinx"),
		Policy:     policy,
		Seed:       5,
		PlannerOff: plannerOff,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sim.NewEngine(100 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.AddHost(host); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Attach(eng); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(dur); err != nil {
		t.Fatal(err)
	}
	return host.Metrics(), mgr
}

// TestPlannerGoldenEquivalence is the golden DeepEqual suite: a full
// managed run with the planner must be bit-identical — metrics, final
// allocations, throttle state — to the same run with the exact search,
// for both policies.
func TestPlannerGoldenEquivalence(t *testing.T) {
	for _, policy := range []LCPolicy{PowerOptimized, PowerUnaware} {
		t.Run(policy.String(), func(t *testing.T) {
			dur := workload.UniformSweep(2 * time.Second).Duration()
			mOn, mgrOn := runManaged(t, policy, false, dur)
			mOff, mgrOff := runManaged(t, policy, true, dur)
			if !reflect.DeepEqual(mOn, mOff) {
				t.Fatalf("planner-on metrics differ from planner-off:\non:  %+v\noff: %+v", mOn, mOff)
			}
			fOn, dOn := mgrOn.BEThrottle()
			fOff, dOff := mgrOff.BEThrottle()
			if fOn != fOff || dOn != dOff {
				t.Fatalf("throttle state differs: on (%v, %v), off (%v, %v)", fOn, dOn, fOff, dOff)
			}
			if mgrOn.Boost() != mgrOff.Boost() {
				t.Fatalf("boost differs: on %d, off %d", mgrOn.Boost(), mgrOff.Boost())
			}
		})
	}
}

// TestPlannerCounters checks the counter taxonomy: a planner-enabled run
// serves lookups from the plan (with warm starts once the target settles)
// and never falls back; a planner-off run only falls back.
func TestPlannerCounters(t *testing.T) {
	_, mgrOn := runManaged(t, PowerOptimized, false, 10*time.Second)
	hits, warm, fallbacks := mgrOn.PlannerCounters()
	if !mgrOn.PlannerEnabled() {
		t.Fatal("planner did not resolve for the fitted model")
	}
	if hits == 0 {
		t.Fatalf("planner-on run recorded no hits (hits=%d warm=%d fallbacks=%d)", hits, warm, fallbacks)
	}
	if warm == 0 {
		t.Fatalf("constant-dwell sweep recorded no warm starts (hits=%d warm=%d)", hits, warm)
	}
	if fallbacks != 0 {
		t.Fatalf("planner-on run fell back %d times", fallbacks)
	}

	_, mgrOff := runManaged(t, PowerOptimized, true, 10*time.Second)
	hits, warm, fallbacks = mgrOff.PlannerCounters()
	if mgrOff.PlannerEnabled() {
		t.Fatal("PlannerOff manager still resolved a plan")
	}
	if hits != 0 || warm != 0 {
		t.Fatalf("planner-off run recorded plan lookups (hits=%d warm=%d)", hits, warm)
	}
	if fallbacks == 0 {
		t.Fatal("planner-off run recorded no exact-search fallbacks")
	}
}

// TestSetModelRebindsPlan checks a model swap re-resolves the planner so
// lookups never come from a stale model's tables.
func TestSetModelRebindsPlan(t *testing.T) {
	b := newBench(t, "sphinx", "", constTrace(t, 0.5), PowerOptimized)
	if !b.mgr.PlannerEnabled() {
		t.Fatal("planner did not resolve at construction")
	}
	oldPlan := b.mgr.plan
	next := fitted(t, "img-dnn")
	if err := b.mgr.SetModel(next); err != nil {
		t.Fatal(err)
	}
	if !b.mgr.PlannerEnabled() {
		t.Fatal("planner dropped after model swap")
	}
	if b.mgr.plan == oldPlan {
		t.Fatal("plan not rebuilt after model swap")
	}
	if b.mgr.planCell != -1 {
		t.Fatal("warm-start cell survived a model swap")
	}
	// The rebound plan must answer for the new model: compare one lookup
	// against the direct search.
	cfg := b.host.Machine()
	want, err := next.IntegerMinPowerAlloc(3, []int{cfg.Cores, cfg.LLCWays})
	if err != nil {
		t.Fatal(err)
	}
	c, w, _, ok := b.mgr.plan.MinPower2(3, -1)
	if !ok || c != want[0] || w != want[1] {
		t.Fatalf("rebound plan answered (%d,%d,%v), direct %v", c, w, ok, want)
	}
}

// TestPairSplitTablesMatchDirect checks the hoisted per-axis tables score
// splits bit-identically to the direct model calls.
func TestPairSplitTablesMatchDirect(t *testing.T) {
	for _, name := range []string{"pbzip", "graph"} {
		a := fitted(t, name)
		var tab splitTables
		tab.fill(a, 10, 17)
		vec := make([]float64, 2)
		for c := 0; c <= 10; c++ {
			for w := 0; w <= 17; w++ {
				vec[0], vec[1] = float64(c), float64(w)
				if got, want := tab.perf(c, w), a.Perf(vec); got != want {
					t.Fatalf("%s perf(%d,%d): table %v, direct %v", name, c, w, got, want)
				}
				if got, want := tab.dyn(c, w), a.DynamicPower(vec); got != want {
					t.Fatalf("%s dyn(%d,%d): table %v, direct %v", name, c, w, got, want)
				}
			}
		}
	}
}
