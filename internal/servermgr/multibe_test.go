package servermgr

import (
	"testing"
	"time"

	"pocolo/internal/machine"
	"pocolo/internal/sim"
	"pocolo/internal/utility"
	"pocolo/internal/workload"
)

// newMultiBench builds a host running lcName with two co-runners under a
// constant trace, managed power-optimized, with BE models optionally
// provided for the spatial split.
func newMultiBench(t *testing.T, lcName string, beNames []string, level float64, withModels bool) (*sim.Host, *Manager, *sim.Engine) {
	t.Helper()
	cat := workload.MustDefaults()
	lc, err := cat.ByName(lcName)
	if err != nil {
		t.Fatal(err)
	}
	var bes []*workload.Spec
	for _, n := range beNames {
		be, err := cat.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		bes = append(bes, be)
	}
	host, err := sim.NewHost(sim.HostConfig{
		Name:    "multi",
		Machine: machine.XeonE52650(),
		LC:      lc,
		BE:      bes[0],
		ExtraBE: bes[1:],
		Trace:   constTrace(t, level),
		Seed:    9,
	})
	if err != nil {
		t.Fatal(err)
	}
	var beModels map[string]*utility.Model
	if withModels {
		beModels = make(map[string]*utility.Model)
		for _, n := range beNames {
			beModels[n] = fitted(t, n)
		}
	}
	mgr, err := New(Config{
		Host:     host,
		Model:    fitted(t, lcName),
		Policy:   PowerOptimized,
		BEModels: beModels,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sim.NewEngine(100 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.AddHost(host); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Attach(eng); err != nil {
		t.Fatal(err)
	}
	return host, mgr, eng
}

func TestSpatialSharingBothProgress(t *testing.T) {
	host, _, eng := newMultiBench(t, "sphinx", []string{"graph", "lstm"}, 0.3, true)
	if err := eng.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	m := host.Metrics()
	if m.BEOpsBy["graph"] <= 0 || m.BEOpsBy["lstm"] <= 0 {
		t.Errorf("both co-runners should progress under spatial sharing: %v", m.BEOpsBy)
	}
	if m.SLOViolFrac > 0.05 {
		t.Errorf("SLO violated %.1f%%", m.SLOViolFrac*100)
	}
	if m.CapOverFrac > 0.10 {
		t.Errorf("over cap %.1f%% of time", m.CapOverFrac*100)
	}
	// The model-guided split should lean graph toward cores and lstm
	// toward ways (their preference vectors are near-opposite).
	ga, err := host.Server().Alloc("graph")
	if err != nil {
		t.Fatal(err)
	}
	la, err := host.Server().Alloc("lstm")
	if err != nil {
		t.Fatal(err)
	}
	if ga.Cores <= la.Cores {
		t.Errorf("graph (%v) should hold more cores than lstm (%v)", ga, la)
	}
	// sphinx itself hogs the ways, so compare shapes, not absolutes: lstm's
	// ways-to-cores ratio must exceed graph's.
	lstmRatio := float64(la.Ways) / float64(max(la.Cores, 1))
	graphRatio := float64(ga.Ways) / float64(max(ga.Cores, 1))
	if lstmRatio <= graphRatio {
		t.Errorf("lstm split %v should be way-leaning vs graph %v", la, ga)
	}
}

func TestSpatialSharingEvenSplitWithoutModels(t *testing.T) {
	host, _, eng := newMultiBench(t, "xapian", []string{"rnn", "pbzip"}, 0.3, false)
	if err := eng.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	ra, err := host.Server().Alloc("rnn")
	if err != nil {
		t.Fatal(err)
	}
	pa, err := host.Server().Alloc("pbzip")
	if err != nil {
		t.Fatal(err)
	}
	if diff := ra.Cores - pa.Cores; diff < -1 || diff > 1 {
		t.Errorf("even split broken: rnn %v vs pbzip %v", ra, pa)
	}
	if diff := ra.Ways - pa.Ways; diff < -1 || diff > 1 {
		t.Errorf("even split broken: rnn %v vs pbzip %v", ra, pa)
	}
	m := host.Metrics()
	if m.BEOpsBy["rnn"] <= 0 || m.BEOpsBy["pbzip"] <= 0 {
		t.Errorf("both co-runners should progress: %v", m.BEOpsBy)
	}
}

func TestSetActiveBE(t *testing.T) {
	host, mgr, eng := newMultiBench(t, "xapian", []string{"rnn", "lstm"}, 0.2, true)
	if err := mgr.SetActiveBE("nope"); err == nil {
		t.Error("expected error for unknown co-runner")
	}
	if err := mgr.SetActiveBE("rnn"); err != nil {
		t.Fatal(err)
	}
	if mgr.ActiveBE() != "rnn" {
		t.Errorf("ActiveBE = %q", mgr.ActiveBE())
	}
	if err := eng.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	m := host.Metrics()
	if m.BEOpsBy["rnn"] <= 0 {
		t.Error("active co-runner should progress")
	}
	if m.BEOpsBy["lstm"] > 0 {
		t.Errorf("inactive co-runner progressed: %v", m.BEOpsBy)
	}
	// Switch: the other job takes over immediately.
	if err := mgr.SetActiveBE("lstm"); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	m = host.Metrics()
	if m.BEOpsBy["lstm"] <= 0 {
		t.Error("switched-in co-runner should progress")
	}
	// Clearing restores sharing.
	if err := mgr.SetActiveBE(""); err != nil {
		t.Fatal(err)
	}
	if mgr.ActiveBE() != "" {
		t.Error("ActiveBE should clear")
	}
}

func TestDutyFirstCapperAlsoHoldsCap(t *testing.T) {
	cat := workload.MustDefaults()
	lc, _ := cat.ByName("xapian")
	be, _ := cat.ByName("graph")
	host, err := sim.NewHost(sim.HostConfig{
		Name: "dutyfirst", Machine: machine.XeonE52650(), LC: lc, BE: be,
		Trace: constTrace(t, 0.1), Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := New(Config{Host: host, Model: fitted(t, "xapian"), Policy: PowerOptimized, DutyFirst: true})
	if err != nil {
		t.Fatal(err)
	}
	eng, _ := sim.NewEngine(100 * time.Millisecond)
	if err := eng.AddHost(host); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Attach(eng); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	m := host.Metrics()
	if m.CapOverFrac > 0.10 {
		t.Errorf("duty-first capper left the server over cap %.1f%% of time", m.CapOverFrac*100)
	}
	// Duty must have been the engaged knob (frequency may stay at max).
	freq, duty := mgr.BEThrottle()
	if duty >= 1 && freq >= machine.XeonE52650().MaxFreqGHz {
		t.Error("duty-first capper never engaged")
	}
}
