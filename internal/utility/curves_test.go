package utility

import (
	"math"
	"testing"
)

func TestIndifferenceCurve(t *testing.T) {
	m := fitSynth(t)
	target := 400.0
	pts, err := m.IndifferenceCurve(target, 1, 12, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 12 {
		t.Fatalf("got %d points", len(pts))
	}
	prevY := math.Inf(1)
	for _, p := range pts {
		// Every point is iso-performance.
		if got := m.Perf([]float64{p.X, p.Y}); math.Abs(got-target)/target > 1e-9 {
			t.Errorf("point (%v, %v): perf %v, want %v", p.X, p.Y, got, target)
		}
		// The curve is downward sloping (substitution).
		if p.Y >= prevY {
			t.Errorf("curve not downward sloping at x=%v", p.X)
		}
		prevY = p.Y
	}
}

func TestIndifferenceCurveValidation(t *testing.T) {
	m := fitSynth(t)
	if _, err := m.IndifferenceCurve(0, 1, 12, 10); err == nil {
		t.Error("expected error for zero target")
	}
	if _, err := m.IndifferenceCurve(100, 0, 12, 10); err == nil {
		t.Error("expected error for zero xLo")
	}
	if _, err := m.IndifferenceCurve(100, 5, 4, 10); err == nil {
		t.Error("expected error for inverted range")
	}
	if _, err := m.IndifferenceCurve(100, 1, 12, 1); err == nil {
		t.Error("expected error for n < 2")
	}
	// Wrong dimensionality.
	three := *m
	three.Alpha = []float64{0.3, 0.3, 0.3}
	three.P = []float64{1, 1, 1}
	three.Resources = []string{"a", "b", "c"}
	if _, err := three.IndifferenceCurve(100, 1, 12, 10); err == nil {
		t.Error("expected error for 3-resource model")
	}
}

func TestExpansionPath(t *testing.T) {
	m := fitSynth(t)
	targets := []float64{100, 200, 400}
	pts, err := m.ExpansionPath(targets)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	// The path moves outward with load, and the ratio y/x stays constant
	// for Cobb-Douglas (the expansion path is a ray).
	ratio := pts[0].Y / pts[0].X
	for i := 1; i < len(pts); i++ {
		if pts[i].X <= pts[i-1].X || pts[i].Y <= pts[i-1].Y {
			t.Errorf("path not outward at target %v", targets[i])
		}
		if math.Abs(pts[i].Y/pts[i].X-ratio)/ratio > 1e-9 {
			t.Errorf("expansion path is not a ray: ratio %v vs %v", pts[i].Y/pts[i].X, ratio)
		}
	}
	if _, err := m.ExpansionPath(nil); err == nil {
		t.Error("expected error for no targets")
	}
	three := *m
	three.Alpha = []float64{0.3, 0.3, 0.3}
	if _, err := three.ExpansionPath(targets); err == nil {
		t.Error("expected error for 3-resource model")
	}
}

func TestEdgeworthBox(t *testing.T) {
	m := fitSynth(t)
	targets := []float64{100, 300, 600}
	box, err := EdgeworthBox(m, targets, 12, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(box) != 3 {
		t.Fatalf("got %d box points", len(box))
	}
	for _, b := range box {
		// Complements add to the totals.
		if math.Abs(b.Primary.X+b.Secondary.X-12) > 1e-9 {
			t.Errorf("x complement broken: %v + %v", b.Primary.X, b.Secondary.X)
		}
		if math.Abs(b.Primary.Y+b.Secondary.Y-20) > 1e-9 {
			t.Errorf("y complement broken: %v + %v", b.Primary.Y, b.Secondary.Y)
		}
		if b.Secondary.X < 0 || b.Secondary.Y < 0 {
			t.Errorf("negative spare: %+v", b.Secondary)
		}
	}
	// Higher load → more primary, less spare.
	if box[2].Primary.X <= box[0].Primary.X {
		t.Error("primary allocation should grow with load")
	}
	if box[2].Secondary.X >= box[0].Secondary.X {
		t.Error("spare should shrink with load")
	}
}

func TestEdgeworthBoxValidation(t *testing.T) {
	m := fitSynth(t)
	if _, err := EdgeworthBox(m, []float64{100}, 0, 20); err == nil {
		t.Error("expected error for zero total")
	}
	if _, err := EdgeworthBox(m, nil, 12, 20); err == nil {
		t.Error("expected error for no targets")
	}
	three := *m
	three.Alpha = []float64{0.3, 0.3, 0.3}
	if _, err := EdgeworthBox(&three, []float64{100}, 12, 20); err == nil {
		t.Error("expected error for 3-resource model")
	}
}

func TestIntegerMinPowerAlloc(t *testing.T) {
	m := fitSynth(t)
	target := 400.0
	alloc, err := m.IntegerMinPowerAlloc(target, []int{12, 20})
	if err != nil {
		t.Fatal(err)
	}
	rf := []float64{float64(alloc[0]), float64(alloc[1])}
	if m.Perf(rf) < target {
		t.Errorf("integer alloc %v misses target: %v < %v", alloc, m.Perf(rf), target)
	}
	// Exhaustively verify optimality (the method is itself a scan, so this
	// is a consistency check on the feasibility predicate).
	best := m.DynamicPower(rf)
	for c := 1; c <= 12; c++ {
		for w := 1; w <= 20; w++ {
			r := []float64{float64(c), float64(w)}
			if m.Perf(r) >= target && m.DynamicPower(r) < best-1e-9 {
				t.Fatalf("(%d, %d) is cheaper and feasible", c, w)
			}
		}
	}
	// Integer power is at least the continuous relaxation's power.
	cont, err := m.MinPowerFor(target)
	if err != nil {
		t.Fatal(err)
	}
	if best < cont-1e-9 {
		t.Errorf("integer power %v beats continuous bound %v", best, cont)
	}
}

func TestIntegerMinPowerAllocErrors(t *testing.T) {
	m := fitSynth(t)
	if _, err := m.IntegerMinPowerAlloc(1e12, []int{12, 20}); err == nil {
		t.Error("expected error for unreachable target")
	}
	if _, err := m.IntegerMinPowerAlloc(100, []int{12}); err == nil {
		t.Error("expected error for dimension mismatch")
	}
	if _, err := m.IntegerMinPowerAlloc(100, []int{12, 0}); err == nil {
		t.Error("expected error for zero cap")
	}
	if _, err := m.IntegerMinPowerAlloc(0, []int{12, 20}); err == nil {
		t.Error("expected error for zero target")
	}
}
