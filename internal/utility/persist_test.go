package utility

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	m := fitSynth(t)
	m3 := synth3(t)
	in := map[string]*Model{"two": m, "three": m3}
	var buf bytes.Buffer
	if err := SaveModels(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := LoadModels(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("loaded %d models", len(out))
	}
	for name, want := range in {
		got, ok := out[name]
		if !ok {
			t.Fatalf("missing %q", name)
		}
		if math.Abs(got.Alpha0-want.Alpha0)/want.Alpha0 > 1e-12 {
			t.Errorf("%s: α₀ %v vs %v", name, got.Alpha0, want.Alpha0)
		}
		for j := range want.Alpha {
			if got.Alpha[j] != want.Alpha[j] || got.P[j] != want.P[j] {
				t.Errorf("%s: coefficients differ at %d", name, j)
			}
		}
		if got.PerfR2 != want.PerfR2 || got.N != want.N {
			t.Errorf("%s: metadata differs", name)
		}
		// The loaded model behaves identically.
		r := make([]float64, len(want.Alpha))
		for j := range r {
			r[j] = 2
		}
		if got.Perf(r) != want.Perf(r) || got.Power(r) != want.Power(r) {
			t.Errorf("%s: loaded model predicts differently", name)
		}
	}
}

func TestSaveModelsValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveModels(&buf, nil); err == nil {
		t.Error("expected error for empty set")
	}
	if err := SaveModels(&buf, map[string]*Model{"x": nil}); err == nil {
		t.Error("expected error for nil model")
	}
	bad := *fitSynth(t)
	bad.Alpha = []float64{-1, 0.4}
	if err := SaveModels(&buf, map[string]*Model{"x": &bad}); err == nil {
		t.Error("expected error for invalid model")
	}
}

func TestLoadModelsValidation(t *testing.T) {
	cases := []struct {
		name string
		data string
	}{
		{"garbage", "not json"},
		{"wrong format", `{"format":"other/v9","models":{}}`},
		{"empty set", `{"format":"pocolo-models/v1","models":{}}`},
		{"unknown field", `{"format":"pocolo-models/v1","models":{},"extra":1}`},
		{"invalid model", `{"format":"pocolo-models/v1","models":{"x":{"App":"x","Resources":["c"],"Alpha0":1,"Alpha":[-1],"P":[1]}}}`},
	}
	for _, c := range cases {
		if _, err := LoadModels(strings.NewReader(c.data)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestLoadModelsFillsAppName(t *testing.T) {
	m := fitSynth(t)
	m.App = ""
	var buf bytes.Buffer
	// Bypass SaveModels validation of the name by saving a valid model and
	// blanking App in the JSON: easier to just save (App "" is valid) —
	// Validate does not require App.
	if err := SaveModels(&buf, map[string]*Model{"synth": m}); err != nil {
		t.Fatal(err)
	}
	out, err := LoadModels(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out["synth"].App != "synth" {
		t.Errorf("App = %q, want filled from the key", out["synth"].App)
	}
}

func TestModelNames(t *testing.T) {
	m := fitSynth(t)
	names := ModelNames(map[string]*Model{"b": m, "a": m, "c": m})
	if len(names) != 3 || names[0] != "a" || names[2] != "c" {
		t.Errorf("names = %v", names)
	}
}
