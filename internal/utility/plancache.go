package utility

import (
	"errors"
	"fmt"
	"strings"
	"sync"
)

// PlanCache shares built Plans across every manager, host, trial, and
// matrix cell that evaluates the same (model, caps) pair — one grid walk
// per distinct pair per process instead of one per server manager. Keys
// fingerprint the full fitted parameter vector (like the cluster sweep
// memo), entries build exactly once under a per-entry sync.Once even when
// many goroutines race for a cold key, and the Plans themselves are
// immutable deep copies, so sharing is race-clean under internal/parallel
// fan-out.
type PlanCache struct {
	mu      sync.Mutex
	entries map[string]*planEntry
	hits    uint64
	misses  uint64
}

type planEntry struct {
	once sync.Once
	plan *Plan
	err  error
}

// planCacheLimit bounds distinct (model, caps) entries; past it the cache
// is cleared wholesale, mirroring the cluster sweep memo's policy.
const planCacheLimit = 4096

// Plans is the process-wide plan cache used by default.
var Plans = NewPlanCache()

// NewPlanCache returns an empty plan cache.
func NewPlanCache() *PlanCache {
	return &PlanCache{entries: make(map[string]*planEntry)}
}

// ModelKey fingerprints a model's full fitted parameter vector as a
// string. It is the model half of the plan-cache key, exported so the
// cluster's delta-driven matrix builder can reuse the exact same
// fingerprint to decide whether a cell's model input changed between
// rounds.
func ModelKey(m *Model) string {
	return fmt.Sprintf("%+v", *m)
}

func planKey(m *Model, caps []int) string {
	var b strings.Builder
	b.WriteString(ModelKey(m))
	fmt.Fprintf(&b, "|caps=%v", caps)
	return b.String()
}

// Get returns the shared Plan for the (model, caps) pair, building it on
// first use. The returned Plan is shared and must be treated as read-only;
// it holds no references into the caller's model or caps. Construction
// errors are cached alongside the entry so hostile pairs are not re-walked.
func (pc *PlanCache) Get(m *Model, caps []int) (*Plan, error) {
	if m == nil {
		return nil, errors.New("utility: nil model")
	}
	key := planKey(m, caps)
	pc.mu.Lock()
	e, ok := pc.entries[key]
	if ok {
		pc.hits++
	} else {
		if len(pc.entries) >= planCacheLimit {
			pc.entries = make(map[string]*planEntry)
		}
		e = &planEntry{}
		pc.entries[key] = e
		pc.misses++
	}
	pc.mu.Unlock()
	e.once.Do(func() { e.plan, e.err = NewPlan(m, caps) })
	return e.plan, e.err
}

// Reset empties the cache and zeroes its statistics.
func (pc *PlanCache) Reset() {
	pc.mu.Lock()
	pc.entries = make(map[string]*planEntry)
	pc.hits, pc.misses = 0, 0
	pc.mu.Unlock()
}

// Stats reports entry count and hit/miss totals since the last Reset.
func (pc *PlanCache) Stats() (entries int, hits, misses uint64) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return len(pc.entries), pc.hits, pc.misses
}
