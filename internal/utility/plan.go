package utility

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// This file implements the precomputed allocation planner. The server
// manager's 1 s control loop (Section IV-C) needs, every tick, the integer
// allocation that reaches the current load target — at the least fitted
// dynamic power for the POM policy, or the whole minimal feasible frontier
// for the power-unaware baseline. Re-deriving either from scratch walks the
// full knob grid with one math.Pow per resource per candidate, which costs
// more than an entire simulated engine-second. A Plan amortizes that walk:
// built once per (model, caps) pair, it quantizes the target-perf domain
// into the finite set of thresholds the integer grid induces and stores the
// least-power answer per cell, so the per-tick search becomes an O(log n)
// binary search (or an O(1) warm-start re-check when the target stays in
// the cell the previous tick landed in).
//
// Equivalence guarantee: every perf/power number a Plan stores is computed
// with exactly the floating-point operation sequence Model.Perf and
// Model.DynamicPower use — the per-axis pow tables are folded left to
// right in resource order, so ((α₀·c^α₁)·w^α₂) associates identically —
// and the frontier sweep reproduces the exact search's tie-breaking
// (strictly smaller power wins; equal power keeps the earlier point in
// walk order). Planner answers are therefore bit-identical to
// Model.IntegerMinPowerAlloc and to the manager's indifference-frontier
// scan, not merely close; the golden tests in plan_test.go and the
// servermgr/cluster equivalence suites assert this across fitted, random,
// and hostile models.

// MaxPlanPoints bounds the integer grid a Plan will precompute. Server
// knob grids are tiny (12 cores × 20 ways = 240 points); the bound exists
// so a hostile caps vector cannot make construction allocate unboundedly.
// Callers whose grid exceeds it get an error and should fall back to the
// exact search.
const MaxPlanPoints = 1 << 16

// GridPoint is one integer candidate of a two-resource knob grid, in the
// (cores, ways) orientation the server manager uses.
type GridPoint struct {
	C, W int
}

// Plan is a precomputed least-power frontier for one (model, caps) pair.
// A Plan is immutable after construction and safe for concurrent use; it
// deep-copies the model parameters it needs, so callers may mutate or
// discard the source Model afterwards.
type Plan struct {
	model Model // deep copy (identification + diagnostics)
	caps  []int
	k     int

	// Min-power frontier over the quantized target domain: cell i answers
	// every target in (thresh[i-1], thresh[i]] with the allocation encoded
	// by walks[i]. Thresholds ascend; the last is the grid's peak
	// achievable performance.
	thresh []float64
	walks  []int
	powers []float64
	// cellC/cellW decode walks for the 2-resource fast path.
	cellC, cellW []int

	// Power-unaware tables (2-resource models only): perf of the full
	// grid in walk order, viewed per cores-column, plus a per-column
	// monotonicity flag deciding binary search vs the exact linear scan.
	gridPerf  []float64
	colSorted []bool

	// Log-domain tables: lnAlpha0 + Σ αⱼ·ln(v) with ln cached over the
	// integer grid, for Pow-free evaluation where bit-identity with
	// Model.Perf is not required (see PerfLog).
	lnAlpha0 float64
	lns      [][]float64
}

// NewPlan precomputes the allocation planner tables for the model over the
// integer grid 1..caps[j] per resource. Construction validates caps the
// way the exact search does and costs one grid walk (amortized over every
// subsequent lookup); models with hostile coefficients (NaN, ±Inf, zero or
// negative exponents) build fine and reproduce the exact search's behavior
// on them.
func NewPlan(m *Model, caps []int) (*Plan, error) {
	if m == nil {
		return nil, errors.New("utility: nil model")
	}
	k := len(m.Alpha)
	if k == 0 {
		return nil, errors.New("utility: model has no resources")
	}
	if len(caps) != k {
		return nil, fmt.Errorf("utility: caps have %d entries, want %d", len(caps), k)
	}
	total := 1
	for j, c := range caps {
		if c < 1 {
			return nil, fmt.Errorf("utility: cap for %s must be at least 1", m.Resources[j])
		}
		if total > MaxPlanPoints/c {
			return nil, fmt.Errorf("utility: plan grid %v exceeds %d points", caps, MaxPlanPoints)
		}
		total *= c
	}

	p := &Plan{
		model: copyModel(m),
		caps:  append([]int(nil), caps...),
		k:     k,
	}

	// Per-axis tables: pows[j][v] = v^αⱼ and dyns[j][v] = v·pⱼ. Folding
	// these left to right reproduces Model.Perf/DynamicPower bit for bit.
	pows := make([][]float64, k)
	dyns := make([][]float64, k)
	p.lnAlpha0 = math.Log(m.Alpha0)
	p.lns = make([][]float64, k)
	for j := 0; j < k; j++ {
		pows[j] = make([]float64, caps[j]+1)
		dyns[j] = make([]float64, caps[j]+1)
		p.lns[j] = make([]float64, caps[j]+1)
		for v := 1; v <= caps[j]; v++ {
			pows[j][v] = math.Pow(float64(v), m.Alpha[j])
			dyns[j][v] = float64(v) * m.P[j]
			p.lns[j][v] = m.Alpha[j] * math.Log(float64(v))
		}
	}

	perf := make([]float64, total)
	power := make([]float64, total)
	idx := 0
	var walk func(j int, pf, pw float64)
	walk = func(j int, pf, pw float64) {
		if j == k {
			perf[idx], power[idx] = pf, pw
			idx++
			return
		}
		for v := 1; v <= caps[j]; v++ {
			walk(j+1, pf*pows[j][v], pw+dyns[j][v])
		}
	}
	walk(0, m.Alpha0, 0)

	p.buildFrontier(perf, power)
	if k == 2 {
		p.gridPerf = perf
		p.colSorted = make([]bool, caps[0])
		for c := 0; c < caps[0]; c++ {
			col := perf[c*caps[1] : (c+1)*caps[1]]
			sorted := true
			for w := 0; w < len(col); w++ {
				if w > 0 && !(col[w] >= col[w-1]) { // NaN ⇒ unsorted
					sorted = false
					break
				}
				if math.IsNaN(col[w]) {
					sorted = false
					break
				}
			}
			p.colSorted[c] = sorted
		}
		p.cellC = make([]int, len(p.walks))
		p.cellW = make([]int, len(p.walks))
		for i, w := range p.walks {
			p.cellC[i] = w/caps[1] + 1
			p.cellW[i] = w%caps[1] + 1
		}
	}
	return p, nil
}

// buildFrontier derives the quantized least-power table from the grid's
// perf/power values (indexed in walk order). Points the exact search could
// never select — NaN perf (never feasible) or non-finite/NaN power (never
// beats any bestPower) — are excluded up front; the remaining points are
// swept in descending perf so the running argmin over (power, walk index)
// equals the exact search's answer for every target at or below that perf.
func (p *Plan) buildFrontier(perf, power []float64) {
	order := make([]int, 0, len(perf))
	for i := range perf {
		if math.IsNaN(perf[i]) {
			continue
		}
		if math.IsNaN(power[i]) || math.IsInf(power[i], 1) {
			continue
		}
		order = append(order, i)
	}
	sort.Slice(order, func(a, b int) bool {
		if perf[order[a]] != perf[order[b]] {
			return perf[order[a]] > perf[order[b]]
		}
		return order[a] < order[b]
	})

	// Descending sweep; groups of equal perf enter the feasible set
	// together. A new cell is recorded only when the best changes, so
	// consecutive thresholds with the same answer merge into one cell.
	var descThresh []float64
	var descWalk []int
	var descPower []float64
	bestPower := math.Inf(1)
	bestWalk := -1
	for i := 0; i < len(order); {
		pf := perf[order[i]]
		j := i
		for j < len(order) && perf[order[j]] == pf {
			w := order[j]
			if pw := power[w]; pw < bestPower || (pw == bestPower && w < bestWalk) {
				bestPower, bestWalk = pw, w
			}
			j++
		}
		if n := len(descWalk); n == 0 || descWalk[n-1] != bestWalk {
			descThresh = append(descThresh, pf)
			descWalk = append(descWalk, bestWalk)
			descPower = append(descPower, bestPower)
		}
		i = j
	}

	n := len(descThresh)
	p.thresh = make([]float64, n)
	p.walks = make([]int, n)
	p.powers = make([]float64, n)
	for i := 0; i < n; i++ {
		p.thresh[i] = descThresh[n-1-i]
		p.walks[i] = descWalk[n-1-i]
		p.powers[i] = descPower[n-1-i]
	}
}

// copyModel deep-copies the fields a Plan retains.
func copyModel(m *Model) Model {
	out := *m
	out.Resources = append([]string(nil), m.Resources...)
	out.Alpha = append([]float64(nil), m.Alpha...)
	out.P = append([]float64(nil), m.P...)
	return out
}

// Model returns a copy of the model parameters the plan was built from.
func (p *Plan) Model() Model { return copyModel(&p.model) }

// Caps returns a copy of the per-resource caps the plan covers.
func (p *Plan) Caps() []int { return append([]int(nil), p.caps...) }

// Cells returns the number of quantization cells in the min-power
// frontier — the number of distinct answers the plan can give.
func (p *Plan) Cells() int { return len(p.thresh) }

// decode expands a walk index into the allocation vector it encodes.
func (p *Plan) decode(walk int, dst []int) []int {
	if cap(dst) < p.k {
		dst = make([]int, p.k)
	}
	dst = dst[:p.k]
	for j := p.k - 1; j >= 0; j-- {
		dst[j] = walk%p.caps[j] + 1
		walk /= p.caps[j]
	}
	return dst
}

// MinPowerAlloc answers like Model.IntegerMinPowerAlloc — the least-power
// integer allocation reaching targetPerf within caps — from the
// precomputed frontier, in O(log cells) instead of a grid walk. Answers
// and error conditions are bit-identical to the exact search.
func (p *Plan) MinPowerAlloc(targetPerf float64) ([]int, error) {
	if !(targetPerf > 0) {
		return nil, errors.New("utility: target performance must be positive")
	}
	i := sort.SearchFloat64s(p.thresh, targetPerf)
	if i == len(p.thresh) {
		return nil, fmt.Errorf("utility: target %v unreachable within caps %v", targetPerf, p.caps)
	}
	return p.decode(p.walks[i], nil), nil
}

// MinPower2 is the allocation-free 2-resource lookup the server manager's
// tick path uses. lastCell is the cell a previous lookup returned (or a
// negative value for none): when the new target falls inside the same
// quantization cell the answer is reused without searching — the warm
// start. feasible=false mirrors the exact search's "unreachable" error;
// the returned cell is then negative.
func (p *Plan) MinPower2(target float64, lastCell int) (cores, ways, cell int, feasible bool) {
	if p.k != 2 || !(target > 0) {
		return 0, 0, -1, false
	}
	if lastCell >= 0 && lastCell < len(p.thresh) &&
		target <= p.thresh[lastCell] && (lastCell == 0 || target > p.thresh[lastCell-1]) {
		return p.cellC[lastCell], p.cellW[lastCell], lastCell, true
	}
	i := sort.SearchFloat64s(p.thresh, target)
	if i == len(p.thresh) {
		return 0, 0, -1, false
	}
	return p.cellC[i], p.cellW[i], i, true
}

// MinPowerW returns the fitted dynamic power of the plan's answer for the
// target, mirroring MinPowerAlloc's feasibility.
func (p *Plan) MinPowerW(targetPerf float64) (float64, error) {
	if !(targetPerf > 0) {
		return 0, errors.New("utility: target performance must be positive")
	}
	i := sort.SearchFloat64s(p.thresh, targetPerf)
	if i == len(p.thresh) {
		return 0, fmt.Errorf("utility: target %v unreachable within caps %v", targetPerf, p.caps)
	}
	return p.powers[i], nil
}

// PerfLog evaluates the Cobb-Douglas model at the integer point r through
// the cached log-domain tables: exp(lnα₀ + Σ αⱼ·ln rⱼ), with one exp and
// zero math.Pow calls. The result agrees with Model.Perf to floating-point
// rounding but is NOT bit-identical (exp of a sum associates differently
// from a product of powers), so equivalence-critical paths — the frontier
// tables and everything feeding the control loop — use the pow-product
// tables instead. Points outside the plan's grid fall back to Model.Perf.
func (p *Plan) PerfLog(r []int) float64 {
	if len(r) != p.k {
		return math.NaN()
	}
	s := p.lnAlpha0
	for j, v := range r {
		if v <= 0 {
			return 0
		}
		if v > p.caps[j] {
			rf := make([]float64, p.k)
			for i, u := range r {
				rf[i] = float64(u)
			}
			return p.model.Perf(rf)
		}
		s += p.lns[j][v]
	}
	return math.Exp(s)
}

// AppendUnawareFrontier appends the power-unaware minimal feasible
// frontier for the target to dst and returns it: for each cores value, the
// least ways reaching the target, with points dominated by the previous
// entry (same ways at more cores) dropped — exactly the set the power
// unaware manager draws its arbitrary choice from. Only 2-resource plans
// carry the tables; other shapes return dst unchanged (callers fall back
// to the direct scan).
//
// Per column the stored perf values are scanned exactly like the direct
// walk; columns verified monotone at construction use a binary search for
// the same first-feasible index.
func (p *Plan) AppendUnawareFrontier(target float64, dst []GridPoint) []GridPoint {
	if p.k != 2 {
		return dst
	}
	ways := p.caps[1]
	for c := 1; c <= p.caps[0]; c++ {
		col := p.gridPerf[(c-1)*ways : c*ways]
		w := -1
		if p.colSorted[c-1] {
			if i := sort.SearchFloat64s(col, target); i < len(col) {
				w = i + 1
			}
		} else {
			for i, v := range col {
				if v >= target {
					w = i + 1
					break
				}
			}
		}
		if w == -1 {
			continue
		}
		if n := len(dst); n > 0 && dst[n-1].W == w {
			continue
		}
		dst = append(dst, GridPoint{C: c, W: w})
	}
	return dst
}
