package utility_test

import (
	"fmt"
	"math"

	"pocolo/internal/utility"
)

// ExampleFit shows the paper's Section IV-A pipeline on synthetic profiling
// data: log-transform least squares recovers the Cobb-Douglas parameters,
// and the fitted model answers the allocation questions in closed form.
func ExampleFit() {
	var samples []utility.Sample
	for c := 1.0; c <= 12; c += 2 {
		for w := 2.0; w <= 20; w += 3 {
			samples = append(samples, utility.Sample{
				Alloc: []float64{c, w},
				Perf:  50 * math.Pow(c, 0.6) * math.Pow(w, 0.4),
				Power: 5 + 3*c + 1.5*w,
			})
		}
	}
	m, err := utility.Fit("demo", []string{"cores", "llc-ways"}, samples)
	if err != nil {
		fmt.Println(err)
		return
	}
	pref := m.Preference()
	fmt.Printf("exponents α = [%.2f %.2f]\n", m.Alpha[0], m.Alpha[1])
	fmt.Printf("power p = [%.2f %.2f] W/unit over %.2f W static\n", m.P[0], m.P[1], m.PStatic)
	fmt.Printf("per-watt preference = %.2f cores : %.2f ways\n", pref[0], pref[1])

	// The least-power allocation for a load of 400 requests/s:
	r, err := m.MinPowerAlloc(400)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("least-power allocation for 400 req/s: %.1f cores, %.1f ways\n", r[0], r[1])
	// Output:
	// exponents α = [0.60 0.40]
	// power p = [3.00 1.50] W/unit over 5.00 W static
	// per-watt preference = 0.43 cores : 0.57 ways
	// least-power allocation for 400 req/s: 7.1 cores, 9.5 ways
}

// ExampleModel_DemandCapped computes what a best-effort application should
// buy with the spare resources and power headroom a primary leaves behind.
func ExampleModel_DemandCapped() {
	be := &utility.Model{
		App:       "graph-like",
		Resources: []string{"cores", "llc-ways"},
		Alpha0:    10,
		Alpha:     []float64{0.75, 0.25},
		P:         []float64{3.5, 4.5},
	}
	// The primary left 8 cores, 4 ways, and 40 W of headroom.
	demand, err := be.DemandCapped(40, []float64{8, 4})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("buy %.1f cores and %.1f ways (%.1f W)\n", demand[0], demand[1], be.DynamicPower(demand))
	// Output:
	// buy 8.0 cores and 2.7 ways (40.0 W)
}
