// Package utility implements the paper's primary contribution: reasoning
// about resource demands in power-constrained servers with a Cobb-Douglas
// *indirect* utility function (Section III).
//
// Performance is modelled as
//
//	perf = α₀ · ∏ⱼ rⱼ^αⱼ
//
// subject to the linear power budget
//
//	P_static + Σⱼ rⱼ·pⱼ ≤ Power.
//
// Both parameter vectors are fitted from profiling samples by least
// squares — the performance model after a log transformation, the power
// model directly (Section IV-A). From the fitted model the package derives
// the closed-form budget-constrained demand, the per-watt preference vector
// (αⱼ/pⱼ, normalized), least-power allocations for a load target,
// indifference curves, and the Edgeworth-box geometry of Figs. 5 and 6.
package utility

import (
	"errors"
	"fmt"
	"math"

	"pocolo/internal/stats"
)

// Sample is one profiling observation: a resource allocation vector, the
// measured performance (max SLO-compliant load for LC apps, throughput for
// BE apps), and the application-attributed power draw in watts.
type Sample struct {
	Alloc []float64
	Perf  float64
	Power float64
}

// Model is a fitted Cobb-Douglas indirect utility model.
type Model struct {
	// App names the application the model describes.
	App string
	// Resources names the direct resources, e.g. ["cores", "llc-ways"].
	Resources []string
	// Alpha0 is the performance scale constant α₀.
	Alpha0 float64
	// Alpha holds the fitted performance exponents αⱼ.
	Alpha []float64
	// PStatic is the fitted power intercept (the application's apportioned
	// static power).
	PStatic float64
	// P holds the fitted per-unit power coefficients pⱼ.
	P []float64
	// PerfR2 and PowerR2 are the coefficients of determination of the two
	// fits (the paper's Fig. 8 goodness-of-fit metric).
	PerfR2  float64
	PowerR2 float64
	// N is the number of samples used.
	N int
}

// Fit estimates a Cobb-Douglas indirect utility model from profiling
// samples. Samples with non-positive performance or allocation entries are
// rejected (the log transform requires positivity). At least
// len(resources)+2 samples are required.
func Fit(app string, resources []string, samples []Sample) (*Model, error) {
	k := len(resources)
	if k == 0 {
		return nil, errors.New("utility: need at least one resource")
	}
	if len(samples) < k+2 {
		return nil, fmt.Errorf("utility: need at least %d samples to fit %d resources, got %d", k+2, k, len(samples))
	}
	logX := make([][]float64, 0, len(samples))
	logY := make([]float64, 0, len(samples))
	rawX := make([][]float64, 0, len(samples))
	powY := make([]float64, 0, len(samples))
	for i, s := range samples {
		if len(s.Alloc) != k {
			return nil, fmt.Errorf("utility: sample %d has %d resources, want %d", i, len(s.Alloc), k)
		}
		if s.Perf <= 0 {
			return nil, fmt.Errorf("utility: sample %d has non-positive performance %v", i, s.Perf)
		}
		if s.Power < 0 {
			return nil, fmt.Errorf("utility: sample %d has negative power %v", i, s.Power)
		}
		lx := make([]float64, k)
		for j, r := range s.Alloc {
			if r <= 0 {
				return nil, fmt.Errorf("utility: sample %d has non-positive allocation %v for %s", i, r, resources[j])
			}
			lx[j] = math.Log(r)
		}
		logX = append(logX, lx)
		logY = append(logY, math.Log(s.Perf))
		rawX = append(rawX, append([]float64(nil), s.Alloc...))
		powY = append(powY, s.Power)
	}

	perfReg, err := stats.OLS(logX, logY)
	if err != nil {
		return nil, fmt.Errorf("utility: performance fit: %w", err)
	}
	powReg, err := stats.OLS(rawX, powY)
	if err != nil {
		return nil, fmt.Errorf("utility: power fit: %w", err)
	}

	m := &Model{
		App:       app,
		Resources: append([]string(nil), resources...),
		Alpha0:    math.Exp(perfReg.Intercept()),
		Alpha:     make([]float64, k),
		PStatic:   powReg.Intercept(),
		P:         make([]float64, k),
		PerfR2:    perfReg.RSquared,
		PowerR2:   powReg.RSquared,
		N:         len(samples),
	}
	for j := 0; j < k; j++ {
		m.Alpha[j] = perfReg.Slope(j)
		m.P[j] = powReg.Slope(j)
	}
	return m, nil
}

// Validate reports whether the fitted parameters describe a usable
// (monotone, power-consuming) model: all αⱼ and pⱼ must be positive.
// Models violating this arise from degenerate profiles and cannot drive
// allocation decisions.
func (m *Model) Validate() error {
	if len(m.Alpha) == 0 || len(m.Alpha) != len(m.P) || len(m.Alpha) != len(m.Resources) {
		return errors.New("utility: inconsistent model dimensions")
	}
	if m.Alpha0 <= 0 {
		return fmt.Errorf("utility: model %s: non-positive scale α₀=%v", m.App, m.Alpha0)
	}
	for j := range m.Alpha {
		if m.Alpha[j] <= 0 {
			return fmt.Errorf("utility: model %s: non-positive exponent α[%s]=%v", m.App, m.Resources[j], m.Alpha[j])
		}
		if m.P[j] <= 0 {
			return fmt.Errorf("utility: model %s: non-positive power coefficient p[%s]=%v", m.App, m.Resources[j], m.P[j])
		}
	}
	return nil
}

// Perf evaluates the fitted performance model at allocation r.
func (m *Model) Perf(r []float64) float64 {
	v := m.Alpha0
	for j, rj := range r {
		if rj <= 0 {
			return 0
		}
		v *= math.Pow(rj, m.Alpha[j])
	}
	return v
}

// Power evaluates the fitted power model at allocation r (watts, including
// the fitted static intercept).
func (m *Model) Power(r []float64) float64 {
	v := m.PStatic
	for j, rj := range r {
		v += rj * m.P[j]
	}
	return v
}

// DynamicPower evaluates only the marginal part Σ rⱼ·pⱼ of the power
// model — the draw attributable to holding the resources, excluding the
// static intercept. Budget arithmetic against a server-level headroom uses
// this form.
func (m *Model) DynamicPower(r []float64) float64 {
	v := 0.0
	for j, rj := range r {
		v += rj * m.P[j]
	}
	return v
}

// alphaSum returns Σⱼ αⱼ.
func (m *Model) alphaSum() float64 {
	s := 0.0
	for _, a := range m.Alpha {
		s += a
	}
	return s
}

// Demand returns the utility-maximizing allocation under a dynamic power
// budget (watts, excluding the static intercept): the paper's closed form
// rⱼ = budget/pⱼ · αⱼ/Σα. A non-positive budget yields the zero vector.
func (m *Model) Demand(budgetW float64) []float64 {
	r := make([]float64, len(m.Alpha))
	if budgetW <= 0 {
		return r
	}
	sum := m.alphaSum()
	for j := range r {
		r[j] = budgetW / m.P[j] * m.Alpha[j] / sum
	}
	return r
}

// DemandCapped returns the utility-maximizing allocation under a dynamic
// power budget and per-resource upper bounds (the spare capacity left by
// the primary application). It water-fills: resources whose unconstrained
// demand exceeds the cap are clamped there, their cost is deducted, and the
// remaining budget is re-optimized over the rest — the KKT solution for
// Cobb-Douglas utility with a linear budget and box constraints.
func (m *Model) DemandCapped(budgetW float64, upper []float64) ([]float64, error) {
	k := len(m.Alpha)
	if len(upper) != k {
		return nil, fmt.Errorf("utility: upper bounds have %d entries, want %d", len(upper), k)
	}
	r := make([]float64, k)
	if budgetW <= 0 {
		return r, nil
	}
	active := make([]bool, k)
	for j := range active {
		if upper[j] > 0 {
			active[j] = true
		}
	}
	remaining := budgetW
	for {
		sum := 0.0
		for j := range active {
			if active[j] {
				sum += m.Alpha[j]
			}
		}
		if sum == 0 || remaining <= 0 {
			break
		}
		clamped := false
		for j := range active {
			if !active[j] {
				continue
			}
			want := remaining / m.P[j] * m.Alpha[j] / sum
			if want >= upper[j] {
				r[j] = upper[j]
				remaining -= upper[j] * m.P[j]
				active[j] = false
				clamped = true
			}
		}
		if !clamped {
			for j := range active {
				if active[j] {
					r[j] = remaining / m.P[j] * m.Alpha[j] / sum
				}
			}
			break
		}
	}
	return r, nil
}

// Preference returns the indirect-utility preference vector (αⱼ/pⱼ)/Σ —
// the performance-per-watt ranking of the direct resources, normalized to
// sum to 1 (Section III). It is independent of load and power budget.
func (m *Model) Preference() []float64 {
	out := make([]float64, len(m.Alpha))
	sum := 0.0
	for j := range out {
		out[j] = m.Alpha[j] / m.P[j]
		sum += out[j]
	}
	for j := range out {
		out[j] /= sum
	}
	return out
}

// DirectPreference returns the power-unaware preference vector αⱼ/Σα.
func (m *Model) DirectPreference() []float64 {
	out := make([]float64, len(m.Alpha))
	sum := m.alphaSum()
	for j := range out {
		out[j] = m.Alpha[j] / sum
	}
	return out
}

// MinPowerAlloc returns the continuous allocation that achieves the target
// performance at the least dynamic power: minimizing Σ rⱼ·pⱼ subject to
// α₀·∏ rⱼ^αⱼ ≥ target gives rⱼ = λ·αⱼ/pⱼ with
// λ = (target / (α₀·∏(αⱼ/pⱼ)^αⱼ))^(1/Σα). This is the paper's
// constant-time "power-efficient configuration" (Section IV-C).
func (m *Model) MinPowerAlloc(targetPerf float64) ([]float64, error) {
	if targetPerf <= 0 {
		return nil, fmt.Errorf("utility: target performance %v must be positive", targetPerf)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	sum := m.alphaSum()
	prod := m.Alpha0
	for j := range m.Alpha {
		prod *= math.Pow(m.Alpha[j]/m.P[j], m.Alpha[j])
	}
	lambda := math.Pow(targetPerf/prod, 1/sum)
	r := make([]float64, len(m.Alpha))
	for j := range r {
		r[j] = lambda * m.Alpha[j] / m.P[j]
	}
	return r, nil
}

// MinPowerAllocBox returns the least-power allocation achieving targetPerf
// subject to per-resource upper bounds (the physical machine limits). It
// starts from the unconstrained ray solution and iteratively clamps
// violating resources at their bounds, re-solving the reduced problem —
// the KKT solution for this posynomial program. It returns an error when
// the target is unreachable even at the bounds.
func (m *Model) MinPowerAllocBox(targetPerf float64, upper []float64) ([]float64, error) {
	k := len(m.Alpha)
	if len(upper) != k {
		return nil, fmt.Errorf("utility: upper bounds have %d entries, want %d", len(upper), k)
	}
	if targetPerf <= 0 {
		return nil, fmt.Errorf("utility: target performance %v must be positive", targetPerf)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	for j, u := range upper {
		if u <= 0 {
			return nil, fmt.Errorf("utility: upper bound for %s must be positive", m.Resources[j])
		}
	}
	// Feasibility at the box corner.
	if m.Perf(upper) < targetPerf {
		return nil, fmt.Errorf("utility: target %v unreachable within bounds %v (max %v)", targetPerf, upper, m.Perf(upper))
	}
	r := make([]float64, k)
	clamped := make([]bool, k)
	for {
		// Required product over the unclamped resources.
		needed := targetPerf / m.Alpha0
		sumA := 0.0
		prodRatio := 1.0
		for j := 0; j < k; j++ {
			if clamped[j] {
				needed /= math.Pow(upper[j], m.Alpha[j])
				continue
			}
			sumA += m.Alpha[j]
			prodRatio *= math.Pow(m.Alpha[j]/m.P[j], m.Alpha[j])
		}
		if sumA == 0 {
			break // everything clamped; feasibility already verified
		}
		lambda := math.Pow(needed/prodRatio, 1/sumA)
		anyNew := false
		for j := 0; j < k; j++ {
			if clamped[j] {
				r[j] = upper[j]
				continue
			}
			r[j] = lambda * m.Alpha[j] / m.P[j]
			if r[j] > upper[j] {
				clamped[j] = true
				anyNew = true
			}
		}
		if !anyNew {
			break
		}
	}
	for j := range r {
		if clamped[j] {
			r[j] = upper[j]
		}
	}
	return r, nil
}

// MinPowerFor returns the least dynamic power (watts, excluding the static
// intercept) at which the target performance is achievable.
func (m *Model) MinPowerFor(targetPerf float64) (float64, error) {
	r, err := m.MinPowerAlloc(targetPerf)
	if err != nil {
		return 0, err
	}
	return m.DynamicPower(r), nil
}

// String renders the fitted parameters compactly.
func (m *Model) String() string {
	return fmt.Sprintf("utility[%s: α₀=%.3g α=%v p=%v R²perf=%.2f R²pow=%.2f n=%d]",
		m.App, m.Alpha0, m.Alpha, m.P, m.PerfR2, m.PowerR2, m.N)
}
