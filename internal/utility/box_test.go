package utility

import (
	"math"
	"math/rand"
	"testing"
)

func TestMinPowerAllocBoxUnconstrainedMatchesRay(t *testing.T) {
	m := fitSynth(t)
	target := 300.0
	free, err := m.MinPowerAllocBox(target, []float64{1e6, 1e6})
	if err != nil {
		t.Fatal(err)
	}
	ray, err := m.MinPowerAlloc(target)
	if err != nil {
		t.Fatal(err)
	}
	for j := range ray {
		if math.Abs(free[j]-ray[j]) > 1e-9 {
			t.Errorf("loose box differs from ray at %d: %v vs %v", j, free[j], ray[j])
		}
	}
}

func TestMinPowerAllocBoxClampsAndCompensates(t *testing.T) {
	m := fitSynth(t)
	target := 500.0
	// Tight core bound: the solution must clamp cores and buy more ways.
	bounds := []float64{3, 100}
	r, err := m.MinPowerAllocBox(target, bounds)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r[0]-3) > 1e-9 {
		t.Errorf("cores = %v, want clamped at 3", r[0])
	}
	// The target is met exactly.
	if got := m.Perf(r); math.Abs(got-target)/target > 1e-9 {
		t.Errorf("Perf = %v, want %v", got, target)
	}
	// The clamped solution costs at least the unconstrained one.
	rayPower, err := m.MinPowerFor(target)
	if err != nil {
		t.Fatal(err)
	}
	if m.DynamicPower(r) < rayPower-1e-9 {
		t.Errorf("box power %v below unconstrained bound %v", m.DynamicPower(r), rayPower)
	}
}

func TestMinPowerAllocBoxOptimalVsGrid(t *testing.T) {
	// Property: no grid point inside the box that meets the target uses
	// less power than the analytic solution.
	m := fitSynth(t)
	target := 400.0
	bounds := []float64{5, 25}
	r, err := m.MinPowerAllocBox(target, bounds)
	if err != nil {
		t.Fatal(err)
	}
	best := m.DynamicPower(r)
	for c := 0.05; c <= bounds[0]; c += 0.05 {
		for w := 0.05; w <= bounds[1]; w += 0.05 {
			p := []float64{c, w}
			if m.Perf(p) >= target && m.DynamicPower(p) < best-1e-6 {
				t.Fatalf("grid point (%v, %v) beats the box solution: %v < %v", c, w, m.DynamicPower(p), best)
			}
		}
	}
}

func TestMinPowerAllocBoxInfeasible(t *testing.T) {
	m := fitSynth(t)
	if _, err := m.MinPowerAllocBox(1e12, []float64{12, 20}); err == nil {
		t.Error("expected error for unreachable target")
	}
	if _, err := m.MinPowerAllocBox(0, []float64{12, 20}); err == nil {
		t.Error("expected error for zero target")
	}
	if _, err := m.MinPowerAllocBox(100, []float64{12}); err == nil {
		t.Error("expected error for dimension mismatch")
	}
	if _, err := m.MinPowerAllocBox(100, []float64{12, 0}); err == nil {
		t.Error("expected error for zero bound")
	}
	bad := *m
	bad.Alpha = []float64{-1, 0.4}
	if _, err := bad.MinPowerAllocBox(100, []float64{12, 20}); err == nil {
		t.Error("expected error for degenerate model")
	}
}

func TestMinPowerAllocBoxTargetAtCorner(t *testing.T) {
	// A target exactly achievable only at the box corner must return the
	// corner.
	m := fitSynth(t)
	bounds := []float64{4, 8}
	corner := m.Perf(bounds)
	r, err := m.MinPowerAllocBox(corner*(1-1e-12), bounds)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r[0]-4) > 1e-6 || math.Abs(r[1]-8) > 1e-6 {
		t.Errorf("corner target should clamp both: %v", r)
	}
}

// synth3 builds an exactly-fitted three-resource model.
func synth3(t *testing.T) *Model {
	t.Helper()
	var samples []Sample
	for a := 1.0; a <= 8; a += 1.5 {
		for b := 1.0; b <= 12; b += 2 {
			for c := 1.0; c <= 6; c++ {
				perf := 20 * math.Pow(a, 0.5) * math.Pow(b, 0.3) * math.Pow(c, 0.2)
				pw := 4 + 3*a + 1.2*b + 2*c
				samples = append(samples, Sample{Alloc: []float64{a, b, c}, Perf: perf, Power: pw})
			}
		}
	}
	m, err := Fit("synth3", []string{"cores", "ways", "membw"}, samples)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestThreeResourceModel(t *testing.T) {
	m := synth3(t)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Alpha[0]-0.5) > 1e-6 || math.Abs(m.Alpha[1]-0.3) > 1e-6 || math.Abs(m.Alpha[2]-0.2) > 1e-6 {
		t.Errorf("α = %v", m.Alpha)
	}
	// Preference sums to 1 over three resources.
	pref := m.Preference()
	sum := pref[0] + pref[1] + pref[2]
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("preference sum = %v", sum)
	}
	// Demand expenditure shares follow α/Σα for three resources.
	budget := 90.0
	r := m.Demand(budget)
	for j, a := range m.Alpha {
		want := budget * a / (m.Alpha[0] + m.Alpha[1] + m.Alpha[2])
		if got := r[j] * m.P[j]; math.Abs(got-want) > 1e-6 {
			t.Errorf("resource %d expenditure = %v, want %v", j, got, want)
		}
	}
}

func TestThreeResourceBoxAndCappedDemand(t *testing.T) {
	m := synth3(t)
	// Box min-power with a binding middle bound.
	target := 100.0
	bounds := []float64{100, 4, 100}
	r, err := m.MinPowerAllocBox(target, bounds)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r[1]-4) > 1e-9 {
		t.Errorf("ways should clamp at 4: %v", r)
	}
	if got := m.Perf(r); math.Abs(got-target)/target > 1e-9 {
		t.Errorf("Perf = %v, want %v", got, target)
	}
	// Capped demand never exceeds caps or budget across random draws.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		budget := rng.Float64() * 120
		upper := []float64{rng.Float64() * 8, rng.Float64() * 12, rng.Float64() * 6}
		d, err := m.DemandCapped(budget, upper)
		if err != nil {
			t.Fatal(err)
		}
		for j := range d {
			if d[j] < -1e-9 || d[j] > upper[j]+1e-9 {
				t.Fatalf("draw %d: d[%d]=%v outside [0, %v]", i, j, d[j], upper[j])
			}
		}
		if m.DynamicPower(d) > budget+1e-6 {
			t.Fatalf("draw %d: spend %v exceeds %v", i, m.DynamicPower(d), budget)
		}
	}
	// Integer search generalizes to three dimensions.
	alloc, err := m.IntegerMinPowerAlloc(60, []int{8, 12, 6})
	if err != nil {
		t.Fatal(err)
	}
	rf := []float64{float64(alloc[0]), float64(alloc[1]), float64(alloc[2])}
	if m.Perf(rf) < 60 {
		t.Errorf("integer alloc %v misses the target", alloc)
	}
}

func TestModelStringAndDynamicPower3(t *testing.T) {
	m := synth3(t)
	if m.String() == "" {
		t.Error("String should render")
	}
	if got := m.DynamicPower([]float64{1, 1, 1}); math.Abs(got-(3+1.2+2)) > 1e-6 {
		t.Errorf("DynamicPower = %v", got)
	}
	if got := m.Power([]float64{1, 1, 1}); math.Abs(got-(4+3+1.2+2)) > 1e-6 {
		t.Errorf("Power = %v", got)
	}
}
