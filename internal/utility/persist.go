package utility

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
)

// The paper's applications "either provide their fitted parameters using
// historical knowledge or they are sampled online" — historical knowledge
// means fitted models persisted between runs. This file gives model sets a
// stable JSON representation so a profiling pass can be done once and its
// results shipped to every server and cluster manager.

// modelSetFile is the on-disk envelope: a format marker plus the models
// keyed by application name.
type modelSetFile struct {
	Format string            `json:"format"`
	Models map[string]*Model `json:"models"`
}

// formatMarker identifies the envelope and its major revision.
const formatMarker = "pocolo-models/v1"

// SaveModels writes a set of fitted models as JSON.
func SaveModels(w io.Writer, models map[string]*Model) error {
	if len(models) == 0 {
		return errors.New("utility: no models to save")
	}
	for name, m := range models {
		if m == nil {
			return fmt.Errorf("utility: nil model for %q", name)
		}
		if err := m.Validate(); err != nil {
			return fmt.Errorf("utility: refusing to save invalid model %q: %w", name, err)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(modelSetFile{Format: formatMarker, Models: models})
}

// LoadModels reads a model set written by SaveModels and validates every
// entry.
func LoadModels(r io.Reader) (map[string]*Model, error) {
	var file modelSetFile
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&file); err != nil {
		return nil, fmt.Errorf("utility: decoding model set: %w", err)
	}
	if file.Format != formatMarker {
		return nil, fmt.Errorf("utility: unknown model set format %q (want %q)", file.Format, formatMarker)
	}
	if len(file.Models) == 0 {
		return nil, errors.New("utility: model set is empty")
	}
	for name, m := range file.Models {
		if m == nil {
			return nil, fmt.Errorf("utility: nil model for %q", name)
		}
		if m.App == "" {
			m.App = name
		}
		if err := m.Validate(); err != nil {
			return nil, fmt.Errorf("utility: model %q invalid: %w", name, err)
		}
	}
	return file.Models, nil
}

// ModelNames returns the sorted application names of a model set.
func ModelNames(models map[string]*Model) []string {
	names := make([]string, 0, len(models))
	for n := range models {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
