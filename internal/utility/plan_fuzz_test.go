package utility_test

import (
	"math"
	"reflect"
	"testing"

	"pocolo/internal/utility"
)

// FuzzPlanBuild throws hostile model coefficients at plan construction:
// exponents collapsing to zero or negative, NaN-adjacent and non-finite
// parameters, single-resource models, and degenerate caps. The invariants:
// construction never panics, cap validation matches the direct search, and
// whenever a plan builds, its answers (allocation or error) are identical
// to IntegerMinPowerAlloc for every probed target.
func FuzzPlanBuild(f *testing.F) {
	// Seeds: a sane model, α→0, negative α, NaN and Inf coefficients,
	// denormal-adjacent α, zero power, single-resource shape, degenerate
	// caps.
	f.Add(3.0, 0.5, 0.3, 4.0, 2.0, 12, 20, 5.0, false)
	f.Add(3.0, 1e-320, 0.3, 4.0, 2.0, 12, 20, 5.0, false)
	f.Add(3.0, -0.5, 0.3, 4.0, 2.0, 12, 20, 5.0, false)
	f.Add(math.NaN(), 0.5, 0.3, 4.0, 2.0, 12, 20, 5.0, false)
	f.Add(3.0, math.NaN(), 0.3, 4.0, 2.0, 8, 8, 5.0, false)
	f.Add(3.0, 0.5, math.Inf(1), 4.0, 2.0, 8, 8, 5.0, false)
	f.Add(3.0, 0.5, 0.3, math.NaN(), 2.0, 8, 8, 5.0, false)
	f.Add(3.0, 0.5, 0.3, 0.0, 0.0, 8, 8, 5.0, false)
	f.Add(0.0, 0.0, 0.0, 0.0, 0.0, 1, 1, 0.0, false)
	f.Add(3.0, 0.7, 0.0, 4.0, 0.0, 12, 20, 5.0, true) // single-resource
	f.Add(1e300, 300.0, 300.0, 1e300, 1e300, 32, 32, 1e308, false)

	f.Fuzz(func(t *testing.T, alpha0, a1, a2, p1, p2 float64, c1, c2 int, target float64, single bool) {
		var m *utility.Model
		var caps []int
		if single {
			m = &utility.Model{
				App:       "fuzz",
				Resources: []string{"cores"},
				Alpha0:    alpha0,
				Alpha:     []float64{a1},
				P:         []float64{p1},
			}
			caps = []int{c1}
		} else {
			m = &utility.Model{
				App:       "fuzz",
				Resources: []string{"cores", "ways"},
				Alpha0:    alpha0,
				Alpha:     []float64{a1, a2},
				P:         []float64{p1, p2},
			}
			caps = []int{c1, c2}
		}
		// Keep grids bounded so the direct reference search stays cheap;
		// invalid caps (<1) are deliberately left through to check both
		// sides reject them.
		for i, c := range caps {
			if c > 64 {
				caps[i] = c%64 + 1
			}
		}

		plan, err := utility.NewPlan(m, caps)
		capsValid := true
		for _, c := range caps {
			if c < 1 {
				capsValid = false
			}
		}
		if !capsValid {
			if err == nil {
				t.Fatalf("invalid caps %v accepted", caps)
			}
			return
		}
		if err != nil {
			// Oversized-grid refusal is the only valid failure for valid
			// caps at these sizes (64^2 < MaxPlanPoints, so not expected).
			t.Fatalf("NewPlan(%+v, %v): %v", m, caps, err)
		}

		targets := []float64{target, -target, 0, 1, math.Abs(target) * 1e-6}
		// Probe exact achievable values too: equality edges are where an
		// off-by-one-ulp planner would diverge.
		vec := make([]float64, len(caps))
		for j, c := range caps {
			vec[j] = float64(1 + (c-1)/2)
		}
		targets = append(targets, m.Perf(vec))

		for _, tgt := range targets {
			want, wantErr := m.IntegerMinPowerAlloc(tgt, caps)
			got, gotErr := plan.MinPowerAlloc(tgt)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("model %+v caps %v target %v: direct err=%v, plan err=%v", m, caps, tgt, wantErr, gotErr)
			}
			if wantErr == nil && !reflect.DeepEqual(want, got) {
				t.Fatalf("model %+v caps %v target %v: direct %v, plan %v", m, caps, tgt, want, got)
			}
		}
	})
}
