package utility

import (
	"math"
	"math/rand"
	"testing"
)

// synthModel builds a known ground-truth model and returns noiseless
// samples drawn from it on a grid.
func synthSamples(alpha0, ac, aw, pstatic, pc, pw float64) []Sample {
	var out []Sample
	for c := 1.0; c <= 12; c += 2 {
		for w := 2.0; w <= 20; w += 3 {
			perf := alpha0 * math.Pow(c, ac) * math.Pow(w, aw)
			pow := pstatic + c*pc + w*pw
			out = append(out, Sample{Alloc: []float64{c, w}, Perf: perf, Power: pow})
		}
	}
	return out
}

func fitSynth(t *testing.T) *Model {
	t.Helper()
	m, err := Fit("synth", []string{"cores", "ways"}, synthSamples(50, 0.6, 0.4, 5, 3, 1.5))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestFitRecoversExactModel(t *testing.T) {
	m := fitSynth(t)
	if math.Abs(m.Alpha0-50)/50 > 1e-6 {
		t.Errorf("α₀ = %v, want 50", m.Alpha0)
	}
	if math.Abs(m.Alpha[0]-0.6) > 1e-9 || math.Abs(m.Alpha[1]-0.4) > 1e-9 {
		t.Errorf("α = %v, want [0.6 0.4]", m.Alpha)
	}
	if math.Abs(m.PStatic-5) > 1e-6 {
		t.Errorf("P_static = %v, want 5", m.PStatic)
	}
	if math.Abs(m.P[0]-3) > 1e-9 || math.Abs(m.P[1]-1.5) > 1e-9 {
		t.Errorf("p = %v, want [3 1.5]", m.P)
	}
	if m.PerfR2 < 1-1e-9 || m.PowerR2 < 1-1e-9 {
		t.Errorf("R² = %v/%v, want 1 for noiseless data", m.PerfR2, m.PowerR2)
	}
	if err := m.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if m.String() == "" {
		t.Error("String should render")
	}
}

func TestFitWithNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	samples := synthSamples(50, 0.6, 0.4, 5, 3, 1.5)
	for i := range samples {
		samples[i].Perf *= 1 + rng.NormFloat64()*0.05
		if samples[i].Perf <= 0 {
			samples[i].Perf = 0.01
		}
		samples[i].Power *= 1 + rng.NormFloat64()*0.02
	}
	m, err := Fit("noisy", []string{"c", "w"}, samples)
	if err != nil {
		t.Fatal(err)
	}
	if m.PerfR2 < 0.9 || m.PowerR2 < 0.9 {
		t.Errorf("R² too low: %v/%v", m.PerfR2, m.PowerR2)
	}
	if math.Abs(m.Alpha[0]-0.6) > 0.1 {
		t.Errorf("αc = %v, want ≈0.6", m.Alpha[0])
	}
}

func TestFitValidation(t *testing.T) {
	good := synthSamples(50, 0.6, 0.4, 5, 3, 1.5)
	if _, err := Fit("x", nil, good); err == nil {
		t.Error("expected error for no resources")
	}
	if _, err := Fit("x", []string{"c", "w"}, good[:3]); err == nil {
		t.Error("expected error for too few samples")
	}
	bad := append([]Sample(nil), good...)
	bad[0].Alloc = []float64{1}
	if _, err := Fit("x", []string{"c", "w"}, bad); err == nil {
		t.Error("expected error for ragged alloc")
	}
	bad = append([]Sample(nil), good...)
	bad[1].Perf = 0
	if _, err := Fit("x", []string{"c", "w"}, bad); err == nil {
		t.Error("expected error for zero perf")
	}
	bad = append([]Sample(nil), good...)
	bad[2].Alloc = []float64{0, 5}
	if _, err := Fit("x", []string{"c", "w"}, bad); err == nil {
		t.Error("expected error for zero allocation")
	}
	bad = append([]Sample(nil), good...)
	bad[3].Power = -1
	if _, err := Fit("x", []string{"c", "w"}, bad); err == nil {
		t.Error("expected error for negative power")
	}
}

func TestValidateCatchesDegenerateModels(t *testing.T) {
	m := fitSynth(t)
	cases := []func(*Model){
		func(m *Model) { m.Alpha0 = 0 },
		func(m *Model) { m.Alpha[0] = -0.1 },
		func(m *Model) { m.P[1] = 0 },
		func(m *Model) { m.Alpha = m.Alpha[:1] },
	}
	for i, mutate := range cases {
		c := *m
		c.Alpha = append([]float64(nil), m.Alpha...)
		c.P = append([]float64(nil), m.P...)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestPerfAndPowerEvaluation(t *testing.T) {
	m := fitSynth(t)
	r := []float64{4, 10}
	wantPerf := 50 * math.Pow(4, 0.6) * math.Pow(10, 0.4)
	if got := m.Perf(r); math.Abs(got-wantPerf)/wantPerf > 1e-6 {
		t.Errorf("Perf = %v, want %v", got, wantPerf)
	}
	if got := m.Power(r); math.Abs(got-(5+12+15)) > 1e-6 {
		t.Errorf("Power = %v, want 32", got)
	}
	if got := m.DynamicPower(r); math.Abs(got-27) > 1e-6 {
		t.Errorf("DynamicPower = %v, want 27", got)
	}
	if got := m.Perf([]float64{0, 10}); got != 0 {
		t.Errorf("Perf with zero resource = %v", got)
	}
}

func TestDemandSpendsBudgetBySharares(t *testing.T) {
	m := fitSynth(t)
	budget := 60.0
	r := m.Demand(budget)
	// Cobb-Douglas expenditure shares: rⱼ·pⱼ = budget·αⱼ/Σα.
	if got := r[0] * m.P[0]; math.Abs(got-budget*0.6) > 1e-6 {
		t.Errorf("cores expenditure = %v, want %v", got, budget*0.6)
	}
	if got := r[1] * m.P[1]; math.Abs(got-budget*0.4) > 1e-6 {
		t.Errorf("ways expenditure = %v, want %v", got, budget*0.4)
	}
	// Total spend equals the budget.
	if got := m.DynamicPower(r); math.Abs(got-budget) > 1e-6 {
		t.Errorf("total spend = %v, want %v", got, budget)
	}
	// Degenerate budget.
	zero := m.Demand(0)
	if zero[0] != 0 || zero[1] != 0 {
		t.Errorf("Demand(0) = %v", zero)
	}
	neg := m.Demand(-5)
	if neg[0] != 0 || neg[1] != 0 {
		t.Errorf("Demand(-5) = %v", neg)
	}
}

func TestDemandIsOptimal(t *testing.T) {
	// Property: no random feasible allocation under the same budget beats
	// the closed-form demand.
	m := fitSynth(t)
	budget := 45.0
	best := m.Perf(m.Demand(budget))
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 2000; i++ {
		// Random split of the budget.
		f := rng.Float64()
		r := []float64{budget * f / m.P[0], budget * (1 - f) / m.P[1]}
		if m.Perf(r) > best*(1+1e-9) {
			t.Fatalf("random split %v beats demand: %v > %v", r, m.Perf(r), best)
		}
	}
}

func TestDemandCapped(t *testing.T) {
	m := fitSynth(t)
	// Loose caps: identical to unconstrained demand.
	budget := 40.0
	free, err := m.DemandCapped(budget, []float64{1000, 1000})
	if err != nil {
		t.Fatal(err)
	}
	want := m.Demand(budget)
	for j := range want {
		if math.Abs(free[j]-want[j]) > 1e-9 {
			t.Errorf("uncapped demand mismatch at %d: %v vs %v", j, free[j], want[j])
		}
	}
	// Binding cap on cores: cores clamp, leftover budget flows to ways.
	capped, err := m.DemandCapped(budget, []float64{2, 1000})
	if err != nil {
		t.Fatal(err)
	}
	if capped[0] != 2 {
		t.Errorf("cores = %v, want clamped 2", capped[0])
	}
	wantWays := (budget - 2*m.P[0]) / m.P[1]
	if math.Abs(capped[1]-wantWays) > 1e-9 {
		t.Errorf("ways = %v, want %v", capped[1], wantWays)
	}
	// Budget exceeding the cost of everything: all caps.
	all, err := m.DemandCapped(1e6, []float64{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if all[0] != 3 || all[1] != 7 {
		t.Errorf("rich demand = %v, want caps", all)
	}
	// Zero caps yield zero.
	none, err := m.DemandCapped(budget, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if none[0] != 0 || none[1] != 0 {
		t.Errorf("zero-cap demand = %v", none)
	}
	// Dimension mismatch.
	if _, err := m.DemandCapped(budget, []float64{1}); err == nil {
		t.Error("expected dimension error")
	}
}

func TestDemandCappedNeverExceedsBudgetOrCaps(t *testing.T) {
	m := fitSynth(t)
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 500; i++ {
		budget := rng.Float64() * 120
		upper := []float64{rng.Float64() * 12, rng.Float64() * 20}
		r, err := m.DemandCapped(budget, upper)
		if err != nil {
			t.Fatal(err)
		}
		for j := range r {
			if r[j] < -1e-9 || r[j] > upper[j]+1e-9 {
				t.Fatalf("iteration %d: r[%d]=%v outside [0, %v]", i, j, r[j], upper[j])
			}
		}
		if m.DynamicPower(r) > budget+1e-6 {
			t.Fatalf("iteration %d: spend %v exceeds budget %v", i, m.DynamicPower(r), budget)
		}
	}
}

func TestDemandCappedOptimalVsGrid(t *testing.T) {
	// Compare against a fine grid search for a binding-cap scenario.
	m := fitSynth(t)
	budget := 50.0
	upper := []float64{4, 30}
	r, err := m.DemandCapped(budget, upper)
	if err != nil {
		t.Fatal(err)
	}
	best := m.Perf(r)
	for c := 0.05; c <= upper[0]; c += 0.05 {
		spent := c * m.P[0]
		if spent > budget {
			break
		}
		w := math.Min((budget-spent)/m.P[1], upper[1])
		if w <= 0 {
			continue
		}
		if got := m.Perf([]float64{c, w}); got > best*(1+1e-6) {
			t.Fatalf("grid point (%v, %v) beats capped demand: %v > %v", c, w, got, best)
		}
	}
}

func TestPreferenceVectors(t *testing.T) {
	m := fitSynth(t)
	pref := m.Preference()
	// αc/pc = 0.2, αw/pw = 0.267 → cores share = 0.2/0.467 ≈ 0.4286.
	want := (0.6 / 3.0) / (0.6/3.0 + 0.4/1.5)
	if math.Abs(pref[0]-want) > 1e-6 {
		t.Errorf("cores preference = %v, want %v", pref[0], want)
	}
	if math.Abs(pref[0]+pref[1]-1) > 1e-9 {
		t.Error("preference should sum to 1")
	}
	direct := m.DirectPreference()
	if math.Abs(direct[0]-0.6) > 1e-9 || math.Abs(direct[1]-0.4) > 1e-9 {
		t.Errorf("direct preference = %v", direct)
	}
}

func TestMinPowerAlloc(t *testing.T) {
	m := fitSynth(t)
	target := 300.0
	r, err := m.MinPowerAlloc(target)
	if err != nil {
		t.Fatal(err)
	}
	// The allocation achieves the target exactly.
	if got := m.Perf(r); math.Abs(got-target)/target > 1e-9 {
		t.Errorf("Perf at min-power alloc = %v, want %v", got, target)
	}
	minPower := m.DynamicPower(r)
	// Property: random iso-performance allocations never use less power.
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 2000; i++ {
		c := 0.1 + rng.Float64()*30
		// Solve ways for iso-perf.
		w := math.Pow(target/(m.Alpha0*math.Pow(c, m.Alpha[0])), 1/m.Alpha[1])
		p := m.DynamicPower([]float64{c, w})
		if p < minPower*(1-1e-9) {
			t.Fatalf("iso-perf point (%v, %v) uses less power: %v < %v", c, w, p, minPower)
		}
	}
	if _, err := m.MinPowerAlloc(0); err == nil {
		t.Error("expected error for zero target")
	}
}

func TestMinPowerForMonotone(t *testing.T) {
	m := fitSynth(t)
	prev := 0.0
	for _, target := range []float64{50, 100, 200, 400, 800} {
		p, err := m.MinPowerFor(target)
		if err != nil {
			t.Fatal(err)
		}
		if p <= prev {
			t.Errorf("min power not increasing at target %v: %v <= %v", target, p, prev)
		}
		prev = p
	}
}
