package utility_test

import (
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"pocolo/internal/invariant"
	"pocolo/internal/machine"
	"pocolo/internal/profiler"
	"pocolo/internal/utility"
)

// directUnawareFrontier reimplements the server manager's power-unaware
// frontier scan (first feasible ways per cores column, dominated points
// dropped) as the reference for AppendUnawareFrontier.
func directUnawareFrontier(m *utility.Model, target float64, cores, ways int) []utility.GridPoint {
	var frontier []utility.GridPoint
	vec := make([]float64, 2)
	for c := 1; c <= cores; c++ {
		w := -1
		vec[0] = float64(c)
		for cand := 1; cand <= ways; cand++ {
			vec[1] = float64(cand)
			if m.Perf(vec) >= target {
				w = cand
				break
			}
		}
		if w == -1 {
			continue
		}
		if n := len(frontier); n > 0 && frontier[n-1].W == w {
			continue
		}
		frontier = append(frontier, utility.GridPoint{C: c, W: w})
	}
	return frontier
}

// assertPlanMatchesDirect checks, for every target, that the plan's
// min-power answer (allocation and error-ness) and its power-unaware
// frontier are identical to the direct searches.
func assertPlanMatchesDirect(t *testing.T, m *utility.Model, caps []int, targets []float64) {
	t.Helper()
	plan, err := utility.NewPlan(m, caps)
	if err != nil {
		t.Fatalf("NewPlan(%v): %v", caps, err)
	}
	for _, target := range targets {
		want, wantErr := m.IntegerMinPowerAlloc(target, caps)
		got, gotErr := plan.MinPowerAlloc(target)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("target %v: direct err=%v, plan err=%v", target, wantErr, gotErr)
		}
		if wantErr == nil && !reflect.DeepEqual(want, got) {
			t.Fatalf("target %v: direct alloc %v, plan alloc %v", target, want, got)
		}
		if wantErr == nil {
			rf := make([]float64, len(want))
			for i, v := range want {
				rf[i] = float64(v)
			}
			wantW := m.DynamicPower(rf)
			gotW, err := plan.MinPowerW(target)
			if err != nil || gotW != wantW {
				t.Fatalf("target %v: direct power %v, plan power %v (err %v)", target, wantW, gotW, err)
			}
		}
		if len(caps) == 2 {
			c, w, _, feasible := plan.MinPower2(target, -1)
			if feasible != (wantErr == nil) {
				t.Fatalf("target %v: direct err=%v, MinPower2 feasible=%v", target, wantErr, feasible)
			}
			if feasible && (c != want[0] || w != want[1]) {
				t.Fatalf("target %v: direct alloc %v, MinPower2 (%d,%d)", target, want, c, w)
			}
			wantFrontier := directUnawareFrontier(m, target, caps[0], caps[1])
			gotFrontier := plan.AppendUnawareFrontier(target, nil)
			if !reflect.DeepEqual(wantFrontier, gotFrontier) {
				t.Fatalf("target %v: direct frontier %v, plan frontier %v", target, wantFrontier, gotFrontier)
			}
		}
	}
}

// planTargets builds a target set that stresses the quantization edges:
// the exact achievable perf values of sampled grid points (where the
// feasible set changes membership), the adjacent representable floats on
// both sides, plus infeasible and degenerate values.
func planTargets(m *utility.Model, caps []int, rng *rand.Rand) []float64 {
	vec := make([]float64, len(caps))
	var targets []float64
	addPoint := func(alloc []int) {
		for j, v := range alloc {
			vec[j] = float64(v)
		}
		p := m.Perf(vec)
		if math.IsNaN(p) || p <= 0 {
			return
		}
		targets = append(targets,
			p,
			math.Nextafter(p, 0),
			math.Nextafter(p, math.Inf(1)),
			p/2,
		)
	}
	lo := make([]int, len(caps))
	hi := make([]int, len(caps))
	for j, c := range caps {
		lo[j] = 1
		hi[j] = c
	}
	addPoint(lo)
	addPoint(hi)
	for n := 0; n < 12; n++ {
		alloc := make([]int, len(caps))
		for j, c := range caps {
			alloc[j] = 1 + rng.Intn(c)
		}
		addPoint(alloc)
	}
	// Degenerate and out-of-range targets: zero, negative, NaN, +Inf, and
	// far beyond the grid's peak.
	for j, c := range caps {
		vec[j] = float64(c)
	}
	peak := m.Perf(vec)
	targets = append(targets, 0, -1, math.NaN(), math.Inf(1), peak*4, 1e-300)
	return targets
}

// TestPlanMatchesDirectFitted pins the equivalence on a realistically
// fitted model (the profiler's sphinx-like first LC app on the Table I
// platform) over the real machine caps.
func TestPlanMatchesDirectFitted(t *testing.T) {
	mc := machine.XeonE52650()
	rng := rand.New(rand.NewSource(7))
	cat, err := invariant.GenCatalog(rng, mc, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	models, err := profiler.FitAll(mc, append(cat.LC(), cat.BE()...), 7)
	if err != nil {
		t.Fatal(err)
	}
	caps := []int{mc.Cores, mc.LLCWays}
	for name, m := range models {
		t.Run(name, func(t *testing.T) {
			assertPlanMatchesDirect(t, m, caps, planTargets(m, caps, rand.New(rand.NewSource(11))))
		})
	}
}

// TestPlanMatchesDirectGenerated is the property test: across randomly
// generated platforms and profiler-fitted catalogs, the planner must agree
// with the exact search on every target, including the quantization edges.
func TestPlanMatchesDirectGenerated(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep in -short mode")
	}
	rng := rand.New(rand.NewSource(42))
	for draw := 0; draw < 6; draw++ {
		mc := invariant.GenMachine(rng)
		cat, err := invariant.GenCatalog(rng, mc, 1, 1)
		if err != nil {
			t.Fatalf("draw %d: %v", draw, err)
		}
		models, err := profiler.FitAll(mc, append(cat.LC(), cat.BE()...), int64(draw)*131)
		if err != nil {
			t.Fatalf("draw %d: %v", draw, err)
		}
		caps := []int{mc.Cores, mc.LLCWays}
		for name, m := range models {
			assertPlanMatchesDirect(t, m, caps, planTargets(m, caps, rng))
			// Also at deliberately awkward caps: single columns and rows
			// exercise the frontier's degenerate shapes.
			for _, altCaps := range [][]int{{1, mc.LLCWays}, {mc.Cores, 1}, {1, 1}, {3, 2}} {
				assertPlanMatchesDirect(t, m, altCaps, planTargets(m, altCaps, rng))
			}
			_ = name
		}
	}
}

// TestPlanWarmStart checks that warm-start lookups (reusing the previous
// cell) return exactly what a cold lookup would, across a slowly moving
// target — the manager's actual access pattern.
func TestPlanWarmStart(t *testing.T) {
	m := testModel(t)
	caps := []int{12, 20}
	plan, err := utility.NewPlan(m, caps)
	if err != nil {
		t.Fatal(err)
	}
	cell := -1
	warm := 0
	for i := 0; i < 400; i++ {
		target := 0.5 + float64(i)*0.05 // sweeps past the grid's peak into infeasible
		cw, ww, wc, wok := plan.MinPower2(target, cell)
		cc, wcold, _, cok := plan.MinPower2(target, -1)
		if wok != cok || (wok && (cw != cc || ww != wcold)) {
			t.Fatalf("target %v: warm (%d,%d,%v) != cold (%d,%d,%v)", target, cw, ww, wok, cc, wcold, cok)
		}
		if wok && wc == cell {
			warm++
		}
		cell = wc
	}
	if warm == 0 {
		t.Fatal("slow target sweep never reused a cell; warm start is not engaging")
	}
}

// TestPlanLogDomain sanity-checks the auxiliary Pow-free evaluation path:
// it must agree with Model.Perf to tight relative error on the grid, and
// fall back to the model outside it.
func TestPlanLogDomain(t *testing.T) {
	m := testModel(t)
	caps := []int{12, 20}
	plan, err := utility.NewPlan(m, caps)
	if err != nil {
		t.Fatal(err)
	}
	for c := 1; c <= caps[0]; c++ {
		for w := 1; w <= caps[1]; w++ {
			want := m.Perf([]float64{float64(c), float64(w)})
			got := plan.PerfLog([]int{c, w})
			if math.Abs(got-want) > 1e-9*math.Abs(want) {
				t.Fatalf("PerfLog(%d,%d)=%v, Perf=%v", c, w, got, want)
			}
		}
	}
	if got, want := plan.PerfLog([]int{0, 5}), 0.0; got != want {
		t.Fatalf("PerfLog at zero = %v, want 0", got)
	}
	outside := plan.PerfLog([]int{caps[0] + 3, 5})
	direct := m.Perf([]float64{float64(caps[0] + 3), 5})
	if outside != direct {
		t.Fatalf("PerfLog outside grid = %v, want Perf fallback %v", outside, direct)
	}
}

// TestPlanCacheSharing checks the cache returns one shared plan per
// (model, caps) pair, counts hits/misses, and is safe under concurrent
// cold-key races.
func TestPlanCacheSharing(t *testing.T) {
	m := testModel(t)
	caps := []int{12, 20}
	pc := utility.NewPlanCache()
	p1, err := pc.Get(m, caps)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := pc.Get(m, caps)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("same (model, caps) produced two distinct plans")
	}
	if _, err := pc.Get(m, []int{6, 20}); err != nil {
		t.Fatal(err)
	}
	entries, hits, misses := pc.Stats()
	if entries != 2 || hits != 1 || misses != 2 {
		t.Fatalf("stats = (%d entries, %d hits, %d misses), want (2, 1, 2)", entries, hits, misses)
	}

	// Concurrent cold gets on a fresh cache must build exactly once and
	// agree (run under -race this also proves the sharing is race-clean).
	pc.Reset()
	var wg sync.WaitGroup
	plans := make([]*utility.Plan, 16)
	for i := range plans {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := pc.Get(m, caps)
			if err != nil {
				t.Error(err)
				return
			}
			// Exercise the shared plan concurrently.
			if _, err := p.MinPowerAlloc(1); err != nil {
				t.Error(err)
			}
			plans[i] = p
		}(i)
	}
	wg.Wait()
	for _, p := range plans[1:] {
		if p != plans[0] {
			t.Fatal("concurrent gets returned distinct plans")
		}
	}
}

// TestPlanDeepCopy checks a built plan is independent of the source model:
// mutating the model afterwards must not change the plan's answers.
func TestPlanDeepCopy(t *testing.T) {
	m := testModel(t)
	caps := []int{12, 20}
	plan, err := utility.NewPlan(m, caps)
	if err != nil {
		t.Fatal(err)
	}
	before, err := plan.MinPowerAlloc(1)
	if err != nil {
		t.Fatal(err)
	}
	m.Alpha0 *= 100
	m.Alpha[0] = 9
	m.P[1] = 1e6
	after, err := plan.MinPowerAlloc(1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("plan answer changed after model mutation: %v -> %v", before, after)
	}
}

// TestPlanCapErrors checks construction rejects the same caps the direct
// search rejects, and that oversized grids are refused.
func TestPlanCapErrors(t *testing.T) {
	m := testModel(t)
	if _, err := utility.NewPlan(m, []int{12}); err == nil {
		t.Fatal("wrong cap count accepted")
	}
	if _, err := utility.NewPlan(m, []int{0, 20}); err == nil {
		t.Fatal("zero cap accepted")
	}
	if _, err := utility.NewPlan(m, []int{1 << 12, 1 << 12}); err == nil {
		t.Fatal("oversized grid accepted")
	}
	if _, err := utility.NewPlan(nil, []int{12, 20}); err == nil {
		t.Fatal("nil model accepted")
	}
}

// testModel fits a small realistic 2-resource model from profiler samples.
func testModel(t *testing.T) *utility.Model {
	t.Helper()
	mc := machine.XeonE52650()
	rng := rand.New(rand.NewSource(3))
	cat, err := invariant.GenCatalog(rng, mc, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	models, err := profiler.FitAll(mc, cat.LC(), 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range models {
		return m
	}
	t.Fatal("no model fitted")
	return nil
}
