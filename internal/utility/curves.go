package utility

import (
	"errors"
	"fmt"
	"math"
)

// CurvePoint is one point of a two-resource curve (x = first resource,
// y = second resource).
type CurvePoint struct {
	X, Y float64
}

// IndifferenceCurve returns the iso-performance curve of a two-resource
// model: for n values of the first resource between xLo and xHi, the amount
// of the second resource that keeps performance exactly at targetPerf
// (Fig. 5's solid curves). Points whose required y is non-positive or
// non-finite are skipped.
func (m *Model) IndifferenceCurve(targetPerf, xLo, xHi float64, n int) ([]CurvePoint, error) {
	if len(m.Alpha) != 2 {
		return nil, fmt.Errorf("utility: indifference curves need a 2-resource model, have %d", len(m.Alpha))
	}
	if targetPerf <= 0 {
		return nil, errors.New("utility: target performance must be positive")
	}
	if n < 2 || xLo <= 0 || xHi <= xLo {
		return nil, errors.New("utility: invalid sweep range")
	}
	out := make([]CurvePoint, 0, n)
	// The outer exponent 1/α₂ is loop-invariant; hoisting it drops one
	// division per point. The base expression must keep its shape — e.g.
	// splitting target/(α₀·x^α₁) into (target/α₀)/x^α₁ would reassociate
	// the floating-point math and shift results by ulps.
	invA1 := 1 / m.Alpha[1]
	span := xHi - xLo
	for i := 0; i < n; i++ {
		x := xLo + span*float64(i)/float64(n-1)
		// Solve α₀·x^α₁·y^α₂ = target for y.
		y := math.Pow(targetPerf/(m.Alpha0*math.Pow(x, m.Alpha[0])), invA1)
		if y <= 0 || math.IsInf(y, 0) || math.IsNaN(y) {
			continue
		}
		out = append(out, CurvePoint{X: x, Y: y})
	}
	if len(out) == 0 {
		return nil, errors.New("utility: indifference curve empty over the sweep range")
	}
	return out, nil
}

// ExpansionPath returns the locus of least-power allocations across a set
// of performance targets — the dotted curve of Fig. 5 that the server
// manager walks as load changes.
func (m *Model) ExpansionPath(targets []float64) ([]CurvePoint, error) {
	if len(m.Alpha) != 2 {
		return nil, fmt.Errorf("utility: expansion path needs a 2-resource model, have %d", len(m.Alpha))
	}
	if len(targets) == 0 {
		return nil, errors.New("utility: no targets")
	}
	out := make([]CurvePoint, 0, len(targets))
	for _, t := range targets {
		r, err := m.MinPowerAlloc(t)
		if err != nil {
			return nil, err
		}
		out = append(out, CurvePoint{X: r[0], Y: r[1]})
	}
	return out, nil
}

// BoxPoint is one Edgeworth-box entry: the primary application's
// least-power allocation at a load, and the complementary spare resources
// available to the secondary application (Fig. 6).
type BoxPoint struct {
	// Target is the primary's performance target (e.g. load in req/s).
	Target float64
	// Primary is the primary application's least-power allocation.
	Primary CurvePoint
	// Secondary is the complement: total minus primary, the best-effort
	// application's feasible corner.
	Secondary CurvePoint
}

// EdgeworthBox computes the box geometry for a two-resource model: for
// each load target, the primary's least-power allocation (clamped to the
// box) and the complementary spare allocation with respect to the totals.
func EdgeworthBox(primary *Model, targets []float64, totalX, totalY float64) ([]BoxPoint, error) {
	if len(primary.Alpha) != 2 {
		return nil, fmt.Errorf("utility: Edgeworth box needs a 2-resource model, have %d", len(primary.Alpha))
	}
	if totalX <= 0 || totalY <= 0 {
		return nil, errors.New("utility: box totals must be positive")
	}
	if len(targets) == 0 {
		return nil, errors.New("utility: no targets")
	}
	out := make([]BoxPoint, 0, len(targets))
	for _, t := range targets {
		r, err := primary.MinPowerAlloc(t)
		if err != nil {
			return nil, err
		}
		x := math.Min(r[0], totalX)
		y := math.Min(r[1], totalY)
		out = append(out, BoxPoint{
			Target:    t,
			Primary:   CurvePoint{X: x, Y: y},
			Secondary: CurvePoint{X: totalX - x, Y: totalY - y},
		})
	}
	return out, nil
}

// IntegerMinPowerAlloc finds the integer allocation (each resource between
// 1 and caps[j]) that achieves targetPerf under the fitted model at the
// least fitted dynamic power. It scans the full integer grid, which is
// exact and cheap for server-scale knob counts (12 cores × 20 ways = 240
// candidates). It returns an error when no allocation within caps reaches
// the target.
func (m *Model) IntegerMinPowerAlloc(targetPerf float64, caps []int) ([]int, error) {
	k := len(m.Alpha)
	if len(caps) != k {
		return nil, fmt.Errorf("utility: caps have %d entries, want %d", len(caps), k)
	}
	for j, c := range caps {
		if c < 1 {
			return nil, fmt.Errorf("utility: cap for %s must be at least 1", m.Resources[j])
		}
	}
	if targetPerf <= 0 {
		return nil, errors.New("utility: target performance must be positive")
	}
	best := make([]int, 0, k)
	bestPower := math.Inf(1)
	cur := make([]int, k)
	rf := make([]float64, k)
	var walk func(j int)
	walk = func(j int) {
		if j == k {
			for i, v := range cur {
				rf[i] = float64(v)
			}
			if m.Perf(rf) >= targetPerf {
				if p := m.DynamicPower(rf); p < bestPower {
					bestPower = p
					best = append(best[:0], cur...)
				}
			}
			return
		}
		for v := 1; v <= caps[j]; v++ {
			cur[j] = v
			walk(j + 1)
		}
	}
	walk(0)
	if len(best) == 0 {
		return nil, fmt.Errorf("utility: target %v unreachable within caps %v", targetPerf, caps)
	}
	return append([]int(nil), best...), nil
}
