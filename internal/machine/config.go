// Package machine simulates the server hardware platform the paper runs on:
// an Intel Xeon E5-2650 with 12 cores, per-core DVFS between 1.2 and
// 2.2 GHz, and a 20-way 30 MB LLC partitionable via Intel CAT. The package
// exposes the same three allocation knobs Pocolo's prototype drives on
// Linux — core assignment (taskset), LLC way allocation (CAT), and per-core
// frequency scaling (cpupowerutils) — plus a CPU-time duty-cycle limiter
// used by the power capper as its coarse second-stage knob.
package machine

import "fmt"

// Config describes a server platform (Table I of the paper).
type Config struct {
	Name        string
	Cores       int     // physical cores available for allocation
	LLCWays     int     // LLC ways available via CAT-style partitioning
	LLCMB       float64 // total LLC capacity, MB
	MemoryGB    int
	StorageGB   int
	MinFreqGHz  float64 // lowest DVFS operating point
	MaxFreqGHz  float64 // highest DVFS operating point (turbo disabled)
	FreqStepGHz float64 // DVFS granularity
	IdlePowerW  float64 // wall power with all cores idle
	// ActivePowerW is the nominal all-cores-busy power of the platform at
	// max frequency for a reference workload; individual applications can
	// draw more or less (Table II spans 133–182 W).
	ActivePowerW float64
}

// XeonE52650 returns the experimental platform from Table I.
func XeonE52650() Config {
	return Config{
		Name:         "Intel Xeon E5-2650",
		Cores:        12,
		LLCWays:      20,
		LLCMB:        30,
		MemoryGB:     256,
		StorageGB:    480,
		MinFreqGHz:   1.2,
		MaxFreqGHz:   2.2,
		FreqStepGHz:  0.1,
		IdlePowerW:   50,
		ActivePowerW: 135,
	}
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	switch {
	case c.Cores < 1:
		return fmt.Errorf("machine: config %q: need at least one core", c.Name)
	case c.LLCWays < 1:
		return fmt.Errorf("machine: config %q: need at least one LLC way", c.Name)
	case c.MinFreqGHz <= 0 || c.MaxFreqGHz < c.MinFreqGHz:
		return fmt.Errorf("machine: config %q: invalid frequency range [%v, %v]", c.Name, c.MinFreqGHz, c.MaxFreqGHz)
	case c.FreqStepGHz <= 0:
		return fmt.Errorf("machine: config %q: invalid frequency step %v", c.Name, c.FreqStepGHz)
	case c.IdlePowerW < 0 || c.ActivePowerW <= c.IdlePowerW:
		return fmt.Errorf("machine: config %q: invalid power envelope idle=%v active=%v", c.Name, c.IdlePowerW, c.ActivePowerW)
	}
	return nil
}

// Alloc is a resource grant: a number of cores (with all of them clocked at
// FreqGHz), a number of LLC ways, and the duty cycle the grant may run at.
// Duty = 1 means unrestricted CPU time; the power capper lowers it as its
// last-resort throttle.
type Alloc struct {
	Cores   int
	Ways    int
	FreqGHz float64
	Duty    float64
}

// Full returns the allocation covering the whole machine at max frequency.
func (c Config) Full() Alloc {
	return Alloc{Cores: c.Cores, Ways: c.LLCWays, FreqGHz: c.MaxFreqGHz, Duty: 1}
}

// ClampFreq snaps f to the platform's DVFS range and step grid.
func (c Config) ClampFreq(f float64) float64 {
	if f < c.MinFreqGHz {
		return c.MinFreqGHz
	}
	if f > c.MaxFreqGHz {
		return c.MaxFreqGHz
	}
	// Snap to the step grid anchored at MinFreqGHz.
	steps := int((f-c.MinFreqGHz)/c.FreqStepGHz + 0.5)
	snapped := c.MinFreqGHz + float64(steps)*c.FreqStepGHz
	if snapped > c.MaxFreqGHz {
		snapped = c.MaxFreqGHz
	}
	return snapped
}

// IsZero reports whether the allocation grants nothing.
func (a Alloc) IsZero() bool { return a.Cores == 0 && a.Ways == 0 }

// String renders the allocation compactly, e.g. "4c/8w@2.2GHz d=1.00".
func (a Alloc) String() string {
	return fmt.Sprintf("%dc/%dw@%.1fGHz d=%.2f", a.Cores, a.Ways, a.FreqGHz, a.Duty)
}
