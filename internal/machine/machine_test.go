package machine

import (
	"errors"
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestXeonE52650Config(t *testing.T) {
	cfg := XeonE52650()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Table I config invalid: %v", err)
	}
	if cfg.Cores != 12 || cfg.LLCWays != 20 || cfg.LLCMB != 30 {
		t.Errorf("unexpected core/LLC config: %+v", cfg)
	}
	if cfg.MinFreqGHz != 1.2 || cfg.MaxFreqGHz != 2.2 {
		t.Errorf("unexpected DVFS range: %+v", cfg)
	}
	if cfg.IdlePowerW != 50 || cfg.ActivePowerW != 135 {
		t.Errorf("unexpected power envelope: %+v", cfg)
	}
}

func TestConfigValidate(t *testing.T) {
	base := XeonE52650()
	mutate := []func(*Config){
		func(c *Config) { c.Cores = 0 },
		func(c *Config) { c.LLCWays = 0 },
		func(c *Config) { c.MinFreqGHz = 0 },
		func(c *Config) { c.MaxFreqGHz = 0.5 },
		func(c *Config) { c.FreqStepGHz = 0 },
		func(c *Config) { c.IdlePowerW = -5 },
		func(c *Config) { c.ActivePowerW = c.IdlePowerW },
	}
	for i, m := range mutate {
		c := base
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d: expected validation error", i)
		}
	}
}

func TestClampFreq(t *testing.T) {
	cfg := XeonE52650()
	cases := []struct{ in, want float64 }{
		{0.5, 1.2},
		{3.0, 2.2},
		{1.75, 1.8}, // snaps to nearest 0.1 step from 1.2
		{1.74, 1.7},
		{2.2, 2.2},
		{1.2, 1.2},
	}
	for _, c := range cases {
		if got := cfg.ClampFreq(c.in); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("ClampFreq(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestClampFreqAlwaysInRange(t *testing.T) {
	cfg := XeonE52650()
	f := func(x float64) bool {
		if math.IsNaN(x) {
			return true
		}
		got := cfg.ClampFreq(x)
		return got >= cfg.MinFreqGHz-1e-9 && got <= cfg.MaxFreqGHz+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAllocHelpers(t *testing.T) {
	cfg := XeonE52650()
	full := cfg.Full()
	if full.Cores != 12 || full.Ways != 20 || full.FreqGHz != 2.2 || full.Duty != 1 {
		t.Errorf("Full = %+v", full)
	}
	if !(Alloc{}).IsZero() {
		t.Error("zero alloc should be zero")
	}
	if full.IsZero() {
		t.Error("full alloc should not be zero")
	}
	if full.String() == "" {
		t.Error("String should render something")
	}
}

func newTestServer(t *testing.T) *Server {
	t.Helper()
	s, err := NewServer(XeonE52650())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewServerRejectsBadConfig(t *testing.T) {
	if _, err := NewServer(Config{}); err == nil {
		t.Error("expected error for invalid config")
	}
}

func TestTenantLifecycle(t *testing.T) {
	s := newTestServer(t)
	if err := s.AddTenant(""); err == nil {
		t.Error("expected error for empty tenant name")
	}
	if err := s.AddTenant("lc"); err != nil {
		t.Fatal(err)
	}
	if err := s.AddTenant("lc"); err == nil {
		t.Error("expected error for duplicate tenant")
	}
	if err := s.AddTenant("be"); err != nil {
		t.Fatal(err)
	}
	got := s.Tenants()
	if len(got) != 2 || got[0] != "be" || got[1] != "lc" {
		t.Errorf("Tenants = %v", got)
	}
	if err := s.SetCores("lc", 4); err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveTenant("lc"); err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveTenant("lc"); err == nil {
		t.Error("expected error removing unknown tenant")
	}
	cores, ways := s.Free()
	if cores != 12 || ways != 20 {
		t.Errorf("resources not released: free = %d cores, %d ways", cores, ways)
	}
}

func TestUnknownTenantOperations(t *testing.T) {
	s := newTestServer(t)
	if err := s.SetCores("ghost", 1); !errors.Is(err, ErrUnknownTenant) {
		t.Errorf("SetCores: %v", err)
	}
	if err := s.SetWays("ghost", 1); !errors.Is(err, ErrUnknownTenant) {
		t.Errorf("SetWays: %v", err)
	}
	if _, err := s.SetFreq("ghost", 2.0); !errors.Is(err, ErrUnknownTenant) {
		t.Errorf("SetFreq: %v", err)
	}
	if err := s.SetDuty("ghost", 0.5); !errors.Is(err, ErrUnknownTenant) {
		t.Errorf("SetDuty: %v", err)
	}
	if err := s.SetAlloc("ghost", Alloc{Duty: 1}); !errors.Is(err, ErrUnknownTenant) {
		t.Errorf("SetAlloc: %v", err)
	}
	if _, err := s.Alloc("ghost"); !errors.Is(err, ErrUnknownTenant) {
		t.Errorf("Alloc: %v", err)
	}
}

func TestCoreAndWayAccounting(t *testing.T) {
	s := newTestServer(t)
	for _, name := range []string{"lc", "be"} {
		if err := s.AddTenant(name); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.SetCores("lc", 8); err != nil {
		t.Fatal(err)
	}
	if err := s.SetWays("lc", 15); err != nil {
		t.Fatal(err)
	}
	cores, ways := s.Free()
	if cores != 4 || ways != 5 {
		t.Errorf("free = %d/%d, want 4/5", cores, ways)
	}
	// Overcommit must fail without changing state.
	if err := s.SetCores("be", 5); !errors.Is(err, ErrOvercommit) {
		t.Errorf("expected overcommit, got %v", err)
	}
	if err := s.SetWays("be", 6); !errors.Is(err, ErrOvercommit) {
		t.Errorf("expected overcommit, got %v", err)
	}
	if err := s.SetCores("be", 4); err != nil {
		t.Fatal(err)
	}
	// Shrinking lc frees cores for be.
	if err := s.SetCores("lc", 2); err != nil {
		t.Fatal(err)
	}
	cores, _ = s.Free()
	if cores != 6 {
		t.Errorf("free cores = %d, want 6", cores)
	}
	a, err := s.Alloc("lc")
	if err != nil {
		t.Fatal(err)
	}
	if a.Cores != 2 || a.Ways != 15 {
		t.Errorf("lc alloc = %+v", a)
	}
	if err := s.SetCores("lc", -1); err == nil {
		t.Error("expected error for negative count")
	}
}

func TestSetFreqAndDuty(t *testing.T) {
	s := newTestServer(t)
	if err := s.AddTenant("be"); err != nil {
		t.Fatal(err)
	}
	got, err := s.SetFreq("be", 9.9)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2.2 {
		t.Errorf("SetFreq clamp = %v, want 2.2", got)
	}
	got, err = s.SetFreq("be", 1.53)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1.5) > 1e-9 {
		t.Errorf("SetFreq snap = %v, want 1.5", got)
	}
	for _, bad := range []float64{0, -0.5, 1.5} {
		if err := s.SetDuty("be", bad); err == nil {
			t.Errorf("SetDuty(%v): expected error", bad)
		}
	}
	if err := s.SetDuty("be", 0.25); err != nil {
		t.Fatal(err)
	}
	a, err := s.Alloc("be")
	if err != nil {
		t.Fatal(err)
	}
	if a.Duty != 0.25 || math.Abs(a.FreqGHz-1.5) > 1e-9 {
		t.Errorf("alloc = %+v", a)
	}
}

func TestSetAllocAtomicity(t *testing.T) {
	s := newTestServer(t)
	for _, name := range []string{"lc", "be"} {
		if err := s.AddTenant(name); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.SetAlloc("lc", Alloc{Cores: 10, Ways: 10, FreqGHz: 2.2, Duty: 1}); err != nil {
		t.Fatal(err)
	}
	// be asks for feasible ways but infeasible cores: nothing may change.
	before, _ := s.Alloc("be")
	err := s.SetAlloc("be", Alloc{Cores: 5, Ways: 5, FreqGHz: 2.0, Duty: 1})
	if !errors.Is(err, ErrOvercommit) {
		t.Fatalf("expected overcommit, got %v", err)
	}
	after, _ := s.Alloc("be")
	if after != before {
		t.Errorf("failed SetAlloc mutated state: %+v -> %+v", before, after)
	}
	// Infeasible ways with feasible cores: also atomic.
	err = s.SetAlloc("be", Alloc{Cores: 2, Ways: 11, FreqGHz: 2.0, Duty: 1})
	if !errors.Is(err, ErrOvercommit) {
		t.Fatalf("expected overcommit, got %v", err)
	}
	after, _ = s.Alloc("be")
	if after != before {
		t.Errorf("failed SetAlloc mutated state: %+v -> %+v", before, after)
	}
	// Bad duty rejected.
	if err := s.SetAlloc("be", Alloc{Cores: 1, Ways: 1, FreqGHz: 2.0, Duty: 0}); err == nil {
		t.Error("expected duty error")
	}
	// Valid alloc applies fully.
	if err := s.SetAlloc("be", Alloc{Cores: 2, Ways: 10, FreqGHz: 1.8, Duty: 0.8}); err != nil {
		t.Fatal(err)
	}
	a, _ := s.Alloc("be")
	if a.Cores != 2 || a.Ways != 10 || math.Abs(a.FreqGHz-1.8) > 1e-9 || a.Duty != 0.8 {
		t.Errorf("alloc = %+v", a)
	}
}

func TestAllocationsSnapshot(t *testing.T) {
	s := newTestServer(t)
	if err := s.AddTenant("lc"); err != nil {
		t.Fatal(err)
	}
	if err := s.SetAlloc("lc", Alloc{Cores: 3, Ways: 7, FreqGHz: 2.2, Duty: 1}); err != nil {
		t.Fatal(err)
	}
	snap := s.Allocations()
	if len(snap) != 1 || snap["lc"].Cores != 3 || snap["lc"].Ways != 7 {
		t.Errorf("Allocations = %+v", snap)
	}
}

func TestServerInvariantNoDoubleOwnership(t *testing.T) {
	// Property: after any sequence of count changes, total owned + free
	// equals capacity for both resources.
	s := newTestServer(t)
	names := []string{"a", "b", "c"}
	for _, n := range names {
		if err := s.AddTenant(n); err != nil {
			t.Fatal(err)
		}
	}
	f := func(ops []struct {
		Who   uint8
		Cores uint8
		Ways  uint8
	}) bool {
		for _, op := range ops {
			name := names[int(op.Who)%len(names)]
			_ = s.SetCores(name, int(op.Cores)%16)
			_ = s.SetWays(name, int(op.Ways)%24)
			total := 0
			for _, n := range names {
				a, err := s.Alloc(n)
				if err != nil {
					return false
				}
				total += a.Cores
			}
			free, _ := s.Free()
			if total+free != s.Config().Cores {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestServerConcurrentSafety(t *testing.T) {
	s := newTestServer(t)
	for _, n := range []string{"a", "b"} {
		if err := s.AddTenant(n); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		name := []string{"a", "b"}[g%2]
		go func(name string, seed int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = s.SetCores(name, (seed+i)%7)
				_ = s.SetWays(name, (seed+i)%11)
				_, _ = s.SetFreq(name, 1.2+float64(i%10)*0.1)
				_, _ = s.Alloc(name)
				s.Free()
			}
		}(name, g)
	}
	wg.Wait()
	// Invariant: accounting is still consistent.
	total := 0
	for _, n := range s.Tenants() {
		a, err := s.Alloc(n)
		if err != nil {
			t.Fatal(err)
		}
		total += a.Cores
	}
	free, _ := s.Free()
	if total+free != s.Config().Cores {
		t.Errorf("core accounting broken: owned %d + free %d != %d", total, free, s.Config().Cores)
	}
}
