package machine

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Common allocation errors.
var (
	ErrUnknownTenant = errors.New("machine: unknown tenant")
	ErrOvercommit    = errors.New("machine: allocation exceeds free capacity")
)

// Server models one physical machine. Tenants (applications) are granted
// disjoint sets of cores and LLC ways; each tenant's cores share one DVFS
// setting (the prototype sets per-core frequency uniformly for an app's
// cores) and one duty cycle. All methods are safe for concurrent use.
type Server struct {
	cfg Config

	mu        sync.Mutex
	coreOwner []string // per-core tenant name, "" = free
	wayOwner  []string // per-LLC-way tenant name, "" = free
	tenants   map[string]*tenantState
}

type tenantState struct {
	freqGHz float64
	duty    float64
}

// NewServer creates a server for the given platform configuration.
func NewServer(cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Server{
		cfg:       cfg,
		coreOwner: make([]string, cfg.Cores),
		wayOwner:  make([]string, cfg.LLCWays),
		tenants:   make(map[string]*tenantState),
	}, nil
}

// Config returns the platform configuration.
func (s *Server) Config() Config { return s.cfg }

// AddTenant registers an application on the server with no resources, max
// frequency and full duty cycle.
func (s *Server) AddTenant(name string) error {
	if name == "" {
		return errors.New("machine: tenant name must be non-empty")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tenants[name]; ok {
		return fmt.Errorf("machine: tenant %q already exists", name)
	}
	s.tenants[name] = &tenantState{freqGHz: s.cfg.MaxFreqGHz, duty: 1}
	return nil
}

// RemoveTenant releases all resources held by the tenant and forgets it.
func (s *Server) RemoveTenant(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tenants[name]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownTenant, name)
	}
	for i, o := range s.coreOwner {
		if o == name {
			s.coreOwner[i] = ""
		}
	}
	for i, o := range s.wayOwner {
		if o == name {
			s.wayOwner[i] = ""
		}
	}
	delete(s.tenants, name)
	return nil
}

// Tenants returns the registered tenant names in sorted order.
func (s *Server) Tenants() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.tenants))
	for n := range s.tenants {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// setCount adjusts the number of units (cores or ways) owned by name in the
// owner slice to want, grabbing free units or releasing owned ones.
func setCount(owner []string, name string, want int) error {
	if want < 0 {
		return fmt.Errorf("machine: negative allocation %d", want)
	}
	have := 0
	free := 0
	for _, o := range owner {
		switch o {
		case name:
			have++
		case "":
			free++
		}
	}
	switch {
	case want > have:
		need := want - have
		if need > free {
			return fmt.Errorf("%w: want %d, have %d, free %d", ErrOvercommit, want, have, free)
		}
		for i := range owner {
			if need == 0 {
				break
			}
			if owner[i] == "" {
				owner[i] = name
				need--
			}
		}
	case want < have:
		drop := have - want
		for i := len(owner) - 1; i >= 0 && drop > 0; i-- {
			if owner[i] == name {
				owner[i] = ""
				drop--
			}
		}
	}
	return nil
}

// SetCores grants the tenant exactly n cores (taskset analog).
func (s *Server) SetCores(name string, n int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tenants[name]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownTenant, name)
	}
	return setCount(s.coreOwner, name, n)
}

// SetWays grants the tenant exactly n LLC ways (Intel CAT analog).
func (s *Server) SetWays(name string, n int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tenants[name]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownTenant, name)
	}
	return setCount(s.wayOwner, name, n)
}

// SetFreq sets the DVFS operating point for all of the tenant's cores
// (cpupowerutils analog). The value is clamped and snapped to the
// platform's grid; the effective value is returned.
func (s *Server) SetFreq(name string, ghz float64) (float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ts, ok := s.tenants[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownTenant, name)
	}
	ts.freqGHz = s.cfg.ClampFreq(ghz)
	return ts.freqGHz, nil
}

// SetDuty sets the CPU-time duty cycle in (0, 1] for the tenant. The power
// capper uses this as its coarse knob after frequency scaling bottoms out.
func (s *Server) SetDuty(name string, duty float64) error {
	if duty <= 0 || duty > 1 {
		return fmt.Errorf("machine: duty cycle %v outside (0, 1]", duty)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ts, ok := s.tenants[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownTenant, name)
	}
	ts.duty = duty
	return nil
}

// SetAlloc applies a full allocation (cores, ways, frequency, duty) in one
// call. On resource errors nothing is partially applied.
func (s *Server) SetAlloc(name string, a Alloc) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	ts, ok := s.tenants[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownTenant, name)
	}
	if a.Duty <= 0 || a.Duty > 1 {
		return fmt.Errorf("machine: duty cycle %v outside (0, 1]", a.Duty)
	}
	// Validate both count changes before mutating (setCount mutates as it
	// goes, so check feasibility up front).
	if err := s.feasible(s.coreOwner, name, a.Cores); err != nil {
		return fmt.Errorf("cores: %w", err)
	}
	if err := s.feasible(s.wayOwner, name, a.Ways); err != nil {
		return fmt.Errorf("ways: %w", err)
	}
	if err := setCount(s.coreOwner, name, a.Cores); err != nil {
		return err
	}
	if err := setCount(s.wayOwner, name, a.Ways); err != nil {
		return err
	}
	ts.freqGHz = s.cfg.ClampFreq(a.FreqGHz)
	ts.duty = a.Duty
	return nil
}

func (s *Server) feasible(owner []string, name string, want int) error {
	if want < 0 {
		return fmt.Errorf("machine: negative allocation %d", want)
	}
	have, free := 0, 0
	for _, o := range owner {
		switch o {
		case name:
			have++
		case "":
			free++
		}
	}
	if want > have+free {
		return fmt.Errorf("%w: want %d, have %d, free %d", ErrOvercommit, want, have, free)
	}
	return nil
}

// Alloc returns the tenant's current allocation.
func (s *Server) Alloc(name string) (Alloc, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ts, ok := s.tenants[name]
	if !ok {
		return Alloc{}, fmt.Errorf("%w: %q", ErrUnknownTenant, name)
	}
	a := Alloc{FreqGHz: ts.freqGHz, Duty: ts.duty}
	for _, o := range s.coreOwner {
		if o == name {
			a.Cores++
		}
	}
	for _, o := range s.wayOwner {
		if o == name {
			a.Ways++
		}
	}
	return a, nil
}

// Free returns the number of unallocated cores and LLC ways.
func (s *Server) Free() (cores, ways int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, o := range s.coreOwner {
		if o == "" {
			cores++
		}
	}
	for _, o := range s.wayOwner {
		if o == "" {
			ways++
		}
	}
	return cores, ways
}

// Audit performs a deep consistency check of the server's internal state:
// owner slices sized to the platform, every owned unit belonging to a
// registered tenant, and every tenant's DVFS and duty settings inside the
// platform envelope. A healthy server always passes; the invariant harness
// calls it every tick to catch allocation-path regressions (double
// ownership would surface as an orphaned owner entry or a conservation
// mismatch in the per-tenant counts).
func (s *Server) Audit() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.coreOwner) != s.cfg.Cores {
		return fmt.Errorf("machine: audit: %d core slots for a %d-core platform", len(s.coreOwner), s.cfg.Cores)
	}
	if len(s.wayOwner) != s.cfg.LLCWays {
		return fmt.Errorf("machine: audit: %d way slots for a %d-way platform", len(s.wayOwner), s.cfg.LLCWays)
	}
	for i, o := range s.coreOwner {
		if o == "" {
			continue
		}
		if _, ok := s.tenants[o]; !ok {
			return fmt.Errorf("machine: audit: core %d owned by unregistered tenant %q", i, o)
		}
	}
	for i, o := range s.wayOwner {
		if o == "" {
			continue
		}
		if _, ok := s.tenants[o]; !ok {
			return fmt.Errorf("machine: audit: way %d owned by unregistered tenant %q", i, o)
		}
	}
	const eps = 1e-9
	for name, ts := range s.tenants {
		if ts.duty <= 0 || ts.duty > 1 {
			return fmt.Errorf("machine: audit: tenant %q duty %v outside (0, 1]", name, ts.duty)
		}
		if ts.freqGHz < s.cfg.MinFreqGHz-eps || ts.freqGHz > s.cfg.MaxFreqGHz+eps {
			return fmt.Errorf("machine: audit: tenant %q frequency %v outside [%v, %v]",
				name, ts.freqGHz, s.cfg.MinFreqGHz, s.cfg.MaxFreqGHz)
		}
	}
	return nil
}

// Allocations returns a snapshot of every tenant's allocation.
func (s *Server) Allocations() map[string]Alloc {
	out := make(map[string]Alloc)
	for _, name := range s.Tenants() {
		a, err := s.Alloc(name)
		if err == nil {
			out[name] = a
		}
	}
	return out
}
