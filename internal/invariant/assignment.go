package invariant

import (
	"fmt"
	"math"
)

// CheckAssignment validates a solver's output against its input matrix:
// the assignment must be a matching (every row assigned a distinct column
// inside the matrix), every matrix entry must be finite, and the reported
// total must equal the recomputed sum of the assigned entries. The cluster
// layer runs this on every Matrix.Solve result so a solver regression is
// caught at the call site, not three layers up in an experiment table.
func CheckAssignment(value [][]float64, assignment []int, total float64) error {
	n := len(value)
	if len(assignment) != n {
		return fmt.Errorf("invariant: assignment length %d for %d rows", len(assignment), n)
	}
	if n == 0 {
		if total != 0 {
			return fmt.Errorf("invariant: empty assignment reports total %v", total)
		}
		return nil
	}
	m := len(value[0])
	used := make([]int, m)
	for j := range used {
		used[j] = -1
	}
	sum := 0.0
	for i, j := range assignment {
		if len(value[i]) != m {
			return fmt.Errorf("invariant: ragged matrix row %d (%d columns, want %d)", i, len(value[i]), m)
		}
		if j < 0 || j >= m {
			return fmt.Errorf("invariant: row %d assigned column %d outside [0, %d)", i, j, m)
		}
		if prev := used[j]; prev >= 0 {
			return fmt.Errorf("invariant: rows %d and %d both assigned column %d (not a matching)", prev, i, j)
		}
		used[j] = i
		v := value[i][j]
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("invariant: assigned entry value[%d][%d] = %v is not finite", i, j, v)
		}
		sum += v
	}
	if math.IsNaN(total) || math.IsInf(total, 0) {
		return fmt.Errorf("invariant: reported total %v is not finite", total)
	}
	scale := math.Max(1, math.Max(math.Abs(sum), math.Abs(total)))
	if math.Abs(sum-total) > 1e-6*scale {
		return fmt.Errorf("invariant: reported total %v != recomputed %v", total, sum)
	}
	return nil
}

// CheckPlacement validates a cluster placement map (best-effort job →
// host): every target host must be in the live set and no two jobs may
// share a host. The fault-campaign driver runs this against the set of
// agents the controller believes alive after each round.
func CheckPlacement(placement map[string]string, liveHosts map[string]bool) error {
	byHost := make(map[string]string, len(placement))
	for job, host := range placement {
		if host == "" {
			return fmt.Errorf("invariant: job %q placed on empty host", job)
		}
		if !liveHosts[host] {
			return fmt.Errorf("invariant: job %q placed on host %q outside the live set", job, host)
		}
		if prev, dup := byHost[host]; dup {
			return fmt.Errorf("invariant: jobs %q and %q both placed on host %q", prev, job, host)
		}
		byHost[host] = job
	}
	return nil
}
