package invariant

import (
	"fmt"
	"time"
)

// BudgetAuthority is the view of a hierarchical budget reallocator the
// tree-conservation checker reads. budget/tree's Reallocator and the
// controlplane's controller-side driver both implement it.
type BudgetAuthority interface {
	// NodeBudgets snapshots every budgeted node's current bound by name.
	NodeBudgets() map[string]float64
	// NodeHosts returns the hosts at or beneath the named node.
	NodeHosts(node string) []string
	// InGrace reports whether the reallocator is still converging after a
	// budget mutation (or startup); conservation is not asserted during
	// grace. Grace is counted in reallocation periods, not wall time —
	// simulated and controller clocks share no epoch.
	InGrace() bool
}

// budgetTolerance is the absolute slack, in watts, on each node's budget
// before the checker flags — float summation across a few thousand hosts
// plus the reallocator's own epsilon.
const budgetTolerance = 1e-3

// hostCap is one host's most recent cap observation.
type hostCap struct {
	capW float64
	now  time.Time
}

// NewTreeConservation checks the hierarchical budget contract: the caps
// installed on the hosts beneath any budgeted tree node never sum beyond
// that node's budget. The checker accumulates the latest per-host cap
// from the snapshot stream and asserts each node only when every host
// beneath it has reported at the current snapshot instant — snapshots
// inside one tick arrive host by host, so summing across timestamps
// would mix pre- and post-rebalance caps and flag phantom excess. While
// the authority is in its convergence grace (right after startup or a
// budget cut) the assertion holds fire, which is how "caps converge
// within N reallocation periods after a cut" becomes checkable: once
// grace ends, any leftover excess is a violation.
func NewTreeConservation(auth BudgetAuthority) Checker {
	lastCap := make(map[string]hostCap)
	return Checker{
		Name: "tree-conservation",
		Check: func(s *Snapshot) error {
			if !s.Managed || s.CapW <= 0 {
				return nil
			}
			lastCap[s.Host] = hostCap{capW: s.CapW, now: s.Now}
			if auth.InGrace() {
				return nil
			}
			for node, budget := range auth.NodeBudgets() {
				sum := 0.0
				seen := 0
				hosts := auth.NodeHosts(node)
				for _, h := range hosts {
					c, ok := lastCap[h]
					if !ok || !c.now.Equal(s.Now) {
						break
					}
					sum += c.capW
					seen++
				}
				if seen != len(hosts) {
					// Not every host under this node has a cap observation
					// at this instant yet.
					continue
				}
				if sum > budget+budgetTolerance {
					return fmt.Errorf("installed caps under node %q sum to %.3fW, over its %.3fW budget", node, sum, budget)
				}
			}
			return nil
		},
	}
}
