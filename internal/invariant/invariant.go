// Package invariant machine-checks Pocolo's physical correctness claims.
//
// The system's guarantees are physical invariants — allocations never
// exceed machine capacity, measured power returns under the provisioned
// cap within a capper period, latency-critical slack recovers after a
// disturbance, and the placement solvers return valid matchings whose
// reported score matches the matrix. This package turns each claim into a
// Checker and provides a Harness that hooks the per-tick observe path of a
// simulation engine (sim.Engine.Observe) so every tick of every managed
// host is audited, in tests, in the simulator binaries (-invariants), and
// through the control-plane fault campaigns.
package invariant

import (
	"fmt"
	"sync"
	"time"

	"pocolo/internal/machine"
	"pocolo/internal/servermgr"
	"pocolo/internal/sim"
)

// Snapshot is one host's cross-layer state at the end of one engine tick.
// Checkers read it; stateful checkers key their memory by Host.
type Snapshot struct {
	Host string
	Now  time.Time

	// Machine layer.
	Machine     machine.Config
	Server      *machine.Server // optional; enables the deep Audit
	Allocations map[string]machine.Alloc
	FreeCores   int
	FreeWays    int

	// Workload layer.
	LC          string
	LCAlloc     machine.Alloc
	PeakLoad    float64
	OfferedLoad float64
	SLOP99Ms    float64
	P99Ms       float64
	Slack       float64
	BEAllocated bool // at least one best-effort tenant holds resources

	// Power layer.
	TruePowerW float64
	MeterW     float64
	CapW       float64 // budget the capper enforces (override-aware)

	// Server-manager layer; zero values with Managed == false mean the
	// host runs without a manager and controller invariants are skipped.
	Managed       bool
	BEFreqGHz     float64
	BEDuty        float64
	BEParked      bool
	Boost         int
	ControlTicks  int
	CapThrottles  int
	CapRestores   int
	CapPeriod     time.Duration
	ControlPeriod time.Duration
	TargetSlack   float64
}

// Checker is one named invariant. Check returns nil when the snapshot
// satisfies the invariant. Checkers may keep internal state across calls
// (keyed by Snapshot.Host); build a fresh instance per Harness.
type Checker struct {
	Name  string
	Check func(s *Snapshot) error
}

// Violation records one failed check.
type Violation struct {
	Checker string
	Host    string
	Time    time.Time
	Err     error
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("[%s] host %s at %s: %v", v.Checker, v.Host, v.Time.Format("15:04:05.000"), v.Err)
}

// maxRecorded bounds the violations kept per harness; the total count keeps
// climbing so a violation storm cannot exhaust memory or hide its size.
const maxRecorded = 64

// watched pairs a host with its (optional) server manager.
type watched struct {
	host *sim.Host
	mgr  *servermgr.Manager
}

// Harness is a checker registry bound to the per-tick observe path. All
// methods are safe for concurrent use, so one harness may watch hosts on
// engines ticking in different goroutines.
type Harness struct {
	mu         sync.Mutex
	checkers   []Checker
	watched    []watched
	violations []Violation
	total      int
}

// NewHarness builds a harness with the given checkers; with none given it
// registers DefaultCheckers.
func NewHarness(checkers ...Checker) *Harness {
	if len(checkers) == 0 {
		checkers = DefaultCheckers()
	}
	h := &Harness{}
	for _, c := range checkers {
		if err := h.Register(c); err != nil {
			panic(err) // unreachable for DefaultCheckers
		}
	}
	return h
}

// Register adds a checker to the registry.
func (h *Harness) Register(c Checker) error {
	if c.Name == "" {
		return fmt.Errorf("invariant: checker needs a name")
	}
	if c.Check == nil {
		return fmt.Errorf("invariant: checker %q has no Check func", c.Name)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, existing := range h.checkers {
		if existing.Name == c.Name {
			return fmt.Errorf("invariant: duplicate checker %q", c.Name)
		}
	}
	h.checkers = append(h.checkers, c)
	return nil
}

// Checkers returns the registered checker names.
func (h *Harness) Checkers() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	names := make([]string, len(h.checkers))
	for i, c := range h.checkers {
		names[i] = c.Name
	}
	return names
}

// Watch adds a host (and its manager, which may be nil for unmanaged
// hosts) to the set snapshotted every tick.
func (h *Harness) Watch(host *sim.Host, mgr *servermgr.Manager) error {
	if host == nil {
		return fmt.Errorf("invariant: nil host")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.watched = append(h.watched, watched{host: host, mgr: mgr})
	return nil
}

// Bind registers the harness on the engine's per-tick observe path. Watch
// the engine's hosts first.
func (h *Harness) Bind(e *sim.Engine) error {
	if e == nil {
		return fmt.Errorf("invariant: nil engine")
	}
	return e.Observe(h.Tick)
}

// Tick snapshots every watched host and runs all checkers. It is the
// sim.Observer the harness binds; exposed so non-engine loops (the
// control-plane agent's pacing loop, campaign drivers) can drive it too.
func (h *Harness) Tick(now time.Time) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, w := range h.watched {
		s := Capture(w.host, w.mgr, now)
		h.runLocked(s)
	}
}

// Run checks one externally built snapshot against every registered
// checker, recording violations. Tests feed deliberately corrupted
// snapshots through it to prove the harness catches them.
func (h *Harness) Run(s *Snapshot) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.runLocked(s)
}

func (h *Harness) runLocked(s *Snapshot) {
	for _, c := range h.checkers {
		if err := c.Check(s); err != nil {
			h.total++
			if len(h.violations) < maxRecorded {
				h.violations = append(h.violations, Violation{Checker: c.Name, Host: s.Host, Time: s.Now, Err: err})
			}
		}
	}
}

// Violations returns the recorded violations (capped; see Count for the
// true total).
func (h *Harness) Violations() []Violation {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]Violation(nil), h.violations...)
}

// Count returns the total number of violations observed, including any
// beyond the recording cap.
func (h *Harness) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Err returns nil when no invariant was violated, and otherwise an error
// naming the first violation and the total count.
func (h *Harness) Err() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return nil
	}
	return fmt.Errorf("invariant: %d violation(s), first: %s", h.total, h.violations[0])
}

// Reset clears recorded violations (checker state is retained).
func (h *Harness) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.violations = nil
	h.total = 0
}

// Capture assembles a snapshot of one host (and its manager, which may be
// nil) at the given simulated time.
func Capture(host *sim.Host, mgr *servermgr.Manager, now time.Time) *Snapshot {
	cfg := host.Machine()
	srv := host.Server()
	allocs := srv.Allocations()
	freeC, freeW := srv.Free()
	lc := host.LC()
	s := &Snapshot{
		Host:        host.Name(),
		Now:         now,
		Machine:     cfg,
		Server:      srv,
		Allocations: allocs,
		FreeCores:   freeC,
		FreeWays:    freeW,
		LC:          lc.Name,
		LCAlloc:     allocs[lc.Name],
		PeakLoad:    lc.PeakLoad,
		OfferedLoad: host.OfferedLoad(),
		SLOP99Ms:    lc.SLO.P99Ms,
		P99Ms:       host.ObservedP99(),
		Slack:       host.Slack(),
		TruePowerW:  host.TruePowerW(),
		MeterW:      host.MeterReading().Watts,
		CapW:        host.CapW(),
	}
	for _, be := range host.BEs() {
		if a, ok := allocs[be.Name]; ok && (a.Cores > 0 || a.Ways > 0) {
			s.BEAllocated = true
			break
		}
	}
	if mgr != nil {
		s.Managed = true
		s.CapW = mgr.CapW()
		s.BEFreqGHz, s.BEDuty = mgr.BEThrottle()
		s.BEParked = mgr.BEParked()
		s.Boost = mgr.Boost()
		s.ControlTicks, s.CapThrottles, s.CapRestores = mgr.Counters()
		s.CapPeriod = mgr.CapPeriod()
		s.ControlPeriod = mgr.ControlPeriod()
		s.TargetSlack = mgr.TargetSlack()
	}
	return s
}
