package invariant_test

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"pocolo/internal/controlplane"
	"pocolo/internal/invariant"
	"pocolo/internal/profiler"
	"pocolo/internal/utility"
	"pocolo/internal/workload"
)

// TestFaultCampaignZeroViolations is the acceptance scenario for the
// invariant harness: a generated platform and workload catalog run the
// full networked control-plane loop — real agents, real controller, real
// HTTP codecs over the loopback fabric — through a seeded agent crash and
// a heartbeat partition. The controller must detect both, migrate and
// restore the best-effort placement, and the harness, bound to every
// agent's per-tick observe path, must record zero violations across the
// entire campaign including the crash and recovery windows.
func TestFaultCampaignZeroViolations(t *testing.T) {
	if testing.Short() {
		t.Skip("full control-plane campaign in -short mode")
	}
	rng := rand.New(rand.NewSource(11))
	cfg := invariant.GenMachine(rng)
	cat, err := invariant.GenCatalog(rng, cfg, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	lcs, bes := cat.LC(), cat.BE()
	models, err := profiler.FitAll(cfg, append(cat.LC(), cat.BE()...), 11)
	if err != nil {
		t.Fatal(err)
	}
	beNames := make([]string, len(bes))
	beModels := make(map[string]*utility.Model, len(bes))
	for i, be := range bes {
		beNames[i] = be.Name
		beModels[be.Name] = models[be.Name]
	}

	agents := make([]controlplane.AgentConfig, len(lcs))
	for i, lc := range lcs {
		trace, err := workload.NewTwoPeakTrace(0.3, 0.5, 0.8, 20*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		agents[i] = controlplane.AgentConfig{
			Name:         "campaign-" + lc.Name,
			Machine:      cfg,
			LC:           lc,
			LCModel:      models[lc.Name],
			BECandidates: bes,
			BEModels:     beModels,
			Trace:        trace,
			SimTick:      100 * time.Millisecond,
			Seed:         int64(101 + i),
		}
	}

	h := invariant.NewHarness()
	hb := time.Second
	camp, err := controlplane.NewCampaign(controlplane.CampaignConfig{
		Agents: agents,
		BE:     beNames,
		Faults: []controlplane.FaultEvent{
			{At: 4 * hb, Agent: 0, Kind: controlplane.FaultCrash, Duration: 4 * hb},
			{At: 11 * hb, Agent: 1, Kind: controlplane.FaultDropHeartbeats, Duration: 3 * hb},
		},
		Duration:  30 * time.Second,
		Heartbeat: hb,
		DeadAfter: 2,
		Harness:   h,
		Seed:      7,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	report, err := camp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := report.Err(); err != nil {
		t.Fatal(err)
	}
	if h.Count() != 0 {
		t.Fatalf("harness recorded %d violations: %v", h.Count(), h.Violations())
	}
	if report.Deaths < 2 || report.Rejoins < 2 {
		t.Fatalf("deaths = %d, rejoins = %d; want both faulted agents detected and recovered",
			report.Deaths, report.Rejoins)
	}
	if len(report.Status.Unplaced) != 0 {
		t.Fatalf("best-effort apps left unplaced after recovery: %v", report.Status.Unplaced)
	}
	if len(report.Status.Placement) != len(beNames) {
		t.Fatalf("placement %v does not cover %v", report.Status.Placement, beNames)
	}
}
