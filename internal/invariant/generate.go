package invariant

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"

	"pocolo/internal/machine"
	"pocolo/internal/workload"
)

// Property-based generators. The tests in this package (and any later
// scaling PR) draw random but physically plausible platforms and
// application catalogs from these, run short managed simulations, and let
// the harness assert that the invariants hold for every draw — not just
// for the Xeon E5-2650 and the eight built-in applications.

// GenMachine draws a random valid platform: 4–32 cores, 4–32 LLC ways, a
// DVFS range of at least 0.4 GHz on a 0.1 GHz grid, and a power envelope
// with a strictly positive active-over-idle span.
func GenMachine(rng *rand.Rand) machine.Config {
	cores := 4 + rng.Intn(29)
	ways := 4 + rng.Intn(29)
	minF := roundGHz(0.8 + rng.Float64()*0.8)
	maxF := roundGHz(minF + 0.4 + rng.Float64()*1.6)
	idle := 20 + rng.Float64()*60
	cfg := machine.Config{
		Name:         fmt.Sprintf("gen-%dc%dw", cores, ways),
		Cores:        cores,
		LLCWays:      ways,
		LLCMB:        1.5 * float64(ways),
		MemoryGB:     64,
		StorageGB:    240,
		MinFreqGHz:   minF,
		MaxFreqGHz:   maxF,
		FreqStepGHz:  0.1,
		IdlePowerW:   idle,
		ActivePowerW: idle + 40 + rng.Float64()*150,
	}
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("invariant: generated invalid machine: %v", err)) // generator bug
	}
	return cfg
}

// roundGHz snaps a frequency onto the 0.1 GHz grid so generated ranges
// align with the platform's FreqStepGHz.
func roundGHz(f float64) float64 {
	return float64(int(f*10+0.5)) / 10
}

// GenCatalog draws a random application catalog with nLC latency-critical
// and nBE best-effort applications, routed through the public JSON surface
// (LoadCatalog) so generated specs take the exact validation and
// calibration path user-supplied catalogs do.
func GenCatalog(rng *rand.Rand, cfg machine.Config, nLC, nBE int) (*workload.Catalog, error) {
	if nLC < 1 || nBE < 0 {
		return nil, fmt.Errorf("invariant: need at least one LC app (nLC=%d, nBE=%d)", nLC, nBE)
	}
	type specJSON map[string]any
	apps := make([]specJSON, 0, nLC+nBE)
	for i := 0; i < nLC; i++ {
		p95 := 2 + rng.Float64()*48
		prefCores := 0.2 + rng.Float64()*0.6
		apps = append(apps, specJSON{
			"name":              fmt.Sprintf("gen-lc-%d", i),
			"class":             "latency-critical",
			"alphaCores":        0.3 + rng.Float64()*0.5,
			"alphaWays":         0.1 + rng.Float64()*0.4,
			"freqExp":           0.6 + rng.Float64()*0.4,
			"etaCores":          rng.Float64() * 0.12,
			"etaWays":           rng.Float64() * 0.12,
			"powerKappa":        rng.Float64() * 0.1,
			"peakLoad":          200 + rng.Float64()*4800,
			"prefCores":         prefCores,
			"prefWays":          1 - prefCores,
			"sloP95Ms":          p95,
			"sloP99Ms":          p95 * (1.5 + rng.Float64()*2.5),
			"provisionedPowerW": cfg.IdlePowerW + 30 + rng.Float64()*(cfg.ActivePowerW-cfg.IdlePowerW+60),
		})
	}
	for i := 0; i < nBE; i++ {
		prefCores := 0.2 + rng.Float64()*0.6
		apps = append(apps, specJSON{
			"name":              fmt.Sprintf("gen-be-%d", i),
			"class":             "best-effort",
			"alphaCores":        0.3 + rng.Float64()*0.5,
			"alphaWays":         0.1 + rng.Float64()*0.4,
			"freqExp":           0.6 + rng.Float64()*0.4,
			"etaCores":          rng.Float64() * 0.12,
			"etaWays":           rng.Float64() * 0.12,
			"powerKappa":        rng.Float64() * 0.1,
			"peakLoad":          50 + rng.Float64()*950,
			"prefCores":         prefCores,
			"prefWays":          1 - prefCores,
			"fullDynamicPowerW": 30 + rng.Float64()*170,
		})
	}
	doc, err := json.Marshal(map[string]any{
		"format":       "pocolo-catalog/v1",
		"applications": apps,
	})
	if err != nil {
		return nil, err
	}
	return workload.LoadCatalog(bytes.NewReader(doc), cfg)
}
