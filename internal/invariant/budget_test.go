package invariant

import (
	"strings"
	"testing"
)

// fakeAuthority is a scripted BudgetAuthority.
type fakeAuthority struct {
	budgets map[string]float64
	hosts   map[string][]string
	grace   bool
}

func (f *fakeAuthority) NodeBudgets() map[string]float64 { return f.budgets }
func (f *fakeAuthority) NodeHosts(node string) []string  { return f.hosts[node] }
func (f *fakeAuthority) InGrace() bool                   { return f.grace }

func TestTreeConservation(t *testing.T) {
	auth := &fakeAuthority{
		budgets: map[string]float64{"dc": 300, "rack1": 160},
		hosts: map[string][]string{
			"dc":    {"h0", "h1", "h2"},
			"rack1": {"h0", "h1"},
		},
	}
	check := NewTreeConservation(auth)
	snap := func(host string, capW float64) *Snapshot {
		s := healthySnapshot()
		s.Host = host
		s.CapW = capW
		return s
	}

	// Partial coverage: only h0 has reported, so nothing is asserted even
	// though h0 alone could never violate.
	if err := check.Check(snap("h0", 100)); err != nil {
		t.Fatalf("partial coverage flagged: %v", err)
	}
	// Full coverage, caps inside every budget.
	if err := check.Check(snap("h1", 50)); err != nil {
		t.Fatal(err)
	}
	if err := check.Check(snap("h2", 120)); err != nil {
		t.Fatalf("conforming caps flagged: %v", err)
	}

	// h1's cap grows: rack1 (100+80 = 180 > 160) must trip even though the
	// dc total (300) still holds.
	err := check.Check(snap("h1", 80))
	if err == nil {
		t.Fatal("rack over-budget not caught")
	}
	if !strings.Contains(err.Error(), "rack1") {
		t.Errorf("violation names the wrong node: %v", err)
	}

	// The same caps during grace are forgiven.
	auth.grace = true
	if err := check.Check(snap("h1", 80)); err != nil {
		t.Errorf("violation flagged during grace: %v", err)
	}
	auth.grace = false

	// Unmanaged and cap-free snapshots contribute nothing and never trip.
	s := snap("h1", 80)
	s.Managed = false
	if err := check.Check(s); err != nil {
		t.Errorf("unmanaged snapshot flagged: %v", err)
	}

	// Back within budget: the checker clears as caps shrink.
	if err := check.Check(snap("h1", 50)); err != nil {
		t.Errorf("restored caps flagged: %v", err)
	}

	// Harness integration: registers alongside the defaults.
	h := NewHarness()
	if err := h.Register(NewTreeConservation(auth)); err != nil {
		t.Fatal(err)
	}
}
