package invariant

import (
	"fmt"
	"math"
	"time"

	"pocolo/internal/servermgr"
)

// DefaultCheckers returns fresh instances of every standard invariant
// checker: resource conservation, power-cap compliance, slack-recovery
// liveness, and physical sanity.
func DefaultCheckers() []Checker {
	return []Checker{
		NewResourceConservation(),
		NewPowerCapCompliance(),
		NewSlackRecovery(),
		NewPhysicalSanity(),
	}
}

// NewResourceConservation checks that allocations conserve machine
// capacity: no tenant holds negative or over-capacity resources, and owned
// plus free units equal exactly the platform's core and LLC-way counts (a
// double-owned unit would be counted twice and break the sum). When the
// snapshot carries the live *machine.Server it also runs the server's deep
// Audit, which validates the owner slices and per-tenant DVFS/duty state
// under the server's own lock.
func NewResourceConservation() Checker {
	return Checker{
		Name: "resource-conservation",
		Check: func(s *Snapshot) error {
			sumCores, sumWays := 0, 0
			for name, a := range s.Allocations {
				if a.Cores < 0 || a.Ways < 0 {
					return fmt.Errorf("tenant %q holds negative resources (%d cores, %d ways)", name, a.Cores, a.Ways)
				}
				if a.Cores > s.Machine.Cores {
					return fmt.Errorf("tenant %q holds %d cores on a %d-core machine", name, a.Cores, s.Machine.Cores)
				}
				if a.Ways > s.Machine.LLCWays {
					return fmt.Errorf("tenant %q holds %d ways on a %d-way machine", name, a.Ways, s.Machine.LLCWays)
				}
				sumCores += a.Cores
				sumWays += a.Ways
			}
			if sumCores+s.FreeCores != s.Machine.Cores {
				return fmt.Errorf("core conservation broken: %d owned + %d free != %d capacity (double ownership or leak)",
					sumCores, s.FreeCores, s.Machine.Cores)
			}
			if sumWays+s.FreeWays != s.Machine.LLCWays {
				return fmt.Errorf("way conservation broken: %d owned + %d free != %d capacity (double ownership or leak)",
					sumWays, s.FreeWays, s.Machine.LLCWays)
			}
			if s.Server != nil {
				return s.Server.Audit()
			}
			return nil
		},
	}
}

// capState is the per-host memory of the power-cap checker.
type capState struct {
	// Responsiveness: the earliest uncleared over-cap observation and the
	// throttle count at that moment.
	pending          bool
	pendingSince     time.Time
	pendingThrottles int
	// Convergence: when the current continuous over-cap excursion began.
	overSince time.Time
	inOver    bool
}

// capTolerance is the relative margin on the cap before the checker flags:
// the meter carries ~1 % gaussian noise, so a reading a few percent over
// budget is indistinguishable from compliance at the cap.
const capTolerance = 0.05

// capGraceMultiple bounds how long a sustained over-cap excursion may last
// before the checker calls it a violation even though throttling continues.
// The bound must cover the capper's worst-case full descent after a step
// change in the cap (a hierarchical budget cut can land the cap far below
// the current draw in one rebalance): the DVFS walk from max to min
// frequency takes ~10 steps, and the proportional duty cut decays by at
// worst ~0.93 per period for a reading just past the 5% tolerance —
// log(0.05)/log(0.93) ≈ 41 periods from full duty to the floor. Sixty
// periods (6 s at defaults) covers both phases; a capper that oscillates
// or stalls is still caught by the per-period action check above.
const capGraceMultiple = 60

// NewPowerCapCompliance checks the paper's capping contract on managed
// hosts: whenever the metered power sits above the enforced cap, the
// capper must take a throttle action within one capper period, and a
// sustained excursion must end within a small grace window unless the
// best-effort throttle has already bottomed out (duty at DutyFloor and
// DVFS at the platform minimum) or there is no best-effort tenant left to
// squeeze — beyond that point residual over-cap power is the LC's, which
// the capper is forbidden to touch.
func NewPowerCapCompliance() Checker {
	states := make(map[string]*capState)
	return Checker{
		Name: "power-cap-compliance",
		Check: func(s *Snapshot) error {
			if !s.Managed || s.CapW <= 0 || s.CapPeriod <= 0 {
				return nil
			}
			st := states[s.Host]
			if st == nil {
				st = &capState{}
				states[s.Host] = st
			}
			over := s.MeterW > s.CapW*(1+capTolerance)
			if !over {
				st.pending = false
				st.inOver = false
				return nil
			}
			atFloor := s.BEParked || !s.BEAllocated ||
				(s.BEDuty <= servermgr.DutyFloor+1e-9 && s.BEFreqGHz <= s.Machine.MinFreqGHz+1e-9)
			if !st.inOver {
				st.inOver = true
				st.overSince = s.Now
			}
			if !st.pending {
				st.pending = true
				st.pendingSince = s.Now
				st.pendingThrottles = s.CapThrottles
				return nil
			}
			if s.Now.Sub(st.pendingSince) >= s.CapPeriod {
				if !atFloor && s.CapThrottles <= st.pendingThrottles {
					return fmt.Errorf("power %.1fW over cap %.1fW for a full capper period (%v) with no throttle action (throttles stuck at %d)",
						s.MeterW, s.CapW, s.CapPeriod, s.CapThrottles)
				}
				// Action observed (or floor reached): arm the next window.
				st.pendingSince = s.Now
				st.pendingThrottles = s.CapThrottles
			}
			if !atFloor && s.Now.Sub(st.overSince) > capGraceMultiple*s.CapPeriod {
				return fmt.Errorf("power %.1fW stuck over cap %.1fW for %v with throttle headroom remaining (duty %.2f, freq %.2fGHz)",
					s.MeterW, s.CapW, s.Now.Sub(st.overSince), s.BEDuty, s.BEFreqGHz)
			}
			return nil
		},
	}
}

// slackState is the per-host memory of the slack-recovery checker.
type slackState struct {
	badSince time.Time
	inBad    bool
}

// slackRecoveryWindow is how long LC slack may stay negative before the
// checker demands either recovery or proof of resource exhaustion. The
// manager reacts on its 1 s control period and escalates its boost on
// every violating tick, so five control periods is a generous bound.
const slackRecoveryWindow = 5 * time.Second

// NewSlackRecovery checks liveness of SLO recovery on managed hosts: after
// a disturbance pushes p99 over the SLO, the server manager must bring
// slack back above zero within slackRecoveryWindow. The one legitimate
// escape is physical exhaustion — the LC already owns every core and way
// at maximum frequency — where the violation is offered load exceeding
// machine capacity, not a controller bug.
func NewSlackRecovery() Checker {
	states := make(map[string]*slackState)
	return Checker{
		Name: "slack-recovery",
		Check: func(s *Snapshot) error {
			if !s.Managed || s.ControlTicks < 2 {
				// Unmanaged hosts have no controller to recover; before the
				// second control tick the manager has not yet reacted to
				// anything.
				return nil
			}
			st := states[s.Host]
			if st == nil {
				st = &slackState{}
				states[s.Host] = st
			}
			if s.Slack >= 0 {
				st.inBad = false
				return nil
			}
			if !st.inBad {
				st.inBad = true
				st.badSince = s.Now
				return nil
			}
			if s.Now.Sub(st.badSince) <= slackRecoveryWindow {
				return nil
			}
			const eps = 1e-9
			exhausted := s.LCAlloc.Cores >= s.Machine.Cores &&
				s.LCAlloc.Ways >= s.Machine.LLCWays &&
				s.LCAlloc.FreqGHz >= s.Machine.MaxFreqGHz-eps
			if exhausted {
				return nil
			}
			return fmt.Errorf("slack %.3f negative for %v without recovery; LC holds %d/%d cores, %d/%d ways at %.2fGHz",
				s.Slack, s.Now.Sub(st.badSince), s.LCAlloc.Cores, s.Machine.Cores, s.LCAlloc.Ways, s.Machine.LLCWays, s.LCAlloc.FreqGHz)
		},
	}
}

// NewPhysicalSanity checks that every observable stays inside its physical
// domain: finite non-negative power at or above the idle floor, finite
// non-negative latency, offered load within the trace's peak, and throttle
// settings inside the platform envelope.
func NewPhysicalSanity() Checker {
	return Checker{
		Name: "physical-sanity",
		Check: func(s *Snapshot) error {
			for _, v := range []struct {
				name string
				val  float64
			}{
				{"true power", s.TruePowerW},
				{"meter reading", s.MeterW},
				{"p99 latency", s.P99Ms},
				{"offered load", s.OfferedLoad},
			} {
				if math.IsNaN(v.val) || math.IsInf(v.val, 0) || v.val < 0 {
					return fmt.Errorf("%s %v outside physical domain", v.name, v.val)
				}
			}
			if s.TruePowerW < s.Machine.IdlePowerW-1e-6 {
				return fmt.Errorf("true power %.2fW below idle floor %.2fW", s.TruePowerW, s.Machine.IdlePowerW)
			}
			if s.PeakLoad > 0 && s.OfferedLoad > s.PeakLoad*(1+1e-9) {
				return fmt.Errorf("offered load %.1f exceeds trace peak %.1f", s.OfferedLoad, s.PeakLoad)
			}
			if s.Managed {
				if s.BEDuty <= 0 || s.BEDuty > 1 {
					return fmt.Errorf("BE duty %v outside (0, 1]", s.BEDuty)
				}
				const eps = 1e-9
				if s.BEFreqGHz < s.Machine.MinFreqGHz-eps || s.BEFreqGHz > s.Machine.MaxFreqGHz+eps {
					return fmt.Errorf("BE frequency %vGHz outside platform range [%v, %v]",
						s.BEFreqGHz, s.Machine.MinFreqGHz, s.Machine.MaxFreqGHz)
				}
			}
			return nil
		},
	}
}
