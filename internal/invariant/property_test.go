package invariant

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"pocolo/internal/profiler"
	"pocolo/internal/servermgr"
	"pocolo/internal/sim"
	"pocolo/internal/workload"
)

func TestGenMachineAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		cfg := GenMachine(rng) // panics on an invalid draw
		if cfg.MaxFreqGHz-cfg.MinFreqGHz < 0.4-1e-9 {
			t.Fatalf("draw %d: DVFS range [%v, %v] narrower than 0.4 GHz", i, cfg.MinFreqGHz, cfg.MaxFreqGHz)
		}
	}
}

func TestGenCatalogCalibrates(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 30; i++ {
		cfg := GenMachine(rng)
		cat, err := GenCatalog(rng, cfg, 2, 2)
		if err != nil {
			t.Fatalf("draw %d: %v", i, err)
		}
		if len(cat.LC()) != 2 || len(cat.BE()) != 2 {
			t.Fatalf("draw %d: got %d LC, %d BE apps", i, len(cat.LC()), len(cat.BE()))
		}
		for _, spec := range append(cat.LC(), cat.BE()...) {
			// Calibration must yield a finite positive full-machine capacity;
			// a degenerate spec here would poison every downstream layer.
			c := spec.Capacity(cfg.Full())
			if math.IsNaN(c) || math.IsInf(c, 0) || c <= 0 {
				t.Fatalf("draw %d: %s calibrated to capacity %v", i, spec.Name, c)
			}
		}
	}
}

// TestPropertyManagedSim draws random platforms and application catalogs,
// fits models by profiling them, and runs short managed simulations with
// every invariant checker bound to the per-tick observe path. Any draw
// violating an invariant fails; seeds are fixed so failures reproduce.
func TestPropertyManagedSim(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling+simulation property test skipped in -short")
	}
	for _, seed := range []int64{1, 2, 3} {
		rng := rand.New(rand.NewSource(seed))
		cfg := GenMachine(rng)
		cat, err := GenCatalog(rng, cfg, 1, 1)
		if err != nil {
			t.Fatalf("seed %d: generating catalog: %v", seed, err)
		}
		lc := cat.LC()[0]
		be := cat.BE()[0]
		models, err := profiler.FitAll(cfg, []*workload.Spec{lc, be}, seed)
		if err != nil {
			t.Fatalf("seed %d: fitting models: %v", seed, err)
		}

		trace, err := workload.NewTwoPeakTrace(0.3, 0.55, 0.85, 20*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		host, err := sim.NewHost(sim.HostConfig{
			Name:    "prop",
			Machine: cfg,
			LC:      lc,
			BE:      be,
			Trace:   trace,
			Seed:    seed,
		})
		if err != nil {
			t.Fatalf("seed %d: building host: %v", seed, err)
		}
		engine, err := sim.NewEngine(100 * time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if err := engine.AddHost(host); err != nil {
			t.Fatal(err)
		}
		mgr, err := servermgr.New(servermgr.Config{
			Host:   host,
			Model:  models[lc.Name],
			Policy: servermgr.PowerOptimized,
			Seed:   seed,
		})
		if err != nil {
			t.Fatalf("seed %d: building manager: %v", seed, err)
		}
		if err := mgr.Attach(engine); err != nil {
			t.Fatal(err)
		}

		h := NewHarness()
		if err := h.Watch(host, mgr); err != nil {
			t.Fatal(err)
		}
		if err := h.Bind(engine); err != nil {
			t.Fatal(err)
		}
		if err := engine.Run(30 * time.Second); err != nil {
			t.Fatalf("seed %d: running: %v", seed, err)
		}
		if err := h.Err(); err != nil {
			t.Fatalf("seed %d on %s: %v (all: %v)", seed, cfg.Name, err, h.Violations())
		}
	}
}

// TestHarnessCatchesLiveCorruption proves the bound harness catches a
// corruption injected into a live server mid-run: an unmanaged throttle
// setting pushed outside the platform envelope trips the machine audit.
func TestHarnessCatchesLiveCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfg := GenMachine(rng)
	cat, err := GenCatalog(rng, cfg, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	lc, be := cat.LC()[0], cat.BE()[0]
	trace, err := workload.NewConstantTrace(0.5)
	if err != nil {
		t.Fatal(err)
	}
	host, err := sim.NewHost(sim.HostConfig{Name: "corrupt", Machine: cfg, LC: lc, BE: be, Trace: trace, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	engine, err := sim.NewEngine(100 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := engine.AddHost(host); err != nil {
		t.Fatal(err)
	}
	h := NewHarness(NewResourceConservation())
	if err := h.Watch(host, nil); err != nil {
		t.Fatal(err)
	}
	if err := h.Bind(engine); err != nil {
		t.Fatal(err)
	}
	if err := engine.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if err := h.Err(); err != nil {
		t.Fatalf("healthy run flagged: %v", err)
	}
	// The machine API refuses to corrupt itself (over-grants and bad duty
	// cycles are rejected at the boundary), so inject the double ownership
	// at the snapshot layer, exactly where a buggy allocation path would
	// surface it.
	s := Capture(host, nil, engine.Now())
	a := s.Allocations[lc.Name]
	a.Cores++
	s.Allocations[lc.Name] = a
	h.Run(s)
	if h.Count() == 0 {
		t.Fatal("corrupted live snapshot passed resource conservation")
	}
}
