package invariant

import (
	"strings"
	"testing"
	"time"

	"pocolo/internal/machine"
	"pocolo/internal/servermgr"
)

// healthySnapshot returns a snapshot of a well-behaved managed host: full
// machine split between LC and BE, power inside the cap, slack positive.
func healthySnapshot() *Snapshot {
	cfg := machine.XeonE52650()
	lcAlloc := machine.Alloc{Cores: 8, Ways: 12, FreqGHz: 2.2, Duty: 1}
	return &Snapshot{
		Host:    "h0",
		Now:     time.Unix(0, 0).UTC(),
		Machine: cfg,
		Allocations: map[string]machine.Alloc{
			"lc": lcAlloc,
			"be": {Cores: 4, Ways: 8, FreqGHz: 2.2, Duty: 1},
		},
		FreeCores:     0,
		FreeWays:      0,
		LC:            "lc",
		LCAlloc:       lcAlloc,
		PeakLoad:      1000,
		OfferedLoad:   500,
		SLOP99Ms:      50,
		P99Ms:         30,
		Slack:         0.4,
		BEAllocated:   true,
		TruePowerW:    100,
		MeterW:        100,
		CapW:          120,
		Managed:       true,
		BEFreqGHz:     2.2,
		BEDuty:        1,
		ControlTicks:  5,
		CapPeriod:     100 * time.Millisecond,
		ControlPeriod: time.Second,
		TargetSlack:   0.10,
	}
}

func TestHarnessRegistry(t *testing.T) {
	h := NewHarness()
	names := h.Checkers()
	want := []string{"resource-conservation", "power-cap-compliance", "slack-recovery", "physical-sanity"}
	if len(names) != len(want) {
		t.Fatalf("default harness has checkers %v, want %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("checker %d = %q, want %q", i, names[i], n)
		}
	}
	if err := h.Register(NewPhysicalSanity()); err == nil {
		t.Fatal("duplicate checker registration succeeded")
	}
	if err := h.Register(Checker{Name: "", Check: func(*Snapshot) error { return nil }}); err == nil {
		t.Fatal("nameless checker registration succeeded")
	}
	if err := h.Register(Checker{Name: "no-func"}); err == nil {
		t.Fatal("checker without Check func registered")
	}
	if err := h.Register(Checker{Name: "custom", Check: func(*Snapshot) error { return nil }}); err != nil {
		t.Fatalf("registering a custom checker: %v", err)
	}
}

func TestHealthySnapshotPasses(t *testing.T) {
	h := NewHarness()
	s := healthySnapshot()
	// Feed several ticks so the stateful checkers build history.
	for i := 0; i < 30; i++ {
		s.Now = s.Now.Add(100 * time.Millisecond)
		h.Run(s)
	}
	if err := h.Err(); err != nil {
		t.Fatalf("healthy snapshot flagged: %v", err)
	}
}

// TestCheckersCatchCorruption feeds deliberately corrupted snapshots (test
// doubles for buggy layers) through the harness and requires each to be
// caught by the right checker.
func TestCheckersCatchCorruption(t *testing.T) {
	tests := []struct {
		name    string
		checker string // substring expected in the violation
		corrupt func(s *Snapshot)
	}{
		{
			name:    "double ownership inflates core sum",
			checker: "resource-conservation",
			corrupt: func(s *Snapshot) {
				a := s.Allocations["be"]
				a.Cores++ // now owned 13 + free 0 on a 12-core machine
				s.Allocations["be"] = a
			},
		},
		{
			name:    "leaked ways",
			checker: "resource-conservation",
			corrupt: func(s *Snapshot) {
				a := s.Allocations["be"]
				a.Ways -= 2 // two ways vanished without showing up as free
				s.Allocations["be"] = a
			},
		},
		{
			name:    "negative allocation",
			checker: "resource-conservation",
			corrupt: func(s *Snapshot) {
				s.Allocations["be"] = machine.Alloc{Cores: -1, Ways: 0, FreqGHz: 2.2, Duty: 1}
			},
		},
		{
			name:    "tenant above machine capacity",
			checker: "resource-conservation",
			corrupt: func(s *Snapshot) {
				s.Allocations["lc"] = machine.Alloc{Cores: 40, Ways: 12, FreqGHz: 2.2, Duty: 1}
				s.FreeCores = -28 // keep the sum consistent so the per-tenant bound fires
			},
		},
		{
			name:    "NaN power",
			checker: "physical-sanity",
			corrupt: func(s *Snapshot) { s.TruePowerW = nan() },
		},
		{
			name:    "power below idle floor",
			checker: "physical-sanity",
			corrupt: func(s *Snapshot) { s.TruePowerW = s.Machine.IdlePowerW / 2 },
		},
		{
			name:    "negative latency",
			checker: "physical-sanity",
			corrupt: func(s *Snapshot) { s.P99Ms = -1 },
		},
		{
			name:    "offered load beyond trace peak",
			checker: "physical-sanity",
			corrupt: func(s *Snapshot) { s.OfferedLoad = s.PeakLoad * 2 },
		},
		{
			name:    "BE duty outside (0,1]",
			checker: "physical-sanity",
			corrupt: func(s *Snapshot) { s.BEDuty = 1.5 },
		},
		{
			name:    "BE frequency off the platform grid range",
			checker: "physical-sanity",
			corrupt: func(s *Snapshot) { s.BEFreqGHz = s.Machine.MaxFreqGHz + 1 },
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			h := NewHarness()
			s := healthySnapshot()
			tc.corrupt(s)
			h.Run(s)
			vs := h.Violations()
			if len(vs) == 0 {
				t.Fatal("corrupted snapshot passed every checker")
			}
			found := false
			for _, v := range vs {
				if v.Checker == tc.checker {
					found = true
				}
			}
			if !found {
				t.Fatalf("violations %v do not include checker %q", vs, tc.checker)
			}
		})
	}
}

func nan() float64 { var zero float64; return zero / zero }

// TestPowerCapComplianceTiming exercises the stateful capper contract: an
// over-cap reading with a frozen throttle counter is a violation exactly
// one capper period later, while an advancing counter or a bottomed-out
// throttle is not.
func TestPowerCapComplianceTiming(t *testing.T) {
	base := healthySnapshot()
	over := func(s *Snapshot) { s.MeterW = s.CapW * 1.5 }

	t.Run("frozen throttle counter violates after one period", func(t *testing.T) {
		h := NewHarness(NewPowerCapCompliance())
		s := *base
		over(&s)
		h.Run(&s)
		if h.Count() != 0 {
			t.Fatalf("violation before a capper period elapsed: %v", h.Err())
		}
		s.Now = s.Now.Add(s.CapPeriod)
		h.Run(&s)
		if h.Count() == 0 {
			t.Fatal("no violation despite a full capper period with no throttle action")
		}
	})

	t.Run("advancing throttle counter passes", func(t *testing.T) {
		h := NewHarness(NewPowerCapCompliance())
		s := *base
		over(&s)
		for i := 0; i < 10; i++ {
			h.Run(&s)
			s.Now = s.Now.Add(s.CapPeriod)
			s.CapThrottles++
			s.BEDuty *= 0.7 // converging toward the floor
		}
		if err := h.Err(); err != nil {
			t.Fatalf("capper making progress flagged: %v", err)
		}
	})

	t.Run("bottomed-out throttle passes even when stuck over", func(t *testing.T) {
		h := NewHarness(NewPowerCapCompliance())
		s := *base
		over(&s)
		s.BEDuty = servermgr.DutyFloor
		s.BEFreqGHz = s.Machine.MinFreqGHz
		for i := 0; i < 50; i++ {
			h.Run(&s)
			s.Now = s.Now.Add(s.CapPeriod)
		}
		if err := h.Err(); err != nil {
			t.Fatalf("exhausted capper flagged: %v", err)
		}
	})

	t.Run("sustained excursion with headroom violates", func(t *testing.T) {
		h := NewHarness(NewPowerCapCompliance())
		s := *base
		over(&s)
		for i := 0; i < capGraceMultiple+2; i++ {
			h.Run(&s)
			s.Now = s.Now.Add(s.CapPeriod)
			s.CapThrottles++ // counter moves but power never comes down
		}
		if h.Count() == 0 {
			t.Fatal("sustained over-cap excursion with throttle headroom passed")
		}
	})

	t.Run("unmanaged host is exempt", func(t *testing.T) {
		h := NewHarness(NewPowerCapCompliance())
		s := *base
		over(&s)
		s.Managed = false
		for i := 0; i < 50; i++ {
			h.Run(&s)
			s.Now = s.Now.Add(100 * time.Millisecond)
		}
		if err := h.Err(); err != nil {
			t.Fatalf("unmanaged host flagged by the capper checker: %v", err)
		}
	})
}

// TestSlackRecoveryLiveness exercises the recovery window and the
// resource-exhaustion escape.
func TestSlackRecoveryLiveness(t *testing.T) {
	t.Run("sustained negative slack with spare resources violates", func(t *testing.T) {
		h := NewHarness(NewSlackRecovery())
		s := healthySnapshot()
		s.Slack = -0.2
		s.P99Ms = 60
		for i := 0; i < 70; i++ { // 7 s at 100 ms ticks > 5 s window
			h.Run(s)
			s.Now = s.Now.Add(100 * time.Millisecond)
		}
		if h.Count() == 0 {
			t.Fatal("sustained SLO violation with free headroom passed")
		}
	})

	t.Run("recovery inside the window passes", func(t *testing.T) {
		h := NewHarness(NewSlackRecovery())
		s := healthySnapshot()
		s.Slack = -0.2
		for i := 0; i < 30; i++ { // 3 s violating, then recovered
			h.Run(s)
			s.Now = s.Now.Add(100 * time.Millisecond)
		}
		s.Slack = 0.15
		for i := 0; i < 30; i++ {
			h.Run(s)
			s.Now = s.Now.Add(100 * time.Millisecond)
		}
		if err := h.Err(); err != nil {
			t.Fatalf("recovering host flagged: %v", err)
		}
	})

	t.Run("machine exhaustion is a legitimate escape", func(t *testing.T) {
		h := NewHarness(NewSlackRecovery())
		s := healthySnapshot()
		s.Slack = -0.5
		s.LCAlloc = s.Machine.Full()
		s.Allocations = map[string]machine.Alloc{"lc": s.LCAlloc}
		s.FreeCores, s.FreeWays = 0, 0
		s.BEAllocated = false
		for i := 0; i < 100; i++ {
			h.Run(s)
			s.Now = s.Now.Add(100 * time.Millisecond)
		}
		if err := h.Err(); err != nil {
			t.Fatalf("overloaded-beyond-capacity host flagged as controller bug: %v", err)
		}
	})
}

func TestHarnessViolationCapAndReset(t *testing.T) {
	h := NewHarness(NewPhysicalSanity())
	s := healthySnapshot()
	s.P99Ms = -1
	for i := 0; i < maxRecorded+40; i++ {
		h.Run(s)
	}
	if got := h.Count(); got != maxRecorded+40 {
		t.Fatalf("Count() = %d, want %d", got, maxRecorded+40)
	}
	if got := len(h.Violations()); got != maxRecorded {
		t.Fatalf("recorded %d violations, want cap %d", got, maxRecorded)
	}
	if err := h.Err(); err == nil || !strings.Contains(err.Error(), "physical-sanity") {
		t.Fatalf("Err() = %v, want physical-sanity violation", err)
	}
	h.Reset()
	if h.Count() != 0 || h.Err() != nil {
		t.Fatalf("after Reset: count %d, err %v", h.Count(), h.Err())
	}
}

func TestCheckAssignment(t *testing.T) {
	value := [][]float64{
		{1, 2, 3},
		{4, 5, 6},
		{7, 8, 9},
	}
	tests := []struct {
		name       string
		value      [][]float64
		assignment []int
		total      float64
		ok         bool
	}{
		{"valid matching", value, []int{0, 1, 2}, 1 + 5 + 9, true},
		{"valid permuted", value, []int{2, 0, 1}, 3 + 4 + 8, true},
		{"duplicate column", value, []int{0, 0, 2}, 1 + 4 + 9, false},
		{"column out of range", value, []int{0, 1, 3}, 0, false},
		{"negative column", value, []int{-1, 1, 2}, 0, false},
		{"wrong total", value, []int{0, 1, 2}, 14, false},
		{"length mismatch", value, []int{0, 1}, 6, false},
		{"empty", nil, nil, 0, true},
		{"empty with nonzero total", nil, nil, 3, false},
		{"ragged matrix", [][]float64{{1, 2}, {3}}, []int{0, 1}, 3, false},
		{"NaN entry assigned", [][]float64{{nan(), 2}, {3, 4}}, []int{0, 1}, 4, false},
		{"rectangular (more columns than rows)", [][]float64{{1, 2, 3}, {4, 5, 6}}, []int{2, 1}, 8, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := CheckAssignment(tc.value, tc.assignment, tc.total)
			if tc.ok && err != nil {
				t.Fatalf("valid assignment rejected: %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("invalid assignment accepted")
			}
		})
	}
}

func TestCheckPlacement(t *testing.T) {
	live := map[string]bool{"h0": true, "h1": true}
	if err := CheckPlacement(map[string]string{"be0": "h0", "be1": "h1"}, live); err != nil {
		t.Fatalf("valid placement rejected: %v", err)
	}
	if err := CheckPlacement(map[string]string{"be0": "h2"}, live); err == nil {
		t.Fatal("placement on a dead host accepted")
	}
	if err := CheckPlacement(map[string]string{"be0": "h0", "be1": "h0"}, live); err == nil {
		t.Fatal("two jobs on one host accepted")
	}
	if err := CheckPlacement(map[string]string{"be0": ""}, live); err == nil {
		t.Fatal("empty host accepted")
	}
}
