// Package parallel provides the bounded worker pool the evaluation stack
// fans independent simulation units through: per-host cluster engines,
// random-placement trials, pair-sweep load levels, and whole experiment
// variants. Units are handed out by index so callers aggregate results in
// a fixed order regardless of scheduling — the parallel paths stay
// bit-identical to their sequential counterparts.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach runs fn(i) for every i in [0, n) using at most workers
// concurrent goroutines. workers <= 0 selects GOMAXPROCS; workers == 1 (or
// n == 1) degenerates to a plain in-order loop with no goroutines.
//
// On the first error the pool cancels: indices not yet dispatched are
// skipped, in-flight calls run to completion, and ForEach returns the
// error with the lowest index — deterministic even though which calls were
// in flight at failure time is not. fn must write any results it produces
// into caller-owned, index-disjoint storage.
func ForEach(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next    atomic.Int64 // next index to dispatch
		stopped atomic.Bool  // set on first error; halts dispatch
		wg      sync.WaitGroup

		mu       sync.Mutex
		firstIdx int = -1
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if stopped.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					stopped.Store(true)
					mu.Lock()
					if firstIdx == -1 || i < firstIdx {
						firstIdx, firstErr = i, err
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// Workers resolves a parallelism setting: non-positive means GOMAXPROCS.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}
