package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestForEachCoversAllIndices checks every index runs exactly once and the
// results land where the caller put them, at several pool widths.
func TestForEachCoversAllIndices(t *testing.T) {
	const n = 97
	for _, workers := range []int{0, 1, 2, 3, 8, n + 5} {
		out := make([]int, n)
		var calls atomic.Int64
		err := ForEach(n, workers, func(i int) error {
			calls.Add(1)
			out[i] = i * i
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := calls.Load(); got != n {
			t.Fatalf("workers=%d: %d calls, want %d", workers, got, n)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestForEachEmpty checks the degenerate sizes.
func TestForEachEmpty(t *testing.T) {
	for _, n := range []int{0, -3} {
		called := false
		if err := ForEach(n, 4, func(int) error { called = true; return nil }); err != nil {
			t.Fatal(err)
		}
		if called {
			t.Fatalf("n=%d: fn called", n)
		}
	}
}

// TestForEachLowestIndexError: when several indices fail, the error
// reported is the one from the lowest failing index — index 0 here, which
// is always dispatched first.
func TestForEachLowestIndexError(t *testing.T) {
	const n = 64
	errs := make([]error, n)
	for i := range errs {
		errs[i] = fmt.Errorf("unit %d failed", i)
	}
	for _, workers := range []int{1, 4, 16} {
		err := ForEach(n, workers, func(i int) error { return errs[i] })
		if !errors.Is(err, errs[0]) {
			t.Fatalf("workers=%d: got %v, want %v", workers, err, errs[0])
		}
	}
}

// TestForEachCancelsPromptly: with the first unit failing immediately and
// every other unit parked on a gate, the pool must stop dispatching — only
// the initial in-flight batch (at most `workers` units) ever starts, not
// the full thousand.
func TestForEachCancelsPromptly(t *testing.T) {
	const (
		n       = 1000
		workers = 4
	)
	boom := errors.New("boom")
	gate := make(chan struct{})
	var started atomic.Int64
	go func() {
		// Release the parked units once unit 0 has begun (it is always
		// dispatched first) and its error has had time to register.
		for started.Load() == 0 {
			time.Sleep(time.Millisecond)
		}
		time.Sleep(50 * time.Millisecond)
		close(gate)
	}()
	err := ForEach(n, workers, func(i int) error {
		started.Add(1)
		if i == 0 {
			return boom
		}
		<-gate
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want %v", err, boom)
	}
	if got := started.Load(); got > workers {
		t.Fatalf("%d units started after first error, want <= %d", got, workers)
	}
}

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-1); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-1) = %d, want GOMAXPROCS", got)
	}
}
