// Package tco implements the datacenter total-cost-of-ownership model the
// paper uses for its Fig. 15 analysis, following James Hamilton's public
// cost model: amortized monthly costs for server capital, power
// infrastructure capital (dollars per provisioned watt), and energy
// operating expense scaled by PUE.
//
// The paper compares policies at constant delivered throughput: a policy
// extracting more throughput per server needs proportionally fewer servers
// (and watts) for the same work, which is where power-optimized colocation
// earns its capital savings.
package tco

import (
	"errors"
	"fmt"
)

// Params holds the cost-model constants.
type Params struct {
	// Servers is the fleet size delivering the reference throughput.
	Servers int
	// ServerCostUSD is the purchase cost of one server.
	ServerCostUSD float64
	// PowerInfraCostPerW is the capital cost of provisioned power
	// delivery, dollars per watt.
	PowerInfraCostPerW float64
	// EnergyCostPerKWh is the utility price of energy.
	EnergyCostPerKWh float64
	// PUE is the power usage effectiveness multiplier on IT energy.
	PUE float64
	// ServerLifetimeMonths amortizes server capital (industry-standard 36).
	ServerLifetimeMonths int
	// InfraLifetimeMonths amortizes power infrastructure capital
	// (industry-standard 120).
	InfraLifetimeMonths int
}

// Hamilton returns the constants the paper quotes: 100 000 servers at
// $1450 each, $9/W power infrastructure, 7 ¢/kWh energy, PUE 1.1, with
// the customary 3-year server and 10-year infrastructure amortization.
func Hamilton() Params {
	return Params{
		Servers:              100000,
		ServerCostUSD:        1450,
		PowerInfraCostPerW:   9,
		EnergyCostPerKWh:     0.07,
		PUE:                  1.1,
		ServerLifetimeMonths: 36,
		InfraLifetimeMonths:  120,
	}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	switch {
	case p.Servers < 1:
		return errors.New("tco: need at least one server")
	case p.ServerCostUSD <= 0:
		return errors.New("tco: server cost must be positive")
	case p.PowerInfraCostPerW <= 0:
		return errors.New("tco: power infrastructure cost must be positive")
	case p.EnergyCostPerKWh <= 0:
		return errors.New("tco: energy cost must be positive")
	case p.PUE < 1:
		return errors.New("tco: PUE below 1 is unphysical")
	case p.ServerLifetimeMonths < 1 || p.InfraLifetimeMonths < 1:
		return errors.New("tco: lifetimes must be at least one month")
	}
	return nil
}

// Input describes one policy's measured operating point.
type Input struct {
	// Name labels the policy.
	Name string
	// ProvisionedWPerServer is the power capacity built per server.
	ProvisionedWPerServer float64
	// MeanPowerWPerServer is the average IT power actually drawn.
	MeanPowerWPerServer float64
	// RelativeThroughput is the per-server delivered throughput relative
	// to the reference policy (1.0 = reference). A policy with 1.18 needs
	// 1/1.18 as many servers for the same total work.
	RelativeThroughput float64
}

// Breakdown is the amortized monthly cost split for one policy.
type Breakdown struct {
	Name string
	// Servers is the fleet size after throughput normalization.
	Servers float64
	// ServerMonthlyUSD, PowerInfraMonthlyUSD, and EnergyMonthlyUSD are the
	// amortized monthly cost components.
	ServerMonthlyUSD     float64
	PowerInfraMonthlyUSD float64
	EnergyMonthlyUSD     float64
	// TotalMonthlyUSD is the sum.
	TotalMonthlyUSD float64
}

const hoursPerMonth = 730.0

// Monthly computes the amortized monthly TCO for one policy.
func (p Params) Monthly(in Input) (Breakdown, error) {
	if err := p.Validate(); err != nil {
		return Breakdown{}, err
	}
	if in.ProvisionedWPerServer <= 0 {
		return Breakdown{}, fmt.Errorf("tco: %s: provisioned power must be positive", in.Name)
	}
	if in.MeanPowerWPerServer < 0 || in.MeanPowerWPerServer > in.ProvisionedWPerServer*1.05 {
		return Breakdown{}, fmt.Errorf("tco: %s: mean power %v W inconsistent with provisioned %v W",
			in.Name, in.MeanPowerWPerServer, in.ProvisionedWPerServer)
	}
	if in.RelativeThroughput <= 0 {
		return Breakdown{}, fmt.Errorf("tco: %s: relative throughput must be positive", in.Name)
	}
	servers := float64(p.Servers) / in.RelativeThroughput
	b := Breakdown{Name: in.Name, Servers: servers}
	b.ServerMonthlyUSD = servers * p.ServerCostUSD / float64(p.ServerLifetimeMonths)
	b.PowerInfraMonthlyUSD = servers * in.ProvisionedWPerServer * p.PowerInfraCostPerW / float64(p.InfraLifetimeMonths)
	b.EnergyMonthlyUSD = servers * in.MeanPowerWPerServer / 1000 * p.PUE * hoursPerMonth * p.EnergyCostPerKWh
	b.TotalMonthlyUSD = b.ServerMonthlyUSD + b.PowerInfraMonthlyUSD + b.EnergyMonthlyUSD
	return b, nil
}

// Compare computes breakdowns for several policies and returns them in
// input order.
func (p Params) Compare(ins []Input) ([]Breakdown, error) {
	if len(ins) == 0 {
		return nil, errors.New("tco: nothing to compare")
	}
	out := make([]Breakdown, 0, len(ins))
	for _, in := range ins {
		b, err := p.Monthly(in)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}
