package tco

import (
	"math"
	"testing"
)

func TestHamiltonParams(t *testing.T) {
	p := Hamilton()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Servers != 100000 || p.ServerCostUSD != 1450 || p.PowerInfraCostPerW != 9 {
		t.Errorf("unexpected constants: %+v", p)
	}
	if p.EnergyCostPerKWh != 0.07 || p.PUE != 1.1 {
		t.Errorf("unexpected opex constants: %+v", p)
	}
}

func TestValidate(t *testing.T) {
	base := Hamilton()
	mutations := []func(*Params){
		func(p *Params) { p.Servers = 0 },
		func(p *Params) { p.ServerCostUSD = 0 },
		func(p *Params) { p.PowerInfraCostPerW = -1 },
		func(p *Params) { p.EnergyCostPerKWh = 0 },
		func(p *Params) { p.PUE = 0.9 },
		func(p *Params) { p.ServerLifetimeMonths = 0 },
		func(p *Params) { p.InfraLifetimeMonths = 0 },
	}
	for i, m := range mutations {
		p := base
		m(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d: expected error", i)
		}
	}
}

func TestMonthlyHandComputed(t *testing.T) {
	p := Hamilton()
	in := Input{
		Name:                  "ref",
		ProvisionedWPerServer: 150,
		MeanPowerWPerServer:   120,
		RelativeThroughput:    1,
	}
	b, err := p.Monthly(in)
	if err != nil {
		t.Fatal(err)
	}
	// Server: 100000 × 1450 / 36.
	wantServer := 100000.0 * 1450 / 36
	if math.Abs(b.ServerMonthlyUSD-wantServer)/wantServer > 1e-9 {
		t.Errorf("server cost = %v, want %v", b.ServerMonthlyUSD, wantServer)
	}
	// Infra: 100000 × 150 W × $9/W / 120.
	wantInfra := 100000.0 * 150 * 9 / 120
	if math.Abs(b.PowerInfraMonthlyUSD-wantInfra)/wantInfra > 1e-9 {
		t.Errorf("infra cost = %v, want %v", b.PowerInfraMonthlyUSD, wantInfra)
	}
	// Energy: 100000 × 0.120 kW × 1.1 × 730 h × $0.07.
	wantEnergy := 100000.0 * 0.120 * 1.1 * 730 * 0.07
	if math.Abs(b.EnergyMonthlyUSD-wantEnergy)/wantEnergy > 1e-9 {
		t.Errorf("energy cost = %v, want %v", b.EnergyMonthlyUSD, wantEnergy)
	}
	wantTotal := wantServer + wantInfra + wantEnergy
	if math.Abs(b.TotalMonthlyUSD-wantTotal)/wantTotal > 1e-9 {
		t.Errorf("total = %v, want %v", b.TotalMonthlyUSD, wantTotal)
	}
}

func TestThroughputNormalizationShrinksFleet(t *testing.T) {
	p := Hamilton()
	ref, err := p.Monthly(Input{Name: "ref", ProvisionedWPerServer: 150, MeanPowerWPerServer: 120, RelativeThroughput: 1})
	if err != nil {
		t.Fatal(err)
	}
	better, err := p.Monthly(Input{Name: "better", ProvisionedWPerServer: 150, MeanPowerWPerServer: 120, RelativeThroughput: 1.18})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(better.Servers-100000/1.18) > 1e-6 {
		t.Errorf("servers = %v", better.Servers)
	}
	// Every component scales with fleet size here.
	wantRatio := 1 / 1.18
	if math.Abs(better.TotalMonthlyUSD/ref.TotalMonthlyUSD-wantRatio) > 1e-9 {
		t.Errorf("total ratio = %v, want %v", better.TotalMonthlyUSD/ref.TotalMonthlyUSD, wantRatio)
	}
}

func TestMonthlyValidation(t *testing.T) {
	p := Hamilton()
	cases := []Input{
		{Name: "no cap", ProvisionedWPerServer: 0, MeanPowerWPerServer: 10, RelativeThroughput: 1},
		{Name: "overdraw", ProvisionedWPerServer: 100, MeanPowerWPerServer: 150, RelativeThroughput: 1},
		{Name: "negative power", ProvisionedWPerServer: 100, MeanPowerWPerServer: -1, RelativeThroughput: 1},
		{Name: "no throughput", ProvisionedWPerServer: 100, MeanPowerWPerServer: 50, RelativeThroughput: 0},
	}
	for _, in := range cases {
		if _, err := p.Monthly(in); err == nil {
			t.Errorf("%s: expected error", in.Name)
		}
	}
	bad := Params{}
	if _, err := bad.Monthly(cases[0]); err == nil {
		t.Error("expected params validation error")
	}
}

func TestCompare(t *testing.T) {
	p := Hamilton()
	ins := []Input{
		{Name: "a", ProvisionedWPerServer: 185, MeanPowerWPerServer: 140, RelativeThroughput: 1},
		{Name: "b", ProvisionedWPerServer: 150, MeanPowerWPerServer: 130, RelativeThroughput: 1.1},
	}
	out, err := p.Compare(ins)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].Name != "a" || out[1].Name != "b" {
		t.Errorf("compare order broken: %+v", out)
	}
	if out[1].TotalMonthlyUSD >= out[0].TotalMonthlyUSD {
		t.Error("cheaper policy should cost less")
	}
	if _, err := p.Compare(nil); err == nil {
		t.Error("expected error for empty comparison")
	}
	ins[0].RelativeThroughput = -1
	if _, err := p.Compare(ins); err == nil {
		t.Error("expected error propagation")
	}
}
