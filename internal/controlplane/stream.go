package controlplane

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"pocolo/internal/parallel"
	"pocolo/internal/trace"
)

// This file is the controller half of the streaming transport. Agents
// push binary delta heartbeats (codec.go) instead of being polled; the
// controller ingests them — one at a time over POST /v1/heartbeat, or
// batched through the bounded worker pool — into per-pod state shards.
// Each shard serializes its writers behind a mutex, folds every applied
// frame into its decoders, and publishes the pod's agent views as an
// immutable snapshot swapped in atomically. The round loop never takes
// a shard lock: it loads each pod's current snapshot pointer and reads
// frozen views, so a round costs the same whether zero or ten thousand
// frames are in flight, and a stalled sender can block nothing but its
// own pod's ingest.

// maxHeartbeatBatch bounds one IngestBatch call.
const maxHeartbeatBatch = 1 << 16

// agentView is one agent's state as of its last applied frame. Views
// are immutable after construction: ingest replaces the pointer, never
// the fields, which is what makes the round loop's lock-free reads
// sound.
type agentView struct {
	slot      int
	stats     StatsResponse
	seq       uint64
	epoch     uint64
	lastHeard time.Time
}

// podViews is one pod's published snapshot: local index → view, nil
// until that agent's first frame applies.
type podViews struct {
	views []*agentView
}

// hbDecoder is the receiver half of the delta protocol for one agent:
// the last applied snapshot and its seq. Guarded by its shard's mutex.
type hbDecoder struct {
	synced bool
	seq    uint64
	epoch  uint64
	stats  StatsResponse
}

// hbVerdict classifies one frame's fate.
type hbVerdict int

const (
	hbApplied hbVerdict = iota
	hbStale             // duplicate or reordered behind the applied seq; ignored
	hbResync            // cannot apply; sender must promote to a full frame
)

// apply folds one decoded frame into the decoder. A full frame always
// (re)establishes sync unless it is older than what already applied; a
// delta applies only when its base is exactly the last applied seq, so
// loss, reordering, and field-mask lies degrade to a resync demand, not
// to corrupted state.
func (d *hbDecoder) apply(hb *Heartbeat) hbVerdict {
	if hb.Full {
		if d.synced && hb.Seq <= d.seq {
			// A full frame that regresses the sequence is either a
			// network replay or a restarted sender whose fresh encoder
			// began again at 1. Both get a resync demand carrying the
			// receiver's watermark (the ack's Seq): a replayed frame's
			// live sender ignores it at worst one extra full frame,
			// while a restarted sender adopts the watermark so its next
			// full frame clears it — state never rolls back, and a
			// restart converges in two heartbeats.
			return hbResync
		}
		d.stats = hb.Stats
		d.seq = hb.Seq
		d.epoch = hb.Epoch
		d.synced = true
		return hbApplied
	}
	if !d.synced {
		return hbResync
	}
	if hb.Seq <= d.seq {
		return hbStale
	}
	if hb.Base != d.seq {
		return hbResync
	}
	applyHeartbeatDelta(&d.stats, hb)
	d.seq = hb.Seq
	d.epoch = hb.Epoch
	return hbApplied
}

// resyncSeq picks the sequence a resync ack should carry: the
// receiver's watermark when it is ahead of the frame (so a restarted
// sender can adopt it), otherwise the frame's own sequence.
func resyncSeq(frameSeq, watermark uint64) uint64 {
	if watermark > frameSeq {
		return watermark
	}
	return frameSeq
}

// streamShard is one pod's ingest state: decoders behind a mutex,
// published views behind an atomic pointer.
type streamShard struct {
	base int // first global slot in this shard

	mu   sync.Mutex
	decs []hbDecoder
	snap atomic.Pointer[podViews]
}

// publishLocked rebuilds and swaps the shard's snapshot from the given
// locally-indexed dirty set. Callers hold sh.mu; one swap covers a whole
// batch, so batch ingest costs one views-slice copy per touched pod.
func (sh *streamShard) publishLocked(dirty []int, now time.Time) {
	prev := sh.snap.Load()
	next := &podViews{views: make([]*agentView, len(sh.decs))}
	if prev != nil {
		copy(next.views, prev.views)
	}
	for _, li := range dirty {
		d := &sh.decs[li]
		next.views[li] = &agentView{
			slot:      sh.base + li,
			stats:     d.stats,
			seq:       d.seq,
			epoch:     d.epoch,
			lastHeard: now,
		}
	}
	sh.snap.Store(next)
}

// streamState is the controller's streaming ingest plane.
type streamState struct {
	podSize int
	slots   map[string]int // configured agent URL → global slot
	names   sync.Map       // agent name → global slot, bound by full frames
	shards  []*streamShard

	// Cumulative ingest counters (atomic: ingest is concurrent). The
	// round loop snapshots them and traces the per-round delta.
	frames, fulls, deltas, stale, resyncs, rejects, bytes atomic.Int64
	prev                                                  trace.HeartbeatSummary // counter values already traced
}

func newStreamState(urls []string, podSize int) *streamState {
	s := &streamState{
		podSize: podSize,
		slots:   make(map[string]int, len(urls)),
	}
	for i, u := range urls {
		s.slots[u] = i
	}
	nShards := (len(urls) + podSize - 1) / podSize
	s.shards = make([]*streamShard, nShards)
	for p := range s.shards {
		lo, hi := p*podSize, (p+1)*podSize
		if hi > len(urls) {
			hi = len(urls)
		}
		s.shards[p] = &streamShard{base: lo, decs: make([]hbDecoder, hi-lo)}
	}
	return s
}

// shardOf returns the shard owning a global slot and the local index.
func (s *streamState) shardOf(slot int) (*streamShard, int) {
	return s.shards[slot/s.podSize], slot % s.podSize
}

// view returns the published view for a configured agent URL (nil before
// the agent's first applied frame). Lock-free: one atomic load.
func (s *streamState) view(url string) *agentView {
	slot, ok := s.slots[url]
	if !ok {
		return nil
	}
	sh, li := s.shardOf(slot)
	pv := sh.snap.Load()
	if pv == nil {
		return nil
	}
	return pv.views[li]
}

// route resolves a decoded frame to its global slot. Full frames bind by
// the advertised URL and (re)bind the agent name; deltas resolve by the
// name bound by an earlier full frame.
func (s *streamState) route(hb *Heartbeat) (int, hbVerdict) {
	if hb.Full {
		slot, ok := s.slots[hb.URL]
		if !ok {
			return 0, hbResync // not a configured agent; refuse to bind
		}
		s.names.Store(hb.Agent, slot)
		return slot, hbApplied
	}
	v, ok := s.names.Load(hb.Agent)
	if !ok {
		return 0, hbResync // unknown sender; a full frame will bind it
	}
	return v.(int), hbApplied
}

// summaryDelta snapshots the cumulative counters and returns the change
// since the previous call (the per-round trace payload).
func (s *streamState) summaryDelta() trace.HeartbeatSummary {
	cur := trace.HeartbeatSummary{
		Frames:  int(s.frames.Load()),
		Fulls:   int(s.fulls.Load()),
		Deltas:  int(s.deltas.Load()),
		Stale:   int(s.stale.Load()),
		Resyncs: int(s.resyncs.Load()),
		Rejects: int(s.rejects.Load()),
		Bytes:   s.bytes.Load(),
	}
	d := trace.HeartbeatSummary{
		Frames:  cur.Frames - s.prev.Frames,
		Fulls:   cur.Fulls - s.prev.Fulls,
		Deltas:  cur.Deltas - s.prev.Deltas,
		Stale:   cur.Stale - s.prev.Stale,
		Resyncs: cur.Resyncs - s.prev.Resyncs,
		Rejects: cur.Rejects - s.prev.Rejects,
		Bytes:   cur.Bytes - s.prev.Bytes,
	}
	s.prev = cur
	return d
}

// StreamStats is the controller's cumulative heartbeat-ingest counters
// (zero-valued under the polling transport).
type StreamStats struct {
	Frames  int64 `json:"frames"`
	Fulls   int64 `json:"fulls"`
	Deltas  int64 `json:"deltas"`
	Stale   int64 `json:"stale"`
	Resyncs int64 `json:"resyncs"`
	Rejects int64 `json:"rejects"`
	Bytes   int64 `json:"bytes"`
}

// StreamStats reports the cumulative ingest counters (zero when the
// controller polls).
func (c *Controller) StreamStats() StreamStats {
	s := c.stream
	if s == nil {
		return StreamStats{}
	}
	return StreamStats{
		Frames:  s.frames.Load(),
		Fulls:   s.fulls.Load(),
		Deltas:  s.deltas.Load(),
		Stale:   s.stale.Load(),
		Resyncs: s.resyncs.Load(),
		Rejects: s.rejects.Load(),
		Bytes:   s.bytes.Load(),
	}
}

// IngestHeartbeat decodes and applies one pushed frame, returning the
// ack to send back. Safe for concurrent use; only the owning shard
// locks, and the round loop is never blocked.
func (c *Controller) IngestHeartbeat(frame []byte) HeartbeatAck {
	s := c.stream
	if s == nil {
		return HeartbeatAck{Reject: true}
	}
	s.frames.Add(1)
	s.bytes.Add(int64(len(frame)))
	hb, err := c.decodeHeartbeatObs(frame)
	if err != nil {
		s.rejects.Add(1)
		if c.obs != nil {
			c.obs.vReject.Inc()
		}
		c.logf("heartbeat rejected: %v", err)
		return HeartbeatAck{Reject: true}
	}
	c.countFrameObs(hb, s)
	slot, verdict := s.route(hb)
	if verdict != hbApplied {
		s.resyncs.Add(1)
		if c.obs != nil {
			c.obs.vResync.Inc()
		}
		return HeartbeatAck{Agent: hb.Agent, Seq: hb.Seq, Resync: true}
	}
	sh, li := s.shardOf(slot)
	now := c.now()
	sh.mu.Lock()
	verdict = sh.decs[li].apply(hb)
	watermark := sh.decs[li].seq
	if verdict == hbApplied {
		sh.publishLocked([]int{li}, now)
	}
	sh.mu.Unlock()
	switch verdict {
	case hbStale:
		s.stale.Add(1)
		if c.obs != nil {
			c.obs.vStale.Inc()
		}
		return HeartbeatAck{Agent: hb.Agent, Seq: hb.Seq}
	case hbResync:
		s.resyncs.Add(1)
		if c.obs != nil {
			c.obs.vResync.Inc()
		}
		return HeartbeatAck{Agent: hb.Agent, Seq: resyncSeq(hb.Seq, watermark), Resync: true}
	}
	return HeartbeatAck{Agent: hb.Agent, Seq: hb.Seq}
}

// decodeHeartbeatObs wraps DecodeHeartbeat with the decode-latency
// histogram; the timing branch costs nothing when obs is off.
func (c *Controller) decodeHeartbeatObs(frame []byte) (*Heartbeat, error) {
	if c.obs == nil {
		return DecodeHeartbeat(frame)
	}
	start := time.Now()
	hb, err := DecodeHeartbeat(frame)
	c.obs.decode.ObserveDuration(time.Since(start))
	return hb, err
}

// countFrameObs mirrors the frame-kind counters into the obs registry.
func (c *Controller) countFrameObs(hb *Heartbeat, s *streamState) {
	if hb.Full {
		s.fulls.Add(1)
		if c.obs != nil {
			c.obs.vFull.Inc()
		}
	} else {
		s.deltas.Add(1)
		if c.obs != nil {
			c.obs.vDelta.Inc()
		}
	}
}

// IngestBatch decodes a batch of frames through the bounded worker pool,
// groups the survivors by shard, and applies each shard's frames under
// one lock acquisition with one snapshot swap. Acks are returned in
// frame order. This is the campaign's and the benchmarks' bulk path; a
// live deployment reaches the same shards one frame at a time through
// the HTTP handler.
func (c *Controller) IngestBatch(frames [][]byte) []HeartbeatAck {
	s := c.stream
	acks := make([]HeartbeatAck, len(frames))
	if s == nil {
		for i := range acks {
			acks[i] = HeartbeatAck{Reject: true}
		}
		return acks
	}
	if len(frames) > maxHeartbeatBatch {
		frames = frames[:maxHeartbeatBatch]
	}
	// Decode fans out: full frames carry JSON snapshots, the one
	// genuinely expensive decode.
	decoded := make([]*Heartbeat, len(frames))
	_ = parallel.ForEach(len(frames), 0, func(i int) error {
		s.frames.Add(1)
		s.bytes.Add(int64(len(frames[i])))
		hb, err := c.decodeHeartbeatObs(frames[i])
		if err != nil {
			s.rejects.Add(1)
			if c.obs != nil {
				c.obs.vReject.Inc()
			}
			acks[i] = HeartbeatAck{Reject: true}
			return nil
		}
		decoded[i] = hb
		return nil
	})
	// Route serially: binding order must be deterministic, and it is two
	// map operations per frame.
	type shardWork struct {
		idx []int // frame indices, in arrival order
	}
	work := make(map[int]*shardWork)
	slots := make([]int, len(frames))
	for i, hb := range decoded {
		if hb == nil {
			continue
		}
		c.countFrameObs(hb, s)
		slot, verdict := s.route(hb)
		if verdict != hbApplied {
			s.resyncs.Add(1)
			if c.obs != nil {
				c.obs.vResync.Inc()
			}
			acks[i] = HeartbeatAck{Agent: hb.Agent, Seq: hb.Seq, Resync: true}
			decoded[i] = nil
			continue
		}
		slots[i] = slot
		p := slot / s.podSize
		w := work[p]
		if w == nil {
			w = &shardWork{}
			work[p] = w
		}
		w.idx = append(w.idx, i)
	}
	if len(work) == 0 {
		return acks
	}
	pods := make([]int, 0, len(work))
	for p := range work {
		pods = append(pods, p)
	}
	now := c.now()
	// Shard application fans out: shards share nothing, and each touched
	// pod pays exactly one lock round-trip and one snapshot swap.
	_ = parallel.ForEach(len(pods), 0, func(k int) error {
		p := pods[k]
		sh := s.shards[p]
		var dirty []int
		sh.mu.Lock()
		for _, i := range work[p].idx {
			hb := decoded[i]
			li := slots[i] % s.podSize
			switch sh.decs[li].apply(hb) {
			case hbApplied:
				dirty = append(dirty, li)
				acks[i] = HeartbeatAck{Agent: hb.Agent, Seq: hb.Seq}
			case hbStale:
				s.stale.Add(1)
				if c.obs != nil {
					c.obs.vStale.Inc()
				}
				acks[i] = HeartbeatAck{Agent: hb.Agent, Seq: hb.Seq}
			case hbResync:
				s.resyncs.Add(1)
				if c.obs != nil {
					c.obs.vResync.Inc()
				}
				acks[i] = HeartbeatAck{Agent: hb.Agent, Seq: resyncSeq(hb.Seq, sh.decs[li].seq), Resync: true}
			}
		}
		if len(dirty) > 0 {
			sh.publishLocked(dirty, now)
		}
		sh.mu.Unlock()
		return nil
	})
	return acks
}

// HeartbeatHandler serves POST /v1/heartbeat: one binary frame in, one
// JSON ack out. Rejected frames get 400 with the reject ack so a
// confused sender backs off to a full resync.
func (c *Controller) HeartbeatHandler(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if c.stream == nil {
		writeError(w, http.StatusNotFound, "controller transport is %q, not %q", c.cfg.Transport, TransportStream)
		return
	}
	frame, err := io.ReadAll(io.LimitReader(r.Body, maxHeartbeatFrame+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading frame: %v", err)
		return
	}
	if len(frame) > maxHeartbeatFrame {
		writeError(w, http.StatusRequestEntityTooLarge, "frame exceeds %d bytes", maxHeartbeatFrame)
		return
	}
	ack := c.IngestHeartbeat(frame)
	status := http.StatusOK
	if ack.Reject {
		status = http.StatusBadRequest
	}
	writeJSON(w, status, ack)
}

// maxHeartbeatFrame bounds one pushed frame: header plus URL plus the
// snapshot blob limit with varint slack.
const maxHeartbeatFrame = maxHeartbeatBlob + maxHeartbeatName + maxHeartbeatURL + 64

// streamObserveLocked is the streaming transport's round head: fold each
// agent's latest published view into the controller's liveness state.
// One atomic snapshot load per pod, zero locks, zero network — the
// polling transport's probe fan-out and miss accounting collapse into a
// read over frozen state. An agent whose view has not advanced since the
// last round has missed a heartbeat, exactly as a failed poll probe
// would count it.
func (c *Controller) streamObserveLocked(now time.Time) (membershipChanged bool) {
	s := c.stream
	// Per-pod staleness watermarks: the max of (now − lastHeard) over each
	// pod's agents, observed against the staleness SLO per agent.
	var podMax []float64
	if c.obs != nil {
		podMax = make([]float64, len(s.shards))
	}
	for _, a := range c.agents {
		view := s.view(a.url)
		if c.obs != nil && view != nil {
			stale := now.Sub(view.lastHeard)
			c.obs.staleSLO.Observe(stale)
			if p := s.slots[a.url] / s.podSize; stale.Seconds() > podMax[p] {
				podMax[p] = stale.Seconds()
			}
		}
		if view == nil || view.seq <= a.streamSeq {
			if view == nil {
				a.lastErr = "no heartbeat received"
			} else {
				a.lastErr = fmt.Sprintf("no heartbeat since seq %d", view.seq)
			}
			a.misses++
			if a.alive && a.misses >= c.cfg.DeadAfter {
				a.alive = false
				c.deaths++
				membershipChanged = true
				c.logf("agent %s (%s) dead after %d missed heartbeats: %s", a.name, a.url, a.misses, a.lastErr)
			}
			continue
		}
		if !a.alive || !a.everSeen {
			membershipChanged = true
			if a.everSeen {
				c.rejoins++
				c.logf("agent %s (%s) rejoined", view.stats.Agent, a.url)
			} else {
				c.logf("agent %s (%s) discovered, lc=%s", view.stats.Agent, a.url, view.stats.LC)
			}
		}
		a.alive = true
		a.everSeen = true
		a.misses = 0
		a.backoff = 0
		a.nextDue = now
		a.lastErr = ""
		a.name = view.stats.Agent
		a.lc = view.stats.LC
		a.last = view.stats
		a.streamSeq = view.seq
	}
	if c.obs != nil {
		for p, v := range podMax {
			c.obs.podStale[p].Set(v)
		}
	}
	if d := s.summaryDelta(); d.Frames > 0 || d.Resyncs > 0 || d.Rejects > 0 {
		c.tracer.Heartbeat(now, d)
	}
	return membershipChanged
}
