package controlplane

import (
	"fmt"
	"net/http"
	"time"

	"pocolo/internal/obs"
)

// This file is the controller's observability plane: the ctlObs handle
// bundle (round latency, SLO trackers, heartbeat ingest, per-pod
// staleness watermarks), the round-deadline flight-recorder trigger, and
// the /v1/top fleet snapshot that pocolo-top renders. Everything is
// nil-safe — a controller without a registry pays one nil check per
// site.

// ctlObs holds the controller's pre-registered metric handles so the hot
// paths (round loop, heartbeat ingest) never touch the registry's
// get-or-create map.
type ctlObs struct {
	reg *obs.Registry

	// round loop
	round    *obs.Histogram // pocolo_obs_round_seconds
	roundSLO *obs.SLO       // slo="round"
	staleSLO *obs.SLO       // slo="staleness"

	// heartbeat ingest (streaming transport)
	decode                                  *obs.Histogram // pocolo_obs_heartbeat_decode_seconds
	vFull, vDelta, vStale, vResync, vReject *obs.Counter   // verdict-labeled frames

	// per-pod staleness watermark, indexed by stream shard
	podStale []*obs.Gauge

	// budget path
	budgetLat *obs.Histogram // pocolo_obs_budget_rebalance_seconds
	headroom  map[string]*obs.Gauge
}

func newCtlObs(reg *obs.Registry, nPods int, roundDeadline, staleLimit time.Duration, sloBudget float64) *ctlObs {
	if reg == nil {
		return nil
	}
	o := &ctlObs{
		reg:      reg,
		round:    reg.Histogram("pocolo_obs_round_seconds", "Wall-clock duration of controller heartbeat rounds."),
		roundSLO: obs.NewSLO(reg, obs.Objective{Name: "round", Target: roundDeadline, Budget: sloBudget}),
		staleSLO: obs.NewSLO(reg, obs.Objective{Name: "staleness", Target: staleLimit, Budget: sloBudget}),
		decode:   reg.Histogram("pocolo_obs_heartbeat_decode_seconds", "Wall-clock duration of heartbeat frame decodes."),
		vFull:    reg.Counter("pocolo_obs_heartbeat_frames_total", "Heartbeat frames by ingest verdict.", obs.Label{Key: "verdict", Value: "full"}),
		vDelta:   reg.Counter("pocolo_obs_heartbeat_frames_total", "Heartbeat frames by ingest verdict.", obs.Label{Key: "verdict", Value: "delta"}),
		vStale:   reg.Counter("pocolo_obs_heartbeat_frames_total", "Heartbeat frames by ingest verdict.", obs.Label{Key: "verdict", Value: "stale"}),
		vResync:  reg.Counter("pocolo_obs_heartbeat_frames_total", "Heartbeat frames by ingest verdict.", obs.Label{Key: "verdict", Value: "resync"}),
		vReject:  reg.Counter("pocolo_obs_heartbeat_frames_total", "Heartbeat frames by ingest verdict.", obs.Label{Key: "verdict", Value: "reject"}),
		budgetLat: reg.Histogram("pocolo_obs_budget_rebalance_seconds",
			"Wall-clock duration of the controller's budget-tree divisions."),
		headroom: make(map[string]*obs.Gauge),
	}
	o.podStale = make([]*obs.Gauge, nPods)
	for p := range o.podStale {
		o.podStale[p] = reg.Gauge("pocolo_obs_stream_staleness_seconds",
			"Max staleness (now minus last applied heartbeat) per pod.",
			obs.Label{Key: "pod", Value: fmt.Sprintf("pod-%d", p)})
	}
	return o
}

// headroomGauge returns (get-or-create, cached) the per-agent budget
// headroom gauge. Callers hold Controller.mu.
func (o *ctlObs) headroomGauge(name string) *obs.Gauge {
	g, ok := o.headroom[name]
	if !ok {
		g = o.reg.Gauge("pocolo_obs_budget_headroom_watts",
			"Installed budget share minus reported power draw per agent.",
			obs.Label{Key: "host", Value: name})
		o.headroom[name] = g
	}
	return g
}

// observeRound records one round's measured duration against the
// round-latency histogram and SLO, then arms the flight recorder when
// the (possibly fault-injected) duration blows the deadline. Injected
// latency is added to the measurement, never slept, so deterministic
// campaigns can reproduce a slow round without wall-clock noise.
func (c *Controller) observeRound(now time.Time, round int, d time.Duration) {
	if f := c.cfg.InjectRoundLatency; f != nil {
		d += f(round)
	}
	if c.obs != nil {
		c.obs.round.ObserveDuration(d)
		c.obs.roundSLO.Observe(d)
	}
	if c.cfg.Recorder != nil && c.roundDeadline > 0 && d > c.roundDeadline {
		c.triggerBundle(now, round, d, "round-deadline")
	}
}

// podCounter is one agent's row in a flight bundle's pods.json.
type podCounter struct {
	Agent  string  `json:"agent"`
	Pod    string  `json:"pod"`
	Alive  bool    `json:"alive"`
	Seq    uint64  `json:"seq"`
	StaleS float64 `json:"staleness_s"`
}

// podCounters snapshots per-agent liveness/staleness for a bundle.
func (c *Controller) podCounters(now time.Time) []podCounter {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]podCounter, 0, len(c.agents))
	for i, a := range c.agents {
		pc := podCounter{
			Agent: a.name,
			Pod:   fmt.Sprintf("pod-%d", i/c.cfg.PodSize),
			Alive: a.alive,
			Seq:   a.streamSeq,
		}
		if c.stream != nil {
			if v := c.stream.view(a.url); v != nil {
				pc.StaleS = now.Sub(v.lastHeard).Seconds()
			}
		}
		out = append(out, pc)
	}
	return out
}

// triggerBundle fires the flight recorder with the controller's recent
// trace events, obs snapshot, and per-agent counters. Bundle event logs
// are wall-free and stamped on the controller clock, so seeded runs
// produce byte-identical events.jsonl files.
func (c *Controller) triggerBundle(now time.Time, round int, d time.Duration, reason string) {
	var snap obs.Snapshot
	if c.obs != nil {
		snap = c.obs.reg.Snapshot()
	}
	dir, taken, err := c.cfg.Recorder.Trigger(obs.Bundle{
		Reason: reason,
		Now:    now,
		Events: c.tracer.Events(),
		Obs:    snap,
		Pods:   c.podCounters(now),
		Detail: map[string]any{
			"round":      round,
			"duration_s": d.Seconds(),
			"deadline_s": c.roundDeadline.Seconds(),
		},
	})
	if err != nil {
		c.logf("flight recorder: %v", err)
		return
	}
	if taken {
		c.logf("flight recorder: %s bundle at %s (round %d, %.3fs)", reason, dir, round, d.Seconds())
	}
}

// TopPod is one pod row of the fleet view.
type TopPod struct {
	Pod         string  `json:"pod"`
	Agents      int     `json:"agents"`
	Alive       int     `json:"alive"`
	StalenessS  float64 `json:"staleness_s"`
	SolveP50Ms  float64 `json:"solve_p50_ms"`
	SolveP99Ms  float64 `json:"solve_p99_ms"`
	BatchDirty  int64   `json:"batch_dirty"`
	BatchRounds int64   `json:"batch_rounds"`
	HeadroomW   float64 `json:"headroom_w"`
	Violations  int     `json:"violations"`
}

// TopSnapshot is the /v1/top payload: the fleet rolled up per pod plus
// the controller's round-latency and SLO summary.
type TopSnapshot struct {
	Transport  string   `json:"transport"`
	Rounds     int      `json:"rounds"`
	Solves     int      `json:"solves"`
	Deaths     int      `json:"deaths"`
	Degraded   bool     `json:"degraded"`
	RoundP50Ms float64  `json:"round_p50_ms"`
	RoundP99Ms float64  `json:"round_p99_ms"`
	RoundBurn  float64  `json:"round_burn"`
	StaleBurn  float64  `json:"stale_burn"`
	Pods       []TopPod `json:"pods"`
}

// Top rolls the controller's state and metrics up into the fleet view
// pocolo-top renders. Works with or without a registry: quantiles and
// burn rates are zero when the controller runs unobserved.
func (c *Controller) Top() TopSnapshot {
	now := c.now()
	// Read the registry outside the controller lock: Snapshot walks every
	// shard of every series.
	solveByPod := make(map[string]obs.HistogramSnapshot)
	dirtyByPod := make(map[string]int64)
	roundsByPod := make(map[string]int64)
	var roundHist *obs.HistogramSnapshot
	var top TopSnapshot
	if c.obs != nil {
		snap := c.obs.reg.Snapshot()
		for i := range snap.Histograms {
			h := snap.Histograms[i]
			switch h.Name {
			case "pocolo_obs_pod_solve_seconds":
				if p := labelValue(h.Labels, "pod"); p != "" {
					solveByPod[p] = h
				}
			case "pocolo_obs_round_seconds":
				roundHist = &snap.Histograms[i]
			}
		}
		for _, cs := range snap.Counters {
			p := labelValue(cs.Labels, "pod")
			switch cs.Name {
			case "pocolo_obs_batch_dirty_total":
				dirtyByPod[p] = cs.Value
			case "pocolo_obs_batch_rounds_total":
				roundsByPod[p] = cs.Value
			}
		}
		if roundHist != nil {
			top.RoundP50Ms = roundHist.Quantile(0.5) * 1e3
			top.RoundP99Ms = roundHist.Quantile(0.99) * 1e3
		}
		top.RoundBurn = c.obs.roundSLO.Burn()
		top.StaleBurn = c.obs.staleSLO.Burn()
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	top.Transport = c.cfg.Transport
	top.Rounds = c.rounds
	top.Solves = c.solves
	top.Deaths = c.deaths
	top.Degraded = c.degraded
	nPods := (len(c.agents) + c.cfg.PodSize - 1) / c.cfg.PodSize
	pods := make([]TopPod, nPods)
	for p := range pods {
		pods[p].Pod = fmt.Sprintf("pod-%d", p)
	}
	var shares map[string]float64
	if c.budget != nil {
		shares = c.budget.shares
	}
	for i, a := range c.agents {
		row := &pods[i/c.cfg.PodSize]
		row.Agents++
		if a.alive {
			row.Alive++
			if a.last.Slack < 0 {
				row.Violations++
			}
		}
		if c.stream != nil {
			if v := c.stream.view(a.url); v != nil {
				if st := now.Sub(v.lastHeard).Seconds(); st > row.StalenessS {
					row.StalenessS = st
				}
			}
		} else if !a.alive {
			row.StalenessS = float64(a.misses) * c.cfg.Heartbeat.Seconds()
		}
		if share, ok := shares[a.name]; ok {
			row.HeadroomW += share - a.last.PowerW
		}
	}
	for p := range pods {
		if h, ok := solveByPod[pods[p].Pod]; ok {
			pods[p].SolveP50Ms = h.Quantile(0.5) * 1e3
			pods[p].SolveP99Ms = h.Quantile(0.99) * 1e3
		}
		pods[p].BatchDirty = dirtyByPod[pods[p].Pod]
		pods[p].BatchRounds = roundsByPod[pods[p].Pod]
	}
	top.Pods = pods
	return top
}

func labelValue(labels []obs.Label, key string) string {
	for _, l := range labels {
		if l.Key == key {
			return l.Value
		}
	}
	return ""
}

// TopHandler serves the fleet view as JSON (GET /v1/top).
func (c *Controller) TopHandler(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, http.StatusOK, c.Top())
}

// Obs returns the controller's metrics registry (nil when unobserved).
func (c *Controller) Obs() *obs.Registry {
	if c.obs == nil {
		return nil
	}
	return c.obs.reg
}
