package controlplane

import (
	"context"
	"reflect"
	"testing"
	"time"

	"pocolo/internal/invariant"
	"pocolo/internal/machine"
	"pocolo/internal/utility"
	"pocolo/internal/workload"
)

// campaignAgentConfigs builds one AgentConfig per LC app, each offering
// every BE app, on the Table I server with a two-peak trace.
func campaignAgentConfigs(t *testing.T, lcs, bes []string) []AgentConfig {
	t.Helper()
	models := fixtureModels(t)
	cfgs := make([]AgentConfig, 0, len(lcs))
	for i, lc := range lcs {
		trace, err := workload.NewTwoPeakTrace(0.3, 0.5, 0.8, 20*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		var cands []*workload.Spec
		beModels := make(map[string]*utility.Model, len(bes))
		for _, be := range bes {
			cands = append(cands, spec(t, be))
			beModels[be] = models[be]
		}
		cfgs = append(cfgs, AgentConfig{
			Name:         "agent-" + lc,
			Machine:      machine.XeonE52650(),
			LC:           spec(t, lc),
			LCModel:      models[lc],
			BECandidates: cands,
			BEModels:     beModels,
			Trace:        trace,
			SimTick:      100 * time.Millisecond,
			Seed:         int64(31 + i),
		})
	}
	return cfgs
}

// TestCampaignQuiet runs a faultless campaign: every best-effort app must
// end up placed on a live agent with zero deaths and zero invariant
// violations.
func TestCampaignQuiet(t *testing.T) {
	lcs := []string{"img-dnn", "sphinx", "xapian"}
	bes := []string{"graph", "lstm"}
	camp, err := NewCampaign(CampaignConfig{
		Agents:   campaignAgentConfigs(t, lcs, bes),
		BE:       bes,
		Duration: 15 * time.Second,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	report, err := camp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := report.Err(); err != nil {
		t.Fatal(err)
	}
	if report.Rounds != 15 {
		t.Fatalf("Rounds = %d, want 15", report.Rounds)
	}
	if report.Deaths != 0 {
		t.Fatalf("Deaths = %d in a faultless campaign", report.Deaths)
	}
	if len(report.Status.Unplaced) != 0 {
		t.Fatalf("unplaced BEs: %v", report.Status.Unplaced)
	}
	if len(report.Status.Placement) != len(bes) {
		t.Fatalf("placement = %v, want all of %v placed", report.Status.Placement, bes)
	}
}

// TestCampaignCrashAndPartition injects the acceptance scenario — an agent
// crash plus a heartbeat partition — and requires detection, migration,
// rejoin, and a clean invariant record.
func TestCampaignCrashAndPartition(t *testing.T) {
	lcs := []string{"img-dnn", "sphinx", "xapian"}
	bes := []string{"graph", "lstm"}
	hb := time.Second
	camp, err := NewCampaign(CampaignConfig{
		Agents: campaignAgentConfigs(t, lcs, bes),
		BE:     bes,
		Faults: []FaultEvent{
			{At: 5 * hb, Agent: 0, Kind: FaultCrash, Duration: 4 * hb},
			{At: 10 * hb, Agent: 1, Kind: FaultDropHeartbeats, Duration: 3 * hb},
		},
		Duration:  30 * time.Second,
		Heartbeat: hb,
		DeadAfter: 2,
		Seed:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	report, err := camp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := report.Err(); err != nil {
		t.Fatal(err)
	}
	if report.Deaths < 2 {
		t.Fatalf("Deaths = %d, want both faulted agents declared dead", report.Deaths)
	}
	if report.Rejoins < 2 {
		t.Fatalf("Rejoins = %d, want both faulted agents back", report.Rejoins)
	}
	if len(report.Status.Unplaced) != 0 {
		t.Fatalf("unplaced BEs after recovery: %v", report.Status.Unplaced)
	}
}

// TestCampaignDelayAndSpike covers the two remaining fault kinds: delayed
// responses beyond the probe timeout read as missed heartbeats, and a load
// spike must not break any invariant while the spiked server sheds its
// best-effort work.
func TestCampaignDelayAndSpike(t *testing.T) {
	lcs := []string{"img-dnn", "sphinx"}
	bes := []string{"graph"}
	hb := time.Second
	camp, err := NewCampaign(CampaignConfig{
		Agents: campaignAgentConfigs(t, lcs, bes),
		BE:     bes,
		Faults: []FaultEvent{
			{At: 4 * hb, Agent: 0, Kind: FaultDelayResponses, Duration: 3 * hb, Delay: time.Second},
			{At: 9 * hb, Agent: 1, Kind: FaultLoadSpike, Duration: 5 * hb, Level: 0.95},
		},
		Duration:  25 * time.Second,
		Heartbeat: hb,
		Timeout:   50 * time.Millisecond,
		DeadAfter: 2,
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	report, err := camp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := report.Err(); err != nil {
		t.Fatal(err)
	}
	if report.Deaths < 1 {
		t.Fatalf("Deaths = %d, want the delayed agent declared dead", report.Deaths)
	}
	if report.Rejoins < 1 {
		t.Fatalf("Rejoins = %d, want the delayed agent back", report.Rejoins)
	}
}

// TestCampaignSeededScheduleDeterministic replays the same seeded schedule
// twice and requires identical failure accounting and final placement —
// the property that makes fault campaigns debuggable.
func TestCampaignSeededScheduleDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("two full campaigns in -short mode")
	}
	lcs := []string{"img-dnn", "sphinx", "xapian"}
	bes := []string{"graph", "lstm"}
	faults := RandomFaults(99, len(lcs), 4, 30*time.Second, time.Second)
	if got := RandomFaults(99, len(lcs), 4, 30*time.Second, time.Second); !reflect.DeepEqual(got, faults) {
		t.Fatalf("RandomFaults not reproducible:\n%v\n%v", got, faults)
	}
	run := func() *CampaignReport {
		camp, err := NewCampaign(CampaignConfig{
			Agents:    campaignAgentConfigs(t, lcs, bes),
			BE:        bes,
			Faults:    faults,
			Duration:  40 * time.Second,
			DeadAfter: 2,
			Timeout:   50 * time.Millisecond,
			Seed:      4,
		})
		if err != nil {
			t.Fatal(err)
		}
		report, err := camp.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if err := report.Err(); err != nil {
			t.Fatal(err)
		}
		return report
	}
	a, b := run(), run()
	if a.Deaths != b.Deaths || a.Rejoins != b.Rejoins || a.Rounds != b.Rounds {
		t.Fatalf("replay diverged: deaths %d/%d rejoins %d/%d rounds %d/%d",
			a.Deaths, b.Deaths, a.Rejoins, b.Rejoins, a.Rounds, b.Rounds)
	}
	if !reflect.DeepEqual(a.Status.Placement, b.Status.Placement) {
		t.Fatalf("replay placement diverged: %v vs %v", a.Status.Placement, b.Status.Placement)
	}
}

// TestCampaignValidation exercises configuration rejection.
func TestCampaignValidation(t *testing.T) {
	bes := []string{"graph"}
	base := func() CampaignConfig {
		return CampaignConfig{
			Agents:   campaignAgentConfigs(t, []string{"img-dnn"}, bes),
			BE:       bes,
			Duration: 5 * time.Second,
		}
	}
	if _, err := NewCampaign(CampaignConfig{Duration: time.Second}); err == nil {
		t.Fatal("no agents accepted")
	}
	cfg := base()
	cfg.Duration = 0
	if _, err := NewCampaign(cfg); err == nil {
		t.Fatal("zero duration accepted")
	}
	cfg = base()
	cfg.Faults = []FaultEvent{{At: time.Second, Agent: 5, Kind: FaultCrash, Duration: time.Second}}
	if _, err := NewCampaign(cfg); err == nil {
		t.Fatal("out-of-range fault target accepted")
	}
	cfg = base()
	cfg.Faults = []FaultEvent{{At: time.Second, Agent: 0, Kind: FaultCrash}}
	if _, err := NewCampaign(cfg); err == nil {
		t.Fatal("zero-duration fault accepted")
	}
	cfg = base()
	cfg.Agents[0].Trace = nil
	if _, err := NewCampaign(cfg); err == nil {
		t.Fatal("traceless agent accepted")
	}
}

// TestCampaignHarnessObserves proves the invariant harness actually rides
// the campaign's tick path: a registered counting checker must see one
// snapshot per simulated tick per running agent.
func TestCampaignHarnessObserves(t *testing.T) {
	bes := []string{"graph"}
	h := invariant.NewHarness()
	ticks := 0
	if err := h.Register(invariant.Checker{
		Name:  "count-snapshots",
		Check: func(s *invariant.Snapshot) error { ticks++; return nil },
	}); err != nil {
		t.Fatal(err)
	}
	camp, err := NewCampaign(CampaignConfig{
		Agents:   campaignAgentConfigs(t, []string{"img-dnn", "sphinx"}, bes),
		BE:       bes,
		Duration: 5 * time.Second,
		Harness:  h,
		Seed:     6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := camp.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// 2 agents x 5 s x 10 ticks/s.
	if want := 100; ticks != want {
		t.Fatalf("counting checker saw %d snapshots, want %d", ticks, want)
	}
}
