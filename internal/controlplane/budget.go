package controlplane

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"time"

	"pocolo/internal/budget"
	"pocolo/internal/budget/tree"
	"pocolo/internal/trace"
)

// This file is the controller half of the hierarchical power-budget
// subsystem (internal/budget/tree): the controller owns a budget tree
// whose leaves name its agents, re-divides every node's budget over the
// fleet's reported power draw each heartbeat round, and pushes the
// per-agent shares over POST /v1/cap. Runtime SetBudget mutations — the
// brownout campaign's cut-and-restore hook — shrink or regrow a node
// mid-flight, and the tree-conservation invariant rides the campaign
// harness through the BudgetAuthority interface the Controller
// implements.

// shareTolerance is the smallest watt change worth a push or a
// BudgetShift trace event.
const shareTolerance = 1e-9

// budgetState is the controller's budget bookkeeping, guarded by
// Controller.mu.
type budgetState struct {
	tree   *tree.Tree
	est    *budget.DemandEstimator
	shares map[string]float64 // agent name → desired cap from the last division
	// rebalances counts installed divisions; lastCutAtReb records the
	// rebalance count at the latest SetBudget mutation, so convergence
	// grace is measured in rebalances, not wall time (the agents'
	// simulated clocks and the controller clock share no epoch).
	rebalances   int
	brownouts    int
	lastCutAtReb int
	floorsWarned bool
}

// newBudgetState parses the tree spec and builds the demand estimator.
func newBudgetState(spec string) (*budgetState, error) {
	tr, err := tree.Parse(spec)
	if err != nil {
		return nil, err
	}
	smoothing, err := budget.ResolveSmoothing(nil)
	if err != nil {
		return nil, err
	}
	marginW, err := budget.ResolveMarginW(nil)
	if err != nil {
		return nil, err
	}
	return &budgetState{
		tree:   tr,
		est:    budget.NewDemandEstimator(len(tr.Hosts()), smoothing, marginW),
		shares: make(map[string]float64, len(tr.Hosts())),
	}, nil
}

// BudgetStatus is the controller's budget-tree snapshot.
type BudgetStatus struct {
	// NodeBudgets maps every budgeted tree node to its current budget.
	NodeBudgets map[string]float64 `json:"node_budgets"`
	// Shares maps each agent to the cap installed by the last rebalance.
	Shares map[string]float64 `json:"shares"`
	// Rebalances counts divisions installed across the fleet.
	Rebalances int `json:"rebalances"`
	// Brownouts counts runtime budget cuts (SetBudget reductions).
	Brownouts int `json:"brownouts"`
}

// budgetPushesLocked re-divides the budget tree over the agents' latest
// reported draw and returns the cap pushes for agents whose installed
// cap drifted from their share. It waits until every tree leaf has a
// discovered agent (the first round's reports land before it runs, so a
// healthy fleet rebalances from round one). The pushes execute in the
// round's shared push phase; a lost push is retried next round because
// the desired share is re-derived from the tree while the agent's
// reported CapW carries the truth back.
func (c *Controller) budgetPushesLocked(now time.Time) []pendingPush {
	b := c.budget
	if b == nil {
		return nil
	}
	if c.obs != nil {
		start := time.Now()
		defer func() { c.obs.budgetLat.ObserveDuration(time.Since(start)) }()
	}
	leaves := b.tree.Hosts()
	byName := make(map[string]*agentState, len(c.agents))
	for _, a := range c.agents {
		if a.everSeen {
			byName[a.name] = a
		}
	}
	states := make([]*agentState, len(leaves))
	for i, name := range leaves {
		a, ok := byName[name]
		if !ok {
			return nil // discovery incomplete; retry next round
		}
		states[i] = a
	}
	demand := make([]float64, len(leaves))
	caps := make([]float64, len(leaves))
	floors := make([]float64, len(leaves))
	for i, a := range states {
		// Dead agents keep their last reported draw: their simulation is
		// paused, so the stale reading is also the resume point.
		b.est.Observe(i, a.last.PowerW, a.last.Machine.IdlePowerW)
		demand[i] = b.est.Demand(i)
		caps[i] = a.last.ProvisionedPowerW
		floors[i] = a.last.Machine.IdlePowerW + 1
	}
	if err := b.tree.ValidateFloors(floors); err != nil {
		if !b.floorsWarned {
			c.logf("budget rebalance suspended: %v", err)
			b.floorsWarned = true
		}
		return nil
	}
	b.floorsWarned = false
	shares, err := b.tree.Alloc(demand, caps, floors)
	if err != nil {
		c.logf("budget division failed: %v", err)
		return nil
	}
	b.rebalances++
	var pushes []pendingPush
	for i, name := range leaves {
		if prev, ok := b.shares[name]; !ok || math.Abs(shares[i]-prev) > shareTolerance {
			c.tracer.BudgetShift(now, trace.BudgetChange{Node: name, FromW: b.shares[name], ToW: shares[i], Reason: "rebalance"})
		}
		b.shares[name] = shares[i]
		if c.obs != nil {
			// Headroom: installed share minus the agent's reported draw —
			// negative means the host is drawing over its budget share.
			c.obs.headroomGauge(name).Set(shares[i] - states[i].last.PowerW)
		}
		if a := states[i]; a.alive && math.Abs(a.last.CapW-shares[i]) > shareTolerance {
			pushes = append(pushes, pendingPush{kind: pushCap, url: a.url, name: name, capW: shares[i]})
		}
	}
	return pushes
}

// postCap pushes a power cap to an agent.
func (c *Controller) postCap(ctx context.Context, baseURL string, capW float64) error {
	ctx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
	defer cancel()
	body, err := json.Marshal(CapRequest{CapW: capW})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+RouteCap, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("POST %s: %s: %s", baseURL+RouteCap, resp.Status, bytes.TrimSpace(msg))
	}
	return nil
}

// SetBudget mutates one budget-tree node at runtime — the brownout
// campaign's cut-and-restore hook. A reduction counts as a brownout;
// either direction restarts the convergence grace window, and the next
// rebalance re-divides under the new bound.
func (c *Controller) SetBudget(node string, watts float64, reason string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	b := c.budget
	if b == nil {
		return errors.New("controlplane: controller has no budget tree")
	}
	n := b.tree.Lookup(node)
	if n == nil {
		return fmt.Errorf("controlplane: no budget node %q", node)
	}
	prev := n.BudgetW
	if err := b.tree.SetBudget(node, watts); err != nil {
		return err
	}
	if watts < prev {
		b.brownouts++
	}
	b.lastCutAtReb = b.rebalances
	c.tracer.BudgetCut(c.now(), trace.BudgetChange{Node: node, FromW: prev, ToW: watts, Reason: reason})
	c.logf("budget node %s: %.1fW -> %.1fW (%s)", node, prev, watts, reason)
	return nil
}

// BudgetRoot returns the budget tree's root node name, or "" when the
// controller runs unbudgeted.
func (c *Controller) BudgetRoot() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.budget == nil {
		return ""
	}
	return c.budget.tree.Root().Name
}

// NodeBudgets implements invariant.BudgetAuthority: the current budget
// of every budgeted tree node (nil without a budget tree).
func (c *Controller) NodeBudgets() map[string]float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.budget == nil {
		return nil
	}
	return c.budget.tree.NodeBudgets()
}

// NodeHosts implements invariant.BudgetAuthority: the agents beneath a
// tree node.
func (c *Controller) NodeHosts(node string) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.budget == nil {
		return nil
	}
	return c.budget.tree.HostsUnder(node)
}

// InGrace implements invariant.BudgetAuthority: true while fewer than
// tree.ConvergencePeriods rebalances have run since the latest budget
// mutation (or since startup, before the first division reaches the
// fleet).
func (c *Controller) InGrace() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.budget == nil {
		return false
	}
	return c.budget.rebalances < c.budget.lastCutAtReb+tree.ConvergencePeriods
}

// budgetStatusLocked snapshots the budget state for Status.
func (c *Controller) budgetStatusLocked() *BudgetStatus {
	b := c.budget
	if b == nil {
		return nil
	}
	shares := make(map[string]float64, len(b.shares))
	for k, v := range b.shares {
		shares[k] = v
	}
	return &BudgetStatus{
		NodeBudgets: b.tree.NodeBudgets(),
		Shares:      shares,
		Rebalances:  b.rebalances,
		Brownouts:   b.brownouts,
	}
}
