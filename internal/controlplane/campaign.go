package controlplane

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"pocolo/internal/invariant"
	"pocolo/internal/obs"
	"pocolo/internal/trace"
	"pocolo/internal/workload"
)

// A fault campaign replays a seeded, fully explicit fault schedule through
// a real controller and real agents — same HTTP codecs, same solver, same
// server managers — with every nondeterministic ingredient removed: agents
// advance simulated time via Advance instead of wall-clock pacing, the
// controller's Round is called directly instead of on its jittered timer,
// and requests travel over an in-process loopback transport whose failures
// come from the schedule, not the network. The invariant harness rides the
// agents' per-tick observe path throughout, so the campaign asserts not
// just that the control plane converges after crashes, partitions, delays,
// and load spikes, but that no physical invariant breaks on any tick on
// the way down or back up.

// FaultKind enumerates the injectable fault classes.
type FaultKind int

const (
	// FaultCrash kills the agent process: requests fail and its simulation
	// stops advancing until the fault expires (crash-and-restore; host
	// state survives, as with a paused container).
	FaultCrash FaultKind = iota
	// FaultDropHeartbeats partitions the agent from the controller:
	// requests fail but the agent keeps running.
	FaultDropHeartbeats
	// FaultDelayResponses delays every response from the agent by Delay.
	// Pick Delay decisively above or below the controller's Timeout; near
	// the boundary the outcome depends on scheduler timing.
	FaultDelayResponses
	// FaultLoadSpike forces the agent's LC offered-load fraction to Level.
	FaultLoadSpike
	// FaultBrownout cuts a budget-tree node's power budget by Level
	// (0.3 = −30%) when the fault begins and restores the original budget
	// when it expires. Node names the tree node (default: the root);
	// Agent is ignored. Requires CampaignConfig.BudgetTree. Brownouts are
	// never drawn by RandomFaults — they only run when scheduled
	// explicitly.
	FaultBrownout
	// FaultPartition cuts the agent→controller telemetry path only: the
	// agent keeps running and the controller can still push assignments
	// and caps to it, but its stats stop arriving (poll probes of
	// /v1/stats are refused; streamed heartbeats are lost in flight, so
	// the sender resyncs on heal). The asymmetry is what distinguishes it
	// from FaultDropHeartbeats, which severs both directions. Partitions
	// are never drawn by RandomFaults — they only run when scheduled
	// explicitly.
	FaultPartition
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case FaultCrash:
		return "crash"
	case FaultDropHeartbeats:
		return "drop-heartbeats"
	case FaultDelayResponses:
		return "delay-responses"
	case FaultLoadSpike:
		return "load-spike"
	case FaultBrownout:
		return "brownout"
	case FaultPartition:
		return "partition"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// FaultEvent schedules one fault against one agent.
type FaultEvent struct {
	// At is the campaign time the fault begins.
	At time.Duration
	// Agent indexes CampaignConfig.Agents.
	Agent int
	// Kind selects the fault class.
	Kind FaultKind
	// Duration is how long the fault lasts.
	Duration time.Duration
	// Delay is the response delay for FaultDelayResponses.
	Delay time.Duration
	// Level is the forced load fraction in [0, 1] for FaultLoadSpike, or
	// the budget cut fraction in (0, 1) for FaultBrownout.
	Level float64
	// Node is the budget-tree node FaultBrownout cuts (default: the
	// root).
	Node string
}

// RandomFaults draws a seeded fault schedule: n events spread over the
// campaign, uniform over agents and fault kinds. The schedule is a pure
// function of its arguments — replaying the same seed replays the faults.
func RandomFaults(seed int64, agents, n int, campaign, heartbeat time.Duration) []FaultEvent {
	rng := rand.New(rand.NewSource(seed))
	events := make([]FaultEvent, 0, n)
	for i := 0; i < n; i++ {
		at := time.Duration(rng.Int63n(int64(campaign * 3 / 4)))
		dur := heartbeat * time.Duration(2+rng.Intn(8))
		ev := FaultEvent{
			At:       at.Round(heartbeat),
			Agent:    rng.Intn(agents),
			Kind:     FaultKind(rng.Intn(4)),
			Duration: dur,
		}
		if ev.Kind == FaultDelayResponses {
			// Decisively beyond any sane probe timeout.
			ev.Delay = time.Second
		}
		if ev.Kind == FaultLoadSpike {
			ev.Level = 0.7 + rng.Float64()*0.3
		}
		events = append(events, ev)
	}
	sort.Slice(events, func(i, j int) bool { return events[i].At < events[j].At })
	return events
}

// CampaignConfig assembles a deterministic fault campaign.
type CampaignConfig struct {
	// Agents configures the fleet. Traces are wrapped for load-spike
	// injection; Invariants is overridden with the campaign's harness.
	Agents []AgentConfig
	// BE names the best-effort apps the controller keeps placed.
	BE []string
	// Faults is the schedule to replay (see RandomFaults).
	Faults []FaultEvent
	// BudgetTree, when non-empty, puts the controller in charge of a
	// hierarchical power budget (see tree.Parse) whose leaves name the
	// agents: each round it re-divides every node's budget over reported
	// demand and pushes per-agent caps. The tree-conservation invariant
	// is registered on the campaign harness. Required for FaultBrownout
	// events.
	BudgetTree string
	// Duration is the total campaign length in simulated time; after the
	// last fault expires the remainder is the recovery window.
	Duration time.Duration
	// Heartbeat is the simulated time per controller round (default 1 s):
	// each round advances every running agent by Heartbeat, then polls.
	Heartbeat time.Duration
	// Timeout is the real-time probe timeout (default 250 ms). Only
	// delayed responses ever consume it; healthy loopback probes return
	// immediately.
	Timeout time.Duration
	// DeadAfter, Solver, Seed configure the controller as in
	// ControllerConfig.
	DeadAfter int
	Solver    string
	Seed      int64
	// Transport selects the control-plane transport (TransportPoll or
	// TransportStream; default poll). Under TransportStream each round
	// the campaign has every running agent encode a delta heartbeat and
	// push it over the loopback fabric before the controller's round
	// runs; frames from crashed, dropped, partitioned, or
	// beyond-timeout-delayed agents are deterministically lost, and the
	// sender resyncs with a full frame when connectivity heals.
	Transport string
	// PodSize configures the controller's shard/pod size (default 64).
	PodSize int
	// MaxBackoff caps the controller's dead-agent probe backoff (default
	// 4×Heartbeat, keeping crashed agents' rejoin within a short
	// recovery window). Transport-parity suites set it to Heartbeat so
	// the polling controller probes dead agents every round, exactly as
	// the streaming controller notices their first healed frame.
	MaxBackoff time.Duration
	// OnRound, when set, observes the controller's status after every
	// round — the decision capture hook transport-parity suites diff.
	OnRound func(round int, st Status)
	// Harness receives every invariant violation (default: a fresh
	// harness with DefaultCheckers).
	Harness *invariant.Harness
	// Logf, when set, receives controller and campaign event logs.
	Logf func(format string, args ...any)
	// ControllerTrace, when non-nil, records the controller's decisions —
	// every migration and degradation the campaign provokes lands in it,
	// stamped on the campaign's synthetic clock. Per-agent tracing is
	// configured on the AgentConfigs (TraceEvents).
	ControllerTrace *trace.Tracer
	// Obs, when non-nil, wires the controller's observability plane: round
	// latency histograms, SLO burn gauges, per-pod solve and staleness
	// series (see ControllerConfig.Obs).
	Obs *obs.Registry
	// RoundDeadline, Recorder, and InjectRoundLatency configure the
	// flight-recorder path as in ControllerConfig: rounds measured past
	// the deadline trigger a bundle capture, and InjectRoundLatency lets a
	// deterministic campaign fabricate a slow round without sleeping.
	RoundDeadline      time.Duration
	Recorder           *obs.FlightRecorder
	InjectRoundLatency func(round int) time.Duration
}

// CampaignReport summarizes a finished campaign.
type CampaignReport struct {
	// Rounds is the number of controller rounds driven.
	Rounds int
	// Status is the controller's final state.
	Status Status
	// Violations holds every invariant violation the harness recorded.
	Violations []invariant.Violation
	// PlacementErrors holds per-round placement-consistency failures.
	PlacementErrors []error
	// Deaths and Rejoins are the controller's failure-handling counters.
	Deaths, Rejoins int
}

// Err returns nil when the campaign finished with no invariant violations,
// no placement inconsistencies, and a fully recovered cluster.
func (r *CampaignReport) Err() error {
	if len(r.Violations) > 0 {
		return fmt.Errorf("controlplane: campaign: %d invariant violation(s), first: %s", len(r.Violations), r.Violations[0])
	}
	if len(r.PlacementErrors) > 0 {
		return fmt.Errorf("controlplane: campaign: %d placement inconsistencies, first: %w", len(r.PlacementErrors), r.PlacementErrors[0])
	}
	if r.Status.Degraded {
		return errors.New("controlplane: campaign ended degraded")
	}
	for _, a := range r.Status.Agents {
		if !a.Alive {
			return fmt.Errorf("controlplane: campaign ended with agent %s dead", a.Name)
		}
	}
	return nil
}

// Campaign drives a controller and a fleet of agents through a fault
// schedule in lockstep simulated time.
type Campaign struct {
	cfg       CampaignConfig
	agents    []*Agent
	spikes    []*spikeTrace
	transport *loopbackTransport
	ctl       *Controller
	harness   *invariant.Harness
	// encoders is the per-agent streaming sender state (nil under poll).
	encoders []*HeartbeatEncoder

	// Per-fault brownout edge state: the original budget of the cut node
	// and whether the cut is currently applied.
	brownoutOrig []float64
	brownoutOn   []bool

	clockMu sync.Mutex
	clock   time.Time // synthetic controller clock; advances one heartbeat per round
}

// NewCampaign builds the fleet, the loopback fabric, and the controller.
func NewCampaign(cfg CampaignConfig) (*Campaign, error) {
	if len(cfg.Agents) == 0 {
		return nil, errors.New("controlplane: campaign needs agents")
	}
	if cfg.Heartbeat == 0 {
		cfg.Heartbeat = time.Second
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 250 * time.Millisecond
	}
	if cfg.Duration <= 0 {
		return nil, errors.New("controlplane: campaign duration must be positive")
	}
	for _, ev := range cfg.Faults {
		if ev.Agent < 0 || ev.Agent >= len(cfg.Agents) {
			return nil, fmt.Errorf("controlplane: fault targets agent %d of %d", ev.Agent, len(cfg.Agents))
		}
		if ev.Duration <= 0 {
			return nil, fmt.Errorf("controlplane: fault at %v has no duration", ev.At)
		}
		if ev.Kind == FaultBrownout {
			if cfg.BudgetTree == "" {
				return nil, errors.New("controlplane: brownout fault needs CampaignConfig.BudgetTree")
			}
			if ev.Level <= 0 || ev.Level >= 1 {
				return nil, fmt.Errorf("controlplane: brownout level %v outside (0, 1)", ev.Level)
			}
		}
	}
	if cfg.Harness == nil {
		cfg.Harness = invariant.NewHarness()
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	c := &Campaign{cfg: cfg, harness: cfg.Harness}
	c.transport = newLoopbackTransport()
	urls := make([]string, len(cfg.Agents))
	for i, ac := range cfg.Agents {
		if ac.Trace == nil {
			return nil, fmt.Errorf("controlplane: agent %d has no trace", i)
		}
		spike := &spikeTrace{inner: ac.Trace}
		ac.Trace = spike
		ac.Invariants = cfg.Harness
		agent, err := NewAgent(ac)
		if err != nil {
			return nil, err
		}
		host := fmt.Sprintf("campaign-agent-%d", i)
		c.transport.add(host, agent.Handler())
		c.agents = append(c.agents, agent)
		c.spikes = append(c.spikes, spike)
		urls[i] = "http://" + host
	}
	// The controller measures probe backoff and re-solve periods on the
	// campaign's synthetic clock, which advances exactly one heartbeat per
	// round: backoff windows become round counts, independent of how fast
	// the rounds execute in wall time. MaxBackoff defaults to four
	// heartbeats so crashed agents rejoin within a short recovery window.
	c.clock = time.Unix(1_700_000_000, 0)
	maxBackoff := cfg.MaxBackoff
	if maxBackoff == 0 {
		maxBackoff = 4 * cfg.Heartbeat
	}
	ctl, err := NewController(ControllerConfig{
		AgentURLs:          urls,
		BE:                 cfg.BE,
		Heartbeat:          cfg.Heartbeat,
		Timeout:            cfg.Timeout,
		DeadAfter:          cfg.DeadAfter,
		MaxBackoff:         maxBackoff,
		Solver:             cfg.Solver,
		Transport:          cfg.Transport,
		PodSize:            cfg.PodSize,
		BudgetTree:         cfg.BudgetTree,
		Seed:               cfg.Seed,
		Logf:               cfg.Logf,
		Trace:              cfg.ControllerTrace,
		Obs:                cfg.Obs,
		RoundDeadline:      cfg.RoundDeadline,
		Recorder:           cfg.Recorder,
		InjectRoundLatency: cfg.InjectRoundLatency,
		Client:             &http.Client{Transport: c.transport},
		Now: func() time.Time {
			c.clockMu.Lock()
			defer c.clockMu.Unlock()
			return c.clock
		},
	})
	if err != nil {
		return nil, err
	}
	c.ctl = ctl
	if ctl.cfg.Transport == TransportStream {
		// The controller joins the loopback fabric so streamed frames ride
		// the same HTTP codec path a live deployment uses.
		mux := http.NewServeMux()
		mux.HandleFunc(RouteHeartbeat, ctl.HeartbeatHandler)
		c.transport.add(campaignControllerHost, mux)
		c.encoders = make([]*HeartbeatEncoder, len(c.agents))
		for i, a := range c.agents {
			c.encoders[i] = NewHeartbeatEncoder(a.Name(), urls[i])
		}
	}
	if cfg.BudgetTree != "" {
		// The budget-tree conservation invariant rides every agent tick;
		// the controller is the budget authority (caps it installed, grace
		// it grants after mutations).
		if err := cfg.Harness.Register(invariant.NewTreeConservation(ctl)); err != nil {
			return nil, err
		}
	}
	c.brownoutOrig = make([]float64, len(cfg.Faults))
	c.brownoutOn = make([]bool, len(cfg.Faults))
	return c, nil
}

// Agents returns the campaign's fleet (for test inspection).
func (c *Campaign) Agents() []*Agent { return c.agents }

// Controller returns the campaign's controller (for test inspection).
func (c *Campaign) Controller() *Controller { return c.ctl }

// Run replays the schedule: each step applies the faults active at the
// current campaign time, advances every running agent by one heartbeat of
// simulated time, then drives one controller round and checks placement
// consistency. It returns the report; call report.Err() for the verdict.
func (c *Campaign) Run(ctx context.Context) (*CampaignReport, error) {
	report := &CampaignReport{}
	steps := int(c.cfg.Duration / c.cfg.Heartbeat)
	for step := 0; step < steps; step++ {
		if err := ctx.Err(); err != nil {
			return report, err
		}
		now := time.Duration(step) * c.cfg.Heartbeat
		c.clockMu.Lock()
		c.clock = c.clock.Add(c.cfg.Heartbeat)
		c.clockMu.Unlock()

		if err := c.applyBrownouts(now); err != nil {
			return report, err
		}

		crashed := make([]bool, len(c.agents))
		down := make([]bool, len(c.agents))
		partitioned := make([]bool, len(c.agents))
		delay := make([]time.Duration, len(c.agents))
		level := make([]float64, len(c.agents))
		spiked := make([]bool, len(c.agents))
		for _, ev := range c.cfg.Faults {
			if now < ev.At || now >= ev.At+ev.Duration {
				continue
			}
			switch ev.Kind {
			case FaultCrash:
				crashed[ev.Agent] = true
				down[ev.Agent] = true
			case FaultDropHeartbeats:
				down[ev.Agent] = true
			case FaultPartition:
				partitioned[ev.Agent] = true
			case FaultDelayResponses:
				if ev.Delay > delay[ev.Agent] {
					delay[ev.Agent] = ev.Delay
				}
			case FaultLoadSpike:
				spiked[ev.Agent] = true
				level[ev.Agent] = ev.Level
			}
		}
		for i := range c.agents {
			c.transport.set(fmt.Sprintf("campaign-agent-%d", i), down[i], delay[i])
			c.transport.setPartition(fmt.Sprintf("campaign-agent-%d", i), partitioned[i])
			c.spikes[i].set(spiked[i], level[i])
		}

		for i, a := range c.agents {
			if crashed[i] {
				continue // a dead process does not advance its simulation
			}
			if err := a.Advance(c.cfg.Heartbeat); err != nil {
				return report, fmt.Errorf("controlplane: advancing agent %d: %w", i, err)
			}
		}

		if c.encoders != nil {
			if err := c.emitHeartbeats(ctx, crashed, down, partitioned, delay); err != nil {
				return report, err
			}
		}

		c.ctl.Round(ctx)
		report.Rounds++
		if c.cfg.OnRound != nil {
			c.cfg.OnRound(report.Rounds, c.ctl.Status())
		}
		if err := c.checkPlacement(); err != nil {
			report.PlacementErrors = append(report.PlacementErrors, fmt.Errorf("round %d (t=%v): %w", report.Rounds, now, err))
		}
	}
	report.Status = c.ctl.Status()
	report.Violations = c.harness.Violations()
	report.Deaths = report.Status.Deaths
	report.Rejoins = report.Status.Rejoins
	return report, nil
}

// campaignControllerHost is the controller's address on the loopback
// fabric (the streaming transport's heartbeat sink).
const campaignControllerHost = "campaign-controller"

// emitHeartbeats runs the streaming transport's send step for one round:
// every running agent encodes one heartbeat against its encoder state
// and pushes it to the controller over the loopback fabric. Loss is
// deterministic — a frame from a dropped, partitioned, or
// beyond-timeout-delayed agent is encoded (the agent process doesn't
// know it is cut off) and then discarded, and the sender resyncs so its
// next delivered frame is a full snapshot. Crashed agents encode
// nothing: the process is dead, and its encoder state survives to
// resume delta encoding on restart, exactly like a paused container.
func (c *Campaign) emitHeartbeats(ctx context.Context, crashed, down, partitioned []bool, delay []time.Duration) error {
	client := &http.Client{Transport: c.transport}
	for i, a := range c.agents {
		if crashed[i] {
			continue
		}
		stats, epoch := a.StatsEpoch()
		frame, err := c.encoders[i].Encode(stats, epoch)
		if err != nil {
			return fmt.Errorf("controlplane: encoding heartbeat for agent %d: %w", i, err)
		}
		if down[i] || partitioned[i] || delay[i] >= c.cfg.Timeout {
			// Lost in flight: no ack ever comes back, so the sender cannot
			// know whether the controller applied it — resync.
			c.encoders[i].Resync()
			continue
		}
		ack, err := postHeartbeat(ctx, client, "http://"+campaignControllerHost, frame)
		if err != nil {
			c.encoders[i].Resync()
			continue
		}
		c.encoders[i].Ack(ack)
	}
	return nil
}

// postHeartbeat pushes one binary frame and decodes the ack. A non-2xx
// reply still carries an ack body (the reject case); transport errors
// return err with a zero ack.
func postHeartbeat(ctx context.Context, client *http.Client, baseURL string, frame []byte) (HeartbeatAck, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+RouteHeartbeat, bytes.NewReader(frame))
	if err != nil {
		return HeartbeatAck{}, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := client.Do(req)
	if err != nil {
		return HeartbeatAck{}, err
	}
	defer resp.Body.Close()
	var ack HeartbeatAck
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		return HeartbeatAck{}, fmt.Errorf("decoding heartbeat ack: %w", err)
	}
	return ack, nil
}

// applyBrownouts edge-triggers scheduled budget cuts: when a
// FaultBrownout begins, the target node's budget drops by Level; when it
// expires, the original budget comes back. Both edges go through the
// controller's SetBudget, so each lands in the trace (reasons "brownout"
// and "restore") and restarts the convergence grace window.
func (c *Campaign) applyBrownouts(now time.Duration) error {
	for i, ev := range c.cfg.Faults {
		if ev.Kind != FaultBrownout {
			continue
		}
		node := ev.Node
		if node == "" {
			node = c.ctl.BudgetRoot()
		}
		switch {
		case !c.brownoutOn[i] && c.brownoutOrig[i] == 0 && now >= ev.At && now < ev.At+ev.Duration:
			orig := c.ctl.NodeBudgets()[node]
			if orig <= 0 {
				return fmt.Errorf("controlplane: brownout node %q has no budget", node)
			}
			if err := c.ctl.SetBudget(node, orig*(1-ev.Level), "brownout"); err != nil {
				return fmt.Errorf("controlplane: applying brownout at %v: %w", now, err)
			}
			c.brownoutOrig[i] = orig
			c.brownoutOn[i] = true
		case c.brownoutOn[i] && now >= ev.At+ev.Duration:
			if err := c.ctl.SetBudget(node, c.brownoutOrig[i], "restore"); err != nil {
				return fmt.Errorf("controlplane: restoring brownout at %v: %w", now, err)
			}
			c.brownoutOn[i] = false
		}
	}
	return nil
}

// checkPlacement validates the controller's placement against its own
// liveness view. Outside degraded mode every placed best-effort app must
// sit on a distinct agent the controller believes alive; in degraded mode
// the held last-known-good placement may legitimately reference dead
// agents, so only the matching property (distinct, known agents) applies.
func (c *Campaign) checkPlacement() error {
	st := c.ctl.Status()
	known := make(map[string]bool, len(st.Agents))
	alive := make(map[string]bool, len(st.Agents))
	for _, a := range st.Agents {
		known[a.Name] = true
		if a.Alive {
			alive[a.Name] = true
		}
	}
	if st.Degraded {
		return invariant.CheckPlacement(st.Placement, known)
	}
	return invariant.CheckPlacement(st.Placement, alive)
}

// spikeTrace wraps a trace with a campaign-controlled override level. Only
// the campaign goroutine mutates it, and the engine reads it from Advance
// on the same goroutine, but the accessors are locked anyway so a pacing
// loop (Start) mixed into a campaign stays race-free.
type spikeTrace struct {
	mu     sync.Mutex
	inner  workload.Trace
	active bool
	level  float64
}

// String implements workload.Trace.
func (t *spikeTrace) String() string { return t.inner.String() + "+spike" }

// Duration implements workload.Trace.
func (t *spikeTrace) Duration() time.Duration { return t.inner.Duration() }

// LoadFraction implements workload.Trace.
func (t *spikeTrace) LoadFraction(elapsed time.Duration) float64 {
	t.mu.Lock()
	active, level := t.active, t.level
	t.mu.Unlock()
	if active {
		return level
	}
	return t.inner.LoadFraction(elapsed)
}

func (t *spikeTrace) set(active bool, level float64) {
	t.mu.Lock()
	t.active = active
	t.level = level
	t.mu.Unlock()
}

// loopbackTransport routes HTTP requests straight to registered handlers
// in-process, with per-host fault switches. It implements
// http.RoundTripper.
type loopbackTransport struct {
	mu       sync.Mutex
	handlers map[string]http.Handler
	down     map[string]bool
	partit   map[string]bool
	delay    map[string]time.Duration
}

func newLoopbackTransport() *loopbackTransport {
	return &loopbackTransport{
		handlers: make(map[string]http.Handler),
		down:     make(map[string]bool),
		partit:   make(map[string]bool),
		delay:    make(map[string]time.Duration),
	}
}

func (t *loopbackTransport) add(host string, h http.Handler) {
	t.mu.Lock()
	t.handlers[host] = h
	t.mu.Unlock()
}

func (t *loopbackTransport) set(host string, down bool, delay time.Duration) {
	t.mu.Lock()
	t.down[host] = down
	t.delay[host] = delay
	t.mu.Unlock()
}

// setPartition cuts only the host's telemetry path: GET /v1/stats and
// /v1/trace are refused while pushes (/v1/assign, /v1/cap) still flow —
// the asymmetric half of FaultPartition that the polling transport sees.
func (t *loopbackTransport) setPartition(host string, partitioned bool) {
	t.mu.Lock()
	t.partit[host] = partitioned
	t.mu.Unlock()
}

// RoundTrip implements http.RoundTripper.
func (t *loopbackTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	host := req.URL.Host
	t.mu.Lock()
	h := t.handlers[host]
	down := t.down[host]
	partitioned := t.partit[host]
	delay := t.delay[host]
	t.mu.Unlock()
	if h == nil {
		return nil, fmt.Errorf("loopback: no route to %s", host)
	}
	if down {
		return nil, fmt.Errorf("loopback: connect %s: connection refused", host)
	}
	if partitioned && (req.URL.Path == RouteStats || req.URL.Path == RouteTrace) {
		return nil, fmt.Errorf("loopback: connect %s: no route to host (partitioned)", host)
	}
	if delay > 0 {
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(delay):
		}
	}
	rec := &responseRecorder{header: make(http.Header), status: http.StatusOK}
	h.ServeHTTP(rec, req)
	return &http.Response{
		StatusCode:    rec.status,
		Status:        http.StatusText(rec.status),
		Header:        rec.header,
		Body:          io.NopCloser(bytes.NewReader(rec.body.Bytes())),
		ContentLength: int64(rec.body.Len()),
		Request:       req,
	}, nil
}

// responseRecorder is a minimal in-memory http.ResponseWriter.
type responseRecorder struct {
	header http.Header
	body   bytes.Buffer
	status int
}

func (r *responseRecorder) Header() http.Header         { return r.header }
func (r *responseRecorder) Write(p []byte) (int, error) { return r.body.Write(p) }
func (r *responseRecorder) WriteHeader(status int)      { r.status = status }
