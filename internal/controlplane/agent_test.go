package controlplane

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"pocolo/internal/machine"
	"pocolo/internal/workload"
)

func TestNewAgentValidation(t *testing.T) {
	models := fixtureModels(t)
	trace, err := workload.NewConstantTrace(0.5)
	if err != nil {
		t.Fatal(err)
	}
	base := AgentConfig{
		Name:    "a1",
		Machine: machine.XeonE52650(),
		LC:      spec(t, "xapian"),
		LCModel: models["xapian"],
		Trace:   trace,
	}
	cases := []struct {
		name   string
		mutate func(*AgentConfig)
	}{
		{"missing name", func(c *AgentConfig) { c.Name = "" }},
		{"missing lc", func(c *AgentConfig) { c.LC = nil }},
		{"missing model", func(c *AgentConfig) { c.LCModel = nil }},
		{"missing trace", func(c *AgentConfig) { c.Trace = nil }},
		{"negative tick", func(c *AgentConfig) { c.SimTick = -time.Second }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			if _, err := NewAgent(cfg); err == nil {
				t.Error("expected a config error")
			}
		})
	}
	if _, err := NewAgent(base); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestAgentAssignEvictOverHTTP(t *testing.T) {
	a := newTestAgent(t, "a1", "xapian", "graph", "lstm")
	srv := serveAgent(t, a)
	advance(t, a, 5*time.Second)

	// Nothing assigned yet: BE throughput must be zero.
	var stats StatsResponse
	getJSONT(t, srv.URL+RouteStats, &stats)
	if stats.AssignedBE != "" || stats.BEThroughput != 0 {
		t.Fatalf("fresh agent should be parked, got %+v", stats)
	}
	if stats.LC != "xapian" || stats.LCModel == nil || len(stats.BECandidates) != 2 {
		t.Errorf("stats incomplete: %+v", stats)
	}

	// Assign graph, advance, and expect throughput.
	postAssignT(t, srv.URL, "graph", http.StatusOK)
	advance(t, a, 10*time.Second)
	getJSONT(t, srv.URL+RouteStats, &stats)
	if stats.AssignedBE != "graph" {
		t.Fatalf("AssignedBE = %q, want graph", stats.AssignedBE)
	}
	if stats.BEThroughput <= 0 {
		t.Errorf("assigned BE throughput = %v, want > 0", stats.BEThroughput)
	}
	if stats.BEOpsBy["graph"] <= 0 {
		t.Errorf("graph ops = %v, want > 0", stats.BEOpsBy["graph"])
	}

	// Reassign to lstm: graph parks, lstm runs.
	postAssignT(t, srv.URL, "lstm", http.StatusOK)
	before := stats.BEOpsBy["graph"]
	advance(t, a, 10*time.Second)
	getJSONT(t, srv.URL+RouteStats, &stats)
	if stats.AssignedBE != "lstm" {
		t.Fatalf("AssignedBE = %q, want lstm", stats.AssignedBE)
	}
	if stats.BEOpsBy["lstm"] <= 0 {
		t.Errorf("lstm accrued no work after reassignment")
	}
	if got := stats.BEOpsBy["graph"]; got > before*1.01+1 {
		t.Errorf("graph kept accruing after eviction: %v -> %v", before, got)
	}

	// Evict entirely.
	postAssignT(t, srv.URL, "", http.StatusOK)
	advance(t, a, 2*time.Second)
	getJSONT(t, srv.URL+RouteStats, &stats)
	if stats.AssignedBE != "" || stats.BEThroughput != 0 {
		t.Errorf("evicted agent should be parked, got %+v", stats)
	}

	// Unknown candidate is a 400 and leaves the state alone.
	postAssignT(t, srv.URL, "no-such-app", http.StatusBadRequest)
	if got := a.Assigned(); got != "" {
		t.Errorf("failed assign changed state to %q", got)
	}
}

func TestAgentHealthzAndMethodChecks(t *testing.T) {
	a := newTestAgent(t, "a1", "img-dnn", "graph")
	srv := serveAgent(t, a)
	advance(t, a, time.Second)

	var h HealthResponse
	getJSONT(t, srv.URL+RouteHealthz, &h)
	if !h.OK || h.Agent != "a1" || h.SimSec < 1 {
		t.Errorf("healthz = %+v", h)
	}

	// Wrong methods are rejected.
	resp, err := http.Get(srv.URL + RouteAssign)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET assign = %d, want 405", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+RouteStats, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST stats = %d, want 405", resp.StatusCode)
	}
}

func TestAgentMetricsExposition(t *testing.T) {
	a := newTestAgent(t, "a1", "xapian", "graph")
	srv := serveAgent(t, a)
	if err := a.Assign("graph"); err != nil {
		t.Fatal(err)
	}
	advance(t, a, 10*time.Second)

	resp, err := http.Get(srv.URL + RouteMetrics)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE pocolo_up gauge",
		`pocolo_up{agent="a1",lc="xapian"} 1`,
		"# TYPE pocolo_lc_ops_total counter",
		`pocolo_be_assigned{agent="a1",lc="xapian",be="graph"} 1`,
		"pocolo_power_watts",
		"pocolo_sim_seconds_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}
}

func TestAgentPacingLoopAdvancesSimTime(t *testing.T) {
	a := newTestAgent(t, "a1", "tpcc")
	a.Start()
	defer a.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if a.Stats().SimSec >= 1 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("pacing loop advanced only %v simulated seconds", a.Stats().SimSec)
}

func TestAgentStopIdempotentWithoutStart(t *testing.T) {
	a := newTestAgent(t, "a1", "sphinx")
	a.Stop()
	a.Stop()
}

func TestBoundedTelemetryOnLongRun(t *testing.T) {
	a := newTestAgent(t, "a1", "xapian", "graph")
	// 4096-point default cap at 10 ticks/s: one simulated hour would hold
	// 36k points unbounded.
	advance(t, a, time.Hour)
	if got := a.host.PowerSeries().Len(); got != 4096 {
		t.Errorf("power series holds %d points, want capped at 4096", got)
	}
}

// getJSONT fetches a JSON body or fails the test.
func getJSONT(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// postAssignT posts an assignment and checks the status code.
func postAssignT(t *testing.T, baseURL, be string, wantStatus int) {
	t.Helper()
	body, err := json.Marshal(AssignRequest{BE: be})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+RouteAssign, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST assign %q = %d (%s), want %d", be, resp.StatusCode, msg, wantStatus)
	}
}
