package controlplane

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pocolo/internal/machine"
	"pocolo/internal/trace"
)

// postCapHTTP posts a cap to an agent server and returns the HTTP status.
func postCapHTTP(t *testing.T, url string, capW float64) int {
	t.Helper()
	resp, err := http.Post(url+RouteCap, "application/json",
		strings.NewReader(fmt.Sprintf(`{"cap_w": %g}`, capW)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestAgentCapOverHTTP drives the /v1/cap endpoint: install, reject
// below the idle floor, clear, and refuse unphysical values.
func TestAgentCapOverHTTP(t *testing.T) {
	a := newTestAgent(t, "agent-img-dnn", "img-dnn", "graph")
	srv := serveAgent(t, a)
	idle := machine.XeonE52650().IdlePowerW
	prov := spec(t, "img-dnn").ProvisionedPowerW

	if got := a.CapW(); got != prov {
		t.Fatalf("default CapW = %v, want provisioned %v", got, prov)
	}
	capW := idle + 30
	if code := postCapHTTP(t, srv.URL, capW); code != http.StatusOK {
		t.Fatalf("cap install returned %d", code)
	}
	if got := a.CapW(); got != capW {
		t.Fatalf("CapW = %v after install, want %v", got, capW)
	}
	if got := a.Stats().CapW; got != capW {
		t.Fatalf("stats CapW = %v, want %v", got, capW)
	}
	// Below the idle floor: rejected, cap unchanged.
	if code := postCapHTTP(t, srv.URL, idle-5); code != http.StatusBadRequest {
		t.Fatalf("sub-idle cap returned %d, want 400", code)
	}
	if got := a.CapW(); got != capW {
		t.Fatalf("CapW = %v after rejected install, want %v", got, capW)
	}
	// Zero clears the override.
	if code := postCapHTTP(t, srv.URL, 0); code != http.StatusOK {
		t.Fatalf("cap clear returned %d", code)
	}
	if got := a.CapW(); got != prov {
		t.Fatalf("CapW = %v after clear, want provisioned %v", got, prov)
	}
	// Unphysical caps never reach the manager.
	if err := a.SetCap(math.NaN()); err == nil {
		t.Fatal("NaN cap accepted")
	}
	if err := a.SetCap(-1); err == nil {
		t.Fatal("negative cap accepted")
	}
	resp, err := http.Get(srv.URL + RouteCap)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET cap returned %d, want 405", resp.StatusCode)
	}
}

// TestControllerBudgetRebalance runs a budgeted controller over live
// agents: every round divides the tree over reported demand and the
// installed caps must match the controller's shares and respect the
// budget. The budget metric families join the exposition and lint.
func TestControllerBudgetRebalance(t *testing.T) {
	if _, err := NewController(ControllerConfig{
		AgentURLs:  []string{"http://a"},
		BudgetTree: "dc:{",
	}); err == nil {
		t.Fatal("unparseable budget tree accepted")
	}

	lcs := []string{"img-dnn", "sphinx"}
	total := 0.0
	for _, lc := range lcs {
		total += spec(t, lc).ProvisionedPowerW
	}
	budgetW := 0.8 * total
	treeSpec := fmt.Sprintf("dc:%g{agent-img-dnn,agent-sphinx}", budgetW)
	tc := newTestCluster(t, lcs, nil, func(cfg *ControllerConfig) { cfg.BudgetTree = treeSpec })
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		tc.advanceAll(t, time.Second)
		tc.ctl.Round(ctx)
	}
	st := tc.ctl.Status()
	if st.Budget == nil {
		t.Fatal("no budget status on a budgeted controller")
	}
	if st.Budget.Rebalances < 4 {
		t.Fatalf("Rebalances = %d, want >= 4", st.Budget.Rebalances)
	}
	if got := st.Budget.NodeBudgets["dc"]; got != budgetW {
		t.Fatalf("dc budget = %v, want %v", got, budgetW)
	}
	sum := 0.0
	for i, a := range tc.agents {
		name := "agent-" + lcs[i]
		share, ok := st.Budget.Shares[name]
		if !ok {
			t.Fatalf("no share for %s", name)
		}
		if got := a.CapW(); math.Abs(got-share) > 1e-9 {
			t.Fatalf("%s enforces %v W, controller wants %v W", name, got, share)
		}
		if share > spec(t, lcs[i]).ProvisionedPowerW+1e-9 {
			t.Fatalf("%s share %v W above provisioned capacity", name, share)
		}
		sum += share
	}
	if sum > budgetW+1e-6 {
		t.Fatalf("shares sum %v W over the %v W budget", sum, budgetW)
	}

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	tc.ctl.MetricsHandler(rec, req)
	body := rec.Body.String()
	if err := lintExposition(body); err != nil {
		t.Fatalf("budgeted controller exposition: %v\n%s", err, body)
	}
	for _, want := range []string{
		`pocolo_budget_node_watts{node="dc"}`,
		"pocolo_budget_rebalances_total",
		"pocolo_budget_brownouts_total",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %s:\n%s", want, body)
		}
	}
}

// TestCampaignBrownoutEndToEnd is the acceptance scenario: a −30% DC
// budget cut mid-campaign, applied through the controller against live
// agents, must degrade gracefully — zero invariant violations (the
// tree-conservation checker rides every agent tick), a cut-and-restore
// pair in the controller trace, and a byte-identical timeline on replay.
func TestCampaignBrownoutEndToEnd(t *testing.T) {
	lcs := []string{"img-dnn", "sphinx", "tpcc", "xapian"}
	bes := []string{"graph", "lstm"}
	prov := func(lc string) float64 { return spec(t, lc).ProvisionedPowerW }
	rack1 := 0.9 * (prov("img-dnn") + prov("sphinx"))
	rack2 := 0.9 * (prov("tpcc") + prov("xapian"))
	dc := 0.85 * (prov("img-dnn") + prov("sphinx") + prov("tpcc") + prov("xapian"))
	treeSpec := fmt.Sprintf(
		"dc:%g{rack1:%g{agent-img-dnn,agent-sphinx},rack2:%g{agent-tpcc,agent-xapian}}",
		dc, rack1, rack2)

	run := func() (*CampaignReport, Status, []trace.Event) {
		camp, err := NewCampaign(CampaignConfig{
			Agents:     campaignAgentConfigs(t, lcs, bes),
			BE:         bes,
			BudgetTree: treeSpec,
			Faults: []FaultEvent{{
				At:       8 * time.Second,
				Kind:     FaultBrownout,
				Level:    0.3,
				Duration: 6 * time.Second,
			}},
			Duration:        20 * time.Second,
			Seed:            5,
			ControllerTrace: trace.New("controller", 4096),
		})
		if err != nil {
			t.Fatal(err)
		}
		report, err := camp.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return report, camp.Controller().Status(), camp.Controller().Tracer().Events()
	}

	report, st, events := run()
	if err := report.Err(); err != nil {
		t.Fatalf("brownout campaign not graceful: %v", err)
	}
	if st.Budget == nil {
		t.Fatal("no budget status")
	}
	if st.Budget.Brownouts != 1 {
		t.Fatalf("Brownouts = %d, want 1", st.Budget.Brownouts)
	}
	if st.Budget.Rebalances < 15 {
		t.Fatalf("Rebalances = %d, want one per round", st.Budget.Rebalances)
	}
	// The fault expired: the DC budget is back at its spec value.
	if got := st.Budget.NodeBudgets["dc"]; math.Abs(got-dc) > 1e-9 {
		t.Fatalf("dc budget = %v after restore, want %v", got, dc)
	}
	var cuts []trace.Event
	shifts := 0
	for _, ev := range events {
		switch ev.Kind {
		case trace.KindBudgetCut:
			cuts = append(cuts, ev)
		case trace.KindBudgetShift:
			shifts++
		}
	}
	if len(cuts) != 2 {
		t.Fatalf("BudgetCut events = %d, want cut+restore", len(cuts))
	}
	if cuts[0].Budget.Reason != "brownout" || cuts[0].Budget.Node != "dc" ||
		math.Abs(cuts[0].Budget.ToW-0.7*dc) > 1e-9 {
		t.Fatalf("cut event = %+v, want dc to %v W for brownout", cuts[0].Budget, 0.7*dc)
	}
	if cuts[1].Budget.Reason != "restore" || math.Abs(cuts[1].Budget.ToW-dc) > 1e-9 {
		t.Fatalf("restore event = %+v, want dc back to %v W", cuts[1].Budget, dc)
	}
	if shifts < len(lcs) {
		t.Fatalf("BudgetShift events = %d, want at least one per agent", shifts)
	}

	// Byte-identical replay: a second identical campaign produces the
	// same controller timeline, brownout and all.
	_, _, events2 := run()
	var b1, b2 bytes.Buffer
	trace.SortEvents(events)
	trace.SortEvents(events2)
	if err := trace.WriteJSONL(&b1, events, false); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteJSONL(&b2, events2, false); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("controller brownout timeline not byte-identical across identical campaigns")
	}
}

// TestCampaignBrownoutValidation rejects malformed brownout schedules.
func TestCampaignBrownoutValidation(t *testing.T) {
	cfgs := campaignAgentConfigs(t, []string{"img-dnn"}, nil)
	base := CampaignConfig{Agents: cfgs, Duration: 5 * time.Second}

	bad := base
	bad.Faults = []FaultEvent{{Kind: FaultBrownout, Level: 0.3, Duration: time.Second}}
	if _, err := NewCampaign(bad); err == nil {
		t.Error("brownout without BudgetTree accepted")
	}

	bad = base
	bad.BudgetTree = "dc:400{agent-img-dnn}"
	bad.Faults = []FaultEvent{{Kind: FaultBrownout, Level: 1.5, Duration: time.Second}}
	if _, err := NewCampaign(bad); err == nil {
		t.Error("brownout level 1.5 accepted")
	}

	bad = base
	bad.BudgetTree = "dc:{"
	if _, err := NewCampaign(bad); err == nil {
		t.Error("unparseable budget tree accepted")
	}
}
