package controlplane

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestE2ELoopbackKillOneAgent is the end-to-end control-plane scenario
// from the paper's cluster level, run entirely on loopback: three agents
// simulate their servers in real time (paced 100x faster than wall
// clock), the controller places two best-effort apps, one hosting agent
// is killed mid-run, and the controller must detect the death within K
// heartbeats, migrate the orphaned app to a survivor, and the survivors'
// /metrics must reflect the new placement with recovering throughput.
func TestE2ELoopbackKillOneAgent(t *testing.T) {
	lcs := []string{"img-dnn", "sphinx", "xapian"}
	bes := []string{"graph", "lstm"}

	agents := make([]*Agent, len(lcs))
	urls := make([]string, len(lcs))
	servers := make([]*closableServer, len(lcs))
	for i, lc := range lcs {
		agents[i] = newTestAgent(t, "agent-"+lc, lc, bes...)
		agents[i].Start()
		srv := newClosableServer(t, agents[i])
		servers[i] = srv
		urls[i] = srv.URL()
	}
	defer func() {
		for _, a := range agents {
			a.Stop()
		}
	}()

	const deadAfter = 2
	ctl, err := NewController(ControllerConfig{
		AgentURLs: urls,
		BE:        bes,
		Heartbeat: 25 * time.Millisecond,
		Timeout:   2 * time.Second,
		DeadAfter: deadAfter,
		Retries:   0,
		Seed:      5,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Bootstrap: one round discovers everyone and solves the placement.
	ctl.Round(ctx)
	st := ctl.Status()
	if len(st.Placement) != len(bes) {
		t.Fatalf("bootstrap placement = %v", st.Placement)
	}

	// Let the cluster run; both placed apps must make real progress.
	waitFor(t, 5*time.Second, func() error {
		for _, be := range bes {
			if opsOf(agents, be) <= 0 {
				return fmt.Errorf("%s has done no work yet", be)
			}
		}
		return nil
	})

	// Kill one hosting agent outright: stop its simulation, close its
	// listener and sever open keep-alive connections.
	victimIdx := -1
	for i, a := range agents {
		if a.Assigned() != "" {
			victimIdx = i
			break
		}
	}
	if victimIdx < 0 {
		t.Fatal("no agent hosts a best-effort app")
	}
	victim := agents[victimIdx]
	victimBE := victim.Assigned()
	victim.Stop()
	servers[victimIdx].Kill()
	victimOps := victim.Stats().BEOpsBy[victimBE] // frozen once the pacing loop halts
	t.Logf("killed %s hosting %q", victim.Name(), victimBE)

	// Within K heartbeat rounds the controller must declare the agent dead
	// and migrate its app to a survivor (the issue allows up to 3).
	for i := 0; i < deadAfter; i++ {
		ctl.Round(ctx)
	}
	st = ctl.Status()
	if st.Deaths != 1 {
		t.Fatalf("after %d rounds: Deaths = %d, want 1", deadAfter, st.Deaths)
	}
	newHost := st.Placement[victimBE]
	if newHost == "" || newHost == victim.Name() {
		t.Fatalf("%s not migrated: placement=%v", victimBE, st.Placement)
	}

	// Throughput recovers: the migrated app accrues work on its new host
	// while the dead host's counter stays frozen.
	waitFor(t, 5*time.Second, func() error {
		for i, a := range agents {
			if i == victimIdx {
				continue
			}
			if a.Name() == newHost && a.Stats().BEOpsBy[victimBE] > 0 {
				return nil
			}
		}
		return fmt.Errorf("%s has not produced work on %s yet", victimBE, newHost)
	})
	if got := victim.Stats().BEOpsBy[victimBE]; got != victimOps {
		t.Errorf("dead agent kept accruing %s ops: %v -> %v", victimBE, victimOps, got)
	}

	// Survivors' /metrics reflect the post-failure placement: each of the
	// two live servers exposes exactly one of the two apps as assigned.
	seen := map[string]bool{}
	for i, a := range agents {
		if i == victimIdx {
			continue
		}
		body := scrape(t, servers[i].URL()+RouteMetrics)
		assigned := a.Assigned()
		if assigned == "" {
			t.Errorf("survivor %s hosts nothing after migration", a.Name())
			continue
		}
		want := fmt.Sprintf("pocolo_be_assigned{agent=%q,lc=%q,be=%q} 1", a.Name(), a.LCName(), assigned)
		if !strings.Contains(body, want) {
			t.Errorf("survivor %s metrics missing %q\n%s", a.Name(), want, body)
		}
		seen[assigned] = true
	}
	for _, be := range bes {
		if !seen[be] {
			t.Errorf("%s not exposed as assigned by any survivor", be)
		}
	}
}

// closableServer wraps httptest.Server so a test can kill an agent's
// listener mid-run, severing even open keep-alive connections, the way a
// crashed server process would.
type closableServer struct {
	srv    *httptest.Server
	killed bool
}

func newClosableServer(t *testing.T, a *Agent) *closableServer {
	t.Helper()
	cs := &closableServer{srv: httptest.NewServer(a.Handler())}
	t.Cleanup(cs.Kill)
	return cs
}

func (cs *closableServer) URL() string { return cs.srv.URL }

func (cs *closableServer) Kill() {
	if cs.killed {
		return
	}
	cs.killed = true
	cs.srv.CloseClientConnections()
	cs.srv.Close()
}

// opsOf sums an app's completed operations across the cluster.
func opsOf(agents []*Agent, be string) float64 {
	total := 0.0
	for _, a := range agents {
		total += a.Stats().BEOpsBy[be]
	}
	return total
}

// waitFor polls cond until it returns nil or the deadline expires.
func waitFor(t *testing.T, timeout time.Duration, cond func() error) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var err error
	for time.Now().Before(deadline) {
		if err = cond(); err == nil {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("condition not met within %v: %v", timeout, err)
}

// scrape fetches a metrics page as text.
func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}
