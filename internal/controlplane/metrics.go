package controlplane

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// This file renders agent and controller state in Prometheus text
// exposition format (version 0.0.4). The dependency-free writer covers
// the subset the control plane needs: HELP/TYPE headers, gauges,
// counters, and escaped label values.

// promEscape escapes a label value per the exposition format.
func promEscape(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// promWriter accumulates exposition lines.
type promWriter struct {
	w   io.Writer
	err error
}

func (p *promWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// metric emits the HELP/TYPE header for a metric.
func (p *promWriter) metric(name, typ, help string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// sample emits one sample line. Labels are "k=v" pairs already formatted;
// pass nil for an unlabelled sample.
func (p *promWriter) sample(name string, labels []string, value float64) {
	if len(labels) == 0 {
		p.printf("%s %g\n", name, value)
		return
	}
	p.printf("%s{%s} %g\n", name, strings.Join(labels, ","), value)
}

func label(k, v string) string { return fmt.Sprintf("%s=%q", k, promEscape(v)) }

// writeAgentMetrics renders one agent snapshot.
func writeAgentMetrics(w io.Writer, s StatsResponse) error {
	p := &promWriter{w: w}
	host := []string{label("agent", s.Agent), label("lc", s.LC)}

	p.metric("pocolo_up", "gauge", "Whether the agent is serving (always 1 when scrapable).")
	p.sample("pocolo_up", host, 1)

	p.metric("pocolo_lc_offered_load_rps", "gauge", "Offered load of the latency-critical primary, requests/s.")
	p.sample("pocolo_lc_offered_load_rps", host, s.OfferedLoad)

	p.metric("pocolo_lc_slack_ratio", "gauge", "Relative p99 latency slack of the primary; negative means SLO violation.")
	p.sample("pocolo_lc_slack_ratio", host, s.Slack)

	p.metric("pocolo_lc_p99_ms", "gauge", "Observed p99 latency of the primary, milliseconds.")
	p.sample("pocolo_lc_p99_ms", host, s.P99Ms)

	p.metric("pocolo_power_watts", "gauge", "Latest power-meter reading, watts.")
	p.sample("pocolo_power_watts", host, s.PowerW)

	p.metric("pocolo_power_cap_watts", "gauge", "Power budget the capper enforces, watts.")
	p.sample("pocolo_power_cap_watts", host, s.CapW)

	p.metric("pocolo_be_throughput_ops", "gauge", "Instantaneous best-effort throughput, ops/s.")
	p.sample("pocolo_be_throughput_ops", host, s.BEThroughput)

	p.metric("pocolo_be_assigned", "gauge", "1 for the best-effort app currently placed on this server.")
	if s.AssignedBE != "" {
		p.sample("pocolo_be_assigned", append(append([]string{}, host...), label("be", s.AssignedBE)), 1)
	}

	p.metric("pocolo_lc_ops_total", "counter", "Latency-critical requests served.")
	p.sample("pocolo_lc_ops_total", host, s.LCOps)

	p.metric("pocolo_be_ops_total", "counter", "Best-effort operations completed.")
	p.sample("pocolo_be_ops_total", host, s.BEOps)

	p.metric("pocolo_be_ops_by_total", "counter", "Best-effort operations completed, by app.")
	for _, be := range sortedKeys(s.BEOpsBy) {
		p.sample("pocolo_be_ops_by_total", append(append([]string{}, host...), label("be", be)), s.BEOpsBy[be])
	}

	p.metric("pocolo_control_ticks_total", "counter", "Server-manager control loop iterations.")
	p.sample("pocolo_control_ticks_total", host, float64(s.ControlTicks))

	p.metric("pocolo_cap_throttles_total", "counter", "Power-capper throttle actions.")
	p.sample("pocolo_cap_throttles_total", host, float64(s.CapThrottles))

	p.metric("pocolo_cap_restores_total", "counter", "Power-capper restore actions.")
	p.sample("pocolo_cap_restores_total", host, float64(s.CapRestores))

	p.metric("pocolo_planner_hits_total", "counter", "Allocation lookups served by the precomputed planner (cold cells).")
	p.sample("pocolo_planner_hits_total", host, float64(s.PlannerHits))

	p.metric("pocolo_planner_warm_total", "counter", "Allocation lookups served by warm-start cell reuse.")
	p.sample("pocolo_planner_warm_total", host, float64(s.PlannerWarm))

	p.metric("pocolo_planner_fallbacks_total", "counter", "Allocation lookups that fell back to the exact grid search.")
	p.sample("pocolo_planner_fallbacks_total", host, float64(s.PlannerFallbacks))

	p.metric("pocolo_sim_seconds_total", "counter", "Simulated seconds advanced by the agent.")
	p.sample("pocolo_sim_seconds_total", host, s.SimSec)

	return p.err
}

// writeControllerMetrics renders a controller status snapshot.
func writeControllerMetrics(w io.Writer, st Status) error {
	p := &promWriter{w: w}

	p.metric("pocolo_controller_agents", "gauge", "Configured agents by liveness.")
	alive := 0
	for _, a := range st.Agents {
		if a.Alive {
			alive++
		}
	}
	p.sample("pocolo_controller_agents", []string{label("state", "alive")}, float64(alive))
	p.sample("pocolo_controller_agents", []string{label("state", "dead")}, float64(len(st.Agents)-alive))

	p.metric("pocolo_controller_agent_up", "gauge", "Per-agent liveness as seen by the controller.")
	for _, a := range st.Agents {
		v := 0.0
		if a.Alive {
			v = 1
		}
		p.sample("pocolo_controller_agent_up", []string{label("agent", a.Name), label("url", a.URL)}, v)
	}

	p.metric("pocolo_controller_degraded", "gauge", "1 while serving the last-known-good placement instead of a fresh solve.")
	v := 0.0
	if st.Degraded {
		v = 1
	}
	p.sample("pocolo_controller_degraded", nil, v)

	p.metric("pocolo_controller_placement", "gauge", "Current placement: best-effort app to agent.")
	for _, be := range sortedKeys(st.Placement) {
		p.sample("pocolo_controller_placement", []string{label("be", be), label("agent", st.Placement[be])}, 1)
	}

	p.metric("pocolo_controller_unplaced_be", "gauge", "Best-effort apps with no server to run on.")
	p.sample("pocolo_controller_unplaced_be", nil, float64(len(st.Unplaced)))

	p.metric("pocolo_controller_rounds_total", "counter", "Heartbeat rounds completed.")
	p.sample("pocolo_controller_rounds_total", nil, float64(st.Rounds))

	p.metric("pocolo_controller_solves_total", "counter", "Placement re-solves performed.")
	p.sample("pocolo_controller_solves_total", nil, float64(st.Solves))

	p.metric("pocolo_controller_deaths_total", "counter", "Agents declared dead.")
	p.sample("pocolo_controller_deaths_total", nil, float64(st.Deaths))

	p.metric("pocolo_controller_rejoins_total", "counter", "Dead agents that came back.")
	p.sample("pocolo_controller_rejoins_total", nil, float64(st.Rejoins))

	return p.err
}

// sortedKeys returns a map's keys sorted, for deterministic exposition.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
