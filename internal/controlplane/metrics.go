package controlplane

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"pocolo/internal/trace"
)

// This file renders agent and controller state in Prometheus text
// exposition format (version 0.0.4). The dependency-free writer covers
// the subset the control plane needs: HELP/TYPE headers, gauges,
// counters, and escaped label values.

// promEscape escapes a label value per the exposition format.
func promEscape(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// promWriter accumulates exposition lines.
type promWriter struct {
	w   io.Writer
	err error
}

func (p *promWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// metric emits the HELP/TYPE header for a metric.
func (p *promWriter) metric(name, typ, help string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// sample emits one sample line. Labels are "k=v" pairs already formatted;
// pass nil for an unlabelled sample.
func (p *promWriter) sample(name string, labels []string, value float64) {
	if len(labels) == 0 {
		p.printf("%s %g\n", name, value)
		return
	}
	p.printf("%s{%s} %g\n", name, strings.Join(labels, ","), value)
}

func label(k, v string) string { return fmt.Sprintf("%s=%q", k, promEscape(v)) }

// writeAgentMetrics renders one agent snapshot.
func writeAgentMetrics(w io.Writer, s StatsResponse) error {
	p := &promWriter{w: w}
	host := []string{label("agent", s.Agent), label("lc", s.LC)}

	p.metric("pocolo_up", "gauge", "Whether the agent is serving (always 1 when scrapable).")
	p.sample("pocolo_up", host, 1)

	p.metric("pocolo_lc_offered_load_rps", "gauge", "Offered load of the latency-critical primary, requests/s.")
	p.sample("pocolo_lc_offered_load_rps", host, s.OfferedLoad)

	p.metric("pocolo_lc_slack_ratio", "gauge", "Relative p99 latency slack of the primary; negative means SLO violation.")
	p.sample("pocolo_lc_slack_ratio", host, s.Slack)

	p.metric("pocolo_lc_p99_ms", "gauge", "Observed p99 latency of the primary, milliseconds.")
	p.sample("pocolo_lc_p99_ms", host, s.P99Ms)

	p.metric("pocolo_power_watts", "gauge", "Latest power-meter reading, watts.")
	p.sample("pocolo_power_watts", host, s.PowerW)

	p.metric("pocolo_power_cap_watts", "gauge", "Power budget the capper enforces, watts.")
	p.sample("pocolo_power_cap_watts", host, s.CapW)

	p.metric("pocolo_be_throughput_ops", "gauge", "Instantaneous best-effort throughput, ops/s.")
	p.sample("pocolo_be_throughput_ops", host, s.BEThroughput)

	p.metric("pocolo_be_assigned", "gauge", "1 for the best-effort app currently placed on this server.")
	if s.AssignedBE != "" {
		p.sample("pocolo_be_assigned", append(append([]string{}, host...), label("be", s.AssignedBE)), 1)
	}

	p.metric("pocolo_lc_ops_total", "counter", "Latency-critical requests served.")
	p.sample("pocolo_lc_ops_total", host, s.LCOps)

	p.metric("pocolo_be_ops_total", "counter", "Best-effort operations completed.")
	p.sample("pocolo_be_ops_total", host, s.BEOps)

	p.metric("pocolo_be_ops_by_total", "counter", "Best-effort operations completed, by app.")
	for _, be := range sortedKeys(s.BEOpsBy) {
		p.sample("pocolo_be_ops_by_total", append(append([]string{}, host...), label("be", be)), s.BEOpsBy[be])
	}

	p.metric("pocolo_control_ticks_total", "counter", "Server-manager control loop iterations.")
	p.sample("pocolo_control_ticks_total", host, float64(s.ControlTicks))

	p.metric("pocolo_cap_throttles_total", "counter", "Power-capper throttle actions.")
	p.sample("pocolo_cap_throttles_total", host, float64(s.CapThrottles))

	p.metric("pocolo_cap_restores_total", "counter", "Power-capper restore actions.")
	p.sample("pocolo_cap_restores_total", host, float64(s.CapRestores))

	p.metric("pocolo_be_throttles_total", "counter", "Capper interventions that actually moved a best-effort frequency or duty knob down.")
	p.sample("pocolo_be_throttles_total", host, float64(s.BEThrottles))

	p.metric("pocolo_be_restores_total", "counter", "Capper interventions that actually moved a best-effort frequency or duty knob up.")
	p.sample("pocolo_be_restores_total", host, float64(s.BERestores))

	p.metric("pocolo_planner_hits_total", "counter", "Allocation lookups served by the precomputed planner (cold cells).")
	p.sample("pocolo_planner_hits_total", host, float64(s.PlannerHits))

	p.metric("pocolo_planner_warm_total", "counter", "Allocation lookups served by warm-start cell reuse.")
	p.sample("pocolo_planner_warm_total", host, float64(s.PlannerWarm))

	p.metric("pocolo_planner_fallbacks_total", "counter", "Allocation lookups that fell back to the exact grid search.")
	p.sample("pocolo_planner_fallbacks_total", host, float64(s.PlannerFallbacks))

	p.metric("pocolo_planner_mode", "gauge", "Info metric: 1 for the allocation path the manager is configured with.")
	mode := "exact"
	if s.PlannerOn {
		mode = "planner"
	}
	p.sample("pocolo_planner_mode", append(append([]string{}, host...), label("mode", mode)), 1)

	p.metric("pocolo_sim_seconds_total", "counter", "Simulated seconds advanced by the agent.")
	p.sample("pocolo_sim_seconds_total", host, s.SimSec)

	return p.err
}

// writeControllerMetrics renders a controller status snapshot.
func writeControllerMetrics(w io.Writer, st Status) error {
	p := &promWriter{w: w}

	p.metric("pocolo_controller_agents", "gauge", "Configured agents by liveness.")
	alive := 0
	for _, a := range st.Agents {
		if a.Alive {
			alive++
		}
	}
	p.sample("pocolo_controller_agents", []string{label("state", "alive")}, float64(alive))
	p.sample("pocolo_controller_agents", []string{label("state", "dead")}, float64(len(st.Agents)-alive))

	p.metric("pocolo_controller_agent_up", "gauge", "Per-agent liveness as seen by the controller.")
	for _, a := range st.Agents {
		v := 0.0
		if a.Alive {
			v = 1
		}
		p.sample("pocolo_controller_agent_up", []string{label("agent", a.Name), label("url", a.URL)}, v)
	}

	p.metric("pocolo_controller_degraded", "gauge", "1 while serving the last-known-good placement instead of a fresh solve.")
	v := 0.0
	if st.Degraded {
		v = 1
	}
	p.sample("pocolo_controller_degraded", nil, v)

	p.metric("pocolo_controller_placement", "gauge", "Current placement: best-effort app to agent.")
	for _, be := range sortedKeys(st.Placement) {
		p.sample("pocolo_controller_placement", []string{label("be", be), label("agent", st.Placement[be])}, 1)
	}

	p.metric("pocolo_controller_unplaced_be", "gauge", "Best-effort apps with no server to run on.")
	p.sample("pocolo_controller_unplaced_be", nil, float64(len(st.Unplaced)))

	p.metric("pocolo_controller_rounds_total", "counter", "Heartbeat rounds completed.")
	p.sample("pocolo_controller_rounds_total", nil, float64(st.Rounds))

	p.metric("pocolo_controller_solves_total", "counter", "Placement re-solves performed.")
	p.sample("pocolo_controller_solves_total", nil, float64(st.Solves))

	p.metric("pocolo_controller_deaths_total", "counter", "Agents declared dead.")
	p.sample("pocolo_controller_deaths_total", nil, float64(st.Deaths))

	p.metric("pocolo_controller_rejoins_total", "counter", "Dead agents that came back.")
	p.sample("pocolo_controller_rejoins_total", nil, float64(st.Rejoins))

	return p.err
}

// writeStreamMetrics renders the streaming transport's heartbeat-ingest
// counters. A polling controller writes nothing, so the poll exposition
// is byte-identical to what it was before streaming existed.
func writeStreamMetrics(w io.Writer, s StreamStats) error {
	if s.Frames == 0 && s.Rejects == 0 {
		return nil
	}
	p := &promWriter{w: w}

	p.metric("pocolo_controller_heartbeat_frames_total", "counter", "Heartbeat frames ingested, by frame type.")
	p.sample("pocolo_controller_heartbeat_frames_total", []string{label("type", "full")}, float64(s.Fulls))
	p.sample("pocolo_controller_heartbeat_frames_total", []string{label("type", "delta")}, float64(s.Deltas))

	p.metric("pocolo_controller_heartbeat_stale_total", "counter", "Duplicate or reordered frames ignored.")
	p.sample("pocolo_controller_heartbeat_stale_total", nil, float64(s.Stale))

	p.metric("pocolo_controller_heartbeat_resyncs_total", "counter", "Frames answered with a resync demand.")
	p.sample("pocolo_controller_heartbeat_resyncs_total", nil, float64(s.Resyncs))

	p.metric("pocolo_controller_heartbeat_rejects_total", "counter", "Malformed frames rejected.")
	p.sample("pocolo_controller_heartbeat_rejects_total", nil, float64(s.Rejects))

	p.metric("pocolo_controller_heartbeat_bytes_total", "counter", "Heartbeat wire bytes ingested.")
	p.sample("pocolo_controller_heartbeat_bytes_total", nil, float64(s.Bytes))

	return p.err
}

// writeBudgetMetrics renders the controller's budget-tree state. A nil
// status (no budget tree configured) writes nothing, so unbudgeted
// controllers expose no empty budget families.
func writeBudgetMetrics(w io.Writer, b *BudgetStatus) error {
	if b == nil {
		return nil
	}
	p := &promWriter{w: w}

	p.metric("pocolo_budget_node_watts", "gauge", "Current power budget of each tree node, watts.")
	for _, n := range sortedKeys(b.NodeBudgets) {
		p.sample("pocolo_budget_node_watts", []string{label("node", n)}, b.NodeBudgets[n])
	}

	p.metric("pocolo_budget_share_watts", "gauge", "Per-agent power cap installed by the last rebalance, watts.")
	for _, n := range sortedKeys(b.Shares) {
		p.sample("pocolo_budget_share_watts", []string{label("agent", n)}, b.Shares[n])
	}

	p.metric("pocolo_budget_rebalances_total", "counter", "Budget divisions installed across the fleet.")
	p.sample("pocolo_budget_rebalances_total", nil, float64(b.Rebalances))

	p.metric("pocolo_budget_brownouts_total", "counter", "Runtime budget cuts applied to the tree.")
	p.sample("pocolo_budget_brownouts_total", nil, float64(b.Brownouts))

	return p.err
}

// histogram emits the Prometheus histogram sample family for one
// snapshot: cumulative _bucket samples with le labels (including +Inf),
// then _sum and _count.
func (p *promWriter) histogram(name string, labels []string, s trace.HistogramSnapshot) {
	cum := s.Cumulative()
	for i, b := range s.Bounds {
		le := label("le", strconv.FormatFloat(b, 'g', -1, 64))
		p.sample(name+"_bucket", append(append([]string{}, labels...), le), float64(cum[i]))
	}
	p.sample(name+"_bucket", append(append([]string{}, labels...), label("le", "+Inf")), float64(s.Count))
	p.sample(name+"_sum", labels, s.Sum)
	p.sample(name+"_count", labels, float64(s.Count))
}

// writeTraceMetrics renders a tracer's phase-duration and slack
// histograms. Families with no samples yet are omitted entirely (an empty
// histogram has no bucket layout to expose). A nil tracer writes nothing.
func writeTraceMetrics(w io.Writer, agent, lc string, tr *trace.Tracer) error {
	if tr == nil {
		return nil
	}
	p := &promWriter{w: w}
	host := []string{label("agent", agent)}
	if lc != "" {
		host = append(host, label("lc", lc))
	}
	spans := tr.SpanDurations()
	if len(spans) > 0 {
		p.metric("pocolo_tick_duration_seconds", "histogram", "Wall-clock duration of control-plane phases, by phase span.")
		for _, phase := range sortedKeys(spans) {
			if s := spans[phase]; s.Count > 0 {
				p.histogram("pocolo_tick_duration_seconds", append(append([]string{}, host...), label("phase", phase)), s)
			}
		}
	}
	if slack := tr.SlackDistribution(); slack.Count > 0 {
		p.metric("pocolo_lc_slack_ratio_distribution", "histogram", "Distribution of the primary's per-control-tick latency slack.")
		p.histogram("pocolo_lc_slack_ratio_distribution", host, slack)
	}
	return p.err
}

// sortedKeys returns a map's keys sorted, for deterministic exposition.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// lintExposition validates a full Prometheus text exposition against the
// subset of format 0.0.4 this package emits. It enforces that every
// sample is preceded by exactly one HELP and one TYPE header for its
// family, that declared types are known, that counter families end in
// _total, that sample names match the declared family (histograms may
// append _bucket/_sum/_count), that labels parse with promEscape-style
// escaping, that every histogram bucket series is cumulative,
// non-decreasing, with strictly ascending le bounds, and closed by an
// le="+Inf" bucket equal to _count, and that a "# EOF" terminator (the
// OpenMetrics end marker, optional since writer-level lints see partial
// output) is the final non-empty line when present. The metrics golden
// test runs it over the agent and controller handlers' complete output,
// so any writer regression fails there.
func lintExposition(text string) error {
	type family struct {
		typ           string
		helped, typed bool
		sampled       bool
		count         map[string]float64 // _count value by non-le label signature
		lastBucket    map[string]float64 // last cumulative bucket by signature
		lastLE        map[string]float64 // last finite le bound by signature
		hasLE         map[string]bool
		sawInf        map[string]bool
	}
	families := make(map[string]*family)
	get := func(name string) *family {
		f := families[name]
		if f == nil {
			f = &family{
				count:      make(map[string]float64),
				lastBucket: make(map[string]float64),
				lastLE:     make(map[string]float64),
				hasLE:      make(map[string]bool),
				sawInf:     make(map[string]bool),
			}
			families[name] = f
		}
		return f
	}
	current := ""
	sawEOF := false
	for i, line := range strings.Split(text, "\n") {
		ln := i + 1
		if line == "" {
			continue
		}
		if sawEOF {
			return fmt.Errorf("line %d: content after the # EOF terminator", ln)
		}
		if line == "# EOF" {
			sawEOF = true
			continue
		}
		if name, ok := strings.CutPrefix(line, "# HELP "); ok {
			fields := strings.SplitN(name, " ", 2)
			if len(fields) != 2 || fields[1] == "" {
				return fmt.Errorf("line %d: HELP without text", ln)
			}
			f := get(fields[0])
			if f.helped {
				return fmt.Errorf("line %d: duplicate HELP for %s", ln, fields[0])
			}
			if f.sampled {
				return fmt.Errorf("line %d: HELP for %s after its samples", ln, fields[0])
			}
			f.helped = true
			current = fields[0]
			continue
		}
		if name, ok := strings.CutPrefix(line, "# TYPE "); ok {
			fields := strings.SplitN(name, " ", 2)
			if len(fields) != 2 {
				return fmt.Errorf("line %d: TYPE without a type", ln)
			}
			switch fields[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fmt.Errorf("line %d: unknown type %q", ln, fields[1])
			}
			f := get(fields[0])
			if f.typed {
				return fmt.Errorf("line %d: duplicate TYPE for %s", ln, fields[0])
			}
			if f.sampled {
				return fmt.Errorf("line %d: TYPE for %s after its samples", ln, fields[0])
			}
			if fields[1] == "counter" && !strings.HasSuffix(fields[0], "_total") {
				return fmt.Errorf("line %d: counter %s lacks the _total suffix", ln, fields[0])
			}
			f.typ = fields[1]
			f.typed = true
			current = fields[0]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // comment
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", ln, err)
		}
		base := name
		suffix := ""
		if current != "" && name != current && strings.HasPrefix(name, current+"_") {
			base, suffix = current, strings.TrimPrefix(name, current)
		}
		f, ok := families[base]
		if !ok || base != current {
			return fmt.Errorf("line %d: sample %s outside its family's header block", ln, name)
		}
		if !f.helped || !f.typed {
			return fmt.Errorf("line %d: sample %s before both HELP and TYPE", ln, name)
		}
		f.sampled = true
		switch f.typ {
		case "histogram":
			sig := labelSignature(labels, "le")
			switch suffix {
			case "_bucket":
				le, ok := labels["le"]
				if !ok {
					return fmt.Errorf("line %d: histogram bucket without le label", ln)
				}
				if value < f.lastBucket[sig] {
					return fmt.Errorf("line %d: bucket counts of %s{%s} decrease", ln, base, sig)
				}
				f.lastBucket[sig] = value
				if le == "+Inf" {
					f.sawInf[sig] = true
				} else if bound, err := strconv.ParseFloat(le, 64); err != nil {
					return fmt.Errorf("line %d: unparsable le bound %q", ln, le)
				} else if f.sawInf[sig] {
					return fmt.Errorf("line %d: finite bucket after le=\"+Inf\" in %s{%s}", ln, base, sig)
				} else if f.hasLE[sig] && bound <= f.lastLE[sig] {
					return fmt.Errorf("line %d: le bound %q of %s{%s} not strictly ascending (previous %g)", ln, le, base, sig, f.lastLE[sig])
				} else {
					f.lastLE[sig] = bound
					f.hasLE[sig] = true
				}
			case "_sum":
			case "_count":
				f.count[sig] = value
			default:
				return fmt.Errorf("line %d: histogram sample %s is not _bucket/_sum/_count", ln, name)
			}
		default:
			if suffix != "" {
				return fmt.Errorf("line %d: sample %s does not match family %s", ln, name, base)
			}
			if f.typ == "counter" && value < 0 {
				return fmt.Errorf("line %d: negative counter %s", ln, name)
			}
		}
	}
	for name, f := range families {
		if f.typ != "histogram" || !f.sampled {
			continue
		}
		for sig, last := range f.lastBucket {
			if !f.sawInf[sig] {
				return fmt.Errorf("histogram %s{%s} has no le=\"+Inf\" bucket", name, sig)
			}
			if c, ok := f.count[sig]; !ok {
				return fmt.Errorf("histogram %s{%s} has no _count", name, sig)
			} else if c != last {
				return fmt.Errorf("histogram %s{%s}: +Inf bucket %g != _count %g", name, sig, last, c)
			}
		}
	}
	return nil
}

// parseSample splits one exposition sample line into its name, decoded
// labels, and value, rejecting malformed names, labels, and escapes.
func parseSample(line string) (string, map[string]string, float64, error) {
	nameEnd := strings.IndexAny(line, "{ ")
	if nameEnd <= 0 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	}
	name := line[:nameEnd]
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	rest := line[nameEnd:]
	labels := make(map[string]string)
	if rest[0] == '{' {
		end, err := parseLabels(rest, labels)
		if err != nil {
			return "", nil, 0, fmt.Errorf("sample %s: %w", name, err)
		}
		rest = rest[end:]
	}
	valueStr := strings.TrimSpace(rest)
	value, err := strconv.ParseFloat(valueStr, 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("sample %s: unparsable value %q", name, valueStr)
	}
	return name, labels, value, nil
}

// parseLabels decodes a {k="v",...} label block starting at s[0] == '{',
// returning the index just past the closing brace. Escapes follow the
// exposition format (the inverse of promEscape): \\, \", and \n.
func parseLabels(s string, out map[string]string) (int, error) {
	i := 1 // past '{'
	for {
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label block")
		}
		if s[i] == '}' {
			return i + 1, nil
		}
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			return 0, fmt.Errorf("label without '='")
		}
		key := s[i : i+eq]
		if !validLabelName(key) {
			return 0, fmt.Errorf("invalid label name %q", key)
		}
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("label %s: unquoted value", key)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(s) {
				return 0, fmt.Errorf("label %s: unterminated value", key)
			}
			c := s[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(s) {
					return 0, fmt.Errorf("label %s: dangling escape", key)
				}
				switch s[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return 0, fmt.Errorf("label %s: bad escape \\%c", key, s[i+1])
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		if _, dup := out[key]; dup {
			return 0, fmt.Errorf("duplicate label %s", key)
		}
		out[key] = val.String()
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}

// labelSignature renders a deterministic label-set key, skipping the
// named label (le, so all buckets of one series share a signature).
func labelSignature(labels map[string]string, skip string) string {
	parts := make([]string, 0, len(labels))
	for _, k := range sortedKeys(labels) {
		if k == skip {
			continue
		}
		parts = append(parts, label(k, labels[k]))
	}
	return strings.Join(parts, ",")
}

func validMetricName(s string) bool {
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return s != ""
}

func validLabelName(s string) bool {
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return s != ""
}
