package controlplane

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pocolo/internal/trace"
	"pocolo/internal/utility"
)

// streamTestController builds a streaming controller over fake agent URLs
// with a deterministic clock that advances one heartbeat per Round.
func streamTestController(t *testing.T, n, podSize int, mut func(*ControllerConfig)) (*Controller, []string, func()) {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		urls[i] = fmt.Sprintf("http://stream-agent-%d", i)
	}
	clock := time.Unix(1_700_000_000, 0)
	var mu sync.Mutex
	cfg := ControllerConfig{
		AgentURLs: urls,
		Transport: TransportStream,
		PodSize:   podSize,
		DeadAfter: 2,
		Heartbeat: time.Second,
		Now: func() time.Time {
			mu.Lock()
			defer mu.Unlock()
			return clock
		},
	}
	if mut != nil {
		mut(&cfg)
	}
	ctl, err := NewController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tick := func() {
		mu.Lock()
		clock = clock.Add(time.Second)
		mu.Unlock()
	}
	return ctl, urls, tick
}

// streamTestStats builds a full snapshot rich enough for the round loop
// to resolve over: identity, the LC envelope, the fitted LC model, and
// the named best-effort candidates with their models.
func streamTestStats(t testing.TB, name string, bes ...string) StatsResponse {
	t.Helper()
	models := fixtureModels(t)
	lc := spec(t, "xapian")
	st := codecStats()
	st.Agent = name
	st.LC = lc.Name
	st.PeakLoad = lc.PeakLoad
	st.ProvisionedPowerW = lc.ProvisionedPowerW
	st.LCModel = models[lc.Name]
	st.AssignedBE = ""
	st.BECandidates = bes
	st.BEModels = make(map[string]*utility.Model, len(bes))
	for _, be := range bes {
		st.BEModels[be] = models[be]
	}
	return st
}

func TestStreamIngestAndView(t *testing.T) {
	ctl, urls, _ := streamTestController(t, 3, 2, nil) // 2 shards: {0,1}, {2}

	encs := make([]*HeartbeatEncoder, len(urls))
	for i, u := range urls {
		encs[i] = NewHeartbeatEncoder(fmt.Sprintf("agent-%d", i), u)
	}
	st := codecStats()
	for i, enc := range encs {
		st.Agent = fmt.Sprintf("agent-%d", i)
		frame, err := enc.Encode(st, 1)
		if err != nil {
			t.Fatal(err)
		}
		ack := ctl.IngestHeartbeat(frame)
		if ack.Reject || ack.Resync || ack.Seq != 1 {
			t.Fatalf("full frame %d ack %+v", i, ack)
		}
		enc.Ack(ack)
	}
	for i, u := range urls {
		v := ctl.stream.view(u)
		if v == nil {
			t.Fatalf("no view for %s after full frame", u)
		}
		if v.stats.Agent != fmt.Sprintf("agent-%d", i) || v.seq != 1 {
			t.Fatalf("view %d = %+v", i, v)
		}
	}

	// A delta moves only its masked fields and swaps a fresh snapshot.
	before := ctl.stream.view(urls[1])
	st.Agent = "agent-1"
	st.PowerW = 171.5
	frame, err := encs[1].Encode(st, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ack := ctl.IngestHeartbeat(frame); ack.Resync || ack.Reject {
		t.Fatalf("delta ack %+v", ack)
	}
	after := ctl.stream.view(urls[1])
	if after == before {
		t.Fatal("delta did not publish a new snapshot")
	}
	if after.stats.PowerW != 171.5 || after.seq != 2 || after.epoch != 2 {
		t.Fatalf("delta view %+v", after)
	}
	if before.stats.PowerW == 171.5 {
		t.Fatal("published view mutated in place; snapshots must be immutable")
	}
	// The sibling pod's views are untouched pointers.
	if v := ctl.stream.view(urls[2]); v.seq != 1 {
		t.Fatalf("unrelated view advanced: %+v", v)
	}

	// Replay is stale; a delta from an unbound name demands resync;
	// garbage is rejected. Counters account for every frame.
	if ack := ctl.IngestHeartbeat(frame); !ack.Resync && ack.Seq != 2 {
		t.Fatalf("replay ack %+v", ack)
	}
	orphan, err := EncodeHeartbeat(&Heartbeat{Agent: "nobody", Seq: 5, Base: 4, Mask: 1, Stats: StatsResponse{PowerW: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if ack := ctl.IngestHeartbeat(orphan); !ack.Resync {
		t.Fatalf("orphan delta ack %+v", ack)
	}
	if ack := ctl.IngestHeartbeat([]byte("garbage")); !ack.Reject {
		t.Fatalf("garbage ack %+v", ack)
	}
	s := ctl.StreamStats()
	if s.Frames != 7 || s.Fulls != 3 || s.Deltas != 3 || s.Rejects != 1 || s.Resyncs != 1 || s.Stale != 1 {
		t.Fatalf("stream stats %+v", s)
	}
	if s.Bytes == 0 {
		t.Fatal("no bytes accounted")
	}
}

func TestStreamFullFrameFromUnknownURLRefused(t *testing.T) {
	ctl, _, _ := streamTestController(t, 2, 64, nil)
	enc := NewHeartbeatEncoder("intruder", "http://not-in-fleet")
	st := codecStats()
	st.Agent = "intruder"
	frame, err := enc.Encode(st, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ack := ctl.IngestHeartbeat(frame); !ack.Resync {
		t.Fatalf("unconfigured URL ack %+v, want resync refusal", ack)
	}
	if v, ok := ctl.stream.names.Load("intruder"); ok {
		t.Fatalf("intruder bound to slot %v", v)
	}
}

func TestIngestBatchAcksInFrameOrder(t *testing.T) {
	ctl, urls, _ := streamTestController(t, 5, 2, nil) // 3 shards
	frames := make([][]byte, 0, 7)
	st := codecStats()
	for i, u := range urls {
		enc := NewHeartbeatEncoder(fmt.Sprintf("agent-%d", i), u)
		st.Agent = fmt.Sprintf("agent-%d", i)
		frame, err := enc.Encode(st, 1)
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, frame)
	}
	frames = append(frames, []byte{0x00}) // reject
	frames = append(frames, frames[2])    // replayed full → resync demand
	acks := ctl.IngestBatch(frames)
	if len(acks) != 7 {
		t.Fatalf("%d acks for 7 frames", len(acks))
	}
	for i := 0; i < 5; i++ {
		if acks[i].Reject || acks[i].Resync || acks[i].Agent != fmt.Sprintf("agent-%d", i) {
			t.Fatalf("ack %d = %+v", i, acks[i])
		}
	}
	if !acks[5].Reject {
		t.Fatalf("garbage ack %+v", acks[5])
	}
	if acks[6].Reject || !acks[6].Resync || acks[6].Agent != "agent-2" {
		t.Fatalf("replayed-full ack %+v", acks[6])
	}
	s := ctl.StreamStats()
	if s.Frames != 7 || s.Fulls != 6 || s.Resyncs != 1 || s.Stale != 0 || s.Rejects != 1 {
		t.Fatalf("stream stats %+v", s)
	}
	for _, u := range urls {
		if ctl.stream.view(u) == nil {
			t.Fatalf("no view for %s after batch", u)
		}
	}
}

func TestHeartbeatHandlerHTTP(t *testing.T) {
	ctl, urls, _ := streamTestController(t, 1, 64, nil)
	srv := httptest.NewServer(http.HandlerFunc(ctl.HeartbeatHandler))
	defer srv.Close()

	if resp, err := http.Get(srv.URL); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status %d", resp.StatusCode)
	}

	resp, err := http.Post(srv.URL, "application/octet-stream", strings.NewReader("junk"))
	if err != nil {
		t.Fatal(err)
	}
	var ack HeartbeatAck
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !ack.Reject {
		t.Fatalf("junk frame: status %d ack %+v", resp.StatusCode, ack)
	}

	enc := NewHeartbeatEncoder("agent-0", urls[0])
	st := codecStats()
	st.Agent = "agent-0"
	frame, err := enc.Encode(st, 1)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(srv.URL, "application/octet-stream", bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	ack = HeartbeatAck{} // reject is omitempty; don't inherit the previous decode
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ack.Resync || ack.Reject || ack.Seq != 1 {
		t.Fatalf("good frame: status %d ack %+v", resp.StatusCode, ack)
	}

	// A poll-transport controller refuses the route outright.
	pollCtl, err := NewController(ControllerConfig{AgentURLs: []string{"http://a"}})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	pollCtl.HeartbeatHandler(rec, httptest.NewRequest(http.MethodPost, RouteHeartbeat, bytes.NewReader(frame)))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("poll controller heartbeat status %d", rec.Code)
	}
}

// TestStreamRoundLiveness drives the full liveness cycle over the
// streaming transport: discovery on first frames, death after DeadAfter
// silent rounds, rejoin on the next applied frame — and the per-round
// heartbeat summaries land in the decision trace.
func TestStreamRoundLiveness(t *testing.T) {
	tracer := trace.New("controller", 256)
	ctl, urls, tick := streamTestController(t, 2, 64, func(cfg *ControllerConfig) {
		cfg.Trace = tracer
	})
	ctx := context.Background()
	encs := make([]*HeartbeatEncoder, len(urls))
	stats := make([]StatsResponse, len(urls))
	for i, u := range urls {
		encs[i] = NewHeartbeatEncoder(fmt.Sprintf("agent-%d", i), u)
		stats[i] = streamTestStats(t, fmt.Sprintf("agent-%d", i))
	}
	push := func(i int) {
		t.Helper()
		stats[i].SimSec++ // something always moves
		frame, err := encs[i].Encode(stats[i], 1)
		if err != nil {
			t.Fatal(err)
		}
		ack := ctl.IngestHeartbeat(frame)
		if ack.Reject {
			t.Fatalf("push %d rejected", i)
		}
		encs[i].Ack(ack)
	}

	tick()
	push(0)
	push(1)
	ctl.Round(ctx)
	st := ctl.Status()
	if !st.Agents[0].Alive || !st.Agents[1].Alive {
		t.Fatalf("agents not discovered: %+v", st.Agents)
	}
	if st.Agents[0].Name != "agent-0" {
		t.Fatalf("name not adopted: %+v", st.Agents[0])
	}

	// Agent 1 goes silent; agent 0 keeps pushing. DeadAfter=2.
	for r := 0; r < 2; r++ {
		tick()
		push(0)
		ctl.Round(ctx)
	}
	st = ctl.Status()
	if !st.Agents[0].Alive || st.Agents[1].Alive {
		t.Fatalf("liveness after silence: %+v", st.Agents)
	}
	if st.Deaths != 1 {
		t.Fatalf("deaths = %d", st.Deaths)
	}

	// One applied frame brings it back the same round.
	tick()
	push(0)
	push(1)
	ctl.Round(ctx)
	st = ctl.Status()
	if !st.Agents[1].Alive || st.Rejoins != 1 {
		t.Fatalf("rejoin: %+v rejoins=%d", st.Agents[1], st.Rejoins)
	}

	heartbeatEvents := 0
	for _, ev := range tracer.Events() {
		if ev.Kind == trace.KindHeartbeat {
			heartbeatEvents++
			if ev.Heartbeat.Frames <= 0 {
				t.Fatalf("heartbeat event without summary: %+v", ev)
			}
		}
	}
	if heartbeatEvents == 0 {
		t.Fatal("no KindHeartbeat events traced")
	}
}

// stallTransport routes assign/cap pushes: requests to the slow URL block
// until the request context is cancelled; all others ack instantly and
// are counted.
type stallTransport struct {
	slowURL string
	fast    atomic.Int64
}

func (s *stallTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if strings.HasPrefix(req.URL.String(), s.slowURL) {
		<-req.Context().Done() // hold the connection until the push timeout
		return nil, req.Context().Err()
	}
	s.fast.Add(1)
	body, _ := json.Marshal(AssignResponse{Agent: "x"})
	return &http.Response{
		StatusCode: http.StatusOK,
		Body:       httpBody(body),
		Header:     make(http.Header),
		Request:    req,
	}, nil
}

func httpBody(b []byte) *bodyCloser { return &bodyCloser{Reader: *bytes.NewReader(b)} }

type bodyCloser struct{ bytes.Reader }

func (b *bodyCloser) Close() error { return nil }

// TestSlowAgentCannotStallRound is the regression test for the round
// loop's push phase: one agent holding its connection open for the full
// timeout must cost the round at most ~one timeout, with every other
// agent's push — including agents in the same pod and other pods —
// delivered concurrently, and the slow agent's push NOT recorded as
// applied state.
func TestSlowAgentCannotStallRound(t *testing.T) {
	const n = 6
	tr := &stallTransport{}
	ctl, urls, tick := streamTestController(t, n, 2, func(cfg *ControllerConfig) {
		cfg.Timeout = 150 * time.Millisecond
		cfg.BE = []string{"graph#0", "graph#1", "graph#2", "lstm#0", "lstm#1", "lstm#2"}
		cfg.Client = &http.Client{Transport: tr}
	})
	tr.slowURL = urls[0]

	for i, u := range urls {
		name := fmt.Sprintf("agent-%d", i)
		full := streamTestStats(t, name, "graph", "lstm")
		enc := NewHeartbeatEncoder(name, u)
		frame, err := enc.Encode(full, 1)
		if err != nil {
			t.Fatal(err)
		}
		if ack := ctl.IngestHeartbeat(frame); ack.Reject || ack.Resync {
			t.Fatalf("seed frame %d: %+v", i, ack)
		}
	}

	tick()
	start := time.Now()
	ctl.Round(context.Background())
	elapsed := time.Since(start)

	// Serial pushing would cost ≥ one timeout per queued push behind the
	// slow agent; the pool must keep it to ~one timeout total.
	if elapsed > 450*time.Millisecond {
		t.Fatalf("round took %v with one slow agent (timeout 150ms); pushes are serialized", elapsed)
	}
	if got := tr.fast.Load(); got != n-1 {
		t.Fatalf("%d fast pushes delivered, want %d", got, n-1)
	}
	st := ctl.Status()
	for _, a := range st.Agents {
		if a.URL == urls[0] {
			if a.AssignedBE != "" {
				t.Fatalf("unacked push recorded on slow agent: %+v", a)
			}
		} else if a.AssignedBE == "" {
			t.Fatalf("acked push not recorded on %s", a.URL)
		}
	}
}
