package controlplane

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"pocolo/internal/obs"
)

// benchTransport answers the controller's HTTP traffic from memory so
// the round benchmarks measure controller cost, not a network stack:
// GET /v1/stats serves a pre-marshaled snapshot per agent, pushes are
// acknowledged and discarded.
type benchTransport struct {
	stats map[string][]byte // base URL → canned GET /v1/stats body
}

func (bt *benchTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if req.Body != nil {
		io.Copy(io.Discard, req.Body)
		req.Body.Close()
	}
	status, body := http.StatusOK, []byte(nil)
	if req.Method == http.MethodGet && req.URL.Path == RouteStats {
		body = bt.stats["http://"+req.URL.Host]
		if body == nil {
			status = http.StatusNotFound
		}
	}
	return &http.Response{
		StatusCode: status,
		Status:     http.StatusText(status),
		Header:     make(http.Header),
		Body:       io.NopCloser(bytes.NewReader(body)),
		Request:    req,
	}, nil
}

// benchFleet builds n canned agent snapshots (identity, LC envelope,
// fitted models, best-effort candidates) plus their URLs. Snapshots are
// cloned from one template so 10k-agent setup stays cheap enough for
// the CI bench smoke's -benchtime=1x pass.
func benchFleet(b *testing.B, n int) ([]string, []StatsResponse) {
	b.Helper()
	tmpl := streamTestStats(b, "template", "graph", "lstm")
	urls := make([]string, n)
	stats := make([]StatsResponse, n)
	for i := range urls {
		urls[i] = fmt.Sprintf("http://bench-agent-%d", i)
		st := tmpl
		st.Agent = fmt.Sprintf("agent-%05d", i)
		stats[i] = st
	}
	return urls, stats
}

// benchController stands up a controller over the fleet with a
// deterministic clock. The returned tick advances it one heartbeat.
// reg is the observability registry (nil = unobserved, the baseline).
func benchController(b *testing.B, urls []string, transport string, client *http.Client, reg *obs.Registry) (*Controller, func()) {
	b.Helper()
	clock := time.Unix(1_700_000_000, 0)
	var mu sync.Mutex
	ctl, err := NewController(ControllerConfig{
		AgentURLs: urls,
		BE:        []string{"graph", "lstm"},
		Solver:    SolverSharded,
		Transport: transport,
		PodSize:   64,
		DeadAfter: 2,
		Heartbeat: time.Second,
		Retries:   0,
		Client:    client,
		Obs:       reg,
		Now: func() time.Time {
			mu.Lock()
			defer mu.Unlock()
			return clock
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	return ctl, func() {
		mu.Lock()
		clock = clock.Add(time.Second)
		mu.Unlock()
	}
}

// benchmarkPollRound measures one polling round at steady state: every
// agent answers GET /v1/stats with a full JSON snapshot, the controller
// decodes all n of them, and liveness bookkeeping runs over the results.
func benchmarkPollRound(b *testing.B, n int, reg *obs.Registry) {
	urls, stats := benchFleet(b, n)
	bt := &benchTransport{stats: make(map[string][]byte, n)}
	for i, st := range stats {
		blob, err := json.Marshal(st)
		if err != nil {
			b.Fatal(err)
		}
		bt.stats[urls[i]] = blob
	}
	ctl, tick := benchController(b, urls, TransportPoll, &http.Client{Transport: bt}, reg)
	ctx := context.Background()
	ctl.Round(ctx) // discovery + solve + initial pushes, outside the timer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tick()
		ctl.Round(ctx)
	}
}

// benchmarkStreamRound measures one streaming round at steady state:
// every agent encodes a delta heartbeat (one float changed), the
// controller ingests the batch into its shards, and the round loop reads
// the swapped snapshots. Encoding is included — it is the agent-side
// cost the transport actually charges per round.
func benchmarkStreamRound(b *testing.B, n int, reg *obs.Registry) {
	urls, stats := benchFleet(b, n)
	ctl, tick := benchController(b, urls, TransportStream, &http.Client{Transport: &benchTransport{}}, reg)
	encs := make([]*HeartbeatEncoder, n)
	frames := make([][]byte, n)
	for i := range encs {
		encs[i] = NewHeartbeatEncoder(stats[i].Agent, urls[i])
		frame, err := encs[i].Encode(stats[i], 1)
		if err != nil {
			b.Fatal(err)
		}
		frames[i] = frame
	}
	for i, ack := range ctl.IngestBatch(frames) {
		if ack.Reject || ack.Resync {
			b.Fatalf("full frame %d ack %+v", i, ack)
		}
		encs[i].Ack(ack)
	}
	ctx := context.Background()
	ctl.Round(ctx) // discovery + solve + initial pushes, outside the timer
	seq := uint64(1)
	b.ReportAllocs()
	b.ResetTimer()
	for iter := 0; iter < b.N; iter++ {
		tick()
		seq++
		for i := range stats {
			stats[i].PowerW = 100 + float64(iter%16)*0.5
			frame, err := encs[i].Encode(stats[i], seq)
			if err != nil {
				b.Fatal(err)
			}
			frames[i] = frame
		}
		for i, ack := range ctl.IngestBatch(frames) {
			if ack.Reject || ack.Resync {
				b.Fatalf("delta ack %d = %+v", i, ack)
			}
			encs[i].Ack(ack)
		}
		ctl.Round(ctx)
	}
}

func BenchmarkControllerRoundPoll100(b *testing.B)   { benchmarkPollRound(b, 100, nil) }
func BenchmarkControllerRoundPoll1k(b *testing.B)    { benchmarkPollRound(b, 1000, nil) }
func BenchmarkControllerRoundPoll10k(b *testing.B)   { benchmarkPollRound(b, 10000, nil) }
func BenchmarkControllerRoundStream100(b *testing.B) { benchmarkStreamRound(b, 100, nil) }
func BenchmarkControllerRoundStream1k(b *testing.B)  { benchmarkStreamRound(b, 1000, nil) }
func BenchmarkControllerRoundStream10k(b *testing.B) { benchmarkStreamRound(b, 10000, nil) }

// The Obs variants run the identical round workload with the metrics
// registry live — the delta against the plain variants is the total
// observability tax on the hot path (CI holds it under 5%).
func BenchmarkControllerRoundPoll1kObs(b *testing.B) {
	benchmarkPollRound(b, 1000, obs.NewRegistry())
}
func BenchmarkControllerRoundStream1kObs(b *testing.B) {
	benchmarkStreamRound(b, 1000, obs.NewRegistry())
}
