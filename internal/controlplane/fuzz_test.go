package controlplane

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// fuzzSeedFrames are the fuzzer's starting population, mirrored into the
// committed corpus under testdata/fuzz/FuzzDecodeHeartbeat: well-formed
// full and delta frames plus one representative of each malformation
// class (truncation, version skew, flag/mask lies, trailing garbage), so
// even a short smoke run explores both sides of every validation branch.
func fuzzSeedFrames(tb testing.TB) [][]byte {
	tb.Helper()
	full, err := EncodeHeartbeat(&Heartbeat{
		Agent: "agent-a", URL: "http://agent-a:7001", Seq: 1, Epoch: 1,
		Full: true, Stats: codecStats(),
	})
	if err != nil {
		tb.Fatal(err)
	}
	base := codecStats()
	cur := base
	cur.PowerW += 2.5
	cur.AssignedBE = "lstm"
	cur.ControlTicks += 3
	delta, err := EncodeHeartbeat(&Heartbeat{
		Agent: "agent-a", Seq: 2, Base: 1, Epoch: 1,
		Mask: heartbeatMask(&base, &cur), Stats: cur,
	})
	if err != nil {
		tb.Fatal(err)
	}
	allMask, err := EncodeHeartbeat(&Heartbeat{
		Agent: "agent-a", Seq: 3, Base: 2, Epoch: 2, Mask: hbMaskAll, Stats: cur,
	})
	if err != nil {
		tb.Fatal(err)
	}
	maskLie := []byte{hbMagic, hbVersion, 0, 1, 'a', 2, 1, 1}
	maskLie = binary.AppendUvarint(maskLie, hbMaskAll) // claims every field...
	maskLie = append(maskLie, 0x42)                    // ...delivers one byte
	fullV1 := encodeHeartbeatV1Full(tb, &Heartbeat{
		Agent: "agent-a", URL: "http://agent-a:7001", Seq: 1, Epoch: 1,
		Full: true, Stats: codecStats(),
	})
	corruptComp := append([]byte{}, full...)
	corruptComp[len(corruptComp)-1] ^= 0xFF // damage the DEFLATE final block
	return [][]byte{
		full, // v2: snapshot blob compressed
		delta,
		allMask,
		fullV1,               // v1 downgrade: raw snapshot blob
		full[:len(full)/2],   // truncated mid-snapshot
		delta[:len(delta)-1], // truncated mid-field
		corruptComp,
		append([]byte{hbMagic, hbVersion + 1}, full[2:]...),   // version skew
		append([]byte{hbMagic, hbVersion, 0xFF}, full[3:]...), // undefined flags
		maskLie,
		append(append([]byte{}, delta...), 0xDE, 0xAD), // trailing bytes
		{hbMagic, hbVersion, 0, 1, 'a', 0},             // seq zero
		{hbMagic, hbVersion, 0, 1, 'a', 1, 1, 5, 0},    // base ≥ seq
	}
}

// TestFuzzCorpusCommitted keeps the committed corpus in lockstep with
// fuzzSeedFrames: every seed must exist on disk in Go corpus format so
// `go test -fuzz` and plain `go test` start from the same population.
// Regenerate after changing the seeds with POCOLO_WRITE_CORPUS=1.
func TestFuzzCorpusCommitted(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzDecodeHeartbeat")
	write := os.Getenv("POCOLO_WRITE_CORPUS") != ""
	if write {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for i, frame := range fuzzSeedFrames(t) {
		path := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		want := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", frame)
		if write {
			if err := os.WriteFile(path, []byte(want), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("corpus seed missing (regenerate with POCOLO_WRITE_CORPUS=1): %v", err)
		}
		if string(got) != want {
			t.Errorf("%s is stale (regenerate with POCOLO_WRITE_CORPUS=1)", path)
		}
	}
}

// FuzzDecodeHeartbeat throws arbitrary bytes at the frame decoder. The
// contract under fuzz: never panic, never accept a frame violating the
// documented invariants, and canonical idempotence — anything that
// decodes must re-encode and decode again to the identical frame.
func FuzzDecodeHeartbeat(f *testing.F) {
	for _, frame := range fuzzSeedFrames(f) {
		f.Add(frame)
	}
	f.Fuzz(func(t *testing.T, frame []byte) {
		hb, err := DecodeHeartbeat(frame)
		if err != nil {
			return // rejected cleanly
		}
		if hb.Agent == "" || len(hb.Agent) > maxHeartbeatName {
			t.Fatalf("decoded agent name length %d outside bounds", len(hb.Agent))
		}
		if hb.Seq == 0 {
			t.Fatal("decoded seq 0")
		}
		if hb.Full {
			if len(hb.URL) > maxHeartbeatURL {
				t.Fatalf("decoded URL length %d exceeds %d", len(hb.URL), maxHeartbeatURL)
			}
			if hb.Stats.Agent != hb.Agent {
				t.Fatalf("header %q vs snapshot %q survived decode", hb.Agent, hb.Stats.Agent)
			}
		} else {
			if hb.Base >= hb.Seq {
				t.Fatalf("decoded base %d not before seq %d", hb.Base, hb.Seq)
			}
			if hb.Mask&^hbMaskAll != 0 {
				t.Fatalf("decoded mask %#x has undefined bits", hb.Mask)
			}
		}
		re, err := EncodeHeartbeat(hb)
		if err != nil {
			t.Fatalf("decoded frame failed to re-encode: %v", err)
		}
		hb2, err := DecodeHeartbeat(re)
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		got, err := json.Marshal(hb2)
		if err != nil {
			t.Fatal(err)
		}
		want, err := json.Marshal(hb)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("decode/encode/decode not idempotent:\n got %s\nwant %s", got, want)
		}
	})
}
