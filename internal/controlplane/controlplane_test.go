package controlplane

import (
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"pocolo/internal/machine"
	"pocolo/internal/profiler"
	"pocolo/internal/utility"
	"pocolo/internal/workload"
)

// Shared fitted-model fixture: profiling sweeps are deterministic, so fit
// once per test binary and hand the same models to every test.
var (
	fitOnce   sync.Once
	fitModels map[string]*utility.Model
	fitErr    error
)

func fixtureModels(t testing.TB) map[string]*utility.Model {
	t.Helper()
	fitOnce.Do(func() {
		cat := workload.MustDefaults()
		specs := append(cat.LC(), cat.BE()...)
		fitModels, fitErr = profiler.FitAll(machine.XeonE52650(), specs, 7)
	})
	if fitErr != nil {
		t.Fatal(fitErr)
	}
	return fitModels
}

func spec(t testing.TB, name string) *workload.Spec {
	t.Helper()
	s, err := workload.MustDefaults().ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// newTestAgent builds an agent hosting lcName with the given best-effort
// candidates, paced far faster than real time (1 ms wall per 100 ms sim).
func newTestAgent(t *testing.T, name, lcName string, beNames ...string) *Agent {
	t.Helper()
	models := fixtureModels(t)
	trace, err := workload.NewConstantTrace(0.5)
	if err != nil {
		t.Fatal(err)
	}
	var bes []*workload.Spec
	beModels := make(map[string]*utility.Model, len(beNames))
	for _, be := range beNames {
		bes = append(bes, spec(t, be))
		beModels[be] = models[be]
	}
	a, err := NewAgent(AgentConfig{
		Name:         name,
		Machine:      machine.XeonE52650(),
		LC:           spec(t, lcName),
		LCModel:      models[lcName],
		BECandidates: bes,
		BEModels:     beModels,
		Trace:        trace,
		SimTick:      100 * time.Millisecond,
		RealTick:     time.Millisecond,
		Seed:         11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// advance drives the agent's simulation forward deterministically without
// the pacing goroutine.
func advance(t *testing.T, a *Agent, d time.Duration) {
	t.Helper()
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.engine.Run(d); err != nil {
		t.Fatal(err)
	}
}

// serveAgent exposes an agent on a loopback httptest server.
func serveAgent(t *testing.T, a *Agent) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(a.Handler())
	t.Cleanup(srv.Close)
	return srv
}
