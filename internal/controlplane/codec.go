package controlplane

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// This file is the streaming transport's wire format: a compact,
// versioned binary heartbeat frame an agent pushes to the controller
// instead of being polled. Two frame shapes share one header:
//
//	magic(1) version(1) flags(1)
//	agent name: uvarint length + bytes
//	seq:        uvarint (per-agent, strictly increasing)
//	epoch:      uvarint (bumped on every assignment change the agent applies)
//
// A FULL frame (flags&hbFlagFull) then carries the agent's advertised
// callback URL and its complete StatsResponse as a length-prefixed JSON
// blob — the resync point that (re)establishes shared state after
// connect, loss, or version skew. A DELTA frame instead carries the seq
// it applies on top of, a field mask, and only the masked fields: floats
// as 8-byte little-endian IEEE-754 bits (bit-exact reconstruction),
// counters as uvarints, strings length-prefixed. Steady-state deltas are
// ~20–60 bytes against the multi-kilobyte JSON snapshot a poll fetches.
//
// Loss handling is sender-driven and receiver-checked: the sender treats
// a missing or resync-flagged ack as loss and promotes its next frame to
// a full resync; the receiver independently refuses a delta whose base
// seq is not the last seq it applied and demands a resync in the ack, so
// a field-mask lie or reordered frame can corrupt nothing.

const (
	hbMagic = 0xB8
	// hbVersion is the version the encoder writes. v2 DEFLATE-compresses
	// a full frame's snapshot blob (raw length, then compressed length
	// and bytes) — at fleet scale the resync storm after a controller
	// restart is full frames from every agent at once, and the JSON
	// snapshot is the frame. The decoder still accepts v1 (raw blob)
	// so an upgraded controller drains not-yet-upgraded agents.
	hbVersion   = 2
	hbVersionV1 = 1
	hbFlagFull  = 0x01

	maxHeartbeatName = 256
	maxHeartbeatURL  = 512
	maxHeartbeatBlob = 1 << 20
)

// Heartbeat is one decoded frame. For full frames Stats is the complete
// snapshot; for delta frames only the fields selected by Mask are set.
type Heartbeat struct {
	Agent string
	// URL is the agent's advertised callback base URL (full frames only):
	// the controller binds the agent name to its configured slot by it.
	URL   string
	Seq   uint64
	Base  uint64 // delta frames: the seq this delta applies on top of
	Epoch uint64
	Full  bool
	Mask  uint64
	Stats StatsResponse
}

// HeartbeatAck is the controller's reply to one ingested frame. Resync
// asks the sender to promote its next frame to a full snapshot (the
// receiver lost sync: unknown agent, unexpected base, or restart).
// Reject means the frame itself was refused (malformed or misaddressed)
// and carries no seq progress.
type HeartbeatAck struct {
	Agent  string `json:"agent"`
	Seq    uint64 `json:"seq"`
	Resync bool   `json:"resync,omitempty"`
	Reject bool   `json:"reject,omitempty"`
}

// hbField wires one StatsResponse field into the delta mask. The four
// closures keep diffing, encoding, decoding, and applying structurally
// in sync: each is derived from the same accessor.
type hbField struct {
	name string
	eq   func(a, b *StatsResponse) bool
	enc  func(b []byte, s *StatsResponse) []byte
	dec  func(r *frameReader, s *StatsResponse) error
	cp   func(dst, src *StatsResponse)
}

func floatHBField(name string, get func(*StatsResponse) *float64) hbField {
	return hbField{
		name: name,
		eq:   func(a, b *StatsResponse) bool { return *get(a) == *get(b) },
		enc: func(b []byte, s *StatsResponse) []byte {
			return binary.LittleEndian.AppendUint64(b, math.Float64bits(*get(s)))
		},
		dec: func(r *frameReader, s *StatsResponse) error {
			v, err := r.float(name)
			if err != nil {
				return err
			}
			*get(s) = v
			return nil
		},
		cp: func(dst, src *StatsResponse) { *get(dst) = *get(src) },
	}
}

func intHBField(name string, get func(*StatsResponse) *int) hbField {
	return hbField{
		name: name,
		eq:   func(a, b *StatsResponse) bool { return *get(a) == *get(b) },
		enc: func(b []byte, s *StatsResponse) []byte {
			return binary.AppendUvarint(b, uint64(*get(s)))
		},
		dec: func(r *frameReader, s *StatsResponse) error {
			v, err := r.uvarint()
			if err != nil {
				return fmt.Errorf("field %s: %w", name, err)
			}
			if v > math.MaxInt32 {
				return fmt.Errorf("field %s: counter %d out of range", name, v)
			}
			*get(s) = int(v)
			return nil
		},
		cp: func(dst, src *StatsResponse) { *get(dst) = *get(src) },
	}
}

func stringHBField(name string, get func(*StatsResponse) *string) hbField {
	return hbField{
		name: name,
		eq:   func(a, b *StatsResponse) bool { return *get(a) == *get(b) },
		enc: func(b []byte, s *StatsResponse) []byte {
			v := *get(s)
			b = binary.AppendUvarint(b, uint64(len(v)))
			return append(b, v...)
		},
		dec: func(r *frameReader, s *StatsResponse) error {
			v, err := r.str(maxHeartbeatName)
			if err != nil {
				return fmt.Errorf("field %s: %w", name, err)
			}
			*get(s) = v
			return nil
		},
		cp: func(dst, src *StatsResponse) { *get(dst) = *get(src) },
	}
}

// hbFields is the delta field table; a field's mask bit is its index.
// Everything that moves tick to tick is here, so delta-fed controller
// state matches a poll except for the deep observability maps and
// fitted models, which refresh only on full frames (they are static or
// display-only: BEOpsBy, the model pointers, candidate lists).
// Appending a field is a compatible change (old receivers reject the
// unknown mask bit and demand a resync); reordering is not.
var hbFields = []hbField{
	floatHBField("power_w", func(s *StatsResponse) *float64 { return &s.PowerW }),
	floatHBField("slack", func(s *StatsResponse) *float64 { return &s.Slack }),
	floatHBField("cap_w", func(s *StatsResponse) *float64 { return &s.CapW }),
	floatHBField("offered_load", func(s *StatsResponse) *float64 { return &s.OfferedLoad }),
	floatHBField("p99_ms", func(s *StatsResponse) *float64 { return &s.P99Ms }),
	floatHBField("be_throughput", func(s *StatsResponse) *float64 { return &s.BEThroughput }),
	floatHBField("sim_sec", func(s *StatsResponse) *float64 { return &s.SimSec }),
	floatHBField("lc_ops", func(s *StatsResponse) *float64 { return &s.LCOps }),
	floatHBField("be_ops", func(s *StatsResponse) *float64 { return &s.BEOps }),
	stringHBField("assigned_be", func(s *StatsResponse) *string { return &s.AssignedBE }),
	intHBField("control_ticks", func(s *StatsResponse) *int { return &s.ControlTicks }),
	intHBField("cap_throttles", func(s *StatsResponse) *int { return &s.CapThrottles }),
	intHBField("cap_restores", func(s *StatsResponse) *int { return &s.CapRestores }),
	intHBField("planner_hits", func(s *StatsResponse) *int { return &s.PlannerHits }),
	intHBField("planner_warm", func(s *StatsResponse) *int { return &s.PlannerWarm }),
	intHBField("planner_fallbacks", func(s *StatsResponse) *int { return &s.PlannerFallbacks }),
	intHBField("be_throttles", func(s *StatsResponse) *int { return &s.BEThrottles }),
	intHBField("be_restores", func(s *StatsResponse) *int { return &s.BERestores }),
}

// hbMaskAll is every defined mask bit; frames carrying others are
// rejected as version skew.
var hbMaskAll = uint64(1)<<len(hbFields) - 1

// heartbeatMask diffs two snapshots into the delta mask.
func heartbeatMask(base, cur *StatsResponse) uint64 {
	var mask uint64
	for i := range hbFields {
		if !hbFields[i].eq(base, cur) {
			mask |= 1 << i
		}
	}
	return mask
}

// applyHeartbeatDelta copies a decoded delta's masked fields onto dst.
func applyHeartbeatDelta(dst *StatsResponse, hb *Heartbeat) {
	for i := range hbFields {
		if hb.Mask&(1<<i) != 0 {
			hbFields[i].cp(dst, &hb.Stats)
		}
	}
}

// EncodeHeartbeat serializes one frame. Callers normally go through a
// HeartbeatEncoder, which owns the seq/base bookkeeping.
func EncodeHeartbeat(hb *Heartbeat) ([]byte, error) {
	if hb.Agent == "" || len(hb.Agent) > maxHeartbeatName {
		return nil, fmt.Errorf("controlplane: heartbeat agent name length %d outside [1, %d]", len(hb.Agent), maxHeartbeatName)
	}
	flags := byte(0)
	if hb.Full {
		flags |= hbFlagFull
	}
	b := make([]byte, 0, 64)
	b = append(b, hbMagic, hbVersion, flags)
	b = binary.AppendUvarint(b, uint64(len(hb.Agent)))
	b = append(b, hb.Agent...)
	b = binary.AppendUvarint(b, hb.Seq)
	b = binary.AppendUvarint(b, hb.Epoch)
	if hb.Full {
		if len(hb.URL) > maxHeartbeatURL {
			return nil, fmt.Errorf("controlplane: heartbeat URL length %d exceeds %d", len(hb.URL), maxHeartbeatURL)
		}
		blob, err := json.Marshal(&hb.Stats)
		if err != nil {
			return nil, fmt.Errorf("controlplane: encoding heartbeat snapshot: %w", err)
		}
		if len(blob) > maxHeartbeatBlob {
			return nil, fmt.Errorf("controlplane: heartbeat snapshot %d bytes exceeds %d", len(blob), maxHeartbeatBlob)
		}
		b = binary.AppendUvarint(b, uint64(len(hb.URL)))
		b = append(b, hb.URL...)
		var comp bytes.Buffer
		zw, err := flate.NewWriter(&comp, flate.BestSpeed)
		if err != nil {
			return nil, fmt.Errorf("controlplane: compressing heartbeat snapshot: %w", err)
		}
		if _, err := zw.Write(blob); err != nil {
			return nil, fmt.Errorf("controlplane: compressing heartbeat snapshot: %w", err)
		}
		if err := zw.Close(); err != nil {
			return nil, fmt.Errorf("controlplane: compressing heartbeat snapshot: %w", err)
		}
		b = binary.AppendUvarint(b, uint64(len(blob)))
		b = binary.AppendUvarint(b, uint64(comp.Len()))
		b = append(b, comp.Bytes()...)
		return b, nil
	}
	if hb.Mask&^hbMaskAll != 0 {
		return nil, fmt.Errorf("controlplane: heartbeat mask %#x has undefined bits", hb.Mask)
	}
	b = binary.AppendUvarint(b, hb.Base)
	b = binary.AppendUvarint(b, hb.Mask)
	for i := range hbFields {
		if hb.Mask&(1<<i) != 0 {
			b = hbFields[i].enc(b, &hb.Stats)
		}
	}
	return b, nil
}

// DecodeHeartbeat parses and validates one frame. Every length is
// bounded, every float must be finite, trailing bytes are an error, and
// a full frame's embedded snapshot must agree with the header's agent
// name — a frame that decodes is internally consistent.
func DecodeHeartbeat(frame []byte) (*Heartbeat, error) {
	r := &frameReader{b: frame}
	magic, err := r.byte("magic")
	if err != nil {
		return nil, err
	}
	if magic != hbMagic {
		return nil, fmt.Errorf("controlplane: heartbeat magic %#x, want %#x", magic, hbMagic)
	}
	version, err := r.byte("version")
	if err != nil {
		return nil, err
	}
	if version != hbVersion && version != hbVersionV1 {
		return nil, fmt.Errorf("controlplane: heartbeat version %d, want %d or %d", version, hbVersionV1, hbVersion)
	}
	flags, err := r.byte("flags")
	if err != nil {
		return nil, err
	}
	if flags&^byte(hbFlagFull) != 0 {
		return nil, fmt.Errorf("controlplane: heartbeat flags %#x have undefined bits", flags)
	}
	hb := &Heartbeat{Full: flags&hbFlagFull != 0}
	if hb.Agent, err = r.str(maxHeartbeatName); err != nil {
		return nil, fmt.Errorf("controlplane: heartbeat agent: %w", err)
	}
	if hb.Agent == "" {
		return nil, fmt.Errorf("controlplane: heartbeat with empty agent name")
	}
	if hb.Seq, err = r.uvarint(); err != nil {
		return nil, fmt.Errorf("controlplane: heartbeat seq: %w", err)
	}
	if hb.Seq == 0 {
		return nil, fmt.Errorf("controlplane: heartbeat seq 0")
	}
	if hb.Epoch, err = r.uvarint(); err != nil {
		return nil, fmt.Errorf("controlplane: heartbeat epoch: %w", err)
	}
	if hb.Full {
		if hb.URL, err = r.str(maxHeartbeatURL); err != nil {
			return nil, fmt.Errorf("controlplane: heartbeat URL: %w", err)
		}
		n, err := r.uvarint()
		if err != nil {
			return nil, fmt.Errorf("controlplane: heartbeat snapshot length: %w", err)
		}
		if n > maxHeartbeatBlob {
			return nil, fmt.Errorf("controlplane: heartbeat snapshot %d bytes exceeds %d", n, maxHeartbeatBlob)
		}
		var blob []byte
		if version == hbVersionV1 {
			if blob, err = r.bytes(int(n), "snapshot"); err != nil {
				return nil, err
			}
		} else {
			cn, err := r.uvarint()
			if err != nil {
				return nil, fmt.Errorf("controlplane: heartbeat compressed length: %w", err)
			}
			if cn > maxHeartbeatBlob {
				return nil, fmt.Errorf("controlplane: heartbeat compressed snapshot %d bytes exceeds %d", cn, maxHeartbeatBlob)
			}
			comp, err := r.bytes(int(cn), "compressed snapshot")
			if err != nil {
				return nil, err
			}
			// Strict inflate: the stream must produce exactly the declared
			// raw length and consume exactly the declared compressed bytes —
			// a frame lying about either is rejected, not truncated.
			br := bytes.NewReader(comp)
			zr := flate.NewReader(br)
			blob, err = io.ReadAll(io.LimitReader(zr, int64(n)+1))
			if cerr := zr.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return nil, fmt.Errorf("controlplane: heartbeat snapshot inflate: %w", err)
			}
			if uint64(len(blob)) != n {
				return nil, fmt.Errorf("controlplane: heartbeat snapshot inflates to %d bytes, header says %d", len(blob), n)
			}
			if br.Len() != 0 {
				return nil, fmt.Errorf("controlplane: heartbeat compressed snapshot has %d trailing bytes", br.Len())
			}
		}
		if err := json.Unmarshal(blob, &hb.Stats); err != nil {
			return nil, fmt.Errorf("controlplane: heartbeat snapshot: %w", err)
		}
		if hb.Stats.Agent != hb.Agent {
			return nil, fmt.Errorf("controlplane: heartbeat header names %q but snapshot names %q", hb.Agent, hb.Stats.Agent)
		}
	} else {
		if hb.Base, err = r.uvarint(); err != nil {
			return nil, fmt.Errorf("controlplane: heartbeat base: %w", err)
		}
		if hb.Base >= hb.Seq {
			return nil, fmt.Errorf("controlplane: heartbeat base %d not before seq %d", hb.Base, hb.Seq)
		}
		if hb.Mask, err = r.uvarint(); err != nil {
			return nil, fmt.Errorf("controlplane: heartbeat mask: %w", err)
		}
		if hb.Mask&^hbMaskAll != 0 {
			return nil, fmt.Errorf("controlplane: heartbeat mask %#x has undefined bits", hb.Mask)
		}
		for i := range hbFields {
			if hb.Mask&(1<<i) != 0 {
				if err := hbFields[i].dec(r, &hb.Stats); err != nil {
					return nil, fmt.Errorf("controlplane: heartbeat %w", err)
				}
			}
		}
	}
	if r.off != len(r.b) {
		return nil, fmt.Errorf("controlplane: heartbeat has %d trailing bytes", len(r.b)-r.off)
	}
	return hb, nil
}

// HeartbeatEncoder is the sender half of the delta protocol: it owns the
// per-agent seq counter and the last acknowledged snapshot deltas are
// computed against. Not safe for concurrent use; each agent publisher
// owns one.
type HeartbeatEncoder struct {
	agent string
	url   string

	seq        uint64
	base       StatsResponse // last acked snapshot (valid when synced)
	baseSeq    uint64        // seq the acked base snapshot carried
	synced     bool
	pending    StatsResponse // snapshot sent as seq pendingSeq, awaiting ack
	pendingSeq uint64
	hasPending bool
}

// NewHeartbeatEncoder builds an encoder for one agent. url is the
// agent's advertised callback base URL, carried in every full frame so
// the controller can bind the name to its configured slot.
func NewHeartbeatEncoder(agent, url string) *HeartbeatEncoder {
	return &HeartbeatEncoder{agent: agent, url: url}
}

// Encode frames the given snapshot: a full resync frame when the
// encoder has no acknowledged base (first frame, after loss, or after a
// resync demand), otherwise a delta of only the fields that changed
// since the last acknowledged snapshot. The caller must deliver the
// frame and report the outcome via Ack (on a reply) or Resync (on
// loss); encoding alone never advances the delta base.
func (e *HeartbeatEncoder) Encode(stats StatsResponse, epoch uint64) ([]byte, error) {
	e.seq++
	hb := Heartbeat{Agent: e.agent, URL: e.url, Seq: e.seq, Epoch: epoch}
	if !e.synced {
		hb.Full = true
		hb.Stats = stats
	} else {
		// Deltas are always computed against the last acknowledged
		// snapshot, so the base is that snapshot's seq.
		hb.Base = e.baseSeq
		hb.Mask = heartbeatMask(&e.base, &stats)
		hb.Stats = stats
	}
	frame, err := EncodeHeartbeat(&hb)
	if err != nil {
		e.seq--
		return nil, err
	}
	e.pending = stats
	e.pendingSeq = e.seq
	e.hasPending = true
	return frame, nil
}

// Ack feeds a delivery acknowledgement back. A resync-flagged or
// rejected ack drops the base so the next frame is a full snapshot; an
// ack matching the in-flight frame promotes that frame's snapshot to
// the new delta base. A resync ack whose sequence is ahead of the
// encoder's is a receiver that already saw a previous incarnation of
// this sender (the encoder restarted and began counting from 1 again);
// the encoder adopts the watermark so its next full frame clears it.
func (e *HeartbeatEncoder) Ack(ack HeartbeatAck) {
	if ack.Resync || ack.Reject {
		if ack.Resync && ack.Seq > e.seq {
			e.seq = ack.Seq
		}
		e.synced = false
		e.hasPending = false
		return
	}
	if e.hasPending && ack.Seq == e.pendingSeq {
		e.base = e.pending
		e.baseSeq = e.pendingSeq
		e.synced = true
		e.hasPending = false
	}
}

// Resync drops the acknowledged base: the next frame will be a full
// snapshot. Senders call it when a frame goes unacknowledged (timeout,
// transport error, partition) — the receiver may or may not have
// applied the lost frame, so the shared base is unknown.
func (e *HeartbeatEncoder) Resync() {
	e.synced = false
	e.hasPending = false
}

// frameReader is a bounds-checked cursor over one frame.
type frameReader struct {
	b   []byte
	off int
}

func (r *frameReader) byte(what string) (byte, error) {
	if r.off >= len(r.b) {
		return 0, fmt.Errorf("controlplane: heartbeat truncated at %s", what)
	}
	v := r.b[r.off]
	r.off++
	return v, nil
}

func (r *frameReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("truncated or overlong uvarint")
	}
	r.off += n
	return v, nil
}

func (r *frameReader) bytes(n int, what string) ([]byte, error) {
	if n < 0 || r.off+n > len(r.b) {
		return nil, fmt.Errorf("controlplane: heartbeat truncated in %s", what)
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v, nil
}

func (r *frameReader) str(max int) (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(max) {
		return "", fmt.Errorf("string length %d exceeds %d", n, max)
	}
	b, err := r.bytes(int(n), "string")
	if err != nil {
		return "", fmt.Errorf("truncated string")
	}
	return string(b), nil
}

func (r *frameReader) float(name string) (float64, error) {
	if r.off+8 > len(r.b) {
		return 0, fmt.Errorf("field %s: truncated float", name)
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("field %s: non-finite value", name)
	}
	return v, nil
}
