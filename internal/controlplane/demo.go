package controlplane

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"pocolo/internal/machine"
	"pocolo/internal/obs"
	"pocolo/internal/profiler"
	"pocolo/internal/trace"
	"pocolo/internal/utility"
	"pocolo/internal/workload"
)

// StreamDemoConfig sizes an in-process demo cluster: N agents hosting
// the default catalog's LC apps round-robin, one best-effort replica per
// two agents, a per-pod power-budget tree, and the sharded solver —
// every subsystem of the control plane live in one process, under
// either transport.
type StreamDemoConfig struct {
	// Agents is the fleet size (default 64).
	Agents int
	// Transport is TransportStream (default) or TransportPoll.
	Transport string
	// PodSize is the shard/pod size (default 64).
	PodSize int
	// Rounds is how many controller rounds to run (default 12).
	Rounds int
	// Seed drives every stochastic input (default 1).
	Seed int64
	// Out, when non-nil, receives one block of decision lines per round —
	// placement, caps, and liveness counters in a transport-neutral,
	// deterministic format, so diffing a stream run against a poll run
	// proves the transports decide identically.
	Out io.Writer
	// Logf, when set, receives controller event logs.
	Logf func(format string, args ...any)
	// Obs, when non-nil, wires the demo controller's observability plane.
	// NewStreamDemo creates one implicitly when FlightDir is set, so
	// bundle captures always carry a metrics snapshot.
	Obs *obs.Registry
	// SlowRound, when positive, injects RoundDeadline+50ms of synthetic
	// latency into that round's measured duration (nothing sleeps — the
	// duration is fabricated, so seeded runs reproduce the slow round
	// byte-for-byte). Requires FlightDir to be observable.
	SlowRound int
	// RoundDeadline is the per-round latency SLO (default 100ms when
	// FlightDir or SlowRound is set; otherwise the controller default).
	RoundDeadline time.Duration
	// FlightDir, when non-empty, arms the flight recorder: any round
	// measured past RoundDeadline captures a bundle directory under it.
	FlightDir string
}

// RunStreamDemo builds the demo cluster and drives it through a
// faultless campaign: agents advance simulated time in lockstep, state
// flows over the configured transport, the sharded solver places one
// best-effort replica per two agents, and the budget tree re-divides a
// 90%-of-provisioned power budget every round. It returns the campaign
// report; report.Err() is nil on a fully converged run.
func RunStreamDemo(ctx context.Context, cfg StreamDemoConfig) (*CampaignReport, error) {
	camp, err := NewStreamDemo(cfg)
	if err != nil {
		return nil, err
	}
	return camp.Run(ctx)
}

// NewStreamDemo builds the demo campaign without running it, so callers
// (pocolo-top, tests) can reach the live controller via camp.Controller()
// while driving rounds themselves.
func NewStreamDemo(cfg StreamDemoConfig) (*Campaign, error) {
	if cfg.Agents <= 0 {
		cfg.Agents = 64
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 12
	}
	if cfg.Transport == "" {
		cfg.Transport = TransportStream
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	out := cfg.Out
	if out == nil {
		out = io.Discard
	}

	cat := workload.MustDefaults()
	lcs, bes := cat.LC(), cat.BE()
	platform := machine.XeonE52650()
	specs := append(append([]*workload.Spec{}, lcs...), bes...)
	models, err := profiler.FitAll(platform, specs, 7)
	if err != nil {
		return nil, fmt.Errorf("controlplane: fitting demo models: %w", err)
	}

	beModels := make(map[string]*utility.Model, len(bes))
	for _, be := range bes {
		beModels[be.Name] = models[be.Name]
	}
	agents := make([]AgentConfig, cfg.Agents)
	var provisioned float64
	for i := range agents {
		lc := lcs[i%len(lcs)]
		tr, err := workload.NewTwoPeakTrace(0.3, 0.5, 0.8, 20*time.Second)
		if err != nil {
			return nil, err
		}
		agents[i] = AgentConfig{
			Name:         fmt.Sprintf("agent-%04d", i),
			Machine:      platform,
			LC:           lc,
			LCModel:      models[lc.Name],
			BECandidates: bes,
			BEModels:     beModels,
			Trace:        tr,
			SimTick:      100 * time.Millisecond,
			Seed:         cfg.Seed + int64(i),
		}
		provisioned += lc.ProvisionedPowerW
	}

	// One best-effort replica per two agents: enough work that placement
	// is a real assignment problem, enough slack that every replica finds
	// a host.
	beNames := make([]string, cfg.Agents/2)
	for i := range beNames {
		beNames[i] = fmt.Sprintf("%s#%d", bes[i%len(bes)].Name, i/len(bes))
	}

	// The flight-recorder path needs a metrics registry (bundles embed an
	// obs snapshot), a round deadline to breach, and a controller tracer
	// so the bundle's event log is non-empty.
	reg := cfg.Obs
	var recorder *obs.FlightRecorder
	var ctlTrace *trace.Tracer
	var inject func(round int) time.Duration
	deadline := cfg.RoundDeadline
	if cfg.FlightDir != "" || cfg.SlowRound > 0 {
		if deadline <= 0 {
			deadline = 100 * time.Millisecond
		}
		if reg == nil {
			reg = obs.NewRegistry()
		}
	}
	if cfg.FlightDir != "" {
		recorder = obs.NewRecorder(obs.RecorderConfig{Dir: cfg.FlightDir})
		ctlTrace = trace.New("controller", 4096)
	}
	if cfg.SlowRound > 0 {
		slow, extra := cfg.SlowRound, deadline+50*time.Millisecond
		inject = func(round int) time.Duration {
			if round == slow {
				return extra
			}
			return 0
		}
	}

	camp, err := NewCampaign(CampaignConfig{
		Agents:             agents,
		BE:                 beNames,
		BudgetTree:         demoBudgetTree(agents, cfg.PodSize, provisioned),
		Duration:           time.Duration(cfg.Rounds) * time.Second,
		Heartbeat:          time.Second,
		DeadAfter:          2,
		Solver:             SolverSharded,
		Transport:          cfg.Transport,
		PodSize:            cfg.PodSize,
		Seed:               cfg.Seed,
		Logf:               cfg.Logf,
		ControllerTrace:    ctlTrace,
		Obs:                reg,
		RoundDeadline:      deadline,
		Recorder:           recorder,
		InjectRoundLatency: inject,
		OnRound: func(round int, st Status) {
			writeDemoRound(out, round, st)
		},
	})
	if err != nil {
		return nil, err
	}
	return camp, nil
}

// demoBudgetTree builds a per-pod budget tree spec over the demo agents:
// one internal node per pod of podSize agents, each bounding its pod at
// 90% of provisioned capacity, under a datacenter root. Pod boundaries
// match the sharded solver's contiguous pods, so budget domains and
// solve domains align the way racks align with pods in the paper's
// setting.
func demoBudgetTree(agents []AgentConfig, podSize int, provisionedW float64) string {
	if podSize <= 0 {
		podSize = 64
	}
	perAgent := provisionedW / float64(len(agents))
	var b strings.Builder
	fmt.Fprintf(&b, "dc:%.0f{", provisionedW*0.9)
	for p := 0; p*podSize < len(agents); p++ {
		lo, hi := p*podSize, (p+1)*podSize
		if hi > len(agents) {
			hi = len(agents)
		}
		if p > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "pod-%d:%.0f{", p, perAgent*float64(hi-lo)*0.9)
		for i := lo; i < hi; i++ {
			if i > lo {
				b.WriteByte(',')
			}
			b.WriteString(agents[i].Name)
		}
		b.WriteByte('}')
	}
	b.WriteByte('}')
	return b.String()
}

// writeDemoRound renders one round's decisions in a transport-neutral,
// deterministic format: counters, then the placement sorted by
// best-effort name, then the installed caps sorted by agent. Two runs
// that decide identically produce identical bytes.
func writeDemoRound(w io.Writer, round int, st Status) {
	alive := 0
	for _, a := range st.Agents {
		if a.Alive {
			alive++
		}
	}
	fmt.Fprintf(w, "round=%d alive=%d placed=%d unplaced=%d degraded=%t deaths=%d rejoins=%d\n",
		round, alive, len(st.Placement), len(st.Unplaced), st.Degraded, st.Deaths, st.Rejoins)
	for _, be := range sortedKeys(st.Placement) {
		fmt.Fprintf(w, "  place %s -> %s\n", be, st.Placement[be])
	}
	if st.Budget != nil {
		shares := make([]string, 0, len(st.Budget.Shares))
		for name := range st.Budget.Shares {
			shares = append(shares, name)
		}
		sort.Strings(shares)
		for _, name := range shares {
			fmt.Fprintf(w, "  cap %s = %.3f\n", name, st.Budget.Shares[name])
		}
	}
}
