package controlplane

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pocolo/internal/machine"
	"pocolo/internal/trace"
	"pocolo/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestAgentTraceEndpoint pages the full decision trace out of a live
// agent over /v1/trace and requires the paged stream to reproduce the
// ring exactly, validate against the event schema, and reject malformed
// cursors.
func TestAgentTraceEndpoint(t *testing.T) {
	a := newTestAgent(t, "agent-td", "img-dnn", "graph")
	if err := a.Assign("graph"); err != nil {
		t.Fatal(err)
	}
	if err := a.Advance(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	srv := serveAgent(t, a)

	getPage := func(since uint64, limit int) TraceResponse {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("%s%s?since=%d&limit=%d", srv.URL, RouteTrace, since, limit))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", RouteTrace, resp.Status)
		}
		var page TraceResponse
		if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
			t.Fatal(err)
		}
		return page
	}

	var paged []trace.Event
	since := uint64(0)
	for {
		page := getPage(since, 7)
		if page.Agent != "agent-td" {
			t.Fatalf("page agent = %q", page.Agent)
		}
		if len(page.Events) == 0 {
			break
		}
		if len(page.Events) > 7 {
			t.Fatalf("page of %d events exceeds limit 7", len(page.Events))
		}
		paged = append(paged, page.Events...)
		since = page.Next
	}
	direct := a.Tracer().Events()
	if len(direct) == 0 {
		t.Fatal("agent recorded no events")
	}
	if len(paged) != len(direct) {
		t.Fatalf("paged %d events, ring holds %d", len(paged), len(direct))
	}
	controls := 0
	for i, ev := range paged {
		if ev.Seq != direct[i].Seq || ev.Kind != direct[i].Kind || ev.TNS != direct[i].TNS {
			t.Fatalf("paged[%d] = %+v, ring holds %+v", i, ev, direct[i])
		}
		if ev.Kind == trace.KindControl {
			controls++
		}
	}
	if controls < 5 {
		t.Fatalf("%d control decisions over 5 simulated seconds, want one per control tick", controls)
	}
	if err := trace.Validate(paged); err != nil {
		t.Fatalf("paged trace fails validation: %v", err)
	}

	// A cursor past the end returns an empty page with the cursor held.
	if page := getPage(since, 7); len(page.Events) != 0 || page.Next != since {
		t.Fatalf("past-the-end page = %d events, next %d (cursor was %d)", len(page.Events), page.Next, since)
	}

	for _, bad := range []string{"?since=xyz", "?limit=0", "?limit=-2", "?limit=abc"} {
		resp, err := http.Get(srv.URL + RouteTrace + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET %s%s: %s, want 400", RouteTrace, bad, resp.Status)
		}
	}
}

// TestAgentTraceDisabled builds an agent with tracing off: the manager
// runs untraced and /v1/trace serves empty pages rather than erroring.
func TestAgentTraceDisabled(t *testing.T) {
	models := fixtureModels(t)
	loadTrace, err := workload.NewConstantTrace(0.5)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAgent(AgentConfig{
		Name:        "agent-off",
		Machine:     machine.XeonE52650(),
		LC:          spec(t, "img-dnn"),
		LCModel:     models["img-dnn"],
		Trace:       loadTrace,
		SimTick:     100 * time.Millisecond,
		Seed:        3,
		TraceEvents: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.Tracer() != nil {
		t.Fatal("TraceEvents < 0 should disable the tracer")
	}
	if err := a.Advance(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	a.handleTrace(rec, httptest.NewRequest(http.MethodGet, RouteTrace, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("disabled-trace GET = %d", rec.Code)
	}
	var page TraceResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
		t.Fatal(err)
	}
	if len(page.Events) != 0 || page.Dropped != 0 {
		t.Fatalf("disabled tracer served %d events, dropped %d", len(page.Events), page.Dropped)
	}
}

// TestMetricsExpositionLints drives a traced agent, scrapes /metrics, and
// lints the complete exposition — stats gauges and counters plus the
// tick-duration and slack histograms — then does the same for a
// controller exposition.
func TestMetricsExpositionLints(t *testing.T) {
	a := newTestAgent(t, "agent-lint", "img-dnn", "graph")
	if err := a.Assign("graph"); err != nil {
		t.Fatal(err)
	}
	if err := a.Advance(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	a.handleMetrics(rec, httptest.NewRequest(http.MethodGet, RouteMetrics, nil))
	body := rec.Body.String()
	if err := lintExposition(body); err != nil {
		t.Fatalf("agent exposition fails lint: %v\n%s", err, body)
	}
	for _, want := range []string{
		"pocolo_be_throttles_total",
		"pocolo_be_restores_total",
		`pocolo_planner_mode{agent="agent-lint",lc="img-dnn",mode="planner"} 1`,
		"# TYPE pocolo_tick_duration_seconds histogram",
		`phase="control_tick"`,
		"pocolo_tick_duration_seconds_bucket",
		"pocolo_lc_slack_ratio_distribution_bucket",
		`le="+Inf"`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("agent exposition lacks %q", want)
		}
	}

	srv := serveAgent(t, a)
	ctl, err := NewController(ControllerConfig{
		AgentURLs: []string{srv.URL},
		BE:        []string{"graph"},
		Heartbeat: 10 * time.Millisecond,
		Timeout:   2 * time.Second,
		Seed:      1,
		Trace:     trace.New("controller", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctl.Round(context.Background())
	rec = httptest.NewRecorder()
	ctl.MetricsHandler(rec, httptest.NewRequest(http.MethodGet, RouteMetrics, nil))
	body = rec.Body.String()
	if err := lintExposition(body); err != nil {
		t.Fatalf("controller exposition fails lint: %v\n%s", err, body)
	}
	for _, want := range []string{"pocolo_controller_solves_total", `phase="solve"`, `phase="build_matrix"`} {
		if !strings.Contains(body, want) {
			t.Errorf("controller exposition lacks %q", want)
		}
	}
}

// TestAgentMetricsGolden pins the exact exposition bytes for a synthetic
// snapshot with escaping-hostile label values. Regenerate with
// go test ./internal/controlplane -run Golden -update.
func TestAgentMetricsGolden(t *testing.T) {
	s := StatsResponse{
		Agent:             "node-\"1\"\\\ntail",
		LC:                "img-dnn",
		PeakLoad:          500,
		ProvisionedPowerW: 120,
		OfferedLoad:       250.5,
		Slack:             0.125,
		P99Ms:             3.25,
		PowerW:            96.5,
		CapW:              120,
		BEThroughput:      42.75,
		AssignedBE:        "graph",
		LCOps:             100000,
		BEOps:             2048,
		BEOpsBy:           map[string]float64{"graph": 2000, `we"ird\be`: 48},
		ControlTicks:      300,
		CapThrottles:      12,
		CapRestores:       9,
		PlannerHits:       250,
		PlannerWarm:       40,
		PlannerFallbacks:  10,
		BEThrottles:       11,
		BERestores:        8,
		PlannerOn:         true,
		SimSec:            300,
	}
	var buf bytes.Buffer
	if err := writeAgentMetrics(&buf, s); err != nil {
		t.Fatal(err)
	}
	if err := lintExposition(buf.String()); err != nil {
		t.Fatalf("golden exposition fails lint: %v", err)
	}
	golden := filepath.Join("testdata", "agent_metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestLintExpositionRejects feeds the linter the violations it exists to
// catch.
func TestLintExpositionRejects(t *testing.T) {
	histHeader := "# HELP pocolo_h h\n# TYPE pocolo_h histogram\n"
	cases := map[string]string{
		"sample before headers":    "pocolo_x 1\n",
		"missing TYPE":             "# HELP pocolo_x h\npocolo_x 1\n",
		"missing HELP":             "# TYPE pocolo_x gauge\npocolo_x 1\n",
		"counter without _total":   "# HELP pocolo_x h\n# TYPE pocolo_x counter\npocolo_x 1\n",
		"unknown type":             "# HELP pocolo_x h\n# TYPE pocolo_x countttter\npocolo_x 1\n",
		"duplicate HELP":           "# HELP pocolo_x h\n# HELP pocolo_x h\n",
		"bad escape":               "# HELP pocolo_x h\n# TYPE pocolo_x gauge\npocolo_x{a=\"\\q\"} 1\n",
		"unquoted label value":     "# HELP pocolo_x h\n# TYPE pocolo_x gauge\npocolo_x{a=b} 1\n",
		"unterminated label block": "# HELP pocolo_x h\n# TYPE pocolo_x gauge\npocolo_x{a=\"b\" 1\n",
		"bad label name":           "# HELP pocolo_x h\n# TYPE pocolo_x gauge\npocolo_x{9a=\"b\"} 1\n",
		"unparsable value":         "# HELP pocolo_x h\n# TYPE pocolo_x gauge\npocolo_x one\n",
		"sample outside family":    "# HELP pocolo_x h\n# TYPE pocolo_x gauge\npocolo_x 1\npocolo_y 2\n",
		"bucket without le":        histHeader + "pocolo_h_bucket{a=\"b\"} 1\npocolo_h_sum 1\npocolo_h_count 1\n",
		"decreasing buckets": histHeader +
			"pocolo_h_bucket{le=\"1\"} 5\npocolo_h_bucket{le=\"2\"} 3\npocolo_h_bucket{le=\"+Inf\"} 5\npocolo_h_sum 1\npocolo_h_count 5\n",
		"no +Inf bucket": histHeader +
			"pocolo_h_bucket{le=\"1\"} 5\npocolo_h_sum 1\npocolo_h_count 5\n",
		"+Inf != _count": histHeader +
			"pocolo_h_bucket{le=\"1\"} 3\npocolo_h_bucket{le=\"+Inf\"} 5\npocolo_h_sum 1\npocolo_h_count 4\n",
		"histogram without _count": histHeader +
			"pocolo_h_bucket{le=\"1\"} 3\npocolo_h_bucket{le=\"+Inf\"} 5\npocolo_h_sum 1\n",
		"equal le bounds": histHeader +
			"pocolo_h_bucket{le=\"1\"} 3\npocolo_h_bucket{le=\"1\"} 3\npocolo_h_bucket{le=\"+Inf\"} 5\npocolo_h_sum 1\npocolo_h_count 5\n",
		"descending le bounds": histHeader +
			"pocolo_h_bucket{le=\"2\"} 3\npocolo_h_bucket{le=\"1\"} 3\npocolo_h_bucket{le=\"+Inf\"} 5\npocolo_h_sum 1\npocolo_h_count 5\n",
		"descending le across label sets": histHeader +
			"pocolo_h_bucket{pod=\"a\",le=\"1\"} 1\npocolo_h_bucket{pod=\"a\",le=\"+Inf\"} 1\n" +
			"pocolo_h_sum{pod=\"a\"} 1\npocolo_h_count{pod=\"a\"} 1\n" +
			"pocolo_h_bucket{pod=\"b\",le=\"2\"} 1\npocolo_h_bucket{pod=\"b\",le=\"1\"} 1\npocolo_h_bucket{pod=\"b\",le=\"+Inf\"} 1\n" +
			"pocolo_h_sum{pod=\"b\"} 1\npocolo_h_count{pod=\"b\"} 1\n",
		"content after EOF": "# HELP pocolo_x h\n# TYPE pocolo_x gauge\npocolo_x 1\n# EOF\npocolo_x 2\n",
		"HELP after EOF":    "# HELP pocolo_x h\n# TYPE pocolo_x gauge\npocolo_x 1\n# EOF\n# HELP pocolo_y h\n",
	}
	for name, text := range cases {
		if err := lintExposition(text); err == nil {
			t.Errorf("%s: lint accepted\n%s", name, text)
		}
	}
	goods := map[string]string{
		"valid histogram": histHeader +
			"pocolo_h_bucket{le=\"1\"} 3\npocolo_h_bucket{le=\"+Inf\"} 5\npocolo_h_sum 1.5\npocolo_h_count 5\n",
		"EOF terminator": "# HELP pocolo_x h\n# TYPE pocolo_x gauge\npocolo_x 1\n# EOF\n",
		"per-label-set le ladders restart": histHeader +
			"pocolo_h_bucket{pod=\"a\",le=\"1\"} 1\npocolo_h_bucket{pod=\"a\",le=\"+Inf\"} 1\n" +
			"pocolo_h_sum{pod=\"a\"} 1\npocolo_h_count{pod=\"a\"} 1\n" +
			"pocolo_h_bucket{pod=\"b\",le=\"1\"} 1\npocolo_h_bucket{pod=\"b\",le=\"+Inf\"} 1\n" +
			"pocolo_h_sum{pod=\"b\"} 1\npocolo_h_count{pod=\"b\"} 1\n",
	}
	for name, text := range goods {
		if err := lintExposition(text); err != nil {
			t.Errorf("%s: lint rejected valid exposition: %v\n%s", name, err, text)
		}
	}
}

// TestControllerCollectTrace merges agent rings with the controller's own
// events over /v1/trace: the combined timeline must carry decisions from
// every host, pass schema validation (which also proves no event was
// fetched twice — duplicate sequence numbers fail it), and be stable
// across repeated collections.
func TestControllerCollectTrace(t *testing.T) {
	a1 := newTestAgent(t, "agent-1", "img-dnn", "graph", "lstm")
	a2 := newTestAgent(t, "agent-2", "sphinx", "graph", "lstm")
	s1, s2 := serveAgent(t, a1), serveAgent(t, a2)
	ctl, err := NewController(ControllerConfig{
		AgentURLs: []string{s1.URL, s2.URL},
		BE:        []string{"graph"},
		Heartbeat: 10 * time.Millisecond,
		Timeout:   2 * time.Second,
		Seed:      1,
		Trace:     trace.New("controller", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	ctl.Round(ctx)
	for i := 0; i < 3; i++ {
		if err := a1.Advance(2 * time.Second); err != nil {
			t.Fatal(err)
		}
		if err := a2.Advance(2 * time.Second); err != nil {
			t.Fatal(err)
		}
		ctl.Round(ctx)
	}

	events := ctl.CollectTrace(ctx)
	byHost := make(map[string]int)
	byKind := make(map[trace.Kind]int)
	for _, ev := range events {
		byHost[ev.Host]++
		byKind[ev.Kind]++
	}
	for _, host := range []string{"agent-1", "agent-2", "controller"} {
		if byHost[host] == 0 {
			t.Errorf("merged timeline has no events from %s (hosts: %v)", host, byHost)
		}
	}
	if byKind[trace.KindControl] == 0 || byKind[trace.KindPlacement] == 0 || byKind[trace.KindSolve] == 0 {
		t.Fatalf("merged timeline kind counts %v, want control, placement, and solve events", byKind)
	}
	if err := trace.Validate(events); err != nil {
		t.Fatalf("merged timeline fails validation: %v", err)
	}

	// Collecting again without new work must not duplicate agent events.
	again := ctl.CollectTrace(ctx)
	if err := trace.Validate(again); err != nil {
		t.Fatalf("re-collected timeline fails validation (duplicate fetch?): %v", err)
	}
	agentEvents := func(evs []trace.Event) int {
		n := 0
		for _, ev := range evs {
			if ev.Host != "controller" {
				n++
			}
		}
		return n
	}
	if agentEvents(again) != agentEvents(events) {
		t.Fatalf("agent events grew from %d to %d with no new work", agentEvents(events), agentEvents(again))
	}

	// The HTTP surface serves the same merged timeline.
	rec := httptest.NewRecorder()
	ctl.TraceHandler(rec, httptest.NewRequest(http.MethodGet, RouteTrace, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("TraceHandler = %d", rec.Code)
	}
	var page TraceResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
		t.Fatal(err)
	}
	if page.Agent != "controller" || len(page.Events) < len(events) {
		t.Fatalf("TraceHandler served %d events for %q, want >= %d for controller", len(page.Events), page.Agent, len(events))
	}
}

// TestCampaignTraceMatchesControllerLog is the fault-campaign decision
// audit: every migration and degradation line in the controller's log
// must have exactly one matching trace event, and the campaign must
// provoke at least one of each.
func TestCampaignTraceMatchesControllerLog(t *testing.T) {
	lcs := []string{"img-dnn", "sphinx", "xapian"}
	bes := []string{"graph", "lstm"}
	hb := time.Second
	tr := trace.New("controller", 0)
	var mu sync.Mutex
	migrated, degraded := 0, 0
	logf := func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		switch {
		case strings.HasPrefix(format, "migrated "):
			migrated++
		case strings.HasPrefix(format, "degraded: "):
			degraded++
		}
	}
	camp, err := NewCampaign(CampaignConfig{
		Agents: campaignAgentConfigs(t, lcs, bes),
		BE:     bes,
		Faults: []FaultEvent{
			// Solo crashes force a migration off whichever agents host BEs;
			// the simultaneous pair leaves a minority alive, forcing a
			// degradation.
			{At: 4 * hb, Agent: 0, Kind: FaultCrash, Duration: 3 * hb},
			{At: 12 * hb, Agent: 1, Kind: FaultCrash, Duration: 3 * hb},
			{At: 20 * hb, Agent: 2, Kind: FaultCrash, Duration: 3 * hb},
			{At: 28 * hb, Agent: 0, Kind: FaultCrash, Duration: 3 * hb},
			{At: 28 * hb, Agent: 1, Kind: FaultCrash, Duration: 3 * hb},
		},
		Duration:        40 * time.Second,
		Heartbeat:       hb,
		DeadAfter:       2,
		Seed:            7,
		Logf:            logf,
		ControllerTrace: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	report, err := camp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := report.Err(); err != nil {
		t.Fatal(err)
	}

	byKind := make(map[trace.Kind]int)
	for _, ev := range tr.Events() {
		byKind[ev.Kind]++
		if ev.Kind == trace.KindMigration {
			if ev.Place.BE == "" || ev.Place.From == "" || ev.Place.Node == "" || ev.Place.From == ev.Place.Node {
				t.Errorf("malformed migration event: %+v", ev.Place)
			}
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if migrated == 0 {
		t.Fatal("campaign provoked no migrations")
	}
	if degraded == 0 {
		t.Fatal("campaign provoked no degradations")
	}
	if byKind[trace.KindMigration] != migrated {
		t.Fatalf("%d migration events but %d migration log lines", byKind[trace.KindMigration], migrated)
	}
	if byKind[trace.KindDegradation] != degraded {
		t.Fatalf("%d degradation events but %d degradation log lines", byKind[trace.KindDegradation], degraded)
	}
	if err := trace.Validate(tr.Events()); err != nil {
		t.Fatalf("controller campaign trace fails validation: %v", err)
	}
}

// TestAgentTracePaginationAcrossWrap holds a /v1/trace cursor while the
// agent's small ring wraps and grows underneath: pages fetched before
// and after the wrap must never duplicate a sequence, must stay
// strictly ascending, and must resume at the oldest retained event once
// eviction has overtaken the cursor.
func TestAgentTracePaginationAcrossWrap(t *testing.T) {
	models := fixtureModels(t)
	loadTrace, err := workload.NewConstantTrace(0.5)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAgent(AgentConfig{
		Name:        "agent-wrap",
		Machine:     machine.XeonE52650(),
		LC:          spec(t, "img-dnn"),
		LCModel:     models["img-dnn"],
		Trace:       loadTrace,
		SimTick:     100 * time.Millisecond,
		Seed:        5,
		TraceEvents: 16, // below ringSeed: wraps after 16 control ticks
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := serveAgent(t, a)

	getPage := func(since uint64, limit int) TraceResponse {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("%s%s?since=%d&limit=%d", srv.URL, RouteTrace, since, limit))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", RouteTrace, resp.Status)
		}
		var page TraceResponse
		if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
			t.Fatal(err)
		}
		return page
	}

	// First page before any eviction.
	if err := a.Advance(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	var got []trace.Event
	page := getPage(0, 4)
	if len(page.Events) != 4 {
		t.Fatalf("first page = %d events", len(page.Events))
	}
	got = append(got, page.Events...)
	cursor := page.Next

	// Wrap the ring well past the held cursor, then drain.
	if err := a.Advance(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	for {
		page = getPage(cursor, 4)
		if len(page.Events) == 0 {
			if page.Next != cursor {
				t.Fatalf("empty page moved cursor %d -> %d", cursor, page.Next)
			}
			break
		}
		got = append(got, page.Events...)
		cursor = page.Next
	}
	if page.Dropped == 0 {
		t.Fatal("ring never wrapped; the test lost its subject")
	}
	for i := 1; i < len(got); i++ {
		if got[i].Seq <= got[i-1].Seq {
			t.Fatalf("paged seq %d after %d: duplicate or regression across wrap", got[i].Seq, got[i-1].Seq)
		}
	}
	// The drained tail must match the ring's retained suffix exactly.
	direct := a.Tracer().Events()
	if len(direct) != 16 {
		t.Fatalf("ring holds %d events, want capacity 16", len(direct))
	}
	tail := got[len(got)-16:]
	for i := range tail {
		if tail[i].Seq != direct[i].Seq {
			t.Fatalf("drained tail[%d] seq %d, ring holds %d", i, tail[i].Seq, direct[i].Seq)
		}
	}
}
