// Package controlplane networks the paper's two-level design: a per-server
// agent wraps one servermgr.Manager behind an HTTP/JSON API, and a cluster
// controller discovers agents from static configuration, polls their
// heartbeats, rebuilds the BE×LC performance matrix from reported stats,
// and re-solves placement with the internal/assign LP solver. The
// controller is failure-aware — per-request timeouts, capped exponential
// backoff with a retry budget, dead-after-K-misses detection — and migrates
// a dead server's best-effort work to the survivors, degrading to the
// last-known-good placement when the solver or a majority of agents are
// unreachable.
//
// Wire types live in this file. All endpoints speak JSON except GET
// /metrics, which emits Prometheus text exposition format (version 0.0.4).
package controlplane

import (
	"encoding/json"
	"fmt"
	"net/http"

	"pocolo/internal/machine"
	"pocolo/internal/trace"
	"pocolo/internal/utility"
)

// API routes served by an agent.
const (
	// RouteAssign (POST) places or evicts a best-effort app.
	RouteAssign = "/v1/assign"
	// RouteStats (GET) reports the agent's full state snapshot.
	RouteStats = "/v1/stats"
	// RouteHealthz (GET) is the liveness probe.
	RouteHealthz = "/v1/healthz"
	// RouteMetrics (GET) is the Prometheus text exposition.
	RouteMetrics = "/metrics"
	// RouteTrace (GET) pages through the agent's decision-trace ring with
	// ?since=SEQ&limit=N cursor pagination.
	RouteTrace = "/v1/trace"
	// RouteCap (POST) installs a cluster-budget power cap on the agent's
	// server manager.
	RouteCap = "/v1/cap"
	// RouteHeartbeat (POST) is served by the controller under the
	// streaming transport: agents push binary delta heartbeat frames
	// (codec.go) and receive a JSON HeartbeatAck.
	RouteHeartbeat = "/v1/heartbeat"
	// RouteTop (GET, controller) is the per-pod fleet rollup pocolo-top
	// renders: solve quantiles, staleness watermarks, budget headroom,
	// and SLO burn.
	RouteTop = "/v1/top"
)

// AssignRequest asks an agent to run a best-effort app (or, with an empty
// BE, to evict whatever is running and park the best-effort partition).
type AssignRequest struct {
	BE string `json:"be"`
}

// AssignResponse acknowledges an assignment change.
type AssignResponse struct {
	Agent      string `json:"agent"`
	AssignedBE string `json:"assigned_be"`
}

// CapRequest asks an agent to enforce a power cap (a budget reallocator
// assigning this server its share of a datacenter budget). Zero clears
// the override, returning the capper to the host's provisioned capacity.
type CapRequest struct {
	CapW float64 `json:"cap_w"`
}

// CapResponse acknowledges a cap change with the cap now enforced.
type CapResponse struct {
	Agent string  `json:"agent"`
	CapW  float64 `json:"cap_w"`
}

// HealthResponse is the liveness probe body.
type HealthResponse struct {
	OK        bool    `json:"ok"`
	Agent     string  `json:"agent"`
	SimSec    float64 `json:"sim_seconds"`
	Ticks     uint64  `json:"ticks"`
	UptimeSec float64 `json:"uptime_seconds"`
}

// StatsResponse is an agent's full state snapshot. It carries everything
// the controller needs to rebuild its performance matrix — the host's
// machine configuration, the LC application's operating envelope, and the
// fitted utility models — so the controller needs no application catalog
// of its own.
type StatsResponse struct {
	Agent   string         `json:"agent"`
	Machine machine.Config `json:"machine"`

	// LC application identity and envelope.
	LC                string  `json:"lc"`
	PeakLoad          float64 `json:"peak_load"`
	ProvisionedPowerW float64 `json:"provisioned_power_w"`

	// Live operating point.
	OfferedLoad  float64 `json:"offered_load_rps"`
	Slack        float64 `json:"slack"`
	P99Ms        float64 `json:"p99_ms"`
	PowerW       float64 `json:"power_w"`
	CapW         float64 `json:"cap_w"`
	BEThroughput float64 `json:"be_throughput_ops"`

	// Assignment state.
	AssignedBE   string   `json:"assigned_be"`
	BECandidates []string `json:"be_candidates"`

	// Cumulative counters.
	LCOps        float64            `json:"lc_ops_total"`
	BEOps        float64            `json:"be_ops_total"`
	BEOpsBy      map[string]float64 `json:"be_ops_by"`
	ControlTicks int                `json:"control_ticks"`
	CapThrottles int                `json:"cap_throttles"`
	CapRestores  int                `json:"cap_restores"`
	// Planner counters: how the manager's allocation lookups were served
	// (precomputed-plan lookups, warm-start cell reuses, exact-search
	// fallbacks). Hits+Warm+Fallbacks ≈ control ticks with load.
	PlannerHits      int `json:"planner_hits"`
	PlannerWarm      int `json:"planner_warm"`
	PlannerFallbacks int `json:"planner_fallbacks"`
	// Knob-movement counters: best-effort throttle/restore actions that
	// actually moved a frequency or duty-cycle knob (a capper intervention
	// with every knob already at its floor counts in CapThrottles but not
	// here).
	BEThrottles int `json:"be_throttles"`
	BERestores  int `json:"be_restores"`
	// PlannerOn reports whether allocation lookups go through the
	// precomputed planner (false = exact per-tick grid search).
	PlannerOn bool    `json:"planner_on"`
	SimSec    float64 `json:"sim_seconds"`

	// Fitted models, for the controller's matrix rebuild.
	LCModel  *utility.Model            `json:"lc_model,omitempty"`
	BEModels map[string]*utility.Model `json:"be_models,omitempty"`
}

// TraceResponse is one page of an agent's (or the controller's) decision
// trace. Next is the cursor to pass as ?since= for the following page; it
// only advances past events actually returned, so a client polling at its
// own pace never skips an event that is still in the ring. Dropped counts
// ring overwrites since startup — a gap the client can report.
type TraceResponse struct {
	Agent   string        `json:"agent"`
	Events  []trace.Event `json:"events"`
	Next    uint64        `json:"next"`
	Dropped uint64        `json:"dropped"`
}

// errorResponse is the JSON body of a non-2xx agent reply.
type errorResponse struct {
	Error string `json:"error"`
}

// writeJSON encodes v as the response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError sends a JSON error body.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}
