package controlplane

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"pocolo/internal/cluster"
	"pocolo/internal/obs"
	"pocolo/internal/parallel"
	"pocolo/internal/trace"
	"pocolo/internal/utility"
	"pocolo/internal/workload"
)

// Transport values for ControllerConfig.Transport.
const (
	// TransportPoll is the original pull model: the controller GETs every
	// agent's /v1/stats each round.
	TransportPoll = "poll"
	// TransportStream is the push model: agents send binary delta
	// heartbeats (POST /v1/heartbeat) that ingest into per-pod shards;
	// the round loop reads immutable pod snapshots without locking.
	TransportStream = "stream"
)

// SolverSharded selects the pod-sharded incremental assignment solver
// (cluster.NewSharded) instead of one cluster-wide matrix.
const SolverSharded = "sharded"

// ControllerConfig assembles the cluster controller.
type ControllerConfig struct {
	// AgentURLs lists the agents' base URLs (static discovery), e.g.
	// "http://127.0.0.1:7001"; required.
	AgentURLs []string
	// BE names the best-effort apps to keep placed across the cluster.
	BE []string
	// Heartbeat is the poll interval (default 1 s). Each round is jittered
	// by ±Jitter·Heartbeat so a fleet of controllers does not thunder.
	Heartbeat time.Duration
	// Timeout bounds each agent request (default Heartbeat/2).
	Timeout time.Duration
	// DeadAfter is K: an alive agent missing K consecutive heartbeats is
	// declared dead and its best-effort work is migrated (default 3).
	DeadAfter int
	// Retries is the per-probe retry budget within one round (default 1
	// retry, i.e. two attempts).
	Retries int
	// MaxBackoff caps the exponential probe backoff for dead agents
	// (default 16×Heartbeat).
	MaxBackoff time.Duration
	// Jitter is the relative heartbeat jitter in [0, 1) (default 0.2).
	Jitter float64
	// Solver selects the assignment solver: "lp" (default), "hungarian",
	// "exhaustive", or "sharded" (pod-decomposed incremental solves; see
	// PodSize).
	Solver string
	// Transport selects how agent state reaches the controller:
	// TransportPoll (default) or TransportStream.
	Transport string
	// PodSize is the number of agents per state shard under the streaming
	// transport, and the pod size of the "sharded" solver (default 64).
	PodSize int
	// BudgetTree, when non-empty, is a hierarchical budget-tree spec (see
	// tree.Parse) whose leaves name the agents. Each round the controller
	// re-divides every node's budget over the fleet's reported power draw
	// and pushes the per-agent shares over POST /v1/cap; SetBudget
	// mutates a node at runtime (brownout campaigns).
	BudgetTree string
	// ResolveEvery forces a periodic placement re-solve even without
	// membership changes, picking up drifting model reports (default 0:
	// re-solve only on membership changes).
	ResolveEvery time.Duration
	// Seed drives the heartbeat jitter.
	Seed int64
	// Logf, when set, receives controller event logs.
	Logf func(format string, args ...any)
	// Client overrides the HTTP client (tests); Timeout still applies
	// per request via context.
	Client *http.Client
	// Now overrides the clock used for liveness bookkeeping — dead-agent
	// probe backoff and periodic re-solve scheduling (default time.Now).
	// Deterministic drivers (the fault campaign) substitute a clock that
	// advances one heartbeat per round so backoff windows are measured in
	// rounds, not wall time.
	Now func() time.Time
	// Trace, when non-nil, records the controller's own decisions —
	// placements, migrations, degradations, and solve summaries — stamped
	// on the controller clock. CollectTrace merges it with the per-agent
	// traces fetched over /v1/trace into one cluster timeline.
	Trace *trace.Tracer
	// Obs, when non-nil, is the controller's metrics registry: round
	// latency, SLO burn, heartbeat ingest verdicts, per-pod solve latency
	// and staleness watermarks all land here and are appended to the
	// /metrics exposition. Nil disables the whole plane at one pointer
	// check per site.
	Obs *obs.Registry
	// RoundDeadline is the round-latency SLO target and the flight
	// recorder's trigger threshold (default Heartbeat).
	RoundDeadline time.Duration
	// StalenessLimit is the per-agent staleness SLO target under the
	// streaming transport (default DeadAfter × Heartbeat).
	StalenessLimit time.Duration
	// SLOBudget is the tolerated breach fraction for both objectives
	// (default 0.01 — see obs.Objective).
	SLOBudget float64
	// Recorder, when non-nil, captures a diagnostics bundle when a round
	// blows RoundDeadline (rate-limited on the controller clock).
	Recorder *obs.FlightRecorder
	// InjectRoundLatency, when non-nil, adds synthetic latency to round
	// r's measured duration before the deadline check — fault injection
	// for deterministic flight-recorder tests. Nothing sleeps.
	InjectRoundLatency func(round int) time.Duration
}

// agentState is the controller's view of one agent.
type agentState struct {
	url  string
	name string // reported identity; URL until first contact
	lc   string

	alive    bool
	everSeen bool
	misses   int
	backoff  time.Duration
	nextDue  time.Time
	lastErr  string
	last     StatsResponse
	// streamSeq is the heartbeat seq last folded into this state by the
	// streaming transport; a round that sees no higher published seq
	// counts a miss, mirroring a failed poll probe.
	streamSeq uint64
}

// AgentStatus is the exported per-agent view.
type AgentStatus struct {
	URL        string  `json:"url"`
	Name       string  `json:"name"`
	LC         string  `json:"lc"`
	Alive      bool    `json:"alive"`
	Misses     int     `json:"misses"`
	LastError  string  `json:"last_error,omitempty"`
	AssignedBE string  `json:"assigned_be"`
	Slack      float64 `json:"slack"`
	PowerW     float64 `json:"power_w"`
}

// Status is a snapshot of the controller's state.
type Status struct {
	Agents    []AgentStatus     `json:"agents"`
	Placement map[string]string `json:"placement"` // BE app → agent name
	Unplaced  []string          `json:"unplaced,omitempty"`
	Degraded  bool              `json:"degraded"`
	Rounds    int               `json:"rounds"`
	Solves    int               `json:"solves"`
	Deaths    int               `json:"deaths"`
	Rejoins   int               `json:"rejoins"`
	Budget    *BudgetStatus     `json:"budget,omitempty"`
}

// Controller polls agents, detects failures, and keeps the cluster's
// best-effort placement solved against the live membership.
type Controller struct {
	cfg    ControllerConfig
	client *http.Client
	rng    *rand.Rand
	logf   func(string, ...any)
	now    func() time.Time
	tracer *trace.Tracer
	stream *streamState // nil under the polling transport
	obs    *ctlObs      // nil without a metrics registry
	// roundDeadline is the resolved RoundDeadline (never zero when obs or
	// the recorder is wired).
	roundDeadline time.Duration

	mu        sync.Mutex
	agents    []*agentState
	cursors   map[string]uint64 // agent URL → /v1/trace since-cursor
	collected []trace.Event     // agent events fetched by CollectTrace
	placement map[string]string // BE → agent URL
	lastGood  map[string]string
	unplaced  []string
	degraded  bool
	lastSolve time.Time
	rounds    int
	solves    int
	deaths    int
	rejoins   int
	budget    *budgetState // nil when unbudgeted
}

// NewController validates the configuration and builds a controller.
func NewController(cfg ControllerConfig) (*Controller, error) {
	if len(cfg.AgentURLs) == 0 {
		return nil, errors.New("controlplane: controller needs at least one agent URL")
	}
	seen := make(map[string]bool, len(cfg.AgentURLs))
	for _, u := range cfg.AgentURLs {
		if u == "" {
			return nil, errors.New("controlplane: empty agent URL")
		}
		if seen[u] {
			return nil, fmt.Errorf("controlplane: duplicate agent URL %s", u)
		}
		seen[u] = true
	}
	if cfg.Heartbeat == 0 {
		cfg.Heartbeat = time.Second
	}
	if cfg.Heartbeat < 0 {
		return nil, errors.New("controlplane: heartbeat must be positive")
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = cfg.Heartbeat / 2
	}
	if cfg.DeadAfter == 0 {
		cfg.DeadAfter = 3
	}
	if cfg.DeadAfter < 1 {
		return nil, errors.New("controlplane: dead-after must be at least 1")
	}
	if cfg.Retries < 0 {
		return nil, errors.New("controlplane: retry budget must be non-negative")
	}
	if cfg.MaxBackoff == 0 {
		cfg.MaxBackoff = 16 * cfg.Heartbeat
	}
	if cfg.Jitter == 0 {
		cfg.Jitter = 0.2
	}
	if cfg.Jitter < 0 || cfg.Jitter >= 1 {
		return nil, fmt.Errorf("controlplane: jitter %v outside [0, 1)", cfg.Jitter)
	}
	if cfg.Solver == "" {
		cfg.Solver = "lp"
	}
	if cfg.Transport == "" {
		cfg.Transport = TransportPoll
	}
	if cfg.Transport != TransportPoll && cfg.Transport != TransportStream {
		return nil, fmt.Errorf("controlplane: unknown transport %q (want %q or %q)", cfg.Transport, TransportPoll, TransportStream)
	}
	if cfg.PodSize == 0 {
		cfg.PodSize = cluster.DefaultPodSize
	}
	if cfg.PodSize < 1 {
		return nil, errors.New("controlplane: pod size must be at least 1")
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	c := &Controller{
		cfg:     cfg,
		client:  client,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		logf:    logf,
		now:     now,
		tracer:  cfg.Trace,
		cursors: make(map[string]uint64, len(cfg.AgentURLs)),
	}
	for _, u := range cfg.AgentURLs {
		c.agents = append(c.agents, &agentState{url: u, name: u})
	}
	if cfg.Transport == TransportStream {
		c.stream = newStreamState(cfg.AgentURLs, cfg.PodSize)
	}
	if cfg.BudgetTree != "" {
		b, err := newBudgetState(cfg.BudgetTree)
		if err != nil {
			return nil, err
		}
		c.budget = b
	}
	c.roundDeadline = cfg.RoundDeadline
	if c.roundDeadline == 0 {
		c.roundDeadline = cfg.Heartbeat
	}
	staleLimit := cfg.StalenessLimit
	if staleLimit == 0 {
		staleLimit = time.Duration(cfg.DeadAfter) * cfg.Heartbeat
	}
	nPods := (len(cfg.AgentURLs) + cfg.PodSize - 1) / cfg.PodSize
	c.obs = newCtlObs(cfg.Obs, nPods, c.roundDeadline, staleLimit, cfg.SLOBudget)
	return c, nil
}

// Run polls until ctx is cancelled.
func (c *Controller) Run(ctx context.Context) error {
	for {
		c.Round(ctx)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(c.jitteredHeartbeat()):
		}
	}
}

// jitteredHeartbeat returns the next poll delay: Heartbeat ± Jitter.
func (c *Controller) jitteredHeartbeat() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	j := 1 + c.cfg.Jitter*(2*c.rng.Float64()-1)
	return time.Duration(float64(c.cfg.Heartbeat) * j)
}

// Round performs one heartbeat cycle: observe the fleet (poll probes or
// streamed snapshots), update liveness, re-solve placement if membership
// changed, compute the assignment and budget pushes under the lock, then
// execute every push through the bounded worker pool with the lock
// released. Only acknowledged pushes are recorded as agent state — a
// failed push is re-derived and retried next round — and no push can
// stall the round for longer than one request timeout, however many
// agents are slow. Exposed for deterministic tests; Run calls it on the
// jittered interval.
func (c *Controller) Round(ctx context.Context) {
	now := c.now()
	// Round timing is measured, not derived from the controller clock:
	// deterministic campaigns advance that clock one heartbeat per round
	// regardless of how long the round took.
	var start time.Time
	if c.obs != nil || c.cfg.Recorder != nil {
		start = time.Now()
	}

	var membershipChanged bool
	if c.stream != nil {
		c.mu.Lock()
		membershipChanged = c.streamObserveLocked(now)
	} else {
		results := c.pollProbe(ctx, now)
		c.mu.Lock()
		membershipChanged = c.applyProbesLocked(results, now)
	}
	c.rounds++
	round := c.rounds

	needResolve := membershipChanged ||
		(c.placement == nil && c.liveCountLocked() > 0) ||
		(c.cfg.ResolveEvery > 0 && now.Sub(c.lastSolve) >= c.cfg.ResolveEvery)
	if needResolve {
		c.resolveLocked(now)
	}
	pushes := append(c.assignPushesLocked(), c.budgetPushesLocked(now)...)
	c.mu.Unlock()

	if len(pushes) > 0 {
		acked := c.pushAll(ctx, pushes)
		c.mu.Lock()
		c.recordPushesLocked(pushes, acked)
		c.mu.Unlock()
	}
	if !start.IsZero() {
		c.observeRound(now, round, time.Since(start))
	}
}

// probeResult is one poll probe's outcome.
type probeResult struct {
	agent *agentState
	stats StatsResponse
	err   error
}

// pollProbe fans stats probes out to every due agent. Runs lock-free:
// the due set is snapshotted under the lock, the probes are not.
func (c *Controller) pollProbe(ctx context.Context, now time.Time) []probeResult {
	c.mu.Lock()
	due := make([]*agentState, 0, len(c.agents))
	for _, a := range c.agents {
		if a.alive || !a.nextDue.After(now) {
			due = append(due, a)
		}
	}
	c.mu.Unlock()

	results := make([]probeResult, len(due))
	var wg sync.WaitGroup
	for i, a := range due {
		wg.Add(1)
		go func(i int, a *agentState) {
			defer wg.Done()
			stats, err := c.probe(ctx, a.url)
			results[i] = probeResult{agent: a, stats: stats, err: err}
		}(i, a)
	}
	wg.Wait()
	return results
}

// applyProbesLocked folds poll probe results into the liveness state.
func (c *Controller) applyProbesLocked(results []probeResult, now time.Time) (membershipChanged bool) {
	for _, r := range results {
		a := r.agent
		if r.err != nil {
			a.lastErr = r.err.Error()
			a.misses++
			if a.alive && a.misses >= c.cfg.DeadAfter {
				a.alive = false
				c.deaths++
				membershipChanged = true
				c.logf("agent %s (%s) dead after %d missed heartbeats: %v", a.name, a.url, a.misses, r.err)
			}
			if !a.alive {
				// Capped exponential probe backoff for dead agents.
				if a.backoff == 0 {
					a.backoff = c.cfg.Heartbeat
				} else {
					a.backoff *= 2
				}
				if a.backoff > c.cfg.MaxBackoff {
					a.backoff = c.cfg.MaxBackoff
				}
				a.nextDue = now.Add(a.backoff)
			}
			continue
		}
		if !a.alive || !a.everSeen {
			membershipChanged = true
			if a.everSeen {
				c.rejoins++
				c.logf("agent %s (%s) rejoined", r.stats.Agent, a.url)
			} else {
				c.logf("agent %s (%s) discovered, lc=%s", r.stats.Agent, a.url, r.stats.LC)
			}
		}
		a.alive = true
		a.everSeen = true
		a.misses = 0
		a.backoff = 0
		a.nextDue = now
		a.lastErr = ""
		a.name = r.stats.Agent
		a.lc = r.stats.LC
		a.last = r.stats
	}
	return membershipChanged
}

// probe fetches an agent's stats with the per-request timeout, retrying up
// to the configured budget with short exponential spacing.
func (c *Controller) probe(ctx context.Context, baseURL string) (StatsResponse, error) {
	var lastErr error
	backoff := 10 * time.Millisecond
	if max := c.cfg.Timeout / 8; max > 0 && backoff > max {
		backoff = max
	}
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return StatsResponse{}, ctx.Err()
			case <-time.After(backoff):
			}
			backoff *= 2
		}
		var stats StatsResponse
		err := c.getJSON(ctx, baseURL+RouteStats, &stats)
		if err == nil {
			return stats, nil
		}
		lastErr = err
	}
	return StatsResponse{}, lastErr
}

// getJSON performs a GET with the configured timeout and decodes the body.
func (c *Controller) getJSON(ctx context.Context, url string, out any) error {
	ctx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("GET %s: %s: %s", url, resp.Status, bytes.TrimSpace(body))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// postAssign pushes an assignment to an agent.
func (c *Controller) postAssign(ctx context.Context, baseURL, be string) error {
	ctx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
	defer cancel()
	body, err := json.Marshal(AssignRequest{BE: be})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+RouteAssign, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("POST %s: %s: %s", baseURL+RouteAssign, resp.Status, bytes.TrimSpace(msg))
	}
	return nil
}

// liveCountLocked counts agents currently believed alive.
func (c *Controller) liveCountLocked() int {
	n := 0
	for _, a := range c.agents {
		if a.alive {
			n++
		}
	}
	return n
}

// resolveLocked rebuilds the performance matrix from the live agents'
// reported stats and re-solves the placement. On solver failure or when a
// majority of agents are unreachable it degrades to the last-known-good
// placement instead of churning assignments.
func (c *Controller) resolveLocked(now time.Time) {
	live := make([]*agentState, 0, len(c.agents))
	for _, a := range c.agents {
		if a.alive && a.last.LCModel != nil {
			live = append(live, a)
		}
	}
	if len(live) == 0 {
		c.degradeLocked(now, "no live agents")
		return
	}
	// Majority-unreachable guard: with most of the fleet dark the reports
	// left are too thin to trust a re-solve; hold the last placement.
	if c.lastGood != nil && 2*len(live) < len(c.agents) {
		c.degradeLocked(now, fmt.Sprintf("only %d/%d agents reachable", len(live), len(c.agents)))
		return
	}
	if len(c.cfg.BE) == 0 {
		c.placement = map[string]string{}
		c.lastGood = map[string]string{}
		c.unplaced = nil
		c.degraded = false
		c.lastSolve = now
		return
	}

	placement, unplaced, err := c.solve(live, now)
	if err != nil {
		c.degradeLocked(now, fmt.Sprintf("solve failed: %v", err))
		return
	}
	prev := c.placement
	c.placement = placement
	c.lastGood = clone(placement)
	c.unplaced = unplaced
	c.degraded = false
	c.lastSolve = now
	c.solves++
	c.logf("placement solved over %d agents: %v (unplaced %v)", len(live), placement, unplaced)
	c.tracePlacementLocked(now, prev, placement)
}

// tracePlacementLocked records one Placement event per newly placed
// best-effort app and one Migration event (plus a log line) per app that
// moved between agents, in sorted BE order for a deterministic timeline.
func (c *Controller) tracePlacementLocked(now time.Time, prev, next map[string]string) {
	if c.tracer == nil {
		return
	}
	names := make(map[string]string, len(c.agents))
	for _, a := range c.agents {
		names[a.url] = a.name
	}
	for _, be := range sortedKeys(next) {
		url := next[be]
		prevURL, had := prev[be]
		switch {
		case !had:
			c.tracer.Placement(now, trace.Placement{BE: be, Node: names[url], Reason: "solve"})
		case prevURL != url:
			c.logf("migrated %s: %s -> %s", be, names[prevURL], names[url])
			c.tracer.Migration(now, trace.Placement{BE: be, Node: names[url], From: names[prevURL], Reason: "re-solve"})
		}
	}
}

// degradeLocked keeps the last-known-good placement, restricted to agents
// that still exist, and flags degraded mode. The Degradation trace event
// fires on the transition only, matching the log line, so repeated
// degraded rounds do not flood the ring.
func (c *Controller) degradeLocked(now time.Time, reason string) {
	if !c.degraded {
		c.logf("degraded: %s; holding last-known-good placement", reason)
		c.tracer.Degradation(now, reason)
	}
	c.degraded = true
	if c.lastGood != nil {
		c.placement = clone(c.lastGood)
	}
}

// solve builds the BE×LC matrix from reported stats and runs the
// assignment solver. Servers are columns keyed by agent name; the minimal
// workload specs are reconstructed from the agents' reports, so the
// controller needs no local catalog. When there are more best-effort apps
// than live servers, the overflow (lowest best-case value first) is
// reported as unplaced.
func (c *Controller) solve(live []*agentState, now time.Time) (map[string]string, []string, error) {
	sort.Slice(live, func(i, j int) bool { return live[i].name < live[j].name })
	lcSpecs := make([]*workload.Spec, len(live))
	models := make(map[string]*utility.Model, len(live)+len(c.cfg.BE))
	byName := make(map[string]*agentState, len(live))
	for i, a := range live {
		if _, dup := byName[a.name]; dup {
			return nil, nil, fmt.Errorf("duplicate agent name %q", a.name)
		}
		byName[a.name] = a
		// The matrix builder only consumes the LC envelope (peak load and
		// provisioned power) plus the fitted model, all reported in stats.
		lcSpecs[i] = &workload.Spec{
			Name:              a.name,
			Class:             workload.LatencyCritical,
			PeakLoad:          a.last.PeakLoad,
			ProvisionedPowerW: a.last.ProvisionedPowerW,
		}
		models[a.name] = a.last.LCModel
	}
	beSpecs := make([]*workload.Spec, 0, len(c.cfg.BE))
	for _, be := range c.cfg.BE {
		var model *utility.Model
		for _, a := range live {
			// Replica instances ("graph#3") share the base app's model.
			if m, ok := a.last.BEModels[be]; ok && m != nil {
				model = m
				break
			}
			if m, ok := a.last.BEModels[baseBE(be)]; ok && m != nil {
				model = m
				break
			}
		}
		if model == nil {
			return nil, nil, fmt.Errorf("no live agent reports a model for best-effort app %q", be)
		}
		models[be] = model
		beSpecs = append(beSpecs, &workload.Spec{Name: be, Class: workload.BestEffort})
	}

	machine := live[0].last.Machine
	// The sharded solver decomposes the assignment into independent
	// PodSize-host pods with warm incremental solvers — the path that
	// keeps thousand-agent fleets solvable per round. It requires jobs to
	// fit the hosts; an overloaded fleet falls back to the whole-matrix
	// path, which trims the overflow.
	if c.cfg.Solver == SolverSharded && len(beSpecs) <= len(lcSpecs) {
		sh, err := cluster.NewSharded(cluster.MatrixConfig{
			Machine: machine,
			LC:      lcSpecs,
			BE:      beSpecs,
			Models:  models,
			Trace:   c.tracer,
			Now:     now,
			Obs:     c.cfg.Obs,
		}, cluster.ShardSettings{PodSize: c.cfg.PodSize})
		if err != nil {
			return nil, nil, err
		}
		byBE, _, err := sh.Solve(c.tracer, now)
		if err != nil {
			return nil, nil, err
		}
		placement := make(map[string]string, len(byBE))
		for be, agentName := range byBE {
			placement[be] = byName[agentName].url
		}
		return placement, nil, nil
	}
	mx, err := cluster.BuildMatrix(cluster.MatrixConfig{
		Machine: machine,
		LC:      lcSpecs,
		BE:      beSpecs,
		Models:  models,
		Trace:   c.tracer,
		Now:     now,
	})
	if err != nil {
		return nil, nil, err
	}

	// More BE apps than servers: keep the rows with the highest best-case
	// value, report the rest unplaced.
	var unplaced []string
	if len(mx.BENames) > len(mx.LCNames) {
		type rowVal struct {
			idx int
			max float64
		}
		rows := make([]rowVal, len(mx.BENames))
		for i, row := range mx.Value {
			best := 0.0
			for _, v := range row {
				if v > best {
					best = v
				}
			}
			rows[i] = rowVal{idx: i, max: best}
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].max > rows[j].max })
		keep := rows[:len(mx.LCNames)]
		sort.Slice(keep, func(i, j int) bool { return keep[i].idx < keep[j].idx })
		trimmed := &cluster.Matrix{LCNames: mx.LCNames}
		for _, r := range keep {
			trimmed.BENames = append(trimmed.BENames, mx.BENames[r.idx])
			trimmed.Value = append(trimmed.Value, mx.Value[r.idx])
		}
		for _, r := range rows[len(mx.LCNames):] {
			unplaced = append(unplaced, mx.BENames[r.idx])
		}
		sort.Strings(unplaced)
		mx = trimmed
	}

	solver := c.cfg.Solver
	if solver == SolverSharded {
		solver = "lp" // whole-matrix fallback when jobs exceed hosts
	}
	byBE, _, err := mx.SolveTraced(solver, c.tracer, now)
	if err != nil {
		return nil, nil, err
	}
	placement := make(map[string]string, len(byBE))
	for be, agentName := range byBE {
		placement[be] = byName[agentName].url
	}
	return placement, unplaced, nil
}

// pushKind discriminates the per-round agent RPCs.
type pushKind int

const (
	pushAssign pushKind = iota
	pushCap
)

// pendingPush is one agent RPC computed under the lock and executed
// outside it.
type pendingPush struct {
	kind      pushKind
	url, name string
	be        string  // pushAssign
	capW      float64 // pushCap
}

// assignPushesLocked derives the assignment pushes that drive each live
// agent toward the desired placement. Failures are retried on the next
// round: the desired state is re-derived every cycle, so a lost push
// self-heals.
func (c *Controller) assignPushesLocked() []pendingPush {
	if c.placement == nil {
		return nil
	}
	desired := make(map[string]string, len(c.agents)) // url → BE ("" = park)
	for _, a := range c.agents {
		if a.alive {
			desired[a.url] = ""
		}
	}
	for be, url := range c.placement {
		if _, live := desired[url]; live {
			desired[url] = be
		}
	}
	var pushes []pendingPush
	for _, a := range c.agents {
		if !a.alive {
			continue
		}
		want := desired[a.url]
		if a.last.AssignedBE != want {
			pushes = append(pushes, pendingPush{kind: pushAssign, url: a.url, name: a.name, be: want})
		}
	}
	return pushes
}

// maxPushWorkers caps the push pool. The floor of one worker per push
// (up to the cap) is deliberate: the pool must not degenerate to a
// single lane on GOMAXPROCS=1, where one slow agent would serialize
// every other agent's push behind its timeout.
const maxPushWorkers = 32

// pushAll executes the round's pushes through a bounded worker pool and
// reports which were acknowledged. Each RPC is bounded by the request
// timeout, so a stalled agent delays the round by at most one timeout —
// not one timeout per slow agent, as a serial push loop would. Log lines
// are emitted after the joins, in push order, so interleaving stays
// deterministic for log-capturing tests.
func (c *Controller) pushAll(ctx context.Context, pushes []pendingPush) []bool {
	acked := make([]bool, len(pushes))
	errs := make([]error, len(pushes))
	workers := len(pushes)
	if workers > maxPushWorkers {
		workers = maxPushWorkers
	}
	_ = parallel.ForEach(len(pushes), workers, func(i int) error {
		p := pushes[i]
		switch p.kind {
		case pushAssign:
			errs[i] = c.postAssign(ctx, p.url, p.be)
		case pushCap:
			errs[i] = c.postCap(ctx, p.url, p.capW)
		}
		acked[i] = errs[i] == nil
		return nil
	})
	for i, p := range pushes {
		switch p.kind {
		case pushAssign:
			if errs[i] != nil {
				c.logf("assign %q to %s (%s) failed: %v", p.be, p.name, p.url, errs[i])
			} else {
				c.logf("assigned %q to %s (%s)", p.be, p.name, p.url)
			}
		case pushCap:
			if errs[i] != nil {
				c.logf("cap %.1fW to %s (%s) failed: %v", p.capW, p.name, p.url, errs[i])
			}
		}
	}
	return acked
}

// recordPushesLocked folds acknowledged pushes back into the agents'
// last-known state so the next round does not re-push before a fresh
// report refreshes the truth. Only acknowledged pushes are recorded —
// recording a failed push would mask the divergence until the agent
// happened to report again, leaving the fleet out of step with the
// controller's book.
func (c *Controller) recordPushesLocked(pushes []pendingPush, acked []bool) {
	for i, p := range pushes {
		if !acked[i] {
			continue
		}
		for _, a := range c.agents {
			if a.url != p.url || !a.alive {
				continue
			}
			switch p.kind {
			case pushAssign:
				a.last.AssignedBE = p.be
			case pushCap:
				a.last.CapW = p.capW
			}
		}
	}
}

// Status returns a snapshot of the controller state.
func (c *Controller) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Status{
		Placement: make(map[string]string, len(c.placement)),
		Unplaced:  append([]string(nil), c.unplaced...),
		Degraded:  c.degraded,
		Rounds:    c.rounds,
		Solves:    c.solves,
		Deaths:    c.deaths,
		Rejoins:   c.rejoins,
		Budget:    c.budgetStatusLocked(),
	}
	urlToName := make(map[string]string, len(c.agents))
	for _, a := range c.agents {
		urlToName[a.url] = a.name
		st.Agents = append(st.Agents, AgentStatus{
			URL:        a.url,
			Name:       a.name,
			LC:         a.lc,
			Alive:      a.alive,
			Misses:     a.misses,
			LastError:  a.lastErr,
			AssignedBE: a.last.AssignedBE,
			Slack:      a.last.Slack,
			PowerW:     a.last.PowerW,
		})
	}
	for be, url := range c.placement {
		st.Placement[be] = urlToName[url]
	}
	return st
}

// StatusHandler serves the controller's own state as JSON (GET /v1/status
// in cmd/pocolo-controller).
func (c *Controller) StatusHandler(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, http.StatusOK, c.Status())
}

// MetricsHandler serves the controller's own Prometheus exposition.
func (c *Controller) MetricsHandler(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	st := c.Status()
	if err := writeControllerMetrics(w, st); err != nil {
		return
	}
	if err := writeStreamMetrics(w, c.StreamStats()); err != nil {
		return
	}
	if err := writeBudgetMetrics(w, st.Budget); err != nil {
		return
	}
	if err := writeTraceMetrics(w, "controller", "", c.tracer); err != nil {
		return
	}
	if c.obs != nil {
		if err := obs.WriteProm(w, c.obs.reg.Snapshot()); err != nil {
			return
		}
	}
	_, _ = io.WriteString(w, "# EOF\n")
}

// maxCollectedEvents bounds the controller's accumulated cluster
// timeline; beyond it the oldest collected agent events are discarded
// (each agent's own ring still retains its recent window).
const maxCollectedEvents = 1 << 16

// Tracer returns the controller's own decision tracer (nil when tracing
// is disabled).
func (c *Controller) Tracer() *trace.Tracer { return c.tracer }

// CollectTrace fetches each live agent's new decision-trace events over
// /v1/trace — cursor-paged per agent, so repeated calls transfer only
// fresh events — folds them into the controller's accumulated cluster
// timeline, merges in the controller's own decision events, and returns
// the combined timeline in canonical (time, host, seq) order. Unreachable
// agents are skipped (their cursor does not advance, so nothing still in
// their ring is lost) and retried on the next call.
func (c *Controller) CollectTrace(ctx context.Context) []trace.Event {
	type target struct {
		url   string
		since uint64
	}
	c.mu.Lock()
	targets := make([]target, 0, len(c.agents))
	for _, a := range c.agents {
		if a.alive {
			targets = append(targets, target{url: a.url, since: c.cursors[a.url]})
		}
	}
	c.mu.Unlock()

	var fetched []trace.Event
	next := make(map[string]uint64, len(targets))
	for _, t := range targets {
		since := t.since
		for {
			var page TraceResponse
			url := fmt.Sprintf("%s%s?since=%d&limit=4096", t.url, RouteTrace, since)
			if err := c.getJSON(ctx, url, &page); err != nil {
				c.logf("trace fetch from %s failed: %v", t.url, err)
				break
			}
			fetched = append(fetched, page.Events...)
			if len(page.Events) == 0 || page.Next <= since {
				break
			}
			since = page.Next
		}
		next[t.url] = since
	}

	c.mu.Lock()
	for url, n := range next {
		if n > c.cursors[url] {
			c.cursors[url] = n
		}
	}
	c.collected = append(c.collected, fetched...)
	if len(c.collected) > maxCollectedEvents {
		c.collected = append([]trace.Event(nil), c.collected[len(c.collected)-maxCollectedEvents:]...)
	}
	out := make([]trace.Event, len(c.collected), len(c.collected)+c.tracer.Len())
	copy(out, c.collected)
	c.mu.Unlock()
	out = append(out, c.tracer.Events()...)
	trace.SortEvents(out)
	return out
}

// TraceHandler serves the merged cluster decision timeline (GET /v1/trace
// in cmd/pocolo-controller), refreshing from the live agents first.
func (c *Controller) TraceHandler(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	events := c.CollectTrace(r.Context())
	if events == nil {
		events = []trace.Event{}
	}
	writeJSON(w, http.StatusOK, TraceResponse{Agent: "controller", Events: events, Dropped: c.tracer.Dropped()})
}

// baseBE strips a replica suffix: "graph#3" → "graph". Replicated
// best-effort lists (cluster.RunReplicated's naming) let a fleet place
// one instance per agent while every instance shares the base app's
// fitted model and binary.
func baseBE(name string) string {
	if i := strings.IndexByte(name, '#'); i >= 0 {
		return name[:i]
	}
	return name
}

// clone copies a placement map.
func clone(m map[string]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
