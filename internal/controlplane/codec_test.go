package controlplane

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"

	"pocolo/internal/machine"
)

// codecStats builds a snapshot with every delta-able field non-zero so
// round-trips cannot pass by luck of the zero value.
func codecStats() StatsResponse {
	return StatsResponse{
		Agent:             "agent-a",
		Machine:           machine.XeonE52650(),
		LC:                "xapian",
		PeakLoad:          90,
		ProvisionedPowerW: 200,
		OfferedLoad:       41.5,
		Slack:             0.31,
		P99Ms:             4.2,
		PowerW:            133.25,
		CapW:              150,
		BEThroughput:      812.5,
		AssignedBE:        "graph",
		BECandidates:      []string{"graph", "lstm"},
		LCOps:             123456,
		BEOps:             7890,
		BEOpsBy:           map[string]float64{"graph": 7890},
		ControlTicks:      4000,
		CapThrottles:      7,
		CapRestores:       5,
		PlannerHits:       3900,
		PlannerWarm:       80,
		PlannerFallbacks:  20,
		BEThrottles:       6,
		BERestores:        4,
		PlannerOn:         true,
		SimSec:            400,
	}
}

// statsJSON canonicalizes a snapshot for bit-identical comparison.
func statsJSON(t *testing.T, s *StatsResponse) string {
	t.Helper()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(b)
}

func TestHeartbeatFullRoundTrip(t *testing.T) {
	in := Heartbeat{Agent: "agent-a", URL: "http://agent-a", Seq: 7, Epoch: 3, Full: true, Stats: codecStats()}
	frame, err := EncodeHeartbeat(&in)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	out, err := DecodeHeartbeat(frame)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !out.Full || out.Agent != "agent-a" || out.URL != "http://agent-a" || out.Seq != 7 || out.Epoch != 3 {
		t.Fatalf("header mismatch: %+v", out)
	}
	if got, want := statsJSON(t, &out.Stats), statsJSON(t, &in.Stats); got != want {
		t.Fatalf("snapshot not bit-identical:\n got %s\nwant %s", got, want)
	}
}

func TestHeartbeatDeltaRoundTrip(t *testing.T) {
	base := codecStats()
	cur := base
	cur.PowerW = 140.125
	cur.Slack = 0.27
	cur.AssignedBE = "lstm"
	cur.ControlTicks++
	mask := heartbeatMask(&base, &cur)
	if mask == 0 {
		t.Fatal("mask empty for changed snapshot")
	}
	in := Heartbeat{Agent: "agent-a", Seq: 8, Base: 7, Epoch: 4, Mask: mask, Stats: cur}
	frame, err := EncodeHeartbeat(&in)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if len(frame) > 80 {
		t.Fatalf("4-field delta frame is %d bytes; the compactness claim is broken", len(frame))
	}
	out, err := DecodeHeartbeat(frame)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out.Full || out.Base != 7 || out.Mask != mask {
		t.Fatalf("delta header mismatch: %+v", out)
	}
	got := base
	applyHeartbeatDelta(&got, out)
	if gotJSON, want := statsJSON(t, &got), statsJSON(t, &cur); gotJSON != want {
		t.Fatalf("delta apply diverged:\n got %s\nwant %s", gotJSON, want)
	}
}

// TestHeartbeatEncoderProtocol walks the sender state machine: full until
// acked, deltas against the acked base, resync demands and losses drop
// back to full frames.
func TestHeartbeatEncoderProtocol(t *testing.T) {
	enc := NewHeartbeatEncoder("agent-a", "http://agent-a")
	st := codecStats()

	decode := func(frame []byte) *Heartbeat {
		t.Helper()
		hb, err := DecodeHeartbeat(frame)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		return hb
	}

	// First frame is full; until it is acked, retries stay full.
	f1 := decode(mustEncode(t, enc, st, 1))
	if !f1.Full || f1.Seq != 1 {
		t.Fatalf("first frame not full seq 1: %+v", f1)
	}
	f2 := decode(mustEncode(t, enc, st, 1))
	if !f2.Full || f2.Seq != 2 {
		t.Fatalf("unacked retry not full seq 2: %+v", f2)
	}

	// After an ack, frames are deltas based on the acked seq.
	enc.Ack(HeartbeatAck{Agent: "agent-a", Seq: 2})
	st.PowerW++
	f3 := decode(mustEncode(t, enc, st, 1))
	if f3.Full || f3.Base != 2 || f3.Mask == 0 {
		t.Fatalf("post-ack frame not a delta on base 2: %+v", f3)
	}

	// A stale ack (not the in-flight seq) must not move the base.
	enc.Ack(HeartbeatAck{Agent: "agent-a", Seq: 1})
	st.PowerW++
	if f4 := decode(mustEncode(t, enc, st, 1)); f4.Full || f4.Base != 2 {
		t.Fatalf("stale ack moved the base: %+v", f4)
	}

	// A resync demand promotes the next frame to full.
	enc.Ack(HeartbeatAck{Agent: "agent-a", Seq: 4, Resync: true})
	if f5 := decode(mustEncode(t, enc, st, 1)); !f5.Full {
		t.Fatalf("resync demand did not promote to full: %+v", f5)
	}
	enc.Ack(HeartbeatAck{Agent: "agent-a", Seq: 5})

	// Loss (no ack at all) reported via Resync does the same.
	st.Slack++
	_ = mustEncode(t, enc, st, 1)
	enc.Resync()
	if f7 := decode(mustEncode(t, enc, st, 1)); !f7.Full {
		t.Fatalf("loss did not promote to full: %+v", f7)
	}

	// A reject ack too.
	enc.Ack(HeartbeatAck{Reject: true})
	if f8 := decode(mustEncode(t, enc, st, 1)); !f8.Full {
		t.Fatalf("reject did not promote to full: %+v", f8)
	}
}

func mustEncode(t *testing.T, enc *HeartbeatEncoder, st StatsResponse, epoch uint64) []byte {
	t.Helper()
	frame, err := enc.Encode(st, epoch)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return frame
}

// TestHeartbeatDecodeRejects feeds the decoder every class of malformed
// frame the fuzzer hunts for and demands a clean error, never a decode.
func TestHeartbeatDecodeRejects(t *testing.T) {
	goodFull, err := EncodeHeartbeat(&Heartbeat{Agent: "agent-a", URL: "http://a", Seq: 3, Epoch: 1, Full: true, Stats: StatsResponse{Agent: "agent-a"}})
	if err != nil {
		t.Fatal(err)
	}
	base := codecStats()
	cur := base
	cur.PowerW++
	goodDelta, err := EncodeHeartbeat(&Heartbeat{Agent: "agent-a", Seq: 4, Base: 3, Mask: heartbeatMask(&base, &cur), Stats: cur})
	if err != nil {
		t.Fatal(err)
	}

	mismatched, err := json.Marshal(&StatsResponse{Agent: "agent-b"})
	if err != nil {
		t.Fatal(err)
	}
	nameLie := []byte{hbMagic, hbVersion, hbFlagFull}
	nameLie = append(nameLie, 7)
	nameLie = append(nameLie, "agent-a"...)
	nameLie = append(nameLie, 3, 1) // seq, epoch
	nameLie = append(nameLie, 0)    // empty URL
	nameLie = binary.AppendUvarint(nameLie, uint64(len(mismatched)))
	nameLie = append(nameLie, mismatched...)

	nanDelta := []byte{hbMagic, hbVersion, 0}
	nanDelta = append(nanDelta, 1, 'a', 2, 1, 1) // name "a", seq 2, epoch 1, base 1
	nanDelta = binary.AppendUvarint(nanDelta, 1) // mask: power_w
	nanDelta = binary.LittleEndian.AppendUint64(nanDelta, math.Float64bits(math.NaN()))

	hugeCounter := []byte{hbMagic, hbVersion, 0}
	hugeCounter = append(hugeCounter, 1, 'a', 2, 1, 1)
	hugeCounter = binary.AppendUvarint(hugeCounter, 1<<10) // mask: control_ticks
	hugeCounter = binary.AppendUvarint(hugeCounter, math.MaxInt32+1)

	cases := []struct {
		name  string
		frame []byte
	}{
		{"empty", nil},
		{"bad magic", append([]byte{0x00}, goodFull[1:]...)},
		{"version skew", append([]byte{hbMagic, hbVersion + 1}, goodFull[2:]...)},
		{"undefined flags", append([]byte{hbMagic, hbVersion, 0x80}, goodFull[3:]...)},
		{"empty agent name", []byte{hbMagic, hbVersion, 0, 0}},
		{"truncated header", goodFull[:5]},
		{"truncated snapshot", goodFull[:len(goodFull)-3]},
		{"truncated delta fields", goodDelta[:len(goodDelta)-2]},
		{"trailing bytes", append(append([]byte{}, goodDelta...), 0xFF)},
		{"seq zero", []byte{hbMagic, hbVersion, 0, 1, 'a', 0}},
		{"base not before seq", []byte{hbMagic, hbVersion, 0, 1, 'a', 2, 1, 2, 0}},
		{"undefined mask bits", func() []byte {
			b := []byte{hbMagic, hbVersion, 0, 1, 'a', 2, 1, 1}
			return binary.AppendUvarint(b, hbMaskAll+1)
		}()},
		{"oversized name length", func() []byte {
			b := []byte{hbMagic, hbVersion, 0}
			return binary.AppendUvarint(b, maxHeartbeatName+1)
		}()},
		{"snapshot name mismatch", nameLie},
		{"non-finite float", nanDelta},
		{"counter overflow", hugeCounter},
	}
	for _, tc := range cases {
		if hb, err := DecodeHeartbeat(tc.frame); err == nil {
			t.Errorf("%s: decoded %+v, want error", tc.name, hb)
		}
	}
	// And the two seeds really are well-formed.
	if _, err := DecodeHeartbeat(goodFull); err != nil {
		t.Fatalf("good full frame rejected: %v", err)
	}
	if _, err := DecodeHeartbeat(goodDelta); err != nil {
		t.Fatalf("good delta frame rejected: %v", err)
	}
}

func TestEncodeHeartbeatRejects(t *testing.T) {
	if _, err := EncodeHeartbeat(&Heartbeat{Agent: ""}); err == nil {
		t.Error("empty agent name encoded")
	}
	if _, err := EncodeHeartbeat(&Heartbeat{Agent: strings.Repeat("a", maxHeartbeatName+1)}); err == nil {
		t.Error("oversized agent name encoded")
	}
	if _, err := EncodeHeartbeat(&Heartbeat{Agent: "a", Full: true, URL: strings.Repeat("u", maxHeartbeatURL+1)}); err == nil {
		t.Error("oversized URL encoded")
	}
	if _, err := EncodeHeartbeat(&Heartbeat{Agent: "a", Seq: 2, Base: 1, Mask: hbMaskAll + 1}); err == nil {
		t.Error("undefined mask bits encoded")
	}
}

// mutateStats flips a random subset of the delta-able fields. Floats get
// arbitrary finite values (bit-exactness matters, not plausibility).
func mutateStats(rng *rand.Rand, s *StatsResponse) {
	names := []string{"", "graph", "lstm", "pbzip", "rnn#3", strings.Repeat("x", 64)}
	for touched := 0; touched == 0; { // at least one field
		if rng.Intn(2) == 0 {
			touched++
			switch rng.Intn(9) {
			case 0:
				s.PowerW = rng.NormFloat64() * 100
			case 1:
				s.Slack = rng.NormFloat64()
			case 2:
				s.CapW = rng.NormFloat64() * 200
			case 3:
				s.OfferedLoad = rng.NormFloat64() * 50
			case 4:
				s.P99Ms = rng.NormFloat64() * 10
			case 5:
				s.BEThroughput = rng.NormFloat64() * 1000
			case 6:
				s.SimSec += rng.Float64()
			case 7:
				s.LCOps += float64(rng.Intn(1000))
			case 8:
				s.BEOps += float64(rng.Intn(1000))
			}
		}
		if rng.Intn(4) == 0 {
			touched++
			s.AssignedBE = names[rng.Intn(len(names))]
		}
		if rng.Intn(2) == 0 {
			touched++
			switch rng.Intn(8) {
			case 0:
				s.ControlTicks += rng.Intn(10)
			case 1:
				s.CapThrottles++
			case 2:
				s.CapRestores++
			case 3:
				s.PlannerHits += rng.Intn(5)
			case 4:
				s.PlannerWarm++
			case 5:
				s.PlannerFallbacks++
			case 6:
				s.BEThrottles++
			case 7:
				s.BERestores++
			}
		}
	}
}

// TestHeartbeatDeltaSequenceReconstructs is the protocol's property test:
// a random walk of snapshots streamed as deltas — with random frame loss
// forcing resyncs — leaves the receiver bit-identical to the sender after
// every applied frame.
func TestHeartbeatDeltaSequenceReconstructs(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		enc := NewHeartbeatEncoder("agent-a", "http://agent-a")
		var dec hbDecoder
		st := codecStats()
		applied, lost := 0, 0
		for step := 0; step < 200; step++ {
			mutateStats(rng, &st)
			frame, err := enc.Encode(st, uint64(step))
			if err != nil {
				t.Fatalf("seed %d step %d: encode: %v", seed, step, err)
			}
			if rng.Intn(5) == 0 { // frame lost in flight
				enc.Resync()
				lost++
				continue
			}
			hb, err := DecodeHeartbeat(frame)
			if err != nil {
				t.Fatalf("seed %d step %d: decode: %v", seed, step, err)
			}
			verdict := dec.apply(hb)
			ack := HeartbeatAck{Agent: hb.Agent, Seq: hb.Seq, Resync: verdict == hbResync}
			enc.Ack(ack)
			if verdict != hbApplied {
				continue
			}
			applied++
			if got, want := statsJSON(t, &dec.stats), statsJSON(t, &st); got != want {
				t.Fatalf("seed %d step %d: receiver diverged\n got %s\nwant %s", seed, step, got, want)
			}
		}
		if applied == 0 || lost == 0 {
			t.Fatalf("seed %d: degenerate run (applied=%d lost=%d)", seed, applied, lost)
		}
	}
}

// TestHeartbeatReplayAndReorder drives the receiver with duplicated and
// reordered frames: duplicates are stale, a delta on a stale base demands
// a resync, and state never regresses.
func TestHeartbeatReplayAndReorder(t *testing.T) {
	enc := NewHeartbeatEncoder("agent-a", "http://agent-a")
	var dec hbDecoder
	st := codecStats()

	full := mustEncode(t, enc, st, 1)
	hbFull, _ := DecodeHeartbeat(full)
	if v := dec.apply(hbFull); v != hbApplied {
		t.Fatalf("full frame verdict %v", v)
	}
	enc.Ack(HeartbeatAck{Agent: "agent-a", Seq: hbFull.Seq})

	st.PowerW = 99.5
	d1 := mustEncode(t, enc, st, 1)
	enc.Ack(HeartbeatAck{Agent: "agent-a", Seq: 2})
	st.PowerW = 101.25
	d2 := mustEncode(t, enc, st, 1)

	hb1, _ := DecodeHeartbeat(d1)
	hb2, _ := DecodeHeartbeat(d2)

	// Deliver out of order: d2's base (seq 2) has not applied yet.
	if v := dec.apply(hb2); v != hbResync {
		t.Fatalf("delta on unapplied base: verdict %v, want resync", v)
	}
	if v := dec.apply(hb1); v != hbApplied {
		t.Fatalf("in-order delta: verdict %v", v)
	}
	if dec.stats.PowerW != 99.5 {
		t.Fatalf("PowerW = %v after d1", dec.stats.PowerW)
	}
	// Replay the full frame: a seq-regressing full is indistinguishable
	// from a restarted sender, so it draws a resync demand — but state
	// must not move. A replayed delta is provably stale.
	if v := dec.apply(hbFull); v != hbResync {
		t.Fatalf("replayed full frame verdict %v, want resync", v)
	}
	if v := dec.apply(hb1); v != hbStale {
		t.Fatalf("replayed delta verdict %v, want stale", v)
	}
	if dec.stats.PowerW != 99.5 {
		t.Fatalf("replay moved state: PowerW = %v", dec.stats.PowerW)
	}
	// Now d2 applies cleanly on its true base.
	if v := dec.apply(hb2); v != hbApplied || dec.stats.PowerW != 101.25 {
		t.Fatalf("redelivered d2: verdict %v PowerW %v", v, dec.stats.PowerW)
	}
}

// TestHeartbeatSenderRestart drives the restart handshake: a fresh
// encoder (same agent, sequence numbers back at 1) meets a receiver
// holding the old incarnation's watermark. The first full frame draws a
// resync ack carrying the watermark, the encoder adopts it, and the
// second full frame applies — convergence in two heartbeats with no
// state rollback in between.
func TestHeartbeatSenderRestart(t *testing.T) {
	dec := &hbDecoder{}
	old := NewHeartbeatEncoder("agent-a", "http://agent-a:7001")
	st := codecStats()
	for i := 0; i < 5; i++ {
		st.PowerW = 100 + float64(i)
		hb, _ := DecodeHeartbeat(mustEncode(t, old, st, 1))
		if v := dec.apply(hb); v != hbApplied {
			t.Fatalf("frame %d verdict %v", i, v)
		}
		old.Ack(HeartbeatAck{Agent: "agent-a", Seq: hb.Seq})
	}
	if dec.seq != 5 {
		t.Fatalf("watermark %d, want 5", dec.seq)
	}

	fresh := NewHeartbeatEncoder("agent-a", "http://agent-a:7001")
	st.PowerW = 250
	hb, _ := DecodeHeartbeat(mustEncode(t, fresh, st, 2))
	if v := dec.apply(hb); v != hbResync {
		t.Fatalf("restarted sender's first full: verdict %v, want resync", v)
	}
	if dec.stats.PowerW == 250 {
		t.Fatal("seq-regressing full frame moved state")
	}
	fresh.Ack(HeartbeatAck{Agent: "agent-a", Seq: resyncSeq(hb.Seq, dec.seq), Resync: true})

	hb, _ = DecodeHeartbeat(mustEncode(t, fresh, st, 2))
	if hb.Seq <= 5 {
		t.Fatalf("encoder did not adopt the watermark: seq %d", hb.Seq)
	}
	if v := dec.apply(hb); v != hbApplied || dec.stats.PowerW != 250 {
		t.Fatalf("post-adoption full: verdict %v PowerW %v", v, dec.stats.PowerW)
	}
}

// TestHeartbeatDeltaSize pins the compactness claim: a steady-state
// delta (a handful of moved floats and counters) stays within tens of
// bytes while the equivalent full snapshot is kilobytes.
func TestHeartbeatDeltaSize(t *testing.T) {
	enc := NewHeartbeatEncoder("agent-0042", "http://10.0.0.42:7001")
	st := codecStats()
	full := mustEncode(t, enc, st, 1)
	enc.Ack(HeartbeatAck{Agent: "agent-0042", Seq: 1})
	st.PowerW += 1.5
	st.Slack -= 0.01
	st.SimSec++
	st.LCOps += 40
	st.ControlTicks += 10
	st.PlannerHits += 10
	delta := mustEncode(t, enc, st, 1)
	if len(delta) >= 100 {
		t.Fatalf("steady-state delta is %d bytes, want < 100", len(delta))
	}
	// Compression narrows the full/delta gap (the v1 raw frame was
	// >10x), but a delta must still be several times cheaper than even a
	// compressed resync.
	if len(full) < 5*len(delta) {
		t.Fatalf("full frame %dB not ≥5x delta %dB; delta encoding buys too little", len(full), len(delta))
	}
	if bytes.Equal(full[:3], delta[:3]) {
		t.Fatalf("full and delta share flag bytes: % x vs % x", full[:3], delta[:3])
	}
}

// encodeHeartbeatV1Full hand-builds a version-1 full frame (raw JSON
// snapshot, no compression) — the shape a not-yet-upgraded agent still
// sends and the v2 decoder must keep accepting.
func encodeHeartbeatV1Full(tb testing.TB, hb *Heartbeat) []byte {
	tb.Helper()
	blob, err := json.Marshal(&hb.Stats)
	if err != nil {
		tb.Fatal(err)
	}
	b := []byte{hbMagic, hbVersionV1, hbFlagFull}
	b = binary.AppendUvarint(b, uint64(len(hb.Agent)))
	b = append(b, hb.Agent...)
	b = binary.AppendUvarint(b, hb.Seq)
	b = binary.AppendUvarint(b, hb.Epoch)
	b = binary.AppendUvarint(b, uint64(len(hb.URL)))
	b = append(b, hb.URL...)
	b = binary.AppendUvarint(b, uint64(len(blob)))
	return append(b, blob...)
}

func TestHeartbeatCompressedFullRoundTrip(t *testing.T) {
	hb := &Heartbeat{
		Agent: "agent-a", URL: "http://agent-a:7001", Seq: 9, Epoch: 3,
		Full: true, Stats: codecStats(),
	}
	frame, err := EncodeHeartbeat(hb)
	if err != nil {
		t.Fatal(err)
	}
	if frame[1] != hbVersion {
		t.Fatalf("encoder wrote version %d, want %d", frame[1], hbVersion)
	}
	raw := encodeHeartbeatV1Full(t, hb)
	if len(frame) >= len(raw) {
		t.Errorf("compressed full frame %dB not smaller than raw v1 frame %dB", len(frame), len(raw))
	}
	got, err := DecodeHeartbeat(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.Agent != hb.Agent || got.URL != hb.URL || got.Seq != hb.Seq || got.Epoch != hb.Epoch || !got.Full {
		t.Fatalf("header fields mangled: %+v", got)
	}
	if statsJSON(t, &got.Stats) != statsJSON(t, &hb.Stats) {
		t.Fatal("snapshot not bit-identical through compressed round-trip")
	}
}

func TestHeartbeatV1FullDowngrade(t *testing.T) {
	hb := &Heartbeat{
		Agent: "agent-a", URL: "http://agent-a:7001", Seq: 2, Epoch: 1,
		Full: true, Stats: codecStats(),
	}
	got, err := DecodeHeartbeat(encodeHeartbeatV1Full(t, hb))
	if err != nil {
		t.Fatalf("v1 full frame rejected: %v", err)
	}
	if !got.Full || got.Agent != hb.Agent || got.URL != hb.URL {
		t.Fatalf("v1 decode mangled header: %+v", got)
	}
	if statsJSON(t, &got.Stats) != statsJSON(t, &hb.Stats) {
		t.Fatal("v1 snapshot not bit-identical")
	}
}

func TestHeartbeatCompressedRejects(t *testing.T) {
	hb := &Heartbeat{
		Agent: "agent-a", URL: "http://agent-a:7001", Seq: 5, Epoch: 2,
		Full: true, Stats: codecStats(),
	}
	frame, err := EncodeHeartbeat(hb)
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(f func(b []byte) []byte) []byte {
		return f(append([]byte(nil), frame...))
	}
	cases := map[string][]byte{
		"unknown version 3": mutate(func(b []byte) []byte { b[1] = 3; return b }),
		"corrupt compressed stream": mutate(func(b []byte) []byte {
			b[len(b)-1] ^= 0xFF
			return b
		}),
		"truncated compressed stream": mutate(func(b []byte) []byte { return b[:len(b)-4] }),
	}
	for name, f := range cases {
		if _, err := DecodeHeartbeat(f); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
	// A raw-length lie: re-point the declared inflated size one byte
	// short. The frame layout past the URL is rawLen, compLen, comp;
	// rebuild with rawLen-1.
	blob, err := json.Marshal(&hb.Stats)
	if err != nil {
		t.Fatal(err)
	}
	var comp bytes.Buffer
	zw, _ := flate.NewWriter(&comp, flate.BestSpeed)
	zw.Write(blob)
	zw.Close()
	lie := []byte{hbMagic, hbVersion, hbFlagFull}
	lie = binary.AppendUvarint(lie, uint64(len(hb.Agent)))
	lie = append(lie, hb.Agent...)
	lie = binary.AppendUvarint(lie, hb.Seq)
	lie = binary.AppendUvarint(lie, hb.Epoch)
	lie = binary.AppendUvarint(lie, uint64(len(hb.URL)))
	lie = append(lie, hb.URL...)
	lie = binary.AppendUvarint(lie, uint64(len(blob)-1))
	lie = binary.AppendUvarint(lie, uint64(comp.Len()))
	lie = append(lie, comp.Bytes()...)
	if _, err := DecodeHeartbeat(lie); err == nil {
		t.Error("raw-length lie decoded without error")
	}
	// Trailing garbage inside the compressed region (after the DEFLATE
	// final block) must be rejected even though the stream inflates.
	pad := []byte{hbMagic, hbVersion, hbFlagFull}
	pad = binary.AppendUvarint(pad, uint64(len(hb.Agent)))
	pad = append(pad, hb.Agent...)
	pad = binary.AppendUvarint(pad, hb.Seq)
	pad = binary.AppendUvarint(pad, hb.Epoch)
	pad = binary.AppendUvarint(pad, uint64(len(hb.URL)))
	pad = append(pad, hb.URL...)
	pad = binary.AppendUvarint(pad, uint64(len(blob)))
	pad = binary.AppendUvarint(pad, uint64(comp.Len()+2))
	pad = append(pad, comp.Bytes()...)
	pad = append(pad, 0xDE, 0xAD)
	if _, err := DecodeHeartbeat(pad); err == nil {
		t.Error("compressed trailing garbage decoded without error")
	}
}
