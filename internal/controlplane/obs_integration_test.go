package controlplane

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pocolo/internal/obs"
	"pocolo/internal/trace"
)

// TestObsExpositionGolden pins the exact exposition bytes obs.WriteProm
// produces for a synthetic registry with escaping-hostile label values,
// multi-series histogram families, and an OpenMetrics terminator, and
// requires the result to pass the control plane's linter. Regenerate
// with go test ./internal/controlplane -run Golden -update.
func TestObsExpositionGolden(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("pocolo_obs_heartbeat_frames_total", "Heartbeat frames by ingest verdict.",
		obs.Label{Key: "verdict", Value: "delta"}).Add(40)
	reg.Counter("pocolo_obs_heartbeat_frames_total", "Heartbeat frames by ingest verdict.",
		obs.Label{Key: "verdict", Value: "full"}).Add(2)
	reg.Gauge("pocolo_obs_budget_headroom_watts", "Installed budget share minus reported power draw per agent.",
		obs.Label{Key: "host", Value: "agent-\"0\"\\\ntail"}).Set(12.5)
	reg.Gauge("pocolo_obs_stream_staleness_seconds", "Max staleness per pod.",
		obs.Label{Key: "pod", Value: "pod-0"}).Set(1.25)
	for pod, observes := range map[string][]float64{
		"pod-0": {0.001, 0.002, 0.002, 0.008, 0.13},
		"pod-1": {0.004},
	} {
		h := reg.Histogram("pocolo_obs_pod_solve_seconds", "Wall-clock duration of per-pod batch re-solves.",
			obs.Label{Key: "pod", Value: pod})
		for _, v := range observes {
			h.Observe(v)
		}
	}

	var buf bytes.Buffer
	if err := obs.WriteProm(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("# EOF\n")
	if err := lintExposition(buf.String()); err != nil {
		t.Fatalf("obs exposition fails lint: %v", err)
	}

	golden := filepath.Join("testdata", "obs_metrics.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("obs exposition drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestControllerObsMetricsAndTop runs an observed demo campaign end to
// end, then requires (a) the controller's /metrics exposition to carry
// the obs families, pass the linter, and end with the OpenMetrics
// terminator, and (b) the /v1/top fleet view to be fully populated:
// per-pod solve quantiles, round quantiles, and agent rollups.
func TestControllerObsMetricsAndTop(t *testing.T) {
	reg := obs.NewRegistry()
	camp, err := NewStreamDemo(StreamDemoConfig{Agents: 32, PodSize: 16, Rounds: 6, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	report, err := camp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := report.Err(); err != nil {
		t.Fatalf("demo campaign did not converge: %v", err)
	}
	ctl := camp.Controller()

	rr := httptest.NewRecorder()
	ctl.MetricsHandler(rr, httptest.NewRequest(http.MethodGet, RouteMetrics, nil))
	text := rr.Body.String()
	if err := lintExposition(text); err != nil {
		t.Fatalf("observed controller exposition fails lint: %v\n%s", err, text)
	}
	if !strings.HasSuffix(text, "# EOF\n") {
		t.Fatalf("exposition does not end with the OpenMetrics terminator:\n...%s", text[max(0, len(text)-120):])
	}
	for _, want := range []string{
		"# TYPE pocolo_obs_round_seconds histogram",
		"pocolo_obs_round_seconds_count",
		`pocolo_obs_pod_solve_seconds_bucket{pod="pod-0",le=`,
		`pocolo_obs_pod_solve_seconds_bucket{pod="pod-1",le=`,
		`pocolo_obs_heartbeat_frames_total{verdict="delta"}`,
		`pocolo_obs_heartbeat_frames_total{verdict="full"}`,
		`pocolo_obs_slo_burn{slo="round"}`,
		`pocolo_obs_slo_burn{slo="staleness"}`,
		`pocolo_obs_stream_staleness_seconds{pod="pod-0"}`,
		"pocolo_obs_budget_headroom_watts",
		"pocolo_obs_budget_rebalance_seconds_count",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("observed exposition missing %q", want)
		}
	}

	top := ctl.Top()
	if top.Transport != TransportStream {
		t.Fatalf("top.Transport = %q", top.Transport)
	}
	if top.Rounds < 6 {
		t.Fatalf("top.Rounds = %d, want >= 6", top.Rounds)
	}
	if top.RoundP99Ms <= 0 || top.RoundP99Ms < top.RoundP50Ms {
		t.Fatalf("round quantiles p50=%.3f p99=%.3f", top.RoundP50Ms, top.RoundP99Ms)
	}
	if len(top.Pods) != 2 {
		t.Fatalf("top has %d pods, want 2", len(top.Pods))
	}
	for _, p := range top.Pods {
		if p.Agents != 16 || p.Alive != 16 {
			t.Errorf("pod %s: agents=%d alive=%d, want 16/16", p.Pod, p.Agents, p.Alive)
		}
		if p.SolveP50Ms <= 0 || p.SolveP99Ms < p.SolveP50Ms {
			t.Errorf("pod %s: solve quantiles p50=%.3f p99=%.3f", p.Pod, p.SolveP50Ms, p.SolveP99Ms)
		}
	}

	// The JSON handler serves the same snapshot.
	rr = httptest.NewRecorder()
	ctl.TopHandler(rr, httptest.NewRequest(http.MethodGet, RouteTop, nil))
	var viaHTTP TopSnapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &viaHTTP); err != nil {
		t.Fatalf("decoding /v1/top: %v", err)
	}
	if len(viaHTTP.Pods) != len(top.Pods) || viaHTTP.Transport != top.Transport {
		t.Fatalf("/v1/top disagrees with Top(): %+v vs %+v", viaHTTP, top)
	}
}

// TestStreamDemoFlightBundle breaches the round deadline once with
// injected latency and requires exactly one flight bundle whose parts
// all parse and cross-check, and whose event log is byte-identical
// across two runs of the same seed — the recorder's determinism
// contract (only meta.json's wall_ns field may differ).
func TestStreamDemoFlightBundle(t *testing.T) {
	run := func(dir string) {
		report, err := RunStreamDemo(context.Background(), StreamDemoConfig{
			Agents: 16, PodSize: 8, Rounds: 8, Seed: 7,
			SlowRound: 5, FlightDir: dir,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := report.Err(); err != nil {
			t.Fatalf("campaign with injected latency did not converge: %v", err)
		}
	}
	bundles := func(dir string) []string {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		return names
	}

	dir1, dir2 := t.TempDir(), t.TempDir()
	run(dir1)
	run(dir2)
	n1, n2 := bundles(dir1), bundles(dir2)
	if len(n1) != 1 || len(n2) != 1 {
		t.Fatalf("want exactly one bundle per run, got %v and %v", n1, n2)
	}
	if n1[0] != n2[0] {
		t.Fatalf("bundle names differ across seeded runs: %q vs %q (name must be wall-clock free)", n1[0], n2[0])
	}

	b := filepath.Join(dir1, n1[0])
	metaBytes, err := os.ReadFile(filepath.Join(b, "meta.json"))
	if err != nil {
		t.Fatal(err)
	}
	var meta obs.BundleMeta
	if err := json.Unmarshal(metaBytes, &meta); err != nil {
		t.Fatalf("meta.json: %v", err)
	}
	if meta.Reason != "round-deadline" {
		t.Fatalf("meta.Reason = %q", meta.Reason)
	}
	if round, _ := meta.Detail["round"].(float64); int(round) != 5 {
		t.Fatalf("meta.Detail[round] = %v, want 5", meta.Detail["round"])
	}

	evBytes, err := os.ReadFile(filepath.Join(b, "events.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	events, err := trace.ParseJSONL(bytes.NewReader(evBytes))
	if err != nil {
		t.Fatalf("events.jsonl: %v", err)
	}
	if err := trace.Validate(events); err != nil {
		t.Fatalf("bundle events invalid: %v", err)
	}
	if len(events) == 0 || len(events) != meta.Events {
		t.Fatalf("bundle has %d events, meta says %d", len(events), meta.Events)
	}

	obsBytes, err := os.ReadFile(filepath.Join(b, "obs.json"))
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(obsBytes, &snap); err != nil {
		t.Fatalf("obs.json: %v", err)
	}
	if len(snap.Counters) == 0 || len(snap.Histograms) == 0 {
		t.Fatalf("obs.json snapshot empty: %d counters, %d histograms", len(snap.Counters), len(snap.Histograms))
	}

	podBytes, err := os.ReadFile(filepath.Join(b, "pods.json"))
	if err != nil {
		t.Fatal(err)
	}
	var pods []struct {
		Agent string `json:"agent"`
		Pod   string `json:"pod"`
		Alive bool   `json:"alive"`
	}
	if err := json.Unmarshal(podBytes, &pods); err != nil {
		t.Fatalf("pods.json: %v", err)
	}
	if len(pods) != 16 {
		t.Fatalf("pods.json has %d rows, want 16", len(pods))
	}

	for _, name := range []string{"goroutine.txt", "heap.pprof"} {
		fi, err := os.Stat(filepath.Join(b, name))
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() == 0 {
			t.Fatalf("%s is empty", name)
		}
	}

	evBytes2, err := os.ReadFile(filepath.Join(dir2, n2[0], "events.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(evBytes, evBytes2) {
		t.Fatalf("event logs differ across identical seeded runs (%d vs %d bytes)", len(evBytes), len(evBytes2))
	}
}
