package controlplane

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"pocolo/internal/trace"
)

// contractScenario is one fault pattern both transports must survive
// with byte-identical decisions. Faults are expressed against the
// campaign heartbeat so scenarios stay readable in rounds.
type contractScenario struct {
	name       string
	lcs, bes   []string
	faults     func(hb time.Duration) []FaultEvent
	rounds     int
	budget     bool // enforce a two-rack budget tree over the fleet
	timeout    time.Duration
	minDeaths  int
	minRejoins int
}

func contractScenarios() []contractScenario {
	threeLC := []string{"img-dnn", "sphinx", "xapian"}
	fourLC := []string{"img-dnn", "sphinx", "tpcc", "xapian"}
	twoBE := []string{"graph", "lstm"}
	return []contractScenario{
		{
			name: "steady", lcs: threeLC, bes: twoBE, rounds: 10,
		},
		{
			name: "crash", lcs: threeLC, bes: twoBE, rounds: 14,
			faults: func(hb time.Duration) []FaultEvent {
				return []FaultEvent{{At: 4 * hb, Agent: 0, Kind: FaultCrash, Duration: 3 * hb}}
			},
			minDeaths: 1, minRejoins: 1,
		},
		{
			name: "heartbeat-drop", lcs: threeLC, bes: twoBE, rounds: 14,
			faults: func(hb time.Duration) []FaultEvent {
				return []FaultEvent{{At: 4 * hb, Agent: 1, Kind: FaultDropHeartbeats, Duration: 3 * hb}}
			},
			minDeaths: 1, minRejoins: 1,
		},
		{
			name: "delay", lcs: threeLC, bes: twoBE, rounds: 14,
			timeout: 50 * time.Millisecond,
			faults: func(hb time.Duration) []FaultEvent {
				return []FaultEvent{{At: 4 * hb, Agent: 0, Kind: FaultDelayResponses, Duration: 3 * hb, Delay: time.Second}}
			},
			minDeaths: 1, minRejoins: 1,
		},
		{
			name: "load-spike", lcs: threeLC, bes: twoBE, rounds: 12,
			faults: func(hb time.Duration) []FaultEvent {
				return []FaultEvent{{At: 4 * hb, Agent: 1, Kind: FaultLoadSpike, Duration: 4 * hb, Level: 0.95}}
			},
		},
		{
			name: "brownout", lcs: fourLC, bes: twoBE, rounds: 14, budget: true,
			faults: func(hb time.Duration) []FaultEvent {
				return []FaultEvent{{At: 5 * hb, Kind: FaultBrownout, Level: 0.3, Duration: 4 * hb}}
			},
		},
		{
			name: "migration-storm", lcs: fourLC, bes: twoBE, rounds: 18,
			faults: func(hb time.Duration) []FaultEvent {
				// Staggered crashes churn every placement at least once:
				// each death forces a migration, each rejoin a re-solve.
				return []FaultEvent{
					{At: 3 * hb, Agent: 0, Kind: FaultCrash, Duration: 3 * hb},
					{At: 5 * hb, Agent: 1, Kind: FaultCrash, Duration: 3 * hb},
					{At: 7 * hb, Agent: 2, Kind: FaultCrash, Duration: 3 * hb},
				}
			},
			minDeaths: 3, minRejoins: 3,
		},
		{
			name: "partition", lcs: threeLC, bes: twoBE, rounds: 14,
			faults: func(hb time.Duration) []FaultEvent {
				return []FaultEvent{{At: 4 * hb, Agent: 0, Kind: FaultPartition, Duration: 3 * hb}}
			},
			minDeaths: 1, minRejoins: 1,
		},
	}
}

// contractBudgetTree builds a two-rack tree over the scenario's agents,
// mirroring the brownout fixture: racks at 90% of provisioned, the
// datacenter root at 85%.
func contractBudgetTree(t *testing.T, lcs []string) string {
	t.Helper()
	var total float64
	prov := make([]float64, len(lcs))
	for i, lc := range lcs {
		prov[i] = spec(t, lc).ProvisionedPowerW
		total += prov[i]
	}
	mid := (len(lcs) + 1) / 2
	rack := func(lo, hi int) string {
		var w float64
		names := make([]string, 0, hi-lo)
		for i := lo; i < hi; i++ {
			w += prov[i]
			names = append(names, "agent-"+lcs[i])
		}
		return fmt.Sprintf("%g{%s}", 0.9*w, strings.Join(names, ","))
	}
	return fmt.Sprintf("dc:%g{rack1:%s,rack2:%s}", 0.85*total, rack(0, mid), rack(mid, len(lcs)))
}

// runContractScenario executes one scenario under one transport and
// returns the report plus the per-round decision log. MaxBackoff is
// pinned to the heartbeat so the polling controller probes dead agents
// every round — matching the streaming side's immediate visibility of a
// recovered agent's next frame — which is what makes the two decision
// logs comparable byte for byte.
func runContractScenario(t *testing.T, sc contractScenario, transport string) (*CampaignReport, string) {
	t.Helper()
	hb := time.Second
	var faults []FaultEvent
	if sc.faults != nil {
		faults = sc.faults(hb)
	}
	var buf bytes.Buffer
	cfg := CampaignConfig{
		Agents:     campaignAgentConfigs(t, sc.lcs, sc.bes),
		BE:         sc.bes,
		Faults:     faults,
		Duration:   time.Duration(sc.rounds) * hb,
		Heartbeat:  hb,
		Timeout:    sc.timeout,
		DeadAfter:  2,
		MaxBackoff: hb,
		Transport:  transport,
		PodSize:    2,
		Seed:       7,
		OnRound: func(round int, st Status) {
			writeDemoRound(&buf, round, st)
		},
	}
	if sc.budget {
		cfg.BudgetTree = contractBudgetTree(t, sc.lcs)
	}
	camp, err := NewCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	report, err := camp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return report, buf.String()
}

// firstDiff reports the first line where two decision logs diverge.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  poll:   %q\n  stream: %q", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("line %d: logs have different lengths (%d vs %d lines)", n+1, len(al), len(bl))
}

// TestTransportContract is the dual-transport contract suite: every
// fault scenario runs once over polling and once over streaming with
// the same seed, and the two runs must produce byte-identical
// placement and cap decisions with zero invariant violations. The
// transports may differ in mechanism — scrape vs push, JSON vs binary
// deltas — but never in what the controller decides.
func TestTransportContract(t *testing.T) {
	for _, sc := range contractScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			pollReport, pollOut := runContractScenario(t, sc, TransportPoll)
			streamReport, streamOut := runContractScenario(t, sc, TransportStream)
			for _, tr := range []struct {
				transport string
				report    *CampaignReport
			}{{TransportPoll, pollReport}, {TransportStream, streamReport}} {
				if err := tr.report.Err(); err != nil {
					t.Errorf("%s: campaign not graceful: %v", tr.transport, err)
				}
				if len(tr.report.Violations) != 0 {
					t.Errorf("%s: %d invariant violations", tr.transport, len(tr.report.Violations))
				}
				if tr.report.Deaths < sc.minDeaths {
					t.Errorf("%s: Deaths = %d, want >= %d", tr.transport, tr.report.Deaths, sc.minDeaths)
				}
				if tr.report.Rejoins < sc.minRejoins {
					t.Errorf("%s: Rejoins = %d, want >= %d", tr.transport, tr.report.Rejoins, sc.minRejoins)
				}
				if len(tr.report.Status.Unplaced) != 0 {
					t.Errorf("%s: unplaced BEs after recovery: %v", tr.transport, tr.report.Status.Unplaced)
				}
			}
			if pollReport.Rounds != streamReport.Rounds {
				t.Errorf("rounds diverged: poll %d vs stream %d", pollReport.Rounds, streamReport.Rounds)
			}
			if pollOut != streamOut {
				t.Errorf("decision logs diverged at %s", firstDiff(pollOut, streamOut))
			}
		})
	}
}

// TestPartitionAcceptance is the acceptance test for seeded telemetry
// partitions under the streaming transport: the controller must degrade
// the partitioned agent (its pod keeps running on the survivors), pick
// it back up after the partition heals, converge with every best-effort
// app placed — and do all of it so deterministically that the canonical
// controller decision trace is byte-identical across two replays.
func TestPartitionAcceptance(t *testing.T) {
	lcs := []string{"img-dnn", "sphinx", "xapian"}
	bes := []string{"graph", "lstm"}
	hb := time.Second
	run := func() (*CampaignReport, Status, []trace.Event) {
		camp, err := NewCampaign(CampaignConfig{
			Agents: campaignAgentConfigs(t, lcs, bes),
			BE:     bes,
			// Two BEs over three agents means any two agents include a
			// BE host, so staggered partitions of agents 0 and 1
			// guarantee at least one migration.
			Faults: []FaultEvent{
				{At: 4 * hb, Agent: 0, Kind: FaultPartition, Duration: 3 * hb},
				{At: 9 * hb, Agent: 1, Kind: FaultPartition, Duration: 3 * hb},
			},
			Duration:        18 * time.Duration(hb),
			Heartbeat:       hb,
			DeadAfter:       2,
			MaxBackoff:      hb,
			Transport:       TransportStream,
			PodSize:         2,
			Seed:            11,
			ControllerTrace: trace.New("controller", 8192),
		})
		if err != nil {
			t.Fatal(err)
		}
		report, err := camp.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return report, camp.Controller().Status(), camp.Controller().Tracer().Events()
	}

	report, st, events := run()
	if err := report.Err(); err != nil {
		t.Fatalf("partition campaign not graceful: %v", err)
	}
	if report.Deaths < 1 {
		t.Fatalf("Deaths = %d, want the partitioned agent declared dead", report.Deaths)
	}
	if report.Rejoins < 1 {
		t.Fatalf("Rejoins = %d, want the partitioned agent back after resync", report.Rejoins)
	}
	for _, a := range st.Agents {
		if !a.Alive {
			t.Fatalf("agent %s still dead after the partition healed", a.Name)
		}
	}
	if len(st.Unplaced) != 0 {
		t.Fatalf("unplaced BEs after recovery: %v", st.Unplaced)
	}
	var migrations, heartbeats int
	for _, ev := range events {
		switch ev.Kind {
		case trace.KindMigration:
			migrations++
		case trace.KindHeartbeat:
			heartbeats++
		}
	}
	if migrations == 0 {
		t.Error("no migration events traced: the partitioned agent's BE never moved")
	}
	if heartbeats == 0 {
		t.Error("no heartbeat summaries traced on the streaming transport")
	}

	// Replay: identical schedule, identical seed — the canonical trace
	// (wall-clock stripped) must match byte for byte.
	canon := func(events []trace.Event) []byte {
		var buf bytes.Buffer
		if err := trace.WriteJSONL(&buf, events, false); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	report2, _, events2 := run()
	if err := report2.Err(); err != nil {
		t.Fatalf("replay not graceful: %v", err)
	}
	a, b := canon(events), canon(events2)
	if !bytes.Equal(a, b) {
		t.Fatalf("trace replay diverged:\n%s", firstDiff(string(a), string(b)))
	}
}
