package controlplane

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"pocolo/internal/invariant"
	"pocolo/internal/machine"
	"pocolo/internal/servermgr"
	"pocolo/internal/sim"
	"pocolo/internal/trace"
	"pocolo/internal/utility"
	"pocolo/internal/workload"
)

// AgentConfig assembles one per-server agent.
type AgentConfig struct {
	// Name identifies the agent to the controller. Names must be unique
	// across a cluster; required.
	Name string
	// Machine is the server platform; required.
	Machine machine.Config
	// LC is the latency-critical primary; required.
	LC *workload.Spec
	// LCModel is the fitted utility model of the primary; required.
	LCModel *utility.Model
	// BECandidates lists the best-effort apps this server can host. The
	// controller may assign any of them; they start evicted.
	BECandidates []*workload.Spec
	// BEModels optionally maps candidate names to fitted models (used by
	// the manager's spare split and reported to the controller).
	BEModels map[string]*utility.Model
	// Trace drives the primary's offered load; required.
	Trace workload.Trace
	// SimTick is the simulated time advanced per pacing step (default
	// 100 ms, the engine tick).
	SimTick time.Duration
	// RealTick is the wall-clock interval between pacing steps (default
	// SimTick, i.e. real time). Tests shrink it to run the simulation
	// faster than real time.
	RealTick time.Duration
	// TargetSlack overrides the manager's latency slack guard.
	TargetSlack float64
	// SeriesCap bounds the host's telemetry series (default 4096 points;
	// negative disables the bound).
	SeriesCap int
	// Seed drives the host's noise streams and the manager's baseline
	// choice.
	Seed int64
	// Invariants, when non-nil, is bound to the agent's per-tick observe
	// path: every registered invariant is checked against this host's
	// state on every simulated tick. One harness may be shared across a
	// cluster's agents (it is internally locked), or each agent may get
	// its own for per-server attribution.
	Invariants *invariant.Harness
	// PlannerOff forces the agent's server manager through the exact
	// per-tick grid search instead of the precomputed allocation planner.
	// Results are bit-identical either way.
	PlannerOff bool
	// TraceEvents sizes the agent's decision-trace ring: 0 uses
	// trace.DefaultEvents, a negative value disables tracing entirely
	// (zero overhead on the control path).
	TraceEvents int
}

// Agent wraps one simulated host and its server manager behind the HTTP
// API. All host/manager/engine access is serialized by mu: the pacing
// goroutine advances simulated time, and HTTP handlers read state or
// change assignments between steps.
type Agent struct {
	name     string
	machine  machine.Config
	lc       *workload.Spec
	lcModel  *utility.Model
	beModels map[string]*utility.Model
	byName   map[string]*workload.Spec
	realTick time.Duration
	simTick  time.Duration

	// tracer is internally locked; /v1/trace reads it without taking a.mu.
	tracer *trace.Tracer

	mu       sync.Mutex
	host     *sim.Host
	mgr      *servermgr.Manager
	engine   *sim.Engine
	assigned string
	epoch    uint64 // bumped on every applied assignment change
	ticks    uint64

	started   time.Time
	stop      chan struct{}
	done      chan struct{}
	startOnce sync.Once
	stopOnce  sync.Once

	mux *http.ServeMux
}

// NewAgent validates the configuration and builds an agent. The host
// starts with every best-effort candidate registered but parked; work
// arrives only via Assign (directly or over HTTP).
func NewAgent(cfg AgentConfig) (*Agent, error) {
	if cfg.Name == "" {
		return nil, errors.New("controlplane: agent needs a name")
	}
	if cfg.LC == nil {
		return nil, errors.New("controlplane: agent needs a latency-critical primary")
	}
	if cfg.LCModel == nil {
		return nil, errors.New("controlplane: agent needs a fitted LC model")
	}
	if cfg.Trace == nil {
		return nil, errors.New("controlplane: agent needs a load trace")
	}
	if cfg.SimTick == 0 {
		cfg.SimTick = 100 * time.Millisecond
	}
	if cfg.RealTick == 0 {
		cfg.RealTick = cfg.SimTick
	}
	if cfg.SimTick <= 0 || cfg.RealTick <= 0 {
		return nil, errors.New("controlplane: agent ticks must be positive")
	}
	seriesCap := cfg.SeriesCap
	if seriesCap == 0 {
		seriesCap = 4096
	}
	if seriesCap < 0 {
		seriesCap = 0 // unbounded, at the caller's explicit request
	}
	hc := sim.HostConfig{
		Name:      cfg.Name,
		Machine:   cfg.Machine,
		LC:        cfg.LC,
		Trace:     cfg.Trace,
		Seed:      cfg.Seed,
		SeriesCap: seriesCap,
	}
	if len(cfg.BECandidates) > 0 {
		hc.BE = cfg.BECandidates[0]
		hc.ExtraBE = cfg.BECandidates[1:]
	}
	host, err := sim.NewHost(hc)
	if err != nil {
		return nil, err
	}
	engine, err := sim.NewEngine(cfg.SimTick)
	if err != nil {
		return nil, err
	}
	if err := engine.AddHost(host); err != nil {
		return nil, err
	}
	var tracer *trace.Tracer
	if cfg.TraceEvents >= 0 {
		capacity := cfg.TraceEvents
		if capacity == 0 {
			capacity = trace.DefaultEvents
		}
		tracer = trace.New(cfg.Name, capacity)
	}
	mgr, err := servermgr.New(servermgr.Config{
		Host:        host,
		Model:       cfg.LCModel,
		Policy:      servermgr.PowerOptimized,
		TargetSlack: cfg.TargetSlack,
		BEModels:    cfg.BEModels,
		Seed:        cfg.Seed,
		PlannerOff:  cfg.PlannerOff,
		Tracer:      tracer,
	})
	if err != nil {
		return nil, err
	}
	// Candidates idle until the controller assigns one.
	mgr.SetBEParked(true)
	if err := mgr.Attach(engine); err != nil {
		return nil, err
	}
	if cfg.Invariants != nil {
		// Snapshot only this agent's host on its own engine ticks: the
		// engine runs under a.mu, so capturing another agent's host here
		// would race with that agent's pacing loop. Harness.Run is
		// internally locked, so the harness itself may be shared.
		h := cfg.Invariants
		if err := engine.Observe(func(now time.Time) {
			h.Run(invariant.Capture(host, mgr, now))
		}); err != nil {
			return nil, err
		}
	}
	byName := make(map[string]*workload.Spec, len(cfg.BECandidates))
	for _, be := range cfg.BECandidates {
		byName[be.Name] = be
	}
	a := &Agent{
		name:     cfg.Name,
		machine:  cfg.Machine,
		lc:       cfg.LC,
		lcModel:  cfg.LCModel,
		beModels: cfg.BEModels,
		byName:   byName,
		realTick: cfg.RealTick,
		simTick:  cfg.SimTick,
		tracer:   tracer,
		host:     host,
		mgr:      mgr,
		engine:   engine,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	a.mux = http.NewServeMux()
	a.mux.HandleFunc(RouteAssign, a.handleAssign)
	a.mux.HandleFunc(RouteStats, a.handleStats)
	a.mux.HandleFunc(RouteHealthz, a.handleHealthz)
	a.mux.HandleFunc(RouteMetrics, a.handleMetrics)
	a.mux.HandleFunc(RouteTrace, a.handleTrace)
	a.mux.HandleFunc(RouteCap, a.handleCap)
	return a, nil
}

// Name returns the agent's identity.
func (a *Agent) Name() string { return a.name }

// LCName returns the name of the latency-critical primary.
func (a *Agent) LCName() string { return a.lc.Name }

// Handler returns the agent's HTTP API.
func (a *Agent) Handler() http.Handler { return a.mux }

// Start launches the pacing loop: every RealTick of wall-clock time the
// simulation advances by SimTick. Start is idempotent.
func (a *Agent) Start() {
	a.startOnce.Do(func() {
		a.mu.Lock()
		a.started = time.Now()
		a.mu.Unlock()
		go func() {
			defer close(a.done)
			ticker := time.NewTicker(a.realTick)
			defer ticker.Stop()
			for {
				select {
				case <-a.stop:
					return
				case <-ticker.C:
					a.mu.Lock()
					_ = a.engine.Run(a.simTick)
					a.ticks++
					a.mu.Unlock()
				}
			}
		}()
	})
}

// Advance steps the agent's simulation by d of simulated time without the
// wall-clock pacing loop. Deterministic drivers (fault campaigns, tests)
// use it instead of Start so a run is a pure function of its seeds; mixing
// Advance with a Start-ed pacing loop is safe but forfeits determinism.
func (a *Agent) Advance(d time.Duration) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.engine.Run(d); err != nil {
		return err
	}
	a.ticks++
	return nil
}

// Stop halts the pacing loop and waits for it to exit. Stop is idempotent
// and safe to call even if Start never ran.
func (a *Agent) Stop() {
	a.stopOnce.Do(func() { close(a.stop) })
	a.startOnce.Do(func() { close(a.done) }) // never started: nothing to wait for
	<-a.done
}

// Assign places the named best-effort candidate (or evicts and parks the
// best-effort partition when name is empty). A replica instance name
// ("graph#3", cluster.RunReplicated's convention) runs the base
// candidate's binary while the full instance name is reported back, so a
// controller placing one replica per agent round-trips its own names.
// The change applies immediately, without waiting for the next control
// tick, and bumps the agent's assignment epoch.
func (a *Agent) Assign(name string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if name == "" {
		if a.assigned != "" {
			a.epoch++
		}
		a.mgr.SetBEParked(true)
		a.assigned = ""
		return nil
	}
	base := baseBE(name)
	if _, ok := a.byName[base]; !ok {
		return fmt.Errorf("controlplane: agent %s has no best-effort candidate %q", a.name, name)
	}
	a.mgr.SetBEParked(false)
	if err := a.mgr.SetActiveBE(base); err != nil {
		a.mgr.SetBEParked(true)
		return err
	}
	if a.assigned != name {
		a.epoch++
	}
	a.assigned = name
	return nil
}

// SetCap installs a cluster-budget power cap on the server manager (zero
// clears the override). The change applies immediately; the capper
// enforces it from the next 100 ms cap tick.
func (a *Agent) SetCap(w float64) error {
	if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
		return fmt.Errorf("controlplane: agent %s: cap %v W is not physical", a.name, w)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.mgr.SetCapW(w)
}

// CapW reports the power cap the agent's capper currently enforces.
func (a *Agent) CapW() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.mgr.CapW()
}

// Assigned returns the currently placed best-effort app, or "".
func (a *Agent) Assigned() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.assigned
}

// Stats returns the agent's state snapshot.
func (a *Agent) Stats() StatsResponse {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.statsLocked()
}

// StatsEpoch returns the snapshot together with the assignment epoch
// under one lock acquisition — the streaming publisher's read, so a
// frame's stats and epoch always describe the same instant.
func (a *Agent) StatsEpoch() (StatsResponse, uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.statsLocked(), a.epoch
}

// statsLocked assembles the snapshot. Callers must hold a.mu.
func (a *Agent) statsLocked() StatsResponse {
	m := a.host.Metrics()
	candidates := make([]string, 0, len(a.byName))
	for _, be := range a.host.BEs() {
		candidates = append(candidates, be.Name)
	}
	control, throttles, restores := a.mgr.Counters()
	planHits, planWarm, planFallbacks := a.mgr.PlannerCounters()
	beThrottles, beRestores := a.mgr.KnobCounters()
	return StatsResponse{
		Agent:             a.name,
		Machine:           a.machine,
		LC:                a.lc.Name,
		PeakLoad:          a.lc.PeakLoad,
		ProvisionedPowerW: a.lc.ProvisionedPowerW,
		OfferedLoad:       a.host.OfferedLoad(),
		Slack:             a.host.Slack(),
		P99Ms:             a.host.ObservedP99(),
		PowerW:            a.host.MeterReading().Watts,
		CapW:              a.mgr.CapW(),
		BEThroughput:      a.host.BEThroughput(),
		AssignedBE:        a.assigned,
		BECandidates:      candidates,
		LCOps:             m.LCOps,
		BEOps:             m.BEOps,
		BEOpsBy:           m.BEOpsBy,
		ControlTicks:      control,
		CapThrottles:      throttles,
		CapRestores:       restores,
		PlannerHits:       planHits,
		PlannerWarm:       planWarm,
		PlannerFallbacks:  planFallbacks,
		BEThrottles:       beThrottles,
		BERestores:        beRestores,
		PlannerOn:         a.mgr.PlannerEnabled(),
		SimSec:            a.engine.Elapsed().Seconds(),
		LCModel:           a.lcModel,
		BEModels:          a.beModels,
	}
}

// handleAssign serves POST /v1/assign.
func (a *Agent) handleAssign(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req AssignRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding assign request: %v", err)
		return
	}
	if err := a.Assign(req.BE); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, AssignResponse{Agent: a.name, AssignedBE: a.Assigned()})
}

// handleCap serves POST /v1/cap.
func (a *Agent) handleCap(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req CapRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding cap request: %v", err)
		return
	}
	if err := a.SetCap(req.CapW); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, CapResponse{Agent: a.name, CapW: a.CapW()})
}

// handleStats serves GET /v1/stats.
func (a *Agent) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, http.StatusOK, a.Stats())
}

// handleHealthz serves GET /v1/healthz.
func (a *Agent) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	a.mu.Lock()
	resp := HealthResponse{
		OK:     true,
		Agent:  a.name,
		SimSec: a.engine.Elapsed().Seconds(),
		Ticks:  a.ticks,
	}
	if !a.started.IsZero() {
		resp.UptimeSec = time.Since(a.started).Seconds()
	}
	a.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// handleMetrics serves GET /metrics in Prometheus text format.
func (a *Agent) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	a.mu.Lock()
	stats := a.statsLocked()
	a.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := writeAgentMetrics(w, stats); err != nil {
		return
	}
	if err := writeTraceMetrics(w, stats.Agent, stats.LC, a.tracer); err != nil {
		return
	}
	// OpenMetrics terminator: scrapers use it to distinguish a complete
	// exposition from a truncated one.
	_, _ = io.WriteString(w, "# EOF\n")
}

// Tracer returns the agent's decision tracer (nil when tracing is
// disabled). The tracer is internally locked, so callers may read it
// while the pacing loop runs.
func (a *Agent) Tracer() *trace.Tracer { return a.tracer }

// handleTrace serves GET /v1/trace?since=SEQ&limit=N: one page of the
// decision-trace ring, oldest-first, with a resume cursor.
func (a *Agent) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	var since uint64
	if v := r.URL.Query().Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad since cursor %q: %v", v, err)
			return
		}
		since = n
	}
	limit := 512
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, "bad limit %q", v)
			return
		}
		if n > 4096 {
			n = 4096
		}
		limit = n
	}
	resp := TraceResponse{Agent: a.name, Next: since}
	if a.tracer != nil {
		resp.Events, resp.Next = a.tracer.EventsSince(since, limit)
		resp.Dropped = a.tracer.Dropped()
	}
	if resp.Events == nil {
		resp.Events = []trace.Event{}
	}
	writeJSON(w, http.StatusOK, resp)
}
