package controlplane

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// flakyHandler wraps an agent handler with a switchable failure mode, so
// tests can simulate an unreachable agent without tearing down the
// listener.
type flakyHandler struct {
	inner http.Handler
	mu    sync.Mutex
	fail  bool
}

func (f *flakyHandler) setFail(v bool) {
	f.mu.Lock()
	f.fail = v
	f.mu.Unlock()
}

func (f *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	failing := f.fail
	f.mu.Unlock()
	if failing {
		http.Error(w, "injected failure", http.StatusInternalServerError)
		return
	}
	f.inner.ServeHTTP(w, r)
}

// testCluster is a loopback control-plane fixture driven by explicit
// Round calls (no wall-clock heartbeats), keeping failure-detection tests
// deterministic.
type testCluster struct {
	agents  []*Agent
	servers []*httptest.Server
	flaky   []*flakyHandler
	ctl     *Controller
}

func newTestCluster(t *testing.T, lcs []string, bes []string, mutate func(*ControllerConfig)) *testCluster {
	t.Helper()
	tc := &testCluster{}
	urls := make([]string, len(lcs))
	for i, lc := range lcs {
		a := newTestAgent(t, "agent-"+lc, lc, bes...)
		f := &flakyHandler{inner: a.Handler()}
		srv := httptest.NewServer(f)
		t.Cleanup(srv.Close)
		tc.agents = append(tc.agents, a)
		tc.flaky = append(tc.flaky, f)
		tc.servers = append(tc.servers, srv)
		urls[i] = srv.URL
	}
	cfg := ControllerConfig{
		AgentURLs: urls,
		BE:        bes,
		Heartbeat: 10 * time.Millisecond,
		Timeout:   2 * time.Second,
		DeadAfter: 2,
		Retries:   0,
		Seed:      3,
		Logf:      t.Logf,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	ctl, err := NewController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tc.ctl = ctl
	return tc
}

// advanceAll steps every agent's simulation.
func (tc *testCluster) advanceAll(t *testing.T, d time.Duration) {
	t.Helper()
	for _, a := range tc.agents {
		advance(t, a, d)
	}
}

func TestNewControllerValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  ControllerConfig
	}{
		{"no agents", ControllerConfig{}},
		{"empty url", ControllerConfig{AgentURLs: []string{""}}},
		{"duplicate url", ControllerConfig{AgentURLs: []string{"http://a", "http://a"}}},
		{"negative heartbeat", ControllerConfig{AgentURLs: []string{"http://a"}, Heartbeat: -time.Second}},
		{"negative dead-after", ControllerConfig{AgentURLs: []string{"http://a"}, DeadAfter: -1}},
		{"negative retries", ControllerConfig{AgentURLs: []string{"http://a"}, Retries: -1}},
		{"bad jitter", ControllerConfig{AgentURLs: []string{"http://a"}, Jitter: 1.5}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewController(tc.cfg); err == nil {
				t.Error("expected a config error")
			}
		})
	}
	if _, err := NewController(ControllerConfig{AgentURLs: []string{"http://a"}}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestControllerPlacesAndReconciles(t *testing.T) {
	tc := newTestCluster(t, []string{"img-dnn", "sphinx", "xapian"}, []string{"graph", "lstm"}, nil)
	ctx := context.Background()
	tc.advanceAll(t, 5*time.Second)

	// Round 1 discovers all agents and solves; pushes go out immediately.
	tc.ctl.Round(ctx)
	st := tc.ctl.Status()
	if st.Solves != 1 {
		t.Fatalf("Solves = %d, want 1", st.Solves)
	}
	if len(st.Placement) != 2 {
		t.Fatalf("placement = %v, want both BE apps placed", st.Placement)
	}
	hosts := map[string]bool{}
	for be, agentName := range st.Placement {
		if hosts[agentName] {
			t.Errorf("two BE apps on %s", agentName)
		}
		hosts[agentName] = true
		found := false
		for _, a := range tc.agents {
			if a.Name() == agentName && a.Assigned() == be {
				found = true
			}
		}
		if !found {
			t.Errorf("%s not actually assigned on %s", be, agentName)
		}
	}

	// The placed apps do real work.
	tc.advanceAll(t, 10*time.Second)
	tc.ctl.Round(ctx)
	for _, a := range tc.ctl.Status().Agents {
		if a.AssignedBE != "" && a.PowerW <= 0 {
			t.Errorf("agent %s reports no power draw", a.Name)
		}
	}

	// A manual divergence on an agent is reconciled back.
	var victim *Agent
	for _, a := range tc.agents {
		if a.Assigned() != "" {
			victim = a
			break
		}
	}
	want := victim.Assigned()
	if err := victim.Assign(""); err != nil {
		t.Fatal(err)
	}
	tc.ctl.Round(ctx) // observes divergence, re-pushes
	if got := victim.Assigned(); got != want {
		t.Errorf("reconcile did not restore assignment: got %q, want %q", got, want)
	}
}

func TestControllerDeadAfterKMissesAndMigration(t *testing.T) {
	tc := newTestCluster(t, []string{"img-dnn", "sphinx", "xapian"}, []string{"graph", "lstm"}, nil)
	ctx := context.Background()
	tc.advanceAll(t, 5*time.Second)
	tc.ctl.Round(ctx)
	st := tc.ctl.Status()
	if len(st.Placement) != 2 {
		t.Fatalf("bootstrap placement = %v", st.Placement)
	}

	// Kill one hosting agent (fail its listener responses).
	var victimIdx int
	for i, a := range tc.agents {
		if a.Assigned() != "" {
			victimIdx = i
			break
		}
	}
	victim := tc.agents[victimIdx]
	victimBE := victim.Assigned()
	tc.flaky[victimIdx].setFail(true)

	// K-1 misses: still alive, placement unchanged.
	tc.ctl.Round(ctx)
	st = tc.ctl.Status()
	for _, a := range st.Agents {
		if a.Name == victim.Name() {
			if !a.Alive || a.Misses != 1 {
				t.Fatalf("after 1 miss: alive=%v misses=%d", a.Alive, a.Misses)
			}
		}
	}
	if st.Deaths != 0 {
		t.Fatalf("premature death at %d misses", 1)
	}

	// K-th miss: dead, BE migrated to a survivor within the same round.
	tc.ctl.Round(ctx)
	st = tc.ctl.Status()
	if st.Deaths != 1 {
		t.Fatalf("Deaths = %d, want 1", st.Deaths)
	}
	newHost, ok := st.Placement[victimBE]
	if !ok || newHost == victim.Name() {
		t.Fatalf("%s not migrated: placement=%v", victimBE, st.Placement)
	}
	migrated := false
	for _, a := range tc.agents {
		if a.Name() == newHost && a.Assigned() == victimBE {
			migrated = true
		}
	}
	if !migrated {
		t.Errorf("migration not pushed to %s", newHost)
	}

	// Dead agents are probed on a capped exponential backoff, and a
	// recovery re-solves the placement again.
	tc.flaky[victimIdx].setFail(false)
	deadline := time.Now().Add(5 * time.Second)
	for tc.ctl.Status().Rejoins == 0 && time.Now().Before(deadline) {
		tc.ctl.Round(ctx)
		time.Sleep(5 * time.Millisecond)
	}
	st = tc.ctl.Status()
	if st.Rejoins != 1 {
		t.Fatalf("Rejoins = %d, want 1", st.Rejoins)
	}
	if len(st.Placement) != 2 {
		t.Errorf("post-rejoin placement = %v", st.Placement)
	}
}

func TestControllerMajorityUnreachableDegrades(t *testing.T) {
	tc := newTestCluster(t, []string{"img-dnn", "sphinx", "xapian"}, []string{"graph"}, nil)
	ctx := context.Background()
	tc.advanceAll(t, 5*time.Second)
	tc.ctl.Round(ctx)
	before := tc.ctl.Status()
	if len(before.Placement) != 1 || before.Degraded {
		t.Fatalf("bootstrap: %+v", before)
	}

	// Take down two of three agents: only a minority remains.
	tc.flaky[0].setFail(true)
	tc.flaky[1].setFail(true)
	for i := 0; i < 3; i++ {
		tc.ctl.Round(ctx)
	}
	st := tc.ctl.Status()
	if !st.Degraded {
		t.Error("controller should be degraded with 1/3 agents reachable")
	}
	for be, host := range before.Placement {
		if st.Placement[be] != host {
			t.Errorf("degraded placement changed: %v -> %v", before.Placement, st.Placement)
		}
	}
}

func TestControllerUnplacedOverflow(t *testing.T) {
	// One server, two best-effort apps: one must wait unplaced.
	tc := newTestCluster(t, []string{"xapian"}, []string{"graph", "lstm"}, nil)
	ctx := context.Background()
	tc.advanceAll(t, 5*time.Second)
	tc.ctl.Round(ctx)
	st := tc.ctl.Status()
	if len(st.Placement) != 1 {
		t.Fatalf("placement = %v, want exactly one app placed", st.Placement)
	}
	if len(st.Unplaced) != 1 {
		t.Fatalf("Unplaced = %v, want exactly one app queued", st.Unplaced)
	}
}

func TestControllerRunLoopAndCancel(t *testing.T) {
	tc := newTestCluster(t, []string{"tpcc"}, []string{"pbzip"}, nil)
	tc.advanceAll(t, 2*time.Second)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- tc.ctl.Run(ctx) }()
	deadline := time.Now().Add(5 * time.Second)
	for tc.ctl.Status().Rounds < 3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if tc.ctl.Status().Rounds < 3 {
		t.Error("Run loop did not complete rounds")
	}
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Errorf("Run returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not exit on cancel")
	}
}

func TestControllerStatusAndMetricsHandlers(t *testing.T) {
	tc := newTestCluster(t, []string{"img-dnn"}, []string{"graph"}, nil)
	ctx := context.Background()
	tc.advanceAll(t, 5*time.Second)
	tc.ctl.Round(ctx)

	rec := httptest.NewRecorder()
	tc.ctl.StatusHandler(rec, httptest.NewRequest(http.MethodGet, "/v1/status", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), `"placement"`) {
		t.Errorf("status body: %s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	tc.ctl.MetricsHandler(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		`pocolo_controller_agents{state="alive"} 1`,
		"pocolo_controller_placement{",
		"pocolo_controller_rounds_total 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("controller metrics missing %q\n%s", want, body)
		}
	}
}
