package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sync"
	"time"

	"pocolo/internal/trace"
)

// FlightRecorder captures post-hoc diagnostics bundles when something
// goes wrong — a round blowing its deadline, an invariant firing. Each
// trigger atomically writes one timestamped directory holding the recent
// trace-ring events (canonical wall-free JSONL, so seeded runs produce
// byte-identical event logs), an obs snapshot, per-pod counters, and
// goroutine + heap profiles. Triggers are rate-limited on the caller's
// clock (simulated time in deterministic runs) so a sustained breach
// produces one bundle per interval, not one per round.
type FlightRecorder struct {
	dir         string
	minInterval time.Duration
	maxBundles  int

	mu       sync.Mutex
	last     time.Time
	hasLast  bool
	taken    int
	throttle int
}

// RecorderConfig configures a FlightRecorder.
type RecorderConfig struct {
	// Dir is the directory bundles are written under (created on demand).
	Dir string
	// MinInterval is the minimum caller-clock time between bundles;
	// <= 0 defaults to one minute.
	MinInterval time.Duration
	// MaxBundles caps bundles per recorder lifetime; <= 0 defaults to 16.
	MaxBundles int
}

// NewRecorder builds a flight recorder. An empty Dir yields nil — the
// no-op recorder — so callers wire it unconditionally.
func NewRecorder(cfg RecorderConfig) *FlightRecorder {
	if cfg.Dir == "" {
		return nil
	}
	if cfg.MinInterval <= 0 {
		cfg.MinInterval = time.Minute
	}
	if cfg.MaxBundles <= 0 {
		cfg.MaxBundles = 16
	}
	return &FlightRecorder{dir: cfg.Dir, minInterval: cfg.MinInterval, maxBundles: cfg.MaxBundles}
}

// Bundle is the diagnostics payload of one trigger.
type Bundle struct {
	// Reason says what fired ("round-deadline", "invariant", ...).
	Reason string
	// Now is the caller's clock — simulated time in deterministic runs —
	// used for rate limiting and the bundle directory name.
	Now time.Time
	// Events is the recent trace-ring content, written as canonical
	// (wall-free) JSONL so seeded replays produce identical logs.
	Events []trace.Event
	// Obs is the metrics snapshot at trigger time.
	Obs Snapshot
	// Pods carries per-pod dirty/delta/staleness counters (any
	// JSON-marshalable shape; nil omits pods.json).
	Pods any
	// Detail is free-form trigger context stored in meta.json
	// (measured latency, deadline, round index, ...).
	Detail map[string]any
}

// BundleMeta is the meta.json schema. WallNS is the only
// nondeterministic field and lives here, outside the event log.
type BundleMeta struct {
	Reason string         `json:"reason"`
	TNS    int64          `json:"t_ns"`
	WallNS int64          `json:"wall_ns"`
	Seq    int            `json:"seq"`
	Events int            `json:"events"`
	Detail map[string]any `json:"detail,omitempty"`
}

// Trigger writes one bundle unless rate-limited. It returns the bundle
// directory ("" when skipped) and whether a bundle was taken. Write
// errors surface to the caller; a partially written bundle directory is
// removed so pocolo-trace -bundle never sees a torn one.
func (r *FlightRecorder) Trigger(b Bundle) (dir string, taken bool, err error) {
	if r == nil {
		return "", false, nil
	}
	r.mu.Lock()
	if r.taken >= r.maxBundles || (r.hasLast && b.Now.Sub(r.last) < r.minInterval) {
		r.throttle++
		r.mu.Unlock()
		return "", false, nil
	}
	r.taken++
	seq := r.taken
	r.last = b.Now
	r.hasLast = true
	r.mu.Unlock()

	// Directory names come from the caller clock + trigger sequence, so
	// seeded runs produce identical bundle paths.
	dir = filepath.Join(r.dir, fmt.Sprintf("bundle-%04d-t%d", seq, b.Now.UnixNano()))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", false, err
	}
	if err := writeBundle(dir, seq, b); err != nil {
		os.RemoveAll(dir)
		return "", false, err
	}
	return dir, true, nil
}

// Throttled reports how many triggers the rate limit or bundle cap
// suppressed.
func (r *FlightRecorder) Throttled() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.throttle
}

// Taken reports how many bundles were written.
func (r *FlightRecorder) Taken() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.taken
}

func writeJSONFile(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeBundle(dir string, seq int, b Bundle) error {
	f, err := os.Create(filepath.Join(dir, "events.jsonl"))
	if err != nil {
		return err
	}
	if err := trace.WriteJSONL(f, b.Events, false); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	if err := writeJSONFile(filepath.Join(dir, "obs.json"), b.Obs); err != nil {
		return err
	}
	if b.Pods != nil {
		if err := writeJSONFile(filepath.Join(dir, "pods.json"), b.Pods); err != nil {
			return err
		}
	}
	meta := BundleMeta{
		Reason: b.Reason,
		TNS:    b.Now.UnixNano(),
		WallNS: time.Now().UnixNano(),
		Seq:    seq,
		Events: len(b.Events),
		Detail: b.Detail,
	}
	if err := writeJSONFile(filepath.Join(dir, "meta.json"), meta); err != nil {
		return err
	}

	g, err := os.Create(filepath.Join(dir, "goroutine.txt"))
	if err != nil {
		return err
	}
	if err := pprof.Lookup("goroutine").WriteTo(g, 1); err != nil {
		g.Close()
		return err
	}
	if err := g.Close(); err != nil {
		return err
	}
	h, err := os.Create(filepath.Join(dir, "heap.pprof"))
	if err != nil {
		return err
	}
	if err := pprof.WriteHeapProfile(h); err != nil {
		h.Close()
		return err
	}
	return h.Close()
}
