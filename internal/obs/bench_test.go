package obs

import (
	"testing"
	"time"
)

// The Off/On pairs below are the CI-gated overhead contract: the
// disabled path is a nil-receiver branch, and the enabled path is a
// shard pick plus one or two atomic adds — both zero allocs/op.

func BenchmarkObsCounterOff(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkObsCounterOn(b *testing.B) {
	c := NewRegistry().Counter("pocolo_obs_bench_total", "bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
	if c.Value() != int64(b.N) {
		b.Fatalf("lost increments: %d != %d", c.Value(), b.N)
	}
}

func BenchmarkObsCounterOnParallel(b *testing.B) {
	c := NewRegistry().Counter("pocolo_obs_bench_par_total", "bench")
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add(1)
		}
	})
}

func BenchmarkObsHistogramOff(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveDuration(time.Duration(i))
	}
}

func BenchmarkObsHistogramOn(b *testing.B) {
	h := NewRegistry().Histogram("pocolo_obs_bench_seconds", "bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.ObserveDuration(time.Duration(i))
	}
	if got := h.Snapshot().Count; got != uint64(b.N) {
		b.Fatalf("lost observations: %d != %d", got, b.N)
	}
}

func BenchmarkObsHistogramOnParallel(b *testing.B) {
	h := NewRegistry().Histogram("pocolo_obs_bench_par_seconds", "bench")
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			h.ObserveDuration(time.Duration(i))
			i++
		}
	})
}

func BenchmarkObsSnapshot(b *testing.B) {
	reg := NewRegistry()
	for i := 0; i < 16; i++ {
		reg.Histogram("pocolo_obs_bench_snap_seconds", "bench",
			Label{"pod", string(rune('a' + i))}).Observe(0.001)
		reg.Counter("pocolo_obs_bench_snap_total", "bench",
			Label{"pod", string(rune('a' + i))}).Inc()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := reg.Snapshot(); len(s.Histograms) != 16 {
			b.Fatal("bad snapshot")
		}
	}
}
