// Package obs is the cluster-wide observability core: a zero-allocation
// metrics substrate (counters, gauges, log-linear latency histograms)
// designed for the control plane's hot paths. Where package trace answers
// "why did the controller do that", obs answers "is the fleet healthy" —
// round latency percentiles, heartbeat staleness watermarks, budget
// headroom, SLO burn rates.
//
// The write path is lock-free and allocation-free: every metric stripes
// its state across cache-line-padded shards and picks a shard from a hash
// of the calling goroutine's stack address, so concurrent writers on
// different goroutines land on different cache lines with no pinning and
// no mutex. Reads are snapshot-on-read: a Snapshot sums the shards into
// plain values, and snapshots with identical bucket layouts merge, which
// is how pocolo-top folds many agents' histograms into one fleet view.
//
// Every method is a no-op on a nil receiver, mirroring package trace: a
// caller holds a possibly-nil handle and calls it unconditionally, so the
// disabled path costs one branch and zero allocations.
package obs

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"unsafe"
)

// nShards is the stripe width shared by every metric: the smallest power
// of two covering GOMAXPROCS at package init, clamped to [1, 16]. Sixteen
// padded shards are enough to keep atomic adds from bouncing one cache
// line between cores while bounding per-histogram memory.
var nShards = func() uint32 {
	n := runtime.GOMAXPROCS(0)
	if n > 16 {
		n = 16
	}
	s := uint32(1)
	for int(s) < n {
		s <<= 1
	}
	return s
}()

var shardMask = nShards - 1

// shardIndex picks a stripe for the calling goroutine. Goroutine stacks
// live at distinct addresses, so hashing the address of a local variable
// spreads goroutines across shards without runtime pinning; the
// multiplicative mix pushes stack-allocation granularity out of the low
// bits. Collisions only cost a shared cache line, never correctness —
// every shard write is atomic.
func shardIndex() uint32 {
	var b byte
	h := uint64(uintptr(unsafe.Pointer(&b)) >> 3)
	h *= 0x9E3779B97F4A7C15
	return uint32(h>>32) & shardMask
}

// cell is one cache-line-padded shard of a counter. 64-byte alignment
// keeps two cores incrementing adjacent shards from false sharing.
type cell struct {
	v atomic.Int64
	_ [56]byte
}

// Label is one metric label pair.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Counter is a monotonically increasing striped counter.
type Counter struct {
	shards []cell
}

// Add accrues n. Negative deltas are ignored (counters are monotone).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.shards[shardIndex()].v.Add(n)
}

// Inc accrues one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.shards[shardIndex()].v.Add(1)
}

// Value sums the shards.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var total int64
	for i := range c.shards {
		total += c.shards[i].v.Load()
	}
	return total
}

// Gauge is a last-write-wins float64. Sets don't shard (there is no sum
// to stripe); a single atomic word is already contention-free for the
// set-from-one-loop pattern gauges serve.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value loads the gauge.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// series is one registered metric instance: a family name plus a fixed
// label set, with the concrete metric hanging off exactly one pointer.
type series struct {
	labels []Label
	sig    string // rendered label signature, the dedup + sort key
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
}

// family groups the series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   string // "counter" | "gauge" | "histogram"
	series []*series
}

// Registry holds registered metrics and renders deterministic snapshots.
// Registration takes a mutex and allocates; the returned handles are
// what hot paths hold. A nil Registry returns nil handles, so wiring obs
// through a subsystem costs nothing when observability is off.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelSig renders a sorted, unambiguous signature for a label set.
func labelSig(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	sig := ""
	for _, l := range ls {
		sig += l.Key + "\x00" + l.Value + "\x00"
	}
	return sig
}

// register finds or creates the series for (name, labels), enforcing one
// kind per family. It returns the series and whether it was just created.
func (r *Registry) register(name, help, kind string, labels []Label) (*series, bool) {
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		r.families[name] = f
		r.order = append(r.order, name)
		sort.Strings(r.order)
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.kind, kind))
	}
	sig := labelSig(labels)
	for _, s := range f.series {
		if s.sig == sig {
			return s, false
		}
	}
	s := &series{labels: append([]Label(nil), labels...), sig: sig}
	sort.Slice(s.labels, func(i, j int) bool { return s.labels[i].Key < s.labels[j].Key })
	f.series = append(f.series, s)
	sort.Slice(f.series, func(i, j int) bool { return f.series[i].sig < f.series[j].sig })
	return s, true
}

// Counter returns the counter for (name, labels), creating it on first
// use. Counter family names must end in _total (the Prometheus counter
// convention the exposition linter enforces). Nil registries return nil.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, _ := r.register(name, help, "counter", labels)
	if s.ctr == nil {
		s.ctr = &Counter{shards: make([]cell, nShards)}
	}
	return s.ctr
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, _ := r.register(name, help, "gauge", labels)
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// Histogram returns the histogram for (name, labels), creating it on
// first use. All obs histograms share the log-linear duration layout, so
// any two snapshots of any two histograms merge.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, _ := r.register(name, help, "histogram", labels)
	if s.hist == nil {
		s.hist = newHistogram()
	}
	return s.hist
}

// CounterSnapshot is one counter series at read time.
type CounterSnapshot struct {
	Name   string  `json:"name"`
	Help   string  `json:"help,omitempty"`
	Labels []Label `json:"labels,omitempty"`
	Value  int64   `json:"value"`
}

// GaugeSnapshot is one gauge series at read time.
type GaugeSnapshot struct {
	Name   string  `json:"name"`
	Help   string  `json:"help,omitempty"`
	Labels []Label `json:"labels,omitempty"`
	Value  float64 `json:"value"`
}

// Snapshot is a full registry read: plain values, deterministically
// ordered (families sorted by name, series by label signature), safe to
// marshal, diff, and merge across processes.
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters,omitempty"`
	Gauges     []GaugeSnapshot     `json:"gauges,omitempty"`
	Histograms []HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot sums every metric's shards into a point-in-time view. Nil
// registries snapshot empty.
func (r *Registry) Snapshot() Snapshot {
	var snap Snapshot
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.order {
		f := r.families[name]
		for _, s := range f.series {
			switch {
			case s.ctr != nil:
				snap.Counters = append(snap.Counters, CounterSnapshot{
					Name: f.name, Help: f.help, Labels: s.labels, Value: s.ctr.Value(),
				})
			case s.gauge != nil:
				snap.Gauges = append(snap.Gauges, GaugeSnapshot{
					Name: f.name, Help: f.help, Labels: s.labels, Value: s.gauge.Value(),
				})
			case s.hist != nil:
				hs := s.hist.Snapshot()
				hs.Name, hs.Help, hs.Labels = f.name, f.help, s.labels
				snap.Histograms = append(snap.Histograms, hs)
			}
		}
	}
	return snap
}
