package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file renders a Snapshot in Prometheus text exposition format
// (0.0.4), matching the conventions of the control plane's hand-rolled
// writer so one linter covers both: HELP/TYPE once per family before its
// samples, counter families ending in _total, histograms as cumulative
// _bucket series with strictly ascending le bounds closed by +Inf, and
// deterministic ordering throughout. Histogram buckets with no new
// observations are elided (the cumulative contract allows any bound
// subset), so a 141-bucket ladder costs only as many lines as it has
// distinct observed values.

func escape(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func renderLabels(labels []Label, extra string) string {
	if len(labels) == 0 && extra == "" {
		return ""
	}
	parts := make([]string, 0, len(labels)+1)
	for _, l := range labels {
		// escape() already produces the exposition-format escaping; wrapping
		// with %q would escape a second time.
		parts = append(parts, l.Key+`="`+escape(l.Value)+`"`)
	}
	if extra != "" {
		parts = append(parts, extra)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WriteProm renders the snapshot as Prometheus exposition text. Families
// arrive sorted from Snapshot, so a family's header is emitted at its
// first series and never repeated.
func WriteProm(w io.Writer, snap Snapshot) error {
	var err error
	printf := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	header := func(last *string, name, typ, help string) {
		if *last == name {
			return
		}
		printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		*last = name
	}

	last := ""
	for _, c := range snap.Counters {
		header(&last, c.Name, "counter", c.Help)
		printf("%s%s %g\n", c.Name, renderLabels(c.Labels, ""), float64(c.Value))
	}
	last = ""
	for _, g := range snap.Gauges {
		header(&last, g.Name, "gauge", g.Help)
		printf("%s%s %g\n", g.Name, renderLabels(g.Labels, ""), g.Value)
	}
	last = ""
	for _, h := range snap.Histograms {
		if h.Count == 0 {
			continue
		}
		header(&last, h.Name, "histogram", h.Help)
		var cum uint64
		for i, c := range h.Counts {
			if c == 0 || i == numBuckets-1 {
				continue // overflow bucket is covered by the +Inf line
			}
			cum += c
			le := strconv.FormatFloat(BucketBound(i), 'g', -1, 64)
			printf("%s_bucket%s %g\n", h.Name, renderLabels(h.Labels, fmt.Sprintf("le=%q", le)), float64(cum))
		}
		printf("%s_bucket%s %g\n", h.Name, renderLabels(h.Labels, `le="+Inf"`), float64(h.Count))
		printf("%s_sum%s %g\n", h.Name, renderLabels(h.Labels, ""), h.SumSeconds)
		printf("%s_count%s %g\n", h.Name, renderLabels(h.Labels, ""), float64(h.Count))
	}
	return err
}
