package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// The histogram is log-linear over nanoseconds: each power-of-two octave
// splits into four linear sub-buckets, so any recorded duration lands in
// a bucket whose bounds are within 12.5% of the true value — tight enough
// for p50/p99 while keeping the layout fixed and mergeable. Values below
// subCount nanoseconds index directly; values above maxExp octaves go to
// one overflow bucket. Every histogram shares this layout, so snapshots
// merge by adding counts — no bound negotiation, ever.
const (
	subBits  = 2
	subCount = 1 << subBits // linear sub-buckets per octave
	// maxExp caps the top octave at 2^35 ns ≈ 34 s; control-plane rounds,
	// solves, and staleness watermarks all live far below it.
	maxExp = 35
	// numBuckets: direct buckets for the first two octaves (values 0..3),
	// then four per octave for exponents 2..maxExp, plus one overflow.
	numBuckets = subCount*maxExp - subCount + subCount + 1
)

// bucketOf maps a nanosecond value to its bucket index.
func bucketOf(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	u := uint64(ns)
	if u < subCount {
		return int(u)
	}
	exp := bits.Len64(u) - 1
	if exp > maxExp {
		return numBuckets - 1
	}
	sub := (u >> (uint(exp) - subBits)) & (subCount - 1)
	return subCount*(exp-1) + int(sub)
}

// BucketBound returns the inclusive upper bound of bucket i in seconds;
// the last bucket is +Inf. Bounds are strictly increasing, which the
// exposition linter checks on every scrape.
func BucketBound(i int) float64 {
	if i >= numBuckets-1 {
		return math.Inf(1)
	}
	if i < subCount {
		return float64(i) / 1e9
	}
	exp := i/subCount + 1
	sub := i % subCount
	// Bucket i holds u in [(subCount+sub)<<(exp-subBits), (subCount+sub+1)<<(exp-subBits)),
	// so the inclusive nanosecond bound is one below the next bucket's floor.
	upper := uint64(subCount+sub+1)<<(uint(exp)-subBits) - 1
	return float64(upper) / 1e9
}

// NumBuckets is the fixed bucket count every obs histogram shares.
func NumBuckets() int { return numBuckets }

// histShard is one stripe of histogram state. The bucket array dominates
// the struct, so per-field padding would buy nothing; shards are
// allocated individually to land on separate cache lines.
type histShard struct {
	counts [numBuckets]atomic.Uint64
	sumNS  atomic.Int64
}

// Histogram is a striped log-linear duration histogram.
type Histogram struct {
	shards []*histShard
}

func newHistogram() *Histogram {
	h := &Histogram{shards: make([]*histShard, nShards)}
	for i := range h.shards {
		h.shards[i] = &histShard{}
	}
	return h
}

// ObserveDuration records one duration.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	s := h.shards[shardIndex()]
	s.counts[bucketOf(ns)].Add(1)
	s.sumNS.Add(ns)
}

// Observe records one value in seconds.
func (h *Histogram) Observe(seconds float64) {
	if h == nil {
		return
	}
	if seconds < 0 {
		seconds = 0
	}
	h.ObserveDuration(time.Duration(seconds * 1e9))
}

// HistogramSnapshot is one histogram series at read time. Counts are
// per-bucket (not cumulative); the bucket layout is the package-wide
// log-linear ladder, so any two snapshots merge.
type HistogramSnapshot struct {
	Name   string  `json:"name"`
	Help   string  `json:"help,omitempty"`
	Labels []Label `json:"labels,omitempty"`
	// Counts holds one entry per bucket; trailing zero buckets are
	// truncated to keep marshaled snapshots small.
	Counts     []uint64 `json:"counts"`
	Count      uint64   `json:"count"`
	SumSeconds float64  `json:"sum_seconds"`
}

// Snapshot sums the shards. The result carries no name/labels; the
// registry stamps those.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var snap HistogramSnapshot
	if h == nil {
		return snap
	}
	counts := make([]uint64, numBuckets)
	var sumNS int64
	for _, s := range h.shards {
		for i := range counts {
			counts[i] += s.counts[i].Load()
		}
		sumNS += s.sumNS.Load()
	}
	last := -1
	for i, c := range counts {
		snap.Count += c
		if c != 0 {
			last = i
		}
	}
	snap.Counts = counts[:last+1]
	snap.SumSeconds = float64(sumNS) / 1e9
	return snap
}

// Merge returns the bucket-wise sum of two snapshots. All obs histograms
// share one layout, so merging never fails; name/help/labels follow the
// receiver.
func (s HistogramSnapshot) Merge(o HistogramSnapshot) HistogramSnapshot {
	out := s
	n := len(s.Counts)
	if len(o.Counts) > n {
		n = len(o.Counts)
	}
	counts := make([]uint64, n)
	copy(counts, s.Counts)
	for i, c := range o.Counts {
		counts[i] += c
	}
	out.Counts = counts
	out.Count = s.Count + o.Count
	out.SumSeconds = s.SumSeconds + o.SumSeconds
	return out
}

// Quantile estimates the q-th quantile in seconds (q in [0,1]) by linear
// interpolation within the landing bucket. Empty snapshots return 0; an
// overflow-bucket landing returns the top finite bound.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum >= rank {
			if i >= numBuckets-1 {
				return BucketBound(numBuckets - 2)
			}
			lo := 0.0
			if i > 0 {
				lo = BucketBound(i - 1)
			}
			hi := BucketBound(i)
			frac := 0.0
			if c > 0 {
				frac = (rank - prev) / float64(c)
			}
			return lo + (hi-lo)*frac
		}
	}
	if n := len(s.Counts); n > 0 {
		return BucketBound(n - 1)
	}
	return 0
}
