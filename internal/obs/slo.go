package obs

import "time"

// An Objective is one service-level objective over an observed duration:
// values at or under Target are good, values over it breach. Budget is
// the tolerated breach fraction (0.01 = 99% of observations must meet
// the target); the burn rate gauge reports observed breach fraction
// divided by budget, so burn > 1 means the error budget is being spent
// faster than allowed — the standard SLO alerting signal.
type Objective struct {
	// Name labels the objective's metric series ("round", "staleness").
	Name string
	// Target is the deadline or threshold observations are held to.
	Target time.Duration
	// Budget is the tolerated breach fraction; <= 0 defaults to 0.01.
	Budget float64
}

// SLO tracks one objective: good/breach counters plus a burn-rate gauge,
// all registered under pocolo_obs_slo_*. A nil SLO is a no-op tracker.
type SLO struct {
	target time.Duration
	budget float64
	good   *Counter
	breach *Counter
	burn   *Gauge
}

// NewSLO registers the objective's series in reg. A nil registry yields
// a nil (no-op) tracker.
func NewSLO(reg *Registry, o Objective) *SLO {
	if reg == nil {
		return nil
	}
	if o.Budget <= 0 {
		o.Budget = 0.01
	}
	l := Label{Key: "slo", Value: o.Name}
	s := &SLO{
		target: o.Target,
		budget: o.Budget,
		good:   reg.Counter("pocolo_obs_slo_good_total", "Observations meeting their SLO target.", l),
		breach: reg.Counter("pocolo_obs_slo_breach_total", "Observations exceeding their SLO target.", l),
		burn:   reg.Gauge("pocolo_obs_slo_burn", "Error-budget burn rate: breach fraction over budget; >1 means the budget is being overspent.", l),
	}
	reg.Gauge("pocolo_obs_slo_target_seconds", "Configured SLO target.", l).Set(o.Target.Seconds())
	return s
}

// Observe classifies one observation against the target, updates the
// burn gauge, and reports whether this observation breached. The update
// is lock-free: counters stripe, and the gauge is last-write-wins over a
// ratio that converges regardless of write order.
func (s *SLO) Observe(d time.Duration) (breached bool) {
	if s == nil {
		return false
	}
	breached = d > s.target
	if breached {
		s.breach.Inc()
	} else {
		s.good.Inc()
	}
	g, b := s.good.Value(), s.breach.Value()
	if total := g + b; total > 0 {
		s.burn.Set(float64(b) / float64(total) / s.budget)
	}
	return breached
}

// Burn returns the current burn-rate gauge value.
func (s *SLO) Burn() float64 {
	if s == nil {
		return 0
	}
	return s.burn.Value()
}

// Target returns the configured target (0 for a nil tracker).
func (s *SLO) Target() time.Duration {
	if s == nil {
		return 0
	}
	return s.target
}
