package obs

import "time"

// SolveObs bundles the handles an assignment re-solve records into: the
// solve latency histogram plus the batch-repair work counters. It exists
// so internal/assign can record without importing the registry (and so
// obs never imports assign back — the handles are plain metric pointers).
// A nil SolveObs, like every obs handle, is a no-op.
type SolveObs struct {
	// Latency receives the wall-clock duration of each ResolveBatch call.
	Latency *Histogram
	// Dirty counts dirty lines (rows + columns) actually repaired.
	Dirty *Counter
	// Rounds counts auction bidding rounds across ε-scaling phases.
	Rounds *Counter
	// Augments counts sequential cleanup augmenting passes.
	Augments *Counter
}

// NewSolveObs registers the solve metric family for one pod (or one
// unsharded solver) in reg. A nil registry yields a nil handle set.
func NewSolveObs(reg *Registry, pod string) *SolveObs {
	if reg == nil {
		return nil
	}
	l := Label{Key: "pod", Value: pod}
	return &SolveObs{
		Latency:  reg.Histogram("pocolo_obs_pod_solve_seconds", "Wall-clock duration of per-pod batch re-solves.", l),
		Dirty:    reg.Counter("pocolo_obs_batch_dirty_total", "Dirty matrix lines repaired by batch re-solves.", l),
		Rounds:   reg.Counter("pocolo_obs_batch_rounds_total", "Auction bidding rounds run by batch re-solves.", l),
		Augments: reg.Counter("pocolo_obs_batch_augments_total", "Sequential cleanup augmenting passes after auctions.", l),
	}
}

// Record folds one re-solve's outcome into the handles.
func (o *SolveObs) Record(d time.Duration, dirty, rounds, augments int) {
	if o == nil {
		return
	}
	o.Latency.ObserveDuration(d)
	o.Dirty.Add(int64(dirty))
	o.Rounds.Add(int64(rounds))
	o.Augments.Add(int64(augments))
}
