package obs

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pocolo/internal/trace"
)

func TestCounterConcurrentSum(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("pocolo_obs_test_total", "test")
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter sum = %d, want %d", got, workers*per)
	}
	if c.Value() != reg.Snapshot().Counters[0].Value {
		t.Fatalf("snapshot disagrees with Value")
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	c := NewRegistry().Counter("pocolo_obs_neg_total", "test")
	c.Add(5)
	c.Add(-3)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
}

func TestRegistryIdentityAndLabels(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("pocolo_obs_id_total", "test", Label{"pod", "p0"})
	b := reg.Counter("pocolo_obs_id_total", "test", Label{"pod", "p0"})
	if a != b {
		t.Fatalf("same (name, labels) returned distinct counters")
	}
	if c := reg.Counter("pocolo_obs_id_total", "test", Label{"pod", "p1"}); c == a {
		t.Fatalf("distinct labels returned the same counter")
	}
	a.Inc()
	snap := reg.Snapshot()
	if len(snap.Counters) != 2 {
		t.Fatalf("snapshot has %d counters, want 2", len(snap.Counters))
	}
	// Series are ordered by label signature: p0 before p1.
	if snap.Counters[0].Labels[0].Value != "p0" || snap.Counters[0].Value != 1 {
		t.Fatalf("unexpected first series: %+v", snap.Counters[0])
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("pocolo_obs_conflict_total", "test")
	defer func() {
		if recover() == nil {
			t.Fatalf("re-registering a counter family as a gauge did not panic")
		}
	}()
	reg.Gauge("pocolo_obs_conflict_total", "test")
}

func TestNilSafety(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x_total", "h")
	g := reg.Gauge("x", "h")
	h := reg.Histogram("x", "h")
	c.Inc()
	c.Add(3)
	g.Set(1)
	h.Observe(0.5)
	h.ObserveDuration(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 {
		t.Fatalf("nil metrics not inert")
	}
	if got := reg.Snapshot(); len(got.Counters) != 0 {
		t.Fatalf("nil registry snapshot not empty")
	}
	var slo *SLO
	if slo.Observe(time.Hour) {
		t.Fatalf("nil SLO reported a breach")
	}
	var rec *FlightRecorder
	if _, taken, err := rec.Trigger(Bundle{}); taken || err != nil {
		t.Fatalf("nil recorder triggered")
	}
}

func TestBucketLayout(t *testing.T) {
	// Bounds strictly ascending.
	prev := -1.0
	for i := 0; i < NumBuckets()-1; i++ {
		b := BucketBound(i)
		if b <= prev {
			t.Fatalf("bucket %d bound %g not above previous %g", i, b, prev)
		}
		prev = b
	}
	if !math.IsInf(BucketBound(NumBuckets()-1), 1) {
		t.Fatalf("last bucket bound is not +Inf")
	}
	// Every value lands in a bucket whose bound brackets it.
	for _, ns := range []int64{0, 1, 3, 4, 7, 8, 1000, 999_999, 1_000_000, 123_456_789, 5_000_000_000} {
		i := bucketOf(ns)
		sec := float64(ns) / 1e9
		if hi := BucketBound(i); sec > hi {
			t.Fatalf("value %dns above its bucket %d bound %g", ns, i, hi)
		}
		if i > 0 {
			if lo := BucketBound(i - 1); sec <= lo {
				t.Fatalf("value %dns at or below bucket %d's lower bound %g", ns, i, lo)
			}
		}
	}
	// Monotone: larger values never land in earlier buckets.
	last := 0
	for ns := int64(1); ns < int64(1)<<40; ns *= 3 {
		i := bucketOf(ns)
		if i < last {
			t.Fatalf("bucketOf(%d)=%d below previous %d", ns, i, last)
		}
		last = i
	}
	if got := bucketOf(int64(1) << 62); got != NumBuckets()-1 {
		t.Fatalf("huge value in bucket %d, want overflow %d", got, NumBuckets()-1)
	}
}

func TestHistogramQuantileAndMerge(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("pocolo_obs_lat_seconds", "test")
	for i := 0; i < 1000; i++ {
		h.ObserveDuration(time.Millisecond) // 1e6 ns
	}
	h.ObserveDuration(100 * time.Millisecond)
	s := h.Snapshot()
	if s.Count != 1001 {
		t.Fatalf("count = %d", s.Count)
	}
	if p50 := s.Quantile(0.50); p50 < 0.8e-3 || p50 > 1.3e-3 {
		t.Fatalf("p50 = %g, want ~1ms", p50)
	}
	if p999 := s.Quantile(0.9995); p999 < 0.08 || p999 > 0.15 {
		t.Fatalf("p99.95 = %g, want ~100ms", p999)
	}
	sum := s.SumSeconds
	if want := 1.1; math.Abs(sum-want) > 1e-9 {
		t.Fatalf("sum = %g, want %g", sum, want)
	}

	m := s.Merge(s)
	if m.Count != 2002 || math.Abs(m.SumSeconds-2*sum) > 1e-9 {
		t.Fatalf("merge: count=%d sum=%g", m.Count, m.SumSeconds)
	}
	var total uint64
	for _, c := range m.Counts {
		total += c
	}
	if total != m.Count {
		t.Fatalf("merged bucket counts %d != count %d", total, m.Count)
	}
	// Merging with an empty snapshot is the identity.
	if id := s.Merge(HistogramSnapshot{}); id.Count != s.Count || id.SumSeconds != s.SumSeconds {
		t.Fatalf("identity merge changed the snapshot")
	}
}

func TestWritePromShape(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("pocolo_obs_rounds_total", "Rounds.").Add(3)
	reg.Gauge("pocolo_obs_headroom_watts", "Headroom.", Label{"pod", "p0"}).Set(12.5)
	reg.Histogram("pocolo_obs_round_seconds", "Round latency.").Observe(0.002)
	var buf bytes.Buffer
	if err := WriteProm(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE pocolo_obs_rounds_total counter",
		"pocolo_obs_rounds_total 3",
		`pocolo_obs_headroom_watts{pod="p0"} 12.5`,
		"# TYPE pocolo_obs_round_seconds histogram",
		`le="+Inf"`,
		"pocolo_obs_round_seconds_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	// Empty histograms are omitted entirely.
	reg2 := NewRegistry()
	reg2.Histogram("pocolo_obs_empty_seconds", "Empty.")
	buf.Reset()
	if err := WriteProm(&buf, reg2.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("empty histogram produced output:\n%s", buf.String())
	}
}

func TestSLOBurn(t *testing.T) {
	reg := NewRegistry()
	s := NewSLO(reg, Objective{Name: "round", Target: 10 * time.Millisecond, Budget: 0.1})
	for i := 0; i < 9; i++ {
		if s.Observe(time.Millisecond) {
			t.Fatalf("fast observation breached")
		}
	}
	if !s.Observe(time.Second) {
		t.Fatalf("slow observation did not breach")
	}
	// 1 breach / 10 observations / 0.1 budget = burn 1.0.
	if burn := s.Burn(); math.Abs(burn-1.0) > 1e-9 {
		t.Fatalf("burn = %g, want 1.0", burn)
	}
	if s.Target() != 10*time.Millisecond {
		t.Fatalf("target = %v", s.Target())
	}
}

func bundleEvents() []trace.Event {
	tr := trace.New("ctl", 64)
	now := time.Unix(1_700_000_000, 0)
	tr.ControlDecision(now, trace.ControlDecision{Tick: 1, Load: 100, Path: trace.PathExact})
	tr.SolveSummary(now.Add(time.Second), trace.SolveSummary{Method: "sharded", Rows: 2, Cols: 2, Total: 7})
	return tr.Events()
}

func TestRecorderRateLimitAndBundle(t *testing.T) {
	dir := t.TempDir()
	rec := NewRecorder(RecorderConfig{Dir: dir, MinInterval: time.Minute, MaxBundles: 4})
	now := time.Unix(1_700_000_000, 0)
	b := Bundle{
		Reason: "round-deadline",
		Now:    now,
		Events: bundleEvents(),
		Pods:   map[string]int{"p0": 3},
		Detail: map[string]any{"round": 7},
	}
	got, taken, err := rec.Trigger(b)
	if err != nil || !taken {
		t.Fatalf("first trigger: taken=%v err=%v", taken, err)
	}
	for _, f := range []string{"events.jsonl", "obs.json", "pods.json", "meta.json", "goroutine.txt", "heap.pprof"} {
		if _, err := os.Stat(filepath.Join(got, f)); err != nil {
			t.Fatalf("bundle missing %s: %v", f, err)
		}
	}
	// Within MinInterval: suppressed.
	b.Now = now.Add(30 * time.Second)
	if _, taken, _ := rec.Trigger(b); taken {
		t.Fatalf("trigger inside MinInterval was not suppressed")
	}
	if rec.Throttled() != 1 {
		t.Fatalf("throttled = %d, want 1", rec.Throttled())
	}
	// Past MinInterval: taken again.
	b.Now = now.Add(2 * time.Minute)
	if _, taken, _ := rec.Trigger(b); !taken {
		t.Fatalf("trigger past MinInterval was suppressed")
	}
	if rec.Taken() != 2 {
		t.Fatalf("taken = %d, want 2", rec.Taken())
	}
	// Bundle event logs are byte-identical across identical triggers
	// (canonical wall-free JSONL), the seeded-replay contract.
	ents, err := filepath.Glob(filepath.Join(dir, "bundle-*"))
	if err != nil || len(ents) != 2 {
		t.Fatalf("bundles = %v (err %v)", ents, err)
	}
	log1, err1 := os.ReadFile(filepath.Join(ents[0], "events.jsonl"))
	log2, err2 := os.ReadFile(filepath.Join(ents[1], "events.jsonl"))
	if err1 != nil || err2 != nil || !bytes.Equal(log1, log2) {
		t.Fatalf("identical triggers produced different event logs")
	}
	evs, err := trace.ParseJSONL(bytes.NewReader(log1))
	if err != nil {
		t.Fatalf("bundle events unparsable: %v", err)
	}
	if err := trace.Validate(evs); err != nil {
		t.Fatalf("bundle events invalid: %v", err)
	}
}

func TestRecorderMaxBundles(t *testing.T) {
	rec := NewRecorder(RecorderConfig{Dir: t.TempDir(), MinInterval: time.Second, MaxBundles: 1})
	now := time.Unix(1_700_000_000, 0)
	if _, taken, err := rec.Trigger(Bundle{Reason: "x", Now: now}); !taken || err != nil {
		t.Fatalf("first trigger failed: %v", err)
	}
	if _, taken, _ := rec.Trigger(Bundle{Reason: "x", Now: now.Add(time.Hour)}); taken {
		t.Fatalf("MaxBundles not enforced")
	}
}

// The enabled hot path must not allocate: that is the whole point of the
// striped design. The disabled (nil-handle) path must not either.
func TestZeroAllocHotPath(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("pocolo_obs_alloc_total", "test")
	h := reg.Histogram("pocolo_obs_alloc_seconds", "test")
	g := reg.Gauge("pocolo_obs_alloc", "test")
	var nilC *Counter
	var nilH *Histogram
	checks := []struct {
		name string
		fn   func()
	}{
		{"counter-on", func() { c.Add(1) }},
		{"counter-off", func() { nilC.Add(1) }},
		{"gauge-on", func() { g.Set(4.2) }},
		{"hist-on", func() { h.ObserveDuration(time.Millisecond) }},
		{"hist-off", func() { nilH.ObserveDuration(time.Millisecond) }},
	}
	for _, ck := range checks {
		if allocs := testing.AllocsPerRun(200, ck.fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", ck.name, allocs)
		}
	}
}
