package cluster

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"pocolo/internal/servermgr"
)

// smallFixture trims the fixture to a two-host cluster with a short dwell
// so cache-miss recomputation stays cheap under concurrency.
func smallFixture(t *testing.T) Config {
	t.Helper()
	cfg := fixture(t)
	cfg.LC = cfg.LC[:2]
	cfg.BE = cfg.BE[:2]
	cfg.Dwell = time.Second
	return cfg
}

// TestResetMemoUnderConcurrentRunPlacement hammers ResetMemo while several
// goroutines run the same placement: every result — whether freshly
// simulated after a reset or served from the cache — must be identical to
// the reference, and the race detector must stay quiet.
func TestResetMemoUnderConcurrentRunPlacement(t *testing.T) {
	prev := SetMemo(true)
	ResetMemo()
	defer func() { SetMemo(prev); ResetMemo() }()

	cfg := smallFixture(t)
	placement := mustPlace(t, cfg)
	ref, err := RunPlacement(cfg, placement, servermgr.PowerOptimized)
	if err != nil {
		t.Fatal(err)
	}

	const workers, iters = 4, 3
	results := make([][]Result, workers)
	errs := make([]error, workers)
	stop := make(chan struct{})
	var resetter sync.WaitGroup
	resetter.Add(1)
	go func() {
		defer resetter.Done()
		for {
			select {
			case <-stop:
				return
			default:
				ResetMemo()
				time.Sleep(time.Millisecond)
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				res, err := RunPlacement(cfg, placement, servermgr.PowerOptimized)
				if err != nil {
					errs[w] = err
					return
				}
				results[w] = append(results[w], res)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	resetter.Wait()

	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		for i, res := range results[w] {
			if !reflect.DeepEqual(res, ref) {
				t.Fatalf("worker %d run %d diverged from reference under concurrent ResetMemo", w, i)
			}
		}
	}
}

// TestFingerprintKeys pins the cache-identity rules: seed, dwell, and the
// invariants flag are part of a run's fingerprint; the worker-pool size is
// deliberately not.
func TestFingerprintKeys(t *testing.T) {
	cfg := smallFixture(t)
	placement := mustPlace(t, cfg)
	key := func(c Config) string { return placementKey(&c, placement, servermgr.PowerOptimized) }

	base := key(cfg)
	if other := key(cfg); other != base {
		t.Fatal("identical configs produced different fingerprints")
	}

	seeded := cfg
	seeded.Seed++
	if key(seeded) == base {
		t.Error("differing seeds share a fingerprint")
	}
	dwelled := cfg
	dwelled.Dwell += time.Second
	if key(dwelled) == base {
		t.Error("differing dwells share a fingerprint")
	}
	checked := cfg
	checked.Invariants = true
	if key(checked) == base {
		t.Error("an invariant-checked run shares a fingerprint with an unchecked one")
	}
	pooled := cfg
	pooled.Parallel = 7
	if key(pooled) != base {
		t.Error("worker-pool size leaked into the fingerprint; parallelism must not change results")
	}
	sharded := cfg
	sharded.Shard = ShardSettings{PodSize: 2}
	if key(sharded) == base {
		t.Error("differing pod layouts share a fingerprint")
	}
	regapped := cfg
	regapped.Shard = ShardSettings{PodSize: 2, RebalanceGap: 0.5}
	if key(regapped) == key(sharded) {
		t.Error("differing rebalance gaps share a fingerprint")
	}
	mgmt := placementKey(&cfg, placement, servermgr.PowerUnaware)
	if mgmt == base {
		t.Error("differing LC policies share a fingerprint")
	}
}

// TestMemoStatsCounts pins the exact hit/miss accounting across misses,
// hits, and fingerprint changes — including that an invariant-checked run
// never satisfies itself from an unchecked entry.
func TestMemoStatsCounts(t *testing.T) {
	prev := SetMemo(true)
	ResetMemo()
	defer func() { SetMemo(prev); ResetMemo() }()

	cfg := smallFixture(t)
	placement := mustPlace(t, cfg)
	run := func(c Config) {
		t.Helper()
		if _, err := RunPlacement(c, placement, servermgr.PowerOptimized); err != nil {
			t.Fatal(err)
		}
	}

	run(cfg)
	if h, m := MemoStats(); h != 0 || m != 1 {
		t.Fatalf("after first run: hits=%d misses=%d, want 0/1", h, m)
	}
	run(cfg)
	if h, m := MemoStats(); h != 1 || m != 1 {
		t.Fatalf("after repeat: hits=%d misses=%d, want 1/1", h, m)
	}
	seeded := cfg
	seeded.Seed += 100
	run(seeded)
	if h, m := MemoStats(); h != 1 || m != 2 {
		t.Fatalf("after reseeded run: hits=%d misses=%d, want 1/2", h, m)
	}
	checked := cfg
	checked.Invariants = true
	run(checked)
	if h, m := MemoStats(); h != 1 || m != 3 {
		t.Fatalf("invariant-checked run must miss an unchecked entry: hits=%d misses=%d, want 1/3", h, m)
	}
	run(checked)
	if h, m := MemoStats(); h != 2 || m != 3 {
		t.Fatalf("repeated checked run must hit: hits=%d misses=%d, want 2/3", h, m)
	}
	ResetMemo()
	if h, m := MemoStats(); h != 0 || m != 0 {
		t.Fatalf("ResetMemo left counters at %d/%d", h, m)
	}
	run(cfg)
	if h, m := MemoStats(); h != 0 || m != 1 {
		t.Fatalf("after reset the cache must be cold: hits=%d misses=%d, want 0/1", h, m)
	}
}
