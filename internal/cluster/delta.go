package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"pocolo/internal/machine"
	"pocolo/internal/parallel"
	"pocolo/internal/utility"
	"pocolo/internal/workload"
)

// Delta-driven matrix construction: a MatrixBuilder owns a Matrix across
// placement rounds and recomputes only the cells whose inputs changed.
// Every cell of the performance matrix is a pure function of exactly
// four inputs — the machine platform plus load range (shared by all
// cells), the BE job's fitted model (shared by the row), and the LC
// host's cap/peak-load/model triple (shared by the column) — so each
// cell is identified by a (global, row, column) fingerprint triple.
// Fingerprints are interned to dense uint32 ids from a monotonic
// counter, making the id itself a generation stamp: when an input
// changes, its fingerprint interns to a fresh id and every stale memo
// entry silently stops matching, with no epoch bookkeeping. A
// process-wide memo keyed by the id triple then collapses identical
// cells across rows, columns, pods, builders, and rounds — at fleet
// scale (thousands of hosts drawn from a few capacity classes running
// a few application models) the distinct-cell count is orders of
// magnitude below the cell count.
type cellKey struct {
	global, row, col uint32
}

// DeltaStats counts the work of one matrix build or refresh:
// CellsComputed is the number of estimatePairThroughput evaluations,
// CellsReused the number of cells filled from the memo or from a
// duplicate cell in the same batch. Both are deterministic for a given
// input regardless of the worker count: distinct cells are identified
// before any parallel work starts.
type DeltaStats struct {
	CellsComputed int
	CellsReused   int
}

func (s *DeltaStats) add(o DeltaStats) {
	s.CellsComputed += o.CellsComputed
	s.CellsReused += o.CellsReused
}

// cellMemo is the process-wide delta-cell cache, mirroring the sweep
// memo's policy: bounded maps cleared wholesale, enable/disable with
// clear-on-disable, hit/miss counters. The intern counter is never
// rewound — after a wholesale clear, stale ids held by live builders
// simply never match again.
var cellMemo = struct {
	sync.Mutex
	enabled bool
	intern  map[string]uint32
	next    uint32
	vals    map[cellKey]float64
	hits    int
	misses  int
}{
	enabled: true,
	intern:  make(map[string]uint32),
	next:    1,
	vals:    make(map[cellKey]float64),
}

// cellMemoLimit bounds the value map and the intern table; past it the
// full map is cleared wholesale. 1<<16 entries comfortably hold a
// hyperscale fleet's distinct (machine, model, host-class) combinations
// while bounding worst-case memory near a few megabytes.
const cellMemoLimit = 1 << 16

// SetCellMemo enables or disables the process-wide delta-cell memo.
// Disabling also clears it. Returns the previous setting.
func SetCellMemo(enabled bool) bool {
	cellMemo.Lock()
	defer cellMemo.Unlock()
	prev := cellMemo.enabled
	cellMemo.enabled = enabled
	if !enabled {
		cellMemo.vals = make(map[cellKey]float64)
	}
	return prev
}

// ResetCellMemo clears the delta-cell memo and its counters without
// changing whether it is enabled.
func ResetCellMemo() {
	cellMemo.Lock()
	defer cellMemo.Unlock()
	cellMemo.vals = make(map[cellKey]float64)
	cellMemo.hits, cellMemo.misses = 0, 0
}

// CellMemoStats reports entry count and hit/miss totals since the last
// reset.
func CellMemoStats() (entries, hits, misses int) {
	cellMemo.Lock()
	defer cellMemo.Unlock()
	return len(cellMemo.vals), cellMemo.hits, cellMemo.misses
}

// internFP maps a fingerprint string to a stable dense id. Ids are
// monotonic and never reused, so a cleared table cannot alias an old
// fingerprint onto a new one.
func internFP(fp string) uint32 {
	cellMemo.Lock()
	defer cellMemo.Unlock()
	if id, ok := cellMemo.intern[fp]; ok {
		return id
	}
	if len(cellMemo.intern) >= cellMemoLimit {
		cellMemo.intern = make(map[string]uint32)
		cellMemo.vals = make(map[cellKey]float64)
	}
	id := cellMemo.next
	cellMemo.next++
	cellMemo.intern[fp] = id
	return id
}

func cellMemoLookup(k cellKey) (float64, bool) {
	cellMemo.Lock()
	defer cellMemo.Unlock()
	if !cellMemo.enabled {
		return 0, false
	}
	v, ok := cellMemo.vals[k]
	if ok {
		cellMemo.hits++
	} else {
		cellMemo.misses++
	}
	return v, ok
}

func cellMemoStore(k cellKey, v float64) {
	cellMemo.Lock()
	defer cellMemo.Unlock()
	if !cellMemo.enabled {
		return
	}
	if len(cellMemo.vals) >= cellMemoLimit {
		cellMemo.vals = make(map[cellKey]float64)
	}
	cellMemo.vals[k] = v
}

// globalFP fingerprints the cell inputs shared by the whole matrix.
func globalFP(cfg machine.Config, loads []float64) string {
	return fmt.Sprintf("%+v|loads=%v", cfg, loads)
}

// colFP fingerprints exactly the LC-side inputs estimatePairThroughput
// reads: the host's peak load, its provisioned power cap, and its fitted
// model. Names and other spec fields are deliberately excluded so
// per-host instance specs collapse onto their capacity class.
func colFP(lc *workload.Spec, lcModel *utility.Model) string {
	return fmt.Sprintf("%v|%v|%s", lc.PeakLoad, lc.ProvisionedPowerW, utility.ModelKey(lcModel))
}

// MatrixBuilder owns a Matrix and rebuilds it incrementally as host caps
// and job models drift between placement rounds. Unlike BuildMatrix it
// permits zero BE rows (an empty pod still tracks its hosts' column
// fingerprints so the rebalancer can price migrations into it) and it
// supports row add/remove with the same swap-remove semantics as
// assign.Incremental, so a pod's builder and solver stay index-aligned.
//
// A builder is not safe for concurrent use, but distinct builders are:
// all shared state lives in the locked process-wide cell memo.
type MatrixBuilder struct {
	machine  machine.Config
	loads    []float64
	workers  int
	models   map[string]*utility.Model
	globalID uint32

	be      []*workload.Spec
	beModel []*utility.Model
	rowID   []uint32

	lc      []*workload.Spec
	lcModel []*utility.Model
	colID   []uint32
	// colPeak and colCap cache the raw spec values behind colID so a
	// refresh can clear a clean column with three comparisons instead of
	// re-rendering its fingerprint; at fleet scale the fingerprint
	// rendering would otherwise dominate a single-host delta.
	colPeak []float64
	colCap  []float64

	mx    *Matrix
	stats DeltaStats
}

// RefreshResult reports which rows and columns of the matrix actually
// changed value during a Refresh (sorted ascending), plus the work
// counters. Delta granularity is rows and columns because those are the
// fingerprint units: a changed job model dirties its row, a changed host
// cap dirties its column.
type RefreshResult struct {
	ChangedRows []int
	ChangedCols []int
	Stats       DeltaStats
}

type cellRef struct{ i, j int }

// NewMatrixBuilder validates the configuration and builds the initial
// matrix through the delta-cell memo. cfg.Trace and cfg.Now are unused —
// tracing of builder-driven construction is the pod layer's job.
func NewMatrixBuilder(cfg MatrixConfig) (*MatrixBuilder, error) {
	if err := cfg.Machine.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.LC) == 0 {
		return nil, errors.New("cluster: need at least one LC application")
	}
	loads := cfg.Loads
	if len(loads) == 0 {
		loads = DefaultLoadRange()
	}
	for _, l := range loads {
		if l <= 0 || l > 1 {
			return nil, fmt.Errorf("cluster: load fraction %v outside (0, 1]", l)
		}
	}
	b := &MatrixBuilder{
		machine:  cfg.Machine,
		loads:    append([]float64(nil), loads...),
		workers:  cfg.Parallel,
		models:   cfg.Models,
		globalID: internFP(globalFP(cfg.Machine, loads)),
		be:       append([]*workload.Spec(nil), cfg.BE...),
		beModel:  make([]*utility.Model, len(cfg.BE)),
		rowID:    make([]uint32, len(cfg.BE)),
		lc:       append([]*workload.Spec(nil), cfg.LC...),
		lcModel:  make([]*utility.Model, len(cfg.LC)),
		colID:    make([]uint32, len(cfg.LC)),
		colPeak:  make([]float64, len(cfg.LC)),
		colCap:   make([]float64, len(cfg.LC)),
		mx: &Matrix{
			BENames: make([]string, len(cfg.BE)),
			LCNames: make([]string, len(cfg.LC)),
			Value:   make([][]float64, len(cfg.BE)),
		},
	}
	for i, be := range cfg.BE {
		m, ok := cfg.Models[be.Name]
		if !ok {
			return nil, fmt.Errorf("cluster: no fitted model for %s", be.Name)
		}
		b.beModel[i] = m
		b.rowID[i] = internFP(utility.ModelKey(m))
		b.mx.BENames[i] = be.Name
		b.mx.Value[i] = make([]float64, len(cfg.LC))
	}
	for j, lc := range cfg.LC {
		m, ok := cfg.Models[lc.Name]
		if !ok {
			return nil, fmt.Errorf("cluster: no fitted model for %s", lc.Name)
		}
		b.lcModel[j] = m
		b.colID[j] = internFP(colFP(lc, m))
		b.colPeak[j] = lc.PeakLoad
		b.colCap[j] = lc.ProvisionedPowerW
		b.mx.LCNames[j] = lc.Name
	}
	refs := make([]cellRef, 0, len(b.be)*len(b.lc))
	for i := range b.be {
		for j := range b.lc {
			refs = append(refs, cellRef{i, j})
		}
	}
	if _, err := b.computeCells(refs); err != nil {
		return nil, err
	}
	return b, nil
}

// Matrix returns the live matrix. It is owned by the builder: callers
// must treat it as read-only, and its contents change on every Refresh,
// AddRow, and RemoveRow.
func (b *MatrixBuilder) Matrix() *Matrix { return b.mx }

// Rows returns the current BE row count.
func (b *MatrixBuilder) Rows() int { return len(b.be) }

// Cols returns the LC column count.
func (b *MatrixBuilder) Cols() int { return len(b.lc) }

// Stats returns the cumulative work counters since construction
// (including the initial build).
func (b *MatrixBuilder) Stats() DeltaStats { return b.stats }

// Refresh re-fingerprints dirty rows and columns against the live specs
// and models, recomputes only the cells in dirty rows or columns, and
// reports which rows and columns actually changed value. Specs are
// shared with the caller (caps are read at refresh time) and models are
// re-resolved by name from the configured model map, so in-place cap
// mutations and model replacements are both picked up.
//
// Dirtiness is detected by comparing the raw inputs — the resolved model
// pointer plus, for columns, the spec's peak load and power cap — so a
// clean line costs a few comparisons rather than a fingerprint render.
// Fitted models must therefore be treated as immutable: to change a
// row's model, replace the map entry with a new *Model (mutating an
// existing model in place is not detected anywhere in this package).
func (b *MatrixBuilder) Refresh() (RefreshResult, error) {
	var res RefreshResult
	rowDirty := make([]bool, len(b.be))
	colDirty := make([]bool, len(b.lc))
	for i, be := range b.be {
		m, ok := b.models[be.Name]
		if !ok {
			return res, fmt.Errorf("cluster: no fitted model for %s", be.Name)
		}
		if m == b.beModel[i] {
			continue
		}
		if id := internFP(utility.ModelKey(m)); id != b.rowID[i] {
			b.rowID[i] = id
			rowDirty[i] = true
		}
		b.beModel[i] = m
	}
	for j, lc := range b.lc {
		m, ok := b.models[lc.Name]
		if !ok {
			return res, fmt.Errorf("cluster: no fitted model for %s", lc.Name)
		}
		if m == b.lcModel[j] && lc.PeakLoad == b.colPeak[j] && lc.ProvisionedPowerW == b.colCap[j] {
			continue
		}
		if id := internFP(colFP(lc, m)); id != b.colID[j] {
			b.colID[j] = id
			colDirty[j] = true
		}
		b.lcModel[j] = m
		b.colPeak[j] = lc.PeakLoad
		b.colCap[j] = lc.ProvisionedPowerW
	}
	// Cells are attributed to the fingerprint that dirtied them: a dirty
	// row claims its whole row, a dirty column claims only its cells in
	// clean rows. The split is what lets the pod layer repair its solver
	// with one SetRow/SetCol per dirty line instead of a full re-solve.
	var refs []cellRef
	for i := range b.be {
		if rowDirty[i] {
			for j := range b.lc {
				refs = append(refs, cellRef{i, j})
			}
		}
	}
	nRowRefs := len(refs)
	for j := range b.lc {
		if !colDirty[j] {
			continue
		}
		for i := range b.be {
			if !rowDirty[i] {
				refs = append(refs, cellRef{i, j})
			}
		}
	}
	if len(refs) == 0 {
		return res, nil
	}
	old := make([]float64, len(refs))
	for k, r := range refs {
		old[k] = b.mx.Value[r.i][r.j]
	}
	stats, err := b.computeCells(refs)
	if err != nil {
		return res, err
	}
	res.Stats = stats
	rowChanged := make(map[int]bool)
	colChanged := make(map[int]bool)
	for k, r := range refs {
		if b.mx.Value[r.i][r.j] == old[k] {
			continue
		}
		if k < nRowRefs {
			rowChanged[r.i] = true
		} else {
			colChanged[r.j] = true
		}
	}
	res.ChangedRows = sortedKeys(rowChanged)
	res.ChangedCols = sortedKeys(colChanged)
	return res, nil
}

// AddRow appends a BE job to the matrix, computing its row through the
// memo, and returns the new row index.
func (b *MatrixBuilder) AddRow(be *workload.Spec) (int, error) {
	m, ok := b.models[be.Name]
	if !ok {
		return 0, fmt.Errorf("cluster: no fitted model for %s", be.Name)
	}
	i := len(b.be)
	b.be = append(b.be, be)
	b.beModel = append(b.beModel, m)
	b.rowID = append(b.rowID, internFP(utility.ModelKey(m)))
	b.mx.BENames = append(b.mx.BENames, be.Name)
	b.mx.Value = append(b.mx.Value, make([]float64, len(b.lc)))
	refs := make([]cellRef, len(b.lc))
	for j := range b.lc {
		refs[j] = cellRef{i, j}
	}
	if _, err := b.computeCells(refs); err != nil {
		// Roll the append back so the builder stays consistent.
		b.be = b.be[:i]
		b.beModel = b.beModel[:i]
		b.rowID = b.rowID[:i]
		b.mx.BENames = b.mx.BENames[:i]
		b.mx.Value = b.mx.Value[:i]
		return 0, err
	}
	return i, nil
}

// RemoveRow deletes a BE row by swapping the last row into index i —
// the same semantics as assign.Incremental.RemoveRow, so a pod applying
// both keeps its builder and solver index-aligned.
func (b *MatrixBuilder) RemoveRow(i int) error {
	if i < 0 || i >= len(b.be) {
		return fmt.Errorf("cluster: row %d outside %d rows", i, len(b.be))
	}
	last := len(b.be) - 1
	b.be[i] = b.be[last]
	b.beModel[i] = b.beModel[last]
	b.rowID[i] = b.rowID[last]
	b.mx.BENames[i] = b.mx.BENames[last]
	b.mx.Value[i] = b.mx.Value[last]
	b.be = b.be[:last]
	b.beModel = b.beModel[:last]
	b.rowID = b.rowID[:last]
	b.mx.BENames = b.mx.BENames[:last]
	b.mx.Value = b.mx.Value[:last]
	return nil
}

// RowSpec returns the BE spec backing row i.
func (b *MatrixBuilder) RowSpec(i int) *workload.Spec { return b.be[i] }

// computeCells fills the given cells, evaluating each distinct
// (global, row, col) fingerprint at most once: distinct keys are
// resolved against the memo sequentially (so the computed/reused split
// is deterministic), misses fan through the worker pool, and every
// duplicate cell is filled from its representative's value —
// bit-identical, since cells are pure functions of the fingerprinted
// inputs.
func (b *MatrixBuilder) computeCells(refs []cellRef) (DeltaStats, error) {
	type group struct {
		refs []cellRef
		val  float64
	}
	order := make([]*group, 0, len(refs))
	byKey := make(map[cellKey]*group, len(refs))
	for _, r := range refs {
		k := cellKey{global: b.globalID, row: b.rowID[r.i], col: b.colID[r.j]}
		g := byKey[k]
		if g == nil {
			g = &group{}
			byKey[k] = g
			order = append(order, g)
		}
		g.refs = append(g.refs, r)
	}
	var toCompute []*group
	var keys []cellKey
	seen := make(map[cellKey]bool, len(byKey))
	for _, r := range refs {
		k := cellKey{global: b.globalID, row: b.rowID[r.i], col: b.colID[r.j]}
		if seen[k] {
			continue
		}
		seen[k] = true
		g := byKey[k]
		if v, ok := cellMemoLookup(k); ok {
			g.val = v
		} else {
			toCompute = append(toCompute, g)
			keys = append(keys, k)
		}
	}
	err := parallel.ForEach(len(toCompute), b.workers, func(idx int) error {
		g := toCompute[idx]
		r := g.refs[0]
		v, err := estimatePairThroughput(b.machine, b.lc[r.j], b.lcModel[r.j], b.beModel[r.i], b.loads)
		if err != nil {
			return fmt.Errorf("cluster: estimating %s on %s: %w", b.be[r.i].Name, b.lc[r.j].Name, err)
		}
		g.val = v
		return nil
	})
	if err != nil {
		return DeltaStats{}, err
	}
	for idx, g := range toCompute {
		cellMemoStore(keys[idx], g.val)
	}
	for _, g := range order {
		for _, r := range g.refs {
			b.mx.Value[r.i][r.j] = g.val
		}
	}
	st := DeltaStats{CellsComputed: len(toCompute), CellsReused: len(refs) - len(toCompute)}
	b.stats.add(st)
	return st, nil
}

func sortedKeys(m map[int]bool) []int {
	if len(m) == 0 {
		return nil
	}
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
