package cluster

import (
	"fmt"
	"math"
	"reflect"
	"testing"
	"time"

	"pocolo/internal/assign"
	"pocolo/internal/trace"
	"pocolo/internal/utility"
	"pocolo/internal/workload"
)

// shardFixture scales the 4-app fixture to an nBE×nLC fleet by cycling
// renamed per-instance clones of the catalog specs. Cloned instances
// share their class's fitted model, so the delta-cell memo collapses
// them onto a handful of distinct cells — the hyperscale shape.
func shardFixture(t *testing.T, nLC, nBE int) MatrixConfig {
	t.Helper()
	cfg := fixture(t)
	models := make(map[string]*utility.Model, len(cfg.Models)+nLC+nBE)
	for k, v := range cfg.Models {
		models[k] = v
	}
	lc := make([]*workload.Spec, nLC)
	for i := range lc {
		base := cfg.LC[i%len(cfg.LC)]
		c := cloneSpec(base)
		c.Name = fmt.Sprintf("host-%d", i)
		models[c.Name] = cfg.Models[base.Name]
		lc[i] = c
	}
	be := make([]*workload.Spec, nBE)
	for i := range be {
		base := cfg.BE[i%len(cfg.BE)]
		c := cloneSpec(base)
		c.Name = fmt.Sprintf("job-%d", i)
		models[c.Name] = cfg.Models[base.Name]
		be[i] = c
	}
	return MatrixConfig{Machine: cfg.Machine, LC: lc, BE: be, Models: models}
}

// unshardedTotal solves the full-matrix assignment from scratch.
func unshardedTotal(t *testing.T, cfg MatrixConfig) float64 {
	t.Helper()
	mx, err := BuildMatrix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, total, err := assign.Hungarian(mx.Value)
	if err != nil {
		t.Fatal(err)
	}
	return total
}

func checkPlacement(t *testing.T, cfg MatrixConfig, placement map[string]string) {
	t.Helper()
	if len(placement) != len(cfg.BE) {
		t.Fatalf("placement has %d jobs, want %d", len(placement), len(cfg.BE))
	}
	used := make(map[string]string)
	for job, host := range placement {
		if prev, dup := used[host]; dup {
			t.Fatalf("host %s assigned to both %s and %s", host, prev, job)
		}
		used[host] = job
	}
}

func TestApportion(t *testing.T) {
	cases := []struct {
		total int
		caps  []int
		want  []int
	}{
		{10, []int{4, 4, 4}, []int{4, 3, 3}},
		{5, []int{2, 2, 2}, []int{2, 2, 1}},
		{6, []int{2, 2, 2}, []int{2, 2, 2}},
		{0, []int{3, 3}, []int{0, 0}},
		{4, []int{1, 3}, []int{1, 3}},
		{3, []int{1, 4}, []int{1, 2}},
		{2, []int{2, 2, 2, 2}, []int{1, 1, 0, 0}},
	}
	for _, c := range cases {
		got := apportion(c.total, c.caps)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("apportion(%d, %v) = %v, want %v", c.total, c.caps, got, c.want)
		}
		sum := 0
		for i, n := range got {
			sum += n
			if n > c.caps[i] {
				t.Errorf("apportion(%d, %v) overfills bucket %d", c.total, c.caps, i)
			}
		}
		if sum != c.total {
			t.Errorf("apportion(%d, %v) distributed %d", c.total, c.caps, sum)
		}
	}
}

// When every pod contains one host of each capacity class and holds at
// most one job, each job gets its globally best host class, so the
// sharded total is exactly the unsharded optimum.
func TestShardedExactWhenPodsCoverClasses(t *testing.T) {
	cfg := shardFixture(t, 16, 4)
	s, err := NewSharded(cfg, ShardSettings{PodSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	placement, total, err := s.Solve(nil, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	checkPlacement(t, cfg, placement)
	if err := s.SelfCheck(); err != nil {
		t.Fatal(err)
	}
	want := unshardedTotal(t, cfg)
	if math.Abs(total-want) > 1e-6*math.Abs(want) {
		t.Errorf("sharded total %v, unsharded optimum %v", total, want)
	}
}

func TestShardedWithinToleranceOfUnsharded(t *testing.T) {
	cfg := shardFixture(t, 16, 12)
	s, err := NewSharded(cfg, ShardSettings{PodSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, before, err := s.Solve(nil, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	want := unshardedTotal(t, cfg)
	if before > want*(1+1e-9) {
		t.Errorf("sharded total %v exceeds unsharded optimum %v", before, want)
	}
	if before < 0.90*want {
		t.Errorf("sharded total %v below 90%% of unsharded optimum %v", before, want)
	}
	// Rebalancing only improves, and never past the optimum.
	if _, err := s.Rebalance(nil, time.Time{}); err != nil {
		t.Fatal(err)
	}
	placement, after, err := s.Solve(nil, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	checkPlacement(t, cfg, placement)
	if after < before-1e-9 || after > want*(1+1e-9) {
		t.Errorf("rebalance moved total %v -> %v (optimum %v)", before, after, want)
	}
	if err := s.SelfCheck(); err != nil {
		t.Fatal(err)
	}
}

func TestShardedRefreshMatchesRebuild(t *testing.T) {
	cfg := shardFixture(t, 8, 6)
	set := ShardSettings{PodSize: 4}
	s, err := NewSharded(cfg, set)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Solve(nil, time.Time{}); err != nil {
		t.Fatal(err)
	}

	// Idle refresh: no drift, no work, no change.
	before := s.Total()
	stats, err := s.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if stats != (DeltaStats{}) {
		t.Errorf("idle refresh did work: %+v", stats)
	}
	if s.Total() != before {
		t.Errorf("idle refresh changed total %v -> %v", before, s.Total())
	}

	// One host cap cut: only that pod's column is touched (one cell per
	// row of the owning pod), and the repaired solver state must match a
	// from-scratch rebuild of the mutated inputs exactly.
	cfg.LC[2].ProvisionedPowerW -= 30
	stats, err = s.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	rows0, _ := s.PodDims(0)
	if got := stats.CellsComputed + stats.CellsReused; got != rows0 {
		t.Errorf("cap cut touched %d cells, want %d (one pod column)", got, rows0)
	}
	fresh, err := NewSharded(cfg, set)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s.Total(), fresh.Total(); math.Abs(got-want) > 1e-9*math.Abs(want) {
		t.Errorf("refreshed total %v, rebuilt total %v", got, want)
	}
	if err := s.SelfCheck(); err != nil {
		t.Fatal(err)
	}

	// A job model replacement dirties one row of one pod.
	nudged := *cfg.Models[cfg.BE[1].Name]
	nudged.Alpha0 *= 1.07
	cfg.Models[cfg.BE[1].Name] = &nudged
	stats, err = s.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	_, cols0 := s.PodDims(0)
	if got := stats.CellsComputed + stats.CellsReused; got != cols0 {
		t.Errorf("model nudge touched %d cells, want %d (one pod row)", got, cols0)
	}
	fresh, err = NewSharded(cfg, set)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s.Total(), fresh.Total(); math.Abs(got-want) > 1e-9*math.Abs(want) {
		t.Errorf("refreshed total %v, rebuilt total %v", got, want)
	}
	if err := s.SelfCheck(); err != nil {
		t.Fatal(err)
	}
}

func TestShardedRebalanceMigrates(t *testing.T) {
	base := fixture(t)
	models := make(map[string]*utility.Model, 4)
	mk := func(name string, from *workload.Spec, capW float64) *workload.Spec {
		c := cloneSpec(from)
		c.Name = name
		c.ProvisionedPowerW = capW
		models[name] = base.Models[from.Name]
		return c
	}
	// Pod 0 holds two starved hosts (caps barely above idle), pod 1 two
	// well-provisioned ones. Capacity-proportional apportionment puts one
	// job in each pod, so the pod-0 job starts on a starved host with a
	// strictly better free host sitting in pod 1.
	starvedCap := base.Machine.IdlePowerW + 3
	richCap := base.LC[0].ProvisionedPowerW + 40
	lc := []*workload.Spec{
		mk("host-0", base.LC[0], starvedCap),
		mk("host-1", base.LC[0], starvedCap),
		mk("host-2", base.LC[0], richCap),
		mk("host-3", base.LC[0], richCap),
	}
	job := cloneSpec(base.BE[0])
	job.Name = "job-0"
	models[job.Name] = base.Models[base.BE[0].Name]
	job2 := cloneSpec(base.BE[1])
	job2.Name = "job-1"
	models[job2.Name] = base.Models[base.BE[1].Name]
	cfg := MatrixConfig{Machine: base.Machine, LC: lc, BE: []*workload.Spec{job, job2}, Models: models}

	s, err := NewSharded(cfg, ShardSettings{PodSize: 2, RebalanceRounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	before := s.Total()
	tr := trace.New("cluster", 0)
	moves, err := s.Rebalance(tr, time.Unix(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if moves == 0 {
		t.Fatal("no migration off a starved pod")
	}
	if after := s.Total(); after <= before {
		t.Errorf("rebalance total %v -> %v, want strict improvement", before, after)
	}
	if err := s.SelfCheck(); err != nil {
		t.Fatal(err)
	}
	migrations := 0
	for _, ev := range tr.Events() {
		if ev.Kind != trace.KindMigration {
			continue
		}
		migrations++
		if ev.Place.Reason != "rebalance" || ev.Place.Node == ev.Place.From || ev.Place.BE == "" {
			t.Errorf("bad migration event %+v", ev.Place)
		}
	}
	if migrations != moves {
		t.Errorf("traced %d migrations, Rebalance reported %d", migrations, moves)
	}
	// The rebalanced placement must respect matching feasibility.
	placement, _, err := s.Solve(tr, time.Unix(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	checkPlacement(t, cfg, placement)
	if err := trace.Validate(tr.Events()); err != nil {
		t.Fatal(err)
	}
}

func TestShardedSolveTrace(t *testing.T) {
	cfg := shardFixture(t, 16, 12)
	s, err := NewSharded(cfg, ShardSettings{PodSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New("cluster", 0)
	_, total, err := s.Solve(tr, time.Unix(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	events := tr.Events()
	if err := trace.Validate(events); err != nil {
		t.Fatal(err)
	}
	var pods []string
	var agg *trace.SolveSummary
	cells := 0
	for i := range events {
		if events[i].Kind != trace.KindSolve {
			continue
		}
		sv := events[i].Solve
		if sv.Pod != "" {
			pods = append(pods, sv.Pod)
			if sv.Method != "incremental" || sv.Rows == 0 {
				t.Errorf("pod event %+v", sv)
			}
			cells += sv.CellsComputed + sv.CellsReused
			continue
		}
		if agg != nil {
			t.Fatal("multiple aggregate solve events")
		}
		agg = &sv
	}
	if want := []string{"pod-0", "pod-1", "pod-2", "pod-3"}; !reflect.DeepEqual(pods, want) {
		t.Fatalf("pod events %v, want %v", pods, want)
	}
	if agg == nil {
		t.Fatal("no aggregate solve event")
	}
	if agg.Method != "sharded" || agg.Rows != 12 || agg.Cols != 16 || agg.Total != total {
		t.Errorf("aggregate event %+v (total %v)", agg, total)
	}
	// Every matrix cell was either computed or memo-served exactly once
	// across the initial builds.
	if agg.CellsComputed+agg.CellsReused != cells || cells != 12*4 {
		t.Errorf("cell counters: agg %d+%d, pods %d, want %d",
			agg.CellsComputed, agg.CellsReused, cells, 12*4)
	}
	// A second Solve emits zero pending counters: no matrix work happened
	// in between.
	tr2 := trace.New("cluster", 0)
	if _, _, err := s.Solve(tr2, time.Unix(2, 0)); err != nil {
		t.Fatal(err)
	}
	for _, ev := range tr2.Events() {
		if ev.Kind == trace.KindSolve && ev.Solve.CellsComputed+ev.Solve.CellsReused != 0 {
			t.Errorf("stale pending counters leaked: %+v", ev.Solve)
		}
	}
}

// Place with Shard.PodSize set routes the POColo placement through the
// sharded path and stays feasible and no better than the LP optimum.
func TestPlaceSharded(t *testing.T) {
	cfg := fixture(t)
	_, lpTotal, err := Place(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Shard = ShardSettings{PodSize: 2}
	placement, total, err := Place(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mcfg := MatrixConfig{Machine: cfg.Machine, LC: cfg.LC, BE: cfg.BE, Models: cfg.Models}
	checkPlacement(t, mcfg, placement)
	if total <= 0 || total > lpTotal*(1+1e-9) {
		t.Errorf("sharded Place total %v (LP optimum %v)", total, lpTotal)
	}
}

func TestShardedDegenerate(t *testing.T) {
	// More pods than jobs: trailing pods are empty but still solve.
	cfg := shardFixture(t, 8, 2)
	s, err := NewSharded(cfg, ShardSettings{PodSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.Pods() != 4 {
		t.Fatalf("pods = %d", s.Pods())
	}
	placement, _, err := s.Solve(nil, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	checkPlacement(t, cfg, placement)
	if err := s.SelfCheck(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Rebalance(nil, time.Time{}); err != nil {
		t.Fatal(err)
	}
	if err := s.SelfCheck(); err != nil {
		t.Fatal(err)
	}

	// Single-host pods.
	cfg = shardFixture(t, 4, 3)
	s, err = NewSharded(cfg, ShardSettings{PodSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	placement, _, err = s.Solve(nil, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	checkPlacement(t, cfg, placement)
	if err := s.SelfCheck(); err != nil {
		t.Fatal(err)
	}

	// Invalid fleets.
	if _, err := NewSharded(MatrixConfig{Machine: cfg.Machine}, ShardSettings{}); err == nil {
		t.Error("accepted a cluster with no hosts")
	}
	over := shardFixture(t, 2, 3)
	if _, err := NewSharded(over, ShardSettings{}); err == nil {
		t.Error("accepted more jobs than hosts")
	}
}

// The auction batch path and the sequential per-line path must repair a
// drifting fleet to the identical assignment value — the batch re-solve
// is an optimization, never a policy change. Drift every host cap and
// every job model at once so each pod's dirty-line count clears the
// forced threshold.
func TestShardedRefreshBatchMatchesSequential(t *testing.T) {
	mkPair := func() (*Sharded, *Sharded, MatrixConfig) {
		cfg := shardFixture(t, 16, 12)
		seq, err := NewSharded(cfg, ShardSettings{PodSize: 8, BatchThreshold: 1})
		if err != nil {
			t.Fatal(err)
		}
		auc, err := NewSharded(cfg, ShardSettings{PodSize: 8, BatchThreshold: 2})
		if err != nil {
			t.Fatal(err)
		}
		return seq, auc, cfg
	}
	seq, auc, cfg := mkPair()
	for round := 0; round < 3; round++ {
		for i, lc := range cfg.LC {
			lc.ProvisionedPowerW -= float64(3 + (i+round)%5)
		}
		for _, be := range cfg.BE {
			nudged := *cfg.Models[be.Name]
			nudged.Alpha0 *= 1.01 + 0.002*float64(round)
			cfg.Models[be.Name] = &nudged
		}
		if _, err := seq.Refresh(); err != nil {
			t.Fatal(err)
		}
		if _, err := auc.Refresh(); err != nil {
			t.Fatal(err)
		}
		if got, want := auc.Total(), seq.Total(); got != want {
			t.Fatalf("round %d: auction total %v != sequential total %v", round, got, want)
		}
		if err := auc.SelfCheck(); err != nil {
			t.Fatalf("round %d: auction path: %v", round, err)
		}
		if err := seq.SelfCheck(); err != nil {
			t.Fatalf("round %d: sequential path: %v", round, err)
		}
	}
	// The forced-auction instance reports its batch work in the traced
	// solve summaries; the sequential instance reports dirty lines but no
	// auction rounds.
	trA := trace.New("cluster", 0)
	if _, _, err := auc.Solve(trA, time.Time{}); err != nil {
		t.Fatal(err)
	}
	var sharded *trace.SolveSummary
	for _, ev := range trA.Events() {
		if ev.Kind == trace.KindSolve && ev.Solve.Method == "sharded" {
			s := ev.Solve
			sharded = &s
		}
	}
	if sharded == nil {
		t.Fatal("no sharded solve summary traced")
	}
	if sharded.BatchDirty == 0 || sharded.BatchAugments == 0 {
		t.Errorf("forced-auction summary missing batch counters: %+v", *sharded)
	}
	trS := trace.New("cluster", 0)
	if _, _, err := seq.Solve(trS, time.Time{}); err != nil {
		t.Fatal(err)
	}
	for _, ev := range trS.Events() {
		if ev.Kind == trace.KindSolve && ev.Solve.Method == "sharded" {
			if ev.Solve.BatchRounds != 0 {
				t.Errorf("sequential summary reports auction rounds: %+v", ev.Solve)
			}
			if ev.Solve.BatchDirty == 0 {
				t.Errorf("sequential summary dropped dirty-line count: %+v", ev.Solve)
			}
		}
	}
	// Counters reset once reported.
	trA2 := trace.New("cluster", 0)
	if _, _, err := auc.Solve(trA2, time.Time{}); err != nil {
		t.Fatal(err)
	}
	for _, ev := range trA2.Events() {
		if ev.Kind == trace.KindSolve && ev.Solve.BatchDirty != 0 {
			t.Errorf("batch counters not reset after Solve: %+v", ev.Solve)
		}
	}
}
