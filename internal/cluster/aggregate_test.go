package cluster

import (
	"math"
	"testing"

	"pocolo/internal/sim"
)

// trialResult builds a one-host trial with the given capper event count
// and gauge value (used for every averaged float field).
func trialResult(capEvents int, gauge float64) Result {
	return Result{
		BENormThroughput: gauge,
		MeanPowerUtil:    gauge,
		TotalEnergyKWh:   gauge,
		TotalBEOps:       gauge,
		SLOViolFrac:      gauge,
		Hosts: map[string]sim.Metrics{
			"h0": {
				Host:            "h0",
				BEOps:           gauge,
				BEMeanThr:       gauge,
				LCOps:           gauge,
				MeanPowerW:      gauge,
				PowerUtil:       gauge,
				EnergyKWh:       gauge,
				CapOverFrac:     gauge,
				CapEvents:       capEvents,
				SLOViolFrac:     gauge,
				MeanSlack:       gauge,
				DurationSec:     gauge,
				ProvisionedCapW: 133,
			},
		},
	}
}

// TestAggregateTrialsRoundsToNearest is the regression test for the
// CapEvents averaging fix: an averaged event count must round to nearest,
// not truncate — truncation reported one observed excursion as zero
// whenever fewer than half the trials saw it.
func TestAggregateTrialsRoundsToNearest(t *testing.T) {
	cases := []struct {
		name   string
		events []int
		want   int
	}{
		{"all-zero", []int{0, 0, 0, 0, 0, 0}, 0},
		{"below-half", []int{1, 0, 0, 0, 0, 0}, 0},
		{"exactly-half", []int{1, 1, 1, 0, 0, 0}, 1}, // 0.5 rounds away from zero
		{"above-half-truncation-regression", []int{2, 1, 1, 1, 0, 0}, 1}, // mean 5/6; truncation said 0
		{"multiple", []int{3, 3, 2, 4, 3, 3}, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			trials := make([]Result, len(tc.events))
			for i, ev := range tc.events {
				trials[i] = trialResult(ev, 1)
			}
			agg := aggregateTrials(trials)
			if got := agg.Hosts["h0"].CapEvents; got != tc.want {
				t.Fatalf("CapEvents = %d, want %d (trials %v)", got, tc.want, tc.events)
			}
		})
	}
}

// TestAggregateTrialsAudit sweeps every averaged field: means for gauges,
// worst-trial for the cluster SLO violation fraction, and pass-through for
// the provisioned cap.
func TestAggregateTrialsAudit(t *testing.T) {
	trials := []Result{trialResult(1, 1.0), trialResult(2, 2.0), trialResult(0, 6.0)}
	// The cluster SLOViolFrac is the worst trial, not the mean.
	trials[1].SLOViolFrac = 0.25
	agg := aggregateTrials(trials)

	const wantMean = 3.0 // (1 + 2 + 6) / 3
	approx := func(got, want float64) bool { return math.Abs(got-want) < 1e-12 }
	for name, got := range map[string]float64{
		"BENormThroughput": agg.BENormThroughput,
		"MeanPowerUtil":    agg.MeanPowerUtil,
		"TotalEnergyKWh":   agg.TotalEnergyKWh,
		"TotalBEOps":       agg.TotalBEOps,
	} {
		if !approx(got, wantMean) {
			t.Errorf("%s = %v, want mean %v", name, got, wantMean)
		}
	}
	if !approx(agg.SLOViolFrac, 6.0) {
		t.Errorf("cluster SLOViolFrac = %v, want worst trial 6.0", agg.SLOViolFrac)
	}

	h := agg.Hosts["h0"]
	for name, got := range map[string]float64{
		"SLOViolFrac": h.SLOViolFrac, // a mean at host level, unlike the cluster worst-case
		"BEOps":       h.BEOps,
		"BEMeanThr":   h.BEMeanThr,
		"LCOps":       h.LCOps,
		"MeanPowerW":  h.MeanPowerW,
		"PowerUtil":   h.PowerUtil,
		"EnergyKWh":   h.EnergyKWh,
		"CapOverFrac": h.CapOverFrac,
		"MeanSlack":   h.MeanSlack,
		"DurationSec": h.DurationSec,
	} {
		if !approx(got, wantMean) {
			t.Errorf("host %s = %v, want mean %v", name, got, wantMean)
		}
	}
	if h.CapEvents != 1 {
		t.Errorf("host CapEvents = %d, want round(3/3) = 1", h.CapEvents)
	}
	if h.ProvisionedCapW != 133 {
		t.Errorf("host ProvisionedCapW = %v, want pass-through 133", h.ProvisionedCapW)
	}
	if h.Host != "h0" {
		t.Errorf("host name = %q", h.Host)
	}
}
