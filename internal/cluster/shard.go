package cluster

import (
	"errors"
	"fmt"
	"time"

	"pocolo/internal/assign"
	"pocolo/internal/invariant"
	"pocolo/internal/machine"
	"pocolo/internal/obs"
	"pocolo/internal/parallel"
	"pocolo/internal/trace"
	"pocolo/internal/utility"
	"pocolo/internal/workload"
)

// DefaultPodSize is the default number of hosts per pod. Pods keep the
// O(m³) assignment solve and the O(n·m) matrix bounded: a 10k-host
// cluster becomes ~160 independent 64-host problems instead of one
// 10k×10k matrix that could never be built, let alone solved, per
// round.
const DefaultPodSize = 64

// DefaultRebalanceRounds bounds the cross-pod migration passes per
// Rebalance call.
const DefaultRebalanceRounds = 2

// ShardSettings configures pod sharding of the assignment problem.
// The zero value means unsharded (one pod spanning the whole cluster).
type ShardSettings struct {
	// PodSize is the number of LC hosts per pod (0 = DefaultPodSize when
	// sharding is in use). Hosts are partitioned contiguously, so a
	// budget tree whose leaf order matches the host order maps rack- or
	// row-aligned subtrees onto pods.
	PodSize int
	// RebalanceGap is the minimum estimated cross-pod gain (in matrix
	// value units) before a job migrates to another pod. Every migration
	// strictly increases total value by more than the gap, so
	// rebalancing terminates.
	RebalanceGap float64
	// RebalanceRounds bounds migration passes per Rebalance call
	// (0 = DefaultRebalanceRounds).
	RebalanceRounds int
	// BatchThreshold is the dirty-line count at or above which a pod's
	// Refresh hands the whole dirty set to the parallel auction batch
	// re-solve instead of repairing line by line
	// (0 = assign.DefaultBatchThreshold, 1 forces the sequential path).
	// The resulting assignment value is identical either way; only
	// wall-clock changes.
	BatchThreshold int
}

func (s ShardSettings) podSize() int {
	if s.PodSize <= 0 {
		return DefaultPodSize
	}
	return s.PodSize
}

func (s ShardSettings) rounds() int {
	if s.RebalanceRounds <= 0 {
		return DefaultRebalanceRounds
	}
	return s.RebalanceRounds
}

// sPod is one shard: a contiguous slice of hosts with its own
// delta-driven matrix builder and incremental solver, index-aligned
// row for row (both sides use the same swap-remove semantics).
type sPod struct {
	name    string
	builder *MatrixBuilder
	solver  *assign.Incremental
	pending DeltaStats        // matrix work since the last Solve emit
	batch   assign.BatchStats // batch re-solve work since the last Solve emit
	// touched marks that the matrix or matching changed since the last
	// validated Solve; untouched pods skip re-validation, which is what
	// keeps a steady-state single-host re-solve sublinear in pod count.
	touched bool
	// obs carries the pod's solve-latency and batch-work handles
	// (nil when the cluster runs without a metrics registry).
	obs *obs.SolveObs
}

// Sharded decomposes a cluster-wide assignment into independently
// solved pods. Jobs are apportioned to pods proportionally to pod
// capacity (largest remainder, contiguous slices — a block-replicated
// cluster shards into exact per-replica pods), each pod keeps an
// incremental solver warm across rounds, and Rebalance migrates jobs
// across pods when the estimated gain exceeds the configured gap.
//
// Matrix construction and refresh run sequentially across pods so the
// shared delta-cell memo's computed/reused split is deterministic (the
// counters are traced); solver work — the expensive part — has no
// shared state and fans through the parallel pool.
//
// Sharded is not safe for concurrent use.
type Sharded struct {
	platform machine.Config
	loads    []float64
	models   map[string]*utility.Model
	workers  int
	set      ShardSettings
	globalID uint32
	pods     []*sPod
}

// NewSharded partitions the cluster into pods and builds every pod's
// matrix and solver. cfg.LC and cfg.BE are the global host and job
// lists; specs are shared (not copied) so later in-place cap mutations
// are visible to Refresh.
func NewSharded(cfg MatrixConfig, set ShardSettings) (*Sharded, error) {
	if err := cfg.Machine.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.LC) == 0 {
		return nil, errors.New("cluster: need at least one LC host")
	}
	if len(cfg.BE) > len(cfg.LC) {
		return nil, fmt.Errorf("cluster: %d BE jobs exceed %d hosts", len(cfg.BE), len(cfg.LC))
	}
	loads := cfg.Loads
	if len(loads) == 0 {
		loads = DefaultLoadRange()
	}
	s := &Sharded{
		platform: cfg.Machine,
		loads:    append([]float64(nil), loads...),
		models:   cfg.Models,
		workers:  cfg.Parallel,
		set:      set,
		globalID: internFP(globalFP(cfg.Machine, loads)),
	}
	podSize := set.podSize()
	nPods := (len(cfg.LC) + podSize - 1) / podSize
	// Apportion jobs to pods proportionally to capacity by largest
	// remainder, in contiguous slices. Contiguity means a block-
	// replicated cluster (k replicas of an nBE×nLC block) with
	// PodSize == nLC shards into exactly its per-replica blocks.
	counts := apportion(len(cfg.BE), podCapacities(len(cfg.LC), podSize))
	s.pods = make([]*sPod, nPods)
	jobAt := 0
	for p := 0; p < nPods; p++ {
		lo, hi := p*podSize, (p+1)*podSize
		if hi > len(cfg.LC) {
			hi = len(cfg.LC)
		}
		pcfg := cfg
		pcfg.LC = cfg.LC[lo:hi]
		pcfg.BE = cfg.BE[jobAt : jobAt+counts[p]]
		pcfg.Loads = s.loads
		jobAt += counts[p]
		b, err := NewMatrixBuilder(pcfg)
		if err != nil {
			return nil, fmt.Errorf("cluster: pod %d: %w", p, err)
		}
		pod := &sPod{name: fmt.Sprintf("pod-%d", p), builder: b, pending: b.Stats(), touched: true}
		// The registry get-or-creates by (name, labels), so pods of a
		// transiently rebuilt Sharded land on the same stable series.
		pod.obs = obs.NewSolveObs(cfg.Obs, pod.name)
		s.pods[p] = pod
	}
	// Solver construction is per-pod pure work: fan it out. The initial
	// full solve is the pod's most expensive solve, so it lands in the
	// same per-pod latency histogram the batch re-solves feed.
	err := parallel.ForEach(nPods, s.workers, func(p int) error {
		pod := s.pods[p]
		var start time.Time
		if pod.obs != nil {
			start = time.Now()
		}
		var err error
		if pod.builder.Rows() > 0 {
			pod.solver, err = assign.NewIncremental(pod.builder.Matrix().Value)
		} else {
			pod.solver, err = assign.NewIncrementalCols(pod.builder.Cols())
		}
		if err != nil {
			return fmt.Errorf("cluster: pod %d solve: %w", p, err)
		}
		if pod.obs != nil {
			pod.obs.Record(time.Since(start), 0, 0, 0)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

func podCapacities(nLC, podSize int) []int {
	nPods := (nLC + podSize - 1) / podSize
	caps := make([]int, nPods)
	for p := range caps {
		caps[p] = podSize
	}
	if rem := nLC % podSize; rem != 0 {
		caps[nPods-1] = rem
	}
	return caps
}

// apportion distributes total items over buckets proportionally to
// caps by largest remainder, never exceeding a bucket's cap. total must
// be at most the sum of caps.
func apportion(total int, caps []int) []int {
	sum := 0
	for _, c := range caps {
		sum += c
	}
	counts := make([]int, len(caps))
	if total == 0 || sum == 0 {
		return counts
	}
	assigned := 0
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, 0, len(caps))
	for i, c := range caps {
		exact := float64(total) * float64(c) / float64(sum)
		counts[i] = int(exact)
		assigned += counts[i]
		rems = append(rems, rem{i, exact - float64(counts[i])})
	}
	// Hand out the leftovers to the largest fractional remainders;
	// ties break toward the earlier pod for determinism.
	for assigned < total {
		best := -1
		for k := range rems {
			i := rems[k].idx
			if counts[i] >= caps[i] {
				continue
			}
			if best == -1 || rems[k].frac > rems[best].frac {
				best = k
			}
		}
		counts[rems[best].idx]++
		rems[best].frac = -1
		assigned++
	}
	return counts
}

// Pods returns the number of pods.
func (s *Sharded) Pods() int { return len(s.pods) }

// PodDims returns pod p's current (jobs, hosts) dimensions.
func (s *Sharded) PodDims(p int) (rows, cols int) {
	return s.pods[p].builder.Rows(), s.pods[p].builder.Cols()
}

// Total returns the summed optimal assignment value across pods.
func (s *Sharded) Total() float64 {
	t := 0.0
	for _, pod := range s.pods {
		t += pod.solver.Total()
	}
	return t
}

// Placement returns the BE→LC host mapping across all pods.
func (s *Sharded) Placement() map[string]string {
	out := make(map[string]string)
	for _, pod := range s.pods {
		mx := pod.builder.Matrix()
		for i, j := range pod.solver.Assignment() {
			out[mx.BENames[i]] = mx.LCNames[j]
		}
	}
	return out
}

// Refresh picks up host-cap and job-model drift: each pod's builder
// re-fingerprints its inputs and recomputes only dirty cells, then each
// pod's solver repairs the changed rows and columns in one ResolveBatch
// call — the sequential per-line repair below the configured batch
// threshold, the parallel auction re-solve at or above it. The repaired
// assignment value is identical either way.
func (s *Sharded) Refresh() (DeltaStats, error) {
	var agg DeltaStats
	results := make([]RefreshResult, len(s.pods))
	for p, pod := range s.pods {
		res, err := pod.builder.Refresh()
		if err != nil {
			return agg, fmt.Errorf("cluster: pod %d refresh: %w", p, err)
		}
		results[p] = res
		pod.pending.add(res.Stats)
		agg.add(res.Stats)
		if len(res.ChangedRows) > 0 || len(res.ChangedCols) > 0 {
			pod.touched = true
		}
	}
	// Pods fan out across the pool; the auction's inner bid phase only
	// gets the pool when there is a single pod, so the two levels never
	// oversubscribe.
	innerWorkers := 1
	if len(s.pods) == 1 {
		innerWorkers = s.workers
	}
	err := parallel.ForEach(len(s.pods), s.workers, func(p int) error {
		pod := s.pods[p]
		res := &results[p]
		if len(res.ChangedRows) == 0 && len(res.ChangedCols) == 0 {
			return nil
		}
		opts := assign.BatchOptions{Threshold: s.set.BatchThreshold, Workers: innerWorkers, Obs: pod.obs}
		mx := pod.builder.Matrix()
		rows := make([]assign.RowUpdate, len(res.ChangedRows))
		for k, i := range res.ChangedRows {
			rows[k] = assign.RowUpdate{Index: i, Values: mx.Value[i]}
		}
		cols := make([]assign.ColUpdate, len(res.ChangedCols))
		for k, j := range res.ChangedCols {
			col := make([]float64, pod.builder.Rows())
			for i := range col {
				col[i] = mx.Value[i][j]
			}
			cols[k] = assign.ColUpdate{Index: j, Values: col}
		}
		st, err := pod.solver.ResolveBatch(rows, cols, opts)
		if err != nil {
			return fmt.Errorf("cluster: pod %d batch repair: %w", p, err)
		}
		pod.batch.DirtyRows += st.DirtyRows
		pod.batch.DirtyCols += st.DirtyCols
		pod.batch.AuctionRounds += st.AuctionRounds
		pod.batch.CleanupAugments += st.CleanupAugments
		return nil
	})
	return agg, err
}

// pairValue prices one (job, host) cell through the delta-cell memo —
// the rebalancer's cross-pod lens, sharing cached cells with every
// builder.
func (s *Sharded) pairValue(be *workload.Spec, beM *utility.Model, lc *workload.Spec, lcM *utility.Model) (float64, error) {
	k := cellKey{global: s.globalID, row: internFP(utility.ModelKey(beM)), col: internFP(colFP(lc, lcM))}
	if v, ok := cellMemoLookup(k); ok {
		return v, nil
	}
	v, err := estimatePairThroughput(s.platform, lc, lcM, beM, s.loads)
	if err != nil {
		return 0, err
	}
	cellMemoStore(k, v)
	return v, nil
}

// Rebalance migrates jobs across pods while a free host in another pod
// beats a job's current cell by more than the configured gap. The gain
// estimate is a lower bound — adding the job's row to the target pod
// can only match it at least as well as the best free column, and
// removing it costs the source exactly its current cell — so every
// migration strictly increases total value, which both guarantees
// termination and means sharding's placement quality monotonically
// approaches the unsharded optimum as the gap shrinks. Migrations are
// traced as migration events with reason "rebalance".
func (s *Sharded) Rebalance(tr *trace.Tracer, now time.Time) (int, error) {
	moves := 0
	for round := 0; round < s.set.rounds(); round++ {
		moved := 0
		for p, pod := range s.pods {
			for r := 0; r < pod.builder.Rows(); {
				migrated, err := s.tryMigrate(p, r, tr, now)
				if err != nil {
					return moves, err
				}
				if migrated {
					moved++
					// RemoveRow swapped the last job into slot r:
					// re-examine it before advancing.
					continue
				}
				r++
			}
		}
		moves += moved
		if moved == 0 {
			break
		}
	}
	return moves, nil
}

// tryMigrate evaluates job r of pod p against every other pod's free
// hosts and moves it to the best one if the gain clears the gap.
func (s *Sharded) tryMigrate(p, r int, tr *trace.Tracer, now time.Time) (bool, error) {
	src := s.pods[p]
	spec := src.builder.RowSpec(r)
	model, ok := s.models[spec.Name]
	if !ok {
		return false, fmt.Errorf("cluster: no fitted model for %s", spec.Name)
	}
	cur := src.solver.At(r, src.solver.Assignment()[r])
	bestGain := s.set.RebalanceGap
	bestPod := -1
	for q, dst := range s.pods {
		if q == p || dst.builder.Rows() >= dst.builder.Cols() {
			continue
		}
		free := dst.solver.ColAssignment()
		for j := range free {
			if free[j] != -1 {
				continue
			}
			v, err := s.pairValue(spec, model, dst.builder.lc[j], dst.builder.lcModel[j])
			if err != nil {
				return false, err
			}
			if gain := v - cur; gain > bestGain {
				bestGain = gain
				bestPod = q
			}
		}
	}
	if bestPod == -1 {
		return false, nil
	}
	src, dst := s.pods[p], s.pods[bestPod]
	fromHost := src.builder.Matrix().LCNames[src.solver.Assignment()[r]]
	if err := src.builder.RemoveRow(r); err != nil {
		return false, err
	}
	if err := src.solver.RemoveRow(r); err != nil {
		return false, err
	}
	i, err := dst.builder.AddRow(spec)
	if err != nil {
		return false, err
	}
	if _, err := dst.solver.AddRow(dst.builder.Matrix().Value[i]); err != nil {
		return false, err
	}
	toHost := dst.builder.Matrix().LCNames[dst.solver.Assignment()[i]]
	src.touched = true
	dst.touched = true
	tr.Migration(now, trace.Placement{BE: spec.Name, Node: toHost, From: fromHost, Reason: "rebalance"})
	return true, nil
}

// Solve aggregates the per-pod optima into a cluster placement,
// validating each pod's assignment, and emits one traced SolveSummary
// per non-empty pod (tagged with the pod name and the delta-cell
// counters accumulated since the last Solve) plus a cluster-level
// "sharded" summary.
func (s *Sharded) Solve(tr *trace.Tracer, now time.Time) (map[string]string, float64, error) {
	sp := tr.StartSpan("solve")
	defer sp.End(now)
	nRows := 0
	for _, pod := range s.pods {
		nRows += pod.builder.Rows()
	}
	placement := make(map[string]string, nRows)
	total := 0.0
	rows, cols := 0, 0
	var agg DeltaStats
	var aggBatch assign.BatchStats
	for p, pod := range s.pods {
		mx := pod.builder.Matrix()
		idx := pod.solver.Assignment()
		val := pod.solver.Total()
		if pod.builder.Rows() > 0 {
			// A pod untouched since its last validated Solve still holds
			// the same matrix and matching, so re-validating it would only
			// make the steady-state re-solve linear in cluster size.
			if pod.touched {
				if err := invariant.CheckAssignment(mx.Value, idx, val); err != nil {
					return nil, 0, fmt.Errorf("cluster: pod %d solver: %w", p, err)
				}
			}
			tr.SolveSummary(now, trace.SolveSummary{
				Method: "incremental", Rows: pod.builder.Rows(), Cols: pod.builder.Cols(),
				Total: val, Pod: pod.name,
				CellsComputed: pod.pending.CellsComputed, CellsReused: pod.pending.CellsReused,
				BatchDirty:    pod.batch.DirtyRows + pod.batch.DirtyCols,
				BatchRounds:   pod.batch.AuctionRounds,
				BatchAugments: pod.batch.CleanupAugments,
			})
		}
		agg.add(pod.pending)
		aggBatch.DirtyRows += pod.batch.DirtyRows
		aggBatch.DirtyCols += pod.batch.DirtyCols
		aggBatch.AuctionRounds += pod.batch.AuctionRounds
		aggBatch.CleanupAugments += pod.batch.CleanupAugments
		pod.pending = DeltaStats{}
		pod.batch = assign.BatchStats{}
		pod.touched = false
		for i, j := range idx {
			placement[mx.BENames[i]] = mx.LCNames[j]
		}
		total += val
		rows += pod.builder.Rows()
		cols += pod.builder.Cols()
	}
	if rows > 0 {
		tr.SolveSummary(now, trace.SolveSummary{
			Method: "sharded", Rows: rows, Cols: cols, Total: total,
			CellsComputed: agg.CellsComputed, CellsReused: agg.CellsReused,
			BatchDirty:    aggBatch.DirtyRows + aggBatch.DirtyCols,
			BatchRounds:   aggBatch.AuctionRounds,
			BatchAugments: aggBatch.CleanupAugments,
		})
	}
	return placement, total, nil
}

// SelfCheck verifies every pod solver's dual invariants and the
// consistency between builders and solvers. Test and debugging aid.
func (s *Sharded) SelfCheck() error {
	for p, pod := range s.pods {
		if err := pod.solver.SelfCheck(); err != nil {
			return fmt.Errorf("pod %d: %w", p, err)
		}
		if pod.solver.Rows() != pod.builder.Rows() || pod.solver.Cols() != pod.builder.Cols() {
			return fmt.Errorf("pod %d: solver %dx%d vs builder %dx%d", p,
				pod.solver.Rows(), pod.solver.Cols(), pod.builder.Rows(), pod.builder.Cols())
		}
		for i := 0; i < pod.builder.Rows(); i++ {
			for j := 0; j < pod.builder.Cols(); j++ {
				if pod.solver.At(i, j) != pod.builder.Matrix().Value[i][j] {
					return fmt.Errorf("pod %d: cell (%d,%d) diverged", p, i, j)
				}
			}
		}
	}
	return nil
}
