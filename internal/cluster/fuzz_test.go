package cluster

import (
	"testing"
)

// FuzzParsePolicy checks that ParsePolicy never panics and stays an exact
// inverse of Policy.String: every accepted input round-trips through the
// Policy value back to itself.
func FuzzParsePolicy(f *testing.F) {
	f.Add("random")
	f.Add("pom")
	f.Add("pocolo")
	f.Add("POCOLO")
	f.Add("pocolo ")
	f.Add("")
	f.Add("hungarian")
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePolicy(s)
		if err != nil {
			return
		}
		if p.String() != s {
			t.Fatalf("ParsePolicy(%q) = %v, but String() = %q", s, p, p.String())
		}
		if back, err := ParsePolicy(p.String()); err != nil || back != p {
			t.Fatalf("round-trip of %v failed: %v, %v", p, back, err)
		}
	})
}
