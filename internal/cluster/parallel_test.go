package cluster

import (
	"reflect"
	"testing"

	"pocolo/internal/servermgr"
	"pocolo/internal/workload"
)

// TestParallelMatchesSequential is the golden equality check behind the
// whole parallel layer: with the memo off (every run live), a cluster run
// fanned across a worker pool must be bit-identical to the sequential run —
// same hosts, same trials, same load levels, same aggregates.
func TestParallelMatchesSequential(t *testing.T) {
	prev := SetMemo(false)
	defer func() { SetMemo(prev); ResetMemo() }()

	cfg := fixture(t)
	placement := mustPlace(t, cfg)
	cat := workload.MustDefaults()
	lc, _ := cat.ByName("sphinx")
	be, _ := cat.ByName("graph")

	seq, par := cfg, cfg
	seq.Parallel = 1
	par.Parallel = 4

	seqPlaced, err := RunPlacement(seq, placement, servermgr.PowerOptimized)
	if err != nil {
		t.Fatal(err)
	}
	parPlaced, err := RunPlacement(par, placement, servermgr.PowerOptimized)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seqPlaced, parPlaced) {
		t.Errorf("RunPlacement diverges:\nsequential %+v\nparallel   %+v", seqPlaced, parPlaced)
	}

	// Random exercises the trial fan-out in runRandomExpectation.
	seqRand, err := Run(seq, Random)
	if err != nil {
		t.Fatal(err)
	}
	parRand, err := Run(par, Random)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seqRand, parRand) {
		t.Errorf("Run(Random) diverges:\nsequential %+v\nparallel   %+v", seqRand, parRand)
	}

	seqPair, err := RunPair(seq, lc, be)
	if err != nil {
		t.Fatal(err)
	}
	parPair, err := RunPair(par, lc, be)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seqPair, parPair) {
		t.Errorf("RunPair diverges:\nsequential %+v\nparallel   %+v", seqPair, parPair)
	}
}

// TestMemoServesIdenticalIsolatedResults: a repeated run is a cache hit,
// returns exactly the first result, and hands out an independent copy the
// caller may mutate.
func TestMemoServesIdenticalIsolatedResults(t *testing.T) {
	prev := SetMemo(true)
	ResetMemo()
	defer func() { SetMemo(prev); ResetMemo() }()

	cfg := fixture(t)
	placement := mustPlace(t, cfg)

	first, err := RunPlacement(cfg, placement, servermgr.PowerOptimized)
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses := MemoStats(); hits != 0 || misses == 0 {
		t.Fatalf("after first run: hits=%d misses=%d", hits, misses)
	}
	second, err := RunPlacement(cfg, placement, servermgr.PowerOptimized)
	if err != nil {
		t.Fatal(err)
	}
	if hits, _ := MemoStats(); hits == 0 {
		t.Fatal("second identical run was not a cache hit")
	}
	if !reflect.DeepEqual(first, second) {
		t.Errorf("cache-served result diverges:\nfirst  %+v\nsecond %+v", first, second)
	}

	// Mutating a served result must not corrupt the cache.
	for name := range second.Hosts {
		m := second.Hosts[name]
		m.BEMeanThr = -1
		second.Hosts[name] = m
	}
	second.Placement["graph"] = "tampered"
	third, err := RunPlacement(cfg, placement, servermgr.PowerOptimized)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, third) {
		t.Error("mutating a cache-served result leaked into the cache")
	}

	// A different seed is a different fingerprint — a miss, not a hit.
	other := cfg
	other.Seed = cfg.Seed + 1
	hitsBefore, _ := MemoStats()
	if _, err := RunPlacement(other, placement, servermgr.PowerOptimized); err != nil {
		t.Fatal(err)
	}
	if hitsAfter, _ := MemoStats(); hitsAfter != hitsBefore {
		t.Error("run with a different seed was served from the cache")
	}

	cat := workload.MustDefaults()
	lc, _ := cat.ByName("sphinx")
	be, _ := cat.ByName("graph")
	firstPair, err := RunPair(cfg, lc, be)
	if err != nil {
		t.Fatal(err)
	}
	secondPair, err := RunPair(cfg, lc, be)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(firstPair, secondPair) {
		t.Errorf("cache-served pair diverges:\nfirst  %+v\nsecond %+v", firstPair, secondPair)
	}
	secondPair.TotalNorm[0] = -1
	thirdPair, err := RunPair(cfg, lc, be)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(firstPair, thirdPair) {
		t.Error("mutating a cache-served pair leaked into the cache")
	}
}
