package cluster

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"pocolo/internal/budget/tree"
	"pocolo/internal/trace"
)

func fleetFixture(t *testing.T, hosts, jobs int, set ShardSettings) FleetConfig {
	t.Helper()
	cfg := fixture(t)
	return FleetConfig{
		Machine:   cfg.Machine,
		LCClasses: cfg.LC,
		BEClasses: cfg.BE,
		Models:    cfg.Models,
		Hosts:     hosts,
		Jobs:      jobs,
		Seed:      7,
		Shard:     set,
	}
}

func TestFleetValidation(t *testing.T) {
	good := fleetFixture(t, 8, 4, ShardSettings{PodSize: 4})
	cases := map[string]func(*FleetConfig){
		"no hosts":       func(c *FleetConfig) { c.Hosts = 0 },
		"jobs > hosts":   func(c *FleetConfig) { c.Jobs = c.Hosts + 1 },
		"no classes":     func(c *FleetConfig) { c.LCClasses = nil },
		"missing model":  func(c *FleetConfig) { c.Models = nil },
		"jitter too big": func(c *FleetConfig) { c.CapJitterFrac = 1 },
		"bad budget":     func(c *FleetConfig) { c.BudgetFrac = 1.5 },
	}
	for name, mutate := range cases {
		bad := good
		mutate(&bad)
		if _, err := NewFleet(bad); err == nil {
			t.Errorf("NewFleet accepted %s", name)
		}
	}
	if _, err := NewFleet(good); err != nil {
		t.Fatal(err)
	}
}

func TestFleetCapsQuantized(t *testing.T) {
	f, err := NewFleet(fleetFixture(t, 32, 16, ShardSettings{PodSize: 8}))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[float64]bool{}
	for _, lc := range f.lc {
		if lc.ProvisionedPowerW != math.Round(lc.ProvisionedPowerW) {
			t.Fatalf("unquantized cap %v", lc.ProvisionedPowerW)
		}
		seen[lc.ProvisionedPowerW] = true
	}
	if len(seen) < 2 {
		t.Error("cap jitter produced a uniform fleet")
	}
	f.Advance(1)
	for _, lc := range f.lc {
		if lc.ProvisionedPowerW != math.Round(lc.ProvisionedPowerW) {
			t.Fatalf("Advance left unquantized cap %v", lc.ProvisionedPowerW)
		}
	}
}

func TestRunHyperscale(t *testing.T) {
	tr := trace.New("hyperscale", 0)
	cfg := HyperscaleConfig{
		Fleet:  fleetFixture(t, 32, 24, ShardSettings{PodSize: 8}),
		Rounds: 3,
		Churn:  0.5,
		Trace:  tr,
	}
	res, err := RunHyperscale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hosts != 32 || res.Jobs != 24 || res.Pods != 4 {
		t.Fatalf("shape %d/%d/%d", res.Hosts, res.Jobs, res.Pods)
	}
	if res.InitialTotal <= 0 || res.FinalTotal <= 0 {
		t.Fatalf("totals %v -> %v", res.InitialTotal, res.FinalTotal)
	}
	if len(res.Rounds) != 3 {
		t.Fatalf("rounds = %d", len(res.Rounds))
	}
	full := 24 * 8 // rows × pod cols: the non-delta refresh cost
	churned := 0
	for _, r := range res.Rounds {
		if r.Total <= 0 {
			t.Errorf("round %d total %v", r.Round, r.Total)
		}
		touched := r.Refresh.CellsComputed + r.Refresh.CellsReused
		if r.HostsChanged > 0 || r.ClassesChanged > 0 {
			churned++
			if touched == 0 {
				t.Errorf("round %d churned %d/%d but refreshed no cells",
					r.Round, r.HostsChanged, r.ClassesChanged)
			}
		}
		if touched > full {
			t.Errorf("round %d touched %d cells, full rebuild is %d", r.Round, touched, full)
		}
	}
	if churned == 0 {
		t.Error("no round saw churn at churn=0.5")
	}
	if err := trace.Validate(tr.Events()); err != nil {
		t.Fatal(err)
	}
	// Per-pod solve summaries carry pod tags.
	pods := 0
	for _, ev := range tr.Events() {
		if ev.Kind == trace.KindSolve && ev.Solve.Pod != "" {
			pods++
		}
	}
	if pods == 0 {
		t.Error("no per-pod solve events traced")
	}
}

func TestRunHyperscaleDeterministic(t *testing.T) {
	cfg := HyperscaleConfig{
		Fleet:  fleetFixture(t, 24, 18, ShardSettings{PodSize: 6}),
		Rounds: 2,
		Churn:  0.4,
	}
	ResetCellMemo()
	r1, err := RunHyperscale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ResetCellMemo()
	r2, err := RunHyperscale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("same seed diverged:\n%+v\n%+v", r1, r2)
	}
}

func TestFleetPodBudgets(t *testing.T) {
	fc := fleetFixture(t, 16, 12, ShardSettings{PodSize: 4})
	fc.BudgetFrac = 0.8
	res, err := RunHyperscale(HyperscaleConfig{Fleet: fc, Rounds: 1, Churn: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if res.BudgetSpec == "" || len(res.PodBudgets) != 4 {
		t.Fatalf("budget spec %q, shares %v", res.BudgetSpec, res.PodBudgets)
	}
	tw, err := tree.Parse(res.BudgetSpec)
	if err != nil {
		t.Fatalf("generated spec does not parse: %v\n%s", err, res.BudgetSpec)
	}
	root := tw.Root().BudgetW
	var sum float64
	for name, share := range res.PodBudgets {
		if !strings.HasPrefix(name, "pod-") {
			t.Errorf("share key %q", name)
		}
		if share != math.Round(share) {
			t.Errorf("unquantized share %v", share)
		}
		sum += share
	}
	// Shares respect the root budget up to the 1 W quantization per pod.
	if sum > root+float64(len(res.PodBudgets)) {
		t.Errorf("shares sum %v exceeds root budget %v", sum, root)
	}

	f, err := NewFleet(fleetFixture(t, 8, 4, ShardSettings{PodSize: 4}))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.PodBudgets(); err == nil {
		t.Error("PodBudgets succeeded without a budget fraction")
	}
}
