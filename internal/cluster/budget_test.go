package cluster

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"pocolo/internal/budget"
	"pocolo/internal/trace"
	"pocolo/internal/workload"
)

// provisionedW sums the LC servers' provisioned power capacities.
func provisionedW(cfg Config) float64 {
	var total float64
	for _, lc := range cfg.LC {
		total += lc.ProvisionedPowerW
	}
	return total
}

func TestBudgetConfigValidation(t *testing.T) {
	cfg := fixture(t)
	placement := PlaceRandom(cfg.LC, cfg.BE, 1)
	for name, bc := range map[string]*BudgetConfig{
		"no total or tree": {},
		"negative period":  {TotalW: 500, Period: -time.Second},
		"bad frac":         {Tree: "dc:500{x}", BrownoutFrac: 1.5},
		"flat brownout":    {TotalW: 500, BrownoutFrac: 0.3},
		"negative at":      {Tree: "dc:500{x}", BrownoutFrac: 0.3, BrownoutAt: -time.Second},
		"bad tree":         {Tree: "dc:{"},
		"wrong leaves":     {Tree: "dc:500{nothere,nope}"},
	} {
		c := cfg
		c.Budget = bc
		if _, err := RunPlacement(c, placement, 1); err == nil {
			t.Errorf("%s: budgeted run unexpectedly succeeded", name)
		}
	}
}

// TestBudgetedRunFlat exercises the flat budgeter through the cluster
// layer: shares land in the result and the run bypasses the memo.
func TestBudgetedRunFlat(t *testing.T) {
	cfg := fixture(t)
	cfg.Dwell = 500 * time.Millisecond
	cfg.Budget = &BudgetConfig{
		TotalW: 0.8 * provisionedW(cfg),
		Policy: budget.DemandProportional,
		Period: 2 * time.Second,
	}
	res, err := Run(cfg, POColo)
	if err != nil {
		t.Fatal(err)
	}
	if res.Budget == nil {
		t.Fatal("budgeted run returned no budget result")
	}
	if len(res.Budget.Shares) != len(cfg.LC) {
		t.Errorf("%d shares for %d servers", len(res.Budget.Shares), len(cfg.LC))
	}
	var sum float64
	for _, s := range res.Budget.Shares {
		sum += s
	}
	if sum > cfg.Budget.TotalW+1e-6 {
		t.Errorf("shares sum %v exceed the budget %v", sum, cfg.Budget.TotalW)
	}
	if res.Budget.Rebalances < 1 {
		t.Error("no rebalances recorded")
	}
}

// TestBudgetedBrownoutEndToEnd is the tentpole e2e: a tree-budgeted
// cluster run with invariants on takes a 30% DC budget cut mid-run and
// must degrade gracefully — zero invariant violations (including the
// tree-conservation checker), caps converged inside the cut budget, and
// BudgetCut/BudgetShift events in a replayable trace.
func TestBudgetedBrownoutEndToEnd(t *testing.T) {
	run := func() (Result, []trace.Event, *BudgetConfig, Config) {
		cfg := fixture(t)
		cfg.Dwell = 2 * time.Second
		cfg.Invariants = true
		cfg.Trace = trace.NewSet(0)
		duration := workload.UniformSweep(cfg.Dwell).Duration()
		var rack1, rack2 string
		half := len(cfg.LC) / 2
		for i, lc := range cfg.LC {
			if i < half {
				if rack1 != "" {
					rack1 += ","
				}
				rack1 += lc.Name
			} else {
				if rack2 != "" {
					rack2 += ","
				}
				rack2 += lc.Name
			}
		}
		dcW := 0.9 * provisionedW(cfg)
		spec := fmt.Sprintf("dc:%g{rack1:%g{%s},rack2:%g{%s}}",
			dcW, dcW/2, rack1, dcW/2, rack2)
		bc := &BudgetConfig{
			Tree:         spec,
			Period:       2 * time.Second,
			BrownoutFrac: 0.3,
			BrownoutAt:   duration / 2,
		}
		cfg.Budget = bc
		res, err := Run(cfg, POColo)
		if err != nil {
			t.Fatal(err)
		}
		return res, cfg.Trace.Events(), bc, cfg
	}

	res, events, bc, cfg := run()
	if res.Budget == nil {
		t.Fatal("no budget result")
	}
	if res.Budget.Cuts != 1 {
		t.Errorf("Cuts = %d, want 1", res.Budget.Cuts)
	}
	// The run survived with invariants on (Run would have failed
	// otherwise); the caps must have converged inside the cut budget.
	cutW := res.Budget.NodeBudgets["dc"]
	wantCut := 0.9 * provisionedW(cfg) * (1 - bc.BrownoutFrac)
	if diff := cutW - wantCut; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("post-brownout dc budget %v, want %v", cutW, wantCut)
	}
	var sum float64
	for _, s := range res.Budget.Shares {
		sum += s
	}
	if sum > cutW+1e-6 {
		t.Errorf("final shares sum %v exceed the cut budget %v", sum, cutW)
	}

	var cuts, shifts int
	for _, ev := range events {
		switch ev.Kind {
		case trace.KindBudgetCut:
			cuts++
			if ev.Budget.Reason != "brownout" || ev.Budget.Node != "dc" {
				t.Errorf("bad cut event: %+v", ev.Budget)
			}
		case trace.KindBudgetShift:
			shifts++
		}
	}
	if cuts != 1 {
		t.Errorf("%d BudgetCut events, want 1", cuts)
	}
	if shifts < len(cfg.LC) {
		t.Errorf("only %d BudgetShift events", shifts)
	}

	// Determinism: the same seeded run exports a byte-identical canonical
	// trace.
	_, events2, _, _ := run()
	var a, b bytes.Buffer
	trace.SortEvents(events)
	trace.SortEvents(events2)
	if err := trace.WriteJSONL(&a, events, false); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteJSONL(&b, events2, false); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("seeded brownout runs exported different traces")
	}
}
